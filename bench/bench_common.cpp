#include "bench_common.hpp"

#include <cstdlib>

#include "blas/blas.hpp"
#include "matrix/norms.hpp"

namespace camult::bench {
namespace {

constexpr double kThreshold = 100.0;  // scaled-residual units

void die(const char* what, double resid) {
  std::fprintf(stderr, "VERIFICATION FAILED: %s (scaled residual %g)\n", what,
               resid);
  std::exit(1);
}

}  // namespace

// The competitor lambdas all route through the library entry points tested
// by the unit suite; this gate re-checks the exact configurations the bench
// uses, on a small instance, before any timing happens.
void verify_lu_competitors(const std::vector<Competitor>&) {
  const idx m = 600, n = 120;
  Matrix a = random_matrix(m, n, 4242);

  {
    Matrix w = a;
    PivotVector ipiv;
    lapack::getf2(w.view(), ipiv);
    const double r = lapack::lu_residual(a, w, ipiv);
    if (!(r < kThreshold)) die("dgetf2", r);
  }
  {
    Matrix w = a;
    baseline::BlockedOptions o;
    o.nb = 40;
    o.num_threads = 2;
    auto res = baseline::blocked_getrf(w.view(), o);
    const double r = lapack::lu_residual(a, w, res.ipiv);
    if (!(r < kThreshold)) die("blocked dgetrf", r);
  }
  {
    Matrix sq = random_matrix(n, n, 4243);
    Matrix w = sq;
    tiled::TileLuOptions o;
    o.b = 40;
    o.num_threads = 2;
    auto res = tiled::tile_lu_factor(w.view(), o);
    Matrix x = random_matrix(n, 1, 4244);
    Matrix rhs = Matrix::zeros(n, 1);
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, sq, x, 0.0,
               rhs.view());
    tiled::tile_lu_solve(res, w.view(), rhs.view());
    double err = 0;
    for (idx i = 0; i < n; ++i) {
      err = std::max(err, std::abs(rhs(i, 0) - x(i, 0)));
    }
    if (!(err < 1e-6 * std::max(1.0, norm_max(x)) * n)) die("tiled LU", err);
  }
  for (idx tr : {idx{4}, idx{8}}) {
    Matrix w = a;
    core::CaluOptions o;
    o.b = 40;
    o.tr = tr;
    o.num_threads = 2;
    auto res = core::calu_factor(w.view(), o);
    const double r = lapack::lu_residual(a, w, res.ipiv);
    if (!(r < kThreshold)) die("CALU", r);
  }
  std::printf("correctness gate: all LU competitors verified\n");
}

void verify_qr_competitors(const std::vector<Competitor>&) {
  const idx m = 600, n = 120;
  Matrix a = random_matrix(m, n, 4245);

  {
    Matrix w = a;
    std::vector<double> tau;
    lapack::geqr2(w.view(), tau);
    const double r = lapack::qr_residual(a, w, tau);
    if (!(r < kThreshold)) die("dgeqr2", r);
  }
  {
    Matrix w = a;
    baseline::BlockedOptions o;
    o.nb = 40;
    o.num_threads = 2;
    auto res = baseline::blocked_geqrf(w.view(), o);
    const double r = lapack::qr_residual(a, w, res.tau);
    if (!(r < kThreshold)) die("blocked dgeqrf", r);
  }
  {
    Matrix w = a;
    tiled::TileQrOptions o;
    o.b = 40;
    o.num_threads = 2;
    auto res = tiled::tile_qr_factor(w.view(), o);
    const double r = tiled::tile_qr_residual(a, w, res);
    if (!(r < kThreshold)) die("tiled QR", r);
  }
  for (idx tr : {idx{4}, idx{8}}) {
    Matrix w = a;
    core::CaqrOptions o;
    o.b = 40;
    o.tr = tr;
    o.num_threads = 2;
    auto res = core::caqr_factor(w.view(), o);
    const double r = core::caqr_residual(a, w, res);
    if (!(r < kThreshold)) die("CAQR", r);
  }
  std::printf("correctness gate: all QR competitors verified\n");
}

namespace {

Measurement run_one(const Competitor& comp, const Matrix& a, double flops,
                    int cores) {
  return measure([&](int threads) { return comp.run(a, threads); }, flops,
                 cores);
}

/// One report row per (competitor, problem) measurement — the common
/// vocabulary tools/check_bench_json.cpp validates. tr = 0 for competitors
/// without a tournament parameter; window = 0 for full-DAG submission.
void emit_row(JsonReport& rep, const std::string& competitor, idx m, idx n,
              idx b, idx tr, int cores, const Measurement& meas,
              idx window = 0) {
  JsonValue& row = rep.new_row();
  row.set("competitor", JsonValue::make_string(competitor));
  row.set("m", JsonValue::make_number(static_cast<double>(m)));
  row.set("n", JsonValue::make_number(static_cast<double>(n)));
  row.set("b", JsonValue::make_number(static_cast<double>(b)));
  row.set("tr", JsonValue::make_number(static_cast<double>(tr)));
  row.set("cores", JsonValue::make_number(cores));
  row.set("window", JsonValue::make_number(static_cast<double>(window)));
  JsonReport::fill_measurement(row, meas);
}

}  // namespace

void run_lu_tall_figure(const std::string& title, const std::string& csv_name,
                        idx default_m, int cores, const std::vector<idx>& trs,
                        const std::vector<idx>& default_ns) {
  const idx m = env_idx("CAMULT_BENCH_M", default_m);
  const std::vector<idx> ns = env_idx_list("CAMULT_BENCH_NS", default_ns);
  // Sliding-window DAG submission for the CALU competitors; 0 (default)
  // builds the whole DAG up front. At paper scale (m = 1e6) the windowed
  // run is what keeps the task store O(window) instead of O(m/b).
  const idx window = env_idx("CAMULT_BENCH_WINDOW", 0);
  print_mode_banner(title.c_str(), cores);
  std::printf("m = %lld, window = %lld (paper: see EXPERIMENTS.md; override "
              "with CAMULT_BENCH_M / CAMULT_BENCH_NS / "
              "CAMULT_BENCH_WINDOW)\n",
              static_cast<long long>(m), static_cast<long long>(window));
  verify_lu_competitors({});

  std::vector<std::string> headers = {"n", "dgetf2", "blk_dgetrf", "tiledLU"};
  for (idx tr : trs) headers.push_back("CALU Tr=" + std::to_string(tr));
  headers.push_back("CALU/blk");
  headers.push_back("CALU/getf2");
  headers.push_back("CALU/tiled");
  Table t(headers);
  JsonReport rep(csv_name, cores);

  for (idx n : ns) {
    if (n > m) continue;
    // CAMULT_BENCH_B shrinks the panel width below the paper's 100 so a
    // reduced-size run still produces many panel iterations (the CI window
    // tier uses it to exercise slab recycling at smoke-test cost).
    const idx b = std::min<idx>(n, env_idx("CAMULT_BENCH_B", 100));
    Matrix a = random_matrix(m, n, 1000 + n);
    const double flops = lu_flops(m, n);

    const Measurement g2 = run_one(lu_getf2(), a, flops, cores);
    const Measurement blk = run_one(lu_blocked(b, cores), a, flops, cores);
    const Measurement til = run_one(lu_tiled(b), a, flops, cores);
    std::vector<Measurement> calu;
    for (idx tr : trs) {
      calu.push_back(run_one(
          lu_calu(b, tr, core::ReductionTree::Binary, window), a, flops,
          cores));
    }
    double best = 0;
    for (const auto& c : calu) best = std::max(best, c.gflops);

    emit_row(rep, "dgetf2(BLAS2)", m, n, b, 0, cores, g2);
    emit_row(rep, "blk_dgetrf", m, n, b, 0, cores, blk);
    emit_row(rep, "tiledLU", m, n, b, 0, cores, til);
    for (std::size_t i = 0; i < trs.size(); ++i) {
      emit_row(rep, "CALU Tr=" + std::to_string(trs[i]), m, n, b, trs[i],
               cores, calu[i], window);
    }

    t.row().cell(static_cast<long long>(n));
    t.cell(g2.gflops).cell(blk.gflops).cell(til.gflops);
    for (const auto& c : calu) t.cell(c.gflops);
    t.cell(blk.gflops > 0 ? best / blk.gflops : 0.0)
        .cell(g2.gflops > 0 ? best / g2.gflops : 0.0)
        .cell(til.gflops > 0 ? best / til.gflops : 0.0);
  }
  t.print(title + " (GFlop/s)", csv_path(csv_name));
  rep.write();
}

void run_qr_tall_figure(const std::string& title, const std::string& csv_name,
                        idx default_m, int cores,
                        const std::vector<idx>& default_ns) {
  const idx m = env_idx("CAMULT_BENCH_M", default_m);
  const std::vector<idx> ns = env_idx_list("CAMULT_BENCH_NS", default_ns);
  const idx window = env_idx("CAMULT_BENCH_WINDOW", 0);
  print_mode_banner(title.c_str(), cores);
  std::printf("m = %lld, window = %lld (override with CAMULT_BENCH_M / "
              "CAMULT_BENCH_NS / CAMULT_BENCH_WINDOW)\n",
              static_cast<long long>(m), static_cast<long long>(window));
  verify_qr_competitors({});

  Table t({"n", "dgeqr2", "blk_dgeqrf", "tiledQR", "CAQR Tr=4", "TSQR Tr=8",
           "TSQR/blk", "TSQR/tiled", "CAQR/blk"});
  JsonReport rep(csv_name, cores);
  for (idx n : ns) {
    if (n > m) continue;
    const idx b = std::min<idx>(n, env_idx("CAMULT_BENCH_B", 100));
    Matrix a = random_matrix(m, n, 2000 + n);
    const double flops = qr_flops(m, n);

    const Measurement g2 = run_one(qr_geqr2(), a, flops, cores);
    const Measurement blk = run_one(qr_blocked(b), a, flops, cores);
    const Measurement til = run_one(qr_tiled(b), a, flops, cores);
    const Measurement caqr = run_one(
        qr_caqr(b, 4, core::ReductionTree::Flat, "", window), a, flops,
        cores);
    const Measurement tsqr = run_one(qr_tsqr(8), a, flops, cores);

    emit_row(rep, "dgeqr2(BLAS2)", m, n, b, 0, cores, g2);
    emit_row(rep, "blk_dgeqrf", m, n, b, 0, cores, blk);
    emit_row(rep, "tiledQR", m, n, b, 0, cores, til);
    emit_row(rep, "CAQR Tr=4", m, n, b, 4, cores, caqr, window);
    emit_row(rep, "TSQR Tr=8", m, n, n, 8, cores, tsqr);

    t.row().cell(static_cast<long long>(n));
    t.cell(g2.gflops)
        .cell(blk.gflops)
        .cell(til.gflops)
        .cell(caqr.gflops)
        .cell(tsqr.gflops);
    t.cell(blk.gflops > 0 ? tsqr.gflops / blk.gflops : 0.0)
        .cell(til.gflops > 0 ? tsqr.gflops / til.gflops : 0.0)
        .cell(blk.gflops > 0 ? caqr.gflops / blk.gflops : 0.0);
  }
  t.print(title + " (GFlop/s)", csv_path(csv_name));
  rep.write();
}

void run_lu_square_table(const std::string& title,
                         const std::string& csv_name, int cores,
                         const std::vector<idx>& trs,
                         const std::vector<idx>& default_sizes) {
  const std::vector<idx> sizes =
      env_idx_list("CAMULT_BENCH_SQUARE_SIZES", default_sizes);
  print_mode_banner(title.c_str(), cores);
  verify_lu_competitors({});

  std::vector<std::string> headers = {"m=n", "blk_dgetrf", "tiledLU"};
  for (idx tr : trs) headers.push_back("CALU Tr=" + std::to_string(tr));
  Table t(headers);
  JsonReport rep(csv_name, cores);

  for (idx n : sizes) {
    const idx b = std::min<idx>(n, 100);
    Matrix a = random_matrix(n, n, 3000 + n);
    const double flops = lu_flops(n, n);
    const Measurement blk = run_one(lu_blocked(b, cores), a, flops, cores);
    const Measurement til = run_one(lu_tiled(b), a, flops, cores);
    emit_row(rep, "blk_dgetrf", n, n, b, 0, cores, blk);
    emit_row(rep, "tiledLU", n, n, b, 0, cores, til);
    t.row().cell(static_cast<long long>(n));
    t.cell(blk.gflops);
    t.cell(til.gflops);
    for (idx tr : trs) {
      const Measurement c = run_one(lu_calu(b, tr), a, flops, cores);
      emit_row(rep, "CALU Tr=" + std::to_string(tr), n, n, b, tr, cores, c);
      t.cell(c.gflops);
    }
  }
  t.print(title + " (GFlop/s)", csv_path(csv_name));
  rep.write();
}

void run_qr_square_table(const std::string& title,
                         const std::string& csv_name, int cores,
                         const std::vector<idx>& trs,
                         const std::vector<idx>& default_sizes) {
  const std::vector<idx> sizes =
      env_idx_list("CAMULT_BENCH_SQUARE_SIZES", default_sizes);
  print_mode_banner(title.c_str(), cores);
  verify_qr_competitors({});

  std::vector<std::string> headers = {"m=n", "blk_dgeqrf", "tiledQR"};
  for (idx tr : trs) headers.push_back("CAQR Tr=" + std::to_string(tr));
  Table t(headers);
  JsonReport rep(csv_name, cores);

  for (idx n : sizes) {
    const idx b = std::min<idx>(n, 100);
    Matrix a = random_matrix(n, n, 3500 + n);
    const double flops = qr_flops(n, n);
    const Measurement blk = run_one(qr_blocked(b), a, flops, cores);
    const Measurement til = run_one(qr_tiled(b), a, flops, cores);
    emit_row(rep, "blk_dgeqrf", n, n, b, 0, cores, blk);
    emit_row(rep, "tiledQR", n, n, b, 0, cores, til);
    t.row().cell(static_cast<long long>(n));
    t.cell(blk.gflops);
    t.cell(til.gflops);
    for (idx tr : trs) {
      const Measurement c =
          run_one(qr_caqr(b, tr, core::ReductionTree::Flat), a, flops, cores);
      emit_row(rep, "CAQR Tr=" + std::to_string(tr), n, n, b, tr, cores, c);
      t.cell(c.gflops);
    }
  }
  t.print(title + " (GFlop/s)", csv_path(csv_name));
  rep.write();
}

}  // namespace camult::bench
