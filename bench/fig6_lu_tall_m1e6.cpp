// Figure 6: LU of tall-skinny matrices, m = 1e6 (default scaled down; set
// CAMULT_BENCH_M=1000000 for paper scale), n from 10 to 1000, 8 cores.
#include "bench_common.hpp"

int main() {
  camult::bench::run_lu_tall_figure(
      "Figure 6: LU, tall-skinny, 8 cores (paper m=1e6)", "fig6",
      /*default_m=*/100000, /*cores=*/8, /*trs=*/{4, 8},
      /*default_ns=*/{10, 25, 50, 100, 200, 500});
  return 0;
}
