// Figure 8: QR of tall-skinny matrices, m = 1e5 (default scaled down; set
// CAMULT_BENCH_M=100000 for paper scale), n from 10 to 1000, 8 cores.
// Competitors: BLAS2 dgeqr2, vendor-style blocked dgeqrf, PLASMA-style tiled
// QR, CAQR (Tr=4, height-1 tree), multithreaded TSQR (Tr=8, binary tree).
#include "bench_common.hpp"

int main() {
  camult::bench::run_qr_tall_figure(
      "Figure 8: QR, tall-skinny, 8 cores (paper m=1e5)", "fig8",
      /*default_m=*/30000, /*cores=*/8);
  return 0;
}
