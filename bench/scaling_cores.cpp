// Strong scaling: speedup versus core count P for a fixed tall-skinny
// problem — the quantitative summary behind the paper's Figures 3-4
// (CALU Tr=1's panel bottleneck caps its scaling; Tr=P keeps scaling) and
// the Tr sweeps of Figures 5-7.
#include "bench_common.hpp"

int main() {
  using namespace camult;
  using bench::Table;

  const idx m = bench::env_idx("CAMULT_BENCH_M", 20000);
  const idx n = bench::env_idx("CAMULT_BENCH_N", 500);
  const idx b = std::min<idx>(n, 100);
  std::printf("Strong scaling, LU of %lld x %lld (b = %lld); entries are\n"
              "speedups over each algorithm's own 1-core makespan.\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(b));

  struct Algo {
    const char* name;
    bench::Competitor comp;
  };
  std::vector<Algo> algos;
  algos.push_back({"blk_dgetrf", bench::lu_blocked(b, 16)});
  algos.push_back({"tiledLU", bench::lu_tiled(b)});
  algos.push_back({"CALU Tr=1", bench::lu_calu(b, 1)});
  algos.push_back({"CALU Tr=4", bench::lu_calu(b, 4)});
  algos.push_back({"CALU Tr=16", bench::lu_calu(b, 16)});

  const std::vector<idx> cores = {1, 2, 4, 8, 16, 32};
  std::vector<std::string> headers = {"algorithm"};
  for (idx p : cores) headers.push_back("P=" + std::to_string(p));
  Table t(headers);

  Matrix a = random_matrix(m, n, 4040);
  const double flops = bench::lu_flops(m, n);
  for (const Algo& algo : algos) {
    // One serial record pass, then simulate each core count (the record is
    // reused internally by measure for each P; acceptable cost).
    std::vector<double> secs;
    for (idx p : cores) {
      secs.push_back(bench::measure(
                         [&](int threads) { return algo.comp.run(a, threads); },
                         flops, static_cast<int>(p))
                         .seconds);
    }
    t.row().cell(algo.name);
    for (std::size_t i = 0; i < cores.size(); ++i) {
      t.cell(secs[0] / secs[i]);
    }
  }
  t.print("Strong scaling (speedup vs own 1-core run)",
          bench::csv_path("scaling_cores"));
  bench::JsonReport rep("scaling_cores", static_cast<int>(cores.back()));
  rep.add_table(t);
  rep.write();
  std::printf(
      "\nExpected shape: CALU Tr=1 saturates early (serial panel on the\n"
      "critical path); CALU Tr=P keeps scaling; the tiled pipeline scales\n"
      "until the chain length binds.\n");
  return 0;
}
