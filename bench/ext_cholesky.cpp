// Extension: tiled Cholesky versus blocked Cholesky (beyond the paper's
// LU/QR scope, from the tiled-algorithms baseline family of Buttari et al.
// [5]). Cholesky needs no pivoting, so its tile DAG is the widest of the
// three one-sided factorizations — the fork-join blocked algorithm loses by
// the largest margin here.
#include "bench_common.hpp"
#include "blas/blas.hpp"
#include "lapack/potrf.hpp"
#include "tiled/tile_cholesky.hpp"

namespace {

using namespace camult;

Matrix make_spd(idx n, std::uint64_t seed) {
  Matrix b = random_matrix(n, n, seed);
  Matrix a = Matrix::identity(n, n);
  for (idx i = 0; i < n; ++i) a(i, i) = static_cast<double>(n);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::Trans, 1.0, b, b, 1.0,
             a.view());
  return a;
}

double chol_flops(idx n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0;
}

}  // namespace

int main() {
  using bench::Table;
  const std::vector<idx> sizes =
      bench::env_idx_list("CAMULT_BENCH_SQUARE_SIZES", {500, 1000, 2000});
  const int cores = 8;
  bench::print_mode_banner("Extension: Cholesky, blocked vs tiled", cores);

  // Correctness gate.
  {
    Matrix a = make_spd(150, 77);
    Matrix c1 = a, c2 = a;
    if (lapack::potrf(c1.view()) != 0 ||
        lapack::cholesky_residual(a, c1) > 100.0) {
      std::fprintf(stderr, "VERIFICATION FAILED: blocked potrf\n");
      return 1;
    }
    tiled::TileCholeskyOptions o;
    o.b = 50;
    o.num_threads = 2;
    if (tiled::tile_cholesky_factor(c2.view(), o).info != 0 ||
        lapack::cholesky_residual(a, c2) > 100.0) {
      std::fprintf(stderr, "VERIFICATION FAILED: tiled cholesky\n");
      return 1;
    }
    std::printf("correctness gate: Cholesky variants verified\n");
  }

  Table t({"n", "blk_dpotrf (serial task)", "tiledChol", "tiled/blk"});
  for (idx n : sizes) {
    Matrix a = make_spd(n, 4100 + n);
    const idx b = std::min<idx>(n, 100);
    const double flops = chol_flops(n);

    // Blocked potrf as one serial task (vendor-style lower bound: its
    // trailing update could be parallelized fork-join, but the panel chain
    // still serializes; we report the fully serial cost as the baseline).
    const bench::Measurement blocked = bench::measure(
        [&](int) {
          Matrix w = a;
          return bench::one_task([&] { lapack::potrf(w.view()); });
        },
        flops, cores);

    const bench::Measurement tiledm = bench::measure(
        [&](int threads) {
          Matrix w = a;
          tiled::TileCholeskyOptions o;
          o.b = b;
          o.num_threads = threads;
          auto r = tiled::tile_cholesky_factor(w.view(), o);
          return bench::RunArtifacts{std::move(r.trace), std::move(r.edges),
                                     std::move(r.sched)};
        },
        flops, cores);

    t.row().cell(static_cast<long long>(n));
    t.cell(blocked.gflops).cell(tiledm.gflops);
    t.cell(blocked.gflops > 0 ? tiledm.gflops / blocked.gflops : 0.0);
  }
  t.print("Extension: Cholesky (GFlop/s, simulated 8 cores)",
          bench::csv_path("ext_cholesky"));
  bench::JsonReport rep("ext_cholesky", 8);
  rep.add_table(t);
  rep.write();
  return 0;
}
