// Kernel microbenchmarks (google-benchmark): the sequential building blocks
// whose relative speeds drive every result in the paper — BLAS-3 gemm/trsm,
// the compact-WY update larfb, and the four panel kernels (BLAS2 getf2/geqr2
// vs recursive rgetf2/geqr3). The "CA algorithms use the best sequential
// kernel" claim (Section II) is visible here as rgetf2/geqr3 beating their
// BLAS2 counterparts on tall panels.
#include <benchmark/benchmark.h>

#include "bench_support/flops.hpp"
#include "blas/blas.hpp"
#include "core/tslu.hpp"
#include "lapack/lapack.hpp"
#include "matrix/random.hpp"

namespace {

using namespace camult;

void BM_gemm(benchmark::State& state) {
  const idx n = state.range(0);
  Matrix a = random_matrix(n, n, 1);
  Matrix b = random_matrix(n, n, 2);
  Matrix c = Matrix::zeros(n, n);
  for (auto _ : state) {
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, b, 0.0,
               c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_gemm_panel_shape(benchmark::State& state) {
  // The CALU update shape: (m x b) * (b x b).
  const idx m = state.range(0), b = 100;
  Matrix l = random_matrix(m, b, 3);
  Matrix u = random_matrix(b, b, 4);
  Matrix c = random_matrix(m, b, 5);
  for (auto _ : state) {
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0, l, u, 1.0,
               c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m) * b * b * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_gemm_panel_shape)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_trsm(benchmark::State& state) {
  const idx n = state.range(0), b = 100;
  Matrix a = random_matrix(b, b, 6);
  for (idx i = 0; i < b; ++i) a(i, i) += 4.0;
  Matrix rhs = random_matrix(n, b, 7);
  for (auto _ : state) {
    Matrix w = rhs;
    blas::trsm(blas::Side::Right, blas::Uplo::Upper, blas::Trans::NoTrans,
               blas::Diag::NonUnit, 1.0, a, w.view());
    benchmark::DoNotOptimize(w.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(n) * b * b * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_trsm)->Arg(1000)->Arg(4000);

void BM_larfb(benchmark::State& state) {
  // CAQR leaf update shape: block reflector (m x b) applied to (m x b).
  const idx m = state.range(0), b = 100;
  Matrix v = random_matrix(m, b, 8);
  std::vector<double> tau;
  Matrix t = Matrix::zeros(b, b);
  lapack::geqr3(v.view(), tau, t.view());
  Matrix c = random_matrix(m, b, 9);
  for (auto _ : state) {
    lapack::larfb_left(blas::Trans::Trans, v, t.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      4.0 * static_cast<double>(m) * b * b * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_larfb)->Arg(1000)->Arg(4000);

template <int Kernel>  // 0 = getf2, 1 = rgetf2
void BM_lu_panel(benchmark::State& state) {
  const idx m = state.range(0), b = 100;
  Matrix a = random_matrix(m, b, 10);
  for (auto _ : state) {
    Matrix w = a;
    PivotVector ipiv;
    if constexpr (Kernel == 0) {
      lapack::getf2(w.view(), ipiv);
    } else {
      lapack::rgetf2(w.view(), ipiv);
    }
    benchmark::DoNotOptimize(w.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      camult::bench::lu_flops(m, b) * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK_TEMPLATE(BM_lu_panel, 0)->Name("BM_getf2_panel")->Arg(2000)->Arg(10000);
BENCHMARK_TEMPLATE(BM_lu_panel, 1)->Name("BM_rgetf2_panel")->Arg(2000)->Arg(10000);

template <int Kernel>  // 0 = geqr2, 1 = geqr3
void BM_qr_panel(benchmark::State& state) {
  const idx m = state.range(0), b = 100;
  Matrix a = random_matrix(m, b, 11);
  for (auto _ : state) {
    Matrix w = a;
    std::vector<double> tau;
    if constexpr (Kernel == 0) {
      lapack::geqr2(w.view(), tau);
    } else {
      Matrix t = Matrix::zeros(b, b);
      lapack::geqr3(w.view(), tau, t.view());
    }
    benchmark::DoNotOptimize(w.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      camult::bench::qr_flops(m, b) * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK_TEMPLATE(BM_qr_panel, 0)->Name("BM_geqr2_panel")->Arg(2000)->Arg(10000);
BENCHMARK_TEMPLATE(BM_qr_panel, 1)->Name("BM_geqr3_panel")->Arg(2000)->Arg(10000);

void BM_tslu_panel(benchmark::State& state) {
  const idx m = state.range(0), b = 100;
  Matrix a = random_matrix(m, b, 12);
  for (auto _ : state) {
    Matrix w = a;
    PivotVector ipiv;
    core::TsluOptions o;
    o.tr = 8;
    camult::core::tslu_factor(w.view(), ipiv, o);
    benchmark::DoNotOptimize(w.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      camult::bench::lu_flops(m, b) * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_tslu_panel)->Arg(2000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
