// Table II: LU GFlop/s for square matrices on the 16-core AMD machine.
// Paper sizes: 1000..5000.
#include "bench_common.hpp"

int main() {
  camult::bench::run_lu_square_table(
      "Table II: LU, square, 16 cores (AMD)", "table2", /*cores=*/16,
      /*trs=*/{1, 2, 4, 8, 16}, /*default_sizes=*/{500, 1000, 2000});
  return 0;
}
