// repeated_calls.cpp — amortizing worker startup across many small
// factorizations.
//
// The paper's experiments factor one large matrix per process, so spawning
// the worker threads inside calu_factor was free. Real callers (panel
// sweeps, batched least-squares, iterative refinement) call the
// factorization thousands of times on small matrices, where the per-call
// thread spawn/join AND the loss of the workers' thread-local slab pools
// dominate. This bench measures back-to-back small-problem throughput in
// three modes:
//
//   owned  — each call spawns and joins its own workers (the old behavior)
//   pool   — every call attaches to one persistent rt::WorkerPool
//   batch  — calu_factor_batch submits several DAGs to the pool at once
//
// plus the same owned/pool comparison for CAQR. The JSON rows also record
// cross_call_pool_hits: the slab-pool hit delta between the persistent
// pool's first and second call, which is the reuse per-call workers can
// never achieve (their pools die with the threads).
#include <chrono>
#include <functional>

#include "bench_common.hpp"
#include "core/drivers.hpp"
#include "runtime/worker_pool.hpp"

namespace {

using namespace camult;
using Clock = std::chrono::steady_clock;

double time_reps(int reps, const std::function<void()>& call) {
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) call();
  const auto t1 = Clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const int reps = static_cast<int>(bench::env_idx("CAMULT_BENCH_REPS", 40));
  const idx m = bench::env_idx("CAMULT_BENCH_M", 256);
  const idx b = bench::env_idx("CAMULT_BENCH_B", 64);
  const idx batch_size = bench::env_idx("CAMULT_BENCH_BATCH", 4);
  const int threads = rt::default_num_threads();
  std::printf(
      "repeated small factorizations: %lld x %lld, b=%lld, %d threads, "
      "%d calls per mode (batch size %lld)\n",
      static_cast<long long>(m), static_cast<long long>(m),
      static_cast<long long>(b), threads, reps,
      static_cast<long long>(batch_size));

  const Matrix a0 = random_matrix(m, m, 7);
  core::CaluOptions lu;
  lu.b = b;
  lu.tr = 2;
  lu.num_threads = threads;
  lu.record_trace = false;
  core::CaqrOptions qr;
  qr.b = b;
  qr.tr = 2;
  qr.num_threads = threads;
  qr.record_trace = false;

  rt::WorkerPool pool(rt::WorkerPoolConfig{threads, false});
  core::CaluOptions lu_pool = lu;
  lu_pool.pool = &pool;
  core::CaqrOptions qr_pool = qr;
  qr_pool.pool = &pool;

  auto lu_call = [&](const core::CaluOptions& o) {
    Matrix w = a0;
    (void)core::calu_factor(w.view(), o);
  };
  auto qr_call = [&](const core::CaqrOptions& o) {
    Matrix w = a0;
    (void)core::caqr_factor(w.view(), o);
  };

  // Cross-call slab reuse on the (so far cold) persistent pool: the second
  // call must be served from slabs the first call parked in the workers'
  // thread-local pools. Per-call workers restart from empty pools every
  // time, so this delta is exactly what persistence buys.
  lu_call(lu_pool);
  const blas::BufferPoolStats warm = core::pool_buffer_stats(pool);
  lu_call(lu_pool);
  const blas::BufferPoolStats second = core::pool_buffer_stats(pool);
  const long long cross_call_hits =
      static_cast<long long>(second.pool_hits - warm.pool_hits);
  const long long cross_call_allocs =
      static_cast<long long>(second.allocs - warm.allocs);
  std::printf(
      "persistent pool, 2nd CALU call: %lld slab hits, %lld new allocs\n",
      cross_call_hits, cross_call_allocs);

  lu_call(lu);  // warm the owned path too (first-touch, code paging)
  qr_call(qr);
  qr_call(qr_pool);

  struct Row {
    const char* mode;
    const char* algo;
    int calls;
    double seconds;
  };
  std::vector<Row> rows;
  rows.push_back({"owned", "calu", reps, time_reps(reps, [&] { lu_call(lu); })});
  rows.push_back(
      {"pool", "calu", reps, time_reps(reps, [&] { lu_call(lu_pool); })});
  {
    // Batched: same total number of factorizations, submitted batch_size
    // DAGs at a time so the pool's workers rotate between them.
    const int n_batches =
        (reps + static_cast<int>(batch_size) - 1) / static_cast<int>(batch_size);
    const double secs = time_reps(n_batches, [&] {
      std::vector<Matrix> ws(static_cast<std::size_t>(batch_size), a0);
      std::vector<MatrixView> views;
      views.reserve(ws.size());
      for (Matrix& w : ws) views.push_back(w.view());
      (void)core::calu_factor_batch(views, lu_pool);
    });
    rows.push_back(
        {"batch", "calu", n_batches * static_cast<int>(batch_size), secs});
  }
  rows.push_back({"owned", "caqr", reps, time_reps(reps, [&] { qr_call(qr); })});
  rows.push_back(
      {"pool", "caqr", reps, time_reps(reps, [&] { qr_call(qr_pool); })});

  auto owned_ms = [&](const char* algo) {
    for (const Row& r : rows) {
      if (std::string(r.mode) == "owned" && std::string(r.algo) == algo) {
        return r.seconds * 1e3 / r.calls;
      }
    }
    return 0.0;
  };

  bench::Table t({"mode", "algo", "calls", "ms/call", "speedup vs owned"});
  bench::JsonReport rep("repeated_calls", threads, "real");
  for (const Row& r : rows) {
    const double ms = r.seconds * 1e3 / r.calls;
    const double speedup = owned_ms(r.algo) / ms;
    t.row().cell(r.mode).cell(r.algo);
    t.cell(static_cast<long long>(r.calls)).cell(ms).cell(speedup);
    bench::JsonValue& row = rep.new_row();
    row.set("competitor", bench::JsonValue::make_string(
                              std::string(r.algo) + "/" + r.mode));
    row.set("mode_kind", bench::JsonValue::make_string(r.mode));
    row.set("m", bench::JsonValue::make_number(static_cast<double>(m)));
    row.set("n", bench::JsonValue::make_number(static_cast<double>(m)));
    row.set("b", bench::JsonValue::make_number(static_cast<double>(b)));
    row.set("tr", bench::JsonValue::make_number(2));
    row.set("cores", bench::JsonValue::make_number(threads));
    row.set("calls", bench::JsonValue::make_number(r.calls));
    row.set("seconds", bench::JsonValue::make_number(r.seconds));
    row.set("ms_per_call", bench::JsonValue::make_number(ms));
    row.set("speedup_vs_owned", bench::JsonValue::make_number(speedup));
    if (std::string(r.mode) != "owned") {
      row.set("cross_call_pool_hits",
              bench::JsonValue::make_number(
                  static_cast<double>(cross_call_hits)));
      row.set("cross_call_pool_allocs",
              bench::JsonValue::make_number(
                  static_cast<double>(cross_call_allocs)));
    }
  }
  t.print("Repeated small-problem throughput",
          bench::csv_path("repeated_calls"));
  rep.write();

  const rt::WorkerPoolStats ps = pool.stats();
  std::printf(
      "\npool lifetime: %lld graphs attached, %lld parks, %lld tasks\n",
      static_cast<long long>(ps.graphs_attached),
      static_cast<long long>(ps.parks),
      static_cast<long long>(ps.lifetime.totals().tasks_executed));
  return 0;
}
