// Panel factorization study: the heart of the paper's argument. A panel
// (m x b, b = 100) is factored by
//   * dgetf2  — BLAS2 partial pivoting (what vendor dgetrf uses inside),
//   * rgetf2  — recursive BLAS3 partial pivoting (serial optimum),
//   * TSLU    — tournament pivoting, serial (shows the redundant flops),
//   * TSLU P=8 — tournament pivoting with Tr=8 task-parallel leaves on 8
//     simulated cores (the parallel panel CALU puts on its critical path).
#include "bench_common.hpp"
#include "core/tslu.hpp"

int main() {
  using namespace camult;
  using bench::Table;

  const idx b = 100;
  const std::vector<idx> ms = bench::env_idx_list(
      "CAMULT_BENCH_MS", {2000, 10000, 50000, 200000});
  const int cores = 8;
  bench::print_mode_banner("Panel factorization (m x 100)", cores);

  Table t({"m", "dgetf2", "rgetf2", "TSLU serial", "TSLU P=8",
           "TSLU_P/getf2"});
  for (idx m : ms) {
    Matrix a = random_matrix(m, b, 8000 + m);
    const double flops = bench::lu_flops(m, b);

    auto serial = [&](auto&& kernel) {
      return bench::measure(
          [&](int) {
            Matrix w = a;
            return bench::one_task([&] { kernel(w); });
          },
          flops, cores);
    };
    const bench::Measurement m_getf2 = serial([](Matrix& w) {
      PivotVector ipiv;
      lapack::getf2(w.view(), ipiv);
    });
    const bench::Measurement m_rgetf2 = serial([](Matrix& w) {
      PivotVector ipiv;
      lapack::rgetf2(w.view(), ipiv);
    });
    const bench::Measurement m_tslu_serial = serial([](Matrix& w) {
      PivotVector ipiv;
      core::TsluOptions o;
      o.tr = 8;
      core::tslu_factor(w.view(), ipiv, o);
    });
    // Task-parallel TSLU = single-panel CALU (n == b).
    const bench::Measurement m_tslu_par = bench::measure(
        [&](int threads) {
          Matrix w = a;
          core::CaluOptions o;
          o.b = b;
          o.tr = 8;
          o.num_threads = threads;
          auto r = core::calu_factor(w.view(), o);
          return bench::RunArtifacts{std::move(r.trace), std::move(r.edges),
                                     std::move(r.sched)};
        },
        flops, cores);

    t.row().cell(static_cast<long long>(m));
    t.cell(m_getf2.gflops)
        .cell(m_rgetf2.gflops)
        .cell(m_tslu_serial.gflops)
        .cell(m_tslu_par.gflops);
    t.cell(m_getf2.gflops > 0 ? m_tslu_par.gflops / m_getf2.gflops : 0.0);
  }
  t.print("Panel kernels (GFlop/s); paper claim: parallel TSLU removes the "
          "panel bottleneck",
          bench::csv_path("panel_tslu"));
  bench::JsonReport rep("panel_tslu", 8);
  rep.add_table(t);
  rep.write();
  return 0;
}
