// Ablation: the Section V future-work extension — trailing-matrix updates
// on column super-blocks B = g*b. Larger B means fewer, larger BLAS-3 tasks
// (less scheduling overhead, better gemm shape) but less parallelism.
// Also ablates the look-ahead-of-1 priority policy.
#include "bench_common.hpp"

namespace {

camult::bench::Competitor calu_variant(camult::idx b, camult::idx tr,
                                       camult::idx group, bool lookahead,
                                       bool pack = true) {
  using namespace camult;
  return {"CALU",
          [b, tr, group, lookahead, pack](const Matrix& a, int threads) {
            Matrix w = a;
            core::CaluOptions o;
            o.b = b;
            o.tr = tr;
            o.num_threads = threads;
            o.update_cols_per_task = group;
            o.lookahead = lookahead;
            o.pack_trailing = pack;
            auto r = core::calu_factor(w.view(), o);
            return bench::RunArtifacts{std::move(r.trace),
                                       std::move(r.edges),
                                       std::move(r.sched)};
          }};
}

}  // namespace

int main() {
  using namespace camult;
  using bench::Table;

  const std::vector<idx> sizes =
      bench::env_idx_list("CAMULT_BENCH_SQUARE_SIZES", {500, 1000, 1500});
  const int cores = 8;
  bench::print_mode_banner("Ablation: update column blocking B = g*b", cores);

  Table t({"m=n", "B=b", "B=2b", "B=4b", "B=all", "no-lookahead(B=b)",
           "no-pack(B=b)"});
  for (idx n : sizes) {
    Matrix a = random_matrix(n, n, 600 + n);
    const idx b = std::min<idx>(n, 100);
    const double flops = bench::lu_flops(n, n);
    auto run = [&](const bench::Competitor& c) {
      return bench::measure(
                 [&](int threads) { return c.run(a, threads); }, flops, cores)
          .gflops;
    };
    t.row().cell(static_cast<long long>(n));
    t.cell(run(calu_variant(b, 4, 1, true)));
    t.cell(run(calu_variant(b, 4, 2, true)));
    t.cell(run(calu_variant(b, 4, 4, true)));
    t.cell(run(calu_variant(b, 4, 1 << 20, true)));
    t.cell(run(calu_variant(b, 4, 1, false)));
    t.cell(run(calu_variant(b, 4, 1, true, /*pack=*/false)));
  }
  t.print("Ablation: trailing-update blocking and look-ahead (GFlop/s)",
          bench::csv_path("ablation_update_block"));
  bench::JsonReport rep("ablation_update_block", 8);
  rep.add_table(t);
  rep.write();
  return 0;
}
