// Figure 7: LU of tall-skinny matrices on the 16-core AMD machine (paper
// m=1e5). Competitors: vendor-style blocked dgetrf (the ACML stand-in),
// tiled LU, CALU with Tr = 8 and 16.
#include "bench_common.hpp"

int main() {
  camult::bench::run_lu_tall_figure(
      "Figure 7: LU, tall-skinny, 16 cores (paper m=1e5, AMD)", "fig7",
      /*default_m=*/30000, /*cores=*/16, /*trs=*/{8, 16});
  return 0;
}
