// service_load.cpp — open-loop load test of the svc job service.
//
// An open-loop (Poisson arrival) generator is the honest way to measure a
// service: a closed loop slows its own arrival rate down exactly when the
// server is struggling, hiding the queueing collapse this bench exists to
// show. Here arrivals are scheduled from a seeded exponential clock and
// submitted regardless of how far behind the service is.
//
// Protocol: first a short calibration burst measures the service's drain
// throughput; then two timed phases run the same mixed traffic —
//
//   unloaded — arrivals at ~50% of calibrated capacity
//   overload — arrivals at ~200% of capacity (the acceptance regime: only
//              the lowest QoS class may be shed, and the interactive p99
//              must stay within a small factor of its unloaded p99)
//
// Traffic mixes tall-skinny CAQR jobs (TSQR's home turf) with square CALU
// jobs across three QoS classes / tenants: interactive (20%), normal (40%),
// batch (40%). Per phase and class the report emits jobs, completed, shed,
// rejected, p50/p99 total latency, and completed-jobs/sec — typed rows in
// BENCH_service_load.json (validated by tools/check_bench_json).
//
// Env knobs: CAMULT_BENCH_SVC_JOBS (arrivals per phase, default 120),
// CAMULT_BENCH_SVC_THREADS (pool size), CAMULT_BENCH_SVC_QUEUE (admission
// bound, default 16), CAMULT_BENCH_SEED, CAMULT_BENCH_DEADLINE_MS (per-job
// deadline for interactive traffic, default 0 = none).
#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "matrix/random.hpp"
#include "svc/service.hpp"

namespace {

using namespace camult;
using Clock = std::chrono::steady_clock;

struct InflightJob {
  Matrix storage;
  svc::JobHandle handle;
  svc::QosClass qos;
  bool accepted = false;
};

struct ClassTally {
  long long jobs = 0;
  long long completed = 0;
  long long shed = 0;
  long long rejected = 0;
  long long cancelled = 0;
  std::vector<double> latency_ms;  ///< total_ms of completed jobs
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

/// One traffic sample: QoS class, tenant, and problem shape/kind, drawn
/// from the mix the header documents.
svc::JobRequest draw_request(std::mt19937& rng, const Matrix& tall,
                             const Matrix& square, Matrix* storage,
                             std::chrono::milliseconds deadline) {
  svc::JobRequest req;
  const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  if (u < 0.2) {
    req.qos = svc::QosClass::Interactive;
    req.tenant = "tenant-interactive";
    if (deadline.count() > 0) req.deadline = deadline;
  } else if (u < 0.6) {
    req.qos = svc::QosClass::Normal;
    req.tenant = "tenant-normal";
  } else {
    req.qos = svc::QosClass::Batch;
    req.tenant = "tenant-batch";
  }
  const bool tall_skinny =
      std::uniform_real_distribution<double>(0.0, 1.0)(rng) < 0.5;
  if (tall_skinny) {
    *storage = tall;  // copy; the service factors it in place
    req.kind = svc::JobKind::CaqrFactor;
    req.b = 16;
    req.tr = 4;
  } else {
    *storage = square;
    req.kind = svc::JobKind::CaluFactor;
    req.b = 32;
    req.tr = 2;
  }
  req.a = storage->view();
  return req;
}

struct PhaseResult {
  double elapsed_s = 0.0;
  std::array<ClassTally, svc::kQosClasses> per_class;
};

/// Run one open-loop phase: `jobs` arrivals at `rate_hz`, then drain.
PhaseResult run_phase(svc::Service& service, int jobs, double rate_hz,
                      std::uint32_t seed, const Matrix& tall,
                      const Matrix& square,
                      std::chrono::milliseconds deadline) {
  std::mt19937 rng(seed);
  std::exponential_distribution<double> gap(rate_hz);
  std::vector<std::unique_ptr<InflightJob>> inflight;
  inflight.reserve(static_cast<std::size_t>(jobs));

  const Clock::time_point t0 = Clock::now();
  Clock::time_point next_arrival = t0;
  for (int i = 0; i < jobs; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap(rng)));
    auto job = std::make_unique<InflightJob>();
    const svc::JobRequest req =
        draw_request(rng, tall, square, &job->storage, deadline);
    job->qos = req.qos;
    const svc::Service::Admission adm = service.submit(req);
    job->handle = adm.handle;
    job->accepted = adm.accepted;
    inflight.push_back(std::move(job));
  }
  service.drain();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  PhaseResult res;
  res.elapsed_s = elapsed;
  for (const auto& job : inflight) {
    ClassTally& c = res.per_class[static_cast<std::size_t>(job->qos)];
    ++c.jobs;
    const svc::JobOutcome& out = job->handle.wait();
    switch (out.status) {
      case svc::JobStatus::Completed:
        ++c.completed;
        c.latency_ms.push_back(out.total_ms);
        break;
      case svc::JobStatus::ShedQueueFull:
      case svc::JobStatus::ShedDeadline:
        ++c.shed;
        break;
      case svc::JobStatus::Rejected:
        ++c.rejected;
        break;
      default:
        ++c.cancelled;
        break;
    }
  }
  return res;
}

}  // namespace

int main() {
  const int jobs =
      static_cast<int>(bench::env_idx("CAMULT_BENCH_SVC_JOBS", 120));
  const int threads = static_cast<int>(bench::env_idx(
      "CAMULT_BENCH_SVC_THREADS", rt::default_num_threads()));
  const auto queue_cap =
      static_cast<std::size_t>(bench::env_idx("CAMULT_BENCH_SVC_QUEUE", 16));
  const auto seed =
      static_cast<std::uint32_t>(bench::env_idx("CAMULT_BENCH_SEED", 42));
  const std::chrono::milliseconds deadline(
      bench::env_idx("CAMULT_BENCH_DEADLINE_MS", 0));

  const Matrix tall = random_matrix(384, 48, 11);
  const Matrix square = random_matrix(128, 128, 12);

  svc::ServiceConfig cfg;
  cfg.num_threads = threads;
  cfg.max_inflight = 2;
  cfg.max_queue = queue_cap;
  svc::Service service(cfg);

  // Warm up (thread-local slab pools, first-touch paging), then calibrate:
  // submit a burst with no pacing and measure drain throughput. The burst
  // is capped at the queue bound so calibration itself never sheds.
  (void)run_phase(service, 4, 1e6, seed, tall, square, deadline);
  const int calib_jobs =
      static_cast<int>(std::min<std::size_t>(queue_cap, 12));
  const PhaseResult calib = run_phase(service, calib_jobs, 1e6, seed + 1,
                                      tall, square, deadline);
  double capacity_hz =
      static_cast<double>(calib_jobs) / std::max(calib.elapsed_s, 1e-6);
  capacity_hz = std::max(capacity_hz, 1.0);
  std::printf(
      "service_load: %d threads, queue %zu, calibrated capacity %.1f "
      "jobs/s\n",
      threads, queue_cap, capacity_hz);

  struct Phase {
    const char* name;
    double rate_hz;
    PhaseResult res;
  };
  std::vector<Phase> phases;
  phases.push_back({"unloaded", 0.5 * capacity_hz, {}});
  phases.push_back({"overload", 2.0 * capacity_hz, {}});
  for (std::size_t p = 0; p < phases.size(); ++p) {
    phases[p].res =
        run_phase(service, jobs, phases[p].rate_hz,
                  seed + 10 * static_cast<std::uint32_t>(p + 1), tall,
                  square, deadline);
  }

  bench::Table t({"phase", "qos", "jobs", "completed", "shed", "rejected",
                  "p50 ms", "p99 ms", "jobs/s"});
  bench::JsonReport rep("service_load", threads, "real");
  for (Phase& ph : phases) {
    for (int c = svc::kQosClasses - 1; c >= 0; --c) {
      ClassTally& tally = ph.res.per_class[static_cast<std::size_t>(c)];
      const double p50 = percentile(tally.latency_ms, 0.50);
      const double p99 = percentile(tally.latency_ms, 0.99);
      const double rate = static_cast<double>(tally.completed) /
                          std::max(ph.res.elapsed_s, 1e-6);
      const char* qos = svc::qos_name(static_cast<svc::QosClass>(c));
      t.row().cell(ph.name).cell(qos);
      t.cell(tally.jobs).cell(tally.completed).cell(tally.shed);
      t.cell(tally.rejected).cell(p50).cell(p99).cell(rate);
      bench::JsonValue& row = rep.new_row();
      row.set("competitor", bench::JsonValue::make_string(
                                std::string(ph.name) + "/" + qos));
      row.set("phase", bench::JsonValue::make_string(ph.name));
      row.set("qos", bench::JsonValue::make_string(qos));
      row.set("cores", bench::JsonValue::make_number(threads));
      row.set("jobs", bench::JsonValue::make_number(
                          static_cast<double>(tally.jobs)));
      row.set("completed", bench::JsonValue::make_number(
                               static_cast<double>(tally.completed)));
      row.set("shed", bench::JsonValue::make_number(
                          static_cast<double>(tally.shed)));
      row.set("rejected", bench::JsonValue::make_number(
                              static_cast<double>(tally.rejected)));
      row.set("p50_ms", bench::JsonValue::make_number(p50));
      row.set("p99_ms", bench::JsonValue::make_number(p99));
      row.set("jobs_per_sec", bench::JsonValue::make_number(rate));
    }
  }
  t.print("Service under open-loop load", bench::csv_path("service_load"));
  rep.write();

  // The acceptance properties, reported (and checked in tests/test_svc):
  // shed stays in the bottom class and the premium p99 stays bounded.
  auto& un = phases[0].res.per_class;
  auto& ov = phases[1].res.per_class;
  const long long upper_shed =
      ov[1].shed + ov[2].shed + un[1].shed + un[2].shed;
  std::printf("\noverload shed: batch %lld, above-batch %lld\n",
              ov[0].shed + ov[0].rejected, upper_shed);
  if (!un[2].latency_ms.empty() && !ov[2].latency_ms.empty()) {
    std::printf("interactive p99: unloaded %.1f ms, overload %.1f ms\n",
                percentile(un[2].latency_ms, 0.99),
                percentile(ov[2].latency_ms, 0.99));
  }
  const svc::ServiceStats st = service.stats();
  std::printf("queue drained: %zu queued, %d inflight at exit\n", st.queued,
              st.inflight);
  return st.queued == 0 && st.inflight == 0 ? 0 : 1;
}
