// Ablation: dense stacked tree-node kernels vs structured triangle-triangle
// (tpqrt) kernels for binary-tree TSQR/CAQR. The structured kernel does
// ~half the node flops and updates trailing slices in place (no
// gather/scatter), at identical numerics.
#include "bench_common.hpp"

namespace {

camult::bench::Competitor caqr_variant(camult::idx b, camult::idx tr,
                                       bool structured, const char* name) {
  using namespace camult;
  return {name, [b, tr, structured](const Matrix& a, int threads) {
            Matrix w = a;
            core::CaqrOptions o;
            o.b = b;
            o.tr = tr;
            o.tree = core::ReductionTree::Binary;
            o.structured_nodes = structured;
            o.num_threads = threads;
            auto r = core::caqr_factor(w.view(), o);
            return bench::RunArtifacts{std::move(r.trace),
                                       std::move(r.edges),
                                       std::move(r.sched)};
          }};
}

}  // namespace

int main() {
  using namespace camult;
  using bench::Table;

  const idx m = bench::env_idx("CAMULT_BENCH_M", 20000);
  const std::vector<idx> ns =
      bench::env_idx_list("CAMULT_BENCH_NS", {50, 100, 200, 500});
  const int cores = 8;
  bench::print_mode_banner("Ablation: dense vs structured (tpqrt) nodes",
                           cores);

  Table t({"n", "TSQR dense", "TSQR tpqrt", "CAQR dense", "CAQR tpqrt",
           "node speedup"});
  for (idx n : ns) {
    Matrix a = random_matrix(m, n, 900 + n);
    const idx b = std::min<idx>(n, 100);
    const double flops = bench::qr_flops(m, n);
    auto run = [&](const bench::Competitor& c) {
      return bench::measure(
                 [&](int threads) { return c.run(a, threads); }, flops, cores)
          .gflops;
    };
    const double tsqr_d = run(caqr_variant(n, 8, false, "tsqr_d"));
    const double tsqr_s = run(caqr_variant(n, 8, true, "tsqr_s"));
    const double caqr_d = run(caqr_variant(b, 8, false, "caqr_d"));
    const double caqr_s = run(caqr_variant(b, 8, true, "caqr_s"));
    t.row().cell(static_cast<long long>(n));
    t.cell(tsqr_d).cell(tsqr_s).cell(caqr_d).cell(caqr_s);
    t.cell(tsqr_d > 0 ? tsqr_s / tsqr_d : 0.0);
  }
  t.print("Ablation: dense vs structured tree-node kernels (GFlop/s)",
          bench::csv_path("ablation_structured"));
  bench::JsonReport rep("ablation_structured", 8);
  rep.add_table(t);
  rep.write();
  return 0;
}
