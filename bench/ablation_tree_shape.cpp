// Ablation: binary versus height-1 (flat) reduction trees for TSLU/TSQR
// panels, the design choice discussed in Sections II-III (the paper uses a
// binary tree for TSLU/TSQR and finds the height-1 tree an efficient
// alternative for CAQR).
#include "bench_common.hpp"

int main() {
  using namespace camult;
  using bench::Table;

  const idx m = bench::env_idx("CAMULT_BENCH_M", 20000);
  const std::vector<idx> ns =
      bench::env_idx_list("CAMULT_BENCH_NS", {50, 100, 200, 500});
  const int cores = 8;
  bench::print_mode_banner("Ablation: reduction tree shape", cores);

  Table t({"n", "CALU bin", "CALU flat", "CAQR bin", "CAQR flat", "TSQR bin",
           "TSQR flat", "TSQR hybrid"});
  for (idx n : ns) {
    Matrix a = random_matrix(m, n, 500 + n);
    const idx b = std::min<idx>(n, 100);
    const double luf = bench::lu_flops(m, n);
    const double qrf = bench::qr_flops(m, n);

    auto run = [&](const bench::Competitor& c, double flops) {
      return bench::measure(
                 [&](int threads) { return c.run(a, threads); }, flops, cores)
          .gflops;
    };
    t.row().cell(static_cast<long long>(n));
    t.cell(run(bench::lu_calu(b, 8, core::ReductionTree::Binary), luf));
    t.cell(run(bench::lu_calu(b, 8, core::ReductionTree::Flat), luf));
    t.cell(run(bench::qr_caqr(b, 8, core::ReductionTree::Binary), qrf));
    t.cell(run(bench::qr_caqr(b, 8, core::ReductionTree::Flat), qrf));
    // TSQR = single-panel CAQR with b = n.
    t.cell(run(bench::qr_caqr(n, 8, core::ReductionTree::Binary, "TSQRb"),
               qrf));
    t.cell(run(bench::qr_caqr(n, 8, core::ReductionTree::Flat, "TSQRf"),
               qrf));
    t.cell(run(bench::qr_caqr(n, 8, core::ReductionTree::Hybrid, "TSQRh"),
               qrf));
  }
  t.print("Ablation: binary vs flat reduction tree (GFlop/s, 8 cores)",
          bench::csv_path("ablation_tree_shape"));
  bench::JsonReport rep("ablation_tree_shape", 8);
  rep.add_table(t);
  rep.write();
  return 0;
}
