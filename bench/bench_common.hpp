// bench_common.hpp — shared harness for the paper-reproduction benchmarks.
//
// Each bench binary builds the workload, runs every competitor through
// camult::bench::measure() (serial record + simulated P cores by default;
// real threads with CAMULT_BENCH_REAL=1), and prints the paper-shaped table.
// Competitors are wrapped so each run factors a private copy of the input.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "baseline/blocked.hpp"
#include "bench_support/flops.hpp"
#include "bench_support/json_report.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/random.hpp"
#include "runtime/trace.hpp"
#include "tiled/tile_lu.hpp"
#include "tiled/tile_qr.hpp"

namespace camult::bench {

/// Wrap a single serial kernel call as a one-task DAG (BLAS2 baselines).
inline RunArtifacts one_task(const std::function<void()>& fn) {
  rt::TaskGraph g({0, true});
  rt::TaskOptions o;
  o.kind = rt::TaskKind::Generic;
  o.label = "serial";
  g.submit({}, std::move(o), fn);
  g.wait();
  return {g.trace(), g.edges(), g.stats()};
}

/// A named competitor: given the pristine input and a worker count, factor
/// a private copy and return the executed DAG.
struct Competitor {
  std::string name;
  std::function<RunArtifacts(const Matrix&, int threads)> run;
};

// ---- LU competitors ----------------------------------------------------

inline Competitor lu_getf2() {
  return {"dgetf2(BLAS2)", [](const Matrix& a, int) {
            Matrix w = a;
            return one_task([&] {
              PivotVector ipiv;
              lapack::getf2(w.view(), ipiv);
            });
          }};
}

// Per-task trace retention is opt-in for the drivers below: simulated mode
// (threads == 0) needs the recorded DAG for sim::simulate, but a real-mode
// wall-clock run keeps tracing off so timing (and, for windowed runs, the
// O(window) memory claim) is honest — a retained trace grows O(tasks).
inline bool bench_trace(int threads) { return threads == 0; }

inline Competitor lu_blocked(idx nb, idx strips) {
  return {"blk_dgetrf", [nb, strips](const Matrix& a, int threads) {
            Matrix w = a;
            baseline::BlockedOptions o;
            o.nb = nb;
            o.strips = strips;
            o.num_threads = threads;
            o.record_trace = bench_trace(threads);
            auto r = baseline::blocked_getrf(w.view(), o);
            return RunArtifacts{std::move(r.trace), std::move(r.edges),
                                std::move(r.sched)};
          }};
}

inline Competitor lu_tiled(idx b) {
  return {"tiledLU", [b](const Matrix& a, int threads) {
            Matrix w = a;
            tiled::TileLuOptions o;
            o.b = b;
            o.num_threads = threads;
            o.record_trace = bench_trace(threads);
            auto r = tiled::tile_lu_factor(w.view(), o);
            return RunArtifacts{std::move(r.trace), std::move(r.edges),
                                std::move(r.sched)};
          }};
}

/// `window` > 0 streams the DAG in a sliding window (CaluOptions::window);
/// results are bitwise identical, task-store memory is O(window).
inline Competitor lu_calu(idx b, idx tr,
                          core::ReductionTree tree =
                              core::ReductionTree::Binary,
                          idx window = 0) {
  std::string name = "CALU Tr=" + std::to_string(tr);
  if (window > 0) name += " w=" + std::to_string(window);
  return {std::move(name),
          [b, tr, tree, window](const Matrix& a, int threads) {
            Matrix w = a;
            core::CaluOptions o;
            o.b = b;
            o.tr = tr;
            o.tree = tree;
            o.num_threads = threads;
            o.window = window;
            o.record_trace = bench_trace(threads);
            auto r = core::calu_factor(w.view(), o);
            return RunArtifacts{std::move(r.trace), std::move(r.edges),
                                std::move(r.sched), r.mem};
          }};
}

// ---- QR competitors ----------------------------------------------------

inline Competitor qr_geqr2() {
  return {"dgeqr2(BLAS2)", [](const Matrix& a, int) {
            Matrix w = a;
            return one_task([&] {
              std::vector<double> tau;
              lapack::geqr2(w.view(), tau);
            });
          }};
}

inline Competitor qr_blocked(idx nb) {
  return {"blk_dgeqrf", [nb](const Matrix& a, int threads) {
            Matrix w = a;
            baseline::BlockedOptions o;
            o.nb = nb;
            o.num_threads = threads;
            o.record_trace = bench_trace(threads);
            auto r = baseline::blocked_geqrf(w.view(), o);
            return RunArtifacts{std::move(r.trace), std::move(r.edges),
                                std::move(r.sched)};
          }};
}

inline Competitor qr_tiled(idx b) {
  return {"tiledQR", [b](const Matrix& a, int threads) {
            Matrix w = a;
            tiled::TileQrOptions o;
            o.b = b;
            o.num_threads = threads;
            o.record_trace = bench_trace(threads);
            auto r = tiled::tile_qr_factor(w.view(), o);
            return RunArtifacts{std::move(r.trace), std::move(r.edges),
                                std::move(r.sched)};
          }};
}

/// `window` > 0 streams the DAG in a sliding window (CaqrOptions::window).
inline Competitor qr_caqr(idx b, idx tr, core::ReductionTree tree =
                                             core::ReductionTree::Flat,
                          const std::string& name = "", idx window = 0) {
  return {name.empty() ? "CAQR Tr=" + std::to_string(tr) : name,
          [b, tr, tree, window](const Matrix& a, int threads) {
            Matrix w = a;
            core::CaqrOptions o;
            o.b = b;
            o.tr = tr;
            o.tree = tree;
            o.num_threads = threads;
            o.window = window;
            o.record_trace = bench_trace(threads);
            auto r = core::caqr_factor(w.view(), o);
            return RunArtifacts{std::move(r.trace), std::move(r.edges),
                                std::move(r.sched), r.mem};
          }};
}

/// Multithreaded TSQR = single-panel CAQR with b = n.
inline Competitor qr_tsqr(idx tr) {
  return {"TSQR Tr=" + std::to_string(tr),
          [tr](const Matrix& a, int threads) {
            Matrix w = a;
            core::CaqrOptions o;
            o.b = a.cols();
            o.tr = tr;
            o.tree = core::ReductionTree::Binary;
            o.num_threads = threads;
            o.record_trace = bench_trace(threads);
            auto r = core::caqr_factor(w.view(), o);
            return RunArtifacts{std::move(r.trace), std::move(r.edges),
                                std::move(r.sched), r.mem};
          }};
}

// ---- Boilerplate ---------------------------------------------------------

inline void print_mode_banner(const char* what, int cores) {
  if (real_mode()) {
    std::printf("%s — REAL thread mode, %d worker threads (wall-clock)\n",
                what, cores);
  } else {
    std::printf(
        "%s — simulated %d-core mode (kernel times measured serially on "
        "this machine, DAG list-scheduled onto %d virtual cores; see "
        "DESIGN.md)\n",
        what, cores, cores);
  }
}

/// Quick correctness gate executed before timing: factor a small matrix
/// with each competitor and abort on failure. (Benchmarking a wrong answer
/// is worse than a slow one.)
void verify_lu_competitors(const std::vector<Competitor>& comps);
void verify_qr_competitors(const std::vector<Competitor>& comps);

/// Generic figure/table runners shared by the per-figure binaries.
/// Tall-skinny LU sweep over n (paper Figures 5/6/7).
void run_lu_tall_figure(const std::string& title, const std::string& csv_name,
                        idx default_m, int cores, const std::vector<idx>& trs,
                        const std::vector<idx>& default_ns = {10, 25, 50, 100,
                                                              150, 200, 500,
                                                              1000});

/// Tall-skinny QR sweep over n (paper Figure 8).
void run_qr_tall_figure(const std::string& title, const std::string& csv_name,
                        idx default_m, int cores,
                        const std::vector<idx>& default_ns = {10, 25, 50, 100,
                                                              150, 200, 500,
                                                              1000});

/// Square LU GFlop/s table (paper Tables I/II).
void run_lu_square_table(const std::string& title,
                         const std::string& csv_name, int cores,
                         const std::vector<idx>& trs,
                         const std::vector<idx>& default_sizes);

/// Square QR GFlop/s table (paper Table III).
void run_qr_square_table(const std::string& title,
                         const std::string& csv_name, int cores,
                         const std::vector<idx>& trs,
                         const std::vector<idx>& default_sizes);

}  // namespace camult::bench
