// Table III: QR GFlop/s for square matrices on the 8-core machine.
// Paper sizes: 1000..5000.
#include "bench_common.hpp"

int main() {
  camult::bench::run_qr_square_table(
      "Table III: QR, square, 8 cores", "table3", /*cores=*/8,
      /*trs=*/{1, 2, 4, 8}, /*default_sizes=*/{500, 1000, 2000});
  return 0;
}
