// Scheduler overhead: the paper notes that "for a too large number of
// tasks, the time spent in the scheduling can become significant" (Section
// III). This bench measures the runtime's per-task cost directly — empty
// tasks through inline mode, the central priority queue, and the
// work-stealing deques — for wide (independent) and deep (chained) DAGs,
// plus the dependency-inference cost of the tracker.
//
// The per-task nanosecond table across 1/2/4/8 threads is the acceptance
// gauge for the lock-sharded scheduler: on the wide DAG every worker hits
// the ready structure at once, so it exposes queue contention; the chain
// DAG exposes the wakeup (completion -> successor-ready) latency instead.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "runtime/dep_tracker.hpp"

namespace {

using namespace camult;
using Clock = std::chrono::steady_clock;

double run_graph(int threads, rt::TaskGraph::Policy policy, int n_tasks,
                 bool chained) {
  const auto t0 = Clock::now();
  {
    rt::TaskGraph g({threads, false, policy});
    rt::TaskId prev = rt::kNoTask;
    for (int i = 0; i < n_tasks; ++i) {
      std::vector<rt::TaskId> deps;
      if (chained && prev != rt::kNoTask) deps.push_back(prev);
      prev = g.submit(deps, {}, [] {});
    }
    g.wait();
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double run_tracker(int n_tasks) {
  rt::DepTracker tracker;
  const auto t0 = Clock::now();
  for (int i = 0; i < n_tasks; ++i) {
    // Typical S-task access pattern: 3 reads + 2 writes on tiles.
    std::vector<rt::BlockAccess> acc = {
        {rt::block_key(i % 64, 0), rt::AccessMode::Read},
        {rt::block_key(i % 64, 1), rt::AccessMode::Read},
        {rt::block_key(0, i % 32), rt::AccessMode::Read},
        {rt::block_key(i % 64, i % 32), rt::AccessMode::ReadWrite},
        {rt::block_key(i % 64 + 1, i % 32), rt::AccessMode::ReadWrite},
    };
    (void)tracker.depends(i, acc);
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using bench::Table;
  const int n_tasks =
      static_cast<int>(bench::env_idx("CAMULT_BENCH_TASKS", 200000));
  std::printf("Scheduler overhead, %d empty tasks per configuration\n",
              n_tasks);

  Table t({"configuration", "wide ns/task", "chain ns/task",
           "wide DAG (Mtask/s)", "chain DAG (Mtask/s)"});
  auto row = [&](const char* name, int threads,
                 rt::TaskGraph::Policy policy) {
    const double wide = run_graph(threads, policy, n_tasks, false);
    const double chain = run_graph(threads, policy, n_tasks, true);
    t.row().cell(name);
    t.cell(wide / n_tasks * 1e9).cell(chain / n_tasks * 1e9);
    t.cell(n_tasks / wide * 1e-6).cell(n_tasks / chain * 1e-6);
  };
  row("inline (0 threads)", 0, rt::TaskGraph::Policy::CentralPriority);
  for (int threads : {1, 2, 4, 8}) {
    char name[64];
    std::snprintf(name, sizeof(name), "central, %d thread%s", threads,
                  threads == 1 ? "" : "s");
    row(name, threads, rt::TaskGraph::Policy::CentralPriority);
  }
  for (int threads : {1, 2, 4, 8}) {
    char name[64];
    std::snprintf(name, sizeof(name), "stealing, %d thread%s", threads,
                  threads == 1 ? "" : "s");
    row(name, threads, rt::TaskGraph::Policy::WorkStealing);
  }
  t.print("Task throughput", bench::csv_path("scheduler_overhead"));
  bench::JsonReport rep("scheduler_overhead", 8);
  rep.add_table(t);
  rep.write();

  const double tracker_s = run_tracker(n_tasks);
  std::printf("\nDepTracker: %.2f Mtask/s (5 accesses per task)\n",
              n_tasks / tracker_s * 1e-6);
  std::printf(
      "\nContext: a b=100 gemm task is ~100us of work, so overheads below\n"
      "~1us/task (1 Mtask/s) are negligible at the paper's granularity; the\n"
      "cost only matters when b is made very small (many tiny tasks), which\n"
      "is the trade-off the paper describes for choosing b and Tr.\n");
  return 0;
}
