// gemm_kernel — microbench for the two-phase (pack once / multiply many)
// GEMM API against plain gemm, on the trailing-update shape the CALU/CAQR
// S tasks execute: one m x k panel block multiplied into many narrow
// column segments. Plain gemm repacks the panel on every call; pack_a +
// gemm_packed pays the packing once per panel. The "speedup" column is the
// acceptance metric for the pack-once scheduler wiring.
//
// Since the microkernel layer became runtime-dispatched (blas/kernel.hpp)
// this bench also reports, per scenario, the kernel that actually ran, the
// blocking it used, and the measured arithmetic intensity (flops per byte
// of pack + packed-operand + C traffic, from blas::gemm_traffic()), plus a
// per-kernel parity table: every registered kernel forced in turn via
// set_active_kernel(), so "dispatched >= best fixed kernel" is checkable
// from BENCH_gemm_kernel.json.
//
// Also reports the per-thread scratch-pool counters so pool regressions
// (e.g. a path that falls back to operator new per call) show up here.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "blas/blas.hpp"

namespace {

using namespace camult;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Scenario {
  idx m;     ///< panel rows (trailing-matrix height)
  idx k;     ///< panel width b (gemm depth)
  idx segw;  ///< trailing column-segment width (one S task's columns)
  idx segs;  ///< segments updated per panel (>= 8 for the acceptance row)
};

struct Timing {
  double unpacked_s = 0.0;  ///< best-of-reps: segs gemm calls
  double packed_s = 0.0;    ///< best-of-reps: one pack_a + segs gemm_packed
  double max_diff = 0.0;    ///< |C_packed - C_unpacked| (bitwise 0 expected)
  double flops_per_byte = 0.0;  ///< flops / measured packed-path traffic
};

Timing run_scenario(const Scenario& sc, int reps) {
  const Matrix a = random_matrix(sc.m, sc.k, 93 + sc.m + sc.k);
  const Matrix b = random_matrix(sc.k, sc.segw * sc.segs, 51 + sc.segw);
  Matrix c0 = random_matrix(sc.m, sc.segw * sc.segs, 77);
  Matrix cu(sc.m, sc.segw * sc.segs);
  Matrix cp(sc.m, sc.segw * sc.segs);

  Timing t;
  t.unpacked_s = 1e300;
  t.packed_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    copy_into(c0.view(), cu.view());
    double t0 = now_s();
    for (idx s = 0; s < sc.segs; ++s) {
      blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0, a.view(),
                 b.view().block(0, s * sc.segw, sc.k, sc.segw), 1.0,
                 cu.view().block(0, s * sc.segw, sc.m, sc.segw));
    }
    t.unpacked_s = std::min(t.unpacked_s, now_s() - t0);

    copy_into(c0.view(), cp.view());
    t0 = now_s();
    const blas::PackedPanel pa = blas::pack_a(a.view(), blas::Trans::NoTrans);
    for (idx s = 0; s < sc.segs; ++s) {
      blas::gemm_packed(-1.0, pa, blas::Trans::NoTrans,
                        b.view().block(0, s * sc.segw, sc.k, sc.segw), 1.0,
                        cp.view().block(0, s * sc.segw, sc.m, sc.segw));
    }
    t.packed_s = std::min(t.packed_s, now_s() - t0);
  }
  for (idx j = 0; j < cu.cols(); ++j) {
    for (idx i = 0; i < cu.rows(); ++i) {
      t.max_diff = std::max(t.max_diff, std::abs(cu(i, j) - cp(i, j)));
    }
  }

  // One traced packed pass: arithmetic intensity = flops over the bytes the
  // packed path actually moved (pack reads+writes, per-microtile packed
  // operand streams, C read-modify-write).
  blas::gemm_traffic_reset();
  copy_into(c0.view(), cp.view());
  const blas::PackedPanel pa = blas::pack_a(a.view(), blas::Trans::NoTrans);
  for (idx s = 0; s < sc.segs; ++s) {
    blas::gemm_packed(-1.0, pa, blas::Trans::NoTrans,
                      b.view().block(0, s * sc.segw, sc.k, sc.segw), 1.0,
                      cp.view().block(0, s * sc.segw, sc.m, sc.segw));
  }
  const blas::GemmTraffic traffic = blas::gemm_traffic();
  const double flops = 2.0 * static_cast<double>(sc.m) *
                       static_cast<double>(sc.k) *
                       static_cast<double>(sc.segw * sc.segs);
  if (traffic.total() > 0) {
    t.flops_per_byte = flops / static_cast<double>(traffic.total());
  }
  return t;
}

}  // namespace

int main() {
  using namespace camult;
  using bench::Table;

  // Trailing-update shapes: tall panels, narrow segments — where repacking
  // the panel per call is the dominant redundant traffic. The first row is
  // the acceptance configuration (>= 8 segments).
  const idx segs = bench::env_idx("CAMULT_BENCH_GEMM_SEGS", 16);
  const int reps =
      static_cast<int>(bench::env_idx("CAMULT_BENCH_GEMM_REPS", 7));
  const std::vector<Scenario> scenarios = {
      {2048, 64, 32, std::max<idx>(segs, 8)},
      {1024, 32, 32, std::max<idx>(2 * segs, 8)},
      {1536, 48, 32, std::max<idx>(segs, 8)},
      {2048, 32, 48, std::max<idx>(segs, 8)},
      {512, 100, 100, std::max<idx>(segs / 2, 8)},
  };

  std::printf("gemm_kernel — pack-once vs repack-per-call trailing updates "
              "(best of %d reps)\n", reps);
  std::printf("dispatched kernel: %s (arch %s)\n",
              blas::active_kernel().name,
              std::string(blas::arch_id()).c_str());

  Table t({"m", "k", "segw", "segs", "kernel", "unpacked_gflops",
           "packed_gflops", "speedup", "flops_per_byte", "max_diff"});
  bool all_exact = true;
  for (const Scenario& sc : scenarios) {
    const Timing tm = run_scenario(sc, reps);
    const double flops = 2.0 * static_cast<double>(sc.m) *
                         static_cast<double>(sc.k) *
                         static_cast<double>(sc.segw * sc.segs);
    t.row()
        .cell(static_cast<long long>(sc.m))
        .cell(static_cast<long long>(sc.k))
        .cell(static_cast<long long>(sc.segw))
        .cell(static_cast<long long>(sc.segs))
        .cell(blas::active_kernel().name)
        .cell(flops / tm.unpacked_s * 1e-9)
        .cell(flops / tm.packed_s * 1e-9)
        .cell(tm.unpacked_s / tm.packed_s, 3)
        .cell(tm.flops_per_byte, 3)
        .cell(tm.max_diff, 3);
    all_exact = all_exact && tm.max_diff == 0.0;
  }
  t.print("gemm_packed vs gemm on shared-panel updates",
          bench::csv_path("gemm_kernel"));

  // Per-kernel parity: force each registered kernel this host can run (plus
  // the auto-dispatched choice, listed first) on the acceptance scenario.
  // The dispatched row must be >= parity with every fixed-kernel row.
  const Scenario par = scenarios[0];
  const int par_reps = std::max(2, reps / 2);
  Table kt({"kernel", "arch", "packed_gflops", "flops_per_byte", "mc", "kc",
            "nc", "mr", "nr"});
  std::vector<std::string> forced = {"auto"};
  for (const blas::KernelInfo& ki : blas::kernel_registry()) {
    if (ki.compiled && ki.supported) forced.push_back(ki.name);
  }
  for (const std::string& name : forced) {
    if (!blas::set_active_kernel(name == "auto" ? "" : name)) continue;
    const Timing tm = run_scenario(par, par_reps);
    const double flops = 2.0 * static_cast<double>(par.m) *
                         static_cast<double>(par.k) *
                         static_cast<double>(par.segw * par.segs);
    const blas::GemmBlocking blk =
        blas::active_blocking(par.m, par.segw, par.k);
    kt.row()
        .cell(name == "auto"
                  ? std::string("auto(") + blas::active_kernel().name + ")"
                  : name)
        .cell(std::string(blas::arch_id()))
        .cell(flops / tm.packed_s * 1e-9)
        .cell(tm.flops_per_byte, 3)
        .cell(static_cast<long long>(blk.mc))
        .cell(static_cast<long long>(blk.kc))
        .cell(static_cast<long long>(blk.nc))
        .cell(static_cast<long long>(blk.mr))
        .cell(static_cast<long long>(blk.nr));
    all_exact = all_exact && tm.max_diff == 0.0;
  }
  blas::set_active_kernel("");  // restore cpuid dispatch
  kt.print("per-kernel packed GEMM (forced via set_active_kernel)");

  const blas::BufferPoolStats ps = blas::buffer_pool_stats();
  Table pool({"acquires", "pool_hits", "allocs", "releases", "frees"});
  pool.row()
      .cell(static_cast<long long>(ps.acquires))
      .cell(static_cast<long long>(ps.pool_hits))
      .cell(static_cast<long long>(ps.allocs))
      .cell(static_cast<long long>(ps.releases))
      .cell(static_cast<long long>(ps.frees));
  pool.print("scratch pool counters (this thread)");
  if (ps.acquires > 0) {
    std::printf("pool hit rate: %.1f%%\n",
                100.0 * static_cast<double>(ps.pool_hits) /
                    static_cast<double>(ps.acquires));
  }

  bench::JsonReport rep("gemm_kernel", 1, "real");
  rep.add_table(t);
  rep.add_table(kt);
  bench::JsonValue& prow = rep.new_row();
  prow.set("competitor", bench::JsonValue::make_string("pool_stats"));
  prow.set("pool_acquires",
           bench::JsonValue::make_number(static_cast<double>(ps.acquires)));
  prow.set("pool_hits",
           bench::JsonValue::make_number(static_cast<double>(ps.pool_hits)));
  prow.set("pool_allocs",
           bench::JsonValue::make_number(static_cast<double>(ps.allocs)));
  rep.write();

  if (!all_exact) {
    std::fprintf(stderr,
                 "gemm_kernel: packed and unpacked results diverge!\n");
    return 1;
  }
  return 0;
}
