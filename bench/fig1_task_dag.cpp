// Figures 1 & 2: the CALU task-dependency graph for a matrix partitioned
// into 4x4 blocks (Tr = 2), and its schedule on 4 threads.
//
// Emits: a task census, the DOT graph (fig1_task_dag.dot next to the
// binary, or $CAMULT_BENCH_CSV), and the simulated 4-thread step schedule.
#include <fstream>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "sim/sim_scheduler.hpp"

int main() {
  using namespace camult;

  // 4x4 blocks: m = n = 4b.
  const idx b = 32;
  Matrix a = random_matrix(4 * b, 4 * b, 99);
  core::CaluOptions o;
  o.b = b;
  o.tr = 2;
  o.num_threads = 0;  // record mode
  core::CaluResult r = core::calu_factor(a.view(), o);

  std::map<rt::TaskKind, int> census;
  for (const auto& t : r.trace) ++census[t.kind];
  std::cout << "CALU task DAG for a 4x4-block matrix (Tr=2):\n";
  for (const auto& [kind, count] : census) {
    std::cout << "  " << rt::task_kind_name(kind) << " tasks: " << count
              << "\n";
  }
  std::cout << "  edges: " << r.edges.size() << "\n";

  const std::string dir = [] {
    const char* d = std::getenv("CAMULT_BENCH_CSV");
    return d ? std::string(d) : std::string(".");
  }();
  const std::string dot_path = dir + "/fig1_task_dag.dot";
  {
    std::ofstream out(dot_path);
    rt::write_dot(out, r.trace, r.edges);
  }
  std::cout << "DOT graph written to " << dot_path << "\n";

  // Figure 2: schedule the DAG on 4 threads and print the steps.
  sim::SimResult sr = sim::simulate(r.trace, r.edges, 4);
  std::cout << "\nFigure 2: simulated schedule on 4 threads\n";
  std::cout << rt::render_gantt(sr.schedule, 4, 96);
  std::cout << "makespan: " << static_cast<double>(sr.makespan_ns) * 1e-6
            << " ms, critical path: "
            << static_cast<double>(sr.critical_path_ns) * 1e-6
            << " ms, total work: "
            << static_cast<double>(sr.total_work_ns) * 1e-6 << " ms\n";

  bench::JsonReport rep("fig1_task_dag", 4, "sim");
  bench::JsonValue& row = rep.new_row();
  row.set("competitor", bench::JsonValue::make_string("CALU Tr=2"));
  row.set("m", bench::JsonValue::make_number(static_cast<double>(4 * b)));
  row.set("n", bench::JsonValue::make_number(static_cast<double>(4 * b)));
  row.set("b", bench::JsonValue::make_number(static_cast<double>(b)));
  row.set("tr", bench::JsonValue::make_number(2));
  row.set("cores", bench::JsonValue::make_number(4));
  row.set("tasks", bench::JsonValue::make_number(
                       static_cast<double>(r.trace.size())));
  row.set("edges", bench::JsonValue::make_number(
                       static_cast<double>(r.edges.size())));
  row.set("seconds", bench::JsonValue::make_number(
                         static_cast<double>(sr.makespan_ns) * 1e-9));
  row.set("critical_path_s",
          bench::JsonValue::make_number(
              static_cast<double>(sr.critical_path_ns) * 1e-9));
  rep.write();
  return 0;
}
