// service_resilience.cpp — open-loop fault-storm bench of the svc
// self-healing layer (stall watchdog + retries + per-tenant breakers).
//
// Two tenants share one service. "tenant-healthy" (Interactive) submits
// clean jobs; "tenant-noisy" (Batch) submits the same work but carries a
// per-request FaultInjector running a combined ~5% injected throw/hang rate
// per task. The question the bench answers: does the noisy tenant's storm
// stay contained — healthy availability >= 99% and healthy p99 within 2x of
// the no-fault phase — while the service detects hangs (stall watchdog),
// retries transient failures with deterministic backoff, and eventually
// sheds the hopeless tenant at admission (circuit breaker)?
//
// Protocol mirrors bench/service_load.cpp: calibrate drain capacity with a
// pacing-free burst, then run two timed open-loop phases at ~60% of it —
//
//   baseline — both tenants clean (no injector anywhere)
//   storm    — noisy jobs carry the injector; healthy jobs stay clean
//
// Per (phase, tenant) the report emits arrivals, completed, failed, shed
// (queue-full + breaker), availability (= completed / arrivals), goodput
// (completed jobs/s), p50/p99 total latency, mean attempts per run job, and
// the tenant's retry / stall / breaker-open deltas — typed rows in
// BENCH_service_resilience.json (validated by tools/check_bench_json). The
// healthy tenant's rows additionally carry `unavailability` so a CI gate
// can assert `--max-field unavailability=0.01` (availability >= 99%)
// without a min-field mechanism, and the healthy storm row carries
// `p99_inflation` (storm p99 / baseline p99; reported, not CI-gated —
// shared runners make latency ratios too noisy to hard-fail on).
//
// Env knobs: CAMULT_BENCH_SVC_JOBS (arrivals per phase, default 80),
// CAMULT_BENCH_SVC_THREADS (pool size), CAMULT_BENCH_SEED,
// CAMULT_BENCH_THROW_PCT / CAMULT_BENCH_HANG_PCT (per-task injection rates
// in percent, defaults 3 and 2), CAMULT_BENCH_HANG_MS (default 6).
#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "matrix/random.hpp"
#include "runtime/fault_inject.hpp"
#include "svc/service.hpp"

namespace {

using namespace camult;
using Clock = std::chrono::steady_clock;

constexpr const char* kHealthy = "tenant-healthy";
constexpr const char* kNoisy = "tenant-noisy";

struct InflightJob {
  Matrix storage;
  svc::JobHandle handle;
  bool noisy = false;
};

struct TenantTally {
  long long jobs = 0;
  long long completed = 0;
  long long failed = 0;
  long long shed = 0;       ///< queue-full + breaker + deadline
  long long cancelled = 0;  ///< incl. rejected (terminal, never ran)
  long long attempts = 0;   ///< summed over jobs that ran
  long long ran = 0;        ///< jobs with >= 1 attempt
  std::vector<double> latency_ms;  ///< total_ms of completed jobs
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

/// Alternate tenants deterministically (strict 50/50 so availability is a
/// ratio over a known denominator), vary the job shape from the rng.
/// Healthy jobs are service-typical sizes; noisy jobs are small rapid-fire
/// problems — the nastier adversary, since each failure costs the noisy
/// tenant almost nothing and the breaker window fills fast.
svc::JobRequest draw_request(int i, std::mt19937& rng, const Matrix& tall,
                             const Matrix& square, const Matrix& small,
                             Matrix* storage, rt::FaultInjector* fault) {
  svc::JobRequest req;
  const bool noisy = (i % 2) == 1;
  const bool tall_skinny =
      std::uniform_real_distribution<double>(0.0, 1.0)(rng) < 0.5;
  if (noisy) {
    req.qos = svc::QosClass::Batch;
    req.tenant = kNoisy;
    req.fault = fault;  // nullptr in the baseline phase
    // Tight per-job stall timeout: the noisy tenant's tasks are tiny, so a
    // few ms of no progress is already pathological. Sized under the
    // injected hang so the watchdog fires mid-hang.
    req.stall_timeout = std::chrono::milliseconds(3);
    *storage = small;
    req.kind =
        tall_skinny ? svc::JobKind::CaqrFactor : svc::JobKind::CaluFactor;
    req.b = 32;
    req.tr = 2;
  } else {
    req.qos = svc::QosClass::Interactive;
    req.tenant = kHealthy;
    // Loose timeout scaled to this tenant's biggest legitimate task — the
    // watchdog still catches a genuine wedge without false-positives on a
    // slow shared-CI core.
    req.stall_timeout = std::chrono::milliseconds(250);
    if (tall_skinny) {
      *storage = tall;  // copy; the service factors it in place
      req.kind = svc::JobKind::CaqrFactor;
      req.b = 16;
      req.tr = 4;
    } else {
      *storage = square;
      req.kind = svc::JobKind::CaluFactor;
      req.b = 32;
      req.tr = 2;
    }
  }
  req.a = storage->view();
  return req;
}

struct PhaseResult {
  double elapsed_s = 0.0;
  TenantTally healthy;
  TenantTally noisy;
  long long injected_throws = 0;
  long long injected_hangs = 0;
};

/// Run one open-loop phase. When `storm_cfg` is non-null every noisy job
/// carries its OWN FaultInjector whose seed is derived from (phase seed,
/// job index): the fault decision stream is a pure function of the task id,
/// so jobs sharing one injector would fail (or survive) in perfect lockstep
/// — per-job seeds are what make "5% per task" behave like independent
/// draws across the tenant's jobs.
PhaseResult run_phase(svc::Service& service, int jobs, double rate_hz,
                      std::uint32_t seed, const Matrix& tall,
                      const Matrix& square, const Matrix& small,
                      const rt::FaultConfig* storm_cfg) {
  std::mt19937 rng(seed);
  std::exponential_distribution<double> gap(rate_hz);
  std::vector<std::unique_ptr<InflightJob>> inflight;
  inflight.reserve(static_cast<std::size_t>(jobs));
  std::vector<std::unique_ptr<rt::FaultInjector>> injectors;

  const Clock::time_point t0 = Clock::now();
  Clock::time_point next_arrival = t0;
  for (int i = 0; i < jobs; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap(rng)));
    auto job = std::make_unique<InflightJob>();
    rt::FaultInjector* fault = nullptr;
    if (storm_cfg != nullptr && (i % 2) == 1) {
      rt::FaultConfig fc = *storm_cfg;
      fc.seed = rt::splitmix64(fc.seed +
                               static_cast<std::uint64_t>(i) * 0x9E37u);
      injectors.push_back(std::make_unique<rt::FaultInjector>(fc));
      fault = injectors.back().get();
    }
    const svc::JobRequest req =
        draw_request(i, rng, tall, square, small, &job->storage, fault);
    job->noisy = req.tenant == kNoisy;
    job->handle = service.submit(req).handle;
    inflight.push_back(std::move(job));
  }
  service.drain();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  PhaseResult res;
  res.elapsed_s = elapsed;
  for (const auto& job : inflight) {
    TenantTally& t = job->noisy ? res.noisy : res.healthy;
    ++t.jobs;
    const svc::JobOutcome& out = job->handle.wait();
    if (out.attempts > 0) {
      ++t.ran;
      t.attempts += out.attempts;
    }
    switch (out.status) {
      case svc::JobStatus::Completed:
        ++t.completed;
        t.latency_ms.push_back(out.total_ms);
        break;
      case svc::JobStatus::Failed:
        ++t.failed;
        break;
      case svc::JobStatus::ShedQueueFull:
      case svc::JobStatus::ShedDeadline:
      case svc::JobStatus::ShedBreaker:
        ++t.shed;
        break;
      default:
        ++t.cancelled;
        break;
    }
  }
  for (const auto& inj : injectors) {
    res.injected_throws += inj->injected_throws();
    res.injected_hangs += inj->injected_hangs();
  }
  return res;
}

/// Per-tenant self-healing counters, snapshotted around a phase to report
/// phase deltas rather than lifetime totals.
struct TenantCounters {
  long long retries = 0;
  long long stalls = 0;
  long long breaker_opens = 0;
};

TenantCounters snapshot(const svc::Service& service, const char* tenant) {
  const svc::ServiceStats st = service.stats();
  TenantCounters c;
  if (const auto it = st.per_tenant.find(tenant); it != st.per_tenant.end()) {
    c.retries = it->second.retries;
    c.stalls = it->second.stalls_detected;
  }
  if (const auto it = st.breakers.find(tenant); it != st.breakers.end()) {
    c.breaker_opens = it->second.opens;
  }
  return c;
}

TenantCounters delta(const TenantCounters& before,
                     const TenantCounters& after) {
  return {after.retries - before.retries, after.stalls - before.stalls,
          after.breaker_opens - before.breaker_opens};
}

}  // namespace

int main() {
  const int jobs =
      static_cast<int>(bench::env_idx("CAMULT_BENCH_SVC_JOBS", 80));
  const int threads = static_cast<int>(bench::env_idx(
      "CAMULT_BENCH_SVC_THREADS", rt::default_num_threads()));
  const auto seed =
      static_cast<std::uint32_t>(bench::env_idx("CAMULT_BENCH_SEED", 42));
  const double throw_rate =
      static_cast<double>(bench::env_idx("CAMULT_BENCH_THROW_PCT", 3)) / 100.0;
  const double hang_rate =
      static_cast<double>(bench::env_idx("CAMULT_BENCH_HANG_PCT", 2)) / 100.0;
  const int hang_ms =
      static_cast<int>(bench::env_idx("CAMULT_BENCH_HANG_MS", 6));

  const Matrix tall = random_matrix(768, 64, 11);
  const Matrix square = random_matrix(448, 448, 12);
  const Matrix small = random_matrix(96, 96, 13);

  svc::ServiceConfig cfg;
  cfg.num_threads = threads;
  cfg.max_inflight = 3;
  cfg.max_queue = 32;
  // The self-healing triad. Stall timeouts are per-request (tight for the
  // noisy tenant's tiny jobs, loose for healthy big ones — see
  // draw_request), so the service default stays off; fast small-cap
  // backoff so retries don't dominate the storm's wall clock; breaker
  // tuned to open after a handful of decisive failures, then probe at a
  // cadence that keeps the residual hang exposure (a probe's attempts can
  // still hang) a small fraction of the phase.
  cfg.retry.max_attempts = 2;
  cfg.retry.base = std::chrono::milliseconds(2);
  cfg.retry.cap = std::chrono::milliseconds(10);
  cfg.retry.jitter_seed = seed;
  cfg.breaker.enabled = true;
  cfg.breaker.window = 4;
  cfg.breaker.min_samples = 2;
  cfg.breaker.failure_threshold = 0.5;
  cfg.breaker.open_for = std::chrono::milliseconds(500);
  svc::Service service(cfg);

  rt::FaultConfig fault_cfg;
  fault_cfg.seed = seed;
  fault_cfg.throw_rate = throw_rate;
  fault_cfg.hang_rate = hang_rate;
  fault_cfg.hang_ms = hang_ms;

  // Warm up, then calibrate drain throughput with an unpaced clean burst.
  // The open-loop rate is 50% of that, additionally capped at 50 jobs/s:
  // the phase must span real wall time (not land as one burst) so the
  // breaker's mid-phase open actually sheds later noisy arrivals — that is
  // the steady-state regime the bench claims to measure.
  (void)run_phase(service, 4, 1e6, seed, tall, square, small, nullptr);
  const PhaseResult calib =
      run_phase(service, 12, 1e6, seed + 1, tall, square, small, nullptr);
  double capacity_hz = 12.0 / std::max(calib.elapsed_s, 1e-6);
  const double rate_hz = std::min(0.5 * std::max(capacity_hz, 2.0), 50.0);
  std::printf(
      "service_resilience: %d threads, capacity %.1f jobs/s, open-loop "
      "%.1f jobs/s, storm throw %.0f%% hang %.0f%% (%d ms)\n",
      threads, capacity_hz, rate_hz, throw_rate * 100.0, hang_rate * 100.0,
      hang_ms);

  struct Phase {
    const char* name;
    const rt::FaultConfig* fault;
    PhaseResult res;
    TenantCounters healthy_delta;
    TenantCounters noisy_delta;
  };
  std::vector<Phase> phases;
  phases.push_back({"baseline", nullptr, {}, {}, {}});
  phases.push_back({"storm", &fault_cfg, {}, {}, {}});
  // Both phases replay the SAME arrival/shape stream (same phase seed):
  // a paired comparison where the only difference is the injector, so the
  // p99 inflation ratio is not confounded by pacing randomness.
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const TenantCounters h0 = snapshot(service, kHealthy);
    const TenantCounters n0 = snapshot(service, kNoisy);
    phases[p].res = run_phase(service, jobs, rate_hz, seed + 10, tall,
                              square, small, phases[p].fault);
    phases[p].healthy_delta = delta(h0, snapshot(service, kHealthy));
    phases[p].noisy_delta = delta(n0, snapshot(service, kNoisy));
  }

  const double baseline_p99 =
      percentile(phases[0].res.healthy.latency_ms, 0.99);

  bench::Table t({"phase", "tenant", "jobs", "done", "fail", "shed", "avail",
                  "att", "retry", "stall", "brk", "p50 ms", "p99 ms",
                  "jobs/s"});
  bench::JsonReport rep("service_resilience", threads, "real");
  for (Phase& ph : phases) {
    struct Row {
      const char* tenant;
      TenantTally* tally;
      TenantCounters* counters;
    };
    Row rows[2] = {{kHealthy, &ph.res.healthy, &ph.healthy_delta},
                   {kNoisy, &ph.res.noisy, &ph.noisy_delta}};
    for (const Row& r : rows) {
      TenantTally& tl = *r.tally;
      const double avail =
          tl.jobs > 0
              ? static_cast<double>(tl.completed) / static_cast<double>(tl.jobs)
              : 0.0;
      const double mean_attempts =
          tl.ran > 0
              ? static_cast<double>(tl.attempts) / static_cast<double>(tl.ran)
              : 0.0;
      const double p50 = percentile(tl.latency_ms, 0.50);
      const double p99 = percentile(tl.latency_ms, 0.99);
      const double goodput = static_cast<double>(tl.completed) /
                             std::max(ph.res.elapsed_s, 1e-6);
      t.row().cell(ph.name).cell(r.tenant).cell(tl.jobs).cell(tl.completed);
      t.cell(tl.failed).cell(tl.shed).cell(avail).cell(mean_attempts);
      t.cell(r.counters->retries).cell(r.counters->stalls);
      t.cell(r.counters->breaker_opens).cell(p50).cell(p99).cell(goodput);
      bench::JsonValue& row = rep.new_row();
      row.set("competitor", bench::JsonValue::make_string(
                                std::string(ph.name) + "/" + r.tenant));
      row.set("phase", bench::JsonValue::make_string(ph.name));
      row.set("tenant", bench::JsonValue::make_string(r.tenant));
      row.set("cores", bench::JsonValue::make_number(threads));
      row.set("jobs", bench::JsonValue::make_number(
                          static_cast<double>(tl.jobs)));
      row.set("completed", bench::JsonValue::make_number(
                               static_cast<double>(tl.completed)));
      row.set("failed", bench::JsonValue::make_number(
                            static_cast<double>(tl.failed)));
      row.set("shed", bench::JsonValue::make_number(
                          static_cast<double>(tl.shed)));
      row.set("availability", bench::JsonValue::make_number(avail));
      row.set("attempts", bench::JsonValue::make_number(mean_attempts));
      row.set("retries", bench::JsonValue::make_number(
                             static_cast<double>(r.counters->retries)));
      row.set("stalls_detected",
              bench::JsonValue::make_number(
                  static_cast<double>(r.counters->stalls)));
      row.set("breaker_opens",
              bench::JsonValue::make_number(
                  static_cast<double>(r.counters->breaker_opens)));
      row.set("p50_ms", bench::JsonValue::make_number(p50));
      row.set("p99_ms", bench::JsonValue::make_number(p99));
      row.set("goodput_jobs_per_sec", bench::JsonValue::make_number(goodput));
      if (r.tenant == kHealthy) {
        // The CI gate: --max-field unavailability=0.01 <=> avail >= 99%.
        row.set("unavailability",
                bench::JsonValue::make_number(1.0 - avail));
        if (std::string(ph.name) == "storm" && baseline_p99 > 0.0) {
          row.set("p99_inflation",
                  bench::JsonValue::make_number(p99 / baseline_p99));
        }
      }
    }
  }
  t.print("Service under a one-tenant fault storm",
          bench::csv_path("service_resilience"));
  rep.write();

  const double storm_p99 = percentile(phases[1].res.healthy.latency_ms, 0.99);
  std::printf("\nhealthy availability: baseline %.3f, storm %.3f\n",
              static_cast<double>(phases[0].res.healthy.completed) /
                  std::max(1.0, static_cast<double>(phases[0].res.healthy.jobs)),
              static_cast<double>(phases[1].res.healthy.completed) /
                  std::max(1.0, static_cast<double>(phases[1].res.healthy.jobs)));
  if (baseline_p99 > 0.0) {
    std::printf("healthy p99: baseline %.1f ms, storm %.1f ms (%.2fx)\n",
                baseline_p99, storm_p99, storm_p99 / baseline_p99);
  }
  std::printf(
      "storm injected: %lld throws, %lld hangs; noisy retries %lld, stalls "
      "%lld, breaker opens %lld\n",
      phases[1].res.injected_throws, phases[1].res.injected_hangs,
      phases[1].noisy_delta.retries, phases[1].noisy_delta.stalls,
      phases[1].noisy_delta.breaker_opens);
  const svc::ServiceStats st = service.stats();
  std::printf("queue drained: %zu queued, %d inflight, %zu retry-pending\n",
              st.queued, st.inflight, st.retry_pending);
  return st.queued == 0 && st.inflight == 0 && st.retry_pending == 0 ? 0 : 1;
}
