// Figures 3 & 4: execution traces of CALU on a tall-skinny matrix
// (paper: 1e5 x 1000, b = 100) on the 8-core machine, with Tr = 1 (panel
// factorization creates idle time) versus Tr = 8 (idle time vanishes).
//
// Prints an ASCII Gantt chart per configuration plus the idle-time
// fraction, which is the quantitative content of the two figures.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "runtime/chrome_trace.hpp"
#include "sim/sim_scheduler.hpp"

int main() {
  using namespace camult;
  const idx m = bench::env_idx("CAMULT_BENCH_M", 20000);
  const idx n = bench::env_idx("CAMULT_BENCH_N", 1000);
  const int cores = 8;

  std::cout << "CALU execution traces, m=" << m << " n=" << n
            << " b=100, simulated " << cores
            << " cores (P=panel, L, U, S=update, .=idle)\n";

  bench::JsonReport rep("fig3_4_trace", cores, "sim");
  for (idx tr : {idx{1}, idx{8}}) {
    Matrix a = random_matrix(m, n, 7);
    core::CaluOptions o;
    o.b = 100;
    o.tr = tr;
    o.num_threads = 0;
    core::CaluResult r = core::calu_factor(a.view(), o);
    sim::SimResult sr = sim::simulate(r.trace, r.edges, cores);
    rt::TraceStats st = rt::compute_stats(sr.schedule, cores);

    std::cout << "\n=== Figure " << (tr == 1 ? 3 : 4) << ": Tr = " << tr
              << " ===\n";
    std::cout << rt::render_gantt(sr.schedule, cores, 110);
    std::cout << "makespan " << static_cast<double>(st.makespan_ns) * 1e-6
              << " ms, idle fraction "
              << static_cast<int>(st.idle_fraction * 100.0) << "%\n";
    for (const auto& [kind, ns] : st.busy_by_kind_ns) {
      std::cout << "  " << rt::task_kind_name(kind) << ": "
                << static_cast<double>(ns) * 1e-6 << " ms total\n";
    }

    bench::JsonValue& row = rep.new_row();
    row.set("competitor", bench::JsonValue::make_string(
                              "CALU Tr=" + std::to_string(tr)));
    row.set("m", bench::JsonValue::make_number(static_cast<double>(m)));
    row.set("n", bench::JsonValue::make_number(static_cast<double>(n)));
    row.set("b", bench::JsonValue::make_number(100));
    row.set("tr", bench::JsonValue::make_number(static_cast<double>(tr)));
    row.set("cores", bench::JsonValue::make_number(cores));
    row.set("seconds", bench::JsonValue::make_number(
                           static_cast<double>(st.makespan_ns) * 1e-9));
    row.set("idle_fraction", bench::JsonValue::make_number(st.idle_fraction));

    // Chrome/Perfetto trace of the simulated schedule, next to the report.
    if (const char* dir = std::getenv("CAMULT_BENCH_JSON");
        dir != nullptr && *dir != '\0') {
      const std::string path = std::string(dir) + "/fig3_4_tr" +
                               std::to_string(tr) + ".trace.json";
      rt::write_chrome_trace_file(path, sr.schedule, r.edges);
      std::cout << "Chrome trace written to " << path << "\n";
    }
  }
  rep.write();
  std::cout << "\nExpected shape: Tr=1 shows long idle stretches around the\n"
               "panel (P) tasks; Tr=8 keeps all cores busy except the very\n"
               "beginning and end (paper, Figures 3-4).\n";
  return 0;
}
