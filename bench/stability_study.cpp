// Stability study: the paper's central numerical claim (Section II,
// referencing Grigori/Demmel/Xiang) is that ca-pivoting (tournament
// pivoting) is as stable as partial pivoting in practice. This bench
// quantifies it: element growth factors and solve backward errors for
//   * GEPP          (getrf — partial pivoting),
//   * CALU          (tournament pivoting, Tr in {4, 16}, binary and flat),
//   * tiled LU      (incremental pairwise pivoting — known to be weaker),
// across matrix families: uniform random, normal random, diagonally
// dominant, and the classic 2^(n-1) GEPP growth matrix.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "lapack/solve.hpp"
#include "matrix/norms.hpp"

namespace {

using namespace camult;

struct Family {
  const char* name;
  Matrix (*make)(idx, std::uint64_t);
};

Matrix make_uniform(idx n, std::uint64_t s) { return random_matrix(n, n, s); }
Matrix make_normal(idx n, std::uint64_t s) {
  return random_normal_matrix(n, n, s);
}
Matrix make_dd(idx n, std::uint64_t s) {
  return random_diagonally_dominant_matrix(n, s);
}
Matrix make_growth(idx n, std::uint64_t) { return gepp_growth_matrix(n); }

struct Result {
  double growth = 0.0;
  double backward = 0.0;  // scaled solve residual
  // Health monitor verdict (CALU only; GEPP/tiled leave the defaults).
  double monitor_growth = 0.0;  ///< HealthReport::max_growth (per-panel)
  long long fallbacks = 0;      ///< panels refactored with full GEPP
  bool nan_detected = false;
};

double solve_backward(const Matrix& a, const Matrix& x, const Matrix& b) {
  return lapack::solve_residual(a, x, b);
}

Result run_gepp(const Matrix& a, const Matrix& rhs) {
  Matrix lu = a;
  PivotVector ipiv;
  lapack::getrf(lu.view(), ipiv);
  Matrix x = rhs;
  lapack::getrs(blas::Trans::NoTrans, lu, ipiv, x.view());
  return {lapack::pivot_growth(a, lu), solve_backward(a, x, rhs)};
}

Result run_calu(const Matrix& a, const Matrix& rhs, idx tr,
                core::ReductionTree tree) {
  Matrix lu = a;
  core::CaluOptions o;
  o.b = 50;
  o.tr = tr;
  o.tree = tree;
  o.num_threads = 2;
  core::CaluResult res = core::calu_factor(lu.view(), o);
  Matrix x = rhs;
  lapack::getrs(blas::Trans::NoTrans, lu, res.ipiv, x.view());
  Result r{lapack::pivot_growth(a, lu), solve_backward(a, x, rhs)};
  r.monitor_growth = res.health.max_growth;
  r.fallbacks = static_cast<long long>(res.health.fallback_panels);
  r.nan_detected = res.health.nan_detected;
  return r;
}

Result run_tiled(const Matrix& a, const Matrix& rhs) {
  Matrix lu = a;
  tiled::TileLuOptions o;
  o.b = 50;
  o.num_threads = 2;
  tiled::TileLuResult res = tiled::tile_lu_factor(lu.view(), o);
  Matrix x = rhs;
  tiled::tile_lu_solve(res, lu.view(), x.view());
  return {lapack::pivot_growth(a, lu), solve_backward(a, x, rhs)};
}

}  // namespace

int main() {
  using bench::Table;
  const idx n = bench::env_idx("CAMULT_BENCH_N", 400);
  std::printf("Stability study, n = %lld (average of 3 seeds per random "
              "family)\n",
              static_cast<long long>(n));
  std::printf("growth = max|U| / max|A|; backward = scaled solve residual "
              "(units of n*eps; O(1)-O(10) is stable)\n");

  const Family families[] = {{"uniform", make_uniform},
                             {"normal", make_normal},
                             {"diag-dominant", make_dd},
                             {"gepp-growth", make_growth}};

  Table t({"family", "metric", "GEPP", "CALU Tr=4 bin", "CALU Tr=16 bin",
           "CALU Tr=4 flat", "tiled(incpiv)"});
  bench::JsonReport rep("stability_study", 8);
  for (const Family& fam : families) {
    const bool is_growth = fam.make == make_growth;
    const int seeds = is_growth ? 1 : 3;
    // The growth matrix's 2^(n-1) factor overflows beyond n ~ 1000; keep it
    // small enough to display while still showing exponential growth.
    const idx fam_n = is_growth ? std::min<idx>(n, 40) : n;
    Result gepp, c4b, c16b, c4f, til;
    for (int s = 0; s < seeds; ++s) {
      Matrix a = fam.make(fam_n, 1234 + s);
      Matrix rhs = random_matrix(fam_n, 1, 99 + s);
      auto acc = [&](Result& dst, const Result& r) {
        dst.growth = std::max(dst.growth, r.growth);
        dst.backward = std::max(dst.backward, r.backward);
      };
      acc(gepp, run_gepp(a, rhs));
      acc(c4b, run_calu(a, rhs, 4, core::ReductionTree::Binary));
      acc(c16b, run_calu(a, rhs, 16, core::ReductionTree::Binary));
      acc(c4f, run_calu(a, rhs, 4, core::ReductionTree::Flat));
      acc(til, run_tiled(a, rhs));
    }
    // One health row per CALU configuration: the monitor's own per-panel
    // growth plus intervention counters, alongside the classic metrics.
    const struct { const char* name; const Result* r; } calus[] = {
        {"CALU Tr=4 bin", &c4b}, {"CALU Tr=16 bin", &c16b},
        {"CALU Tr=4 flat", &c4f}};
    for (const auto& c : calus) {
      bench::JsonValue& row = rep.new_row();
      row.set("family", bench::JsonValue::make_string(fam.name));
      row.set("competitor", bench::JsonValue::make_string(c.name));
      row.set("growth", bench::JsonValue::make_number(c.r->growth));
      row.set("backward", bench::JsonValue::make_number(c.r->backward));
      row.set("health_max_growth",
              bench::JsonValue::make_number(c.r->monitor_growth));
      row.set("fallback_panels",
              bench::JsonValue::make_number(
                  static_cast<double>(c.r->fallbacks)));
      row.set("nan_detected", bench::JsonValue::make_bool(c.r->nan_detected));
      if (c.r->fallbacks > 0 || c.r->nan_detected) {
        std::printf("health: %s on %s: %lld GEPP fallback panel(s)%s\n",
                    c.name, fam.name, c.r->fallbacks,
                    c.r->nan_detected ? ", non-finite input" : "");
      }
    }
    t.row().cell(fam.name).cell("growth");
    t.cell(gepp.growth).cell(c4b.growth).cell(c16b.growth).cell(c4f.growth);
    t.cell(til.growth);
    t.row().cell("").cell("backward");
    t.cell(gepp.backward, 3)
        .cell(c4b.backward, 3)
        .cell(c16b.backward, 3)
        .cell(c4f.backward, 3)
        .cell(til.backward, 3);
  }
  t.print("Stability: tournament pivoting vs partial vs incremental",
          bench::csv_path("stability_study"));
  rep.add_table(t);
  rep.write();
  std::printf(
      "\nExpected shape (paper + CALU literature): CALU growth/backward\n"
      "errors within a small factor of GEPP on random families; incremental\n"
      "pivoting (tiled) noticeably worse; the gepp-growth matrix exhibits\n"
      "2^(n-1)-type growth for partial pivoting by construction.\n");
  return 0;
}
