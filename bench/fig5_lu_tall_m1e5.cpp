// Figure 5: LU of tall-skinny matrices, m = 1e5 (default scaled down for a
// single-core host; set CAMULT_BENCH_M=100000 for paper scale), n from 10 to
// 1000, 8 cores. Competitors: BLAS2 dgetf2, vendor-style blocked dgetrf,
// PLASMA-style tiled LU, CALU with Tr = 4 and 8.
#include "bench_common.hpp"

int main() {
  camult::bench::run_lu_tall_figure(
      "Figure 5: LU, tall-skinny, 8 cores (paper m=1e5)", "fig5",
      /*default_m=*/30000, /*cores=*/8, /*trs=*/{4, 8});
  return 0;
}
