// Table I: LU GFlop/s for square matrices on the 8-core machine.
// Paper sizes: 1000..10000 (defaults scaled down; set
// CAMULT_BENCH_SQUARE_SIZES=1000,2000,...,10000 for paper scale).
#include "bench_common.hpp"

int main() {
  camult::bench::run_lu_square_table(
      "Table I: LU, square, 8 cores", "table1", /*cores=*/8,
      /*trs=*/{1, 2, 4, 8}, /*default_sizes=*/{500, 1000, 1500, 2000});
  return 0;
}
