// block_orthogonalization — orthogonalize a block of long vectors, the
// building block of block iterative methods (the application the paper
// cites for TSQR).
//
// Generates k nearly-dependent vectors of length m, orthogonalizes them
// with TSQR (explicit thin Q), and verifies ||I - Q^T Q|| and span
// preservation (V = Q R), comparing binary and flat reduction trees.
//
//   $ ./block_orthogonalization [m] [k]
#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "blas/blas.hpp"
#include "core/tsqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

int main(int argc, char** argv) {
  using namespace camult;
  const idx m = argc > 1 ? std::atoll(argv[1]) : 100000;
  const idx k = argc > 2 ? std::atoll(argv[2]) : 32;

  // Nearly dependent block: a well-conditioned random part plus a strong
  // shared component (like successive Krylov vectors).
  Matrix v = random_normal_matrix(m, k, 11);
  Matrix shared = random_normal_matrix(m, 1, 12);
  for (idx j = 1; j < k; ++j) {
    blas::axpy(m, 100.0, shared.data(), 1, v.view().col_ptr(j), 1);
  }
  Matrix v_orig = v;

  for (core::ReductionTree tree :
       {core::ReductionTree::Binary, core::ReductionTree::Flat}) {
    Matrix work = v_orig;
    core::TsqrOptions opts;
    opts.tr = 8;
    opts.tree = tree;
    core::TsqrFactors f = core::tsqr_factor(work.view(), opts);
    Matrix q = core::tsqr_explicit_q(work.view(), f);

    const double orth = lapack::orthogonality_residual(q);

    // Span preservation: V = Q R must hold.
    Matrix r = core::tsqr_extract_r(work.view(), f);
    Matrix recon = Matrix::zeros(m, k);
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, q, r, 0.0,
               recon.view());
    double resid = 0;
    for (idx j = 0; j < k; ++j) {
      for (idx i = 0; i < m; ++i) {
        const double d = recon(i, j) - v_orig(i, j);
        resid += d * d;
      }
    }
    resid = std::sqrt(resid) /
            (norm_fro(v_orig) * static_cast<double>(m) *
             std::numeric_limits<double>::epsilon());

    std::printf("%s tree:  ||I - Q^T Q|| (scaled) = %8.2f   "
                "||V - QR|| (scaled) = %8.2f\n",
                core::reduction_tree_name(tree), orth, resid);
    if (!(orth < 100.0 && resid < 100.0)) {
      std::printf("UNEXPECTEDLY LARGE RESIDUAL\n");
      return 1;
    }
  }

  std::printf("orthogonalized %lld vectors of length %lld: OK\n",
              static_cast<long long>(k), static_cast<long long>(m));
  return 0;
}
