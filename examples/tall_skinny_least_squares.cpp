// tall_skinny_least_squares — the workload the paper's introduction
// motivates: QR of a matrix with many more rows than columns.
//
// Fits a degree-(d-1) polynomial to many noisy samples by solving
// min ||A c - y||_2 with A the m x d basis matrix. Compares the plain BLAS2
// QR (dgeqr2) against TSQR with a binary reduction tree, then checks that
// both recover the generating coefficients.
//
//   $ ./tall_skinny_least_squares [m] [d]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "blas/blas.hpp"
#include "core/tsqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/matrix.hpp"

int main(int argc, char** argv) {
  using namespace camult;
  const idx m = argc > 1 ? std::atoll(argv[1]) : 200000;
  const idx d = argc > 2 ? std::atoll(argv[2]) : 16;

  // Basis matrix: Chebyshev-like polynomials of t in [-1, 1] (well
  // conditioned, unlike a raw Vandermonde matrix).
  Matrix a(m, d);
  Matrix y(m, 1);
  std::vector<double> c_true(static_cast<std::size_t>(d));
  for (idx j = 0; j < d; ++j) {
    c_true[static_cast<std::size_t>(j)] =
        std::sin(static_cast<double>(j) + 1.0);
  }
  std::mt19937_64 gen(42);
  std::normal_distribution<double> noise(0.0, 1e-8);
  for (idx i = 0; i < m; ++i) {
    const double t = -1.0 + 2.0 * static_cast<double>(i) / static_cast<double>(m - 1);
    double tkm1 = 1.0, tk = t;
    double yi = 0.0;
    for (idx j = 0; j < d; ++j) {
      const double basis = (j == 0) ? 1.0 : (j == 1 ? t : 2.0 * t * tk - tkm1);
      if (j >= 2) {
        tkm1 = tk;
        tk = basis;
      }
      a(i, j) = basis;
      yi += c_true[static_cast<std::size_t>(j)] * basis;
    }
    y(i, 0) = yi + noise(gen);
  }

  auto solve_coeffs = [&](Matrix qr, Matrix rhs, bool use_tsqr,
                          double* seconds) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<double> coeffs(static_cast<std::size_t>(d));
    if (use_tsqr) {
      core::TsqrOptions opts;
      opts.tr = 8;
      opts.tree = core::ReductionTree::Binary;
      core::TsqrFactors f = core::tsqr_factor(qr.view(), opts);
      core::tsqr_apply_q(blas::Trans::Trans, qr.view(), f, rhs.view());
    } else {
      std::vector<double> tau;
      lapack::geqr2(qr.view(), tau);
      lapack::ormqr_left(blas::Trans::Trans, qr.view(), tau, rhs.view());
    }
    blas::trsv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit,
               qr.view().block(0, 0, d, d), rhs.data(), 1);
    const auto t1 = std::chrono::steady_clock::now();
    *seconds = std::chrono::duration<double>(t1 - t0).count();
    for (idx j = 0; j < d; ++j) coeffs[static_cast<std::size_t>(j)] = rhs(j, 0);
    return coeffs;
  };

  double t_ref = 0, t_tsqr = 0;
  auto c_ref = solve_coeffs(a, y, false, &t_ref);
  auto c_tsqr = solve_coeffs(a, y, true, &t_tsqr);

  double err_ref = 0, err_tsqr = 0, diff = 0;
  for (idx j = 0; j < d; ++j) {
    err_ref = std::max(err_ref, std::abs(c_ref[static_cast<std::size_t>(j)] -
                                         c_true[static_cast<std::size_t>(j)]));
    err_tsqr = std::max(err_tsqr,
                        std::abs(c_tsqr[static_cast<std::size_t>(j)] -
                                 c_true[static_cast<std::size_t>(j)]));
    diff = std::max(diff, std::abs(c_tsqr[static_cast<std::size_t>(j)] -
                                   c_ref[static_cast<std::size_t>(j)]));
  }

  std::printf("least squares fit, %lld samples, %lld coefficients\n",
              static_cast<long long>(m), static_cast<long long>(d));
  std::printf("  dgeqr2 (BLAS2):  %.3f s, max coeff error %.2e\n", t_ref,
              err_ref);
  std::printf("  TSQR  (binary):  %.3f s, max coeff error %.2e\n", t_tsqr,
              err_tsqr);
  std::printf("  speedup %.2fx (sequential; TSQR also parallelizes),"
              " solutions agree to %.2e\n",
              t_ref / t_tsqr, diff);
  return (err_tsqr < 1e-5 && diff < 1e-6) ? 0 : 1;
}
