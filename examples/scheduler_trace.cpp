// scheduler_trace — drive the task runtime directly and inspect an
// execution: factor a matrix with CALU on real worker threads, print the
// per-core Gantt chart, per-kind time breakdown, and dump the trace CSV and
// DAG (DOT) for external tooling.
//
//   $ ./scheduler_trace [m] [n] [threads]
#include <fstream>
#include <iostream>

#include "core/calu.hpp"
#include "matrix/random.hpp"
#include "runtime/trace.hpp"
#include "runtime/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace camult;
  const idx m = argc > 1 ? std::atoll(argv[1]) : 4000;
  const idx n = argc > 2 ? std::atoll(argv[2]) : 1000;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;

  Matrix a = random_matrix(m, n, 3);
  core::CaluOptions opts;
  opts.b = 100;
  opts.tr = 4;
  opts.num_threads = threads;
  core::CaluResult res = core::calu_factor(a.view(), opts);

  const rt::TraceStats stats = rt::compute_stats(res.trace, threads);
  std::cout << "CALU " << m << "x" << n << " on " << threads
            << " real threads: " << res.trace.size() << " tasks, makespan "
            << static_cast<double>(stats.makespan_ns) * 1e-6 << " ms, idle "
            << static_cast<int>(stats.idle_fraction * 100) << "%\n\n";
  std::cout << rt::render_gantt(res.trace, threads, 100) << "\n";
  std::cout << "time by task kind:\n";
  for (const auto& [kind, ns] : stats.busy_by_kind_ns) {
    std::cout << "  " << rt::task_kind_name(kind) << "  "
              << static_cast<double>(ns) * 1e-6 << " ms\n";
  }

  {
    std::ofstream csv("scheduler_trace.csv");
    rt::write_trace_csv(csv, res.trace);
  }
  {
    std::ofstream dot("scheduler_trace.dot");
    rt::write_dot(dot, res.trace, res.edges);
  }
  rt::save_dag_file("scheduler_trace.dag", res.trace, res.edges);
  std::cout << "\nwrote scheduler_trace.{csv,dot,dag} — replay with "
               "./replay_dag scheduler_trace.dag\n";
  return 0;
}
