// quickstart — factor a matrix with multithreaded CALU, solve a linear
// system with the factors, and check the backward error.
//
//   $ ./quickstart [n]
//
// This is the 60-second tour of the public API: camult::Matrix,
// core::calu_factor, lapack::laswp + blas::trsv for the solve, and
// lapack::lu_residual for verification.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blas/blas.hpp"
#include "core/calu.hpp"
#include "lapack/lapack.hpp"
#include "matrix/random.hpp"

int main(int argc, char** argv) {
  using namespace camult;
  const idx n = argc > 1 ? std::atoll(argv[1]) : 1000;

  // A random square system A x = rhs with a known solution.
  Matrix a = random_matrix(n, n, /*seed=*/1);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = 1.0 + 0.001 * static_cast<double>(i);
  }
  std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
  blas::gemv(blas::Trans::NoTrans, 1.0, a, x_true.data(), 1, 0.0, rhs.data(),
             1);

  // Factor P A = L U with communication-avoiding LU: tournament pivoting
  // over a binary reduction tree, executed by 4 worker threads.
  Matrix lu = a;
  core::CaluOptions opts;
  opts.b = 100;   // panel width
  opts.tr = 4;    // panel parallelism (paper's T_r)
  opts.num_threads = 4;
  core::CaluResult res = core::calu_factor(lu.view(), opts);
  if (res.info != 0) {
    std::printf("matrix is singular at column %lld\n",
                static_cast<long long>(res.info));
    return 1;
  }

  // Solve: x = U^{-1} L^{-1} P rhs.
  MatrixView rv(rhs.data(), n, 1, n);
  lapack::laswp(rv, 0, n, res.ipiv);
  blas::trsv(blas::Uplo::Lower, blas::Trans::NoTrans, blas::Diag::Unit, lu,
             rhs.data(), 1);
  blas::trsv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit, lu,
             rhs.data(), 1);

  double max_err = 0.0;
  for (idx i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(rhs[static_cast<std::size_t>(i)] -
                                         x_true[static_cast<std::size_t>(i)]));
  }
  const double resid = lapack::lu_residual(a, lu, res.ipiv);

  std::printf("CALU factorization of a %lld x %lld matrix\n",
              static_cast<long long>(n), static_cast<long long>(n));
  std::printf("  tasks executed:       %zu\n", res.trace.size());
  std::printf("  scaled residual:      %.2f   (O(1) is ideal)\n", resid);
  std::printf("  max |x - x_true|:     %.3e\n", max_err);
  std::printf("  => %s\n", (resid < 100.0 && max_err < 1e-6)
                               ? "OK"
                               : "UNEXPECTEDLY LARGE ERROR");
  return 0;
}
