// replay_dag — what-if scheduling studies on a recorded task DAG.
//
// Record a factorization once (scheduler_trace writes scheduler_trace.dag,
// or use rt::save_dag_file on any trace), then replay it here on arbitrary
// virtual core counts without re-running the kernels:
//
//   $ ./scheduler_trace 4000 1000 4      # writes scheduler_trace.dag
//   $ ./replay_dag scheduler_trace.dag 1 2 4 8 16
#include <cstdio>
#include <cstdlib>

#include "runtime/trace.hpp"
#include "runtime/trace_io.hpp"
#include "sim/sim_scheduler.hpp"

int main(int argc, char** argv) {
  using namespace camult;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <dag-file> [core counts...]\n", argv[0]);
    return 2;
  }
  rt::RecordedDag dag;
  try {
    dag = rt::load_dag_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("%zu tasks, %zu edges\n", dag.tasks.size(), dag.edges.size());

  std::vector<int> cores;
  for (int i = 2; i < argc; ++i) cores.push_back(std::atoi(argv[i]));
  if (cores.empty()) cores = {1, 2, 4, 8, 16};

  double serial_s = 0.0;
  std::printf("%6s  %12s  %9s  %6s\n", "cores", "makespan(ms)", "speedup",
              "idle%");
  for (int p : cores) {
    if (p <= 0) continue;
    sim::SimResult r = sim::simulate(dag.tasks, dag.edges, p);
    const double s = static_cast<double>(r.makespan_ns) * 1e-9;
    if (serial_s == 0.0) {
      serial_s = static_cast<double>(r.total_work_ns) * 1e-9;
    }
    rt::TraceStats st = rt::compute_stats(r.schedule, p);
    std::printf("%6d  %12.2f  %8.2fx  %5d%%\n", p, s * 1e3, serial_s / s,
                static_cast<int>(st.idle_fraction * 100));
  }
  std::printf("critical path: %.2f ms (speedup ceiling %.2fx)\n",
              static_cast<double>(
                  sim::simulate(dag.tasks, dag.edges, 1).critical_path_ns) *
                  1e-6,
              serial_s /
                  (static_cast<double>(
                       sim::simulate(dag.tasks, dag.edges, 1).critical_path_ns) *
                   1e-9));
  return 0;
}
