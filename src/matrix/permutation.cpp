#include "matrix/permutation.hpp"

#include <numeric>

namespace camult {

Permutation ipiv_to_permutation(const PivotVector& ipiv, idx rows) {
  Permutation perm = identity_permutation(rows);
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    const idx p = ipiv[k];
    assert(p >= 0 && p < rows);
    std::swap(perm[k], perm[static_cast<std::size_t>(p)]);
  }
  return perm;
}

Permutation identity_permutation(idx rows) {
  Permutation perm(static_cast<std::size_t>(rows));
  std::iota(perm.begin(), perm.end(), idx{0});
  return perm;
}

Permutation invert_permutation(const Permutation& perm) {
  Permutation inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<idx>(i);
  }
  return inv;
}

Permutation compose_permutations(const Permutation& outer,
                                 const Permutation& inner) {
  assert(outer.size() == inner.size());
  Permutation out(outer.size());
  for (std::size_t i = 0; i < outer.size(); ++i) {
    out[i] = inner[static_cast<std::size_t>(outer[i])];
  }
  return out;
}

bool is_valid_permutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (idx p : perm) {
    if (p < 0 || p >= static_cast<idx>(perm.size())) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

void apply_row_permutation(const Permutation& perm, ConstMatrixView a,
                           MatrixView out) {
  assert(static_cast<idx>(perm.size()) == a.rows());
  assert(a.rows() == out.rows() && a.cols() == out.cols());
  for (idx j = 0; j < a.cols(); ++j) {
    const double* src = a.col_ptr(j);
    double* dst = out.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) {
      dst[i] = src[perm[static_cast<std::size_t>(i)]];
    }
  }
}

Matrix permute_rows(const Permutation& perm, ConstMatrixView a) {
  Matrix out(a.rows(), a.cols());
  apply_row_permutation(perm, a, out.view());
  return out;
}

}  // namespace camult
