// random.hpp — deterministic random matrix generation for tests and benches.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"

namespace camult {

/// Fill with i.i.d. uniform values in [-1, 1]; deterministic in `seed`.
void fill_uniform(MatrixView a, std::uint64_t seed);

/// Fill with i.i.d. standard normal values; deterministic in `seed`.
void fill_normal(MatrixView a, std::uint64_t seed);

/// Fresh uniform [-1,1] matrix.
Matrix random_matrix(idx rows, idx cols, std::uint64_t seed);

/// Fresh standard-normal matrix.
Matrix random_normal_matrix(idx rows, idx cols, std::uint64_t seed);

/// Matrix whose entries all have distinct magnitudes (useful for tests that
/// compare pivot choices between algorithms: ties never occur).
Matrix random_distinct_magnitude_matrix(idx rows, idx cols, std::uint64_t seed);

/// Well-conditioned random matrix: uniform noise plus a strong diagonal.
/// Suitable for no-pivoting sanity checks.
Matrix random_diagonally_dominant_matrix(idx n, std::uint64_t seed);

/// The Wilkinson-style growth matrix that exhibits 2^(n-1) pivot growth under
/// partial pivoting: lower triangle -1, unit diagonal, last column 1.
Matrix gepp_growth_matrix(idx n);

/// Rank-deficient matrix: product of (rows x rank) and (rank x cols) uniform
/// factors.
Matrix random_rank_deficient_matrix(idx rows, idx cols, idx rank,
                                    std::uint64_t seed);

}  // namespace camult
