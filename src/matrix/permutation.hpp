// permutation.hpp — row-permutation bookkeeping shared by LU variants.
//
// Two representations are used:
//  * LAPACK-style pivot sequence `ipiv`: step k swapped rows k and ipiv[k]
//    (0-based). This is what getf2/getrf/TSLU produce.
//  * explicit permutation vector `perm`: output row i of P*A is input row
//    perm[i].
#pragma once

#include <vector>

#include "matrix/matrix.hpp"

namespace camult {

using PivotVector = std::vector<idx>;
using Permutation = std::vector<idx>;

/// Convert a pivot sequence over `rows` rows into the explicit permutation it
/// induces: applying the swaps ipiv[0..k) to the identity ordering.
Permutation ipiv_to_permutation(const PivotVector& ipiv, idx rows);

/// perm_out[i] = i.
Permutation identity_permutation(idx rows);

/// inverse[perm[i]] = i.
Permutation invert_permutation(const Permutation& perm);

/// Compose: result[i] = inner[outer[i]] — applying `inner` first, then
/// `outer` (both as row-gather maps).
Permutation compose_permutations(const Permutation& outer,
                                 const Permutation& inner);

/// True if perm is a bijection over [0, perm.size()).
bool is_valid_permutation(const Permutation& perm);

/// Out-of-place gather: out.row(i) = a.row(perm[i]). Shapes must match.
void apply_row_permutation(const Permutation& perm, ConstMatrixView a,
                           MatrixView out);

/// Fresh matrix P*A for explicit-permutation tests.
Matrix permute_rows(const Permutation& perm, ConstMatrixView a);

}  // namespace camult
