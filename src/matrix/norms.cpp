#include "matrix/norms.hpp"

#include <cmath>
#include <vector>

namespace camult {

double norm_one(ConstMatrixView a) {
  double best = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    const double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) s += std::abs(c[i]);
    best = std::max(best, s);
  }
  return best;
}

double norm_inf(ConstMatrixView a) {
  std::vector<double> row_sums(static_cast<std::size_t>(a.rows()), 0.0);
  for (idx j = 0; j < a.cols(); ++j) {
    const double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) {
      row_sums[static_cast<std::size_t>(i)] += std::abs(c[i]);
    }
  }
  double best = 0.0;
  for (double s : row_sums) best = std::max(best, s);
  return best;
}

double norm_fro(ConstMatrixView a) {
  // Two-pass scaled sum to avoid overflow on large, badly scaled inputs.
  double scale = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    const double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) scale = std::max(scale, std::abs(c[i]));
  }
  if (scale == 0.0) return 0.0;
  double sum = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    const double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) {
      const double t = c[i] / scale;
      sum += t * t;
    }
  }
  return scale * std::sqrt(sum);
}

double norm_max(ConstMatrixView a) {
  double best = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    const double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) best = std::max(best, std::abs(c[i]));
  }
  return best;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      best = std::max(best, std::abs(a(i, j) - b(i, j)));
    }
  }
  return best;
}

bool has_non_finite(ConstMatrixView a) {
  for (idx j = 0; j < a.cols(); ++j) {
    const double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) {
      if (!std::isfinite(c[i])) return true;
    }
  }
  return false;
}

}  // namespace camult
