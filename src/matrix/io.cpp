#include "matrix/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace camult {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("matrix market: " + what);
}

}  // namespace

void write_matrix_market(std::ostream& os, ConstMatrixView a) {
  os << "%%MatrixMarket matrix array real general\n";
  os << "% written by camult\n";
  os << a.rows() << ' ' << a.cols() << '\n';
  os.precision(17);
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      os << a(i, j) << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, ConstMatrixView a) {
  std::ofstream out(path);
  if (!out) fail("cannot open " + path + " for writing");
  write_matrix_market(out, a);
}

Matrix read_matrix_market(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) fail("empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail("missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix") fail("unsupported object '" + object + "'");
  if (field == "complex") fail("complex matrices are not supported");
  const bool pattern = (field == "pattern");
  const bool symmetric =
      (symmetry == "symmetric" || symmetry == "skew-symmetric");
  const double mirror_sign = (symmetry == "skew-symmetric") ? -1.0 : 1.0;
  if (symmetry != "general" && !symmetric) {
    fail("unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments.
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);

  if (format == "array") {
    idx rows = 0, cols = 0;
    if (!(sizes >> rows >> cols)) fail("bad array size line");
    Matrix a(rows, cols);
    for (idx j = 0; j < cols; ++j) {
      for (idx i = 0; i < rows; ++i) {
        double v;
        if (!(is >> v)) fail("truncated array data");
        a(i, j) = v;
      }
    }
    if (symmetric) {
      // Array symmetric stores the lower triangle only; not produced by us
      // but accepted: mirror it. (Lower triangle was read as if dense; for
      // simplicity we only support general array format.)
      fail("symmetric array format is not supported");
    }
    return a;
  }
  if (format == "coordinate") {
    idx rows = 0, cols = 0, nnz = 0;
    if (!(sizes >> rows >> cols >> nnz)) fail("bad coordinate size line");
    Matrix a = Matrix::zeros(rows, cols);
    for (idx k = 0; k < nnz; ++k) {
      idx i = 0, j = 0;
      double v = 1.0;
      if (!(is >> i >> j)) fail("truncated coordinate data");
      if (!pattern && !(is >> v)) fail("truncated coordinate value");
      if (i < 1 || i > rows || j < 1 || j > cols) {
        fail("coordinate out of range");
      }
      a(i - 1, j - 1) = v;
      if (symmetric && i != j) a(j - 1, i - 1) = mirror_sign * v;
    }
    return a;
  }
  fail("unsupported format '" + format + "'");
}

Matrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_matrix_market(in);
}

}  // namespace camult
