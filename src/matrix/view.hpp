// view.hpp — non-owning column-major matrix views.
//
// The whole library works on LAPACK-convention column-major storage with an
// explicit leading dimension, so that panels, trailing submatrices and tiles
// are zero-copy slices of one allocation.
#pragma once

#include <cassert>
#include <cstdint>
#include <algorithm>

namespace camult {

using idx = std::int64_t;

/// Mutable view over a column-major matrix block: element (i,j) lives at
/// data[i + j*ld]. A view never owns memory.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, idx rows, idx cols, idx ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(rows >= 0 && cols >= 0);
    assert(ld >= std::max<idx>(rows, 1));
  }

  double* data() const { return data_; }
  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx ld() const { return ld_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(idx i, idx j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  /// Pointer to the top of column j.
  double* col_ptr(idx j) const {
    assert(j >= 0 && j <= cols_);
    return data_ + j * ld_;
  }

  /// Sub-block starting at (i,j) with extent (r,c). Extents are clamped by
  /// assertion, not silently.
  MatrixView block(idx i, idx j, idx r, idx c) const {
    assert(i >= 0 && j >= 0 && r >= 0 && c >= 0);
    assert(i + r <= rows_ && j + c <= cols_);
    return MatrixView(data_ + i + j * ld_, r, c, ld_);
  }

  /// Rows [i, rows) of columns [j, cols): the "trailing" block.
  MatrixView trailing(idx i, idx j) const {
    return block(i, j, rows_ - i, cols_ - j);
  }

  MatrixView cols_range(idx j, idx c) const { return block(0, j, rows_, c); }
  MatrixView rows_range(idx i, idx r) const { return block(i, 0, r, cols_); }
  MatrixView col(idx j) const { return block(0, j, rows_, 1); }
  MatrixView row(idx i) const { return block(i, 0, 1, cols_); }

 private:
  double* data_ = nullptr;
  idx rows_ = 0;
  idx cols_ = 0;
  idx ld_ = 1;
};

/// Read-only view, implicitly constructible from MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, idx rows, idx cols, idx ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(rows >= 0 && cols >= 0);
    assert(ld >= std::max<idx>(rows, 1));
  }
  ConstMatrixView(const MatrixView& v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  const double* data() const { return data_; }
  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx ld() const { return ld_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const double& operator()(idx i, idx j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  const double* col_ptr(idx j) const {
    assert(j >= 0 && j <= cols_);
    return data_ + j * ld_;
  }

  ConstMatrixView block(idx i, idx j, idx r, idx c) const {
    assert(i >= 0 && j >= 0 && r >= 0 && c >= 0);
    assert(i + r <= rows_ && j + c <= cols_);
    return ConstMatrixView(data_ + i + j * ld_, r, c, ld_);
  }

  ConstMatrixView trailing(idx i, idx j) const {
    return block(i, j, rows_ - i, cols_ - j);
  }

  ConstMatrixView cols_range(idx j, idx c) const {
    return block(0, j, rows_, c);
  }
  ConstMatrixView rows_range(idx i, idx r) const {
    return block(i, 0, r, cols_);
  }
  ConstMatrixView col(idx j) const { return block(0, j, rows_, 1); }
  ConstMatrixView row(idx i) const { return block(i, 0, 1, cols_); }

 private:
  const double* data_ = nullptr;
  idx rows_ = 0;
  idx cols_ = 0;
  idx ld_ = 1;
};

/// Copy src into dst; shapes must match.
void copy_into(ConstMatrixView src, MatrixView dst);

/// Set every element of the view to value.
void fill(MatrixView a, double value);

/// Set a to the identity (1 on the main diagonal, 0 elsewhere).
void set_identity(MatrixView a);

/// True if the two views alias the exact same block (same data/ld/shape).
inline bool same_view(ConstMatrixView a, ConstMatrixView b) {
  return a.data() == b.data() && a.rows() == b.rows() && a.cols() == b.cols() &&
         a.ld() == b.ld();
}

}  // namespace camult
