#include "matrix/random.hpp"

#include <algorithm>
#include <random>
#include <vector>

namespace camult {

void fill_uniform(MatrixView a, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (idx j = 0; j < a.cols(); ++j) {
    double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) c[i] = dist(gen);
  }
}

void fill_normal(MatrixView a, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (idx j = 0; j < a.cols(); ++j) {
    double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) c[i] = dist(gen);
  }
}

Matrix random_matrix(idx rows, idx cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  fill_uniform(m.view(), seed);
  return m;
}

Matrix random_normal_matrix(idx rows, idx cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  fill_normal(m.view(), seed);
  return m;
}

Matrix random_distinct_magnitude_matrix(idx rows, idx cols,
                                        std::uint64_t seed) {
  Matrix m(rows, cols);
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> jitter(0.0, 0.25);
  std::bernoulli_distribution sign(0.5);
  // Base magnitudes are a strictly increasing sequence shuffled over all
  // entries, so no two entries share a magnitude even after the small jitter.
  const idx n = rows * cols;
  std::vector<double> mags(static_cast<std::size_t>(n));
  for (idx k = 0; k < n; ++k) {
    mags[static_cast<std::size_t>(k)] =
        1.0 + static_cast<double>(k) + jitter(gen);
  }
  std::shuffle(mags.begin(), mags.end(), gen);
  idx k = 0;
  for (idx j = 0; j < cols; ++j) {
    for (idx i = 0; i < rows; ++i, ++k) {
      const double s = sign(gen) ? 1.0 : -1.0;
      m(i, j) = s * mags[static_cast<std::size_t>(k)];
    }
  }
  return m;
}

Matrix random_diagonally_dominant_matrix(idx n, std::uint64_t seed) {
  Matrix m = random_matrix(n, n, seed);
  for (idx i = 0; i < n; ++i) {
    m(i, i) += static_cast<double>(2 * n);
  }
  return m;
}

Matrix gepp_growth_matrix(idx n) {
  Matrix m = Matrix::zeros(n, n);
  for (idx i = 0; i < n; ++i) {
    m(i, i) = 1.0;
    for (idx j = 0; j < i; ++j) m(i, j) = -1.0;
    m(i, n - 1) = 1.0;
  }
  return m;
}

Matrix random_rank_deficient_matrix(idx rows, idx cols, idx rank,
                                    std::uint64_t seed) {
  assert(rank <= std::min(rows, cols));
  Matrix left = random_matrix(rows, rank, seed);
  Matrix right = random_matrix(rank, cols, seed + 1);
  Matrix out = Matrix::zeros(rows, cols);
  for (idx j = 0; j < cols; ++j) {
    for (idx k = 0; k < rank; ++k) {
      const double r = right(k, j);
      for (idx i = 0; i < rows; ++i) out(i, j) += left(i, k) * r;
    }
  }
  return out;
}

}  // namespace camult
