// matrix.hpp — owning, cache-line aligned, column-major matrix.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "matrix/view.hpp"

namespace camult {

/// Owning column-major matrix of doubles. Storage is 64-byte aligned and the
/// leading dimension equals the row count (dense packing). All algorithms in
/// the library operate on MatrixView, so a Matrix is just the allocation plus
/// conveniences.
class Matrix {
 public:
  Matrix() = default;
  Matrix(idx rows, idx cols);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept = default;
  Matrix& operator=(Matrix&& other) noexcept = default;

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx ld() const { return rows_; }
  idx size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double* data() { return data_.get(); }
  const double* data() const { return data_.get(); }

  double& operator()(idx i, idx j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * rows_];
  }
  const double& operator()(idx i, idx j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * rows_];
  }

  MatrixView view() { return MatrixView(data_.get(), rows_, cols_, rows_); }
  ConstMatrixView view() const {
    return ConstMatrixView(data_.get(), rows_, cols_, rows_);
  }
  ConstMatrixView const_view() const { return view(); }

  operator MatrixView() { return view(); }  // NOLINT
  operator ConstMatrixView() const { return view(); }  // NOLINT

  MatrixView block(idx i, idx j, idx r, idx c) {
    return view().block(i, j, r, c);
  }
  ConstMatrixView block(idx i, idx j, idx r, idx c) const {
    return view().block(i, j, r, c);
  }

  /// All-zero matrix.
  static Matrix zeros(idx rows, idx cols);
  /// Identity (rectangular allowed: ones on the main diagonal).
  static Matrix identity(idx rows, idx cols);
  /// Deep copy of an arbitrary view into a fresh dense matrix.
  static Matrix from(ConstMatrixView v);

 private:
  struct AlignedDeleter {
    void operator()(double* p) const { ::operator delete[](p, kAlign); }
  };
  static constexpr std::align_val_t kAlign{64};

  std::unique_ptr<double[], AlignedDeleter> data_;
  idx rows_ = 0;
  idx cols_ = 0;
};

}  // namespace camult
