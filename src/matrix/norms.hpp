// norms.hpp — matrix norms used by stability tests and residual checks.
#pragma once

#include "matrix/view.hpp"

namespace camult {

/// max column sum.
double norm_one(ConstMatrixView a);
/// max row sum.
double norm_inf(ConstMatrixView a);
/// Frobenius norm.
double norm_fro(ConstMatrixView a);
/// max |a_ij|.
double norm_max(ConstMatrixView a);

/// max |a_ij - b_ij| over matching shapes.
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// True if any element is NaN or infinite.
bool has_non_finite(ConstMatrixView a);

}  // namespace camult
