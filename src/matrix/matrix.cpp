#include "matrix/matrix.hpp"

#include <cstring>
#include <stdexcept>

namespace camult {

Matrix::Matrix(idx rows, idx cols) : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument("Matrix: negative dimension");
  }
  const std::size_t n = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (n > 0) {
    data_.reset(static_cast<double*>(::operator new[](n * sizeof(double), kAlign)));
  }
}

Matrix::Matrix(const Matrix& other) : Matrix(other.rows_, other.cols_) {
  if (size() > 0) {
    std::memcpy(data_.get(), other.data_.get(),
                static_cast<std::size_t>(size()) * sizeof(double));
  }
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this != &other) {
    Matrix tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

Matrix Matrix::zeros(idx rows, idx cols) {
  Matrix m(rows, cols);
  if (m.size() > 0) {
    std::memset(m.data(), 0, static_cast<std::size_t>(m.size()) * sizeof(double));
  }
  return m;
}

Matrix Matrix::identity(idx rows, idx cols) {
  Matrix m = zeros(rows, cols);
  const idx d = std::min(rows, cols);
  for (idx i = 0; i < d; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from(ConstMatrixView v) {
  Matrix m(v.rows(), v.cols());
  copy_into(v, m.view());
  return m;
}

void copy_into(ConstMatrixView src, MatrixView dst) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  const idx r = src.rows();
  for (idx j = 0; j < src.cols(); ++j) {
    std::memcpy(dst.col_ptr(j), src.col_ptr(j),
                static_cast<std::size_t>(r) * sizeof(double));
  }
}

void fill(MatrixView a, double value) {
  for (idx j = 0; j < a.cols(); ++j) {
    double* c = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) c[i] = value;
  }
}

void set_identity(MatrixView a) {
  fill(a, 0.0);
  const idx d = std::min(a.rows(), a.cols());
  for (idx i = 0; i < d; ++i) a(i, i) = 1.0;
}

}  // namespace camult
