// io.hpp — Matrix Market (array and coordinate) I/O, so examples and the
// CLI can work with real matrices from the SuiteSparse collection and
// results can be inspected with standard tools.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/matrix.hpp"

namespace camult {

/// Write in MatrixMarket dense "array real general" format.
void write_matrix_market(std::ostream& os, ConstMatrixView a);
void write_matrix_market_file(const std::string& path, ConstMatrixView a);

/// Read a MatrixMarket file. Supports:
///  * "matrix array real general" (dense, column-major order),
///  * "matrix coordinate real general|symmetric" (sparse; densified, with
///    symmetric entries mirrored),
///  * "coordinate pattern" (entries become 1.0),
///  * integer fields (read as doubles).
/// Throws std::runtime_error on malformed input or unsupported headers
/// (complex fields).
Matrix read_matrix_market(std::istream& is);
Matrix read_matrix_market_file(const std::string& path);

}  // namespace camult
