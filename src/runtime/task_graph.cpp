#include "runtime/task_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "runtime/fault_inject.hpp"
#include "runtime/worker_pool.hpp"

namespace camult::rt {

const char* task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::Panel: return "P";
    case TaskKind::LFactor: return "L";
    case TaskKind::UFactor: return "U";
    case TaskKind::Update: return "S";
    case TaskKind::Generic: return "G";
  }
  return "?";
}

char task_kind_letter(TaskKind k) { return task_kind_name(k)[0]; }

WorkerStats& WorkerStats::operator+=(const WorkerStats& o) {
  tasks_executed += o.tasks_executed;
  tasks_skipped += o.tasks_skipped;
  local_pops += o.local_pops;
  steals += o.steals;
  stolen_tasks += o.stolen_tasks;
  steal_fails += o.steal_fails;
  inbox_drains += o.inbox_drains;
  wakeups_sent += o.wakeups_sent;
  wakeups_received += o.wakeups_received;
  idle_spins += o.idle_spins;
  busy_ns += o.busy_ns;
  idle_ns += o.idle_ns;
  return *this;
}

WorkerStats SchedulerStats::totals() const {
  WorkerStats t;
  for (const WorkerStats& w : workers) t += w;
  t.wakeups_sent += submit_wakeups;
  return t;
}

TaskGraph::TaskStore::TaskStore()
    : blocks_(new std::atomic<Task*>[kMaxBlocks]) {
  for (std::size_t b = 0; b < kMaxBlocks; ++b) {
    blocks_[b].store(nullptr, std::memory_order_relaxed);
  }
}

TaskGraph::TaskStore::~TaskStore() {
  for (std::size_t b = 0; b < kMaxBlocks; ++b) {
    delete[] blocks_[b].load(std::memory_order_relaxed);
  }
  for (Task* blk : free_) delete[] blk;
}

TaskGraph::Task& TaskGraph::TaskStore::append() {
  const std::size_t i = size_.load(std::memory_order_relaxed);
  const std::size_t b = i >> kBlockBits;
  if (b >= kMaxBlocks) {
    throw std::length_error("TaskGraph: task store capacity exceeded");
  }
  Task* blk = blocks_[b].load(std::memory_order_relaxed);
  if (blk == nullptr) {
    if (!free_.empty()) {
      // Reuse a retired slab (already reset by recycle_below): windowed
      // runs plateau here instead of allocating O(total tasks).
      blk = free_.back();
      free_.pop_back();
    } else {
      blk = new Task[kBlockSize];
      ++blocks_allocated_;
    }
    // Release so any thread that later learns a TaskId in this block (all
    // publication paths already carry acquire/release) sees the pointer.
    blocks_[b].store(blk, std::memory_order_release);
  }
  size_.store(i + 1, std::memory_order_release);
  return blk[i & (kBlockSize - 1)];
}

void TaskGraph::TaskStore::recycle_below(
    TaskId limit, const std::function<void(Task&, TaskId)>& harvest) {
  assert(limit >= 0 &&
         static_cast<std::size_t>(limit) <= size_.load(std::memory_order_relaxed));
  const auto lim = static_cast<std::size_t>(limit);
  while ((first_live_block_ + 1) * kBlockSize <= lim) {
    Task* blk = blocks_[first_live_block_].load(std::memory_order_relaxed);
    for (std::size_t s = 0; s < kBlockSize; ++s) {
      Task& t = blk[s];
      harvest(t, static_cast<TaskId>(first_live_block_ * kBlockSize + s));
      // Reset to a fresh default-constructed state so reuse starts clean
      // and the retired task's heap residue (label string, successor list,
      // captured closure, exception) is released now, not at graph
      // destruction. Every task in the slab is retired: completed, its
      // successors all resolved, no thread will touch the slot again.
      t.fn = nullptr;
      t.opts = TaskOptions{};
      t.unresolved.store(0, std::memory_order_relaxed);
      t.finished.store(false, std::memory_order_relaxed);
      t.successors.clear();
      t.successors.shrink_to_fit();
      t.record = TaskRecord{};
      t.error = nullptr;
    }
    blocks_[first_live_block_].store(nullptr, std::memory_order_release);
    free_.push_back(blk);
    ++first_live_block_;
    ++blocks_recycled_;
  }
}

TaskGraph::TaskGraph(const Config& config) : config_(config) {
  if (config_.num_threads < 0) {
    throw std::invalid_argument("TaskGraph: negative thread count");
  }
  // Inline mode always stays inline (it is the serial record mode); a pool
  // only takes over when real-thread execution was requested.
  pool_ = (config_.num_threads != 0) ? config_.pool : nullptr;
  fault_ = config_.fault != nullptr ? config_.fault : FaultInjector::from_env();
  epoch_ = std::chrono::steady_clock::now();
  exec_width_ = pool_ ? pool_->size() : std::max(config_.num_threads, 1);
  const auto n_workers = static_cast<std::size_t>(exec_width_);
  local_ready_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    local_ready_.push_back(std::make_unique<WorkerDeque>());
  }
  counters_.reset(new Counters[n_workers]);
  if (pool_ != nullptr) {
    pool_->attach(this);
    return;
  }
  workers_.reserve(static_cast<std::size_t>(config_.num_threads));
  for (int t = 0; t < config_.num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

TaskGraph::~TaskGraph() {
  if (pool_ != nullptr) {
    // Detach drains every pending task (the same guarantee owned mode
    // gives via its worker shutdown protocol) and then waits until no pool
    // worker is still inside this graph's structures.
    pool_->detach(this);
    return;
  }
  // Publish shutdown under the sleep mutex so no worker can check the flag,
  // miss it, and then sleep through the broadcast. Workers only exit once a
  // refill finds everything drained, so pending tasks still run.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

TaskId TaskGraph::submit(const std::vector<TaskId>& deps, TaskOptions opts,
                         std::function<void()> fn) {
  // Dependencies below the recycle boundary are retired by definition —
  // finished, successors sealed — and their slots are gone; drop them
  // before touching the store. Visibility of their side effects reached
  // this thread through the retirement watermark's acquire (advance_retired
  // read the completer's done-count release), so the happens-before chain
  // to everything published after this submit is the same one the finished
  // fast path below provides for live retired tasks.
  const TaskId first_live = store_.first_live_id();

  if (config_.num_threads == 0) {
    // Inline mode is single-threaded, so every previously submitted task has
    // already run; validate BEFORE mutating anything, so a rejected
    // submission leaves the graph exactly as it was (no half-registered
    // task, no stray edges, no bumped unfinished count) and a caller that
    // catches can continue.
    for (TaskId d : deps) {
      if (d == kNoTask || d < first_live) continue;
      assert(d >= 0 && d < static_cast<TaskId>(store_.size()));
      if (!store_[d].finished.load(std::memory_order_relaxed)) {
        throw std::logic_error(
            "TaskGraph(inline): task submitted before its dependencies "
            "finished — submission order must be topological");
      }
    }
    const TaskId id = static_cast<TaskId>(store_.size());
    Task& task = store_.append();
    task.fn = std::move(fn);
    task.opts = std::move(opts);
    if (config_.record_trace) {
      task.record.id = id;
      task.record.kind = task.opts.kind;
      task.record.iteration = task.opts.iteration;
      task.record.priority = task.opts.priority;
      task.record.label = task.opts.label;
      for (TaskId d : deps) {
        if (d != kNoTask) edges_.push_back({d, id});
      }
    }
    if (iter_ != nullptr) note_submit(task.opts.iteration, id);
    submitted_.store(submitted_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    run_task(id, 0, /*inline_mode=*/true);
    return id;
  }

  const TaskId id = static_cast<TaskId>(store_.size());
  Task& task = store_.append();
  task.fn = std::move(fn);
  task.opts = std::move(opts);
  if (config_.record_trace) {
    task.record.id = id;
    task.record.kind = task.opts.kind;
    task.record.iteration = task.opts.iteration;
    task.record.priority = task.opts.priority;
    task.record.label = task.opts.label;
  }
  if (iter_ != nullptr) note_submit(task.opts.iteration, id);
  // +1 sentinel: keeps the task from firing while deps are registered.
  task.unresolved.store(1, std::memory_order_relaxed);
  // Plain release store (not an RMW): only this thread writes submitted_.
  submitted_.store(submitted_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);

  for (TaskId d : deps) {
    if (d == kNoTask) continue;
    assert(d >= 0 && d < id);
    // The edge is logically real even when the producer's slot is recycled,
    // so record it (trace consumers replay it; the producer ended long ago)
    // before the liveness cutoff.
    if (config_.record_trace) edges_.push_back({d, id});
    if (d < first_live) continue;
    Task& dep = store_[d];
    // Fast path: once finished is true the successor list is sealed, no
    // registration is needed, and the acquire load pairs with the
    // completer's release store so the dependency's side effects are
    // already visible to everything we publish after this.
    if (dep.finished.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(dep.mu);
    if (!dep.finished.load(std::memory_order_relaxed)) {
      // Count before linking: the completer may traverse `successors` the
      // moment we unlock, and must find the count already there.
      task.unresolved.fetch_add(1, std::memory_order_relaxed);
      dep.successors.push_back(id);
    }
  }

  // Drop the sentinel; whoever reaches zero (us, or a completing worker
  // that beat us to the last dependency) schedules the task. Reading 1 here
  // does NOT mean the counter is untouched: a completer's fetch_sub may
  // have just brought it 2 -> 1, so the load must be acquire — it reads the
  // value written by that release RMW and synchronizes with it, making the
  // dep's side effects visible before we dispatch the successor.
  if (task.unresolved.load(std::memory_order_acquire) == 1 ||
      task.unresolved.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    dispatch_ready(&id, 1, /*worker_hint=*/-1);
  }
  return id;
}

void TaskGraph::dispatch_ready(const TaskId* ready, int n, int worker_hint) {
  if (n <= 0) return;
  if (worker_hint < 0) {
    // Submission thread: stage in the inbox. Workers splice it in bulk at
    // refill time, so the submitter never touches the hot worker-side
    // locks.
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.insert(inbox_.end(), ready, ready + n);
  } else if (config_.policy == Policy::WorkStealing) {
    // Completing worker: successors run where their producer finished
    // (locality), and are exposed to stealers through this deque.
    WorkerDeque& dq = *local_ready_[static_cast<std::size_t>(worker_hint) %
                                    local_ready_.size()];
    std::lock_guard<std::mutex> lock(dq.mu);
    for (int i = 0; i < n; ++i) dq.q.push_back(ready[i]);
  } else {
    std::lock_guard<std::mutex> lock(central_mu_);
    for (int i = 0; i < n; ++i) {
      ready_[store_[ready[i]].opts.priority].push_back(ready[i]);
    }
    ready_count_ += static_cast<std::size_t>(n);
  }
  // Wake only if someone may be sleeping, and only when no notify is
  // already in flight: the woken worker re-arms the next wake itself when
  // its refill still sees a backlog (relay wakeup), so a push burst costs
  // one futex wake, not one per task. If a worker's final pre-sleep scan
  // missed this push, its sleepers_ increment happened-before the load in
  // maybe_wake_sleeper (both sides bracket the same queue mutex), so a
  // stale zero cannot be read there.
  maybe_wake_sleeper(worker_hint);
}

void TaskGraph::maybe_wake_sleeper(int caller) {
  bool wake = false;
  if (pool_ != nullptr) {
    // Attached mode: the sleepers are the pool's, so the relay-wake
    // bookkeeping lives there; only the counter attribution stays here.
    wake = pool_->try_wake_one();
  } else {
    if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
    {
      // The worker's whole sleep handshake runs under idle_mu_, so this
      // cannot interleave with a half-asleep worker.
      std::lock_guard<std::mutex> lock(idle_mu_);
      if (idle_wakes_ == 0 && sleepers_.load(std::memory_order_relaxed) > 0) {
        ++idle_wakes_;
        wake = true;
      }
    }
  }
  if (wake) {
    if (caller >= 0) {
      bump(counters_[static_cast<std::size_t>(caller) % local_ready_.size()]
               .wakeups_sent);
    } else {
      bump(submit_wakeups_);
    }
    if (pool_ == nullptr) idle_cv_.notify_one();
  }
}

void TaskGraph::run_task(TaskId id, int worker_id, bool inline_mode) {
  Task& task = store_[id];  // lock-free: slot address is stable, id was
                            // published to us with acquire/release
  Counters& cnt = counters_[static_cast<std::size_t>(worker_id)];
  // Fast-abort: once a task has failed (abort_on_error) or the cancel token
  // fired, remaining bodies are pointless — skip them. The task still
  // completes below (successors resolve, completed_ advances), so the DAG
  // drains at skip speed and every wait()/detach invariant holds; an
  // attached pool just sees a graph whose tasks finish very quickly.
  const bool skip = aborted();
  bool spurious_wake = false;
  std::exception_ptr error;
  std::chrono::steady_clock::time_point t0;
  if (config_.record_trace) t0 = std::chrono::steady_clock::now();
  // Heartbeat: publish "worker_id is inside task `id` of run `tag`" for the
  // stall watchdog. Pool mode only — owned/inline runs have no monitor and
  // no per-worker liveness slots.
  const bool hb = pool_ != nullptr && !inline_mode && !skip;
  if (hb) pool_->heartbeat_begin(worker_id, config_.cancel.id(), id);
  if (!skip) {
    try {
      // The injector (when armed) fires here so an injected throw takes
      // exactly the path a throwing kernel would. The cancel token makes
      // injected delays cooperative (skipped/abandoned once the run is
      // cancelled); injected hangs ignore it by design.
      if (fault_ != nullptr) {
        spurious_wake =
            fault_->before_task(id, config_.fault_salt, &config_.cancel);
      }
      task.fn();
    } catch (...) {
      // The first failure is rethrown from wait(); a worker must never die.
      error = std::current_exception();
      if (config_.abort_on_error) abort_.store(true, std::memory_order_release);
    }
  }
  if (hb) pool_->heartbeat_end(worker_id);
  if (config_.record_trace) {
    const auto t1 = std::chrono::steady_clock::now();
    task.record.worker = worker_id;
    task.record.start_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t0 - epoch_)
            .count();
    task.record.end_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - epoch_)
            .count();
    bump(cnt.busy_ns, task.record.end_ns - task.record.start_ns);
  }
  bump(skip ? cnt.tasks_skipped : cnt.tasks_executed);
  task.error = error;
  task.fn = nullptr;  // release captures eagerly
  // Injected spurious wake: poke the relay machinery for no reason, the
  // way a stray futex wake would. Harmless by design — workers re-check
  // their queues — but it stresses exactly that property.
  if (spurious_wake && !inline_mode) maybe_wake_sleeper(worker_id);

  if (inline_mode) {
    // Single-threaded: no handshake needed, and nobody can be in wait().
    task.finished.store(true, std::memory_order_relaxed);
    completed_.store(completed_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    if (iter_ != nullptr) note_complete(task);
    return;
  }

  // Claim the successor list; from here on the submission thread sees
  // `finished` (release store: pairs with the lock-free registration fast
  // path) and will not link to us again.
  std::vector<TaskId> succs;
  {
    std::lock_guard<std::mutex> lock(task.mu);
    task.finished.store(true, std::memory_order_release);
    succs.swap(task.successors);
  }

  // Collect the newly-ready successors, then hand them over in one batch:
  // one deque lock (they run where their producer finished — locality
  // under work stealing) or one central-queue lock, and counted wakeups.
  TaskId newly[64];
  int n = 0;
  for (TaskId s : succs) {
    if (store_[s].unresolved.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      newly[n++] = s;
      if (n == 64) {
        dispatch_ready(newly, n, worker_id);
        n = 0;
      }
    }
  }
  dispatch_ready(newly, n, worker_id);

  // seq_cst pairs with wait()'s done_waiting_ store (Dekker): either we see
  // the waiter's flag, or the waiter sees our count and never blocks. The
  // increment also release-publishes every write above to wait(). If we are
  // the last completion overall, the release sequence through completed_
  // guarantees our acquire load of submitted_ observes its final value.
  const idx done = completed_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (done_waiting_.load(std::memory_order_seq_cst) &&
      done == submitted_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_cv_.notify_all();
  }
  // Iteration bookkeeping LAST: the done-count increment is the release the
  // watermark's acquire pairs with, and once it lands the submission thread
  // may recycle this task's slab — so the worker must be done with `task`.
  if (iter_ != nullptr) note_complete(task);
}

void TaskGraph::drain_inbox(std::vector<TaskId>& scratch) {
  scratch.clear();
  std::lock_guard<std::mutex> lock(inbox_mu_);
  scratch.swap(inbox_);
}

bool TaskGraph::try_fill_stealing(int worker_id, std::vector<TaskId>& batch,
                                  std::vector<TaskId>& scratch,
                                  bool* backlog) {
  *backlog = false;
  Counters& cnt = counters_[static_cast<std::size_t>(worker_id)];
  WorkerDeque& own = *local_ready_[static_cast<std::size_t>(worker_id)];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (own.q.empty()) {
      // Adopt everything the submission thread staged. The inbox is
      // swapped out in O(1) so the submitter never blocks behind this
      // merge; later refills — and other workers' steals — drain the
      // adopted tasks from this deque.
      drain_inbox(scratch);
      own.q.insert(own.q.end(), scratch.begin(), scratch.end());
      if (!scratch.empty()) bump(cnt.inbox_drains);
    }
    if (!own.q.empty()) {
      // Take half (at least one, at most kMaxBatch): one lock round-trip
      // per ~16 tasks in the deep-queue regime, while always leaving the
      // other half visible to stealers.
      std::size_t take = own.q.size() / 2;
      take = std::max<std::size_t>(1, std::min(take, kMaxBatch));
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(own.q.back());  // LIFO: freshest (hot) tasks first
        own.q.pop_back();
      }
      bump(cnt.local_pops, static_cast<std::int64_t>(take));
      *backlog = !own.q.empty();
      return true;
    }
  }
  const std::size_t n = local_ready_.size();
  for (std::size_t off = 1; off < n; ++off) {
    WorkerDeque& victim =
        *local_ready_[(static_cast<std::size_t>(worker_id) + off) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.q.empty()) {
      std::size_t take = victim.q.size() / 2;  // classic steal-half
      take = std::max<std::size_t>(1, std::min(take, kMaxBatch));
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(victim.q.front());  // FIFO steal: coldest first
        victim.q.pop_front();
      }
      bump(cnt.steals);
      bump(cnt.stolen_tasks, static_cast<std::int64_t>(take));
      *backlog = !victim.q.empty();
      return true;
    }
    bump(cnt.steal_fails);
  }
  return false;
}

bool TaskGraph::try_fill_central(int worker_id, std::vector<TaskId>& batch,
                                 std::vector<TaskId>& scratch, bool* backlog) {
  *backlog = false;
  Counters& cnt = counters_[static_cast<std::size_t>(worker_id)];
  std::lock_guard<std::mutex> lock(central_mu_);
  // Splice everything the submission thread staged, so every refill
  // decision sees every task submitted so far — strict priority order is
  // preserved at batch granularity. The O(1) inbox swap keeps the
  // submitter from ever blocking behind the heap pushes.
  drain_inbox(scratch);
  for (TaskId id : scratch) {
    ready_[store_[id].opts.priority].push_back(id);
  }
  ready_count_ += scratch.size();
  if (!scratch.empty()) bump(cnt.inbox_drains);
  if (ready_count_ == 0) return false;
  // Pop a batch in strict priority order. Scaling by queue/threads keeps
  // the batch at 1 unless the queue is deep relative to the worker pool,
  // so a late high-priority arrival (the look-ahead panel path) is never
  // stuck behind more than its fair share of the backlog.
  std::size_t take =
      ready_count_ / static_cast<std::size_t>(exec_width_);
  take = std::max<std::size_t>(1, std::min(take, kMaxBatch));
  for (std::size_t i = 0; i < take; ++i) {
    auto top = ready_.begin();  // highest-priority bucket
    batch.push_back(top->second.front());
    top->second.pop_front();
    if (top->second.empty()) ready_.erase(top);
  }
  ready_count_ -= take;
  bump(cnt.local_pops, static_cast<std::int64_t>(take));
  *backlog = ready_count_ > 0;
  return true;
}

void TaskGraph::worker_loop(int worker_id) {
  const bool stealing = config_.policy == Policy::WorkStealing;
  Counters& cnt = counters_[static_cast<std::size_t>(worker_id)];
  std::vector<TaskId> scratch;  // recycled inbox-drain buffer
  auto fill = [&](std::vector<TaskId>& batch, bool* backlog) {
    return stealing ? try_fill_stealing(worker_id, batch, scratch, backlog)
                    : try_fill_central(worker_id, batch, scratch, backlog);
  };
  std::vector<TaskId> batch;  // consumed front-to-back
  batch.reserve(kMaxBatch);
  std::size_t cursor = 0;
  for (;;) {
    if (cursor == batch.size()) {
      batch.clear();
      cursor = 0;
      bool backlog = false;
      bool filled = fill(batch, &backlog);
      // Back off with yields before the futex sleep: a worker that merely
      // caught up with the producer hands the CPU over for whole scheduler
      // slices instead of entering a sleep/wake-preemption cycle that
      // resumes it after a handful of tasks (pathological when producer
      // and workers share cores). Persistent idleness still reaches the
      // condition variable below.
      for (int spin = 0; spin < 4 && !filled; ++spin) {
        std::this_thread::yield();
        bump(cnt.idle_spins);
        filled = fill(batch, &backlog);
      }
      if (!filled) {
        const auto idle0 = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lock(idle_mu_);
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        // Re-scan while counted as a sleeper: any push this scan misses
        // is guaranteed to see sleepers_ > 0 and take idle_mu_ to wake us.
        bool got = fill(batch, &backlog);
        while (!got && !shutdown_.load(std::memory_order_acquire)) {
          idle_cv_.wait(lock);
          if (idle_wakes_ > 0) {  // consume our notify
            --idle_wakes_;
            bump(cnt.wakeups_received);
          }
          got = fill(batch, &backlog);
        }
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
        bump(cnt.idle_ns,
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - idle0)
                 .count());
        if (!got) return;  // shutdown and everything drained
      }
      // Relay: the source we refilled from still holds work, so re-arm the
      // next wake before running (ramp-up propagates worker-to-worker).
      if (backlog) maybe_wake_sleeper(worker_id);
    }
    run_task(batch[cursor++], worker_id);
  }
}

bool TaskGraph::pool_service(int worker_id) {
  // Worker-owned refill buffers. thread_local (not per-graph) so a pool
  // worker recycles one pair of allocations across every graph it serves.
  thread_local std::vector<TaskId> batch;
  thread_local std::vector<TaskId> scratch;
  const bool stealing = config_.policy == Policy::WorkStealing;
  bool any = false;
  for (int round = 0; round < kServiceRounds; ++round) {
    batch.clear();
    bool backlog = false;
    const bool filled =
        stealing ? try_fill_stealing(worker_id, batch, scratch, &backlog)
                 : try_fill_central(worker_id, batch, scratch, &backlog);
    if (!filled) break;
    any = true;
    // Relay: more work remains after this batch — re-arm the next pool
    // wake before running, so ramp-up propagates worker-to-worker.
    if (backlog) maybe_wake_sleeper(worker_id);
    for (TaskId id : batch) run_task(id, worker_id);
  }
  return any;
}

bool TaskGraph::has_ready_work() {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    if (!inbox_.empty()) return true;
  }
  if (config_.policy == Policy::CentralPriority) {
    std::lock_guard<std::mutex> lock(central_mu_);
    return ready_count_ > 0;
  }
  for (const auto& dq : local_ready_) {
    std::lock_guard<std::mutex> lock(dq->mu);
    if (!dq->q.empty()) return true;
  }
  return false;
}

void TaskGraph::drain_all() {
  // Only the submission thread calls this, so submitted_ is this thread's
  // own final value.
  const idx target = submitted_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(done_mu_);
  done_waiting_.store(true, std::memory_order_seq_cst);
  done_cv_.wait(lock, [this, target] {
    return completed_.load(std::memory_order_seq_cst) == target;
  });
  done_waiting_.store(false, std::memory_order_relaxed);
}

void TaskGraph::wait() {
  if (config_.num_threads == 0) {
    if (completed_.load(std::memory_order_relaxed) !=
        submitted_.load(std::memory_order_relaxed)) {
      throw std::logic_error("TaskGraph(inline): unfinished tasks at wait()");
    }
  } else {
    drain_all();
  }
  // Retire whatever the drain completed (sealed iterations only), so the
  // retire hooks run and memory() reflects the final footprint even when
  // the caller never blocked in wait_retired_iterations.
  if (iter_ != nullptr) advance_retired();
  // First error by task id wins; errors whose slots were recycled were
  // harvested in id order before their slabs went back on the free list.
  if (harvested_error_) std::rethrow_exception(harvested_error_);
  const std::size_t n = store_.size();
  for (auto i = static_cast<std::size_t>(store_.first_live_id()); i < n; ++i) {
    if (store_[static_cast<TaskId>(i)].error) {
      std::rethrow_exception(store_[static_cast<TaskId>(i)].error);
    }
  }
  // No task failed but the token fired: the results are incomplete (bodies
  // were skipped), which the caller must not mistake for success.
  if (config_.cancel.cancelled()) throw CancelledError();
}

std::vector<TaskRecord> TaskGraph::trace() const {
  const std::size_t n = store_.size();
  std::vector<TaskRecord> out = harvested_trace_;  // recycled slots' records
  out.reserve(n);
  for (auto i = static_cast<std::size_t>(store_.first_live_id()); i < n; ++i) {
    out.push_back(store_[static_cast<TaskId>(i)].record);
  }
  return out;
}

std::vector<TaskGraph::Edge> TaskGraph::edges() const { return edges_; }

TaskGraph::MemoryStats TaskGraph::memory() const {
  MemoryStats m;
  m.task_slot_bytes = static_cast<std::int64_t>(sizeof(Task));
  m.tasks_per_block = static_cast<std::int64_t>(TaskStore::kBlockSize);
  m.blocks_allocated = store_.blocks_allocated();
  m.blocks_recycled = store_.blocks_recycled();
  m.peak_task_store_bytes =
      m.blocks_allocated * m.tasks_per_block * m.task_slot_bytes;
  m.trace_records_harvested =
      static_cast<std::int64_t>(harvested_trace_.size());
  return m;
}

void TaskGraph::track_iterations(idx n_iterations) {
  if (n_iterations <= 0) {
    throw std::invalid_argument("track_iterations: need >= 1 iteration");
  }
  if (iter_ != nullptr || store_.size() != 0) {
    throw std::logic_error(
        "track_iterations must be called once, before the first submit");
  }
  auto it = std::make_unique<IterTrack>();
  it->n = n_iterations;
  const auto n = static_cast<std::size_t>(n_iterations);
  it->submitted.reset(new std::atomic<idx>[n]);
  it->done.reset(new std::atomic<idx>[n]);
  it->sealed.reset(new std::atomic<bool>[n]);
  for (std::size_t i = 0; i < n; ++i) {
    it->submitted[i].store(0, std::memory_order_relaxed);
    it->done[i].store(0, std::memory_order_relaxed);
    it->sealed[i].store(false, std::memory_order_relaxed);
  }
  it->first_id.assign(n, kNoTask);
  iter_ = std::move(it);
}

void TaskGraph::set_retire_hook(std::function<void(idx)> hook) {
  if (iter_ == nullptr) {
    throw std::logic_error("set_retire_hook requires track_iterations");
  }
  retire_hook_ = std::move(hook);
}

void TaskGraph::note_submit(int iteration, TaskId id) {
  IterTrack& it = *iter_;
  if (iteration < 0 || static_cast<idx>(iteration) >= it.n) {
    throw std::logic_error(
        "TaskGraph: tracked submit with iteration tag out of range");
  }
  if (iteration < last_iteration_seen_) {
    throw std::logic_error(
        "TaskGraph: iteration tags must be nondecreasing under tracking");
  }
  if (it.sealed[static_cast<std::size_t>(iteration)].load(
          std::memory_order_relaxed)) {
    throw std::logic_error("TaskGraph: submit into a sealed iteration");
  }
  last_iteration_seen_ = iteration;
  auto& slot = it.first_id[static_cast<std::size_t>(iteration)];
  if (slot == kNoTask) slot = id;
  std::atomic<idx>& total = it.submitted[static_cast<std::size_t>(iteration)];
  // Release so a completer that observes the sealed flag (stored after the
  // final total) also observes every total increment.
  total.store(total.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
}

void TaskGraph::note_complete(const Task& task) {
  // Read the tag BEFORE the done increment: the increment is the release
  // the retirement watermark acquires, after which the submission thread
  // may recycle this task's slab.
  const int k = task.opts.iteration;
  IterTrack& it = *iter_;
  assert(k >= 0 && static_cast<idx>(k) < it.n);
  const auto ki = static_cast<std::size_t>(k);
  const idx d = it.done[ki].fetch_add(1, std::memory_order_acq_rel) + 1;
  if (it.sealed[ki].load(std::memory_order_acquire) &&
      d == it.submitted[ki].load(std::memory_order_acquire)) {
    // Possibly the retirement frontier. The empty mutex bracket orders this
    // notify after any waiter's predicate evaluation, closing the classic
    // missed-wakeup window.
    { std::lock_guard<std::mutex> lock(it.mu); }
    it.cv.notify_all();
  }
}

idx TaskGraph::advance_retired() {
  IterTrack& it = *iter_;
  idx r = it.retired.load(std::memory_order_relaxed);
  bool advanced = false;
  // sealed / submitted are this thread's own writes (relaxed is enough);
  // done needs acquire to pair with the completers' release increments —
  // it makes every retired task's side effects, error slot and finished
  // flag visible before the hook runs or the slab is recycled.
  while (r < it.n &&
         it.sealed[static_cast<std::size_t>(r)].load(
             std::memory_order_relaxed) &&
         it.done[static_cast<std::size_t>(r)].load(std::memory_order_acquire) ==
             it.submitted[static_cast<std::size_t>(r)].load(
                 std::memory_order_relaxed)) {
    if (retire_hook_) retire_hook_(r);
    ++r;
    advanced = true;
  }
  if (advanced) {
    it.retired.store(r, std::memory_order_release);
    // Recycle every slab wholly below the first live iteration's first
    // task (everything submitted, if no live iteration has tasks yet).
    TaskId limit = static_cast<TaskId>(store_.size());
    for (idx k = r; k < it.n; ++k) {
      const TaskId fid = it.first_id[static_cast<std::size_t>(k)];
      if (fid != kNoTask) {
        limit = fid;
        break;
      }
    }
    store_.recycle_below(limit, [this](Task& t, TaskId) {
      if (config_.record_trace) harvested_trace_.push_back(t.record);
      if (t.error && !harvested_error_) harvested_error_ = t.error;
    });
  }
  return r;
}

void TaskGraph::seal_iterations(idx up_to_inclusive) {
  if (iter_ == nullptr) {
    throw std::logic_error("seal_iterations requires track_iterations");
  }
  IterTrack& it = *iter_;
  up_to_inclusive = std::min(up_to_inclusive, it.n - 1);
  // Release: a completer that acquires the flag must see the final
  // submitted-count for the iteration (stored before this).
  for (idx k = 0; k <= up_to_inclusive; ++k) {
    it.sealed[static_cast<std::size_t>(k)].store(true,
                                                 std::memory_order_release);
  }
}

idx TaskGraph::retired_iterations() const {
  return iter_ != nullptr ? iter_->retired.load(std::memory_order_acquire)
                          : idx{0};
}

void TaskGraph::wait_retired_iterations(idx r) {
  if (iter_ == nullptr) {
    throw std::logic_error("wait_retired_iterations requires track_iterations");
  }
  IterTrack& it = *iter_;
  r = std::min(r, it.n);
  if (r <= 0 || advance_retired() >= r) return;
  if (config_.num_threads == 0) {
    // Inline mode completes every task at submit, so a target that is still
    // unreached can never be reached by waiting.
    throw std::logic_error(
        "wait_retired_iterations(inline): target iteration not yet "
        "submitted and sealed");
  }
  std::unique_lock<std::mutex> lock(it.mu);
  it.cv.wait(lock, [this, r] { return advance_retired() >= r; });
}

SchedulerStats TaskGraph::stats() const {
  SchedulerStats s;
  s.workers.resize(local_ready_.size());
  for (std::size_t w = 0; w < local_ready_.size(); ++w) {
    const Counters& c = counters_[w];
    WorkerStats& out = s.workers[w];
    out.tasks_executed = c.tasks_executed.load(std::memory_order_relaxed);
    out.tasks_skipped = c.tasks_skipped.load(std::memory_order_relaxed);
    out.local_pops = c.local_pops.load(std::memory_order_relaxed);
    out.steals = c.steals.load(std::memory_order_relaxed);
    out.stolen_tasks = c.stolen_tasks.load(std::memory_order_relaxed);
    out.steal_fails = c.steal_fails.load(std::memory_order_relaxed);
    out.inbox_drains = c.inbox_drains.load(std::memory_order_relaxed);
    out.wakeups_sent = c.wakeups_sent.load(std::memory_order_relaxed);
    out.wakeups_received = c.wakeups_received.load(std::memory_order_relaxed);
    out.idle_spins = c.idle_spins.load(std::memory_order_relaxed);
    out.busy_ns = c.busy_ns.load(std::memory_order_relaxed);
    out.idle_ns = c.idle_ns.load(std::memory_order_relaxed);
  }
  s.submit_wakeups = submit_wakeups_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace camult::rt
