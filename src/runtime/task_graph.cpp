#include "runtime/task_graph.hpp"

#include <cassert>
#include <stdexcept>

namespace camult::rt {

const char* task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::Panel: return "P";
    case TaskKind::LFactor: return "L";
    case TaskKind::UFactor: return "U";
    case TaskKind::Update: return "S";
    case TaskKind::Generic: return "G";
  }
  return "?";
}

char task_kind_letter(TaskKind k) { return task_kind_name(k)[0]; }

TaskGraph::TaskGraph(const Config& config) : config_(config) {
  if (config_.num_threads < 0) {
    throw std::invalid_argument("TaskGraph: negative thread count");
  }
  epoch_ = std::chrono::steady_clock::now();
  local_ready_.resize(static_cast<std::size_t>(std::max(config_.num_threads, 1)));
  workers_.reserve(static_cast<std::size_t>(config_.num_threads));
  for (int t = 0; t < config_.num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

TaskGraph::~TaskGraph() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

TaskId TaskGraph::submit(const std::vector<TaskId>& deps, TaskOptions opts,
                         std::function<void()> fn) {
  TaskId id;
  bool ready_now = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    id = static_cast<TaskId>(tasks_.size());
    tasks_.emplace_back();
    Task& task = tasks_.back();
    task.fn = std::move(fn);
    task.opts = std::move(opts);
    task.record.id = id;
    task.record.kind = task.opts.kind;
    task.record.iteration = task.opts.iteration;
    task.record.priority = task.opts.priority;
    task.record.label = task.opts.label;

    for (TaskId d : deps) {
      if (d == kNoTask) continue;
      assert(d >= 0 && d < id);
      Task& dep = tasks_[static_cast<std::size_t>(d)];
      edges_.push_back({d, id});
      if (!dep.finished) {
        dep.successors.push_back(id);
        ++task.unresolved;
      }
    }
    ++unfinished_;
    if (task.unresolved == 0) {
      if (config_.num_threads == 0) {
        ready_now = true;
      } else {
        // Submission thread is not a worker: scatter round-robin.
        push_ready_locked(id, static_cast<int>(id));
      }
    } else if (config_.num_threads == 0) {
      throw std::logic_error(
          "TaskGraph(inline): task submitted before its dependencies "
          "finished — submission order must be topological");
    }
  }
  if (config_.num_threads > 0) {
    ready_cv_.notify_one();
  } else if (ready_now) {
    // Inline mode: run this task and, iteratively, everything it unblocks.
    std::vector<TaskId> stack = {id};
    while (!stack.empty()) {
      const TaskId next = stack.back();
      stack.pop_back();
      run_task(next, 0, &stack);
    }
  }
  return id;
}

void TaskGraph::push_ready_locked(TaskId id, int worker_hint) {
  if (config_.policy == Policy::WorkStealing) {
    const std::size_t w =
        static_cast<std::size_t>(worker_hint) % local_ready_.size();
    local_ready_[w].push_back(id);
  } else {
    ready_.push({tasks_[static_cast<std::size_t>(id)].opts.priority, id});
  }
}

TaskId TaskGraph::pop_ready_locked(int worker_id) {
  if (config_.policy == Policy::WorkStealing) {
    auto& own = local_ready_[static_cast<std::size_t>(worker_id)];
    if (!own.empty()) {
      const TaskId id = own.back();  // LIFO: freshest (hot) task
      own.pop_back();
      return id;
    }
    for (std::size_t off = 1; off < local_ready_.size(); ++off) {
      auto& victim = local_ready_[(static_cast<std::size_t>(worker_id) + off) %
                                  local_ready_.size()];
      if (!victim.empty()) {
        const TaskId id = victim.front();  // FIFO steal: coldest task
        victim.pop_front();
        return id;
      }
    }
    return kNoTask;
  }
  if (ready_.empty()) return kNoTask;
  const TaskId id = ready_.top().second;
  ready_.pop();
  return id;
}

bool TaskGraph::any_ready_locked() const {
  if (config_.policy == Policy::WorkStealing) {
    for (const auto& d : local_ready_) {
      if (!d.empty()) return true;
    }
    return false;
  }
  return !ready_.empty();
}

void TaskGraph::run_task(TaskId id, int worker_id,
                         std::vector<TaskId>* inline_stack) {
  Task* task = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    task = &tasks_[static_cast<std::size_t>(id)];
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::exception_ptr error;
  try {
    task->fn();
  } catch (...) {
    // Dependents still run (they may touch unrelated state); the first
    // failure is rethrown from wait(). Matches how a worker must never die.
    error = std::current_exception();
  }
  const auto t1 = std::chrono::steady_clock::now();

  {
    std::unique_lock<std::mutex> lock(mu_);
    task->finished = true;
    task->error = error;
    task->fn = nullptr;  // release captures eagerly
    if (config_.record_trace) {
      task->record.worker = worker_id;
      task->record.start_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t0 - epoch_)
              .count();
      task->record.end_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - epoch_)
              .count();
    }
    for (TaskId s : task->successors) {
      Task& succ = tasks_[static_cast<std::size_t>(s)];
      if (--succ.unresolved == 0) {
        if (inline_stack != nullptr) {
          inline_stack->push_back(s);
        } else {
          // Successors run where their producer finished (locality under
          // work stealing; irrelevant for the central queue).
          push_ready_locked(s, worker_id);
        }
      }
    }
    --unfinished_;
    if (unfinished_ == 0) done_cv_.notify_all();
  }
  if (config_.num_threads > 0) ready_cv_.notify_all();
}

void TaskGraph::worker_loop(int worker_id) {
  for (;;) {
    TaskId id = kNoTask;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_cv_.wait(lock,
                     [this] { return shutdown_ || any_ready_locked(); });
      id = pop_ready_locked(worker_id);
      if (id == kNoTask) {
        if (shutdown_) return;
        continue;
      }
    }
    run_task(id, worker_id);
  }
}

void TaskGraph::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (config_.num_threads == 0) {
    if (unfinished_ != 0) {
      throw std::logic_error("TaskGraph(inline): unfinished tasks at wait()");
    }
  } else {
    done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  }
  for (const Task& t : tasks_) {
    if (t.error) std::rethrow_exception(t.error);
  }
}

std::vector<TaskRecord> TaskGraph::trace() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<TaskRecord> out;
  out.reserve(tasks_.size());
  for (const Task& t : tasks_) out.push_back(t.record);
  return out;
}

std::vector<TaskGraph::Edge> TaskGraph::edges() const {
  std::unique_lock<std::mutex> lock(mu_);
  return edges_;
}

}  // namespace camult::rt
