// dep_tracker.hpp — superscalar-style automatic dependency inference.
//
// Algorithms register, for each task, which logical blocks it reads and
// writes. The tracker derives the dependency edges (RAW, WAR, WAW) exactly
// like an out-of-order processor's register renaming stage — this is the
// mechanism behind "the task dependency graph is constructed on the fly"
// in the paper.
#pragma once

#include <cassert>
#include <unordered_map>
#include <vector>

#include "runtime/task.hpp"

namespace camult::rt {

enum class AccessMode : std::uint8_t { Read, Write, ReadWrite };

/// A logical block key. Algorithms typically pack (block row, block col);
/// any scheme works as long as overlapping accesses share a key.
using BlockKey = std::int64_t;

inline BlockKey block_key(idx block_row, idx block_col) {
  // Injective while block_col < 2^24 and block_row < 2^35, which also keeps
  // every tile key below 2^59 — disjoint from the per-iteration key spaces
  // CALU/CAQR place at (1 << 60) and above (see core/lookahead.hpp,
  // checked_key_offset). 2^35 block rows exceeds any matrix that fits in
  // memory by orders of magnitude; the assert pins the envelope so a future
  // caller cannot silently alias tiles with tournament/pack keys.
  assert(block_row >= 0 && block_row < (idx{1} << 35));
  assert(block_col >= 0 && block_col < (idx{1} << 24));
  return (block_row << 24) ^ block_col;
}

struct BlockAccess {
  BlockKey key;
  AccessMode mode;
};

class DepTracker {
 public:
  /// Compute the dependencies of a task performing `accesses`, then record
  /// the task as the new reader/writer of those blocks. Returns the
  /// deduplicated dependency list.
  std::vector<TaskId> depends(TaskId task,
                              const std::vector<BlockAccess>& accesses);

  void clear() { state_.clear(); }

 private:
  struct BlockState {
    TaskId last_writer = kNoTask;
    std::vector<TaskId> readers_since_write;
  };
  std::unordered_map<BlockKey, BlockState> state_;
};

}  // namespace camult::rt
