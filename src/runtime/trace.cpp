#include "runtime/trace.hpp"

#include <algorithm>
#include <sstream>

namespace camult::rt {

TraceStats compute_stats(const std::vector<TaskRecord>& records,
                         int num_workers) {
  TraceStats st;
  st.num_workers = num_workers;
  if (records.empty() || num_workers <= 0) return st;
  std::int64_t t_min = records.front().start_ns;
  std::int64_t t_max = records.front().end_ns;
  for (const TaskRecord& r : records) {
    t_min = std::min(t_min, r.start_ns);
    t_max = std::max(t_max, r.end_ns);
    st.busy_ns += r.duration_ns();
    st.busy_by_kind_ns[r.kind] += r.duration_ns();
  }
  st.makespan_ns = t_max - t_min;
  if (st.makespan_ns > 0) {
    // Clamped to [0, 1]: with overlapping workers busy_ns can exceed
    // makespan * num_workers when the caller passes a smaller worker count
    // than actually ran (idle < 0), and a single-record trace with
    // start == end would otherwise report idle 1-0/0. Zero makespan keeps
    // the 0 default instead of dividing by zero.
    st.idle_fraction =
        std::clamp(1.0 - static_cast<double>(st.busy_ns) /
                             (static_cast<double>(st.makespan_ns) *
                              static_cast<double>(num_workers)),
                   0.0, 1.0);
  }
  return st;
}

TraceStats compute_stats(const std::vector<TaskRecord>& records,
                         int num_workers, SchedulerStats sched) {
  TraceStats st = compute_stats(records, num_workers);
  st.sched = std::move(sched);
  return st;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');  // RFC 4180: double embedded quotes
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string dot_escape(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': break;  // DOT has no CR escape; drop it
      default: out.push_back(c);
    }
  }
  return out;
}

void write_trace_csv(std::ostream& os,
                     const std::vector<TaskRecord>& records) {
  os << "id,kind,iteration,worker,start_ns,end_ns,label\n";
  for (const TaskRecord& r : records) {
    os << r.id << ',' << task_kind_name(r.kind) << ',' << r.iteration << ','
       << r.worker << ',' << r.start_ns << ',' << r.end_ns << ','
       << csv_escape(r.label) << '\n';
  }
}

std::string render_gantt(const std::vector<TaskRecord>& records,
                         int num_workers, int width) {
  if (records.empty() || num_workers <= 0 || width <= 0) return "";
  std::int64_t t_min = records.front().start_ns;
  std::int64_t t_max = records.front().end_ns;
  for (const TaskRecord& r : records) {
    t_min = std::min(t_min, r.start_ns);
    t_max = std::max(t_max, r.end_ns);
  }
  const double span = static_cast<double>(std::max<std::int64_t>(t_max - t_min, 1));

  std::vector<std::string> rows(static_cast<std::size_t>(num_workers),
                                std::string(static_cast<std::size_t>(width), '.'));
  for (const TaskRecord& r : records) {
    if (r.worker < 0 || r.worker >= num_workers) continue;
    auto to_col = [&](std::int64_t t) {
      const double f = static_cast<double>(t - t_min) / span;
      return std::min<idx>(width - 1, static_cast<idx>(f * width));
    };
    const idx c0 = to_col(r.start_ns);
    const idx c1 = std::max(c0, to_col(r.end_ns - 1));
    for (idx c = c0; c <= c1; ++c) {
      rows[static_cast<std::size_t>(r.worker)][static_cast<std::size_t>(c)] =
          task_kind_letter(r.kind);
    }
  }
  std::ostringstream os;
  for (int w = 0; w < num_workers; ++w) {
    os << "core " << w << " |" << rows[static_cast<std::size_t>(w)] << "|\n";
  }
  return os.str();
}

void write_dot(std::ostream& os, const std::vector<TaskRecord>& records,
               const std::vector<TaskGraph::Edge>& edges) {
  os << "digraph tasks {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (const TaskRecord& r : records) {
    os << "  t" << r.id << " [label=\"" << task_kind_name(r.kind) << r.iteration;
    if (!r.label.empty()) os << "\\n" << dot_escape(r.label);
    os << "\"];\n";
  }
  for (const auto& e : edges) {
    os << "  t" << e.from << " -> t" << e.to << ";\n";
  }
  os << "}\n";
}

}  // namespace camult::rt
