#include "runtime/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace camult::rt {
namespace {

/// Microsecond timestamp with ns resolution preserved in the fraction.
std::string us(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

int tid_of(const TaskRecord& r) { return std::max(r.worker, 0); }

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<TaskRecord>& records,
                        const std::vector<TaskGraph::Edge>& edges,
                        const ChromeTraceOptions& opts) {
  os << "[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    os << "\n";
    first = false;
  };

  // Metadata: process name plus one thread name per tid in use.
  sep();
  os << R"({"ph":"M","pid":0,"name":"process_name","args":{"name":")"
     << json_escape(opts.process_name) << R"("}})";
  std::vector<int> tids;
  for (const TaskRecord& r : records) tids.push_back(tid_of(r));
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (int t : tids) {
    sep();
    os << R"({"ph":"M","pid":0,"tid":)" << t
       << R"(,"name":"thread_name","args":{"name":"worker )" << t << R"("}})";
  }

  // Duration events, one per task.
  for (const TaskRecord& r : records) {
    sep();
    std::string name = task_kind_name(r.kind);
    name += std::to_string(r.iteration);
    if (!r.label.empty()) {
      name += " ";
      name += r.label;
    }
    os << R"({"ph":"X","pid":0,"tid":)" << tid_of(r) << R"(,"name":")"
       << json_escape(name) << R"(","cat":")" << task_kind_name(r.kind)
       << R"(","ts":)" << us(r.start_ns) << R"(,"dur":)"
       << us(r.duration_ns()) << R"(,"args":{"id":)" << r.id
       << R"(,"iteration":)" << r.iteration << R"(,"priority":)" << r.priority
       << R"(,"worker":)" << r.worker << "}}";
  }

  // Flow arrows: producer end -> consumer start. Skip edges whose endpoints
  // are not in the record set (defensive against partial traces).
  if (opts.flow_events) {
    const auto n = static_cast<std::int64_t>(records.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const TaskGraph::Edge& e = edges[i];
      if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) continue;
      const TaskRecord& a = records[static_cast<std::size_t>(e.from)];
      const TaskRecord& b = records[static_cast<std::size_t>(e.to)];
      sep();
      os << R"({"ph":"s","pid":0,"tid":)" << tid_of(a)
         << R"(,"name":"dep","cat":"dep","id":)" << i << R"(,"ts":)"
         << us(a.end_ns) << "}";
      sep();
      os << R"({"ph":"f","bp":"e","pid":0,"tid":)" << tid_of(b)
         << R"(,"name":"dep","cat":"dep","id":)" << i << R"(,"ts":)"
         << us(b.start_ns) << "}";
    }
  }

  // Derived ready-queue depth: a task is "ready" from its last predecessor's
  // end until its own start. Tasks with no predecessors count from the trace
  // start. Emitted as a counter series at each transition.
  if (opts.counter_events && !records.empty()) {
    std::int64_t t_min = records.front().start_ns;
    for (const TaskRecord& r : records) t_min = std::min(t_min, r.start_ns);
    std::vector<std::int64_t> ready_ns(records.size(), t_min);
    const auto n = static_cast<std::int64_t>(records.size());
    for (const TaskGraph::Edge& e : edges) {
      if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) continue;
      auto& t = ready_ns[static_cast<std::size_t>(e.to)];
      t = std::max(t, records[static_cast<std::size_t>(e.from)].end_ns);
    }
    // (time, delta) transitions; starts break ties after readies so the
    // running sum never dips negative at an equal timestamp.
    std::vector<std::pair<std::int64_t, int>> ev;
    ev.reserve(records.size() * 2);
    for (std::size_t i = 0; i < records.size(); ++i) {
      ev.emplace_back(ready_ns[i], +1);
      ev.emplace_back(records[i].start_ns, -1);
    }
    std::sort(ev.begin(), ev.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second > b.second;
              });
    std::int64_t depth = 0;
    for (std::size_t i = 0; i < ev.size(); ++i) {
      depth += ev[i].second;
      // Collapse runs at the same timestamp into one sample.
      if (i + 1 < ev.size() && ev[i + 1].first == ev[i].first) continue;
      sep();
      os << R"({"ph":"C","pid":0,"name":"ready tasks","ts":)"
         << us(ev[i].first) << R"(,"args":{"ready":)" << depth << "}}";
    }
  }

  os << "\n]\n";
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<TaskRecord>& records,
                             const std::vector<TaskGraph::Edge>& edges,
                             const ChromeTraceOptions& opts) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("chrome_trace: cannot open " + path);
  }
  write_chrome_trace(out, records, edges, opts);
  if (!out) {
    throw std::runtime_error("chrome_trace: write failed for " + path);
  }
}

}  // namespace camult::rt
