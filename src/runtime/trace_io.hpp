// trace_io.hpp — save/load recorded task DAGs.
//
// A recorded DAG (task metadata with measured durations + dependency edges)
// fully determines a simulation, so persisting it decouples the expensive
// record pass from what-if scheduling studies: record once, replay on any
// virtual core count (see examples/replay_dag).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/task.hpp"
#include "runtime/task_graph.hpp"

namespace camult::rt {

struct RecordedDag {
  std::vector<TaskRecord> tasks;
  std::vector<TaskGraph::Edge> edges;
};

/// Plain-text format, one task/edge per line; labels go last on the line so
/// they may contain spaces.
void save_dag(std::ostream& os, const std::vector<TaskRecord>& tasks,
              const std::vector<TaskGraph::Edge>& edges);
void save_dag_file(const std::string& path,
                   const std::vector<TaskRecord>& tasks,
                   const std::vector<TaskGraph::Edge>& edges);

/// Throws std::runtime_error on malformed input.
RecordedDag load_dag(std::istream& is);
RecordedDag load_dag_file(const std::string& path);

}  // namespace camult::rt
