// task.hpp — task metadata shared by the dynamic scheduler, the tracer and
// the simulated-multicore replayer.
#pragma once

#include <cstdint>
#include <string>

#include "matrix/view.hpp"

namespace camult::rt {

using TaskId = idx;
inline constexpr TaskId kNoTask = -1;

/// The paper's task taxonomy (Section III): P = panel/tournament step,
/// L = block column of L, U = block row of U, S = trailing update.
enum class TaskKind : std::uint8_t {
  Panel,    ///< "P": TSLU/TSQR reduction-tree node
  LFactor,  ///< "L": block of the panel's L factor (CALU only)
  UFactor,  ///< "U": permute + compute a block of the U block row
  Update,   ///< "S": trailing matrix update
  Generic,
};

const char* task_kind_name(TaskKind k);
/// Single-letter tag used in Gantt renderings (P/L/U/S/G).
char task_kind_letter(TaskKind k);

struct TaskOptions {
  int priority = 0;   ///< higher runs first among ready tasks
  TaskKind kind = TaskKind::Generic;
  int iteration = 0;  ///< panel index K the task belongs to
  std::string label;  ///< free-form, for traces and DOT dumps
};

/// One executed task, as recorded by the tracer. Times are nanoseconds since
/// the graph epoch (first task start).
struct TaskRecord {
  TaskId id = kNoTask;
  TaskKind kind = TaskKind::Generic;
  int iteration = 0;
  int priority = 0;
  int worker = -1;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::string label;

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

}  // namespace camult::rt
