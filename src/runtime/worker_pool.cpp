#include "runtime/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace camult::rt {

int default_num_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) return 4;
  return static_cast<int>(std::min(hc, 32u));
}

namespace {

// Best-effort pin of `t` to one CPU (the sched_setaffinity machinery).
// Returns whether the kernel accepted the mask.
bool pin_thread(std::thread& t, int cpu) {
#ifdef __linux__
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu) % hc, &set);
  return pthread_setaffinity_np(t.native_handle(), sizeof(set), &set) == 0;
#else
  (void)t;
  (void)cpu;
  return false;
#endif
}

// The pool this thread works for, if any. Lets blocking entry points
// (run_on_all_workers) reject a pool worker calling into its own pool —
// such a call can never complete (the worker cannot ack its own epoch
// while blocked waiting for all acks) and would hang instead of failing.
thread_local const WorkerPool* t_pool_worker = nullptr;

}  // namespace

WorkerPool::WorkerPool(const WorkerPoolConfig& config) : config_(config) {
  if (config_.num_threads < 0) {
    throw std::invalid_argument("WorkerPool: negative thread count");
  }
  n_workers_ =
      config_.num_threads > 0 ? config_.num_threads : default_num_threads();
  lifetime_workers_.resize(static_cast<std::size_t>(n_workers_));
  heartbeats_ =
      std::make_unique<WorkerHeartbeat[]>(static_cast<std::size_t>(n_workers_));
  clock_zero_ = std::chrono::steady_clock::now();
  workers_.reserve(static_cast<std::size_t>(n_workers_));
  for (int t = 0; t < n_workers_; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
    if (config_.pin_threads && pin_thread(workers_.back(), t)) ++pinned_ok_;
  }
}

WorkerPool::~WorkerPool() {
  // Every graph must have detached (their destructors do); assert-grade
  // invariant, but fail soft in release builds: workers simply never find
  // a stale client because detach removed it before its graph died.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

WorkerPool& WorkerPool::process_default() {
  static WorkerPool pool{WorkerPoolConfig{}};
  return pool;
}

void WorkerPool::attach(TaskGraph* g) {
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    clients_.push_back(g);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++graphs_attached_;
  }
}

void WorkerPool::detach(TaskGraph* g) {
  // 1. Drain: every submitted task runs (workers find the graph through
  //    the registry until step 2). Mirrors owned mode's drain-at-shutdown.
  g->drain_all();
  // 2. Unregister: no worker can begin a new service slice on g. The
  //    in-service refcount is bumped under this same lock, so after the
  //    erase the refcount can only go down.
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    clients_.erase(std::remove(clients_.begin(), clients_.end(), g),
                   clients_.end());
  }
  // 3. Quiesce: wait for workers still inside pool_service(g) to leave.
  //    release_graph notifies under detach_mu_, so once the predicate
  //    holds no worker touches g (or its mutex/cv) again.
  {
    std::unique_lock<std::mutex> lock(g->detach_mu_);
    g->detach_cv_.wait(lock, [g] {
      return g->pool_active_.load(std::memory_order_acquire) == 0;
    });
  }
  // 4. Fold the run's counters into the pool lifetime stats (per worker
  //    slot: graph worker w IS pool worker w).
  const SchedulerStats run = g->stats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (std::size_t w = 0;
       w < run.workers.size() && w < lifetime_workers_.size(); ++w) {
    lifetime_workers_[w] += run.workers[w];
  }
  lifetime_submit_wakeups_ += run.submit_wakeups;
  ++graphs_detached_;
}

bool WorkerPool::try_wake_one() {
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return false;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (idle_wakes_ == 0 && sleepers_.load(std::memory_order_relaxed) > 0) {
      ++idle_wakes_;
      wake = true;
    }
  }
  if (wake) {
    wakeups_issued_.fetch_add(1, std::memory_order_relaxed);
    idle_cv_.notify_one();
  }
  return wake;
}

std::int64_t WorkerPool::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - clock_zero_)
      .count();
}

// Seqlock write protocol, single writer per slot (worker w's own thread):
// bump seq to odd, mutate, bump to even. Field stores are relaxed — the
// release on the closing seq store orders them for a reader that pairs it
// with an acquire load, and the atomics themselves keep TSAN quiet.
void WorkerPool::heartbeat_begin(int w, std::uint64_t tag, std::int64_t task) {
  WorkerHeartbeat& h = heartbeats_[static_cast<std::size_t>(w)];
  const std::uint64_t s = h.seq.load(std::memory_order_relaxed);
  h.seq.store(s + 1, std::memory_order_release);
  h.tag.store(tag, std::memory_order_relaxed);
  h.task.store(task, std::memory_order_relaxed);
  h.since_ns.store(now_ns(), std::memory_order_relaxed);
  h.epoch.store(h.epoch.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  h.seq.store(s + 2, std::memory_order_release);
}

void WorkerPool::heartbeat_end(int w) {
  WorkerHeartbeat& h = heartbeats_[static_cast<std::size_t>(w)];
  const std::uint64_t s = h.seq.load(std::memory_order_relaxed);
  h.seq.store(s + 1, std::memory_order_release);
  h.tag.store(0, std::memory_order_relaxed);
  h.task.store(kNoTask, std::memory_order_relaxed);
  h.epoch.store(h.epoch.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  h.seq.store(s + 2, std::memory_order_release);
}

void WorkerPool::heartbeat_park(int w) {
  WorkerHeartbeat& h = heartbeats_[static_cast<std::size_t>(w)];
  const std::uint64_t s = h.seq.load(std::memory_order_relaxed);
  h.seq.store(s + 1, std::memory_order_release);
  h.epoch.store(h.epoch.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  h.seq.store(s + 2, std::memory_order_release);
}

bool WorkerPool::read_heartbeat(int w, HeartbeatSnapshot* out) const {
  if (w < 0 || w >= n_workers_) return false;
  const WorkerHeartbeat& h = heartbeats_[static_cast<std::size_t>(w)];
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t s1 = h.seq.load(std::memory_order_acquire);
    if (s1 & 1u) continue;  // writer in flight
    out->epoch = h.epoch.load(std::memory_order_relaxed);
    out->tag = h.tag.load(std::memory_order_relaxed);
    out->task = h.task.load(std::memory_order_relaxed);
    out->since_ns = h.since_ns.load(std::memory_order_relaxed);
    // Fence-then-reload: the acquire fence keeps the field loads above from
    // sinking past the seq re-check (an acquire *load* would not).
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t s2 = h.seq.load(std::memory_order_relaxed);
    if (s1 == s2) {
      out->busy = out->tag != 0;
      return true;
    }
  }
  return false;  // persistently torn; caller polls again next tick
}

TaskGraph* WorkerPool::acquire_next_graph(std::size_t* rr) {
  std::lock_guard<std::mutex> lock(clients_mu_);
  if (clients_.empty()) return nullptr;
  TaskGraph* g = clients_[*rr % clients_.size()];
  ++*rr;
  // Counted while the registry lock pins membership: detach unregisters
  // under the same lock, then waits for this count to hit zero.
  g->pool_active_.fetch_add(1, std::memory_order_acq_rel);
  return g;
}

void WorkerPool::release_graph(TaskGraph* g) {
  // Notify under the mutex: the detach waiter re-checks the predicate with
  // detach_mu_ held, so it cannot observe zero and destroy the graph while
  // this thread still holds (or is about to touch) the mutex/cv.
  std::lock_guard<std::mutex> lock(g->detach_mu_);
  if (g->pool_active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    g->detach_cv_.notify_all();
  }
}

bool WorkerPool::any_ready() {
  std::lock_guard<std::mutex> lock(clients_mu_);
  for (TaskGraph* g : clients_) {
    if (g->has_ready_work()) return true;
  }
  return false;
}

std::uint64_t WorkerPool::run_pending_control(std::uint64_t seen) {
  const std::uint64_t e = ctl_epoch_.load(std::memory_order_acquire);
  if (e == seen) return seen;
  // The caller of run_on_all_workers holds ctl_mu_ for the whole
  // operation (released only inside its cv wait), so ctl_fn_ is stable
  // while any ack is still outstanding.
  const std::function<void()>* fn = nullptr;
  {
    std::lock_guard<std::mutex> lock(ctl_mu_);
    fn = ctl_fn_;
  }
  if (fn != nullptr) (*fn)();
  {
    std::lock_guard<std::mutex> lock(ctl_mu_);
    ++ctl_acks_;
  }
  ctl_cv_.notify_all();
  return e;
}

void WorkerPool::run_on_all_workers(const std::function<void()>& fn) {
  if (t_pool_worker == this) {
    throw std::logic_error(
        "WorkerPool::run_on_all_workers called from a worker of this pool; "
        "it would wait forever for its own ack");
  }
  std::unique_lock<std::mutex> ctl(ctl_mu_);  // serializes callers
  ctl_fn_ = &fn;
  ctl_acks_ = 0;
  // Publish the epoch under the sleep mutex, mirroring the shutdown path
  // in ~WorkerPool: a parking worker evaluates its wait predicate with
  // idle_mu_ held, so it either observes the new epoch and skips the wait,
  // or it is already blocked in wait() when the bump lands and the
  // broadcast below reaches it. Bumping outside the lock could slip into
  // the window between a worker's predicate check and its wait(), losing
  // the wake and hanging an otherwise-idle pool.
  {
    std::lock_guard<std::mutex> sleep(idle_mu_);
    ctl_epoch_.fetch_add(1, std::memory_order_release);
  }
  // Wake every parked worker; their park predicate watches ctl_epoch_.
  // Busy workers pick the epoch up between service slices.
  idle_cv_.notify_all();
  ctl_cv_.wait(ctl, [this] { return ctl_acks_ == n_workers_; });
  ctl_fn_ = nullptr;
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++control_runs_;
}

void WorkerPool::worker_main(int w) {
  t_pool_worker = this;  // lets run_on_all_workers reject re-entry
  std::uint64_t seen_ctl = 0;
  std::size_t rr = static_cast<std::size_t>(w);  // stagger the rotation
  int dry = 0;
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen_ctl = run_pending_control(seen_ctl);
    TaskGraph* g = acquire_next_graph(&rr);
    bool did = false;
    if (g != nullptr) {
      did = g->pool_service(w);
      release_graph(g);
    }
    if (did) {
      dry = 0;
      continue;
    }
    // Give every attached graph a probe before parking: a single quiet
    // graph must not put the worker to sleep while a sibling has work.
    std::size_t n_clients;
    {
      std::lock_guard<std::mutex> lock(clients_mu_);
      n_clients = clients_.size();
    }
    if (static_cast<std::size_t>(++dry) <= n_clients) continue;
    dry = 0;
    // About to park: bump the progress epoch so a stall monitor never
    // mistakes a sleeping worker for one stuck inside a task body.
    heartbeat_park(w);
    // Park. Same missed-wake-free handshake as TaskGraph's owned mode:
    // count ourselves as a sleeper (seq_cst), re-scan with the queue locks
    // (any push this scan misses sees sleepers_ > 0 and takes idle_mu_ to
    // wake us), then wait.
    std::unique_lock<std::mutex> lock(idle_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    bool got = any_ready();
    bool consumed = false;  // burned a task-push relay credit this park
    while (!got && !shutdown_.load(std::memory_order_acquire) &&
           ctl_epoch_.load(std::memory_order_acquire) == seen_ctl) {
      idle_cv_.wait(lock);
      if (idle_wakes_ > 0) {  // consume our notify
        --idle_wakes_;
        consumed = true;
      }
      got = any_ready();
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    // A control-epoch or shutdown broadcast can steal the relay credit a
    // try_wake_one issued for a task push: this worker consumed it but is
    // leaving to service the control run, not the push. Forward the wake
    // to a parked sibling so the push's ramp-up is not delayed until this
    // worker finishes the control fn and re-probes. Deliberately
    // credit-less: re-incrementing idle_wakes_ when no sibling is left in
    // wait() would leave a dangling credit that blocks every future
    // try_wake_one — a spurious extra wake is harmless, a stuck credit is
    // a lost wakeup.
    const bool forward = consumed && !got;
    lock.unlock();
    if (forward) idle_cv_.notify_one();
    parks_.fetch_add(1, std::memory_order_relaxed);
  }
}

WorkerPoolStats WorkerPool::stats() const {
  WorkerPoolStats s;
  s.size = n_workers_;
  s.pinned = pinned_ok_;
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakeups_issued = wakeups_issued_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  s.graphs_attached = graphs_attached_;
  s.graphs_detached = graphs_detached_;
  s.control_runs = control_runs_;
  s.lifetime.workers = lifetime_workers_;
  s.lifetime.submit_wakeups = lifetime_submit_wakeups_;
  return s;
}

}  // namespace camult::rt
