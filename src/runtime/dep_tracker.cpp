#include "runtime/dep_tracker.hpp"

#include <algorithm>

namespace camult::rt {

std::vector<TaskId> DepTracker::depends(
    TaskId task, const std::vector<BlockAccess>& accesses) {
  std::vector<TaskId> deps;
  for (const BlockAccess& a : accesses) {
    BlockState& st = state_[a.key];
    const bool reads =
        a.mode == AccessMode::Read || a.mode == AccessMode::ReadWrite;
    const bool writes =
        a.mode == AccessMode::Write || a.mode == AccessMode::ReadWrite;

    if (reads && st.last_writer != kNoTask && st.last_writer != task) {
      deps.push_back(st.last_writer);  // RAW
    }
    if (writes) {
      if (st.last_writer != kNoTask && st.last_writer != task) {
        deps.push_back(st.last_writer);  // WAW
      }
      for (TaskId r : st.readers_since_write) {
        if (r != task) deps.push_back(r);  // WAR
      }
      st.readers_since_write.clear();
      st.last_writer = task;
    } else {
      st.readers_since_write.push_back(task);
    }
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

}  // namespace camult::rt
