// cancel.hpp — cooperative cancellation for TaskGraph runs.
//
// A CancelToken is a copyable handle to one shared cancellation flag.
// Hand the same token to TaskGraph::Config::cancel and to whoever may need
// to stop the run (a timeout thread, a signal handler trampoline, a caller
// that lost interest); request_cancel() makes the scheduler skip every task
// body that has not started yet. Cancellation is cooperative and
// task-granular: a body that is already running finishes normally — the
// runtime never interrupts user code mid-flight — but no new body starts.
//
// Skipped tasks still complete from the scheduler's point of view (their
// successors resolve, completion counters advance), so wait(), drain_all()
// and WorkerPool::detach() keep their exact accounting; a cancelled graph
// drains fast instead of wedging. wait() reports the outcome: a task error
// (if any) wins, otherwise a pure cancellation throws CancelledError.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace camult::rt {

/// Thrown by TaskGraph::wait() when the run was cancelled via a CancelToken
/// and no task had failed (a task error takes precedence — it is the more
/// specific diagnosis).
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("TaskGraph run cancelled") {}
};

/// Copyable handle to a shared cancellation flag. Thread-safe; all copies
/// observe the same state. A default-constructed token owns a fresh flag.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Ask every graph holding this token to stop starting task bodies.
  /// Idempotent; callable from any thread (including a task body).
  void request_cancel() const {
    state_->store(true, std::memory_order_release);
  }

  bool cancelled() const { return state_->load(std::memory_order_acquire); }

  /// Stable nonzero identity of the shared flag: every copy of one token
  /// reports the same id, distinct tokens report distinct ids for as long
  /// as both are alive. Used as the "which run is this worker executing"
  /// tag in WorkerPool heartbeats, so a stall monitor can match a stuck
  /// worker back to the job (attempt) that owns the run.
  std::uint64_t id() const {
    return static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(state_.get()));
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace camult::rt
