// worker_pool.hpp — a persistent, reusable pool of worker threads.
//
// The paper's runtime model (and the PLASMA baseline it compares against)
// keeps ONE long-lived set of workers for the whole process; TaskGraph used
// to spawn its own std::threads per factorization call and join them at
// wait(), so repeated or small-problem workloads paid thread create/teardown
// (plus cold futex sleep/wake and re-warmed thread_local slab pools) on
// every call. A WorkerPool amortizes all of that:
//
//  * Spawn once. Workers are created in the pool constructor and park on a
//    condition variable whenever no attached graph has ready work; attaching
//    a TaskGraph costs a registry insert and (at most) one futex wake.
//  * Many graphs, one pool. Several TaskGraphs may be attached at once;
//    workers rotate between them in bounded slices, so a batch of small
//    independent DAGs (see core::calu_factor_batch) shares the workers
//    instead of serializing pool construction.
//  * Optional CPU pinning. With `pin_threads`, worker t is bound to CPU
//    t % hardware_concurrency via the sched_setaffinity machinery
//    (pthread_setaffinity_np); a best-effort operation — failures are
//    recorded in stats().pinned, never fatal.
//  * Thread-local caches persist. Because the threads survive across runs,
//    per-thread state such as the blas scratch-slab pool (blas/pack.hpp)
//    genuinely persists call-to-call; run_on_all_workers() is the generic
//    hook for pool-wide maintenance of such caches (trim, stats snapshot).
//
// Lifetime rules: a pool must outlive every TaskGraph attached to it, and
// every attached graph must be destroyed (which drains + detaches it)
// before the pool. run_on_all_workers must not be called from a worker of
// the same pool (enforced: such a call throws std::logic_error instead of
// deadlocking). WorkerPool is thread-safe for attach/detach/notify;
// construction and destruction belong to one owning thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/task_graph.hpp"

namespace camult::rt {

/// Worker count used when a caller does not specify one: the hardware
/// concurrency clamped to [1, 32] (4 when the runtime cannot tell). Keeps
/// the out-of-the-box configuration from undersubscribing a 16-core box or
/// oversubscribing a 2-core CI runner the way a hardcoded constant did.
int default_num_threads();

struct WorkerPoolConfig {
  int num_threads = 0;      ///< 0 = default_num_threads()
  bool pin_threads = false; ///< bind worker t to CPU t % ncpu (best effort)
};

/// One worker's liveness slot: a cache-line-padded seqlock written only by
/// its worker (on task start, task finish, and park) and read lock-free by
/// stall monitors (svc::Service's watchdog thread). `seq` is odd while the
/// worker is mid-update; `epoch` counts progress events, so a monitor that
/// sees the same (epoch, tag, task) across a whole stall_timeout knows the
/// worker has been inside one task body the entire time. All fields are
/// atomics — the seqlock ordering makes the snapshot *consistent*, the
/// atomics keep the mixed-thread access race-free under TSAN.
struct alignas(64) WorkerHeartbeat {
  std::atomic<std::uint64_t> seq{0};    ///< seqlock: odd = write in flight
  std::atomic<std::uint64_t> epoch{0};  ///< bumped on start/finish/park
  std::atomic<std::uint64_t> tag{0};    ///< owning run's tag, 0 = idle
  std::atomic<std::int64_t> task{kNoTask};   ///< task id being executed
  std::atomic<std::int64_t> since_ns{0};     ///< body start, pool clock
};

/// Consistent snapshot of one WorkerHeartbeat (see read_heartbeat).
struct HeartbeatSnapshot {
  std::uint64_t epoch = 0;
  std::uint64_t tag = 0;  ///< 0 when no task body is in flight
  std::int64_t task = kNoTask;
  std::int64_t since_ns = 0;
  bool busy = false;  ///< tag != 0: a task body is running right now
};

/// Pool-lifetime telemetry. `lifetime` folds the per-run SchedulerStats of
/// every detached graph per worker slot (graph worker w IS pool worker w),
/// so the existing observability layer (SchedulerStats::totals,
/// compute_stats) consumes it unchanged. Counters for graphs still attached
/// are not included until they detach.
struct WorkerPoolStats {
  int size = 0;                       ///< worker threads in the pool
  int pinned = 0;                     ///< workers successfully pinned
  std::int64_t graphs_attached = 0;   ///< attach() calls so far
  std::int64_t graphs_detached = 0;   ///< graphs fully drained + detached
  std::int64_t parks = 0;             ///< worker sleep episodes
  std::int64_t wakeups_issued = 0;    ///< futex wakes issued by the pool
  std::int64_t control_runs = 0;      ///< run_on_all_workers invocations
  SchedulerStats lifetime;            ///< folded per-run stats, per slot
};

class WorkerPool {
 public:
  explicit WorkerPool(const WorkerPoolConfig& config = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return n_workers_; }

  /// Run `fn` once on every worker thread and block until all have run it.
  /// Workers interleave the run between task batches, so this completes
  /// even while graphs are executing (bounded by the longest single task).
  /// The pool-wide analogue of thread-local maintenance like
  /// blas::buffer_pool_trim — see core::pool_buffer_trim. Calling it from
  /// a worker of this pool throws std::logic_error (the worker could never
  /// ack its own epoch, so the call would otherwise hang).
  void run_on_all_workers(const std::function<void()>& fn);

  /// Snapshot of the pool-lifetime counters (see WorkerPoolStats).
  WorkerPoolStats stats() const;

  /// Nanoseconds on the pool's monotonic clock (zero at pool construction).
  /// Heartbeat since_ns timestamps are on this clock, so a monitor computes
  /// "stuck for" as now_ns() - snapshot.since_ns with no epoch juggling.
  std::int64_t now_ns() const;

  /// Lock-free consistent read of worker w's heartbeat. Returns false when
  /// the worker was mid-update on every retry (vanishingly rare — the
  /// write section is a handful of stores); callers just poll again.
  bool read_heartbeat(int w, HeartbeatSnapshot* out) const;

  /// Lazily created process-wide pool (default_num_threads() workers, no
  /// pinning). Lives until process exit; never destroyed while a static
  /// user could still attach.
  static WorkerPool& process_default();

 private:
  friend class TaskGraph;

  // --- TaskGraph handshake.
  void attach(TaskGraph* g);
  /// Drain g (all submitted tasks run), unregister it, then wait until no
  /// worker is still inside its structures. After detach the graph can be
  /// destroyed.
  void detach(TaskGraph* g);
  /// Issue one relay wake if a worker is parked and none is in flight.
  /// Returns whether a wake was issued (counter attribution is the
  /// caller's).
  bool try_wake_one();

  // --- Heartbeat writers (worker w's thread only; see WorkerHeartbeat).
  void heartbeat_begin(int w, std::uint64_t tag, std::int64_t task);
  void heartbeat_end(int w);
  void heartbeat_park(int w);  ///< progress bump with no task (pre-park)

  // --- Worker internals.
  void worker_main(int w);
  TaskGraph* acquire_next_graph(std::size_t* rr);
  static void release_graph(TaskGraph* g);
  bool any_ready();
  std::uint64_t run_pending_control(std::uint64_t seen);

  WorkerPoolConfig config_;
  int n_workers_ = 0;
  std::atomic<bool> shutdown_{false};

  // Attached graphs. Workers hold this lock only to pick a graph (and to
  // bump its in-service refcount atomically with membership); the pick is
  // amortized over a whole service slice of task batches.
  mutable std::mutex clients_mu_;
  std::vector<TaskGraph*> clients_;

  // Sleep/wake handshake: same relay scheme as TaskGraph's owned mode (one
  // in-flight notify, re-armed by the woken worker when a backlog remains).
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int> sleepers_{0};
  int idle_wakes_ = 0;  ///< in-flight notifies, guarded by idle_mu_

  // run_on_all_workers control slot. The caller holds ctl_mu_ (released
  // while waiting on ctl_cv_) for the whole operation, so epochs are fully
  // serialized and ctl_fn_ is stable whenever a worker observes a new
  // epoch.
  std::mutex ctl_mu_;
  std::condition_variable ctl_cv_;
  const std::function<void()>* ctl_fn_ = nullptr;  ///< guarded by ctl_mu_
  int ctl_acks_ = 0;                               ///< guarded by ctl_mu_
  std::atomic<std::uint64_t> ctl_epoch_{0};

  // Lifetime stats (see WorkerPoolStats).
  mutable std::mutex stats_mu_;
  std::vector<WorkerStats> lifetime_workers_;  ///< guarded by stats_mu_
  std::int64_t lifetime_submit_wakeups_ = 0;   ///< guarded by stats_mu_
  std::int64_t graphs_attached_ = 0;           ///< guarded by stats_mu_
  std::int64_t graphs_detached_ = 0;           ///< guarded by stats_mu_
  std::int64_t control_runs_ = 0;              ///< guarded by stats_mu_
  std::atomic<std::int64_t> parks_{0};
  std::atomic<std::int64_t> wakeups_issued_{0};
  int pinned_ok_ = 0;  ///< written before workers run, const after

  // Liveness slots, one padded cache line per worker (heap-allocated so
  // the alignas(64) actually holds regardless of the pool's own address).
  std::unique_ptr<WorkerHeartbeat[]> heartbeats_;
  std::chrono::steady_clock::time_point clock_zero_;

  std::vector<std::thread> workers_;
};

}  // namespace camult::rt
