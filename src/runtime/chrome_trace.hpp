// chrome_trace.hpp — export executed/simulated traces in the Chrome
// trace-event format (a JSON array of event objects), loadable by
// chrome://tracing and https://ui.perfetto.dev.
//
// Mapping:
//  * each TaskRecord becomes a complete duration event ("ph":"X") on
//    pid 0 / tid = worker (serial records with worker == -1 land on tid 0),
//    with ts/dur in microseconds (doubles, so ns resolution survives);
//  * DAG edges become flow event pairs ("ph":"s"/"f") so Perfetto draws
//    arrows between a producer's end and a consumer's start;
//  * a derived "ready tasks" counter series ("ph":"C") approximates queue
//    depth: a task counts as ready from the instant its last predecessor
//    finished until it starts executing.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "runtime/task.hpp"
#include "runtime/task_graph.hpp"

namespace camult::rt {

/// Escape a string for embedding inside a JSON string literal per RFC 8259
/// (quote, backslash, and control characters; no outer quotes added).
std::string json_escape(const std::string& s);

struct ChromeTraceOptions {
  bool flow_events = true;     ///< emit s/f arrows for DAG edges
  bool counter_events = true;  ///< emit the derived ready-queue depth series
  std::string process_name = "camult";
};

/// Write `records` (and optionally `edges`) as a Chrome trace-event JSON
/// array. Records with zero-initialised timestamps (trace recording off) are
/// still emitted as zero-duration events so the DAG structure is visible.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TaskRecord>& records,
                        const std::vector<TaskGraph::Edge>& edges,
                        const ChromeTraceOptions& opts = {});

/// Convenience wrapper: open `path`, write, and throw std::runtime_error on
/// I/O failure.
void write_chrome_trace_file(const std::string& path,
                             const std::vector<TaskRecord>& records,
                             const std::vector<TaskGraph::Edge>& edges,
                             const ChromeTraceOptions& opts = {});

}  // namespace camult::rt
