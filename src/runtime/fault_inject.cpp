#include "runtime/fault_inject.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace camult::rt {

namespace {

// splitmix64: the one-round mixer from Vigna's xorshift work. Full avalanche
// (every output bit depends on every input bit), so consecutive task ids map
// to statistically independent decisions even with a tiny seed.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from the top 53 bits (exactly representable in double).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double env_rate(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v >= 0.0) || v > 1.0) return fallback;
  return v;
}

}  // namespace

FaultConfig FaultConfig::from_env() {
  FaultConfig cfg;
  const char* seed = std::getenv("CAMULT_FAULT_SEED");
  if (seed == nullptr || *seed == '\0') return cfg;  // disarmed
  char* end = nullptr;
  cfg.seed = std::strtoull(seed, &end, 10);
  if (end == seed || *end != '\0') cfg.seed = 0;  // typo: still armed, seed 0
  cfg.throw_rate = env_rate("CAMULT_FAULT_THROW_RATE", 0.01);
  cfg.delay_rate = env_rate("CAMULT_FAULT_DELAY_RATE", 0.0);
  cfg.wake_rate = env_rate("CAMULT_FAULT_WAKE_RATE", 0.0);
  if (const char* us = std::getenv("CAMULT_FAULT_DELAY_US")) {
    end = nullptr;
    const long v = std::strtol(us, &end, 10);
    if (end != us && *end == '\0' && v >= 0 && v <= 1000000) {
      cfg.delay_us = static_cast<int>(v);
    }
  }
  return cfg;
}

FaultInjector::Action FaultInjector::decide(TaskId id) const {
  if (config_.throw_on_task != kNoTask && id == config_.throw_on_task) {
    return Action::Throw;
  }
  const double total =
      config_.throw_rate + config_.delay_rate + config_.wake_rate;
  if (total <= 0.0) return Action::None;
  const double u = to_unit(
      splitmix64(config_.seed ^ (static_cast<std::uint64_t>(id) *
                                 0xD6E8FEB86659FD93ull)));
  if (u < config_.throw_rate) return Action::Throw;
  if (u < config_.throw_rate + config_.delay_rate) return Action::Delay;
  if (u < total) return Action::SpuriousWake;
  return Action::None;
}

bool FaultInjector::before_task(TaskId id) {
  switch (decide(id)) {
    case Action::None:
      return false;
    case Action::Throw:
      throws_.fetch_add(1, std::memory_order_relaxed);
      throw InjectedFault(id);
    case Action::Delay:
      delays_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(config_.delay_us));
      return false;
    case Action::SpuriousWake:
      wakes_.fetch_add(1, std::memory_order_relaxed);
      return true;
  }
  return false;
}

FaultInjector* FaultInjector::from_env() {
  // Armed once, leaked on purpose: TaskGraphs may outlive main()'s statics
  // (process_default pool workers), so never destroy it.
  static FaultInjector* global = [] {
    const FaultConfig cfg = FaultConfig::from_env();
    const bool armed = std::getenv("CAMULT_FAULT_SEED") != nullptr &&
                       *std::getenv("CAMULT_FAULT_SEED") != '\0';
    return armed ? new FaultInjector(cfg) : nullptr;
  }();
  return global;
}

}  // namespace camult::rt
