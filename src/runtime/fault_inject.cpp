#include "runtime/fault_inject.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace camult::rt {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

namespace {

// Uniform in [0, 1) from the top 53 bits (exactly representable in double).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// A malformed CAMULT_FAULT_* value falls back to its default, but silently
// doing so cost real debugging time (a fault campaign that "ran" with rate 0
// because of a stray '%'). Name the variable once on stderr; from_env() is
// evaluated once per process through the FaultInjector::from_env singleton,
// so production sees at most one line per bad variable.
void warn_env(const char* name, const char* value, const char* expected) {
  std::fprintf(stderr, "camult-fault: ignoring %s='%s' (%s)\n", name, value,
               expected);
}

double env_rate(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v >= 0.0) || v > 1.0) {
    warn_env(name, s, "expected a probability in [0, 1]");
    return fallback;
  }
  return v;
}

int env_duration(const char* name, int fallback, long max_value,
                 const char* expected) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0 || v > max_value) {
    warn_env(name, s, expected);
    return fallback;
  }
  return static_cast<int>(v);
}

}  // namespace

FaultConfig FaultConfig::from_env() {
  FaultConfig cfg;
  const char* seed = std::getenv("CAMULT_FAULT_SEED");
  if (seed == nullptr || *seed == '\0') return cfg;  // disarmed
  char* end = nullptr;
  cfg.seed = std::strtoull(seed, &end, 10);
  if (end == seed || *end != '\0') {
    warn_env("CAMULT_FAULT_SEED", seed, "expected a uint64; using seed 0");
    cfg.seed = 0;  // typo: still armed, seed 0
  }
  cfg.throw_rate = env_rate("CAMULT_FAULT_THROW_RATE", 0.01);
  cfg.delay_rate = env_rate("CAMULT_FAULT_DELAY_RATE", 0.0);
  cfg.wake_rate = env_rate("CAMULT_FAULT_WAKE_RATE", 0.0);
  cfg.hang_rate = env_rate("CAMULT_FAULT_HANG_RATE", 0.0);
  cfg.delay_us =
      env_duration("CAMULT_FAULT_DELAY_US", cfg.delay_us, 1000000,
                   "expected microseconds in [0, 1000000]");
  // Hangs are deliberately cancel-oblivious, so bound them: a typo'd
  // CAMULT_FAULT_HANG_MS must not wedge a run past any plausible watchdog.
  cfg.hang_ms = env_duration("CAMULT_FAULT_HANG_MS", cfg.hang_ms, 60000,
                             "expected milliseconds in [0, 60000]");
  return cfg;
}

FaultInjector::Action FaultInjector::decide(TaskId id,
                                            std::uint64_t salt) const {
  if (config_.throw_on_task != kNoTask && id == config_.throw_on_task) {
    return Action::Throw;
  }
  if (config_.hang_on_task != kNoTask && id == config_.hang_on_task) {
    return Action::Hang;
  }
  const double total = config_.throw_rate + config_.delay_rate +
                       config_.wake_rate + config_.hang_rate;
  if (total <= 0.0) return Action::None;
  // salt == 0 must reproduce the historical unsalted stream bit-for-bit, so
  // the salt folds in through an extra mix only when present.
  std::uint64_t h =
      config_.seed ^ (static_cast<std::uint64_t>(id) * 0xD6E8FEB86659FD93ull);
  if (salt != 0) h ^= splitmix64(salt ^ 0xA24BAED4963EE407ull);
  const double u = to_unit(splitmix64(h));
  if (u < config_.throw_rate) return Action::Throw;
  if (u < config_.throw_rate + config_.delay_rate) return Action::Delay;
  if (u < config_.throw_rate + config_.delay_rate + config_.wake_rate) {
    return Action::SpuriousWake;
  }
  if (u < total) return Action::Hang;
  return Action::None;
}

bool FaultInjector::before_task(TaskId id, std::uint64_t salt,
                                const CancelToken* cancel) {
  switch (decide(id, salt)) {
    case Action::None:
      return false;
    case Action::Throw:
      throws_.fetch_add(1, std::memory_order_relaxed);
      throw InjectedFault(id);
    case Action::Delay: {
      delays_.fetch_add(1, std::memory_order_relaxed);
      // Cooperative slow task: never out-sleep a fired CancelToken. Sleep
      // in <= 500 us slices re-checking the token, so a cancel arriving
      // mid-delay costs at most one slice instead of the full budget.
      if (cancel != nullptr && cancel->cancelled()) return false;
      int remaining_us = config_.delay_us;
      while (remaining_us > 0) {
        const int slice = cancel != nullptr ? std::min(remaining_us, 500)
                                            : remaining_us;
        std::this_thread::sleep_for(std::chrono::microseconds(slice));
        remaining_us -= slice;
        if (cancel != nullptr && cancel->cancelled()) break;
      }
      return false;
    }
    case Action::SpuriousWake:
      wakes_.fetch_add(1, std::memory_order_relaxed);
      return true;
    case Action::Hang:
      hangs_.fetch_add(1, std::memory_order_relaxed);
      // A wedged body: ignores the token on purpose. This is the fault the
      // stall watchdog exists to detect — the sleep is bounded only so a
      // watchdog-less run still terminates.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min(config_.hang_ms, 60000)));
      return false;
  }
  return false;
}

FaultInjector* FaultInjector::from_env() {
  // Armed once, leaked on purpose: TaskGraphs may outlive main()'s statics
  // (process_default pool workers), so never destroy it.
  static FaultInjector* global = [] {
    const FaultConfig cfg = FaultConfig::from_env();
    const bool armed = std::getenv("CAMULT_FAULT_SEED") != nullptr &&
                       *std::getenv("CAMULT_FAULT_SEED") != '\0';
    return armed ? new FaultInjector(cfg) : nullptr;
  }();
  return global;
}

}  // namespace camult::rt
