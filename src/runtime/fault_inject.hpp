// fault_inject.hpp — deterministic, seed-driven fault injection for the
// task scheduler.
//
// Production failure modes (a kernel that throws, a task that stalls, a
// futex wake that arrives for no reason) are timing-dependent and nearly
// impossible to reproduce from a test. The FaultInjector turns them into a
// pure function: the action taken for task id T is hash(seed, T) — it does
// not depend on which worker runs T, in what order, or how often the run is
// repeated. The same (seed, rates) therefore injects the same faults into
// the same tasks on every run and under every sanitizer, which is what lets
// the stress suite assert "the scheduler drains and rethrows the first
// error" across hundreds of seeds instead of hoping a race shows up.
//
// Wiring: pass a FaultInjector through TaskGraph::Config::fault (tests,
// benchmarks), or set CAMULT_FAULT_SEED in the environment to arm a
// process-wide injector picked up by every TaskGraph — useful to shake an
// unmodified binary. Env knobs:
//
//   CAMULT_FAULT_SEED        uint64 seed; presence arms the injector
//   CAMULT_FAULT_THROW_RATE  probability a task throws InjectedFault (0.01)
//   CAMULT_FAULT_DELAY_RATE  probability a task sleeps first      (0)
//   CAMULT_FAULT_DELAY_US    length of that sleep in microseconds (100)
//   CAMULT_FAULT_WAKE_RATE   probability of a spurious relay wake (0)
//   CAMULT_FAULT_HANG_RATE   probability a task hangs before running (0)
//   CAMULT_FAULT_HANG_MS     length of that hang in milliseconds (100)
//
// Delay vs hang: an injected *delay* models a slow-but-cooperative task —
// it checks the run's CancelToken before and during the sleep, so a
// cancelled run drains without paying the remaining delay budget. An
// injected *hang* models a genuinely wedged body (a lost lock, a kernel
// spinning on bad input): it is cancel-OBLIVIOUS by design — a bounded
// sleep that ignores the token — so it exercises exactly the path a stall
// watchdog exists for. Hangs are bounded (<= 60 s) so a misconfigured test
// still terminates.
//
// The injector fires immediately before a task body runs, so an injected
// throw exercises exactly the path a throwing kernel would: error capture,
// fast-abort of descendants, drain, rethrow from wait().
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "runtime/cancel.hpp"
#include "runtime/task.hpp"

namespace camult::rt {

/// The exception an armed injector throws inside a task. Distinct type so
/// tests (and users shaking a binary) can tell an injected failure from a
/// real one.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(TaskId id)
      : std::runtime_error("injected fault in task " + std::to_string(id)),
        task_(id) {}
  TaskId task() const { return task_; }

 private:
  TaskId task_;
};

/// splitmix64: the one-round mixer from Vigna's xorshift work. Full
/// avalanche (every output bit depends on every input bit), so consecutive
/// inputs map to statistically independent outputs even with a tiny seed.
/// Exposed because it is the project-wide primitive for "deterministic
/// pseudo-randomness from a seed": fault decisions here, retry-backoff
/// jitter in camult::svc.
std::uint64_t splitmix64(std::uint64_t x);

struct FaultConfig {
  std::uint64_t seed = 0;    ///< decision-hash seed
  double throw_rate = 0.0;   ///< P(task throws InjectedFault)
  double delay_rate = 0.0;   ///< P(task sleeps delay_us before running)
  int delay_us = 100;        ///< length of an injected delay
  double wake_rate = 0.0;    ///< P(spurious relay wake after the task)
  double hang_rate = 0.0;    ///< P(task hangs hang_ms, ignoring cancel)
  int hang_ms = 100;         ///< length of an injected hang (capped 60000)
  /// When >= 0, this exact task throws regardless of the rates —
  /// deterministic single-point failure (e.g. "kill panel 0's first leaf").
  TaskId throw_on_task = kNoTask;
  /// When >= 0, this exact task hangs regardless of the rates —
  /// deterministic single-point stall for watchdog tests.
  TaskId hang_on_task = kNoTask;

  /// Parse the CAMULT_FAULT_* environment. Returns an armed config iff
  /// CAMULT_FAULT_SEED is set (rates default as documented above).
  /// Malformed numbers fall back to their defaults rather than throwing —
  /// an env typo must not take the process down — but each bad variable is
  /// named once on stderr so the typo is not silent.
  static FaultConfig from_env();
};

/// Deterministic fault oracle. decide(id, salt) is a pure function of
/// (config, id, salt); the mutable state is only the fired-fault counters.
/// Thread-safe: decide/before_task may be called from any worker.
class FaultInjector {
 public:
  enum class Action : std::uint8_t { None, Throw, Delay, SpuriousWake, Hang };

  explicit FaultInjector(const FaultConfig& config) : config_(config) {}

  const FaultConfig& config() const { return config_; }

  /// The action for task `id` — same answer on every call, every thread,
  /// every run with this (config, salt). `salt` re-randomizes the decision
  /// stream without touching the config: salt 0 reproduces the unsalted
  /// stream bit-for-bit, distinct salts draw independent streams. The
  /// service retries a transiently failed job with salt = attempt index, so
  /// a retry is not doomed to replay the exact faults that killed attempt
  /// one. Sniper tasks (throw_on_task / hang_on_task) ignore the salt —
  /// a deterministic single-point failure stays deterministic.
  Action decide(TaskId id, std::uint64_t salt = 0) const;

  /// Scheduler hook, called immediately before a task body. Throws
  /// InjectedFault for Action::Throw, sleeps for Action::Delay/Hang, and
  /// returns true when the caller should issue a spurious wake. When
  /// `cancel` is non-null an injected delay is cooperative: skipped if the
  /// token has already fired, and abandoned at the next ~0.5 ms boundary if
  /// it fires mid-sleep. An injected hang ignores `cancel` entirely — that
  /// is its job.
  bool before_task(TaskId id, std::uint64_t salt = 0,
                   const CancelToken* cancel = nullptr);

  std::int64_t injected_throws() const {
    return throws_.load(std::memory_order_relaxed);
  }
  std::int64_t injected_delays() const {
    return delays_.load(std::memory_order_relaxed);
  }
  std::int64_t injected_wakes() const {
    return wakes_.load(std::memory_order_relaxed);
  }
  std::int64_t injected_hangs() const {
    return hangs_.load(std::memory_order_relaxed);
  }

  /// Process-wide injector armed from the environment, or nullptr when
  /// CAMULT_FAULT_SEED is unset. Read once; changing the env after the
  /// first TaskGraph has no effect.
  static FaultInjector* from_env();

 private:
  FaultConfig config_;
  std::atomic<std::int64_t> throws_{0};
  std::atomic<std::int64_t> delays_{0};
  std::atomic<std::int64_t> wakes_{0};
  std::atomic<std::int64_t> hangs_{0};
};

}  // namespace camult::rt
