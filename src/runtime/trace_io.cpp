#include "runtime/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace camult::rt {
namespace {

constexpr const char* kMagic = "camult-dag v1";

TaskKind kind_from_letter(char c) {
  switch (c) {
    case 'P': return TaskKind::Panel;
    case 'L': return TaskKind::LFactor;
    case 'U': return TaskKind::UFactor;
    case 'S': return TaskKind::Update;
    default: return TaskKind::Generic;
  }
}

}  // namespace

void save_dag(std::ostream& os, const std::vector<TaskRecord>& tasks,
              const std::vector<TaskGraph::Edge>& edges) {
  os << kMagic << '\n';
  os << "tasks " << tasks.size() << '\n';
  for (const TaskRecord& t : tasks) {
    os << t.id << ' ' << task_kind_letter(t.kind) << ' ' << t.iteration << ' '
       << t.priority << ' ' << t.worker << ' ' << t.start_ns << ' '
       << t.end_ns << ' ' << t.label << '\n';
  }
  os << "edges " << edges.size() << '\n';
  for (const auto& e : edges) {
    os << e.from << ' ' << e.to << '\n';
  }
}

void save_dag_file(const std::string& path,
                   const std::vector<TaskRecord>& tasks,
                   const std::vector<TaskGraph::Edge>& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_dag_file: cannot open " + path);
  save_dag(out, tasks, edges);
}

namespace {

/// Upper bound on the task/edge counts a DAG file may declare. Far above any
/// trace this library produces, but small enough that a corrupt count cannot
/// drive a multi-GB resize before the first record fails to parse.
constexpr long long kMaxDagCount = 100'000'000;

/// Parse a "<word> <n>" section header, validating the count. Reading into
/// a signed type first catches negative counts (which would otherwise wrap
/// through the unsigned size_t extraction into an enormous resize).
std::size_t read_count(std::istream& is, const char* word) {
  std::string w;
  long long n = 0;
  if (!(is >> w >> n) || w != word) {
    throw std::runtime_error(std::string("load_dag: expected '") + word +
                             " <n>'");
  }
  if (n < 0 || n > kMaxDagCount) {
    throw std::runtime_error(std::string("load_dag: implausible ") + word +
                             " count " + std::to_string(n));
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

RecordedDag load_dag(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("load_dag: bad magic line");
  }
  RecordedDag dag;
  const std::size_t n_tasks = read_count(is, "tasks");
  dag.tasks.resize(n_tasks);
  for (std::size_t i = 0; i < n_tasks; ++i) {
    TaskRecord& t = dag.tasks[i];
    char kind_letter = 'G';
    if (!(is >> t.id >> kind_letter >> t.iteration >> t.priority >> t.worker >>
          t.start_ns >> t.end_ns)) {
      throw std::runtime_error("load_dag: truncated task line " +
                               std::to_string(i));
    }
    if (t.worker < -1) {
      throw std::runtime_error("load_dag: task " + std::to_string(i) +
                               " has invalid worker " +
                               std::to_string(t.worker));
    }
    if (t.end_ns < t.start_ns) {
      throw std::runtime_error("load_dag: task " + std::to_string(i) +
                               " has end_ns < start_ns");
    }
    t.kind = kind_from_letter(kind_letter);
    std::getline(is, t.label);
    if (!t.label.empty() && t.label.front() == ' ') t.label.erase(0, 1);
  }
  const std::size_t n_edges = read_count(is, "edges");
  dag.edges.resize(n_edges);
  for (std::size_t i = 0; i < n_edges; ++i) {
    TaskGraph::Edge& e = dag.edges[i];
    if (!(is >> e.from >> e.to)) {
      throw std::runtime_error("load_dag: truncated edge line " +
                               std::to_string(i));
    }
    const auto n = static_cast<TaskId>(n_tasks);
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      throw std::runtime_error("load_dag: edge " + std::to_string(i) + " (" +
                               std::to_string(e.from) + " -> " +
                               std::to_string(e.to) +
                               ") references a task outside [0, " +
                               std::to_string(n_tasks) + ")");
    }
  }
  return dag;
}

RecordedDag load_dag_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_dag_file: cannot open " + path);
  return load_dag(in);
}

}  // namespace camult::rt
