#include "runtime/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace camult::rt {
namespace {

constexpr const char* kMagic = "camult-dag v1";

TaskKind kind_from_letter(char c) {
  switch (c) {
    case 'P': return TaskKind::Panel;
    case 'L': return TaskKind::LFactor;
    case 'U': return TaskKind::UFactor;
    case 'S': return TaskKind::Update;
    default: return TaskKind::Generic;
  }
}

}  // namespace

void save_dag(std::ostream& os, const std::vector<TaskRecord>& tasks,
              const std::vector<TaskGraph::Edge>& edges) {
  os << kMagic << '\n';
  os << "tasks " << tasks.size() << '\n';
  for (const TaskRecord& t : tasks) {
    os << t.id << ' ' << task_kind_letter(t.kind) << ' ' << t.iteration << ' '
       << t.priority << ' ' << t.worker << ' ' << t.start_ns << ' '
       << t.end_ns << ' ' << t.label << '\n';
  }
  os << "edges " << edges.size() << '\n';
  for (const auto& e : edges) {
    os << e.from << ' ' << e.to << '\n';
  }
}

void save_dag_file(const std::string& path,
                   const std::vector<TaskRecord>& tasks,
                   const std::vector<TaskGraph::Edge>& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_dag_file: cannot open " + path);
  save_dag(out, tasks, edges);
}

RecordedDag load_dag(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("load_dag: bad magic line");
  }
  std::string word;
  std::size_t count = 0;
  if (!(is >> word >> count) || word != "tasks") {
    throw std::runtime_error("load_dag: expected 'tasks <n>'");
  }
  RecordedDag dag;
  dag.tasks.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    TaskRecord& t = dag.tasks[i];
    char kind_letter = 'G';
    if (!(is >> t.id >> kind_letter >> t.iteration >> t.priority >> t.worker >>
          t.start_ns >> t.end_ns)) {
      throw std::runtime_error("load_dag: truncated task line");
    }
    t.kind = kind_from_letter(kind_letter);
    std::getline(is, t.label);
    if (!t.label.empty() && t.label.front() == ' ') t.label.erase(0, 1);
  }
  if (!(is >> word >> count) || word != "edges") {
    throw std::runtime_error("load_dag: expected 'edges <n>'");
  }
  dag.edges.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(is >> dag.edges[i].from >> dag.edges[i].to)) {
      throw std::runtime_error("load_dag: truncated edge line");
    }
  }
  return dag;
}

RecordedDag load_dag_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_dag_file: cannot open " + path);
  return load_dag(in);
}

}  // namespace camult::rt
