// task_graph.hpp — dynamic task-DAG executor.
//
// This is the "dynamic scheduling" substrate of the paper (Section III):
// tasks are submitted on the fly with explicit dependencies, enter a ready
// queue once all predecessors finish, and a pool of worker threads executes
// them highest-priority-first. Priorities implement the look-ahead policy.
//
// Modes:
//  * num_threads >= 1 — real std::thread workers.
//  * num_threads == 0 — inline: each task runs immediately on the submitting
//    thread (submission order must be a topological order, which holds for
//    all algorithms in this library). This is the serial record mode used to
//    measure per-task durations for the simulated-multicore replayer.
//
// After wait(), the executed trace and the dependency edges can be exported.
#pragma once

#include <chrono>
#include <exception>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "runtime/task.hpp"

namespace camult::rt {

class TaskGraph {
 public:
  /// How ready tasks are handed to workers.
  enum class Policy {
    /// One global priority queue: strict highest-priority-first (the
    /// look-ahead policy relies on this). Default.
    CentralPriority,
    /// Per-worker deques with LIFO self-pop and FIFO stealing: better
    /// locality (a task's successors run where it finished) at the cost of
    /// only approximate priority order.
    WorkStealing,
  };

  struct Config {
    int num_threads = 1;  ///< 0 = inline serial mode
    bool record_trace = true;
    Policy policy = Policy::CentralPriority;
  };

  struct Edge {
    TaskId from;
    TaskId to;
  };

  explicit TaskGraph(const Config& config);
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Submit a task depending on `deps` (finished deps are allowed and
  /// skipped). Returns the task id. Thread-compatible: call from one
  /// submission thread.
  TaskId submit(const std::vector<TaskId>& deps, TaskOptions opts,
                std::function<void()> fn);

  /// Block until every submitted task has executed. If any task threw, the
  /// first exception (by task id) is rethrown here (the graph still drains
  /// completely first).
  void wait();

  int num_threads() const { return config_.num_threads; }

  /// Executed tasks, sorted by id. Valid after wait().
  std::vector<TaskRecord> trace() const;

  /// All dependency edges actually registered. Valid after wait().
  std::vector<Edge> edges() const;

 private:
  struct Task {
    std::function<void()> fn;
    TaskOptions opts;
    int unresolved = 0;
    bool finished = false;
    std::vector<TaskId> successors;
    TaskRecord record;
    std::exception_ptr error;
  };

  // Max-heap entry: higher priority first, lower id breaks ties (FIFO-ish,
  // and deterministic).
  struct ReadyOrder {
    bool operator()(const std::pair<int, TaskId>& a,
                    const std::pair<int, TaskId>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    }
  };

  void worker_loop(int worker_id);
  void run_task(TaskId id, int worker_id,
                std::vector<TaskId>* inline_stack = nullptr);
  void push_ready_locked(TaskId id, int worker_hint);
  TaskId pop_ready_locked(int worker_id);
  bool any_ready_locked() const;

  Config config_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::condition_variable done_cv_;
  std::deque<Task> tasks_;
  std::priority_queue<std::pair<int, TaskId>, std::vector<std::pair<int, TaskId>>,
                      ReadyOrder>
      ready_;
  std::vector<std::deque<TaskId>> local_ready_;  ///< WorkStealing deques
  std::vector<Edge> edges_;
  idx unfinished_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace camult::rt
