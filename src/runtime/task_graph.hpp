// task_graph.hpp — dynamic task-DAG executor.
//
// This is the "dynamic scheduling" substrate of the paper (Section III):
// tasks are submitted on the fly with explicit dependencies, enter a ready
// queue once all predecessors finish, and a pool of worker threads executes
// them highest-priority-first. Priorities implement the look-ahead policy.
//
// Modes:
//  * num_threads >= 1 — real std::thread workers.
//  * num_threads == 0 — inline: each task runs immediately on the submitting
//    thread (submission order must be a topological order, which holds for
//    all algorithms in this library). This is the serial record mode used to
//    measure per-task durations for the simulated-multicore replayer.
//
// Concurrency structure (the hot path pop -> run -> resolve -> push touches
// no global lock):
//  * Task storage is an append-only two-level block directory written only
//    by the single submission thread; workers index finished slots without
//    any lock (publication happens-before via the ready queues).
//  * Each task carries an atomic `unresolved` predecessor count. Submission
//    holds a +1 sentinel while it registers dependencies so a racing
//    completion cannot fire the task early; the last decrement (sentinel
//    release or predecessor completion, whichever is later) makes it ready.
//  * A small per-task mutex guards only {finished, successors} — the
//    registration/completion handshake on one edge.
//  * The submission thread stages ready tasks in an inbox under its own
//    small lock; workers splice the inbox in bulk during batched refills,
//    so producer and consumers never contend on the same hot lock.
//  * Policy::CentralPriority keeps one priority queue under its own mutex,
//    touched only by workers; Policy::WorkStealing keeps per-worker deques,
//    each under its own small mutex (LIFO self-pop, FIFO steal).
//  * Wakeups are relayed, not broadcast: a push notifies one sleeper only
//    when no notify is already in flight, and the woken worker re-arms the
//    next wake if its refill leaves a backlog — a burst of pushes costs one
//    futex wake, and the common all-busy case costs none.
//
// After wait(), the executed trace and the dependency edges can be exported.
// trace()/edges() are valid after wait() returns; submit() must be called
// from a single submission thread.
//
// Windowed (sliding-window) submission: a caller that cannot afford the
// O(total tasks) footprint of a fully materialized DAG opts into iteration
// tracking (track_iterations). Tasks then carry nondecreasing iteration
// tags; once every task of the leading iterations has completed AND the
// submitter sealed them (seal_iterations), wait_retired_iterations advances
// a retirement watermark on the submission thread — running a per-iteration
// retire hook and recycling every task-store slab that lies wholly below
// the oldest live iteration. Recycled slabs are reused by later submits, so
// the resident task store is O(live window), not O(total). See
// docs/runtime.md ("Sliding-window submission") for the lifetime model.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/cancel.hpp"
#include "runtime/task.hpp"

namespace camult::rt {

class FaultInjector;
class WorkerPool;

/// Per-worker scheduler counters, snapshotted by TaskGraph::stats().
/// busy_ns is only accumulated when Config::record_trace is set (it reuses
/// the trace timestamps; the counter-only path stays clock-free on the hot
/// path). idle_ns covers time blocked in the sleep/wake handshake.
struct WorkerStats {
  std::int64_t tasks_executed = 0;
  std::int64_t tasks_skipped = 0;  ///< bodies not run (fast-abort / cancel)
  std::int64_t local_pops = 0;    ///< tasks popped from own deque / buckets
  std::int64_t steals = 0;        ///< successful steal operations
  std::int64_t stolen_tasks = 0;  ///< tasks taken by those steals
  std::int64_t steal_fails = 0;   ///< victim probes that found nothing
  std::int64_t inbox_drains = 0;  ///< inbox swaps that yielded >= 1 task
  std::int64_t wakeups_sent = 0;  ///< relay notifies issued by this worker
  std::int64_t wakeups_received = 0;  ///< notifies consumed after a sleep
  std::int64_t idle_spins = 0;    ///< yield-backoff iterations before sleep
  std::int64_t busy_ns = 0;       ///< inside task bodies (record_trace only)
  std::int64_t idle_ns = 0;       ///< blocked in the sleep/wake handshake

  WorkerStats& operator+=(const WorkerStats& o);
};

/// Aggregated scheduler telemetry for one TaskGraph run. Valid after
/// wait(); counters keep accumulating if more tasks are submitted.
struct SchedulerStats {
  std::vector<WorkerStats> workers;  ///< one slot per worker (>= 1)
  std::int64_t submit_wakeups = 0;   ///< wakeups issued by the submitter
  WorkerStats totals() const;
};

class TaskGraph {
 public:
  /// How ready tasks are handed to workers.
  enum class Policy {
    /// One global priority queue: strict highest-priority-first (the
    /// look-ahead policy relies on this). Default.
    CentralPriority,
    /// Per-worker deques with LIFO self-pop and FIFO stealing: better
    /// locality (a task's successors run where it finished) at the cost of
    /// only approximate priority order.
    WorkStealing,
  };

  struct Config {
    int num_threads = 1;  ///< 0 = inline serial mode
    bool record_trace = true;
    Policy policy = Policy::CentralPriority;
    /// Attach to a persistent WorkerPool instead of spawning owned
    /// threads: the pool's workers execute this graph (execution width =
    /// pool->size(); num_threads is only consulted for the 0 = inline
    /// case, which always stays inline). The pool must outlive the graph;
    /// the graph's destructor drains pending tasks and detaches.
    WorkerPool* pool = nullptr;
    /// Cooperative cancellation handle (see cancel.hpp). Copy the token
    /// before constructing the graph and call request_cancel() from any
    /// thread to make the run skip every task body that has not started.
    CancelToken cancel{};
    /// When a task throws, skip every not-yet-started task body instead of
    /// executing the rest of the DAG (their results would feed a
    /// computation that is already lost). The graph still drains — skipped
    /// tasks resolve successors and count as completed — so wait()/detach
    /// semantics are unchanged. Set false to restore run-everything.
    bool abort_on_error = true;
    /// Deterministic fault-injection hook (see fault_inject.hpp): fires
    /// before each task body. nullptr = use the process-wide injector
    /// armed by CAMULT_FAULT_SEED, if any.
    FaultInjector* fault = nullptr;
    /// Salt folded into every fault decision this run (see
    /// FaultInjector::decide). 0 reproduces the unsalted stream; the
    /// service sets it to the retry attempt index so a retried job draws a
    /// fresh fault stream instead of replaying the one that killed it.
    std::uint64_t fault_salt = 0;
  };

  struct Edge {
    TaskId from;
    TaskId to;
  };

  /// Task-store / trace memory telemetry, one snapshot per graph. Slab
  /// counters are monotone: recycled slabs are reused, never freed before
  /// destruction, so blocks_allocated is also the peak resident slab count
  /// — in windowed mode it plateaus at O(window) while a full-DAG run grows
  /// it linearly with the task count. peak_task_store_bytes covers the task
  /// slots themselves (labels / successor lists / captured closures are
  /// freed at recycle time but not metered).
  struct MemoryStats {
    std::int64_t task_slot_bytes = 0;   ///< sizeof one task slot
    std::int64_t tasks_per_block = 0;   ///< slots per slab
    std::int64_t blocks_allocated = 0;  ///< distinct slabs (== peak resident)
    std::int64_t blocks_recycled = 0;   ///< slabs retired + returned for reuse
    std::int64_t peak_task_store_bytes = 0;  ///< blocks_allocated * slab bytes
    /// Trace records copied out of recycled slabs (record_trace only; 0 when
    /// tracing is off — retired iterations then leave no per-task residue).
    std::int64_t trace_records_harvested = 0;
  };

  explicit TaskGraph(const Config& config);
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Submit a task depending on `deps` (finished deps are allowed and
  /// skipped). Returns the task id. Thread-compatible: call from one
  /// submission thread.
  TaskId submit(const std::vector<TaskId>& deps, TaskOptions opts,
                std::function<void()> fn);

  /// Block until every submitted task has completed (executed or, after an
  /// error/cancellation, skipped). If any task threw, the first exception
  /// (by task id) is rethrown here; a cancelled run with no task error
  /// throws CancelledError. The graph always drains completely first.
  void wait();

  /// Whether the run is aborting: a task failed (with Config::abort_on_error)
  /// or the cancel token fired. Remaining task bodies will be skipped.
  bool aborted() const {
    return abort_.load(std::memory_order_acquire) ||
           config_.cancel.cancelled();
  }

  int num_threads() const { return config_.num_threads; }

  /// Worker slots actually executing this graph: the pool size in attached
  /// mode, max(num_threads, 1) otherwise (inline mode accounts everything
  /// to slot 0).
  int execution_width() const { return exec_width_; }

  /// Non-null when the graph is attached to a persistent pool.
  WorkerPool* pool() const { return pool_; }

  /// Executed tasks, sorted by id. Valid after wait(). Records are only
  /// filled in when Config::record_trace is set; otherwise they are
  /// default-constructed placeholders.
  std::vector<TaskRecord> trace() const;

  /// All dependency edges actually registered. Valid after wait().
  std::vector<Edge> edges() const;

  /// Snapshot of the per-worker scheduler counters. Valid after wait();
  /// inline mode (num_threads == 0) accounts everything to worker 0.
  SchedulerStats stats() const;

  /// Task-store / trace memory snapshot (see MemoryStats). Callable from
  /// the submission thread at any time; cheap.
  MemoryStats memory() const;

  // --- Iteration lifecycle (windowed submission). All four methods below
  // plus set_retire_hook must be called from the submission thread.

  /// Opt into iteration tracking for `n_iterations` iterations. Must be
  /// called before the first submit(). Every task submitted afterwards must
  /// carry TaskOptions::iteration in [0, n_iterations), nondecreasing
  /// across submits (the natural order of a panel factorization).
  void track_iterations(idx n_iterations);

  /// Declare that no further task with iteration <= `up_to_inclusive` will
  /// be submitted. An iteration retires once it is sealed and all its tasks
  /// completed; retirement is strictly in iteration order.
  void seal_iterations(idx up_to_inclusive);

  /// Leading iterations fully retired: iterations [0, retired) are sealed,
  /// all their tasks completed, their retire hooks have run and their
  /// task-store slabs are recycled.
  idx retired_iterations() const;

  /// Block until retired_iterations() >= r. The watermark only advances
  /// inside this call (and inside wait()), on the calling thread: retire
  /// hooks and slab recycling never race with submission. `r` is clamped to
  /// the tracked iteration count. Every iteration in [0, r) must already be
  /// sealed, or the call would never return (inline mode throws instead of
  /// hanging).
  void wait_retired_iterations(idx r);

  /// Hook invoked once per iteration, in order, as the watermark passes it
  /// (from wait_retired_iterations / wait, on the submission thread, after
  /// every task of the iteration completed). Typical use: free per-iteration
  /// algorithm state. The hook must not submit tasks or re-enter the graph.
  void set_retire_hook(std::function<void(idx)> hook);

 private:
  struct Task {
    std::function<void()> fn;
    TaskOptions opts;
    /// Unfinished-predecessor count, +1 submission sentinel while deps are
    /// being registered. The fetch_sub that reaches 0 owns the push-ready.
    std::atomic<int> unresolved{0};
    /// mu guards {finished, successors}: the only state shared between the
    /// submission thread (registering an edge) and a completing worker
    /// (claiming the successor list). `finished` is additionally readable
    /// lock-free (load-acquire) as a registration fast path: once true, the
    /// successor list is sealed and no edge needs registering.
    std::mutex mu;
    std::atomic<bool> finished{false};
    std::vector<TaskId> successors;
    TaskRecord record;
    std::exception_ptr error;
  };

  /// Append-only task arena: a fixed directory of lazily-allocated blocks.
  /// Slot addresses are stable while a task is live, so workers can
  /// dereference a TaskId published to them (via a ready queue) without any
  /// lock — unlike std::deque, whose push_back mutates internal structures
  /// that operator[] traverses.
  ///
  /// Windowed mode adds recycle_below(): once every task of a slab is
  /// retired (completed + its iteration sealed + watermark passed), the
  /// slab is reset and moved to a free list that append() draws from, so
  /// ids stay dense and monotone while resident memory stays O(window).
  /// Ids below first_live_id() must never be dereferenced again — the
  /// submission thread guarantees it by dropping such (finished by
  /// definition) dependencies before touching the store.
  class TaskStore {
   public:
    static constexpr std::size_t kBlockBits = 12;  // 4096 tasks per block
    static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
    static constexpr std::size_t kMaxBlocks = std::size_t{1} << 14;  // ~67M

    TaskStore();
    ~TaskStore();
    TaskStore(const TaskStore&) = delete;
    TaskStore& operator=(const TaskStore&) = delete;

    /// Single producer. The returned slot is default-constructed; the caller
    /// fills it and only then publishes the id to other threads.
    Task& append();

    Task& operator[](TaskId id) {
      const auto i = static_cast<std::size_t>(id);
      return blocks_[i >> kBlockBits].load(std::memory_order_acquire)
          [i & (kBlockSize - 1)];
    }
    const Task& operator[](TaskId id) const {
      const auto i = static_cast<std::size_t>(id);
      return blocks_[i >> kBlockBits].load(std::memory_order_acquire)
          [i & (kBlockSize - 1)];
    }

    std::size_t size() const { return size_.load(std::memory_order_acquire); }

    /// First id whose slab is still resident; every id below was recycled.
    /// Written only by the submission thread (recycle_below), read by it.
    TaskId first_live_id() const {
      return static_cast<TaskId>(first_live_block_ * kBlockSize);
    }

    /// Submission thread only. Release every slab that lies wholly below
    /// `limit` (all its tasks retired): `harvest` sees each slot before the
    /// reset, then the slab's heap residue (labels, successor lists,
    /// captured closures) is freed and the slab queued for reuse.
    void recycle_below(TaskId limit,
                       const std::function<void(Task&, TaskId)>& harvest);

    std::int64_t blocks_allocated() const { return blocks_allocated_; }
    std::int64_t blocks_recycled() const { return blocks_recycled_; }

   private:
    std::unique_ptr<std::atomic<Task*>[]> blocks_;
    std::atomic<std::size_t> size_{0};
    std::size_t first_live_block_ = 0;  ///< submission thread only
    std::vector<Task*> free_;           ///< recycled slabs, submission thread
    std::int64_t blocks_allocated_ = 0;
    std::int64_t blocks_recycled_ = 0;
  };

  struct WorkerDeque {
    std::mutex mu;
    std::deque<TaskId> q;
  };

  /// One cache-line-padded counter slot per worker. Every field has exactly
  /// one writer (its worker; the submission thread owns submit_wakeups_), so
  /// updates are plain relaxed load/store pairs — no RMW, no contention —
  /// and stats() reads them with relaxed loads.
  struct alignas(64) Counters {
    std::atomic<std::int64_t> tasks_executed{0};
    std::atomic<std::int64_t> tasks_skipped{0};
    std::atomic<std::int64_t> local_pops{0};
    std::atomic<std::int64_t> steals{0};
    std::atomic<std::int64_t> stolen_tasks{0};
    std::atomic<std::int64_t> steal_fails{0};
    std::atomic<std::int64_t> inbox_drains{0};
    std::atomic<std::int64_t> wakeups_sent{0};
    std::atomic<std::int64_t> wakeups_received{0};
    std::atomic<std::int64_t> idle_spins{0};
    std::atomic<std::int64_t> busy_ns{0};
    std::atomic<std::int64_t> idle_ns{0};
  };
  static void bump(std::atomic<std::int64_t>& c, std::int64_t v = 1) {
    c.store(c.load(std::memory_order_relaxed) + v,
            std::memory_order_relaxed);
  }

  /// Iteration-lifecycle state (see track_iterations). The per-iteration
  /// arrays are written by the submission thread (totals, sealed flags) and
  /// by completing workers (done counts); the watermark is advanced by the
  /// submission thread only.
  struct IterTrack {
    idx n = 0;
    std::unique_ptr<std::atomic<idx>[]> submitted;  ///< tasks per iteration
    std::unique_ptr<std::atomic<idx>[]> done;       ///< completions, ditto
    std::unique_ptr<std::atomic<bool>[]> sealed;
    /// First task id of each iteration (kNoTask until one is submitted);
    /// submission thread only — the recycle boundary derives from it.
    std::vector<TaskId> first_id;
    std::atomic<idx> retired{0};  ///< iterations [0, retired) fully retired
    /// Wakes wait_retired_iterations when a completion finishes a sealed
    /// iteration. Completers take mu empty (lock/unlock) before notifying,
    /// so a waiter that just evaluated its predicate cannot miss the wake.
    std::mutex mu;
    std::condition_variable cv;
  };

  friend class WorkerPool;

  /// Iteration bookkeeping at submit time (submission thread).
  void note_submit(int iteration, TaskId id);
  /// Iteration bookkeeping at completion time (any worker); must run after
  /// the task's finished/completed stores so retirement implies visibility.
  void note_complete(const Task& task);
  /// Advance the retirement watermark as far as sealed + fully-done leading
  /// iterations allow: run retire hooks, recycle slabs. Submission thread
  /// only. Returns the new watermark.
  idx advance_retired();

  void worker_loop(int worker_id);
  /// Pool-worker entry point: run up to kServiceRounds batches of ready
  /// tasks as pool worker `worker_id`. Returns whether at least one task
  /// ran. Bounded so a worker revisits the pool between slices (control
  /// hooks, fairness across attached graphs).
  bool pool_service(int worker_id);
  /// Any task staged/ready right now? (Takes the queue locks; used by the
  /// pool's pre-park scan, so it participates in the same
  /// mutex-bracketed handshake as dispatch_ready's wake check.)
  bool has_ready_work();
  /// Block until every submitted task completed (the wait() core, minus
  /// the error rethrow — the detach path must drain unconditionally).
  void drain_all();
  void run_task(TaskId id, int worker_id, bool inline_mode = false);
  /// Hand `ready` (which just hit unresolved == 0) to the scheduler and
  /// issue at most one (relay) wake. `worker_hint < 0` means "called from
  /// the submission thread": the tasks are staged in the inbox so the
  /// submitter never contends on the worker-side queue locks.
  void dispatch_ready(const TaskId* ready, int n, int worker_hint);
  /// Issue a single relay wake to a sleeping worker if none is in flight.
  /// `caller` is the worker issuing the wake, or -1 for the submitter
  /// (counter attribution only).
  void maybe_wake_sleeper(int caller);
  /// Refill `batch` for `worker_id` (LIFO own deque — adopting the staged
  /// inbox when the deque is empty — then FIFO steal), taking up to half
  /// the source deque (max kMaxBatch) under one lock. Consume
  /// front-to-back. `*backlog` is set when the source still holds work
  /// (relay-wake signal). Returns false if everything was empty.
  bool try_fill_stealing(int worker_id, std::vector<TaskId>& batch,
                         std::vector<TaskId>& scratch, bool* backlog);
  /// Same, for CentralPriority: splice the inbox into the heap, then pop a
  /// batch in strict priority order.
  bool try_fill_central(int worker_id, std::vector<TaskId>& batch,
                        std::vector<TaskId>& scratch, bool* backlog);
  /// O(1) inbox drain: swap its contents into `scratch` (a worker-owned
  /// buffer that recycles its capacity), so inbox_mu_ is never held for a
  /// bulk copy and the submission thread cannot block behind a splice.
  void drain_inbox(std::vector<TaskId>& scratch);

  /// Workers pop ready tasks in batches to amortize queue locks. Half-take
  /// (stealing) and queue/threads scaling (central) keep batches at 1 when
  /// queues are short, so steal balance and strict priority order degrade
  /// only in the overhead-bound regime where the queue is deep anyway.
  static constexpr std::size_t kMaxBatch = 16;
  /// Batches a pool worker runs per service slice before rotating back
  /// through the pool (control-hook latency / multi-graph fairness bound).
  static constexpr int kServiceRounds = 8;

  Config config_;
  WorkerPool* pool_ = nullptr;  ///< non-null = attached mode
  int exec_width_ = 1;          ///< worker slots (see execution_width())
  /// Pool workers currently inside pool_service (incremented under the
  /// pool's registry lock, so detach's unregister-then-drain is race-free).
  std::atomic<int> pool_active_{0};
  std::mutex detach_mu_;
  std::condition_variable detach_cv_;
  TaskStore store_;
  /// Tasks submitted / completed. Monotonic; submitted_ is written (plain
  /// release stores) by the submission thread only. wait() blocks until
  /// they agree (Dekker pair with done_waiting_).
  std::atomic<idx> submitted_{0};
  std::atomic<idx> completed_{0};
  std::atomic<bool> shutdown_{false};
  /// Set by the first task error when Config::abort_on_error: remaining
  /// bodies are skipped (they still resolve successors and complete).
  std::atomic<bool> abort_{false};
  /// Resolved fault hook: Config::fault, else the env-armed global.
  FaultInjector* fault_ = nullptr;

  // --- Submission-side staging, shared by both policies. The submitter
  // appends ready task ids here under a lock nobody holds for long; worker
  // refills splice it in bulk into the policy's own structures.
  std::mutex inbox_mu_;
  std::vector<TaskId> inbox_;

  // --- Policy::CentralPriority state, touched by workers only. Priority
  // buckets instead of one heap: DAG priorities cluster into a few bands
  // (the look-ahead scheme produces O(n_panels) distinct values live at
  // once), so push/pop are O(1) ring operations plus a lookup in a map
  // whose hot node stays cached — a 100k-deep heap pays an O(log n)
  // cache-missing sift per pop instead. Pop order: highest priority bucket
  // first, FIFO (submission order) within a bucket.
  std::mutex central_mu_;
  std::map<int, std::deque<TaskId>, std::greater<int>>
      ready_;                  ///< guarded by central_mu_
  std::size_t ready_count_ = 0;  ///< total tasks across buckets, ditto

  // --- Policy::WorkStealing state (one small lock per deque).
  std::vector<std::unique_ptr<WorkerDeque>> local_ready_;

  // --- Per-worker counter slots (see Counters) + the submitter's wakeups.
  std::unique_ptr<Counters[]> counters_;
  std::atomic<std::int64_t> submit_wakeups_{0};

  // --- Sleep/wake handshake, shared by both policies.
  std::mutex idle_mu_;             ///< serializes the sleep/wake handshake
  std::condition_variable idle_cv_;
  std::atomic<int> sleepers_{0};   ///< workers inside the idle_mu_ section
  int idle_wakes_ = 0;             ///< in-flight notifies, guarded by idle_mu_

  // --- Completion signalling for wait().
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<bool> done_waiting_{false};  ///< wait() is blocked (Dekker pair
                                           ///< with unfinished_)

  /// Dependency edges; only recorded when Config::record_trace is set (the
  /// exporters that consume them all run with tracing on, and an untraced
  /// windowed run must not accumulate O(total tasks) edge memory).
  std::vector<Edge> edges_;  ///< submission thread only; read after wait()

  // --- Windowed-submission state (null / empty unless track_iterations).
  std::unique_ptr<IterTrack> iter_;
  std::function<void(idx)> retire_hook_;  ///< submission thread only
  int last_iteration_seen_ = -1;          ///< nondecreasing-tag check
  /// Trace records and the first task error copied out of recycled slabs
  /// (submission thread; records only when record_trace).
  std::vector<TaskRecord> harvested_trace_;
  std::exception_ptr harvested_error_;

  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace camult::rt
