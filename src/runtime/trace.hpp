// trace.hpp — execution-trace analysis and rendering.
//
// Reproduces the paper's Figures 1-4 artifacts: DOT dumps of the task DAG,
// per-core Gantt charts of an execution (ASCII and CSV), and idle-time
// statistics that quantify the "panel factorization creates idle time"
// effect.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "runtime/task.hpp"
#include "runtime/task_graph.hpp"

namespace camult::rt {

struct TraceStats {
  std::int64_t makespan_ns = 0;           ///< last end - first start
  std::int64_t busy_ns = 0;               ///< sum of task durations
  int num_workers = 0;
  double idle_fraction = 0.0;             ///< 1 - busy/(makespan*workers)
  std::map<TaskKind, std::int64_t> busy_by_kind_ns;
  /// Scheduler counters for the run that produced the trace (empty when the
  /// trace came from a file or a simulation rather than a live TaskGraph).
  SchedulerStats sched;
};

/// Aggregate statistics over an executed (or simulated) trace.
TraceStats compute_stats(const std::vector<TaskRecord>& records,
                         int num_workers);

/// Same, additionally folding in the scheduler counters snapshot from the
/// TaskGraph that executed the trace (TaskGraph::stats()).
TraceStats compute_stats(const std::vector<TaskRecord>& records,
                         int num_workers, SchedulerStats sched);

/// Quote a CSV field per RFC 4180: fields containing a comma, quote, CR or
/// LF are wrapped in double quotes with embedded quotes doubled; anything
/// else passes through unchanged.
std::string csv_escape(const std::string& field);

/// Escape a string for use inside a double-quoted GraphViz DOT label
/// (backslash, double quote, and newlines).
std::string dot_escape(const std::string& label);

/// CSV: id,kind,iteration,worker,start_ns,end_ns,label. Labels are quoted
/// per RFC 4180 when they contain a separator, quote, or newline.
void write_trace_csv(std::ostream& os, const std::vector<TaskRecord>& records);

/// ASCII Gantt chart: one row per worker, `width` character columns spanning
/// the makespan; each cell shows the kind letter of the task occupying that
/// worker at that time ('.' = idle). This is the textual analogue of the
/// paper's Figures 3 and 4.
std::string render_gantt(const std::vector<TaskRecord>& records,
                         int num_workers, int width = 100);

/// GraphViz DOT of the task DAG with nodes labelled by kind/iteration
/// (Figure 1 analogue).
void write_dot(std::ostream& os, const std::vector<TaskRecord>& records,
               const std::vector<TaskGraph::Edge>& edges);

}  // namespace camult::rt
