// tile_lu.hpp — PLASMA-style tiled LU with incremental (pairwise) pivoting,
// the "PLASMA_dgetrf" baseline of the paper's experiments.
//
// Flat incremental scheme: factor the diagonal tile with partial pivoting
// (GETRF), then absorb each tile below it (TSTRF = GEPP of [U; tile]),
// updating trailing tiles as the chain advances (GESSM/SSSSM). Pivoting is
// local to each two-tile stack — less stable than partial pivoting or
// ca-pivoting, but exposes the wide tile DAG.
//
// The factorization is an op-log (not a LAPACK-layout P*A=LU): use
// tile_lu_solve to solve linear systems, which is also how correctness is
// verified.
#pragma once

#include "matrix/permutation.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"
#include "tiled/tile_kernels.hpp"

namespace camult::tiled {

struct TileLuOptions {
  idx b = 100;  ///< tile size
  /// 0 = inline serial (record mode); defaults to rt::default_num_threads.
  int num_threads = rt::default_num_threads();
  bool record_trace = true;
};

struct TileLuStep {
  idx row0 = 0;  ///< diagonal tile top row (== left column)
  idx rk = 0;    ///< diagonal tile rows
  idx jb = 0;    ///< factored columns
  PivotVector leaf_ipiv;            ///< GETRF pivots within the tile
  Matrix leaf_l;                    ///< rk x jb unit-lower L of the tile
  std::vector<idx> chain_row;       ///< top row of each absorbed tile
  std::vector<TstrfFactors> chain;  ///< TSTRF factors, in order
};

struct TileLuResult {
  idx m = 0, n = 0, b = 0;
  idx info = 0;  ///< 0, or 1-based column of the first zero pivot
  std::vector<TileLuStep> steps;
  std::vector<rt::TaskRecord> trace;
  std::vector<rt::TaskGraph::Edge> edges;
  rt::SchedulerStats sched;  ///< scheduler counters (always filled)
};

/// Factor A in place: on exit the upper triangle holds U; the returned
/// op-log holds the L factors and pivots of every step.
TileLuResult tile_lu_factor(MatrixView a, const TileLuOptions& opts = {});

/// Apply the factorization's forward transformations to a block of
/// right-hand sides (rhs has m rows), i.e. rhs := "L^{-1} P" rhs.
void tile_lu_forward(const TileLuResult& f, MatrixView rhs);

/// Solve A x = rhs in place using the op-log and the U stored in
/// a_factored. rhs has m rows (m == n required).
void tile_lu_solve(const TileLuResult& f, ConstMatrixView a_factored,
                   MatrixView rhs);

}  // namespace camult::tiled
