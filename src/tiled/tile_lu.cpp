#include "tiled/tile_lu.hpp"

#include <cassert>
#include <functional>
#include <string>

#include "blas/blas.hpp"
#include "lapack/getrf.hpp"
#include "lapack/laswp.hpp"
#include "runtime/dep_tracker.hpp"

namespace camult::tiled {
namespace {

using rt::AccessMode;
using rt::BlockAccess;
using rt::TaskId;
using rt::TaskKind;

rt::BlockKey tile_key(idx i, idx j) { return rt::block_key(i, j); }
rt::BlockKey leaf_key(idx k) { return (idx{1} << 60) + k; }
rt::BlockKey node_key(idx k, idx i) { return (idx{1} << 61) + k * 65536 + i; }

struct ColSegment {
  idx col0, cols, jblk;
};

std::vector<ColSegment> trailing_segments(idx row0, idx jb, idx b, idx n,
                                          idx kb) {
  std::vector<ColSegment> segments;
  if (row0 + jb < std::min(n, (kb + 1) * b)) {
    segments.push_back(
        {row0 + jb, std::min(n, (kb + 1) * b) - (row0 + jb), kb});
  }
  const idx n_blocks = (n + b - 1) / b;
  for (idx jblk = kb + 1; jblk < n_blocks; ++jblk) {
    segments.push_back({jblk * b, std::min(b, n - jblk * b), jblk});
  }
  return segments;
}

// GESSM: apply the diagonal-tile GETRF to a trailing block of the same tile
// rows: permute, unit-lower solve on the top jb rows, then eliminate the
// tile rows below jb (rk > jb only at ragged edges).
void gessm(const TileLuStep& s, MatrixView c) {
  lapack::laswp(c, 0, s.jb, s.leaf_ipiv);
  blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::NoTrans,
             blas::Diag::Unit, 1.0, s.leaf_l.view().block(0, 0, s.jb, s.jb),
             c.rows_range(0, s.jb));
  if (s.rk > s.jb) {
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0,
               s.leaf_l.view().block(s.jb, 0, s.rk - s.jb, s.jb),
               c.rows_range(0, s.jb), 1.0, c.rows_range(s.jb, s.rk - s.jb));
  }
}

}  // namespace

TileLuResult tile_lu_factor(MatrixView a, const TileLuOptions& opts) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k_total = std::min(m, n);
  const idx b = std::max<idx>(1, std::min(opts.b, k_total));
  const idx n_steps = (k_total + b - 1) / b;
  const idx m_tiles = (m + b - 1) / b;

  TileLuResult result;
  result.m = m;
  result.n = n;
  result.b = b;
  result.steps.resize(static_cast<std::size_t>(n_steps));
  std::vector<idx> infos(static_cast<std::size_t>(n_steps), 0);

  rt::TaskGraph graph({opts.num_threads, opts.record_trace});
  rt::DepTracker tracker;

  TaskId next_id = 0;
  auto add_task = [&](const std::vector<BlockAccess>& acc,
                      rt::TaskOptions topts,
                      std::function<void()> fn) -> TaskId {
    const std::vector<TaskId> deps = tracker.depends(next_id, acc);
    const TaskId id = graph.submit(deps, std::move(topts), std::move(fn));
    assert(id == next_id);
    ++next_id;
    return id;
  };
  // Panel-chain tasks (the critical path) on the top priority band;
  // trailing updates below, ordered by iteration then column.
  auto panel_prio = [](idx k) {
    return 2000000000 - static_cast<int>(k) * 4;
  };
  auto update_prio = [](idx k, idx jblk) {
    return 1000000 - static_cast<int>(k * 1000 + (jblk - k));
  };

  for (idx k = 0; k < n_steps; ++k) {
    const idx row0 = k * b;
    const idx jb = std::min(b, k_total - row0);
    const idx rk = std::min(b, m - row0);
    TileLuStep& S = result.steps[static_cast<std::size_t>(k)];
    S.row0 = row0;
    S.rk = rk;
    S.jb = jb;
    const idx n_below = m_tiles - (k + 1);
    S.chain_row.resize(static_cast<std::size_t>(std::max<idx>(n_below, 0)));
    S.chain.resize(static_cast<std::size_t>(std::max<idx>(n_below, 0)));

    const auto segments = trailing_segments(row0, jb, b, n, k);

    // GETRF: partial-pivoting LU of the diagonal tile.
    {
      std::vector<BlockAccess> acc = {{tile_key(k, k), AccessMode::ReadWrite},
                                      {leaf_key(k), AccessMode::Write}};
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = panel_prio(k);
      topts.label = "getrf";
      TileLuStep* Sp = &S;
      idx* info_slot = &infos[static_cast<std::size_t>(k)];
      MatrixView tile = a.block(row0, row0, rk, jb);
      add_task(acc, std::move(topts), [Sp, tile, info_slot]() {
        const idx info = lapack::rgetf2(tile, Sp->leaf_ipiv);
        if (info != 0) *info_slot = info;
        Sp->leaf_l = Matrix::zeros(Sp->rk, Sp->jb);
        for (idx j = 0; j < Sp->jb; ++j) {
          Sp->leaf_l(j, j) = 1.0;
          for (idx i = j + 1; i < Sp->rk; ++i) Sp->leaf_l(i, j) = tile(i, j);
        }
      });
    }

    // GESSM per trailing segment.
    for (const ColSegment& seg : segments) {
      std::vector<BlockAccess> acc = {
          {leaf_key(k), AccessMode::Read},
          {tile_key(k, seg.jblk), AccessMode::ReadWrite}};
      rt::TaskOptions topts;
      topts.kind = TaskKind::UFactor;
      topts.iteration = static_cast<int>(k);
      topts.priority = update_prio(k, seg.jblk);
      topts.label = "gessm j" + std::to_string(seg.jblk);
      TileLuStep* Sp = &S;
      MatrixView c = a.block(row0, seg.col0, rk, seg.cols);
      add_task(acc, std::move(topts), [Sp, c]() { gessm(*Sp, c); });
    }

    // TSTRF chain + SSSSM updates.
    for (idx ti = k + 1; ti < m_tiles; ++ti) {
      const idx ri = std::min(b, m - ti * b);
      const idx slot = ti - (k + 1);
      S.chain_row[static_cast<std::size_t>(slot)] = ti * b;
      {
        std::vector<BlockAccess> acc = {
            {tile_key(k, k), AccessMode::ReadWrite},
            {tile_key(ti, k), AccessMode::ReadWrite},
            {node_key(k, ti), AccessMode::Write}};
        rt::TaskOptions topts;
        topts.kind = TaskKind::Panel;
        topts.iteration = static_cast<int>(k);
        topts.priority = panel_prio(k);
        topts.label = "tstrf i" + std::to_string(ti);
        TileLuStep* Sp = &S;
        idx* info_slot = &infos[static_cast<std::size_t>(k)];
        MatrixView u_tile = a.block(row0, row0, jb, jb);
        MatrixView full = a.block(ti * b, row0, ri, jb);
        add_task(acc, std::move(topts), [Sp, u_tile, full, slot, info_slot]() {
          Sp->chain[static_cast<std::size_t>(slot)] = tstrf(u_tile, full);
          const idx info = Sp->chain[static_cast<std::size_t>(slot)].info;
          if (info != 0 && *info_slot == 0) *info_slot = info;
        });
      }
      for (const ColSegment& seg : segments) {
        std::vector<BlockAccess> acc = {
            {node_key(k, ti), AccessMode::Read},
            {tile_key(k, seg.jblk), AccessMode::ReadWrite},
            {tile_key(ti, seg.jblk), AccessMode::ReadWrite}};
        rt::TaskOptions topts;
        topts.kind = TaskKind::Update;
        topts.iteration = static_cast<int>(k);
        topts.priority = update_prio(k, seg.jblk);
        topts.label =
            "ssssm i" + std::to_string(ti) + " j" + std::to_string(seg.jblk);
        TileLuStep* Sp = &S;
        MatrixView c_top = a.block(row0, seg.col0, jb, seg.cols);
        MatrixView c_bot = a.block(ti * b, seg.col0, ri, seg.cols);
        add_task(acc, std::move(topts), [Sp, c_top, c_bot, slot]() {
          ssssm(Sp->chain[static_cast<std::size_t>(slot)], c_top, c_bot);
        });
      }
    }
  }

  graph.wait();
  for (idx k = 0; k < n_steps; ++k) {
    if (infos[static_cast<std::size_t>(k)] != 0) {
      result.info = k * b + infos[static_cast<std::size_t>(k)];
      break;
    }
  }
  if (opts.record_trace) {
    result.trace = graph.trace();
    result.edges = graph.edges();
  }
  result.sched = graph.stats();
  return result;
}

void tile_lu_forward(const TileLuResult& f, MatrixView rhs) {
  assert(rhs.rows() == f.m);
  for (const TileLuStep& S : f.steps) {
    gessm(S, rhs.block(S.row0, 0, S.rk, rhs.cols()));
    for (std::size_t s = 0; s < S.chain.size(); ++s) {
      const idx ri = S.chain[s].l.rows() - S.jb;
      ssssm(S.chain[s], rhs.block(S.row0, 0, S.jb, rhs.cols()),
            rhs.block(S.chain_row[s], 0, ri, rhs.cols()));
    }
  }
}

void tile_lu_solve(const TileLuResult& f, ConstMatrixView a_factored,
                   MatrixView rhs) {
  assert(f.m == f.n);
  tile_lu_forward(f, rhs);
  blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::NoTrans,
             blas::Diag::NonUnit, 1.0, a_factored, rhs);
}

}  // namespace camult::tiled
