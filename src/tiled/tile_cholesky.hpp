// tile_cholesky.hpp — PLASMA-style tiled Cholesky (lower), the third member
// of the tiled one-sided factorization family of Buttari et al. (the
// paper's baseline reference [5]). Included as an extension: it exercises
// the same runtime with the widest, most regular tile DAG
// (POTRF -> TRSM* -> SYRK/GEMM*).
#pragma once

#include "matrix/view.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"

namespace camult::tiled {

struct TileCholeskyOptions {
  idx b = 100;  ///< tile size
  /// 0 = inline serial (record mode); defaults to rt::default_num_threads.
  int num_threads = rt::default_num_threads();
  bool record_trace = true;
};

struct TileCholeskyResult {
  idx n = 0, b = 0;
  idx info = 0;  ///< 0, or 1-based index of the first non-positive pivot
  std::vector<rt::TaskRecord> trace;
  std::vector<rt::TaskGraph::Edge> edges;
  rt::SchedulerStats sched;  ///< scheduler counters (always filled)
};

/// Factor A = L L^T in place (lower triangle). Same numerical contract as
/// lapack::potrf, task-parallel.
TileCholeskyResult tile_cholesky_factor(MatrixView a,
                                        const TileCholeskyOptions& opts = {});

}  // namespace camult::tiled
