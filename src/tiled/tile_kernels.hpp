// tile_kernels.hpp — tile-algorithm kernels (PLASMA-style baselines).
//
// These implement the Buttari/Langou/Kurzak/Dongarra tiled one-sided
// factorizations the paper compares against as "PLASMA":
//  * QR:  GEQRT (tile QR), TSQRT (QR of [R; tile]), and their updates.
//  * LU:  GETRF (tile LU with partial pivoting inside the tile), TSTRF
//         (LU of [U; tile] — pairwise/incremental pivoting), and updates.
//
// Stacked factors are stored in per-step buffers (not back into the tiles),
// which keeps the tiles' own reflector/multiplier storage intact and makes
// the op-log replayable for solves and Q applications.
#pragma once

#include <vector>

#include "blas/pack.hpp"
#include "blas/types.hpp"
#include "lapack/geqrf.hpp"
#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"

namespace camult::tiled {

/// --- QR kernels -------------------------------------------------------

/// Factors of a TSQRT step: QR of the 2b x b stack [R_top (triangle);
/// full tile].
///
/// The factor step also packs the reflectors' gemm operands once (vpack /
/// l2pack below): a tile-algorithm step is applied across an entire
/// trailing tile row, and at replay time again per solve column, so the
/// packing cost amortizes over every later tsmqr/ssssm on these factors.
struct TsqrtFactors {
  Matrix vt;  ///< factored stack: new R on top, V tails below
  Matrix t;   ///< b x b T factor
  lapack::LarfbPackedV vpack;  ///< packed V2 of vt, shared by all tsmqr
};

/// QR-factor [upper triangle of r_tile stacked on full_tile]; writes the new
/// R into r_tile's upper triangle. Both tiles are b x b views.
TsqrtFactors tsqrt(MatrixView r_tile, ConstMatrixView full_tile);

/// Apply the TSQRT reflectors (Q^T for Trans) to the stacked pair
/// [c_top; c_bot] in place.
void tsmqr(blas::Trans trans, const TsqrtFactors& f, MatrixView c_top,
           MatrixView c_bot);

/// --- LU kernels -------------------------------------------------------

/// Factors of a TSTRF step: GEPP of the stack [U_top (triangle); full tile].
struct TstrfFactors {
  Matrix l;          ///< 2b x b unit-lower-trapezoidal L of the stack
  PivotVector ipiv;  ///< swap sequence over the 2b stacked rows
  idx info = 0;
  blas::PackedPanel l2pack;  ///< packed bottom block of l, shared by ssssm
};

/// LU-factor [upper triangle of u_tile stacked on full_tile] with partial
/// pivoting; writes the new U into u_tile's upper triangle and the tile's
/// block of L into full_tile (for inspection; the authoritative L lives in
/// the returned factors).
TstrfFactors tstrf(MatrixView u_tile, MatrixView full_tile);

/// Apply a TSTRF step to the stacked right-hand pair [c_top; c_bot]:
/// permute, solve against L_top, update the bottom.
void ssssm(const TstrfFactors& f, MatrixView c_top, MatrixView c_bot);

}  // namespace camult::tiled
