#include "tiled/tile_kernels.hpp"

#include <cassert>

#include "blas/blas.hpp"
#include "lapack/geqrf.hpp"
#include "lapack/getrf.hpp"
#include "lapack/laswp.hpp"

namespace camult::tiled {

TsqrtFactors tsqrt(MatrixView r_tile, ConstMatrixView full_tile) {
  const idx cb = r_tile.rows();   // triangle size
  const idx rb = full_tile.rows();
  assert(r_tile.cols() == cb);
  assert(full_tile.cols() == cb);

  TsqrtFactors f;
  f.vt = Matrix::zeros(cb + rb, cb);
  for (idx j = 0; j < cb; ++j) {
    for (idx i = 0; i <= j; ++i) f.vt(i, j) = r_tile(i, j);
    for (idx i = 0; i < rb; ++i) f.vt(cb + i, j) = full_tile(i, j);
  }
  f.t = Matrix::zeros(cb, cb);
  std::vector<double> tau;
  lapack::geqr3(f.vt.view(), tau, f.t.view());
  for (idx j = 0; j < cb; ++j) {
    for (idx i = 0; i <= j; ++i) r_tile(i, j) = f.vt(i, j);
  }
  f.vpack = lapack::larfb_pack_v(f.vt.view());
  return f;
}

void tsmqr(blas::Trans trans, const TsqrtFactors& f, MatrixView c_top,
           MatrixView c_bot) {
  const idx cb = f.t.rows();
  const idx rb = f.vt.rows() - cb;
  assert(c_top.rows() == cb && c_bot.rows() == rb);
  assert(c_top.cols() == c_bot.cols());
  Matrix stacked(cb + rb, c_top.cols());
  copy_into(c_top, stacked.view().rows_range(0, cb));
  copy_into(c_bot, stacked.view().rows_range(cb, rb));
  lapack::larfb_left(trans, f.vt.view(), f.t.view(), f.vpack,
                     stacked.view());
  copy_into(stacked.view().rows_range(0, cb), c_top);
  copy_into(stacked.view().rows_range(cb, rb), c_bot);
}

TstrfFactors tstrf(MatrixView u_tile, MatrixView full_tile) {
  const idx cb = u_tile.rows();
  const idx rb = full_tile.rows();
  assert(u_tile.cols() == cb);
  assert(full_tile.cols() == cb);

  Matrix stack = Matrix::zeros(cb + rb, cb);
  for (idx j = 0; j < cb; ++j) {
    for (idx i = 0; i <= j; ++i) stack(i, j) = u_tile(i, j);
    for (idx i = 0; i < rb; ++i) stack(cb + i, j) = full_tile(i, j);
  }
  TstrfFactors f;
  f.info = lapack::rgetf2(stack.view(), f.ipiv);

  // New U back into the triangle; L kept in the factors (unit diagonal
  // explicit) and the tile's slice mirrored into the full tile for
  // inspection.
  f.l = Matrix::zeros(cb + rb, cb);
  for (idx j = 0; j < cb; ++j) {
    for (idx i = 0; i <= j; ++i) u_tile(i, j) = stack(i, j);
    for (idx i = j + 1; i < cb + rb; ++i) f.l(i, j) = stack(i, j);
    f.l(j, j) = 1.0;
  }
  for (idx j = 0; j < cb; ++j) {
    for (idx i = 0; i < rb; ++i) full_tile(i, j) = f.l(cb + i, j);
  }
  f.l2pack = blas::pack_a(f.l.view().block(cb, 0, rb, cb),
                          blas::Trans::NoTrans);
  return f;
}

void ssssm(const TstrfFactors& f, MatrixView c_top, MatrixView c_bot) {
  const idx cb = static_cast<idx>(f.ipiv.size());
  const idx rb = f.l.rows() - cb;
  assert(c_top.rows() == cb && c_bot.rows() == rb);
  assert(c_top.cols() == c_bot.cols());
  const idx w = c_top.cols();

  Matrix stacked(cb + rb, w);
  copy_into(c_top, stacked.view().rows_range(0, cb));
  copy_into(c_bot, stacked.view().rows_range(cb, rb));
  lapack::laswp(stacked.view(), 0, cb, f.ipiv);
  blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::NoTrans,
             blas::Diag::Unit, 1.0, f.l.view().block(0, 0, cb, cb),
             stacked.view().rows_range(0, cb));
  blas::gemm_packed(-1.0, f.l2pack, blas::Trans::NoTrans,
                    stacked.view().rows_range(0, cb), 1.0,
                    stacked.view().rows_range(cb, rb));
  copy_into(stacked.view().rows_range(0, cb), c_top);
  copy_into(stacked.view().rows_range(cb, rb), c_bot);
}

}  // namespace camult::tiled
