// tile_qr.hpp — PLASMA-style tiled QR (Buttari et al.), the "PLASMA_dgeqrf"
// baseline of the paper's experiments.
//
// Flat incremental scheme: factor the diagonal tile (GEQRT), then absorb
// each tile below it one at a time (TSQRT), updating the trailing tiles as
// the chain advances (UNMQR/TSMQR). The panel chain is sequential but the
// per-tile updates pipeline across columns — the defining DAG shape that
// lets tiled algorithms win on matrices with many columns and lose badly on
// very tall-skinny ones.
#pragma once

#include "core/tsqr.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"
#include "tiled/tile_kernels.hpp"

namespace camult::tiled {

struct TileQrOptions {
  idx b = 100;  ///< tile size
  /// 0 = inline serial (record mode); defaults to rt::default_num_threads.
  int num_threads = rt::default_num_threads();
  bool record_trace = true;
};

/// One panel step of the factorization op-log.
struct TileQrStep {
  idx row0 = 0;  ///< diagonal tile top row (== left column)
  idx rk = 0;    ///< diagonal tile rows
  idx jb = 0;    ///< factored columns
  core::TsqrLeaf leaf;              ///< GEQRT factors (V in the tile)
  std::vector<idx> chain_row;      ///< top row of each absorbed tile
  std::vector<TsqrtFactors> chain;  ///< TSQRT factors, in order
};

struct TileQrResult {
  idx m = 0, n = 0, b = 0;
  std::vector<TileQrStep> steps;
  std::vector<rt::TaskRecord> trace;
  std::vector<rt::TaskGraph::Edge> edges;
  rt::SchedulerStats sched;  ///< scheduler counters (always filled)
};

/// Factor A = Q R in place (R in the upper triangle; V tails in tiles and
/// in the returned op-log).
TileQrResult tile_qr_factor(MatrixView a, const TileQrOptions& opts = {});

/// C := Q C or Q^T C; C has m rows.
void tile_qr_apply_q(blas::Trans trans, ConstMatrixView a,
                     const TileQrResult& f, MatrixView c);

/// Scaled residual ||A_orig - Q R|| (same normalization as caqr_residual).
double tile_qr_residual(ConstMatrixView a_orig, ConstMatrixView a_factored,
                        const TileQrResult& f);

}  // namespace camult::tiled
