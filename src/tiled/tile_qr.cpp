#include "tiled/tile_qr.hpp"

#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <string>

#include "matrix/norms.hpp"
#include "runtime/dep_tracker.hpp"

namespace camult::tiled {
namespace {

using rt::AccessMode;
using rt::BlockAccess;
using rt::TaskId;
using rt::TaskKind;

rt::BlockKey tile_key(idx i, idx j) { return rt::block_key(i, j); }
rt::BlockKey leaf_key(idx k) { return (idx{1} << 60) + k; }
rt::BlockKey node_key(idx k, idx i) { return (idx{1} << 61) + k * 65536 + i; }

struct ColSegment {
  idx col0, cols, jblk;
};

std::vector<ColSegment> trailing_segments(idx row0, idx jb, idx b, idx n,
                                          idx kb) {
  std::vector<ColSegment> segments;
  if (row0 + jb < std::min(n, (kb + 1) * b)) {
    segments.push_back(
        {row0 + jb, std::min(n, (kb + 1) * b) - (row0 + jb), kb});
  }
  const idx n_blocks = (n + b - 1) / b;
  for (idx jblk = kb + 1; jblk < n_blocks; ++jblk) {
    segments.push_back({jblk * b, std::min(b, n - jblk * b), jblk});
  }
  return segments;
}

}  // namespace

TileQrResult tile_qr_factor(MatrixView a, const TileQrOptions& opts) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k_total = std::min(m, n);
  const idx b = std::max<idx>(1, std::min(opts.b, k_total));
  const idx n_steps = (k_total + b - 1) / b;
  const idx m_tiles = (m + b - 1) / b;

  TileQrResult result;
  result.m = m;
  result.n = n;
  result.b = b;
  result.steps.resize(static_cast<std::size_t>(n_steps));

  rt::TaskGraph graph({opts.num_threads, opts.record_trace});
  rt::DepTracker tracker;

  TaskId next_id = 0;
  auto add_task = [&](const std::vector<BlockAccess>& acc,
                      rt::TaskOptions topts,
                      std::function<void()> fn) -> TaskId {
    const std::vector<TaskId> deps = tracker.depends(next_id, acc);
    const TaskId id = graph.submit(deps, std::move(topts), std::move(fn));
    assert(id == next_id);
    ++next_id;
    return id;
  };
  // Panel-chain tasks (the critical path) on the top priority band;
  // trailing updates below, ordered by iteration then column.
  auto panel_prio = [](idx k) {
    return 2000000000 - static_cast<int>(k) * 4;
  };
  auto update_prio = [](idx k, idx jblk) {
    return 1000000 - static_cast<int>(k * 1000 + (jblk - k));
  };

  for (idx k = 0; k < n_steps; ++k) {
    const idx row0 = k * b;
    const idx jb = std::min(b, k_total - row0);
    const idx rk = std::min(b, m - row0);
    TileQrStep& S = result.steps[static_cast<std::size_t>(k)];
    S.row0 = row0;
    S.rk = rk;
    S.jb = jb;
    const idx n_below = m_tiles - (k + 1);
    S.chain_row.resize(static_cast<std::size_t>(std::max<idx>(n_below, 0)));
    S.chain.resize(static_cast<std::size_t>(std::max<idx>(n_below, 0)));

    const auto segments = trailing_segments(row0, jb, b, n, k);

    // GEQRT: QR of the diagonal tile.
    {
      std::vector<BlockAccess> acc = {{tile_key(k, k), AccessMode::ReadWrite},
                                      {leaf_key(k), AccessMode::Write}};
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = panel_prio(k);
      topts.label = "geqrt";
      TileQrStep* Sp = &S;
      MatrixView tile = a.block(row0, row0, rk, jb);
      add_task(acc, std::move(topts), [Sp, tile]() {
        Sp->leaf = core::tsqr_leaf_kernel(tile, 0);
      });
    }

    // UNMQR: apply the diagonal tile's reflectors to the trailing segments.
    for (const ColSegment& seg : segments) {
      std::vector<BlockAccess> acc = {{leaf_key(k), AccessMode::Read},
                                      {tile_key(k, k), AccessMode::Read},
                                      {tile_key(k, seg.jblk),
                                       AccessMode::ReadWrite}};
      rt::TaskOptions topts;
      topts.kind = TaskKind::Update;
      topts.iteration = static_cast<int>(k);
      topts.priority = update_prio(k, seg.jblk);
      topts.label = "unmqr j" + std::to_string(seg.jblk);
      TileQrStep* Sp = &S;
      ConstMatrixView tile = a.block(row0, row0, rk, jb);
      MatrixView c = a.block(row0, seg.col0, rk, seg.cols);
      add_task(acc, std::move(topts), [Sp, tile, c]() {
        core::tsqr_leaf_apply(blas::Trans::Trans, tile, Sp->leaf, c);
      });
    }

    // TSQRT chain + TSMQR updates.
    for (idx ti = k + 1; ti < m_tiles; ++ti) {
      const idx ri = std::min(b, m - ti * b);
      const idx slot = ti - (k + 1);
      S.chain_row[static_cast<std::size_t>(slot)] = ti * b;
      {
        std::vector<BlockAccess> acc = {
            {tile_key(k, k), AccessMode::ReadWrite},
            {tile_key(ti, k), AccessMode::ReadWrite},
            {node_key(k, ti), AccessMode::Write}};
        rt::TaskOptions topts;
        topts.kind = TaskKind::Panel;
        topts.iteration = static_cast<int>(k);
        topts.priority = panel_prio(k);
        topts.label = "tsqrt i" + std::to_string(ti);
        TileQrStep* Sp = &S;
        MatrixView r_tile = a.block(row0, row0, jb, jb);
        MatrixView full = a.block(ti * b, row0, ri, jb);
        add_task(acc, std::move(topts), [Sp, r_tile, full, slot]() {
          Sp->chain[static_cast<std::size_t>(slot)] = tsqrt(r_tile, full);
        });
      }
      for (const ColSegment& seg : segments) {
        std::vector<BlockAccess> acc = {
            {node_key(k, ti), AccessMode::Read},
            {tile_key(k, seg.jblk), AccessMode::ReadWrite},
            {tile_key(ti, seg.jblk), AccessMode::ReadWrite}};
        rt::TaskOptions topts;
        topts.kind = TaskKind::Update;
        topts.iteration = static_cast<int>(k);
        topts.priority = update_prio(k, seg.jblk);
        topts.label =
            "tsmqr i" + std::to_string(ti) + " j" + std::to_string(seg.jblk);
        TileQrStep* Sp = &S;
        MatrixView c_top = a.block(row0, seg.col0, jb, seg.cols);
        MatrixView c_bot = a.block(ti * b, seg.col0, ri, seg.cols);
        add_task(acc, std::move(topts), [Sp, c_top, c_bot, slot]() {
          tsmqr(blas::Trans::Trans, Sp->chain[static_cast<std::size_t>(slot)],
                c_top, c_bot);
        });
      }
    }
  }

  graph.wait();
  if (opts.record_trace) {
    result.trace = graph.trace();
    result.edges = graph.edges();
  }
  result.sched = graph.stats();
  return result;
}

void tile_qr_apply_q(blas::Trans trans, ConstMatrixView a,
                     const TileQrResult& f, MatrixView c) {
  assert(c.rows() == f.m);
  auto apply_step = [&](const TileQrStep& S, blas::Trans dir) {
    ConstMatrixView tile = a.block(S.row0, S.row0, S.rk, S.jb);
    if (dir == blas::Trans::Trans) {
      core::tsqr_leaf_apply(blas::Trans::Trans, tile, S.leaf,
                            c.rows_range(S.row0, S.rk));
      for (std::size_t s = 0; s < S.chain.size(); ++s) {
        tsmqr(blas::Trans::Trans, S.chain[s],
              c.block(S.row0, 0, S.jb, c.cols()),
              c.block(S.chain_row[s], 0,
                      S.chain[s].vt.rows() - S.jb, c.cols()));
      }
    } else {
      for (std::size_t s = S.chain.size(); s-- > 0;) {
        tsmqr(blas::Trans::NoTrans, S.chain[s],
              c.block(S.row0, 0, S.jb, c.cols()),
              c.block(S.chain_row[s], 0,
                      S.chain[s].vt.rows() - S.jb, c.cols()));
      }
      core::tsqr_leaf_apply(blas::Trans::NoTrans, tile, S.leaf,
                            c.rows_range(S.row0, S.rk));
    }
  };
  if (trans == blas::Trans::Trans) {
    for (const TileQrStep& S : f.steps) apply_step(S, blas::Trans::Trans);
  } else {
    for (auto it = f.steps.rbegin(); it != f.steps.rend(); ++it) {
      apply_step(*it, blas::Trans::NoTrans);
    }
  }
}

double tile_qr_residual(ConstMatrixView a_orig, ConstMatrixView a_factored,
                        const TileQrResult& f) {
  const idx m = f.m;
  const idx n = f.n;
  const idx k = std::min(m, n);
  Matrix qr = Matrix::zeros(m, n);
  for (idx j = 0; j < n; ++j) {
    const idx top = std::min(j + 1, k);
    for (idx i = 0; i < top; ++i) qr(i, j) = a_factored(i, j);
  }
  tile_qr_apply_q(blas::Trans::NoTrans, a_factored, f, qr.view());
  double diff2 = 0.0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      const double d = qr(i, j) - a_orig(i, j);
      diff2 += d * d;
    }
  }
  const double na = norm_fro(a_orig);
  if (na == 0.0) return std::sqrt(diff2);
  return std::sqrt(diff2) /
         (na * static_cast<double>(std::max(m, n)) *
          std::numeric_limits<double>::epsilon());
}

}  // namespace camult::tiled
