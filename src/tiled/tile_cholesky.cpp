#include "tiled/tile_cholesky.hpp"

#include <cassert>
#include <functional>
#include <string>

#include "blas/blas.hpp"
#include "lapack/potrf.hpp"
#include "runtime/dep_tracker.hpp"

namespace camult::tiled {
namespace {

using rt::AccessMode;
using rt::BlockAccess;
using rt::TaskId;
using rt::TaskKind;

rt::BlockKey tile_key(idx i, idx j) { return rt::block_key(i, j); }

}  // namespace

TileCholeskyResult tile_cholesky_factor(MatrixView a,
                                        const TileCholeskyOptions& opts) {
  assert(a.rows() == a.cols());
  const idx n = a.rows();
  const idx b = std::max<idx>(1, std::min(opts.b, n));
  const idx nt = (n + b - 1) / b;

  TileCholeskyResult result;
  result.n = n;
  result.b = b;
  std::vector<idx> infos(static_cast<std::size_t>(nt), 0);

  rt::TaskGraph graph({opts.num_threads, opts.record_trace});
  rt::DepTracker tracker;
  TaskId next_id = 0;
  auto add_task = [&](const std::vector<BlockAccess>& acc,
                      rt::TaskOptions topts,
                      std::function<void()> fn) -> TaskId {
    const std::vector<TaskId> deps = tracker.depends(next_id, acc);
    const TaskId id = graph.submit(deps, std::move(topts), std::move(fn));
    assert(id == next_id);
    ++next_id;
    return id;
  };
  auto panel_prio = [](idx k) {
    return 2000000000 - static_cast<int>(k) * 4;
  };
  auto update_prio = [](idx k, idx j) {
    return 1000000 - static_cast<int>(k * 1000 + (j - k));
  };
  auto tile_at = [&](idx ti, idx tj) {
    const idx rows = std::min(b, n - ti * b);
    const idx cols = std::min(b, n - tj * b);
    return a.block(ti * b, tj * b, rows, cols);
  };

  for (idx k = 0; k < nt; ++k) {
    {  // POTRF(k)
      std::vector<BlockAccess> acc = {{tile_key(k, k), AccessMode::ReadWrite}};
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = panel_prio(k);
      topts.label = "potrf";
      MatrixView akk = tile_at(k, k);
      idx* info_slot = &infos[static_cast<std::size_t>(k)];
      add_task(acc, std::move(topts), [akk, info_slot]() {
        const idx info = lapack::potf2(akk);
        if (info != 0) *info_slot = info;
      });
    }
    for (idx i = k + 1; i < nt; ++i) {  // TRSM(i, k)
      std::vector<BlockAccess> acc = {{tile_key(k, k), AccessMode::Read},
                                      {tile_key(i, k), AccessMode::ReadWrite}};
      rt::TaskOptions topts;
      topts.kind = TaskKind::LFactor;
      topts.iteration = static_cast<int>(k);
      topts.priority = panel_prio(k) - 2;
      topts.label = "trsm i" + std::to_string(i);
      MatrixView akk = tile_at(k, k);
      MatrixView aik = tile_at(i, k);
      add_task(acc, std::move(topts), [akk, aik]() {
        blas::trsm(blas::Side::Right, blas::Uplo::Lower, blas::Trans::Trans,
                   blas::Diag::NonUnit, 1.0,
                   ConstMatrixView(akk), aik);
      });
    }
    for (idx j = k + 1; j < nt; ++j) {
      {  // SYRK(j, k): diagonal tile update
        std::vector<BlockAccess> acc = {{tile_key(j, k), AccessMode::Read},
                                        {tile_key(j, j),
                                         AccessMode::ReadWrite}};
        rt::TaskOptions topts;
        topts.kind = TaskKind::Update;
        topts.iteration = static_cast<int>(k);
        topts.priority = update_prio(k, j);
        topts.label = "syrk j" + std::to_string(j);
        MatrixView ajk = tile_at(j, k);
        MatrixView ajj = tile_at(j, j);
        add_task(acc, std::move(topts), [ajk, ajj]() {
          blas::syrk(blas::Uplo::Lower, blas::Trans::NoTrans, -1.0,
                     ConstMatrixView(ajk), 1.0, ajj);
        });
      }
      for (idx i = j + 1; i < nt; ++i) {  // GEMM(i, j, k)
        std::vector<BlockAccess> acc = {{tile_key(i, k), AccessMode::Read},
                                        {tile_key(j, k), AccessMode::Read},
                                        {tile_key(i, j),
                                         AccessMode::ReadWrite}};
        rt::TaskOptions topts;
        topts.kind = TaskKind::Update;
        topts.iteration = static_cast<int>(k);
        topts.priority = update_prio(k, j);
        topts.label =
            "gemm i" + std::to_string(i) + " j" + std::to_string(j);
        MatrixView aik = tile_at(i, k);
        MatrixView ajk = tile_at(j, k);
        MatrixView aij = tile_at(i, j);
        add_task(acc, std::move(topts), [aik, ajk, aij]() {
          blas::gemm(blas::Trans::NoTrans, blas::Trans::Trans, -1.0, aik, ajk,
                     1.0, aij);
        });
      }
    }
  }

  graph.wait();
  for (idx k = 0; k < nt; ++k) {
    if (infos[static_cast<std::size_t>(k)] != 0) {
      result.info = k * b + infos[static_cast<std::size_t>(k)];
      break;
    }
  }
  if (opts.record_trace) {
    result.trace = graph.trace();
    result.edges = graph.edges();
  }
  result.sched = graph.stats();
  return result;
}

}  // namespace camult::tiled
