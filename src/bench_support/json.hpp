// json.hpp — minimal JSON value, writer, and parser for the bench-report
// pipeline (no third-party dependency). Shared by the JsonReport emitter,
// the schema checker in tools/, and the tests that validate emitted output
// (including the runtime's Chrome trace arrays).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace camult::bench {

/// A JSON document node. Object member order is preserved (vector of pairs,
/// not a map) so emitted reports are stable and diffable.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  JsonValue() = default;
  static JsonValue make_null() { return {}; }
  static JsonValue make_bool(bool b);
  /// Non-finite doubles become null (JSON has no NaN/Inf).
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array() { JsonValue v; v.type = Type::Array; return v; }
  static JsonValue make_object() { JsonValue v; v.type = Type::Object; return v; }

  bool is_null() const { return type == Type::Null; }
  bool is_bool() const { return type == Type::Bool; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool is_array() const { return type == Type::Array; }
  bool is_object() const { return type == Type::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  JsonValue* find(const std::string& key);
  /// Set (or overwrite) an object member; asserts this is an object.
  JsonValue& set(const std::string& key, JsonValue v);

  /// Serialize. indent < 0: compact single line; otherwise pretty-print
  /// with that many spaces per level.
  void write(std::ostream& os, int indent = -1) const;
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (trailing non-whitespace is an error).
  /// Throws std::runtime_error with an offset-annotated message.
  static JsonValue parse(const std::string& text);
};

}  // namespace camult::bench
