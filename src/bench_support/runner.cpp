#include "bench_support/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "bench_support/flops.hpp"
#include "runtime/trace.hpp"

namespace camult::bench {

bool real_mode() {
  const char* v = std::getenv("CAMULT_BENCH_REAL");
  return v != nullptr && v[0] == '1';
}

Measurement measure(const std::function<RunArtifacts(int)>& run, double flops,
                    int cores) {
  Measurement m;
  if (real_mode()) {
    const auto t0 = std::chrono::steady_clock::now();
    RunArtifacts art = run(cores);
    const auto t1 = std::chrono::steady_clock::now();
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    m.gflops = gflops(flops, m.seconds);
    m.sched = std::move(art.sched);
    if (!art.trace.empty()) {
      m.idle_fraction =
          rt::compute_stats(art.trace, cores).idle_fraction;
    }
    return m;
  }
  RunArtifacts art = run(0);  // serial record mode
  sim::SimResult sr = sim::simulate(art.trace, art.edges, cores);
  m.seconds = static_cast<double>(sr.makespan_ns) * 1e-9;
  m.critical_path_s = static_cast<double>(sr.critical_path_ns) * 1e-9;
  m.total_work_s = static_cast<double>(sr.total_work_ns) * 1e-9;
  m.gflops = gflops(flops, m.seconds);
  if (sr.makespan_ns > 0 && cores > 0) {
    m.idle_fraction = 1.0 - static_cast<double>(sr.total_work_ns) /
                                (static_cast<double>(sr.makespan_ns) * cores);
  }
  m.schedule = std::move(sr.schedule);
  m.sched = std::move(art.sched);
  return m;
}

idx env_idx(const char* name, idx fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<idx>(std::strtoll(v, nullptr, 10));
}

std::vector<idx> env_idx_list(const char* name,
                              const std::vector<idx>& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<idx> out;
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<idx>(std::stoll(tok)));
  }
  return out.empty() ? fallback : out;
}

std::string csv_path(const std::string& name) {
  const char* dir = std::getenv("CAMULT_BENCH_CSV");
  if (dir == nullptr || *dir == '\0') return {};
  return std::string(dir) + "/" + name + ".csv";
}

}  // namespace camult::bench
