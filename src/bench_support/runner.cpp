#include "bench_support/runner.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "bench_support/flops.hpp"
#include "runtime/trace.hpp"

namespace camult::bench {

namespace {

/// Strict integer parse (same contract as the CLI's parse_num): the whole
/// token must be a decimal integer within idx range. Returns whether the
/// parse succeeded; *out is untouched on failure.
bool parse_idx_strict(const char* s, idx* out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<idx>(v);
  return true;
}

}  // namespace

bool real_mode() {
  const char* v = std::getenv("CAMULT_BENCH_REAL");
  return v != nullptr && v[0] == '1';
}

Measurement measure(const std::function<RunArtifacts(int)>& run, double flops,
                    int cores) {
  Measurement m;
  if (real_mode()) {
    const auto t0 = std::chrono::steady_clock::now();
    RunArtifacts art = run(cores);
    const auto t1 = std::chrono::steady_clock::now();
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    m.gflops = gflops(flops, m.seconds);
    m.sched = std::move(art.sched);
    m.mem = art.mem;
    if (!art.trace.empty()) {
      m.idle_fraction =
          std::clamp(rt::compute_stats(art.trace, cores).idle_fraction, 0.0,
                     1.0);
    }
    return m;
  }
  RunArtifacts art = run(0);  // serial record mode
  sim::SimResult sr = sim::simulate(art.trace, art.edges, cores);
  m.seconds = static_cast<double>(sr.makespan_ns) * 1e-9;
  m.critical_path_s = static_cast<double>(sr.critical_path_ns) * 1e-9;
  m.total_work_s = static_cast<double>(sr.total_work_ns) * 1e-9;
  m.gflops = gflops(flops, m.seconds);
  if (sr.makespan_ns > 0 && cores > 0) {
    // Clamp: simulated timestamps are rounded to whole ns, so total_work can
    // exceed makespan * cores by rounding (idle < 0) and a trace whose work
    // rounds to 0 would report idle > 1. A zero makespan (empty or all-zero
    // trace) leaves the fraction at its 0 default rather than dividing by 0.
    m.idle_fraction = std::clamp(
        1.0 - static_cast<double>(sr.total_work_ns) /
                  (static_cast<double>(sr.makespan_ns) * cores),
        0.0, 1.0);
  }
  m.schedule = std::move(sr.schedule);
  m.sched = std::move(art.sched);
  m.mem = art.mem;
  return m;
}

idx env_idx(const char* name, idx fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  idx parsed = 0;
  if (!parse_idx_strict(v, &parsed)) {
    // A silently half-parsed knob ("8x" -> 8, "abc" -> 0) benchmarks the
    // wrong problem; warn and keep the documented default instead.
    std::fprintf(stderr, "camult-bench: ignoring %s='%s' (not an integer)\n",
                 name, v);
    return fallback;
  }
  return parsed;
}

std::vector<idx> env_idx_list(const char* name,
                              const std::vector<idx>& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<idx> out;
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    idx parsed = 0;
    if (!parse_idx_strict(tok.c_str(), &parsed)) {
      // One bad token invalidates the whole list: a sweep over a partially
      // parsed size set would mislabel every downstream row.
      std::fprintf(stderr,
                   "camult-bench: ignoring %s='%s' (bad token '%s')\n", name,
                   v, tok.c_str());
      return fallback;
    }
    out.push_back(parsed);
  }
  return out.empty() ? fallback : out;
}

std::string csv_path(const std::string& name) {
  const char* dir = std::getenv("CAMULT_BENCH_CSV");
  if (dir == nullptr || *dir == '\0') return {};
  return std::string(dir) + "/" + name + ".csv";
}

}  // namespace camult::bench
