#include "bench_support/table.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

namespace camult::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& s) {
  rows_.back().push_back(s);
  return *this;
}

Table& Table::cell(const char* s) { return cell(std::string(s)); }

Table& Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return cell(std::string(buf));
}

Table& Table::cell(long long v) { return cell(std::to_string(v)); }

void Table::print(const std::string& title,
                  const std::string& csv_file) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  if (!title.empty()) std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      std::cout << "  " << s;
      for (std::size_t p = s.size(); p < widths[c]; ++p) std::cout << ' ';
    }
    std::cout << '\n';
  };
  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  std::cout << "  " << std::string(total - 2, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
  std::cout.flush();

  if (!csv_file.empty()) {
    std::ofstream out(csv_file);
    auto csv_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) out << ',';
        out << cells[c];
      }
      out << '\n';
    };
    csv_row(headers_);
    for (const auto& r : rows_) csv_row(r);
  }
}

}  // namespace camult::bench
