#include "bench_support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "runtime/trace.hpp"  // rt::csv_escape

namespace camult::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& s) {
  Cell c;
  c.text = s;
  rows_.back().push_back(std::move(c));
  return *this;
}

Table& Table::cell(const char* s) { return cell(std::string(s)); }

Table& Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  Cell c;
  c.type = CellType::Real;
  c.text = buf;
  c.real = v;
  rows_.back().push_back(std::move(c));
  return *this;
}

Table& Table::cell(long long v) {
  Cell c;
  c.type = CellType::Int;
  c.text = std::to_string(v);
  c.integer = v;
  rows_.back().push_back(std::move(c));
  return *this;
}

void Table::print(const std::string& title,
                  const std::string& csv_file) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].text.size());
    }
  }
  if (!title.empty()) std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<Cell>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c].text : std::string();
      std::cout << "  " << s;
      for (std::size_t p = s.size(); p < widths[c]; ++p) std::cout << ' ';
    }
    std::cout << '\n';
  };
  std::vector<Cell> header_cells;
  for (const std::string& h : headers_) {
    Cell c;
    c.text = h;
    header_cells.push_back(std::move(c));
  }
  print_row(header_cells);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  std::cout << "  " << std::string(total - 2, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
  std::cout.flush();

  if (!csv_file.empty()) {
    std::ofstream out(csv_file);
    auto csv_row = [&](const std::vector<Cell>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) out << ',';
        out << rt::csv_escape(cells[c].text);
      }
      out << '\n';
    };
    csv_row(header_cells);
    for (const auto& r : rows_) csv_row(r);
  }
}

}  // namespace camult::bench
