#include "bench_support/json_report.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "bench_support/runner.hpp"

#ifndef CAMULT_GIT_REV
#define CAMULT_GIT_REV "unknown"
#endif
#ifndef CAMULT_BUILD_FLAGS
#define CAMULT_BUILD_FLAGS ""
#endif

namespace camult::bench {

std::string json_report_path(const std::string& name) {
  const char* dir = std::getenv("CAMULT_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return {};
  return std::string(dir) + "/BENCH_" + name + ".json";
}

JsonValue bench_env_info() {
  JsonValue env = JsonValue::make_object();
  env.set("git", JsonValue::make_string(CAMULT_GIT_REV));
#ifdef __VERSION__
  env.set("compiler", JsonValue::make_string(__VERSION__));
#else
  env.set("compiler", JsonValue::make_string("unknown"));
#endif
  env.set("flags", JsonValue::make_string(CAMULT_BUILD_FLAGS));
  return env;
}

JsonReport::JsonReport(std::string bench, int cores, std::string mode)
    : bench_(std::move(bench)) {
  if (mode.empty()) mode = real_mode() ? "real" : "sim";
  root_ = JsonValue::make_object();
  root_.set("bench", JsonValue::make_string(bench_));
  root_.set("mode", JsonValue::make_string(std::move(mode)));
  root_.set("cores", JsonValue::make_number(cores));
  root_.set("env", bench_env_info());
  root_.set("rows", JsonValue::make_array());
}

void JsonReport::observe_cores(int cores) {
  JsonValue* c = root_.find("cores");
  if (static_cast<double>(cores) > c->number) {
    *c = JsonValue::make_number(cores);
  }
}

JsonValue& JsonReport::new_row() {
  JsonValue* rows = root_.find("rows");
  rows->array.push_back(JsonValue::make_object());
  return rows->array.back();
}

void JsonReport::add_table(const Table& t) {
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    JsonValue& row = new_row();
    const auto& cells = t.row_cells(r);
    for (std::size_t c = 0; c < cells.size() && c < t.headers().size(); ++c) {
      const Table::Cell& cell = cells[c];
      switch (cell.type) {
        case Table::CellType::Real:
          row.set(t.headers()[c], JsonValue::make_number(cell.real));
          break;
        case Table::CellType::Int:
          row.set(t.headers()[c], JsonValue::make_number(
                                      static_cast<double>(cell.integer)));
          break;
        case Table::CellType::Text:
          row.set(t.headers()[c], JsonValue::make_string(cell.text));
          break;
      }
    }
  }
}

void JsonReport::fill_measurement(JsonValue& row, const Measurement& m) {
  row.set("seconds", JsonValue::make_number(m.seconds));
  row.set("gflops", JsonValue::make_number(m.gflops));
  row.set("idle_fraction", JsonValue::make_number(m.idle_fraction));
  const rt::WorkerStats totals = m.sched.totals();
  row.set("steals",
          JsonValue::make_number(static_cast<double>(totals.steals)));
  row.set("tasks", JsonValue::make_number(
                       static_cast<double>(totals.tasks_executed)));
  // Task-store / trace memory telemetry (zero for competitors whose
  // drivers predate MemoryStats): the fields the windowed-submission CI
  // tier asserts on.
  row.set("peak_task_store_bytes",
          JsonValue::make_number(
              static_cast<double>(m.mem.peak_task_store_bytes)));
  row.set("task_blocks_allocated",
          JsonValue::make_number(
              static_cast<double>(m.mem.blocks_allocated)));
  row.set("task_blocks_recycled",
          JsonValue::make_number(
              static_cast<double>(m.mem.blocks_recycled)));
  row.set("trace_records_harvested",
          JsonValue::make_number(
              static_cast<double>(m.mem.trace_records_harvested)));
  if (!real_mode()) {
    row.set("critical_path_s", JsonValue::make_number(m.critical_path_s));
    row.set("total_work_s", JsonValue::make_number(m.total_work_s));
  }
}

void JsonReport::write_to(std::ostream& os) const {
  root_.write(os, 2);
  os << '\n';
}

bool JsonReport::write() const {
  const std::string path = json_report_path(bench_);
  if (path.empty()) return false;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("JsonReport: cannot open " + path);
  write_to(out);
  if (!out) throw std::runtime_error("JsonReport: write failed for " + path);
  return true;
}

}  // namespace camult::bench
