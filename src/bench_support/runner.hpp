// runner.hpp — the benchmark measurement protocol (see DESIGN.md §2 and §6).
//
// Default (simulated) mode: the competitor runs once in serial record mode
// (TaskGraph with num_threads = 0) so that every task's kernel time is
// measured on the real machine without interference; the recorded DAG is
// then list-scheduled onto P virtual cores. This substitutes for the paper's
// 8/16-core machines on a single-core host.
//
// Real mode (CAMULT_BENCH_REAL=1): the competitor runs with P actual worker
// threads and wall-clock time is reported instead.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/task_graph.hpp"
#include "sim/sim_scheduler.hpp"

namespace camult::bench {

/// What a competitor run must hand back for measurement.
struct RunArtifacts {
  std::vector<rt::TaskRecord> trace;
  std::vector<rt::TaskGraph::Edge> edges;
  rt::SchedulerStats sched;  ///< counters from the run's TaskGraph
  /// Task-store / trace memory telemetry of the run (zeroed for
  /// competitors that predate the windowed drivers).
  rt::TaskGraph::MemoryStats mem{};
};

struct Measurement {
  double seconds = 0.0;        ///< simulated makespan or real wall time
  double gflops = 0.0;
  double critical_path_s = 0.0;  ///< sim mode only
  double total_work_s = 0.0;     ///< sim mode only
  /// 1 - busy/(makespan*cores). Sim mode: from the simulated schedule; real
  /// mode: from the recorded trace (0 when tracing was off).
  double idle_fraction = 0.0;
  std::vector<rt::TaskRecord> schedule;  ///< sim mode: the simulated Gantt
  /// Scheduler counters of the measured run. Real mode: the real worker
  /// pool's counters (steals, wakeups, ...). Sim mode: the serial record
  /// run's counters (execution telemetry like steals is not meaningful).
  rt::SchedulerStats sched;
  /// Task-store / trace memory telemetry of the measured run (peak task
  /// store bytes, slab recycling counters, harvested trace records).
  rt::TaskGraph::MemoryStats mem;
};

/// True when CAMULT_BENCH_REAL=1 is set.
bool real_mode();

/// Measure one competitor at `cores`. `run(threads)` must execute the
/// algorithm with the given worker count (0 = serial record mode) and
/// return its trace/edges.
Measurement measure(const std::function<RunArtifacts(int)>& run, double flops,
                    int cores);

/// Environment overrides: integer (CAMULT_BENCH_M=...), comma-separated
/// list (CAMULT_BENCH_NS=10,25,50), with defaults.
idx env_idx(const char* name, idx fallback);
std::vector<idx> env_idx_list(const char* name,
                              const std::vector<idx>& fallback);

/// If CAMULT_BENCH_CSV=<dir> is set, open <dir>/<name>.csv and return the
/// path; otherwise empty.
std::string csv_path(const std::string& name);

}  // namespace camult::bench
