// json_report.hpp — machine-readable benchmark reports.
//
// Every bench binary builds a JsonReport and calls write() at the end; when
// CAMULT_BENCH_JSON=<dir> is set this produces <dir>/BENCH_<name>.json with
// the schema
//
//   {
//     "bench":  "<name>",
//     "mode":   "sim" | "real",
//     "cores":  <max cores measured>,
//     "env":    {"git": ..., "compiler": ..., "flags": ...},
//     "rows":   [{"competitor": ..., "m": ..., "n": ..., "b": ..., "tr": ...,
//                 "seconds": ..., "gflops": ..., "idle_fraction": ...,
//                 "steals": ..., ...}, ...]
//   }
//
// establishing the perf trajectory future PRs regress against. Rows are
// free-form JSON objects; the fields above are the common vocabulary the
// shared figure/table runners emit (tools/check_bench_json.cpp validates the
// envelope plus per-row field types).
#pragma once

#include <string>

#include "bench_support/json.hpp"
#include "bench_support/table.hpp"
#include "runtime/task_graph.hpp"

namespace camult::bench {

struct Measurement;

/// If CAMULT_BENCH_JSON=<dir> is set, the report path <dir>/BENCH_<name>.json;
/// otherwise empty (reports are skipped).
std::string json_report_path(const std::string& name);

/// Build-environment stamp: {"git": ..., "compiler": ..., "flags": ...}.
JsonValue bench_env_info();

class JsonReport {
 public:
  /// `mode` defaults to the measurement protocol in effect ("real" when
  /// CAMULT_BENCH_REAL=1, else "sim").
  explicit JsonReport(std::string bench, int cores = 0,
                      std::string mode = "");

  /// Record the largest core count measured (kept as the report's "cores").
  void observe_cores(int cores);

  /// Append an empty row object and return it for field-by-field filling.
  JsonValue& new_row();

  /// Append one row per table row, keyed by the table headers, preserving
  /// cell types (Real/Int -> number, Text -> string).
  void add_table(const Table& t);

  /// Fill the standard measurement fields of `row` from `m` (seconds,
  /// gflops, idle_fraction, steals, plus sim bounds when present).
  static void fill_measurement(JsonValue& row, const Measurement& m);

  /// Serialize the full report document.
  void write_to(std::ostream& os) const;

  /// Write to json_report_path(bench). Returns false (and does nothing)
  /// when CAMULT_BENCH_JSON is unset; throws std::runtime_error on I/O
  /// failure.
  bool write() const;

 private:
  std::string bench_;
  JsonValue root_;
};

}  // namespace camult::bench
