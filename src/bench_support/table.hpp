// table.hpp — paper-style aligned table printing + optional CSV mirror.
#pragma once

#include <string>
#include <vector>

namespace camult::bench {

/// Collects string cells and prints them as an aligned ASCII table, with an
/// optional CSV mirror (see csv_path()).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row.
  Table& row();
  /// Append cells to the current row.
  Table& cell(const std::string& s);
  Table& cell(const char* s);
  Table& cell(double v, int precision = 2);
  Table& cell(long long v);

  /// Print to stdout; if csv_file is non-empty also write CSV there.
  void print(const std::string& title = "",
             const std::string& csv_file = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace camult::bench
