// table.hpp — paper-style aligned table printing + optional CSV mirror.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace camult::bench {

/// Collects typed cells and prints them as an aligned ASCII table, with an
/// optional CSV mirror (see csv_path()). The typed values stay accessible so
/// JsonReport::add_table can mirror a table into a machine-readable report
/// without re-parsing the formatted text.
class Table {
 public:
  enum class CellType { Text, Real, Int };

  struct Cell {
    CellType type = CellType::Text;
    std::string text;       ///< formatted, exactly as printed
    double real = 0.0;      ///< valid when type == Real
    long long integer = 0;  ///< valid when type == Int
  };

  explicit Table(std::vector<std::string> headers);

  /// Start a new row.
  Table& row();
  /// Append cells to the current row.
  Table& cell(const std::string& s);
  Table& cell(const char* s);
  Table& cell(double v, int precision = 2);
  Table& cell(long long v);

  /// Print to stdout; if csv_file is non-empty also write CSV there (fields
  /// quoted per RFC 4180 when needed).
  void print(const std::string& title = "",
             const std::string& csv_file = "") const;

  const std::vector<std::string>& headers() const { return headers_; }
  std::size_t num_rows() const { return rows_.size(); }
  /// Cells of row r (may be shorter than headers() for ragged rows).
  const std::vector<Cell>& row_cells(std::size_t r) const { return rows_[r]; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace camult::bench
