#include "bench_support/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace camult::bench {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    os << static_cast<long long>(v);  // integral: no trailing ".0" noise
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

/// Recursive-descent parser over the whole input string.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue::make_string(string());
      case 't':
        if (!consume_word("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  unsigned hex4() {
    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v += static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v += static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v += static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      fail("expected a value");
    }
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + tok + "'");
    }
    return JsonValue::make_number(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type = Type::Bool;
  v.boolean = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  if (!std::isfinite(n)) return make_null();
  JsonValue v;
  v.type = Type::Number;
  v.number = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type = Type::String;
  v.string = std::move(s);
  return v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonValue::find(const std::string& key) {
  return const_cast<JsonValue*>(
      static_cast<const JsonValue*>(this)->find(key));
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  assert(type == Type::Object);
  for (auto& [k, old] : object) {
    if (k == key) {
      old = std::move(v);
      return old;
    }
  }
  object.emplace_back(key, std::move(v));
  return object.back().second;
}

void JsonValue::write(std::ostream& os, int indent) const {
  struct Impl {
    static void rec(std::ostream& os, const JsonValue& v, int indent,
                    int depth) {
      const bool pretty = indent >= 0;
      auto newline = [&](int d) {
        if (!pretty) return;
        os << '\n';
        for (int i = 0; i < d * indent; ++i) os << ' ';
      };
      switch (v.type) {
        case Type::Null: os << "null"; break;
        case Type::Bool: os << (v.boolean ? "true" : "false"); break;
        case Type::Number: write_number(os, v.number); break;
        case Type::String: write_escaped(os, v.string); break;
        case Type::Array:
          os << '[';
          for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i) os << ',';
            newline(depth + 1);
            rec(os, v.array[i], indent, depth + 1);
          }
          if (!v.array.empty()) newline(depth);
          os << ']';
          break;
        case Type::Object:
          os << '{';
          for (std::size_t i = 0; i < v.object.size(); ++i) {
            if (i) os << ',';
            newline(depth + 1);
            write_escaped(os, v.object[i].first);
            os << (pretty ? ": " : ":");
            rec(os, v.object[i].second, indent, depth + 1);
          }
          if (!v.object.empty()) newline(depth);
          os << '}';
          break;
      }
    }
  };
  Impl::rec(os, *this, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).run();
}

}  // namespace camult::bench
