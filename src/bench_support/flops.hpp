// flops.hpp — standard flop counts used to report GFlop/s, matching the
// paper's convention (the nominal LAPACK operation count; any redundant
// communication-avoiding flops make the measured rate lower, exactly as in
// the paper).
#pragma once

#include "matrix/view.hpp"

namespace camult::bench {

/// dgetrf: 2mnk - (m+n)k^2 + (2/3)k^3 with k = min(m,n)
/// (= (2/3)n^3 for square).
inline double lu_flops(idx m, idx n) {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(std::min(m, n));
  return 2.0 * md * nd * kd - (md + nd) * kd * kd + (2.0 / 3.0) * kd * kd * kd;
}

/// dgeqrf (m >= n): 2n^2(m - n/3); general via the LAWN count.
inline double qr_flops(idx m, idx n) {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  if (m >= n) return 2.0 * nd * nd * (md - nd / 3.0);
  return 2.0 * md * md * (nd - md / 3.0);
}

inline double gflops(double flops, double seconds) {
  return seconds > 0 ? flops / seconds * 1e-9 : 0.0;
}

}  // namespace camult::bench
