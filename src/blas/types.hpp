// types.hpp — shared BLAS enumerations (LAPACK naming conventions).
#pragma once

namespace camult::blas {

enum class Trans { NoTrans, Trans };
enum class Side { Left, Right };
enum class Uplo { Upper, Lower };
enum class Diag { NonUnit, Unit };

}  // namespace camult::blas
