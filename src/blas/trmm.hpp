// trmm.hpp — triangular matrix-matrix multiply.
//
//   Side::Left :  B := alpha * op(A) * B
//   Side::Right:  B := alpha * B * op(A)
//
// A is triangular; only the referenced triangle is read. Recursive blocking
// routes the bulk of the work through gemm (needed because larfb spends a
// significant fraction of its flops here).
#pragma once

#include "blas/types.hpp"
#include "matrix/view.hpp"

namespace camult::blas {

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);

}  // namespace camult::blas
