// syrk.hpp — symmetric rank-k update (used by normal-equation style checks).
//
//   C := alpha * A * A^T + beta * C     (Trans::NoTrans)
//   C := alpha * A^T * A + beta * C     (Trans::Trans)
//
// Only the triangle selected by uplo is referenced and updated.
#pragma once

#include "blas/types.hpp"
#include "matrix/view.hpp"

namespace camult::blas {

void syrk(Uplo uplo, Trans trans, double alpha, ConstMatrixView a, double beta,
          MatrixView c);

}  // namespace camult::blas
