// pack.hpp — the packing half of the two-phase GEMM API, plus the aligned
// per-thread scratch-buffer pool behind it.
//
// The GotoBLAS-style gemm in gemm.cpp repacks its operands into
// cache-resident panels on every call. The trailing-matrix (S) tasks of
// CALU/CAQR multiply the SAME panel block of L (or V) against many trailing
// column segments, so that repacking is pure redundant memory traffic — the
// exact communication a communication-avoiding code should not pay twice.
//
// This header exposes:
//  * PackedPanel — an owning, 64-byte-aligned copy of op(A) (or op(B)) in
//    the microkernel's panel layout, blocked by the same MC/KC/NC cache
//    blocking the gemm driver uses. Pack once, then hand it (read-only) to
//    any number of gemm_packed() calls — including concurrently from
//    multiple workers, provided the usual happens-before between the pack
//    and the consumers (the task scheduler's dependency edges supply it).
//  * pack_a()/pack_b() — build a PackedPanel for the A- or B-operand slot.
//  * ScratchBuffer — a pool-backed aligned allocation used for the
//    per-call packing scratch inside gemm itself (and anywhere else a
//    kernel wants temporary aligned storage without touching operator new
//    on the hot path). Pools are thread-local: workers never contend, and
//    a buffer released on a different thread simply migrates pools. A
//    buffer that outlives its releasing thread's pool (TLS teardown order
//    is unspecified) is safely freed directly — the dead pool is never
//    touched. With a persistent rt::WorkerPool the pools survive across
//    factorization calls, so steady-state slabs are reused call-to-call.
//
// Sanitizer behaviour: buffers parked in the pool are poisoned under
// AddressSanitizer (CAMULT_SANITIZE=address) so stale reads through a
// dangling PackedPanel fault immediately; they are unpoisoned on reuse.
#pragma once

#include <cstddef>
#include <cstdint>

#include "blas/kernel.hpp"
#include "blas/types.hpp"
#include "matrix/view.hpp"

namespace camult::blas {

/// Built-in default blocking of the scalar and AVX2 kernels (8 x 6 register
/// tile). Kept as named constants for tests that probe blocking boundaries;
/// the blocking a given call ACTUALLY uses is runtime data — the active
/// kernel's GemmBlocking, possibly overridden by the tuning table (see
/// kernel.hpp / tuning.hpp) — and a PackedPanel records the blocking and
/// kernel it was packed for.
inline constexpr idx kGemmMR = 8;
inline constexpr idx kGemmNR = 6;
inline constexpr idx kGemmMC = 192;
inline constexpr idx kGemmKC = 256;
inline constexpr idx kGemmNC = 768;
static_assert(kGemmMC % kGemmMR == 0, "packed A offsets assume MC % MR == 0");
static_assert(kGemmNC % kGemmNR == 0, "packed B offsets assume NC % NR == 0");

/// Counters for the calling thread's scratch pool (test/bench telemetry).
/// Aggregable across threads with += (see core::pool_buffer_stats for the
/// pool-wide collector).
struct BufferPoolStats {
  std::int64_t acquires = 0;   ///< ScratchBuffer constructions (n > 0)
  std::int64_t pool_hits = 0;  ///< acquires served from a cached slab
  std::int64_t allocs = 0;     ///< acquires that hit operator new
  std::int64_t releases = 0;   ///< buffers returned to this thread's pool
  std::int64_t frees = 0;      ///< slabs evicted (pool full) or trimmed

  BufferPoolStats& operator+=(const BufferPoolStats& o);
};

/// Snapshot of the calling thread's pool counters.
BufferPoolStats buffer_pool_stats();

/// Drop every slab cached by the calling thread's pool (tests use this to
/// reset the pool between scenarios; live ScratchBuffers are unaffected).
void buffer_pool_trim();

/// A 64-byte-aligned array of doubles leased from the calling thread's
/// pool. Move-only; the destructor parks the slab back in the pool of
/// whichever thread runs it (bounded: excess slabs are freed).
class ScratchBuffer {
 public:
  ScratchBuffer() = default;
  explicit ScratchBuffer(std::size_t n_doubles);
  ~ScratchBuffer();

  ScratchBuffer(ScratchBuffer&& other) noexcept;
  ScratchBuffer& operator=(ScratchBuffer&& other) noexcept;
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  double* data() const { return ptr_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void release();

  double* ptr_ = nullptr;
  std::size_t size_ = 0;      ///< doubles requested
  std::size_t capacity_ = 0;  ///< doubles the slab can hold
};

/// Which operand slot a PackedPanel fills.
enum class PackOperand : std::uint8_t { A, B };

/// An owning packed copy of one gemm operand, in microkernel panel layout:
///  * A-operand: op(A) (m x k) as MR-row panels, grouped into the same
///    (MC x KC) cache blocks the gemm driver walks.
///  * B-operand: op(B) (k x n) as NR-column panels, grouped into (KC x NC)
///    cache blocks.
/// Transposition is absorbed at pack time, so a PackedPanel has no Trans.
class PackedPanel {
 public:
  PackedPanel() = default;

  PackOperand operand() const { return op_; }
  /// Dimensions of the packed op(X): rows x cols.
  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  /// True once pack_a/pack_b filled the panel (or it is 0-sized).
  bool valid() const { return buf_.data() != nullptr || empty(); }

  /// The blocking this panel was packed with. gemm_packed drives its cache
  /// loops with THESE values (not the current active blocking), so a panel
  /// keeps working even if the tuning table or kernel selection changed
  /// after it was packed.
  const GemmBlocking& blocking() const { return blk_; }
  /// The kernel variant active at pack time; gemm_packed dispatches to it
  /// because the panel layout is tied to its MR/NR register tile. Null only
  /// for a default-constructed (empty) panel.
  const KernelInfo* kernel() const { return kernel_; }

  /// Packed (mc x kc) block of an A-operand panel at row i0 / depth p0
  /// (both cache-block-aligned w.r.t. blocking()). Layout within: mr-row
  /// panels of depth min(kc, k - p0), exactly what the microkernel
  /// consumes.
  const double* a_block(idx i0, idx p0) const;
  /// Packed (kc x nc) block of a B-operand panel at depth p0 / column j0.
  const double* b_block(idx p0, idx j0) const;

 private:
  friend PackedPanel pack_a(ConstMatrixView a, Trans trans);
  friend PackedPanel pack_b(ConstMatrixView b, Trans trans);

  ScratchBuffer buf_;
  PackOperand op_ = PackOperand::A;
  idx rows_ = 0;
  idx cols_ = 0;
  /// mr- (A) or nr- (B) padded extent of the non-depth dimension; the
  /// stride between consecutive depth blocks is padded_ * kc.
  idx padded_ = 0;
  GemmBlocking blk_{kGemmMC, kGemmKC, kGemmNC, kGemmMR, kGemmNR};
  const KernelInfo* kernel_ = nullptr;
};

/// Pack op(A) (the full m x k operand) for the gemm A slot.
PackedPanel pack_a(ConstMatrixView a, Trans trans);
/// Pack op(B) (the full k x n operand) for the gemm B slot.
PackedPanel pack_b(ConstMatrixView b, Trans trans);

/// Low-level single-cache-block packers (the primitives gemm itself uses;
/// exposed for tests). `mr` (resp. `nr`) is the register-tile extent the
/// block is laid out for — the active kernel's, for buffers the driver will
/// feed to it. `buf` needs ceil(mc/mr)*mr*kc (resp. ceil(nc/nr)*nr*kc)
/// doubles; fringe rows/cols are zero-padded to the full tile.
void pack_a_block(ConstMatrixView a, Trans trans, idx i0, idx p0, idx mc,
                  idx kc, idx mr, double* buf);
void pack_b_block(ConstMatrixView b, Trans trans, idx p0, idx j0, idx kc,
                  idx nc, idx nr, double* buf);

}  // namespace camult::blas
