#include "blas/gemm.hpp"

#include <cassert>
#include <cstring>
#include <vector>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace camult::blas {
namespace {

// Microkernel register block. 8x6 keeps the accumulator within the AVX2
// register budget when GCC vectorizes the row dimension.
constexpr idx MR = 8;
constexpr idx NR = 6;
// Cache blocks: A panel (MC x KC) targets L2, B panel (KC x NC) targets L3.
constexpr idx MC = 192;
constexpr idx KC = 256;
constexpr idx NC = 768;

inline double op_elem(ConstMatrixView a, Trans trans, idx i, idx p) {
  return trans == Trans::NoTrans ? a(i, p) : a(p, i);
}

// Pack op(A)(i0:i0+mc, p0:p0+kc) into MR-row panels:
// buf[panel][p * MR + r], zero padded in the row direction.
void pack_a(ConstMatrixView a, Trans trans, idx i0, idx p0, idx mc, idx kc,
            double* buf) {
  const idx panels = (mc + MR - 1) / MR;
  for (idx ip = 0; ip < panels; ++ip) {
    const idx i_base = i0 + ip * MR;
    const idx rows = std::min<idx>(MR, i0 + mc - i_base);
    double* dst = buf + ip * (MR * kc);
    if (trans == Trans::NoTrans) {
      for (idx p = 0; p < kc; ++p) {
        const double* src = a.col_ptr(p0 + p) + i_base;
        for (idx r = 0; r < rows; ++r) dst[p * MR + r] = src[r];
        for (idx r = rows; r < MR; ++r) dst[p * MR + r] = 0.0;
      }
    } else {
      for (idx p = 0; p < kc; ++p) {
        for (idx r = 0; r < rows; ++r) {
          dst[p * MR + r] = a(p0 + p, i_base + r);
        }
        for (idx r = rows; r < MR; ++r) dst[p * MR + r] = 0.0;
      }
    }
  }
}

// Pack op(B)(p0:p0+kc, j0:j0+nc) into NR-column panels:
// buf[panel][p * NR + c], zero padded in the column direction.
void pack_b(ConstMatrixView b, Trans trans, idx p0, idx j0, idx kc, idx nc,
            double* buf) {
  const idx panels = (nc + NR - 1) / NR;
  for (idx jp = 0; jp < panels; ++jp) {
    const idx j_base = j0 + jp * NR;
    const idx cols = std::min<idx>(NR, j0 + nc - j_base);
    double* dst = buf + jp * (NR * kc);
    if (trans == Trans::NoTrans) {
      for (idx p = 0; p < kc; ++p) {
        for (idx c = 0; c < cols; ++c) dst[p * NR + c] = b(p0 + p, j_base + c);
        for (idx c = cols; c < NR; ++c) dst[p * NR + c] = 0.0;
      }
    } else {
      for (idx c = 0; c < cols; ++c) {
        const double* src = b.col_ptr(p0) + (j_base + c);
        // op(B)(p, j) = b(j, p): walk row j_base+c of b, stride ld.
        for (idx p = 0; p < kc; ++p) dst[p * NR + c] = src[p * b.ld()];
      }
      for (idx c = cols; c < NR; ++c) {
        for (idx p = 0; p < kc; ++p) dst[p * NR + c] = 0.0;
      }
    }
  }
}

// C(0:mr_eff, 0:nr_eff) += alpha * Ap * Bp where Ap is MR x kc packed and
// Bp is kc x NR packed.
#if defined(__AVX2__) && defined(__FMA__)
// Hand-vectorized kernel: 12 independent ymm accumulators (2 per column),
// which keeps the FMA pipelines saturated — compilers reliably fail to get
// this register allocation right from the scalar loop.
void microkernel(idx kc, double alpha, const double* __restrict ap,
                 const double* __restrict bp, double* __restrict c, idx ldc,
                 idx mr_eff, idx nr_eff) {
  static_assert(MR == 8 && NR == 6, "kernel assumes 8x6");
  __m256d acc_lo[NR];
  __m256d acc_hi[NR];
  for (int j = 0; j < NR; ++j) {
    acc_lo[j] = _mm256_setzero_pd();
    acc_hi[j] = _mm256_setzero_pd();
  }
  for (idx p = 0; p < kc; ++p) {
    const __m256d a0 = _mm256_loadu_pd(ap + p * MR);
    const __m256d a1 = _mm256_loadu_pd(ap + p * MR + 4);
    const double* b = bp + p * NR;
    for (int j = 0; j < NR; ++j) {
      const __m256d bv = _mm256_broadcast_sd(b + j);
      acc_lo[j] = _mm256_fmadd_pd(a0, bv, acc_lo[j]);
      acc_hi[j] = _mm256_fmadd_pd(a1, bv, acc_hi[j]);
    }
  }
  if (mr_eff == MR && nr_eff == NR) {
    const __m256d va = _mm256_set1_pd(alpha);
    for (int j = 0; j < NR; ++j) {
      double* cc = c + j * ldc;
      _mm256_storeu_pd(cc, _mm256_fmadd_pd(va, acc_lo[j],
                                           _mm256_loadu_pd(cc)));
      _mm256_storeu_pd(cc + 4, _mm256_fmadd_pd(va, acc_hi[j],
                                               _mm256_loadu_pd(cc + 4)));
    }
  } else {
    double acc[MR * NR];
    for (int j = 0; j < NR; ++j) {
      _mm256_storeu_pd(acc + j * MR, acc_lo[j]);
      _mm256_storeu_pd(acc + j * MR + 4, acc_hi[j]);
    }
    for (idx cj = 0; cj < nr_eff; ++cj) {
      double* cc = c + cj * ldc;
      const double* accc = acc + cj * MR;
      for (idx ri = 0; ri < mr_eff; ++ri) cc[ri] += alpha * accc[ri];
    }
  }
}
#else
void microkernel(idx kc, double alpha, const double* __restrict ap,
                 const double* __restrict bp, double* __restrict c, idx ldc,
                 idx mr_eff, idx nr_eff) {
  double acc[MR * NR];
  for (idx i = 0; i < MR * NR; ++i) acc[i] = 0.0;
  for (idx p = 0; p < kc; ++p) {
    const double* a = ap + p * MR;
    const double* b = bp + p * NR;
    for (idx cj = 0; cj < NR; ++cj) {
      const double bv = b[cj];
      double* accc = acc + cj * MR;
      for (idx ri = 0; ri < MR; ++ri) accc[ri] += a[ri] * bv;
    }
  }
  if (mr_eff == MR && nr_eff == NR) {
    for (idx cj = 0; cj < NR; ++cj) {
      double* cc = c + cj * ldc;
      const double* accc = acc + cj * MR;
      for (idx ri = 0; ri < MR; ++ri) cc[ri] += alpha * accc[ri];
    }
  } else {
    for (idx cj = 0; cj < nr_eff; ++cj) {
      double* cc = c + cj * ldc;
      const double* accc = acc + cj * MR;
      for (idx ri = 0; ri < mr_eff; ++ri) cc[ri] += alpha * accc[ri];
    }
  }
}
#endif

void scale_matrix(MatrixView c, double beta) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (idx j = 0; j < c.cols(); ++j) {
      std::memset(c.col_ptr(j), 0, static_cast<std::size_t>(c.rows()) * sizeof(double));
    }
    return;
  }
  for (idx j = 0; j < c.cols(); ++j) {
    double* col = c.col_ptr(j);
    for (idx i = 0; i < c.rows(); ++i) col[i] *= beta;
  }
}

// Direct triple loop for problems too small to amortize packing.
void gemm_small(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                ConstMatrixView b, MatrixView c, idx k) {
  const idx m = c.rows();
  const idx n = c.cols();
  for (idx j = 0; j < n; ++j) {
    double* cc = c.col_ptr(j);
    for (idx p = 0; p < k; ++p) {
      const double bv = alpha * op_elem(b, transb, p, j);
      if (bv == 0.0) continue;
      if (transa == Trans::NoTrans) {
        const double* ac = a.col_ptr(p);
        for (idx i = 0; i < m; ++i) cc[i] += ac[i] * bv;
      } else {
        // op(A)(i, p) = a(p, i): row p of a, stride ld.
        for (idx i = 0; i < m; ++i) cc[i] += a(p, i) * bv;
      }
    }
  }
}

}  // namespace

GemmBlocking gemm_blocking() { return {MC, KC, NC, MR, NR}; }

void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = (transa == Trans::NoTrans) ? a.cols() : a.rows();
  assert(((transa == Trans::NoTrans) ? a.rows() : a.cols()) == m);
  assert(((transb == Trans::NoTrans) ? b.rows() : b.cols()) == k);
  assert(((transb == Trans::NoTrans) ? b.cols() : b.rows()) == n);

  scale_matrix(c, beta);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  if (m * n * k <= 16 * 16 * 16) {
    gemm_small(transa, transb, alpha, a, b, c, k);
    return;
  }

  // Packing workspaces are reused across calls on the same thread; workers in
  // the task runtime each get their own copies.
  thread_local std::vector<double> a_buf;
  thread_local std::vector<double> b_buf;
  a_buf.resize(static_cast<std::size_t>(((MC + MR - 1) / MR) * MR * KC));
  b_buf.resize(static_cast<std::size_t>(((NC + NR - 1) / NR) * NR * KC));

  for (idx jc = 0; jc < n; jc += NC) {
    const idx nc = std::min<idx>(NC, n - jc);
    for (idx pc = 0; pc < k; pc += KC) {
      const idx kc = std::min<idx>(KC, k - pc);
      pack_b(b, transb, pc, jc, kc, nc, b_buf.data());
      for (idx ic = 0; ic < m; ic += MC) {
        const idx mc = std::min<idx>(MC, m - ic);
        pack_a(a, transa, ic, pc, mc, kc, a_buf.data());
        for (idx jr = 0; jr < nc; jr += NR) {
          const idx nr_eff = std::min<idx>(NR, nc - jr);
          const double* bp = b_buf.data() + (jr / NR) * (NR * kc);
          for (idx ir = 0; ir < mc; ir += MR) {
            const idx mr_eff = std::min<idx>(MR, mc - ir);
            const double* ap = a_buf.data() + (ir / MR) * (MR * kc);
            double* cblk = c.data() + (ic + ir) + (jc + jr) * c.ld();
            microkernel(kc, alpha, ap, bp, cblk, c.ld(), mr_eff, nr_eff);
          }
        }
      }
    }
  }
}

}  // namespace camult::blas
