#include "blas/gemm.hpp"

#include <cassert>
#include <cstring>

#include "blas/pack.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace camult::blas {
namespace {

// Local aliases for the shared blocking constants (see pack.hpp). MR x NR is
// the microkernel register tile; MC/KC target L2, NC targets L3.
constexpr idx MR = kGemmMR;
constexpr idx NR = kGemmNR;
constexpr idx MC = kGemmMC;
constexpr idx KC = kGemmKC;
constexpr idx NC = kGemmNC;

inline double op_elem(ConstMatrixView a, Trans trans, idx i, idx p) {
  return trans == Trans::NoTrans ? a(i, p) : a(p, i);
}

// C(0:mr_eff, 0:nr_eff) += alpha * Ap * Bp where Ap is MR x kc packed and
// Bp is kc x NR packed.
#if defined(__AVX2__) && defined(__FMA__)
// Hand-vectorized kernel: 12 independent ymm accumulators (2 per column),
// which keeps the FMA pipelines saturated — compilers reliably fail to get
// this register allocation right from the scalar loop.
void microkernel(idx kc, double alpha, const double* __restrict ap,
                 const double* __restrict bp, double* __restrict c, idx ldc,
                 idx mr_eff, idx nr_eff) {
  static_assert(MR == 8 && NR == 6, "kernel assumes 8x6");
  __m256d acc_lo[NR];
  __m256d acc_hi[NR];
  for (int j = 0; j < NR; ++j) {
    acc_lo[j] = _mm256_setzero_pd();
    acc_hi[j] = _mm256_setzero_pd();
  }
  for (idx p = 0; p < kc; ++p) {
    const __m256d a0 = _mm256_loadu_pd(ap + p * MR);
    const __m256d a1 = _mm256_loadu_pd(ap + p * MR + 4);
    const double* b = bp + p * NR;
    for (int j = 0; j < NR; ++j) {
      const __m256d bv = _mm256_broadcast_sd(b + j);
      acc_lo[j] = _mm256_fmadd_pd(a0, bv, acc_lo[j]);
      acc_hi[j] = _mm256_fmadd_pd(a1, bv, acc_hi[j]);
    }
  }
  if (mr_eff == MR && nr_eff == NR) {
    const __m256d va = _mm256_set1_pd(alpha);
    for (int j = 0; j < NR; ++j) {
      double* cc = c + j * ldc;
      _mm256_storeu_pd(cc, _mm256_fmadd_pd(va, acc_lo[j],
                                           _mm256_loadu_pd(cc)));
      _mm256_storeu_pd(cc + 4, _mm256_fmadd_pd(va, acc_hi[j],
                                               _mm256_loadu_pd(cc + 4)));
    }
  } else {
    double acc[MR * NR];
    for (int j = 0; j < NR; ++j) {
      _mm256_storeu_pd(acc + j * MR, acc_lo[j]);
      _mm256_storeu_pd(acc + j * MR + 4, acc_hi[j]);
    }
    for (idx cj = 0; cj < nr_eff; ++cj) {
      double* cc = c + cj * ldc;
      const double* accc = acc + cj * MR;
      for (idx ri = 0; ri < mr_eff; ++ri) cc[ri] += alpha * accc[ri];
    }
  }
}
#else
void microkernel(idx kc, double alpha, const double* __restrict ap,
                 const double* __restrict bp, double* __restrict c, idx ldc,
                 idx mr_eff, idx nr_eff) {
  double acc[MR * NR];
  for (idx i = 0; i < MR * NR; ++i) acc[i] = 0.0;
  for (idx p = 0; p < kc; ++p) {
    const double* a = ap + p * MR;
    const double* b = bp + p * NR;
    for (idx cj = 0; cj < NR; ++cj) {
      const double bv = b[cj];
      double* accc = acc + cj * MR;
      for (idx ri = 0; ri < MR; ++ri) accc[ri] += a[ri] * bv;
    }
  }
  if (mr_eff == MR && nr_eff == NR) {
    for (idx cj = 0; cj < NR; ++cj) {
      double* cc = c + cj * ldc;
      const double* accc = acc + cj * MR;
      for (idx ri = 0; ri < MR; ++ri) cc[ri] += alpha * accc[ri];
    }
  } else {
    for (idx cj = 0; cj < nr_eff; ++cj) {
      double* cc = c + cj * ldc;
      const double* accc = acc + cj * MR;
      for (idx ri = 0; ri < mr_eff; ++ri) cc[ri] += alpha * accc[ri];
    }
  }
}
#endif

void scale_matrix(MatrixView c, double beta) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (idx j = 0; j < c.cols(); ++j) {
      std::memset(c.col_ptr(j), 0, static_cast<std::size_t>(c.rows()) * sizeof(double));
    }
    return;
  }
  for (idx j = 0; j < c.cols(); ++j) {
    double* col = c.col_ptr(j);
    for (idx i = 0; i < c.rows(); ++i) col[i] *= beta;
  }
}

// Direct triple loop for problems too small to amortize packing.
void gemm_small(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                ConstMatrixView b, MatrixView c, idx k) {
  const idx m = c.rows();
  const idx n = c.cols();
  for (idx j = 0; j < n; ++j) {
    double* cc = c.col_ptr(j);
    for (idx p = 0; p < k; ++p) {
      const double bv = alpha * op_elem(b, transb, p, j);
      if (bv == 0.0) continue;
      if (transa == Trans::NoTrans) {
        const double* ac = a.col_ptr(p);
        for (idx i = 0; i < m; ++i) cc[i] += ac[i] * bv;
      } else {
        // op(A)(i, p) = a(p, i): row p of a, stride ld.
        for (idx i = 0; i < m; ++i) cc[i] += a(p, i) * bv;
      }
    }
  }
}

// Macro-block driver shared by gemm and both gemm_packed overloads: walks
// the jc / pc / ic cache-block loops and feeds the microkernel. The getters
// supply a packed (MC x KC) A block (get_a(ic, pc, mc, kc)) and a packed
// (KC x NC) B block (get_b(pc, jc, kc, nc)) — either freshly packed into
// per-call scratch or served from a pre-packed PackedPanel. Since the loop
// structure and microkernel are shared, packed and unpacked runs produce
// bit-identical results on this path.
template <typename GetA, typename GetB>
void gemm_blocked(idx m, idx n, idx k, double alpha, GetA&& get_a,
                  GetB&& get_b, MatrixView c) {
  for (idx jc = 0; jc < n; jc += NC) {
    const idx nc = std::min<idx>(NC, n - jc);
    for (idx pc = 0; pc < k; pc += KC) {
      const idx kc = std::min<idx>(KC, k - pc);
      const double* bblk = get_b(pc, jc, kc, nc);
      for (idx ic = 0; ic < m; ic += MC) {
        const idx mc = std::min<idx>(MC, m - ic);
        const double* ablk = get_a(ic, pc, mc, kc);
        for (idx jr = 0; jr < nc; jr += NR) {
          const idx nr_eff = std::min<idx>(NR, nc - jr);
          const double* bp = bblk + (jr / NR) * (NR * kc);
          for (idx ir = 0; ir < mc; ir += MR) {
            const idx mr_eff = std::min<idx>(MR, mc - ir);
            const double* ap = ablk + (ir / MR) * (MR * kc);
            double* cblk = c.data() + (ic + ir) + (jc + jr) * c.ld();
            microkernel(kc, alpha, ap, bp, cblk, c.ld(), mr_eff, nr_eff);
          }
        }
      }
    }
  }
}

}  // namespace

GemmBlocking gemm_blocking() { return {MC, KC, NC, MR, NR}; }

void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = (transa == Trans::NoTrans) ? a.cols() : a.rows();
  assert(((transa == Trans::NoTrans) ? a.rows() : a.cols()) == m);
  assert(((transb == Trans::NoTrans) ? b.rows() : b.cols()) == k);
  assert(((transb == Trans::NoTrans) ? b.cols() : b.rows()) == n);

  scale_matrix(c, beta);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  if (m * n * k <= 16 * 16 * 16) {
    gemm_small(transa, transb, alpha, a, b, c, k);
    return;
  }

  // Packing workspaces come from the per-thread scratch pool: after the
  // first call on a worker these are pointer swaps, not allocations.
  ScratchBuffer a_buf(static_cast<std::size_t>(MC * KC));
  ScratchBuffer b_buf(static_cast<std::size_t>(NC * KC));

  gemm_blocked(
      m, n, k, alpha,
      [&](idx ic, idx pc, idx mc, idx kc) -> const double* {
        pack_a_block(a, transa, ic, pc, mc, kc, a_buf.data());
        return a_buf.data();
      },
      [&](idx pc, idx jc, idx kc, idx nc) -> const double* {
        pack_b_block(b, transb, pc, jc, kc, nc, b_buf.data());
        return b_buf.data();
      },
      c);
}

void gemm_packed(double alpha, const PackedPanel& a_packed, Trans transb,
                 ConstMatrixView b, double beta, MatrixView c) {
  assert(a_packed.operand() == PackOperand::A);
  assert(a_packed.valid());
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = a_packed.cols();
  assert(a_packed.rows() == m);
  assert(((transb == Trans::NoTrans) ? b.rows() : b.cols()) == k);
  assert(((transb == Trans::NoTrans) ? b.cols() : b.rows()) == n);

  scale_matrix(c, beta);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  ScratchBuffer b_buf(static_cast<std::size_t>(NC * KC));
  gemm_blocked(
      m, n, k, alpha,
      [&](idx ic, idx pc, idx /*mc*/, idx /*kc*/) -> const double* {
        return a_packed.a_block(ic, pc);
      },
      [&](idx pc, idx jc, idx kc, idx nc) -> const double* {
        pack_b_block(b, transb, pc, jc, kc, nc, b_buf.data());
        return b_buf.data();
      },
      c);
}

void gemm_packed(Trans transa, double alpha, ConstMatrixView a,
                 const PackedPanel& b_packed, double beta, MatrixView c) {
  assert(b_packed.operand() == PackOperand::B);
  assert(b_packed.valid());
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = b_packed.rows();
  assert(b_packed.cols() == n);
  assert(((transa == Trans::NoTrans) ? a.rows() : a.cols()) == m);
  assert(((transa == Trans::NoTrans) ? a.cols() : a.rows()) == k);

  scale_matrix(c, beta);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  ScratchBuffer a_buf(static_cast<std::size_t>(MC * KC));
  gemm_blocked(
      m, n, k, alpha,
      [&](idx ic, idx pc, idx mc, idx kc) -> const double* {
        pack_a_block(a, transa, ic, pc, mc, kc, a_buf.data());
        return a_buf.data();
      },
      [&](idx pc, idx jc, idx /*kc*/, idx /*nc*/) -> const double* {
        return b_packed.b_block(pc, jc);
      },
      c);
}

}  // namespace camult::blas
