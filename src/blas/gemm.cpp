#include "blas/gemm.hpp"

#include <cassert>
#include <cstring>

#include "blas/kernel.hpp"
#include "blas/pack.hpp"

namespace camult::blas {
namespace {

inline double op_elem(ConstMatrixView a, Trans trans, idx i, idx p) {
  return trans == Trans::NoTrans ? a(i, p) : a(p, i);
}

void scale_matrix(MatrixView c, double beta) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (idx j = 0; j < c.cols(); ++j) {
      std::memset(c.col_ptr(j), 0, static_cast<std::size_t>(c.rows()) * sizeof(double));
    }
    return;
  }
  for (idx j = 0; j < c.cols(); ++j) {
    double* col = c.col_ptr(j);
    for (idx i = 0; i < c.rows(); ++i) col[i] *= beta;
  }
}

// Direct triple loop for problems too small to amortize packing. No
// zero-skip on B elements: 0 * NaN must stay NaN so non-finite values in A
// propagate exactly like they do through the blocked/packed path (and like
// the health monitor's NaN screening assumes).
void gemm_small(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                ConstMatrixView b, MatrixView c, idx k) {
  const idx m = c.rows();
  const idx n = c.cols();
  for (idx j = 0; j < n; ++j) {
    double* cc = c.col_ptr(j);
    for (idx p = 0; p < k; ++p) {
      const double bv = alpha * op_elem(b, transb, p, j);
      if (transa == Trans::NoTrans) {
        const double* ac = a.col_ptr(p);
        for (idx i = 0; i < m; ++i) cc[i] += ac[i] * bv;
      } else {
        // op(A)(i, p) = a(p, i): row p of a, stride ld.
        for (idx i = 0; i < m; ++i) cc[i] += a(p, i) * bv;
      }
    }
  }
}

// Macro-block driver shared by gemm and both gemm_packed overloads: walks
// the jc / pc / ic cache-block loops and feeds the dispatched microkernel.
// The getters supply a packed (mc x kc) A block (get_a(ic, pc, mc, kc)) and
// a packed (kc x nc) B block (get_b(pc, jc, kc, nc)) — either freshly
// packed into per-call scratch or served from a pre-packed PackedPanel.
// Since the loop structure, blocking and microkernel are shared, packed and
// unpacked runs produce bit-identical results on this path.
template <typename GetA, typename GetB>
void gemm_blocked(const GemmBlocking& blk, MicrokernelFn kern, idx m, idx n,
                  idx k, double alpha, GetA&& get_a, GetB&& get_b,
                  MatrixView c) {
  std::int64_t kernel_bytes = 0;
  std::int64_t c_bytes = 0;
  for (idx jc = 0; jc < n; jc += blk.nc) {
    const idx nc = std::min<idx>(blk.nc, n - jc);
    for (idx pc = 0; pc < k; pc += blk.kc) {
      const idx kc = std::min<idx>(blk.kc, k - pc);
      const double* bblk = get_b(pc, jc, kc, nc);
      for (idx ic = 0; ic < m; ic += blk.mc) {
        const idx mc = std::min<idx>(blk.mc, m - ic);
        const double* ablk = get_a(ic, pc, mc, kc);
        for (idx jr = 0; jr < nc; jr += blk.nr) {
          const idx nr_eff = std::min<idx>(blk.nr, nc - jr);
          const double* bp = bblk + (jr / blk.nr) * (blk.nr * kc);
          for (idx ir = 0; ir < mc; ir += blk.mr) {
            const idx mr_eff = std::min<idx>(blk.mr, mc - ir);
            const double* ap = ablk + (ir / blk.mr) * (blk.mr * kc);
            double* cblk = c.data() + (ic + ir) + (jc + jr) * c.ld();
            kern(kc, alpha, ap, bp, cblk, c.ld(), mr_eff, nr_eff);
            kernel_bytes += (blk.mr + blk.nr) * kc * 8;
            c_bytes += mr_eff * nr_eff * 16;
          }
        }
      }
    }
  }
  GemmTraffic& traffic = detail::gemm_traffic_tls();
  traffic.kernel_bytes += kernel_bytes;
  traffic.c_bytes += c_bytes;
}

}  // namespace

GemmBlocking gemm_blocking() {
  // The blocking a large square multiply would get right now (override and
  // tuning table applied) — benchmarks/tests introspection, not a contract
  // for any particular call.
  return active_blocking(4096, 4096, 4096);
}

void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = (transa == Trans::NoTrans) ? a.cols() : a.rows();
  assert(((transa == Trans::NoTrans) ? a.rows() : a.cols()) == m);
  assert(((transb == Trans::NoTrans) ? b.rows() : b.cols()) == k);
  assert(((transb == Trans::NoTrans) ? b.cols() : b.rows()) == n);

  scale_matrix(c, beta);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  if (m * n * k <= 16 * 16 * 16) {
    gemm_small(transa, transb, alpha, a, b, c, k);
    return;
  }

  const KernelInfo& kern = active_kernel();
  const GemmBlocking blk = active_blocking(m, n, k);

  // Packing workspaces come from the per-thread scratch pool: after the
  // first call on a worker these are pointer swaps, not allocations.
  ScratchBuffer a_buf(static_cast<std::size_t>(blk.mc * blk.kc));
  ScratchBuffer b_buf(static_cast<std::size_t>(blk.nc * blk.kc));

  gemm_blocked(
      blk, kern.fn, m, n, k, alpha,
      [&](idx ic, idx pc, idx mc, idx kc) -> const double* {
        pack_a_block(a, transa, ic, pc, mc, kc, blk.mr, a_buf.data());
        return a_buf.data();
      },
      [&](idx pc, idx jc, idx kc, idx nc) -> const double* {
        pack_b_block(b, transb, pc, jc, kc, nc, blk.nr, b_buf.data());
        return b_buf.data();
      },
      c);
}

void gemm_packed(double alpha, const PackedPanel& a_packed, Trans transb,
                 ConstMatrixView b, double beta, MatrixView c) {
  assert(a_packed.operand() == PackOperand::A);
  assert(a_packed.valid());
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = a_packed.cols();
  assert(a_packed.rows() == m);
  assert(((transb == Trans::NoTrans) ? b.rows() : b.cols()) == k);
  assert(((transb == Trans::NoTrans) ? b.cols() : b.rows()) == n);

  scale_matrix(c, beta);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  // The panel fixes both the kernel (its MR x NR layout is baked into the
  // packed data) and the cache blocking, so a panel packed before a kernel
  // switch or tuning reload still multiplies correctly.
  const GemmBlocking& blk = a_packed.blocking();
  const MicrokernelFn kern = a_packed.kernel()->fn;

  ScratchBuffer b_buf(static_cast<std::size_t>(blk.nc * blk.kc));
  gemm_blocked(
      blk, kern, m, n, k, alpha,
      [&](idx ic, idx pc, idx /*mc*/, idx /*kc*/) -> const double* {
        return a_packed.a_block(ic, pc);
      },
      [&](idx pc, idx jc, idx kc, idx nc) -> const double* {
        pack_b_block(b, transb, pc, jc, kc, nc, blk.nr, b_buf.data());
        return b_buf.data();
      },
      c);
}

void gemm_packed(Trans transa, double alpha, ConstMatrixView a,
                 const PackedPanel& b_packed, double beta, MatrixView c) {
  assert(b_packed.operand() == PackOperand::B);
  assert(b_packed.valid());
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = b_packed.rows();
  assert(b_packed.cols() == n);
  assert(((transa == Trans::NoTrans) ? a.rows() : a.cols()) == m);
  assert(((transa == Trans::NoTrans) ? a.cols() : a.rows()) == k);

  scale_matrix(c, beta);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  const GemmBlocking& blk = b_packed.blocking();
  const MicrokernelFn kern = b_packed.kernel()->fn;

  ScratchBuffer a_buf(static_cast<std::size_t>(blk.mc * blk.kc));
  gemm_blocked(
      blk, kern, m, n, k, alpha,
      [&](idx ic, idx pc, idx mc, idx kc) -> const double* {
        pack_a_block(a, transa, ic, pc, mc, kc, blk.mr, a_buf.data());
        return a_buf.data();
      },
      [&](idx pc, idx jc, idx /*kc*/, idx /*nc*/) -> const double* {
        return b_packed.b_block(pc, jc);
      },
      c);
}

}  // namespace camult::blas
