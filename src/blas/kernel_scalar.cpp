// kernel_scalar.cpp — portable C microkernel, 8 x 6. No hand vectorization
// and no ISA flags beyond the project baseline, so this TU runs anywhere
// the binary loads; it is the guaranteed fallback the dispatcher can always
// select. The register tile matches the AVX2 kernel so both share the same
// packed-panel layout and default blocking.
#include "blas/kernel_impl.hpp"

namespace camult::blas {
namespace {

constexpr idx MR = 8;
constexpr idx NR = 6;

void microkernel_scalar(idx kc, double alpha, const double* __restrict ap,
                        const double* __restrict bp, double* __restrict c,
                        idx ldc, idx mr_eff, idx nr_eff) {
  double acc[MR * NR];
  for (idx i = 0; i < MR * NR; ++i) acc[i] = 0.0;
  for (idx p = 0; p < kc; ++p) {
    const double* a = ap + p * MR;
    const double* b = bp + p * NR;
    for (idx cj = 0; cj < NR; ++cj) {
      const double bv = b[cj];
      double* accc = acc + cj * MR;
      for (idx ri = 0; ri < MR; ++ri) accc[ri] += a[ri] * bv;
    }
  }
  // One store loop for full and fringe tiles (a full tile is just
  // mr_eff == MR, nr_eff == NR): a C element must round the same way
  // whether its tile happened to be interior or on the fringe, so the
  // padded-vs-fringe bit-parity tests can hold for every alpha.
  for (idx cj = 0; cj < nr_eff; ++cj) {
    double* cc = c + cj * ldc;
    const double* accc = acc + cj * MR;
    for (idx ri = 0; ri < mr_eff; ++ri) cc[ri] += alpha * accc[ri];
  }
}

}  // namespace

namespace detail {

KernelInfo make_scalar_kernel() {
  KernelInfo k;
  k.name = "scalar";
  k.fn = &microkernel_scalar;
  k.blocking = {/*mc=*/192, /*kc=*/256, /*nc=*/768, MR, NR};
  k.compiled = true;
  k.supported = false;  // dispatcher sets this (always true for scalar)
  return k;
}

}  // namespace detail
}  // namespace camult::blas
