#include "blas/syrk.hpp"

#include <cassert>

namespace camult::blas {

void syrk(Uplo uplo, Trans trans, double alpha, ConstMatrixView a, double beta,
          MatrixView c) {
  assert(c.rows() == c.cols());
  const idx n = c.rows();
  const idx k = (trans == Trans::NoTrans) ? a.cols() : a.rows();
  assert(((trans == Trans::NoTrans) ? a.rows() : a.cols()) == n);

  for (idx j = 0; j < n; ++j) {
    const idx i_lo = (uplo == Uplo::Lower) ? j : 0;
    const idx i_hi = (uplo == Uplo::Lower) ? n : j + 1;
    double* cc = c.col_ptr(j);
    if (beta != 1.0) {
      for (idx i = i_lo; i < i_hi; ++i) cc[i] *= beta;
    }
    if (alpha == 0.0) continue;
    if (trans == Trans::NoTrans) {
      // C(:,j) += alpha * A * A(j,:)^T over the referenced rows. No
      // zero-skip on t: 0 * NaN must stay NaN so non-finite values in A
      // propagate (the Trans branch and gemm already behave this way).
      for (idx p = 0; p < k; ++p) {
        const double t = alpha * a(j, p);
        const double* ac = a.col_ptr(p);
        for (idx i = i_lo; i < i_hi; ++i) cc[i] += t * ac[i];
      }
    } else {
      // C(i,j) += alpha * dot(A(:,i), A(:,j)).
      const double* aj = a.col_ptr(j);
      for (idx i = i_lo; i < i_hi; ++i) {
        const double* ai = a.col_ptr(i);
        double s = 0.0;
        for (idx p = 0; p < k; ++p) s += ai[p] * aj[p];
        cc[i] += alpha * s;
      }
    }
  }
}

}  // namespace camult::blas
