// tuning.cpp — hardened loader/saver for the autotune table (tuning.hpp).
//
// The parser is a deliberately small recursive-descent JSON reader that
// accepts exactly the shapes the tuning file uses (objects, arrays,
// strings, integer numbers, bools/null for forward compatibility) with
// bounded depth and size. It is self-contained so camult_blas keeps zero
// dependencies on the bench/runtime layers.
#include "blas/tuning.hpp"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "blas/kernel.hpp"

namespace camult::blas {
namespace {

constexpr std::size_t kMaxFileBytes = 1 << 20;  // 1 MiB
constexpr std::size_t kMaxEntries = 256;
constexpr int kMaxDepth = 8;
constexpr std::size_t kMaxStringLen = 64;

// ---- minimal strict JSON ------------------------------------------------

struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  // Returns false (with error_) instead of throwing: a hostile file must be
  // cheap to reject.
  bool parse(Json& out) {
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after document");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " (at byte " + std::to_string(pos_) + ")";
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool string_token(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("truncated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: return fail("unsupported escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("control character in string");
      }
      if (out.size() >= kMaxStringLen) return fail("string too long");
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool number_token(double& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || pos_ - start > 32) return fail("bad number");
    char* end = nullptr;
    const std::string tok(s_.substr(start, pos_ - start));
    out = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return fail("bad number");
    return true;
  }

  bool value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out.type = Json::Type::Object;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_token(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
        ++pos_;
        Json v;
        if (!value(v, depth + 1)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        if (out.object.size() > 2 * kMaxEntries) return fail("object too big");
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.type = Json::Type::Array;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Json v;
        if (!value(v, depth + 1)) return false;
        out.array.push_back(std::move(v));
        if (out.array.size() > 4 * kMaxEntries) return fail("array too big");
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.type = Json::Type::String;
      return string_token(out.string);
    }
    if (c == 't') {
      out.type = Json::Type::Bool;
      out.boolean = true;
      return literal("true") || fail("bad literal");
    }
    if (c == 'f') {
      out.type = Json::Type::Bool;
      out.boolean = false;
      return literal("false") || fail("bad literal");
    }
    if (c == 'n') {
      out.type = Json::Type::Null;
      return literal("null") || fail("bad literal");
    }
    out.type = Json::Type::Number;
    return number_token(out.number);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---- validation ---------------------------------------------------------

bool known_shape(std::string_view s) {
  return s == "tiny" || s == "panel" || s == "tall" || s == "square";
}

// Integer field in a sane range; rejects fractions, NaN-ish text never gets
// here (parser only accepts digit runs).
bool get_idx(const Json& obj, const char* key, idx& out) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->type != Json::Type::Number) return false;
  const double d = v->number;
  if (d < 1.0 || d > 1e7 || d != static_cast<double>(static_cast<idx>(d))) {
    return false;
  }
  out = static_cast<idx>(d);
  return true;
}

bool get_string(const Json& obj, const char* key, std::string& out) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->type != Json::Type::String || v->string.empty()) {
    return false;
  }
  out = v->string;
  return true;
}

TuningTable reject(const std::string& why) {
  TuningTable t;
  t.error = why;
  return t;
}

std::mutex g_table_mu;
TuningTable* g_table = nullptr;  // heap + leaked: outlives static teardown

}  // namespace

const TuningEntry* TuningTable::find(std::string_view arch,
                                     std::string_view kernel,
                                     std::string_view shape) const {
  const TuningEntry* best = nullptr;
  for (const TuningEntry& e : entries) {
    if (e.arch == arch && e.kernel == kernel && e.shape == shape) best = &e;
  }
  return best;
}

std::string_view shape_class(idx m, idx n, idx k) {
  const bool dims_known = m >= 0 && n >= 0;
  if (dims_known && m <= 64 && n <= 64 && k <= 64) return "tiny";
  if (k <= 64) return "panel";
  if (dims_known && m >= 4 * n) return "tall";
  return "square";
}

TuningTable parse_tuning(std::string_view text) {
  if (text.size() > kMaxFileBytes) return reject("file exceeds 1 MiB");
  Json root;
  Parser p(text);
  if (!p.parse(root)) return reject("invalid JSON: " + p.error());
  if (root.type != Json::Type::Object) return reject("root is not an object");

  const Json* version = root.find("version");
  if (version == nullptr || version->type != Json::Type::Number ||
      version->number != 1.0) {
    return reject("missing or unsupported \"version\" (want 1)");
  }
  const Json* entries = root.find("entries");
  if (entries == nullptr || entries->type != Json::Type::Array) {
    return reject("missing \"entries\" array");
  }
  if (entries->array.size() > kMaxEntries) {
    return reject("too many entries (max 256)");
  }

  TuningTable table;
  for (std::size_t i = 0; i < entries->array.size(); ++i) {
    const Json& ej = entries->array[i];
    const std::string where = "entries[" + std::to_string(i) + "]";
    if (ej.type != Json::Type::Object) return reject(where + " not an object");
    TuningEntry e;
    if (!get_string(ej, "arch", e.arch)) {
      return reject(where + ": bad \"arch\"");
    }
    if (!get_string(ej, "kernel", e.kernel)) {
      return reject(where + ": bad \"kernel\"");
    }
    if (!get_string(ej, "shape", e.shape) || !known_shape(e.shape)) {
      return reject(where + ": bad \"shape\"");
    }
    if (!get_idx(ej, "mc", e.mc) || !get_idx(ej, "kc", e.kc) ||
        !get_idx(ej, "nc", e.nc)) {
      return reject(where + ": mc/kc/nc must be integers in [1, 1e7]");
    }
    // The named kernel pins MR/NR; blocking must be layout-compatible with
    // it even when the entry is for another arch — a typo'd kernel name or
    // a non-multiple block is a corrupt file, not advice.
    const KernelInfo* kern = nullptr;
    for (const KernelInfo& k : kernel_registry()) {
      if (e.kernel == k.name) kern = &k;
    }
    if (kern == nullptr) return reject(where + ": unknown kernel name");
    const GemmBlocking blk{e.mc, e.kc, e.nc, kern->blocking.mr,
                           kern->blocking.nr};
    if (!valid_blocking(blk)) {
      return reject(where + ": blocking out of range or not a multiple of "
                            "the kernel's MR/NR");
    }
    table.entries.push_back(std::move(e));
  }
  table.loaded = true;
  return table;
}

TuningTable load_tuning_file(const std::string& path) {
  if (path.empty()) return TuningTable{};
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return TuningTable{};  // missing file: defaults, silently
  if (size > kMaxFileBytes) return reject("file exceeds 1 MiB");
  std::ifstream in(path, std::ios::binary);
  if (!in) return reject("cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_tuning(buf.str());
}

std::string tuning_file_path() {
  if (const char* env = std::getenv("CAMULT_TUNE_FILE");
      env != nullptr && *env != '\0') {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && *xdg != '\0') {
    return std::string(xdg) + "/camult/tuning.json";
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && *home != '\0') {
    return std::string(home) + "/.cache/camult/tuning.json";
  }
  return {};
}

const TuningTable& tuning_table() {
  std::lock_guard<std::mutex> lock(g_table_mu);
  if (g_table == nullptr) {
    g_table = new TuningTable(load_tuning_file(tuning_file_path()));
  }
  return *g_table;
}

void reload_tuning() {
  std::lock_guard<std::mutex> lock(g_table_mu);
  // The old table is intentionally leaked, not deleted: callers may still
  // hold references/entry pointers from before the reload (reloads happen
  // only in tests and tools/autotune, so the leak is bounded and harmless,
  // while a delete would dangle them).
  g_table = nullptr;
}

bool save_tuning_file(const std::string& path,
                      const std::vector<TuningEntry>& entries) {
  if (path.empty()) return false;
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    // A pre-existing directory is fine; only a hard failure matters and it
    // will surface as the ofstream failing below.
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"version\": 1, \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TuningEntry& e = entries[i];
    out << (i == 0 ? "\n" : ",\n")
        << "  {\"arch\": \"" << e.arch << "\", \"kernel\": \"" << e.kernel
        << "\", \"shape\": \"" << e.shape << "\", \"mc\": " << e.mc
        << ", \"kc\": " << e.kc << ", \"nc\": " << e.nc << "}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out.flush());
}

}  // namespace camult::blas
