// level1.hpp — BLAS level-1 vector kernels on strided vectors.
//
// Vectors are described by (pointer, length, stride) so both matrix columns
// (stride 1) and matrix rows (stride = ld) can be passed without copies.
#pragma once

#include "matrix/view.hpp"

namespace camult::blas {

/// Index of the element with the largest |value| (first on ties); -1 if n==0.
idx iamax(idx n, const double* x, idx incx);

/// x <-> y elementwise.
void swap(idx n, double* x, idx incx, double* y, idx incy);

/// x *= alpha.
void scal(idx n, double alpha, double* x, idx incx);

/// y += alpha * x.
void axpy(idx n, double alpha, const double* x, idx incx, double* y, idx incy);

/// Sum of x_i * y_i.
double dot(idx n, const double* x, idx incx, const double* y, idx incy);

/// Euclidean norm, computed with scaling to avoid overflow/underflow.
double nrm2(idx n, const double* x, idx incx);

/// y = x.
void copy(idx n, const double* x, idx incx, double* y, idx incy);

/// Sum of |x_i|.
double asum(idx n, const double* x, idx incx);

}  // namespace camult::blas
