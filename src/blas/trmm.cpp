#include "blas/trmm.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "blas/kernel.hpp"
#include "blas/level1.hpp"
#include "blas/level2.hpp"

namespace camult::blas {
namespace {

// Same register-tile-derived cutoff as trsm.cpp.
idx base_size() { return std::max<idx>(32, 2 * active_kernel().blocking.mr); }

inline Trans flip(Trans t) {
  return t == Trans::NoTrans ? Trans::Trans : Trans::NoTrans;
}

void trmm_base(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
               ConstMatrixView a, MatrixView b) {
  if (side == Side::Left) {
    for (idx j = 0; j < b.cols(); ++j) {
      trmv(uplo, trans, diag, a, b.col_ptr(j), 1);
      if (alpha != 1.0) scal(b.rows(), alpha, b.col_ptr(j), 1);
    }
  } else {
    // B * op(A) = (op(A)^T * B^T)^T: apply trmv to each row of B.
    for (idx i = 0; i < b.rows(); ++i) {
      trmv(uplo, flip(trans), diag, a, b.data() + i, b.ld());
      if (alpha != 1.0) scal(b.cols(), alpha, b.data() + i, b.ld());
    }
  }
}

void trmm_rec(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
              ConstMatrixView a, MatrixView b) {
  const idx n_tri = a.rows();
  if (n_tri <= base_size()) {
    trmm_base(side, uplo, trans, diag, alpha, a, b);
    return;
  }
  const idx h = n_tri / 2;
  const idx r = n_tri - h;
  ConstMatrixView a11 = a.block(0, 0, h, h);
  ConstMatrixView a22 = a.block(h, h, r, r);

  if (side == Side::Left) {
    MatrixView b1 = b.rows_range(0, h);
    MatrixView b2 = b.rows_range(h, r);
    if (uplo == Uplo::Upper && trans == Trans::NoTrans) {
      ConstMatrixView a12 = a.block(0, h, h, r);
      trmm_rec(side, uplo, trans, diag, alpha, a11, b1);
      gemm(Trans::NoTrans, Trans::NoTrans, alpha, a12, b2, 1.0, b1);
      trmm_rec(side, uplo, trans, diag, alpha, a22, b2);
    } else if (uplo == Uplo::Upper && trans == Trans::Trans) {
      ConstMatrixView a12 = a.block(0, h, h, r);
      trmm_rec(side, uplo, trans, diag, alpha, a22, b2);
      gemm(Trans::Trans, Trans::NoTrans, alpha, a12, b1, 1.0, b2);
      trmm_rec(side, uplo, trans, diag, alpha, a11, b1);
    } else if (uplo == Uplo::Lower && trans == Trans::NoTrans) {
      ConstMatrixView a21 = a.block(h, 0, r, h);
      trmm_rec(side, uplo, trans, diag, alpha, a22, b2);
      gemm(Trans::NoTrans, Trans::NoTrans, alpha, a21, b1, 1.0, b2);
      trmm_rec(side, uplo, trans, diag, alpha, a11, b1);
    } else {  // Lower, Trans
      ConstMatrixView a21 = a.block(h, 0, r, h);
      trmm_rec(side, uplo, trans, diag, alpha, a11, b1);
      gemm(Trans::Trans, Trans::NoTrans, alpha, a21, b2, 1.0, b1);
      trmm_rec(side, uplo, trans, diag, alpha, a22, b2);
    }
  } else {
    MatrixView b1 = b.cols_range(0, h);
    MatrixView b2 = b.cols_range(h, r);
    if (uplo == Uplo::Upper && trans == Trans::NoTrans) {
      ConstMatrixView a12 = a.block(0, h, h, r);
      trmm_rec(side, uplo, trans, diag, alpha, a22, b2);
      gemm(Trans::NoTrans, Trans::NoTrans, alpha, b1, a12, 1.0, b2);
      trmm_rec(side, uplo, trans, diag, alpha, a11, b1);
    } else if (uplo == Uplo::Upper && trans == Trans::Trans) {
      ConstMatrixView a12 = a.block(0, h, h, r);
      trmm_rec(side, uplo, trans, diag, alpha, a11, b1);
      gemm(Trans::NoTrans, Trans::Trans, alpha, b2, a12, 1.0, b1);
      trmm_rec(side, uplo, trans, diag, alpha, a22, b2);
    } else if (uplo == Uplo::Lower && trans == Trans::NoTrans) {
      ConstMatrixView a21 = a.block(h, 0, r, h);
      trmm_rec(side, uplo, trans, diag, alpha, a11, b1);
      gemm(Trans::NoTrans, Trans::NoTrans, alpha, b2, a21, 1.0, b1);
      trmm_rec(side, uplo, trans, diag, alpha, a22, b2);
    } else {  // Lower, Trans
      ConstMatrixView a21 = a.block(h, 0, r, h);
      trmm_rec(side, uplo, trans, diag, alpha, a22, b2);
      gemm(Trans::NoTrans, Trans::Trans, alpha, b1, a21, 1.0, b2);
      trmm_rec(side, uplo, trans, diag, alpha, a11, b1);
    }
  }
}

}  // namespace

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  assert(a.rows() == a.cols());
  const idx n_tri = (side == Side::Left) ? b.rows() : b.cols();
  assert(a.rows() == n_tri);
  (void)n_tri;
  if (b.rows() == 0 || b.cols() == 0) return;
  trmm_rec(side, uplo, trans, diag, alpha, a, b);
}

}  // namespace camult::blas
