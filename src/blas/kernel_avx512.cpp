// kernel_avx512.cpp — hand-vectorized 16 x 8 AVX-512F microkernel. Compiled
// with -mavx512f (per-file flag, see src/blas/CMakeLists.txt); only the
// dispatcher may call it, after __builtin_cpu_supports("avx512f").
//
// Register budget: 16 zmm accumulators (2 per column x 8 columns) + 2 A
// loads + 1 B broadcast + 1 alpha = 20 of 32 — wide enough to hide the
// 4-cycle FMA latency on both ports, with room left for the loads.
// The wider 16-row tile doubles flops per packed-B byte relative to the
// 8 x 6 AVX2 tile (Demmel's communication argument applied to registers).
#include "blas/kernel_impl.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>

#include <cmath>

namespace camult::blas {
namespace {

constexpr idx MR = 16;
constexpr idx NR = 8;

void microkernel_avx512(idx kc, double alpha, const double* __restrict ap,
                        const double* __restrict bp, double* __restrict c,
                        idx ldc, idx mr_eff, idx nr_eff) {
  __m512d acc_lo[NR];
  __m512d acc_hi[NR];
  for (int j = 0; j < NR; ++j) {
    acc_lo[j] = _mm512_setzero_pd();
    acc_hi[j] = _mm512_setzero_pd();
  }
  for (idx p = 0; p < kc; ++p) {
    const __m512d a0 = _mm512_loadu_pd(ap + p * MR);
    const __m512d a1 = _mm512_loadu_pd(ap + p * MR + 8);
    const double* b = bp + p * NR;
    for (int j = 0; j < NR; ++j) {
      const __m512d bv = _mm512_set1_pd(b[j]);
      acc_lo[j] = _mm512_fmadd_pd(a0, bv, acc_lo[j]);
      acc_hi[j] = _mm512_fmadd_pd(a1, bv, acc_hi[j]);
    }
  }
  if (mr_eff == MR && nr_eff == NR) {
    const __m512d va = _mm512_set1_pd(alpha);
    for (int j = 0; j < NR; ++j) {
      double* cc = c + j * ldc;
      _mm512_storeu_pd(cc, _mm512_fmadd_pd(va, acc_lo[j],
                                           _mm512_loadu_pd(cc)));
      _mm512_storeu_pd(cc + 8, _mm512_fmadd_pd(va, acc_hi[j],
                                               _mm512_loadu_pd(cc + 8)));
    }
  } else {
    alignas(64) double acc[MR * NR];
    for (int j = 0; j < NR; ++j) {
      _mm512_store_pd(acc + j * MR, acc_lo[j]);
      _mm512_store_pd(acc + j * MR + 8, acc_hi[j]);
    }
    // Fused like the vector path above — see the AVX2 kernel for why.
    for (idx cj = 0; cj < nr_eff; ++cj) {
      double* cc = c + cj * ldc;
      const double* accc = acc + cj * MR;
      for (idx ri = 0; ri < mr_eff; ++ri) {
        cc[ri] = std::fma(alpha, accc[ri], cc[ri]);
      }
    }
  }
}

}  // namespace

namespace detail {

KernelInfo make_avx512_kernel() {
  KernelInfo k;
  k.name = "avx512";
  k.fn = &microkernel_avx512;
  // MC stays a multiple of MR=16 and NC of NR=8; same L2/L3 targets as the
  // narrower kernels so the slab-pool footprint is unchanged by dispatch.
  k.blocking = {/*mc=*/192, /*kc=*/256, /*nc=*/768, MR, NR};
  k.compiled = true;
  k.supported = false;  // dispatcher decides from cpuid
  return k;
}

}  // namespace detail
}  // namespace camult::blas

#else  // toolchain could not build AVX-512: register a stub

namespace camult::blas::detail {

KernelInfo make_avx512_kernel() {
  KernelInfo k;
  k.name = "avx512";
  k.fn = nullptr;
  k.blocking = {192, 256, 768, 16, 8};
  k.compiled = false;
  k.supported = false;
  return k;
}

}  // namespace camult::blas::detail

#endif
