#include "blas/pack.hpp"

#include <algorithm>
#include <cassert>
#include <new>
#include <vector>

// AddressSanitizer poisoning for pooled slabs (see pack.hpp). Detect ASan
// under both GCC (__SANITIZE_ADDRESS__) and Clang (__has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define CAMULT_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CAMULT_POOL_ASAN 1
#endif
#endif
#ifdef CAMULT_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace camult::blas {
namespace {

constexpr std::align_val_t kAlign{64};
// Slabs cached per thread. The library's own usage needs at most a handful
// live at once (gemm's A+B scratch, a packed panel being built); anything
// beyond this is freed eagerly so an idle worker does not sit on memory.
constexpr std::size_t kMaxCachedSlabs = 8;

struct Slab {
  double* ptr = nullptr;
  std::size_t capacity = 0;  // doubles
};

void poison_slab(const Slab& s) {
#ifdef CAMULT_POOL_ASAN
  __asan_poison_memory_region(s.ptr, s.capacity * sizeof(double));
#else
  (void)s;
#endif
}

void unpoison_slab(const Slab& s) {
#ifdef CAMULT_POOL_ASAN
  __asan_unpoison_memory_region(s.ptr, s.capacity * sizeof(double));
#else
  (void)s;
#endif
}

struct Pool {
  std::vector<Slab> free;
  BufferPoolStats stats;

  ~Pool() {
    for (const Slab& s : free) {
      unpoison_slab(s);
      ::operator delete[](s.ptr, kAlign);
    }
  }
};

// One pool per thread: acquire/release never synchronize, which is what
// keeps the pool off the TSAN radar and off the allocator lock. A buffer
// released on a different thread than it was acquired on just migrates to
// the releasing thread's pool — slabs are plain memory.
//
// Thread-exit hazard: a ScratchBuffer can legally outlive the releasing
// thread's pool (e.g. a buffer stashed in another thread_local whose
// destructor runs AFTER the pool's, or — before WorkerPool existed — a
// buffer released while a TaskGraph worker was already unwinding its TLS).
// `thread_local Pool` alone makes that a use-after-destroy. The pool is
// therefore reached through two TRIVIALLY-destructible thread_locals (a
// raw pointer and a flag), which stay readable for the whole teardown:
// once PoolOwner's destructor has run, pool() returns nullptr and every
// caller falls back to plain aligned new/delete.
thread_local Pool* tl_pool = nullptr;
thread_local bool tl_pool_dead = false;

struct PoolOwner {
  Pool pool;
  PoolOwner() { tl_pool = &pool; }
  ~PoolOwner() {
    tl_pool = nullptr;
    tl_pool_dead = true;
  }
};

// The calling thread's pool, or nullptr once it has been destroyed.
Pool* pool() {
  if (tl_pool_dead) return nullptr;
  thread_local PoolOwner owner;  // first call constructs; sets tl_pool
  return tl_pool;
}

double* allocate_slab(std::size_t n_doubles) {
  return static_cast<double*>(
      ::operator new[](n_doubles * sizeof(double), kAlign));
}

void free_slab(const Slab& s) {
  unpoison_slab(s);
  ::operator delete[](s.ptr, kAlign);
}

}  // namespace

BufferPoolStats& BufferPoolStats::operator+=(const BufferPoolStats& o) {
  acquires += o.acquires;
  pool_hits += o.pool_hits;
  allocs += o.allocs;
  releases += o.releases;
  frees += o.frees;
  return *this;
}

BufferPoolStats buffer_pool_stats() {
  Pool* p = pool();
  return p != nullptr ? p->stats : BufferPoolStats{};
}

void buffer_pool_trim() {
  Pool* pp = pool();
  if (pp == nullptr) return;
  Pool& p = *pp;
  for (const Slab& s : p.free) {
    free_slab(s);
    ++p.stats.frees;
  }
  p.free.clear();
}

ScratchBuffer::ScratchBuffer(std::size_t n_doubles) : size_(n_doubles) {
  if (n_doubles == 0) return;
  Pool* pp = pool();
  if (pp == nullptr) {
    // Pool already destroyed (thread unwinding its TLS): plain allocation.
    capacity_ = (n_doubles + 511) & ~std::size_t{511};
    ptr_ = allocate_slab(capacity_);
    return;
  }
  Pool& p = *pp;
  ++p.stats.acquires;
  // Best fit: smallest cached slab that is large enough. The pool is tiny,
  // so a linear scan beats any cleverness.
  std::size_t best = p.free.size();
  for (std::size_t i = 0; i < p.free.size(); ++i) {
    if (p.free[i].capacity < n_doubles) continue;
    if (best == p.free.size() || p.free[i].capacity < p.free[best].capacity) {
      best = i;
    }
  }
  if (best != p.free.size()) {
    const Slab s = p.free[best];
    p.free.erase(p.free.begin() + static_cast<std::ptrdiff_t>(best));
    unpoison_slab(s);
    ptr_ = s.ptr;
    capacity_ = s.capacity;
    ++p.stats.pool_hits;
    return;
  }
  // Round the fresh slab up a little so many near-identical panel sizes
  // (ragged last iterations) can share one cached slab.
  capacity_ = (n_doubles + 511) & ~std::size_t{511};
  ptr_ = allocate_slab(capacity_);
  ++p.stats.allocs;
}

void ScratchBuffer::release() {
  if (ptr_ == nullptr) return;
  const Slab s{ptr_, capacity_};
  ptr_ = nullptr;
  size_ = 0;
  capacity_ = 0;
  Pool* pp = pool();
  if (pp == nullptr) {
    // Pool already destroyed: do not park the slab in dead storage.
    free_slab(s);
    return;
  }
  Pool& p = *pp;
  ++p.stats.releases;
  if (p.free.size() >= kMaxCachedSlabs) {
    // Keep the largest slabs: evict the smallest of (cached + incoming).
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < p.free.size(); ++i) {
      if (p.free[i].capacity < p.free[smallest].capacity) smallest = i;
    }
    if (p.free[smallest].capacity < s.capacity) {
      free_slab(p.free[smallest]);
      p.free[smallest] = s;
      poison_slab(s);
    } else {
      free_slab(s);
    }
    ++p.stats.frees;
    return;
  }
  p.free.push_back(s);
  poison_slab(s);
}

ScratchBuffer::~ScratchBuffer() { release(); }

ScratchBuffer::ScratchBuffer(ScratchBuffer&& other) noexcept
    : ptr_(other.ptr_), size_(other.size_), capacity_(other.capacity_) {
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.capacity_ = 0;
}

ScratchBuffer& ScratchBuffer::operator=(ScratchBuffer&& other) noexcept {
  if (this != &other) {
    release();
    ptr_ = other.ptr_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.ptr_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  return *this;
}

// ---- Packing kernels ----------------------------------------------------

void pack_a_block(ConstMatrixView a, Trans trans, idx i0, idx p0, idx mc,
                  idx kc, idx mr, double* buf) {
  const idx panels = (mc + mr - 1) / mr;
  for (idx ip = 0; ip < panels; ++ip) {
    const idx i_base = i0 + ip * mr;
    const idx rows = std::min<idx>(mr, i0 + mc - i_base);
    double* dst = buf + ip * (mr * kc);
    if (trans == Trans::NoTrans) {
      for (idx p = 0; p < kc; ++p) {
        const double* src = a.col_ptr(p0 + p) + i_base;
        for (idx r = 0; r < rows; ++r) dst[p * mr + r] = src[r];
        for (idx r = rows; r < mr; ++r) dst[p * mr + r] = 0.0;
      }
    } else {
      for (idx p = 0; p < kc; ++p) {
        for (idx r = 0; r < rows; ++r) {
          dst[p * mr + r] = a(p0 + p, i_base + r);
        }
        for (idx r = rows; r < mr; ++r) dst[p * mr + r] = 0.0;
      }
    }
  }
  // Communication accounting: source reads + padded packed writes.
  detail::gemm_traffic_tls().pack_bytes +=
      static_cast<std::int64_t>((mc + panels * mr) * kc) * 8;
}

void pack_b_block(ConstMatrixView b, Trans trans, idx p0, idx j0, idx kc,
                  idx nc, idx nr, double* buf) {
  const idx panels = (nc + nr - 1) / nr;
  for (idx jp = 0; jp < panels; ++jp) {
    const idx j_base = j0 + jp * nr;
    const idx cols = std::min<idx>(nr, j0 + nc - j_base);
    double* dst = buf + jp * (nr * kc);
    if (trans == Trans::NoTrans) {
      for (idx p = 0; p < kc; ++p) {
        for (idx c = 0; c < cols; ++c) {
          dst[p * nr + c] = b(p0 + p, j_base + c);
        }
        for (idx c = cols; c < nr; ++c) dst[p * nr + c] = 0.0;
      }
    } else {
      for (idx c = 0; c < cols; ++c) {
        const double* src = b.col_ptr(p0) + (j_base + c);
        // op(B)(p, j) = b(j, p): walk row j_base+c of b, stride ld.
        for (idx p = 0; p < kc; ++p) dst[p * nr + c] = src[p * b.ld()];
      }
      for (idx c = cols; c < nr; ++c) {
        for (idx p = 0; p < kc; ++p) dst[p * nr + c] = 0.0;
      }
    }
  }
  detail::gemm_traffic_tls().pack_bytes +=
      static_cast<std::int64_t>((nc + panels * nr) * kc) * 8;
}

// ---- PackedPanel --------------------------------------------------------

namespace {
idx round_up(idx v, idx unit) { return ((v + unit - 1) / unit) * unit; }

// Padded extent of the non-depth dimension: full cache blocks contribute
// their exact size (MC % MR == 0 / NC % NR == 0), the ragged last block is
// rounded up to the register tile.
idx padded_extent(idx extent, idx cache_block, idx reg_tile) {
  const idx full = (extent / cache_block) * cache_block;
  return full + round_up(extent - full, reg_tile);
}
}  // namespace

const double* PackedPanel::a_block(idx i0, idx p0) const {
  assert(op_ == PackOperand::A);
  assert(i0 >= 0 && i0 < rows_ && i0 % blk_.mc == 0);
  assert(p0 >= 0 && p0 < cols_ && p0 % blk_.kc == 0);
  const idx kc = std::min<idx>(blk_.kc, cols_ - p0);
  return buf_.data() + p0 * padded_ + i0 * kc;
}

const double* PackedPanel::b_block(idx p0, idx j0) const {
  assert(op_ == PackOperand::B);
  assert(p0 >= 0 && p0 < rows_ && p0 % blk_.kc == 0);
  assert(j0 >= 0 && j0 < cols_ && j0 % blk_.nc == 0);
  const idx kc = std::min<idx>(blk_.kc, rows_ - p0);
  return buf_.data() + p0 * padded_ + j0 * kc;
}

PackedPanel pack_a(ConstMatrixView a, Trans trans) {
  const idx m = (trans == Trans::NoTrans) ? a.rows() : a.cols();
  const idx k = (trans == Trans::NoTrans) ? a.cols() : a.rows();
  PackedPanel p;
  p.op_ = PackOperand::A;
  p.rows_ = m;
  p.cols_ = k;
  // The eventual gemm n is unknown at pack time (n = -1): the shape class
  // keys off m/k only. The panel records kernel + blocking so every
  // consumer walks the same layout regardless of later tuning changes.
  p.kernel_ = &active_kernel();
  p.blk_ = active_blocking(m, -1, k);
  p.padded_ = padded_extent(m, p.blk_.mc, p.blk_.mr);
  if (p.empty()) return p;
  p.buf_ = ScratchBuffer(static_cast<std::size_t>(p.padded_ * k));
  for (idx pc = 0; pc < k; pc += p.blk_.kc) {
    const idx kc = std::min<idx>(p.blk_.kc, k - pc);
    for (idx ic = 0; ic < m; ic += p.blk_.mc) {
      const idx mc = std::min<idx>(p.blk_.mc, m - ic);
      pack_a_block(a, trans, ic, pc, mc, kc, p.blk_.mr,
                   p.buf_.data() + pc * p.padded_ + ic * kc);
    }
  }
  return p;
}

PackedPanel pack_b(ConstMatrixView b, Trans trans) {
  const idx k = (trans == Trans::NoTrans) ? b.rows() : b.cols();
  const idx n = (trans == Trans::NoTrans) ? b.cols() : b.rows();
  PackedPanel p;
  p.op_ = PackOperand::B;
  p.rows_ = k;
  p.cols_ = n;
  p.kernel_ = &active_kernel();
  p.blk_ = active_blocking(-1, n, k);
  p.padded_ = padded_extent(n, p.blk_.nc, p.blk_.nr);
  if (p.empty()) return p;
  p.buf_ = ScratchBuffer(static_cast<std::size_t>(p.padded_ * k));
  for (idx pc = 0; pc < k; pc += p.blk_.kc) {
    const idx kc = std::min<idx>(p.blk_.kc, k - pc);
    for (idx jc = 0; jc < n; jc += p.blk_.nc) {
      const idx nc = std::min<idx>(p.blk_.nc, n - jc);
      pack_b_block(b, trans, pc, jc, kc, nc, p.blk_.nr,
                   p.buf_.data() + pc * p.padded_ + jc * kc);
    }
  }
  return p;
}

}  // namespace camult::blas
