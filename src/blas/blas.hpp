// blas.hpp — umbrella header for the BLAS substrate.
#pragma once

#include "blas/gemm.hpp"    // IWYU pragma: export
#include "blas/kernel.hpp"  // IWYU pragma: export
#include "blas/level1.hpp"  // IWYU pragma: export
#include "blas/level2.hpp"  // IWYU pragma: export
#include "blas/pack.hpp"    // IWYU pragma: export
#include "blas/syrk.hpp"    // IWYU pragma: export
#include "blas/trmm.hpp"    // IWYU pragma: export
#include "blas/trsm.hpp"    // IWYU pragma: export
#include "blas/tuning.hpp"  // IWYU pragma: export
#include "blas/types.hpp"   // IWYU pragma: export
