// tuning.hpp — the on-disk autotune table the GEMM drivers consult.
//
// tools/autotune sweeps MC/KC/NC per (kernel, shape-class) and caches the
// winners in a small JSON file; active_blocking() (kernel.hpp) looks the
// winner up at dispatch time. The file is pure advice: it may be missing,
// stale, truncated, or hostile, and none of that may ever change numerical
// results or crash a run — a rejected file just means built-in defaults.
//
// Path resolution: $CAMULT_TUNE_FILE if set, else
// $XDG_CACHE_HOME/camult/tuning.json, else $HOME/.cache/camult/tuning.json.
//
// File format (strict JSON, <= 1 MiB, <= 256 entries):
//   {"version": 1,
//    "entries": [{"arch": "x86-avx512", "kernel": "avx512",
//                 "shape": "panel", "mc": 192, "kc": 256, "nc": 768}, ...]}
//
// Validation (same hardening standard as load_dag and the CAMULT_FAULT_*
// env parsing): malformed/truncated JSON, wrong types, unknown kernel or
// shape-class names, and out-of-range or non-multiple-of-MR/NR blocking
// values all reject the WHOLE file (no partial application), recording one
// diagnostic in TuningTable::error. Entries whose arch-id does not match
// this host are valid but ignored at lookup — the file may legitimately
// carry entries for several machines.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "matrix/view.hpp"

namespace camult::blas {

/// One cached autotune winner.
struct TuningEntry {
  std::string arch;    ///< arch_id() of the machine that tuned it
  std::string kernel;  ///< registered kernel name
  std::string shape;   ///< shape-class name (see shape_class)
  idx mc = 0;
  idx kc = 0;
  idx nc = 0;
};

/// A parsed-and-validated tuning file. When `loaded` is false the entries
/// are empty and `error` says why (missing file is not an error — it just
/// leaves `loaded` false with an empty error).
struct TuningTable {
  std::vector<TuningEntry> entries;
  bool loaded = false;
  std::string error;

  /// Latest matching entry (last-wins, so appended re-tunes dominate), or
  /// nullptr — the caller then uses the kernel's built-in default.
  const TuningEntry* find(std::string_view arch, std::string_view kernel,
                          std::string_view shape) const;
};

/// Coarse problem-shape classes the tuning table is keyed by. Pass m or
/// n < 0 when that dimension is unknown at call time (packing one operand
/// ahead of the multiplies). Returns one of: "tiny" (all dims known and
/// <= 64), "panel" (k <= 64, the CALU/CAQR trailing-update shape), "tall"
/// (m >= 4n), "square".
std::string_view shape_class(idx m, idx n, idx k);

/// Parse + validate tuning-file text (pure; exposed for tests).
TuningTable parse_tuning(std::string_view text);

/// Read + parse + validate one file. Missing file: loaded=false, no error.
TuningTable load_tuning_file(const std::string& path);

/// The resolved on-disk path for this process (env / XDG / HOME fallback;
/// empty when no candidate directory can be derived).
std::string tuning_file_path();

/// The process-wide table, loaded lazily from tuning_file_path(). Safe to
/// call from any thread.
const TuningTable& tuning_table();

/// Drop the cached table and re-read the file on next use (tests and
/// tools/autotune call this after rewriting the file or changing env).
void reload_tuning();

/// Serialize entries to `path` (creating parent directories), replacing the
/// file. Returns false on I/O failure. Entries are written as-is; callers
/// are expected to pass validated values (autotune does).
bool save_tuning_file(const std::string& path,
                      const std::vector<TuningEntry>& entries);

}  // namespace camult::blas
