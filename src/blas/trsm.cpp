#include "blas/trsm.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "blas/kernel.hpp"
#include "blas/level1.hpp"
#include "blas/level2.hpp"

namespace camult::blas {
namespace {

// Recursion base tied to the dispatched kernel's register tile: the gemm
// halves above the base need at least a couple of MR-row tiles to amortize
// packing, so a wider kernel (AVX-512, MR=16) raises the trsv cutoff.
idx base_size() { return std::max<idx>(32, 2 * active_kernel().blocking.mr); }

inline Trans flip(Trans t) {
  return t == Trans::NoTrans ? Trans::Trans : Trans::NoTrans;
}

void scale_all(MatrixView b, double alpha) {
  if (alpha == 1.0) return;
  for (idx j = 0; j < b.cols(); ++j) scal(b.rows(), alpha, b.col_ptr(j), 1);
}

// Base case: solve column-by-column (Left) or row-by-row (Right) with trsv.
void trsm_base(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
               ConstMatrixView a, MatrixView b) {
  scale_all(b, alpha);
  if (side == Side::Left) {
    for (idx j = 0; j < b.cols(); ++j) {
      trsv(uplo, trans, diag, a, b.col_ptr(j), 1);
    }
  } else {
    // X * op(A) = B  <=>  op(A)^T * X^T = B^T: solve each row of B.
    for (idx i = 0; i < b.rows(); ++i) {
      trsv(uplo, flip(trans), diag, a, b.data() + i, b.ld());
    }
  }
}

void trsm_rec(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
              ConstMatrixView a, MatrixView b) {
  const idx n_tri = a.rows();
  if (n_tri <= base_size()) {
    trsm_base(side, uplo, trans, diag, alpha, a, b);
    return;
  }
  const idx h = n_tri / 2;
  const idx r = n_tri - h;
  ConstMatrixView a11 = a.block(0, 0, h, h);
  ConstMatrixView a22 = a.block(h, h, r, r);

  if (side == Side::Left) {
    MatrixView b1 = b.rows_range(0, h);
    MatrixView b2 = b.rows_range(h, r);
    if (uplo == Uplo::Lower && trans == Trans::NoTrans) {
      ConstMatrixView a21 = a.block(h, 0, r, h);
      trsm_rec(side, uplo, trans, diag, alpha, a11, b1);
      gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a21, b1, alpha, b2);
      trsm_rec(side, uplo, trans, diag, 1.0, a22, b2);
    } else if (uplo == Uplo::Lower && trans == Trans::Trans) {
      ConstMatrixView a21 = a.block(h, 0, r, h);
      trsm_rec(side, uplo, trans, diag, alpha, a22, b2);
      gemm(Trans::Trans, Trans::NoTrans, -1.0, a21, b2, alpha, b1);
      trsm_rec(side, uplo, trans, diag, 1.0, a11, b1);
    } else if (uplo == Uplo::Upper && trans == Trans::NoTrans) {
      ConstMatrixView a12 = a.block(0, h, h, r);
      trsm_rec(side, uplo, trans, diag, alpha, a22, b2);
      gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a12, b2, alpha, b1);
      trsm_rec(side, uplo, trans, diag, 1.0, a11, b1);
    } else {  // Upper, Trans
      ConstMatrixView a12 = a.block(0, h, h, r);
      trsm_rec(side, uplo, trans, diag, alpha, a11, b1);
      gemm(Trans::Trans, Trans::NoTrans, -1.0, a12, b1, alpha, b2);
      trsm_rec(side, uplo, trans, diag, 1.0, a22, b2);
    }
  } else {
    MatrixView b1 = b.cols_range(0, h);
    MatrixView b2 = b.cols_range(h, r);
    if (uplo == Uplo::Upper && trans == Trans::NoTrans) {
      ConstMatrixView a12 = a.block(0, h, h, r);
      trsm_rec(side, uplo, trans, diag, alpha, a11, b1);
      gemm(Trans::NoTrans, Trans::NoTrans, -1.0, b1, a12, alpha, b2);
      trsm_rec(side, uplo, trans, diag, 1.0, a22, b2);
    } else if (uplo == Uplo::Upper && trans == Trans::Trans) {
      ConstMatrixView a12 = a.block(0, h, h, r);
      trsm_rec(side, uplo, trans, diag, alpha, a22, b2);
      gemm(Trans::NoTrans, Trans::Trans, -1.0, b2, a12, alpha, b1);
      trsm_rec(side, uplo, trans, diag, 1.0, a11, b1);
    } else if (uplo == Uplo::Lower && trans == Trans::NoTrans) {
      ConstMatrixView a21 = a.block(h, 0, r, h);
      trsm_rec(side, uplo, trans, diag, alpha, a22, b2);
      gemm(Trans::NoTrans, Trans::NoTrans, -1.0, b2, a21, alpha, b1);
      trsm_rec(side, uplo, trans, diag, 1.0, a11, b1);
    } else {  // Lower, Trans
      ConstMatrixView a21 = a.block(h, 0, r, h);
      trsm_rec(side, uplo, trans, diag, alpha, a11, b1);
      gemm(Trans::NoTrans, Trans::Trans, -1.0, b1, a21, alpha, b2);
      trsm_rec(side, uplo, trans, diag, 1.0, a22, b2);
    }
  }
}

}  // namespace

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  assert(a.rows() == a.cols());
  const idx n_tri = (side == Side::Left) ? b.rows() : b.cols();
  assert(a.rows() == n_tri);
  (void)n_tri;
  if (b.rows() == 0 || b.cols() == 0) return;
  trsm_rec(side, uplo, trans, diag, alpha, a, b);
}

}  // namespace camult::blas
