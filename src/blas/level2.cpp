#include "blas/level2.hpp"

#include <cassert>

namespace camult::blas {

void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          idx incx, double beta, double* y, idx incy) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx ylen = (trans == Trans::NoTrans) ? m : n;

  if (beta == 0.0) {
    for (idx i = 0; i < ylen; ++i) y[i * incy] = 0.0;
  } else if (beta != 1.0) {
    for (idx i = 0; i < ylen; ++i) y[i * incy] *= beta;
  }
  if (alpha == 0.0 || m == 0 || n == 0) return;

  if (trans == Trans::NoTrans) {
    // y += alpha * A * x, column by column (stride-1 on A).
    for (idx j = 0; j < n; ++j) {
      const double t = alpha * x[j * incx];
      if (t == 0.0) continue;
      const double* col = a.col_ptr(j);
      if (incy == 1) {
        for (idx i = 0; i < m; ++i) y[i] += t * col[i];
      } else {
        for (idx i = 0; i < m; ++i) y[i * incy] += t * col[i];
      }
    }
  } else {
    // y_j += alpha * dot(A(:,j), x).
    for (idx j = 0; j < n; ++j) {
      const double* col = a.col_ptr(j);
      double s = 0.0;
      if (incx == 1) {
        for (idx i = 0; i < m; ++i) s += col[i] * x[i];
      } else {
        for (idx i = 0; i < m; ++i) s += col[i] * x[i * incx];
      }
      y[j * incy] += alpha * s;
    }
  }
}

void ger(double alpha, const double* x, idx incx, const double* y, idx incy,
         MatrixView a) {
  if (alpha == 0.0) return;
  const idx m = a.rows();
  const idx n = a.cols();
  for (idx j = 0; j < n; ++j) {
    const double t = alpha * y[j * incy];
    if (t == 0.0) continue;
    double* col = a.col_ptr(j);
    if (incx == 1) {
      for (idx i = 0; i < m; ++i) col[i] += t * x[i];
    } else {
      for (idx i = 0; i < m; ++i) col[i] += t * x[i * incx];
    }
  }
}

void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x,
          idx incx) {
  assert(a.rows() == a.cols());
  const idx n = a.rows();
  const bool unit = (diag == Diag::Unit);

  if (trans == Trans::NoTrans) {
    if (uplo == Uplo::Lower) {
      // Forward substitution.
      for (idx j = 0; j < n; ++j) {
        if (!unit) x[j * incx] /= a(j, j);
        const double t = x[j * incx];
        for (idx i = j + 1; i < n; ++i) x[i * incx] -= t * a(i, j);
      }
    } else {
      // Backward substitution.
      for (idx j = n - 1; j >= 0; --j) {
        if (!unit) x[j * incx] /= a(j, j);
        const double t = x[j * incx];
        for (idx i = 0; i < j; ++i) x[i * incx] -= t * a(i, j);
      }
    }
  } else {
    if (uplo == Uplo::Lower) {
      // Solve A^T x = b with A lower => backward over columns of A.
      for (idx j = n - 1; j >= 0; --j) {
        double s = x[j * incx];
        for (idx i = j + 1; i < n; ++i) s -= a(i, j) * x[i * incx];
        x[j * incx] = unit ? s : s / a(j, j);
      }
    } else {
      for (idx j = 0; j < n; ++j) {
        double s = x[j * incx];
        for (idx i = 0; i < j; ++i) s -= a(i, j) * x[i * incx];
        x[j * incx] = unit ? s : s / a(j, j);
      }
    }
  }
}

void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x,
          idx incx) {
  assert(a.rows() == a.cols());
  const idx n = a.rows();
  const bool unit = (diag == Diag::Unit);

  if (trans == Trans::NoTrans) {
    if (uplo == Uplo::Upper) {
      for (idx j = 0; j < n; ++j) {
        // x_i (i<j) accumulate contributions of x_j before x_j is scaled.
        const double t = x[j * incx];
        if (t != 0.0) {
          for (idx i = 0; i < j; ++i) x[i * incx] += t * a(i, j);
        }
        if (!unit) x[j * incx] = t * a(j, j);
      }
    } else {
      for (idx j = n - 1; j >= 0; --j) {
        const double t = x[j * incx];
        if (t != 0.0) {
          for (idx i = j + 1; i < n; ++i) x[i * incx] += t * a(i, j);
        }
        if (!unit) x[j * incx] = t * a(j, j);
      }
    }
  } else {
    if (uplo == Uplo::Upper) {
      for (idx j = n - 1; j >= 0; --j) {
        double s = unit ? x[j * incx] : x[j * incx] * a(j, j);
        for (idx i = 0; i < j; ++i) s += a(i, j) * x[i * incx];
        x[j * incx] = s;
      }
    } else {
      for (idx j = 0; j < n; ++j) {
        double s = unit ? x[j * incx] : x[j * incx] * a(j, j);
        for (idx i = j + 1; i < n; ++i) s += a(i, j) * x[i * incx];
        x[j * incx] = s;
      }
    }
  }
}

}  // namespace camult::blas
