// kernel_impl.hpp — internal contract between the per-arch kernel TUs and
// the dispatcher (kernel_dispatch.cpp). Each kernel_<arch>.cpp is compiled
// with exactly the ISA flags its kernel needs (see src/blas/CMakeLists.txt)
// and exports one factory; when the toolchain could not provide the ISA the
// factory returns a stub with fn == nullptr and compiled == false. The
// `supported` field is left false here — the dispatcher fills it in from
// cpuid, which is the only place allowed to decide what the HOST can run.
#pragma once

#include "blas/kernel.hpp"

namespace camult::blas::detail {

KernelInfo make_scalar_kernel();
KernelInfo make_avx2_kernel();
KernelInfo make_avx512_kernel();

}  // namespace camult::blas::detail
