// kernel.hpp — runtime-dispatched GEMM microkernels.
//
// The blocked gemm driver (gemm.cpp) computes every C tile through one
// register-blocked MR x NR microkernel. Before this layer existed the kernel
// was chosen at COMPILE time (#ifdef __AVX2__), which meant a portable
// -march=x86-64 build silently ran the scalar loop on AVX-capable hardware,
// and a -march=native build crashed with SIGILL if the binary migrated to an
// older machine. Now every variant is compiled unconditionally in its own
// translation unit with per-file arch flags (see src/blas/CMakeLists.txt)
// and the best one the *host* can execute is picked once at startup via
// cpuid (__builtin_cpu_supports).
//
// Selection order: CAMULT_KERNEL=scalar|avx2|avx512 forces a variant (a
// typo, or forcing a variant the host cannot run, warns once on stderr and
// falls back to auto); otherwise the highest-throughput supported variant
// wins (avx512 > avx2 > scalar). Tests and the autotuner can switch at
// runtime with set_active_kernel().
//
// Cache blocking (MC/KC/NC) is runtime data too: each kernel carries a
// built-in default, the on-disk tuning table (see tuning.hpp) can override
// it per (arch-id, shape-class), and set_blocking_override() pins it for
// autotune sweeps. The register tile MR x NR is FIXED per kernel — it is
// baked into the kernel's register allocation and into the packed-panel
// layout, which is why PackedPanel records the kernel it was packed for.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "matrix/view.hpp"

namespace camult::blas {

/// Register/cache blocking for the blocked gemm driver. MR x NR is the
/// microkernel register tile; MC/KC target L2, NC targets L3. Invariants
/// (checked by valid_blocking): mc % mr == 0 and nc % nr == 0 — the
/// packed-offset arithmetic in PackedPanel relies on them.
struct GemmBlocking {
  idx mc;  ///< rows of the packed A panel
  idx kc;  ///< depth of the packed panels
  idx nc;  ///< columns of the packed B panel
  idx mr;  ///< microkernel rows
  idx nr;  ///< microkernel cols
};

/// True when blk satisfies the driver/pack invariants: positive dims,
/// mc % mr == 0, nc % nr == 0, and cache blocks bounded so the packing
/// slabs stay within sane memory (mc*kc and kc*nc <= 2^22 doubles).
bool valid_blocking(const GemmBlocking& blk);

/// C(0:mr_eff, 0:nr_eff) += alpha * Ap * Bp on one register tile. Ap is a
/// packed MR x kc block (always MR rows; fringe rows are zero-padded by the
/// packers), Bp a packed kc x NR block (NR cols, zero-padded). mr_eff/nr_eff
/// in [1, MR] x [1, NR] select the part of C that actually exists.
using MicrokernelFn = void (*)(idx kc, double alpha, const double* ap,
                               const double* bp, double* c, idx ldc,
                               idx mr_eff, idx nr_eff);

/// One registered microkernel variant.
struct KernelInfo {
  const char* name;       ///< "scalar", "avx2", "avx512"
  MicrokernelFn fn;       ///< nullptr when !compiled
  GemmBlocking blocking;  ///< built-in default blocking (incl. MR/NR)
  bool compiled;          ///< TU was built with the required ISA flags
  bool supported;         ///< compiled && the host cpu can execute it
};

/// All variants, in preference order (fastest first). Stable storage: the
/// vector is built once and never reallocated, so KernelInfo pointers
/// (e.g. the one a PackedPanel captures) stay valid for the process.
const std::vector<KernelInfo>& kernel_registry();

/// The variant the drivers currently dispatch to. First call resolves
/// CAMULT_KERNEL + cpuid; always returns a supported kernel.
const KernelInfo& active_kernel();

/// Force a variant by name ("scalar"/"avx2"/"avx512"); "" or "auto"
/// restores the startup selection (CAMULT_KERNEL when set and runnable,
/// else cpuid auto). Returns false (and changes nothing) for an
/// unknown name or a variant this host cannot execute. Not meant to be
/// called concurrently with running factorizations: panels packed before a
/// switch keep working (they remember their kernel), but new work picks up
/// the new variant at an unspecified point.
bool set_active_kernel(std::string_view name);

/// Host architecture id used to key tuning-table entries, derived from
/// cpuid (e.g. "x86-avx512", "x86-avx2", "generic"). Stable across runs on
/// the same machine; a tuning entry whose arch does not match is stale and
/// ignored.
std::string_view arch_id();

/// Cache blocking the driver should use for an m x n x k problem with the
/// active kernel: the blocking override if set, else the tuning-table entry
/// for (arch_id, active kernel, shape_class(m, n, k)), else the kernel's
/// built-in default. Pass m or n < 0 when unknown (pack_a / pack_b).
GemmBlocking active_blocking(idx m, idx n, idx k);

/// Pin the MC/KC/NC used by subsequent gemm/pack calls on every thread
/// (autotune sweeps; tests). MR/NR in blk must match the active kernel.
/// Returns false and changes nothing if blk is invalid or mismatched.
bool set_blocking_override(const GemmBlocking& blk);
void clear_blocking_override();

/// Bytes moved through the packed-GEMM pipeline by the calling thread,
/// counted at the algorithmic level (what the communication-cost model
/// charges, not hardware counters): source reads + packed writes during
/// packing, packed-panel streaming by the microkernels, and C tile
/// read+write traffic. flops / (sum of these) is the arithmetic intensity
/// reported by bench/gemm_kernel.
struct GemmTraffic {
  std::int64_t pack_bytes = 0;    ///< pack_a/pack_b: source reads + packed writes
  std::int64_t kernel_bytes = 0;  ///< packed A/B bytes streamed by microkernels
  std::int64_t c_bytes = 0;       ///< C tile loads + stores

  std::int64_t total() const { return pack_bytes + kernel_bytes + c_bytes; }
};

/// Snapshot / reset of the calling thread's traffic counters.
GemmTraffic gemm_traffic();
void gemm_traffic_reset();

namespace detail {
/// Mutable access to the calling thread's counters (pack.cpp / gemm.cpp).
GemmTraffic& gemm_traffic_tls();
}  // namespace detail

}  // namespace camult::blas
