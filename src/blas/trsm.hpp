// trsm.hpp — triangular solve with multiple right-hand sides.
//
//   Side::Left :  op(A) * X = alpha * B
//   Side::Right:  X * op(A) = alpha * B
//
// X overwrites B. A is the triangular n_tri x n_tri matrix (n_tri = rows of
// B for Left, cols of B for Right); only the referenced triangle is read.
//
// The implementation is recursive: the triangle is split in half and the
// rectangular off-diagonal work is routed through gemm, so large solves run
// at BLAS-3 speed; small base cases fall back to per-vector trsv.
#pragma once

#include "blas/types.hpp"
#include "matrix/view.hpp"

namespace camult::blas {

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);

}  // namespace camult::blas
