// kernel_avx2.cpp — hand-vectorized 8 x 6 AVX2/FMA microkernel. This TU is
// compiled with -mavx2 -mfma regardless of the project's global arch flags
// (see src/blas/CMakeLists.txt); nothing here may run unless the dispatcher
// checked __builtin_cpu_supports("avx2")/("fma") first.
//
// 12 independent ymm accumulators (2 per column) keep the FMA pipelines
// saturated — compilers reliably fail to get this register allocation right
// from the scalar loop.
#include "blas/kernel_impl.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <cmath>

namespace camult::blas {
namespace {

constexpr idx MR = 8;
constexpr idx NR = 6;

void microkernel_avx2(idx kc, double alpha, const double* __restrict ap,
                      const double* __restrict bp, double* __restrict c,
                      idx ldc, idx mr_eff, idx nr_eff) {
  __m256d acc_lo[NR];
  __m256d acc_hi[NR];
  for (int j = 0; j < NR; ++j) {
    acc_lo[j] = _mm256_setzero_pd();
    acc_hi[j] = _mm256_setzero_pd();
  }
  for (idx p = 0; p < kc; ++p) {
    const __m256d a0 = _mm256_loadu_pd(ap + p * MR);
    const __m256d a1 = _mm256_loadu_pd(ap + p * MR + 4);
    const double* b = bp + p * NR;
    for (int j = 0; j < NR; ++j) {
      const __m256d bv = _mm256_broadcast_sd(b + j);
      acc_lo[j] = _mm256_fmadd_pd(a0, bv, acc_lo[j]);
      acc_hi[j] = _mm256_fmadd_pd(a1, bv, acc_hi[j]);
    }
  }
  if (mr_eff == MR && nr_eff == NR) {
    const __m256d va = _mm256_set1_pd(alpha);
    for (int j = 0; j < NR; ++j) {
      double* cc = c + j * ldc;
      _mm256_storeu_pd(cc, _mm256_fmadd_pd(va, acc_lo[j],
                                           _mm256_loadu_pd(cc)));
      _mm256_storeu_pd(cc + 4, _mm256_fmadd_pd(va, acc_hi[j],
                                               _mm256_loadu_pd(cc + 4)));
    }
  } else {
    double acc[MR * NR];
    for (int j = 0; j < NR; ++j) {
      _mm256_storeu_pd(acc + j * MR, acc_lo[j]);
      _mm256_storeu_pd(acc + j * MR + 4, acc_hi[j]);
    }
    // std::fma, not cc += alpha*acc: the full-tile path above fuses the
    // alpha update, so the fringe path must too or a C element would round
    // differently depending on whether its tile is interior or fringe
    // (visible for alpha outside {0, +-1}).
    for (idx cj = 0; cj < nr_eff; ++cj) {
      double* cc = c + cj * ldc;
      const double* accc = acc + cj * MR;
      for (idx ri = 0; ri < mr_eff; ++ri) {
        cc[ri] = std::fma(alpha, accc[ri], cc[ri]);
      }
    }
  }
}

}  // namespace

namespace detail {

KernelInfo make_avx2_kernel() {
  KernelInfo k;
  k.name = "avx2";
  k.fn = &microkernel_avx2;
  k.blocking = {/*mc=*/192, /*kc=*/256, /*nc=*/768, MR, NR};
  k.compiled = true;
  k.supported = false;  // dispatcher decides from cpuid
  return k;
}

}  // namespace detail
}  // namespace camult::blas

#else  // toolchain could not build AVX2: register a stub

namespace camult::blas::detail {

KernelInfo make_avx2_kernel() {
  KernelInfo k;
  k.name = "avx2";
  k.fn = nullptr;
  k.blocking = {192, 256, 768, 8, 6};
  k.compiled = false;
  k.supported = false;
  return k;
}

}  // namespace camult::blas::detail

#endif
