// level2.hpp — BLAS level-2 matrix-vector kernels.
#pragma once

#include "blas/types.hpp"
#include "matrix/view.hpp"

namespace camult::blas {

/// y = alpha * op(A) * x + beta * y.
/// op(A) is rows(A) x cols(A) for NoTrans, cols(A) x rows(A) for Trans.
void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          idx incx, double beta, double* y, idx incy);

/// A += alpha * x * y^T, where A is m x n, x has m entries, y has n entries.
void ger(double alpha, const double* x, idx incx, const double* y, idx incy,
         MatrixView a);

/// Solve op(A) * x = b in place (x overwrites b), A triangular n x n.
void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x,
          idx incx);

/// x = op(A) * x, A triangular n x n.
void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x,
          idx incx);

}  // namespace camult::blas
