// kernel_dispatch.cpp — cpuid detection, the kernel registry, CAMULT_KERNEL
// handling and the runtime blocking resolution (override > tuning table >
// kernel default). This is the only TU that decides what the host can run;
// the per-arch kernel TUs only say what the toolchain could compile.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "blas/kernel.hpp"
#include "blas/kernel_impl.hpp"
#include "blas/tuning.hpp"

namespace camult::blas {
namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

std::vector<KernelInfo> build_registry() {
  std::vector<KernelInfo> v;
  // Preference order: fastest first. The scalar kernel is always last and
  // always supported, so auto-selection can never come up empty.
  v.push_back(detail::make_avx512_kernel());
  v.push_back(detail::make_avx2_kernel());
  v.push_back(detail::make_scalar_kernel());
  v[0].supported = v[0].compiled && cpu_has_avx512();
  v[1].supported = v[1].compiled && cpu_has_avx2();
  v[2].supported = v[2].compiled;  // scalar runs anywhere
  return v;
}

const KernelInfo* find_kernel(std::string_view name) {
  for (const KernelInfo& k : kernel_registry()) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

const KernelInfo* auto_select() {
  for (const KernelInfo& k : kernel_registry()) {
    if (k.supported) return &k;
  }
  // Unreachable: scalar is always supported.
  return &kernel_registry().back();
}

// Resolve CAMULT_KERNEL once. Typo-safe: anything that does not name a
// runnable variant warns on stderr and degrades to auto-selection — a bad
// env var must never change results or crash a run.
const KernelInfo* select_from_env() {
  const char* env = std::getenv("CAMULT_KERNEL");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return auto_select();
  }
  const KernelInfo* k = find_kernel(env);
  if (k == nullptr) {
    std::fprintf(stderr,
                 "camult: CAMULT_KERNEL=%s is not a known kernel "
                 "(scalar|avx2|avx512); using auto selection\n",
                 env);
    return auto_select();
  }
  if (!k->supported) {
    std::fprintf(stderr,
                 "camult: CAMULT_KERNEL=%s is not runnable on this host "
                 "(%s); using auto selection\n",
                 env, k->compiled ? "cpu lacks the ISA" : "not compiled in");
    return auto_select();
  }
  return k;
}

std::atomic<const KernelInfo*>& active_slot() {
  static std::atomic<const KernelInfo*> slot{select_from_env()};
  return slot;
}

// Blocking override for autotune sweeps. Writes happen only from the tool /
// test driving the sweep, between timed regions; concurrent readers see
// either the old or the new blocking, both valid.
GemmBlocking g_override_blk;
std::atomic<bool> g_override_armed{false};

thread_local GemmTraffic tl_traffic;

}  // namespace

bool valid_blocking(const GemmBlocking& blk) {
  if (blk.mr <= 0 || blk.nr <= 0 || blk.mc <= 0 || blk.kc <= 0 ||
      blk.nc <= 0) {
    return false;
  }
  if (blk.mc % blk.mr != 0 || blk.nc % blk.nr != 0) return false;
  // Bound the packing slabs: mc*kc (A block) and kc*nc (B block) stay under
  // 2^22 doubles (32 MiB) so a hostile tuning file cannot balloon the pool.
  const idx kMaxBlockDoubles = idx{1} << 22;
  if (blk.mc > kMaxBlockDoubles / blk.kc) return false;
  if (blk.nc > kMaxBlockDoubles / blk.kc) return false;
  return true;
}

const std::vector<KernelInfo>& kernel_registry() {
  static const std::vector<KernelInfo> registry = build_registry();
  return registry;
}

const KernelInfo& active_kernel() {
  return *active_slot().load(std::memory_order_acquire);
}

bool set_active_kernel(std::string_view name) {
  const KernelInfo* k;
  if (name.empty() || name == "auto") {
    // Restore the STARTUP selection, CAMULT_KERNEL included — a forced env
    // kernel (e.g. the no-AVX2 CI leg's CAMULT_KERNEL=scalar) must survive
    // tests/tools that temporarily switch variants and then restore.
    k = select_from_env();
  } else {
    k = find_kernel(name);
    if (k == nullptr || !k->supported) return false;
  }
  active_slot().store(k, std::memory_order_release);
  return true;
}

std::string_view arch_id() {
#if defined(__x86_64__) || defined(__i386__)
  if (cpu_has_avx512()) return "x86-avx512";
  if (cpu_has_avx2()) return "x86-avx2";
  return "x86-baseline";
#else
  return "generic";
#endif
}

GemmBlocking active_blocking(idx m, idx n, idx k) {
  const KernelInfo& kern = active_kernel();
  if (g_override_armed.load(std::memory_order_acquire)) {
    GemmBlocking blk = g_override_blk;
    if (blk.mr == kern.blocking.mr && blk.nr == kern.blocking.nr) return blk;
    // Kernel changed since the override was armed: the override's layout no
    // longer matches the register tile — fall through to defaults.
  }
  GemmBlocking blk = kern.blocking;
  const TuningEntry* e =
      tuning_table().find(arch_id(), kern.name, shape_class(m, n, k));
  if (e != nullptr) {
    blk.mc = e->mc;
    blk.kc = e->kc;
    blk.nc = e->nc;
  }
  return blk;
}

bool set_blocking_override(const GemmBlocking& blk) {
  if (!valid_blocking(blk)) return false;
  const KernelInfo& kern = active_kernel();
  if (blk.mr != kern.blocking.mr || blk.nr != kern.blocking.nr) return false;
  g_override_blk = blk;
  g_override_armed.store(true, std::memory_order_release);
  return true;
}

void clear_blocking_override() {
  g_override_armed.store(false, std::memory_order_release);
}

GemmTraffic gemm_traffic() { return tl_traffic; }

void gemm_traffic_reset() { tl_traffic = GemmTraffic{}; }

namespace detail {
GemmTraffic& gemm_traffic_tls() { return tl_traffic; }
}  // namespace detail

}  // namespace camult::blas
