// gemm.hpp — general matrix multiply, the BLAS-3 workhorse of every
// factorization in this library.
//
// C = alpha * op(A) * op(B) + beta * C
//
// The implementation is a GotoBLAS-style blocked algorithm: A and B are
// packed into contiguous cache-resident panels and the inner product is
// computed by a register-blocked MR x NR microkernel. The kernel variant
// (scalar / AVX2 / AVX-512) is picked at RUNTIME from cpuid — see
// kernel.hpp — and the cache blocking is runtime data sourced from the
// autotune table (tuning.hpp). All four transpose combinations are
// supported; transposition is absorbed by the packing routines.
// The packing half of the pipeline (pack_a/pack_b/PackedPanel and the
// per-thread scratch pool) lives in pack.hpp; gemm_packed below consumes a
// pre-packed operand so repeated multiplies against the same panel — the
// CALU/CAQR trailing-update pattern — pay for packing once.
#pragma once

#include "blas/kernel.hpp"
#include "blas/pack.hpp"
#include "blas/types.hpp"
#include "matrix/view.hpp"

namespace camult::blas {

/// Shape contract: op(A) is m x k, op(B) is k x n, C is m x n.
void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// C = alpha * Ap * op(B) + beta * C, where Ap was built by pack_a().
/// Always takes the blocked-microkernel path (no small-case shortcut), so
/// results are bit-identical to the blocked path of gemm() and independent
/// of how the trailing matrix is split into column segments along n.
/// The panel is read-only: concurrent calls may share one PackedPanel.
void gemm_packed(double alpha, const PackedPanel& a_packed, Trans transb,
                 ConstMatrixView b, double beta, MatrixView c);

/// C = alpha * op(A) * Bp + beta * C, where Bp was built by pack_b().
void gemm_packed(Trans transa, double alpha, ConstMatrixView a,
                 const PackedPanel& b_packed, double beta, MatrixView c);

/// The blocking a large square multiply would use right now (active kernel
/// + tuning table + override applied). GemmBlocking itself lives in
/// kernel.hpp; this accessor is kept for benchmarks/tests.
GemmBlocking gemm_blocking();

}  // namespace camult::blas
