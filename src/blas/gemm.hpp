// gemm.hpp — general matrix multiply, the BLAS-3 workhorse of every
// factorization in this library.
//
// C = alpha * op(A) * op(B) + beta * C
//
// The implementation is a GotoBLAS-style blocked algorithm: A and B are
// packed into contiguous cache-resident panels and the inner product is
// computed by a register-blocked MR x NR microkernel that the compiler
// vectorizes. All four transpose combinations are supported; transposition
// is absorbed by the packing routines.
#pragma once

#include "blas/types.hpp"
#include "matrix/view.hpp"

namespace camult::blas {

/// Shape contract: op(A) is m x k, op(B) is k x n, C is m x n.
void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// Cache blocking parameters, exposed for benchmarks/tests.
struct GemmBlocking {
  idx mc;  ///< rows of the packed A panel
  idx kc;  ///< depth of the packed panels
  idx nc;  ///< columns of the packed B panel
  idx mr;  ///< microkernel rows
  idx nr;  ///< microkernel cols
};
GemmBlocking gemm_blocking();

}  // namespace camult::blas
