#include "blas/level1.hpp"

#include <cmath>

namespace camult::blas {

idx iamax(idx n, const double* x, idx incx) {
  if (n <= 0) return -1;
  idx best = 0;
  double best_val = std::abs(x[0]);
  for (idx i = 1; i < n; ++i) {
    const double v = std::abs(x[i * incx]);
    if (v > best_val) {
      best_val = v;
      best = i;
    }
  }
  return best;
}

void swap(idx n, double* x, idx incx, double* y, idx incy) {
  for (idx i = 0; i < n; ++i) {
    std::swap(x[i * incx], y[i * incy]);
  }
}

void scal(idx n, double alpha, double* x, idx incx) {
  if (incx == 1) {
    for (idx i = 0; i < n; ++i) x[i] *= alpha;
  } else {
    for (idx i = 0; i < n; ++i) x[i * incx] *= alpha;
  }
}

void axpy(idx n, double alpha, const double* x, idx incx, double* y,
          idx incy) {
  if (alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    for (idx i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    for (idx i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
  }
}

double dot(idx n, const double* x, idx incx, const double* y, idx incy) {
  double s = 0.0;
  if (incx == 1 && incy == 1) {
    for (idx i = 0; i < n; ++i) s += x[i] * y[i];
  } else {
    for (idx i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  }
  return s;
}

double nrm2(idx n, const double* x, idx incx) {
  double scale = 0.0;
  double ssq = 1.0;
  for (idx i = 0; i < n; ++i) {
    const double v = std::abs(x[i * incx]);
    if (v == 0.0) continue;
    if (scale < v) {
      const double r = scale / v;
      ssq = 1.0 + ssq * r * r;
      scale = v;
    } else {
      const double r = v / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

void copy(idx n, const double* x, idx incx, double* y, idx incy) {
  if (incx == 1 && incy == 1) {
    for (idx i = 0; i < n; ++i) y[i] = x[i];
  } else {
    for (idx i = 0; i < n; ++i) y[i * incy] = x[i * incx];
  }
}

double asum(idx n, const double* x, idx incx) {
  double s = 0.0;
  for (idx i = 0; i < n; ++i) s += std::abs(x[i * incx]);
  return s;
}

}  // namespace camult::blas
