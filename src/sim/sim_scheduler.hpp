// sim_scheduler.hpp — deterministic event-driven multicore simulator.
//
// Replays a recorded task DAG (structure + measured per-task durations) on P
// virtual cores under the same greedy highest-priority-first list-scheduling
// policy the real runtime uses. This is the substitution for the paper's
// 8-core Xeon / 16-core Opteron machines (see DESIGN.md): kernel durations
// are measured on the real machine in a serial recording pass; only the core
// count is virtual.
#pragma once

#include <vector>

#include "runtime/task.hpp"
#include "runtime/task_graph.hpp"

namespace camult::sim {

struct SimResult {
  /// Tasks with simulated worker / start / end times.
  std::vector<rt::TaskRecord> schedule;
  std::int64_t makespan_ns = 0;
  /// Lower bounds useful for sanity checks and speedup ceilings.
  std::int64_t critical_path_ns = 0;
  std::int64_t total_work_ns = 0;
};

/// List-schedule the DAG onto `num_cores` cores. `measured` provides the
/// durations (duration_ns per record) and priorities; `edges` the
/// dependencies. Deterministic: ties break toward lower task id and lower
/// core id.
SimResult simulate(const std::vector<rt::TaskRecord>& measured,
                   const std::vector<rt::TaskGraph::Edge>& edges,
                   int num_cores);

}  // namespace camult::sim
