#include "sim/sim_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace camult::sim {

SimResult simulate(const std::vector<rt::TaskRecord>& measured,
                   const std::vector<rt::TaskGraph::Edge>& edges,
                   int num_cores) {
  if (num_cores <= 0) {
    throw std::invalid_argument("simulate: need at least one core");
  }
  const std::size_t n = measured.size();
  SimResult result;
  result.schedule = measured;
  if (n == 0) return result;

  // Task ids are assumed dense 0..n-1 (as produced by TaskGraph).
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<rt::TaskId>> succ(n);
  for (const auto& e : edges) {
    assert(e.from >= 0 && static_cast<std::size_t>(e.from) < n);
    assert(e.to >= 0 && static_cast<std::size_t>(e.to) < n);
    succ[static_cast<std::size_t>(e.from)].push_back(e.to);
    ++indeg[static_cast<std::size_t>(e.to)];
  }

  // Critical path and total work (bounds for reporting).
  {
    std::vector<std::int64_t> dist(n, 0);
    // Process in topological order; ids are already topological because the
    // runtime only allows dependencies on earlier ids.
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t done = dist[i] + measured[i].duration_ns();
      result.critical_path_ns = std::max(result.critical_path_ns, done);
      for (rt::TaskId s : succ[i]) {
        dist[static_cast<std::size_t>(s)] =
            std::max(dist[static_cast<std::size_t>(s)], done);
      }
      result.total_work_ns += measured[i].duration_ns();
    }
  }

  // Ready queue: higher priority first, then lower id.
  struct ReadyOrder {
    const std::vector<rt::TaskRecord>* recs;
    bool operator()(rt::TaskId a, rt::TaskId b) const {
      const int pa = (*recs)[static_cast<std::size_t>(a)].priority;
      const int pb = (*recs)[static_cast<std::size_t>(b)].priority;
      if (pa != pb) return pa < pb;
      return a > b;
    }
  };
  std::priority_queue<rt::TaskId, std::vector<rt::TaskId>, ReadyOrder> ready(
      ReadyOrder{&measured});
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push(static_cast<rt::TaskId>(i));
  }

  // Running events: (end_time, core, task); earliest end first, core breaks
  // ties deterministically.
  struct Event {
    std::int64_t end;
    int core;
    rt::TaskId task;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.end != b.end) return a.end > b.end;
      return a.core > b.core;
    }
  };
  std::priority_queue<Event, std::vector<Event>, EventOrder> running;

  // Idle cores, smallest id first.
  std::priority_queue<int, std::vector<int>, std::greater<int>> idle;
  for (int c = 0; c < num_cores; ++c) idle.push(c);

  std::int64_t now = 0;
  std::size_t completed = 0;
  while (completed < n) {
    // Greedily start ready tasks on idle cores at the current time.
    while (!idle.empty() && !ready.empty()) {
      const int core = idle.top();
      idle.pop();
      const rt::TaskId t = ready.top();
      ready.pop();
      auto& rec = result.schedule[static_cast<std::size_t>(t)];
      rec.worker = core;
      rec.start_ns = now;
      rec.end_ns = now + measured[static_cast<std::size_t>(t)].duration_ns();
      running.push({rec.end_ns, core, t});
    }
    if (running.empty()) {
      throw std::logic_error("simulate: deadlock — cyclic dependencies?");
    }
    // Advance to the next completion.
    const Event ev = running.top();
    running.pop();
    now = ev.end;
    idle.push(ev.core);
    ++completed;
    for (rt::TaskId s : succ[static_cast<std::size_t>(ev.task)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
    // Drain all events finishing at the same instant so their successors
    // compete fairly for cores.
    while (!running.empty() && running.top().end == now) {
      const Event ev2 = running.top();
      running.pop();
      idle.push(ev2.core);
      ++completed;
      for (rt::TaskId s : succ[static_cast<std::size_t>(ev2.task)]) {
        if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
      }
    }
  }
  result.makespan_ns = now;
  return result;
}

}  // namespace camult::sim
