// service.cpp — camult::svc implementation. Lock discipline: the service
// mutex (mu_) and a job's record mutex are never held together; every
// terminal transition first folds the outcome into the service aggregates
// under mu_, then publishes status + outcome under the record mutex and
// wakes waiters — so by the time JobHandle::wait() returns, stats() already
// reflects the job.

#include "svc/service.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

namespace camult::svc {

const char* qos_name(QosClass c) {
  switch (c) {
    case QosClass::Batch: return "batch";
    case QosClass::Normal: return "normal";
    case QosClass::Interactive: return "interactive";
  }
  return "?";
}

int qos_priority_bias(QosClass c) {
  return static_cast<int>(c) * kQosBandWidth;
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Completed: return "completed";
    case JobStatus::Failed: return "failed";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::ShedDeadline: return "shed_deadline";
    case JobStatus::ShedQueueFull: return "shed_queue_full";
    case JobStatus::Rejected: return "rejected";
  }
  return "?";
}

bool job_status_terminal(JobStatus s) {
  return s != JobStatus::Queued && s != JobStatus::Running;
}

namespace detail {

using Clock = std::chrono::steady_clock;

struct JobRecord {
  // Immutable after submit().
  JobKind kind = JobKind::CaluFactor;
  QosClass qos = QosClass::Normal;
  std::string tenant;
  MatrixView a;
  idx b = 32;
  idx tr = 2;
  idx window = 0;
  bool has_deadline = false;
  Clock::time_point submit_tp;
  Clock::time_point deadline_tp;
  rt::CancelToken token;

  /// Set by the watchdog before it fires the token, so a CancelledError can
  /// be attributed to the deadline rather than a client cancel.
  std::atomic<bool> deadline_fired{false};
  /// Set (with release order) when the job reaches any terminal state, just
  /// before the watchdog is told its entry went stale; the watchdog reads it
  /// to skip firing and to identify prunable heap entries.
  std::atomic<bool> terminal{false};
  /// Set by the dispatcher at dispatch; read only after the job is terminal.
  Clock::time_point dispatch_tp;
  std::atomic<bool> dispatched{false};

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::Queued;  ///< guarded by mu
  JobOutcome outcome;                    ///< guarded by mu, set once
};

}  // namespace detail

using detail::Clock;
using detail::JobRecord;

namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Fill the latency fields of `out` for a job turning terminal now.
void stamp_latency(const JobRecord& rec, JobOutcome* out) {
  const Clock::time_point now = Clock::now();
  out->total_ms = ms_between(rec.submit_tp, now);
  if (rec.dispatched.load(std::memory_order_acquire)) {
    out->queue_ms = ms_between(rec.submit_tp, rec.dispatch_tp);
    out->run_ms = ms_between(rec.dispatch_tp, now);
  } else {
    out->queue_ms = out->total_ms;
    out->run_ms = 0.0;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// JobHandle

JobStatus JobHandle::status() const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::status on an invalid handle");
  }
  std::lock_guard<std::mutex> lk(rec_->mu);
  return rec_->status;
}

QosClass JobHandle::qos() const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::qos on an invalid handle");
  }
  return rec_->qos;
}

const JobOutcome& JobHandle::wait() const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::wait on an invalid handle");
  }
  std::unique_lock<std::mutex> lk(rec_->mu);
  rec_->cv.wait(lk, [&] { return job_status_terminal(rec_->status); });
  return rec_->outcome;
}

bool JobHandle::wait_for(std::chrono::nanoseconds timeout) const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::wait_for on an invalid handle");
  }
  std::unique_lock<std::mutex> lk(rec_->mu);
  return rec_->cv.wait_for(lk, timeout,
                           [&] { return job_status_terminal(rec_->status); });
}

void JobHandle::cancel() const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::cancel on an invalid handle");
  }
  rec_->token.request_cancel();
}

// ---------------------------------------------------------------------------
// Deadline watchdog: one thread over a min-heap of (deadline, job). It only
// ever fires CancelTokens — shedding/aborting is carried out by the
// dispatcher (queued jobs) or the scheduler's skip path (running jobs), so
// the watchdog needs no job or service locks beyond its own heap.
//
// Entries for jobs that turn terminal before their deadline are not removed
// eagerly (a heap has no efficient random erase); instead finish()/shed
// paths bump retired_hint via on_terminal(), and once stale entries
// dominate a non-trivial heap it is compacted in one O(n) sweep. Long-lived
// services hammering short jobs with long deadlines therefore hold O(live
// armed jobs) entries, where the old lazy-deletion-only scheme accumulated
// every armed job until its deadline passed — hours of garbage for an
// hour-long deadline.

struct Service::Watchdog {
  struct Entry {
    Clock::time_point due;
    std::weak_ptr<JobRecord> job;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.due > b.due;  // std::*_heap max-heap order -> min-heap on due
    }
  };
  /// Compaction threshold: below this size the O(n) sweep isn't worth it.
  static constexpr std::size_t kCompactMin = 64;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<Entry> heap;        ///< std::push_heap/pop_heap with Later
  std::size_t retired_hint = 0;   ///< armed jobs gone terminal since the
                                  ///< last compaction (may overcount ones
                                  ///< already popped — benign, resets to 0)
  bool stop = false;
  std::thread thread;

  void arm(const std::shared_ptr<JobRecord>& rec) {
    {
      std::lock_guard<std::mutex> lk(mu);
      heap.push_back(Entry{rec->deadline_tp, rec});
      std::push_heap(heap.begin(), heap.end(), Later{});
    }
    cv.notify_one();
  }

  /// A deadline-armed job reached a terminal state; its heap entry is now
  /// dead weight. Called by every terminal transition (finish, queue-full
  /// shed, shutdown drop) after the record's terminal flag is set.
  void on_terminal() {
    std::lock_guard<std::mutex> lk(mu);
    ++retired_hint;
    maybe_compact_locked();
  }

  void maybe_compact_locked() {
    if (heap.size() < kCompactMin || retired_hint * 2 < heap.size()) return;
    auto dead = [](const Entry& e) {
      const std::shared_ptr<JobRecord> rec = e.job.lock();
      return rec == nullptr || rec->terminal.load(std::memory_order_acquire);
    };
    heap.erase(std::remove_if(heap.begin(), heap.end(), dead), heap.end());
    std::make_heap(heap.begin(), heap.end(), Later{});
    retired_hint = 0;
  }

  std::size_t entries() {
    std::lock_guard<std::mutex> lk(mu);
    return heap.size();
  }

  void main() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      // stop must be re-checked on every wake, not only when the heap is
      // empty: leftover stale entries with far-future deadlines would
      // otherwise park join() behind wait_until() for hours.
      if (stop) return;
      if (heap.empty()) {
        cv.wait(lk);
        continue;
      }
      const Clock::time_point due = heap.front().due;
      if (Clock::now() < due) {
        cv.wait_until(lk, due);
        continue;  // re-evaluate: new earlier entries or stop may have landed
      }
      std::pop_heap(heap.begin(), heap.end(), Later{});
      const Entry e = std::move(heap.back());
      heap.pop_back();
      std::shared_ptr<JobRecord> rec = e.job.lock();
      if (rec == nullptr || rec->terminal.load(std::memory_order_acquire)) {
        // Stale entry drained the natural way; it no longer needs a sweep.
        if (retired_hint > 0) --retired_hint;
        continue;
      }
      lk.unlock();
      rec->deadline_fired.store(true, std::memory_order_release);
      rec->token.request_cancel();
      rec.reset();
      lk.lock();
    }
  }

  void start() {
    thread = std::thread([this] { main(); });
  }

  void join() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    cv.notify_one();
    if (thread.joinable()) thread.join();
  }
};

// ---------------------------------------------------------------------------
// Service

Service::Service(const ServiceConfig& cfg) : cfg_(cfg) {
  if (cfg_.max_inflight < 1) {
    throw std::invalid_argument("ServiceConfig::max_inflight must be >= 1");
  }
  if (cfg_.max_queue < 1) {
    throw std::invalid_argument("ServiceConfig::max_queue must be >= 1");
  }
  if (cfg_.pool != nullptr) {
    pool_ = cfg_.pool;
  } else {
    rt::WorkerPoolConfig pc;
    pc.num_threads = cfg_.num_threads;
    owned_pool_ = std::make_unique<rt::WorkerPool>(pc);
    pool_ = owned_pool_.get();
  }
  watchdog_ = std::make_unique<Watchdog>();
  watchdog_->start();
  runners_.reserve(static_cast<std::size_t>(cfg_.max_inflight));
  for (int i = 0; i < cfg_.max_inflight; ++i) {
    runners_.emplace_back([this] { runner_main(); });
  }
}

Service::~Service() { shutdown(true); }

Service::Admission Service::submit(const JobRequest& req) {
  auto rec = std::make_shared<JobRecord>();
  rec->kind = req.kind;
  rec->qos = req.qos;
  rec->tenant = req.tenant;
  rec->a = req.a;
  rec->b = req.b;
  rec->tr = req.tr;
  rec->window = req.window;
  rec->submit_tp = Clock::now();
  if (req.deadline.count() > 0) {
    rec->has_deadline = true;
    rec->deadline_tp = rec->submit_tp + req.deadline;
  }

  Admission adm;
  adm.handle = JobHandle(rec);
  std::shared_ptr<JobRecord> victim;
  JobOutcome victim_out;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_) {
      QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
      ++cs.rejected;
      ++stats_.per_tenant[req.tenant].rejected;
      adm.queue_depth = total_queued_;
    } else if (total_queued_ >= cfg_.max_queue) {
      // Full. Shed the oldest job of the lowest class strictly below the
      // arrival; if every queued job is at or above the arrival's class,
      // the arrival itself is the lowest-value work and is rejected.
      for (int c = 0; c < static_cast<int>(req.qos); ++c) {
        auto& q = queue_[static_cast<std::size_t>(c)];
        if (!q.empty()) {
          victim = std::move(q.front());
          q.pop_front();
          --total_queued_;
          break;
        }
      }
      if (victim != nullptr) {
        victim_out.status = JobStatus::ShedQueueFull;
        stamp_latency(*victim, &victim_out);
        account_locked(*victim, victim_out);
        adm.accepted = true;
        queue_[static_cast<std::size_t>(req.qos)].push_back(rec);
        ++total_queued_;
        QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
        ++cs.submitted;
        ++stats_.per_tenant[req.tenant].submitted;
        stats_.peak_queue_depth =
            std::max(stats_.peak_queue_depth, total_queued_);
        adm.queue_depth = total_queued_;
      } else {
        QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
        ++cs.rejected;
        ++stats_.per_tenant[req.tenant].rejected;
        adm.queue_depth = total_queued_;
      }
    } else {
      adm.accepted = true;
      queue_[static_cast<std::size_t>(req.qos)].push_back(rec);
      ++total_queued_;
      QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
      ++cs.submitted;
      ++stats_.per_tenant[req.tenant].submitted;
      stats_.peak_queue_depth =
          std::max(stats_.peak_queue_depth, total_queued_);
      adm.queue_depth = total_queued_;
    }
  }
  if (victim != nullptr) {
    // The victim is off the queue; no dispatcher can reach it anymore, so
    // publishing its terminal state outside mu_ races with nobody.
    {
      std::lock_guard<std::mutex> vlk(victim->mu);
      victim->outcome = std::move(victim_out);
      victim->status = JobStatus::ShedQueueFull;
    }
    victim->cv.notify_all();
    victim->terminal.store(true, std::memory_order_release);
    if (victim->has_deadline) watchdog_->on_terminal();
  }
  if (!adm.accepted) {
    std::lock_guard<std::mutex> lk(rec->mu);
    rec->status = JobStatus::Rejected;
    rec->outcome.status = JobStatus::Rejected;
    stamp_latency(*rec, &rec->outcome);
    // No waiters can exist yet (the handle is only returned below), but
    // keep the transition uniform.
    rec->cv.notify_all();
    return adm;
  }
  if (rec->has_deadline) {
    watchdog_->arm(rec);
  }
  queue_cv_.notify_one();
  return adm;
}

std::shared_ptr<JobRecord> Service::pop_next_locked() {
  for (int c = kQosClasses - 1; c >= 0; --c) {
    auto& q = queue_[static_cast<std::size_t>(c)];
    if (!q.empty()) {
      std::shared_ptr<JobRecord> rec = std::move(q.front());
      q.pop_front();
      --total_queued_;
      return rec;
    }
  }
  return nullptr;
}

void Service::runner_main() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::shared_ptr<JobRecord> rec = pop_next_locked();
    if (rec == nullptr) {
      if (stopping_) return;
      queue_cv_.wait(lk);
      continue;
    }
    ++inflight_;
    lk.unlock();
    run_job(rec);
    rec.reset();
    lk.lock();
    --inflight_;
    if (total_queued_ == 0 && inflight_ == 0) {
      drained_cv_.notify_all();
    }
  }
}

void Service::run_job(const std::shared_ptr<JobRecord>& rec) {
  // Pre-dispatch gates: a deadline that expired while queued sheds the job
  // without running it; a client cancel before dispatch does the same under
  // the Cancelled label.
  if (rec->has_deadline && Clock::now() >= rec->deadline_tp) {
    JobOutcome out;
    out.status = JobStatus::ShedDeadline;
    out.deadline_hit = true;
    finish(rec, std::move(out));
    return;
  }
  if (rec->token.cancelled()) {
    JobOutcome out;
    out.status = JobStatus::Cancelled;
    out.deadline_hit = rec->deadline_fired.load(std::memory_order_acquire);
    finish(rec, std::move(out));
    return;
  }

  rec->dispatch_tp = Clock::now();
  rec->dispatched.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    rec->status = JobStatus::Running;
  }

  // sched counters survive a throwing run via the options' sched_out hook.
  rt::SchedulerStats sched;
  JobOutcome out;
  try {
    if (rec->kind == JobKind::CaluFactor) {
      core::CaluOptions o;
      o.b = rec->b;
      o.tr = rec->tr;
      o.window = rec->window;
      o.pool = pool_;
      o.num_threads = pool_->size();
      o.record_trace = cfg_.record_trace;
      o.monitor = cfg_.monitor;
      o.cancel = rec->token;
      o.sched_out = &sched;
      o.fault = cfg_.fault;
      o.priority_bias = qos_priority_bias(rec->qos);
      core::CaluAsync async(rec->a, o);
      auto res = std::make_shared<core::CaluResult>(async.collect());
      out.status = JobStatus::Completed;
      out.info = res->info;
      out.health = res->health;
      out.sched = res->sched;
      out.lu = std::move(res);
    } else {
      core::CaqrOptions o;
      o.b = rec->b;
      o.tr = rec->tr;
      o.window = rec->window;
      o.pool = pool_;
      o.num_threads = pool_->size();
      o.record_trace = cfg_.record_trace;
      o.monitor = cfg_.monitor;
      o.cancel = rec->token;
      o.sched_out = &sched;
      o.fault = cfg_.fault;
      o.priority_bias = qos_priority_bias(rec->qos);
      core::CaqrAsync async(rec->a, o);
      auto res = std::make_shared<core::CaqrResult>(async.collect());
      out.status = JobStatus::Completed;
      out.health = res->health;
      out.sched = res->sched;
      out.qr = std::move(res);
    }
  } catch (const rt::CancelledError&) {
    out.status = JobStatus::Cancelled;
    out.deadline_hit = rec->deadline_fired.load(std::memory_order_acquire);
    out.sched = sched;
  } catch (const std::exception& e) {
    out.status = JobStatus::Failed;
    out.error = e.what();
    out.sched = sched;
  }
  finish(rec, std::move(out));
}

void Service::finish(const std::shared_ptr<JobRecord>& rec, JobOutcome out) {
  stamp_latency(*rec, &out);
  {
    std::lock_guard<std::mutex> lk(mu_);
    account_locked(*rec, out);
  }
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    rec->outcome = std::move(out);
    rec->status = rec->outcome.status;
  }
  rec->cv.notify_all();
  rec->terminal.store(true, std::memory_order_release);
  if (rec->has_deadline) watchdog_->on_terminal();
}

void Service::account_locked(const JobRecord& rec, const JobOutcome& out) {
  auto fold = [&](QosStats& s) {
    switch (out.status) {
      case JobStatus::Completed: ++s.completed; break;
      case JobStatus::Failed: ++s.failed; break;
      case JobStatus::Cancelled: ++s.cancelled; break;
      case JobStatus::ShedDeadline: ++s.shed_deadline; break;
      case JobStatus::ShedQueueFull: ++s.shed_queue_full; break;
      case JobStatus::Rejected: ++s.rejected; break;
      case JobStatus::Queued:
      case JobStatus::Running: break;  // not terminal; never reaches here
    }
    const rt::WorkerStats t = out.sched.totals();
    s.tasks_executed += t.tasks_executed;
    s.tasks_skipped += t.tasks_skipped;
    s.fallback_panels += out.health.fallback_panels;
    s.queue_ms_sum += out.queue_ms;
    s.run_ms_sum += out.run_ms;
  };
  fold(stats_.per_class[static_cast<std::size_t>(rec.qos)]);
  fold(stats_.per_tenant[rec.tenant]);
}

void Service::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [&] { return total_queued_ == 0 && inflight_ == 0; });
}

void Service::shutdown(bool run_queued) {
  std::vector<std::pair<std::shared_ptr<JobRecord>, JobOutcome>> dropped;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_ && runners_.empty()) return;  // already shut down
    stopping_ = true;
    if (!run_queued) {
      for (auto& q : queue_) {
        for (auto& rec : q) {
          JobOutcome out;
          out.status = JobStatus::Cancelled;
          stamp_latency(*rec, &out);
          account_locked(*rec, out);
          dropped.emplace_back(std::move(rec), std::move(out));
        }
        q.clear();
      }
      total_queued_ = 0;
    }
  }
  for (auto& [rec, out] : dropped) {
    {
      std::lock_guard<std::mutex> rlk(rec->mu);
      rec->outcome = std::move(out);
      rec->status = JobStatus::Cancelled;
    }
    rec->cv.notify_all();
    rec->terminal.store(true, std::memory_order_release);
    if (rec->has_deadline) watchdog_->on_terminal();
  }
  queue_cv_.notify_all();
  for (auto& t : runners_) {
    if (t.joinable()) t.join();
  }
  runners_.clear();
  if (watchdog_ != nullptr) {
    watchdog_->join();
  }
  {
    // Late drain() callers must still wake even though no runner remains.
    std::lock_guard<std::mutex> lk(mu_);
  }
  drained_cv_.notify_all();
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s = stats_;
    s.queued = total_queued_;
    s.inflight = inflight_;
  }
  // The watchdog lock is a leaf (the watchdog never takes mu_), but taking
  // it outside mu_ keeps the ordering trivially acyclic.
  s.watchdog_entries = watchdog_->entries();
  return s;
}

std::size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_queued_;
}

}  // namespace camult::svc
