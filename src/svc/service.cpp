// service.cpp — camult::svc implementation. Lock discipline: the service
// mutex (mu_) and a job's record mutex are never held together; every
// terminal transition first folds the outcome into the service aggregates
// under mu_, then publishes status + outcome under the record mutex and
// wakes waiters — so by the time JobHandle::wait() returns, stats() already
// reflects the job. The watchdog's heap mutex is a leaf: firing paths copy
// what they need (a CancelToken, a record shared_ptr) and act outside it.
//
// Self-healing model (docs/runtime.md § Self-healing):
//  * Every attempt of a job runs under its own CancelToken (rec->token,
//    guarded by rec->mu and replaced per retry), so a token fired by last
//    attempt's stall cannot abort the next attempt, and the token's id()
//    doubles as the heartbeat tag matching pool workers to this attempt.
//  * Stall detection, retry timers and deadlines share the one watchdog
//    thread: deadlines and retry re-enqueues are heap timers, stall checks
//    are a periodic poll over the watched running jobs.
//  * A retry never holds a runner slot: the failed attempt's runner
//    schedules a timer and returns; the timer requeues the job through the
//    normal QoS queue, so backoff capacity is free for other tenants.

#include "svc/service.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "matrix/matrix.hpp"
#include "runtime/fault_inject.hpp"

namespace camult::svc {

const char* qos_name(QosClass c) {
  switch (c) {
    case QosClass::Batch: return "batch";
    case QosClass::Normal: return "normal";
    case QosClass::Interactive: return "interactive";
  }
  return "?";
}

int qos_priority_bias(QosClass c) {
  return static_cast<int>(c) * kQosBandWidth;
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Completed: return "completed";
    case JobStatus::Failed: return "failed";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::ShedDeadline: return "shed_deadline";
    case JobStatus::ShedQueueFull: return "shed_queue_full";
    case JobStatus::ShedBreaker: return "shed_breaker";
    case JobStatus::Rejected: return "rejected";
  }
  return "?";
}

bool job_status_terminal(JobStatus s) {
  return s != JobStatus::Queued && s != JobStatus::Running;
}

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "?";
}

namespace detail {

using Clock = std::chrono::steady_clock;

struct JobRecord {
  // Immutable after submit().
  JobKind kind = JobKind::CaluFactor;
  QosClass qos = QosClass::Normal;
  std::string tenant;
  MatrixView a;
  idx b = 32;
  idx tr = 2;
  idx window = 0;
  bool has_deadline = false;
  Clock::time_point submit_tp;
  Clock::time_point deadline_tp;
  std::uint64_t seq = 0;  ///< admission order; the retry-jitter stream key
  std::chrono::nanoseconds stall_timeout{0};  ///< effective; 0 = off
  RetryPolicy retry;                          ///< effective; max_attempts >= 1
  rt::FaultInjector* fault = nullptr;         ///< effective; may be null
  bool probe = false;  ///< admitted as a half-open breaker probe

  /// The *current attempt's* cancellation token, guarded by mu: replaced
  /// with a fresh token on every retry so last attempt's cancel (stall,
  /// deadline racing terminality) cannot poison the next attempt. Fire it
  /// only through a copy taken under mu (see fire_cancel).
  rt::CancelToken token;

  /// Set by the watchdog before it fires the token, so a CancelledError can
  /// be attributed to the deadline rather than a client cancel.
  std::atomic<bool> deadline_fired{false};
  /// Client asked for cancellation (JobHandle::cancel). Checked by the
  /// retry machinery: a client cancel is never retried.
  std::atomic<bool> client_cancel{false};
  /// Set (with release order) when the job reaches any terminal state, just
  /// before the watchdog is told its entry went stale; the watchdog reads it
  /// to skip firing and to identify prunable heap entries.
  std::atomic<bool> terminal{false};
  /// Set by the dispatcher at first dispatch; read after terminal.
  Clock::time_point dispatch_tp;
  std::atomic<bool> dispatched{false};
  /// This attempt was cancelled by the stall watchdog (reset per attempt).
  std::atomic<bool> stall_fired{false};
  /// A DAG for this job is attached to the pool right now — the stall
  /// poller only examines live attempts.
  std::atomic<bool> attempt_live{false};
  std::atomic<int> attempts{0};  ///< attempts started (runner writes)
  std::atomic<int> stalls{0};    ///< stall cancels across all attempts

  // Between-attempt bookkeeping owned by "the current runner": attempt N's
  // runner writes, the queue mutex hands ownership to attempt N+1's.
  std::vector<double> attempt_run_ms;
  double backoff_ms = 0.0;

  /// Pristine copy of the input, captured before the first attempt when the
  /// job is retryable (max_attempts > 1). An aborted attempt leaves `a`
  /// partially factored in place, so every retry must first restore the
  /// original contents or it would "successfully" factor garbage. Same
  /// runner-handoff ownership as attempt_run_ms; empty when retries are off,
  /// so the zero-retry configuration pays no extra memory.
  Matrix pristine;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::Queued;  ///< guarded by mu
  JobOutcome outcome;                    ///< guarded by mu, set once
  /// Last attempt's outcome while the job is parked in retry backoff; used
  /// to finalize the job if the service shuts down before the timer fires.
  JobOutcome pending_outcome;  ///< guarded by mu
  StallReport stall_latest;    ///< guarded by mu (watchdog writes)
};

}  // namespace detail

using detail::Clock;
using detail::JobRecord;

namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Fill the latency fields of `out` for a job turning terminal now.
/// run_ms spans first dispatch -> terminal, so for a retried job it
/// includes backoff parking; JobOutcome::attempt_run_ms has the per-attempt
/// run times and backoff_ms the parked total.
void stamp_latency(const JobRecord& rec, JobOutcome* out) {
  const Clock::time_point now = Clock::now();
  out->total_ms = ms_between(rec.submit_tp, now);
  if (rec.dispatched.load(std::memory_order_acquire)) {
    out->queue_ms = ms_between(rec.submit_tp, rec.dispatch_tp);
    out->run_ms = ms_between(rec.dispatch_tp, now);
  } else {
    out->queue_ms = out->total_ms;
    out->run_ms = 0.0;
  }
}

/// Fire the job's *current* token without holding rec.mu across the
/// request_cancel (waiters on the token are none, but the discipline keeps
/// every rec.mu section tiny and leaf-like).
void fire_cancel(JobRecord& rec) {
  rt::CancelToken tok;
  {
    std::lock_guard<std::mutex> lk(rec.mu);
    tok = rec.token;
  }
  tok.request_cancel();
}

// Uniform in [0, 1) from the top 53 bits (exactly representable in double).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Deterministic capped-exponential backoff with half-jitter: attempt k
/// (1-based, the attempt that just failed) draws its delay from
/// [d/2, d) with d = min(cap, base * 2^(k-1)); the draw is a pure function
/// of (jitter_seed, job admission seq, k), so retry schedules are
/// bit-reproducible and a storm of simultaneous failures still spreads out.
std::chrono::nanoseconds backoff_delay(const RetryPolicy& rp,
                                       std::uint64_t seq, int attempt) {
  const double base = std::max(0.0, static_cast<double>(rp.base.count()));
  const double cap = std::max(base, static_cast<double>(rp.cap.count()));
  const int shift = std::min(std::max(attempt - 1, 0), 30);
  const double d = std::min(cap, base * static_cast<double>(1u << shift));
  const double u = to_unit(rt::splitmix64(
      rp.jitter_seed ^ (seq * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(attempt) * 0xC2B2AE3D27D4EB4Full)));
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(d * 0.5 + u * d * 0.5));
}

}  // namespace

// ---------------------------------------------------------------------------
// JobHandle

JobStatus JobHandle::status() const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::status on an invalid handle");
  }
  std::lock_guard<std::mutex> lk(rec_->mu);
  return rec_->status;
}

QosClass JobHandle::qos() const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::qos on an invalid handle");
  }
  return rec_->qos;
}

const JobOutcome& JobHandle::wait() const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::wait on an invalid handle");
  }
  std::unique_lock<std::mutex> lk(rec_->mu);
  rec_->cv.wait(lk, [&] { return job_status_terminal(rec_->status); });
  return rec_->outcome;
}

bool JobHandle::wait_for(std::chrono::nanoseconds timeout) const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::wait_for on an invalid handle");
  }
  std::unique_lock<std::mutex> lk(rec_->mu);
  return rec_->cv.wait_for(lk, timeout,
                           [&] { return job_status_terminal(rec_->status); });
}

void JobHandle::cancel() const {
  if (rec_ == nullptr) {
    throw std::logic_error("JobHandle::cancel on an invalid handle");
  }
  // Flag first: the retry machinery must see "client asked" before any
  // CancelledError surfaces, or it could schedule a retry for a job the
  // client just killed.
  rec_->client_cancel.store(true, std::memory_order_release);
  fire_cancel(*rec_);
}

// ---------------------------------------------------------------------------
// Watchdog: one thread, three duties.
//
//  1. Deadlines — a min-heap of (due, job) timers; firing sets
//     deadline_fired and cancels the job's current attempt.
//  2. Retry timers — same heap, Kind::Retry; firing hands the job to
//     Service::retry_due, which requeues it through the QoS queue.
//  3. Stall polling — a watch list of running jobs with stall_timeout
//     armed; every poll tick the pool's worker heartbeats are scanned for
//     a worker stuck inside one of the watched jobs' tasks.
//
// Entries for jobs that turn terminal before their deadline are not removed
// eagerly (a heap has no efficient random erase); instead finish()/shed
// paths bump retired_hint via on_terminal(), and once stale entries
// dominate a non-trivial heap it is compacted in one O(n) sweep. Long-lived
// services hammering short jobs with long deadlines therefore hold O(live
// armed jobs) entries, where the old lazy-deletion-only scheme accumulated
// every armed job until its deadline passed — hours of garbage for an
// hour-long deadline.

struct Service::Watchdog {
  enum class Kind : std::uint8_t { Deadline, Retry };
  struct Entry {
    Clock::time_point due;
    std::weak_ptr<JobRecord> job;
    Kind kind = Kind::Deadline;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.due > b.due;  // std::*_heap max-heap order -> min-heap on due
    }
  };
  /// Compaction threshold: below this size the O(n) sweep isn't worth it.
  static constexpr std::size_t kCompactMin = 64;

  Service* svc = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Entry> heap;        ///< std::push_heap/pop_heap with Later
  std::size_t retired_hint = 0;   ///< armed jobs gone terminal since the
                                  ///< last compaction (may overcount ones
                                  ///< already popped — benign, resets to 0)
  std::vector<std::weak_ptr<JobRecord>> stall_watch;  ///< guarded by mu
  std::chrono::nanoseconds poll_interval{0};  ///< 0 until first watch
  Clock::time_point next_poll = Clock::time_point::min();
  bool expedite = false;  ///< shutdown: new/old retry timers fire now
  bool stop = false;
  std::thread thread;

  void arm(const std::shared_ptr<JobRecord>& rec) {
    {
      std::lock_guard<std::mutex> lk(mu);
      heap.push_back(Entry{rec->deadline_tp, rec, Kind::Deadline});
      std::push_heap(heap.begin(), heap.end(), Later{});
    }
    cv.notify_one();
  }

  void arm_retry(const std::shared_ptr<JobRecord>& rec,
                 Clock::time_point due) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (expedite) due = Clock::now();
      heap.push_back(Entry{due, rec, Kind::Retry});
      std::push_heap(heap.begin(), heap.end(), Later{});
    }
    cv.notify_one();
  }

  /// Register a running attempt for stall polling. The poll cadence is a
  /// quarter of the smallest watched timeout, clamped to [1, 50] ms —
  /// fine-grained enough that detection latency is a small multiple of the
  /// timeout, coarse enough that an idle-ish service stays quiet.
  void watch_stall(const std::shared_ptr<JobRecord>& rec) {
    {
      std::lock_guard<std::mutex> lk(mu);
      stall_watch.push_back(rec);
      std::chrono::nanoseconds want = rec->stall_timeout / 4;
      want = std::clamp(want,
                        std::chrono::nanoseconds(std::chrono::milliseconds(1)),
                        std::chrono::nanoseconds(std::chrono::milliseconds(50)));
      if (poll_interval.count() == 0 || want < poll_interval) {
        poll_interval = want;
      }
      const Clock::time_point first = Clock::now() + poll_interval;
      if (next_poll == Clock::time_point::min() || first < next_poll) {
        next_poll = first;
      }
    }
    cv.notify_one();
  }

  /// Shutdown assist: make every pending (and future) retry timer due
  /// immediately, so joining runners never waits out a backoff.
  void expedite_retries() {
    {
      std::lock_guard<std::mutex> lk(mu);
      expedite = true;
      const Clock::time_point now = Clock::now();
      for (Entry& e : heap) {
        if (e.kind == Kind::Retry) e.due = now;
      }
      std::make_heap(heap.begin(), heap.end(), Later{});
    }
    cv.notify_one();
  }

  /// A deadline-armed job reached a terminal state; its heap entry is now
  /// dead weight. Called by every terminal transition (finish, queue-full
  /// shed, shutdown drop) after the record's terminal flag is set.
  void on_terminal() {
    std::lock_guard<std::mutex> lk(mu);
    ++retired_hint;
    maybe_compact_locked();
  }

  void maybe_compact_locked() {
    if (heap.size() < kCompactMin || retired_hint * 2 < heap.size()) return;
    auto dead = [](const Entry& e) {
      if (e.kind == Kind::Retry) return e.job.expired();
      const std::shared_ptr<JobRecord> rec = e.job.lock();
      return rec == nullptr || rec->terminal.load(std::memory_order_acquire);
    };
    heap.erase(std::remove_if(heap.begin(), heap.end(), dead), heap.end());
    std::make_heap(heap.begin(), heap.end(), Later{});
    retired_hint = 0;
  }

  std::size_t entries() {
    std::lock_guard<std::mutex> lk(mu);
    return heap.size();
  }

  void main() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      // stop must be re-checked on every wake, not only when the heap is
      // empty: leftover stale entries with far-future deadlines would
      // otherwise park join() behind wait_until() for hours.
      if (stop) return;
      // 1. Fire every due timer.
      while (!heap.empty() && Clock::now() >= heap.front().due) {
        std::pop_heap(heap.begin(), heap.end(), Later{});
        const Entry e = std::move(heap.back());
        heap.pop_back();
        std::shared_ptr<JobRecord> rec = e.job.lock();
        if (e.kind == Kind::Deadline) {
          if (rec == nullptr ||
              rec->terminal.load(std::memory_order_acquire)) {
            // Stale entry drained the natural way; needs no sweep.
            if (retired_hint > 0) --retired_hint;
            continue;
          }
          lk.unlock();
          rec->deadline_fired.store(true, std::memory_order_release);
          fire_cancel(*rec);
          rec.reset();
          lk.lock();
        } else {
          if (rec == nullptr) continue;
          lk.unlock();
          svc->retry_due(rec);
          rec.reset();
          lk.lock();
        }
        if (stop) return;
      }
      // 2. Stall poll: prune the watch list, then scan the survivors'
      //    heartbeats outside the heap lock (check_stall takes rec->mu).
      if (!stall_watch.empty() && Clock::now() >= next_poll) {
        std::vector<std::shared_ptr<JobRecord>> live;
        auto gone = [&](const std::weak_ptr<JobRecord>& w) {
          const std::shared_ptr<JobRecord> rec = w.lock();
          if (rec == nullptr ||
              rec->terminal.load(std::memory_order_acquire)) {
            return true;
          }
          if (!rec->attempt_live.load(std::memory_order_acquire)) {
            return true;  // between attempts; re-registered on redispatch
          }
          live.push_back(rec);
          return false;
        };
        stall_watch.erase(
            std::remove_if(stall_watch.begin(), stall_watch.end(), gone),
            stall_watch.end());
        next_poll = Clock::now() + poll_interval;
        lk.unlock();
        for (const std::shared_ptr<JobRecord>& rec : live) {
          svc->check_stall(rec);
        }
        live.clear();
        lk.lock();
        if (stop) return;
      }
      // 3. Sleep until the next timer or poll tick.
      Clock::time_point wake = Clock::time_point::max();
      if (!heap.empty()) wake = heap.front().due;
      if (!stall_watch.empty() && next_poll < wake) wake = next_poll;
      if (wake == Clock::time_point::max()) {
        cv.wait(lk);
      } else {
        cv.wait_until(lk, wake);
      }
    }
  }

  void start() {
    thread = std::thread([this] { main(); });
  }

  void join() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    cv.notify_one();
    if (thread.joinable()) thread.join();
  }
};

// ---------------------------------------------------------------------------
// Service

Service::Service(const ServiceConfig& cfg) : cfg_(cfg) {
  if (cfg_.max_inflight < 1) {
    throw std::invalid_argument("ServiceConfig::max_inflight must be >= 1");
  }
  if (cfg_.max_queue < 1) {
    throw std::invalid_argument("ServiceConfig::max_queue must be >= 1");
  }
  if (cfg_.breaker.enabled &&
      (cfg_.breaker.window < 1 || cfg_.breaker.min_samples < 1 ||
       cfg_.breaker.failure_threshold <= 0.0)) {
    throw std::invalid_argument("ServiceConfig::breaker misconfigured");
  }
  if (cfg_.pool != nullptr) {
    pool_ = cfg_.pool;
  } else {
    rt::WorkerPoolConfig pc;
    pc.num_threads = cfg_.num_threads;
    owned_pool_ = std::make_unique<rt::WorkerPool>(pc);
    pool_ = owned_pool_.get();
  }
  watchdog_ = std::make_unique<Watchdog>();
  watchdog_->svc = this;
  watchdog_->start();
  runners_.reserve(static_cast<std::size_t>(cfg_.max_inflight));
  for (int i = 0; i < cfg_.max_inflight; ++i) {
    runners_.emplace_back([this] { runner_main(); });
  }
}

Service::~Service() { shutdown(true); }

Service::Admission Service::submit(const JobRequest& req) {
  auto rec = std::make_shared<JobRecord>();
  rec->kind = req.kind;
  rec->qos = req.qos;
  rec->tenant = req.tenant;
  rec->a = req.a;
  rec->b = req.b;
  rec->tr = req.tr;
  rec->window = req.window;
  rec->submit_tp = Clock::now();
  if (req.deadline.count() > 0) {
    rec->has_deadline = true;
    rec->deadline_tp = rec->submit_tp + req.deadline;
  }
  // Per-job overrides fall back to the service defaults.
  rec->stall_timeout =
      req.stall_timeout.count() > 0 ? req.stall_timeout : cfg_.stall_timeout;
  rec->retry = req.retry.max_attempts > 0 ? req.retry : cfg_.retry;
  if (rec->retry.max_attempts < 1) rec->retry.max_attempts = 1;
  rec->fault = req.fault != nullptr ? req.fault : cfg_.fault;

  Admission adm;
  adm.handle = JobHandle(rec);
  std::shared_ptr<JobRecord> victim;
  JobOutcome victim_out;
  bool breaker_shed = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    rec->seq = next_seq_++;
    bool probe = false;
    if (stopping_) {
      QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
      ++cs.rejected;
      ++stats_.per_tenant[req.tenant].rejected;
      adm.queue_depth = total_queued_;
    } else if (cfg_.breaker.enabled &&
               !breaker_admit_locked(req.tenant, &probe,
                                     &adm.retry_after_ms)) {
      QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
      ++cs.shed_breaker;
      ++stats_.per_tenant[req.tenant].shed_breaker;
      adm.queue_depth = total_queued_;
      breaker_shed = true;
    } else if (total_queued_ >= cfg_.max_queue) {
      // Full. Shed the oldest job of the lowest class strictly below the
      // arrival; if every queued job is at or above the arrival's class,
      // the arrival itself is the lowest-value work and is rejected.
      for (int c = 0; c < static_cast<int>(req.qos); ++c) {
        auto& q = queue_[static_cast<std::size_t>(c)];
        if (!q.empty()) {
          victim = std::move(q.front());
          q.pop_front();
          --total_queued_;
          break;
        }
      }
      if (victim != nullptr) {
        victim_out.status = JobStatus::ShedQueueFull;
        stamp_latency(*victim, &victim_out);
        account_locked(*victim, victim_out);
        adm.accepted = true;
        rec->probe = probe;
        queue_[static_cast<std::size_t>(req.qos)].push_back(rec);
        ++total_queued_;
        QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
        ++cs.submitted;
        ++stats_.per_tenant[req.tenant].submitted;
        stats_.peak_queue_depth =
            std::max(stats_.peak_queue_depth, total_queued_);
        adm.queue_depth = total_queued_;
      } else {
        QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
        ++cs.rejected;
        ++stats_.per_tenant[req.tenant].rejected;
        adm.queue_depth = total_queued_;
        // The breaker probe slot must not leak on a rejected probe.
        if (probe) breakers_[req.tenant].probe_inflight = false;
      }
    } else {
      adm.accepted = true;
      rec->probe = probe;
      queue_[static_cast<std::size_t>(req.qos)].push_back(rec);
      ++total_queued_;
      QosStats& cs = stats_.per_class[static_cast<std::size_t>(req.qos)];
      ++cs.submitted;
      ++stats_.per_tenant[req.tenant].submitted;
      stats_.peak_queue_depth =
          std::max(stats_.peak_queue_depth, total_queued_);
      adm.queue_depth = total_queued_;
    }
  }
  if (victim != nullptr) {
    // The victim is off the queue; no dispatcher can reach it anymore, so
    // publishing its terminal state outside mu_ races with nobody.
    {
      std::lock_guard<std::mutex> vlk(victim->mu);
      victim->outcome = std::move(victim_out);
      victim->status = JobStatus::ShedQueueFull;
    }
    victim->cv.notify_all();
    victim->terminal.store(true, std::memory_order_release);
    if (victim->has_deadline) watchdog_->on_terminal();
  }
  if (!adm.accepted) {
    const JobStatus s =
        breaker_shed ? JobStatus::ShedBreaker : JobStatus::Rejected;
    std::lock_guard<std::mutex> lk(rec->mu);
    rec->status = s;
    rec->outcome.status = s;
    rec->outcome.retry_after_ms = adm.retry_after_ms;
    stamp_latency(*rec, &rec->outcome);
    // No waiters can exist yet (the handle is only returned below), but
    // keep the transition uniform.
    rec->cv.notify_all();
    rec->terminal.store(true, std::memory_order_release);
    return adm;
  }
  if (rec->has_deadline) {
    watchdog_->arm(rec);
  }
  queue_cv_.notify_one();
  return adm;
}

bool Service::breaker_admit_locked(const std::string& tenant, bool* probe,
                                   double* retry_after_ms) {
  Breaker& br = breakers_[tenant];
  const Clock::time_point now = Clock::now();
  if (br.state == BreakerState::Open) {
    if (now < br.open_until) {
      *retry_after_ms = ms_between(now, br.open_until);
      return false;
    }
    br.state = BreakerState::HalfOpen;
    br.probe_inflight = false;
  }
  if (br.state == BreakerState::HalfOpen) {
    if (br.probe_inflight) {
      // The probe's verdict is pending; suggest one open period.
      *retry_after_ms =
          std::chrono::duration<double, std::milli>(cfg_.breaker.open_for)
              .count();
      return false;
    }
    br.probe_inflight = true;
    ++br.probes;
    *probe = true;
  }
  return true;
}

void Service::breaker_note_locked(const JobRecord& rec,
                                  const JobOutcome& out) {
  if (!cfg_.breaker.enabled) return;
  // Decisive outcomes only: Completed is a success; Failed or a
  // stall-cancel is a failure. Sheds, client cancels and deadline cancels
  // say nothing about the tenant's workload health, so they leave the
  // window untouched (a breaker must not trip because the *service* was
  // overloaded or the client changed its mind).
  const bool failure =
      out.status == JobStatus::Failed ||
      (out.status == JobStatus::Cancelled && out.stall.detected &&
       !out.deadline_hit &&
       !rec.client_cancel.load(std::memory_order_acquire));
  const bool success = out.status == JobStatus::Completed;
  Breaker& br = breakers_[rec.tenant];
  if (rec.probe) {
    br.probe_inflight = false;
    if (success) {
      br.state = BreakerState::Closed;
      br.window.clear();
      br.failures = 0;
    } else if (failure) {
      br.state = BreakerState::Open;
      br.open_until = Clock::now() + cfg_.breaker.open_for;
      ++br.opens;
    }
    // A neutral probe outcome keeps the breaker half-open; the next
    // submission becomes the new probe.
    return;
  }
  if (!success && !failure) return;
  if (br.state != BreakerState::Closed) return;  // pre-open stragglers
  br.window.push_back(failure);
  if (failure) ++br.failures;
  while (static_cast<int>(br.window.size()) > cfg_.breaker.window) {
    if (br.window.front()) --br.failures;
    br.window.pop_front();
  }
  if (static_cast<int>(br.window.size()) >= cfg_.breaker.min_samples &&
      static_cast<double>(br.failures) >=
          cfg_.breaker.failure_threshold *
              static_cast<double>(br.window.size())) {
    br.state = BreakerState::Open;
    br.open_until = Clock::now() + cfg_.breaker.open_for;
    ++br.opens;
    br.window.clear();
    br.failures = 0;
  }
}

std::shared_ptr<JobRecord> Service::pop_next_locked() {
  for (int c = kQosClasses - 1; c >= 0; --c) {
    auto& q = queue_[static_cast<std::size_t>(c)];
    if (!q.empty()) {
      std::shared_ptr<JobRecord> rec = std::move(q.front());
      q.pop_front();
      --total_queued_;
      return rec;
    }
  }
  return nullptr;
}

void Service::runner_main() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::shared_ptr<JobRecord> rec = pop_next_locked();
    if (rec == nullptr) {
      // Retry timers still pending are future queue entries: a stopping
      // runner must outlive them or the requeued job would never run.
      if (stopping_ && retry_pending_ == 0) return;
      queue_cv_.wait(lk);
      continue;
    }
    ++inflight_;
    lk.unlock();
    run_job(rec);
    rec.reset();
    lk.lock();
    --inflight_;
    if (total_queued_ == 0 && inflight_ == 0 && retry_pending_ == 0) {
      drained_cv_.notify_all();
    }
  }
}

void Service::run_job(const std::shared_ptr<JobRecord>& rec) {
  // Pre-dispatch gates, re-evaluated on every (re)dispatch. A deadline that
  // expired while queued sheds a never-ran job (ShedDeadline) but finalizes
  // a retried one as Cancelled — it did run, the deadline just ran out
  // during backoff. A client cancel wins over everything.
  const int prior_attempts = rec->attempts.load(std::memory_order_relaxed);
  if (rec->has_deadline && Clock::now() >= rec->deadline_tp) {
    JobOutcome out;
    out.status = prior_attempts == 0 ? JobStatus::ShedDeadline
                                     : JobStatus::Cancelled;
    out.deadline_hit = true;
    finish(rec, std::move(out));
    return;
  }
  bool cancelled_before_run =
      rec->client_cancel.load(std::memory_order_acquire);
  if (!cancelled_before_run && prior_attempts == 0) {
    // First attempt: honor a token fired through any out-of-band copy.
    // (Retries must NOT consult the token here — it is last attempt's and
    // was fired by the very stall/fault that triggered the retry.)
    std::lock_guard<std::mutex> lk(rec->mu);
    cancelled_before_run = rec->token.cancelled();
  }
  if (cancelled_before_run) {
    JobOutcome out;
    out.status = JobStatus::Cancelled;
    out.deadline_hit = rec->deadline_fired.load(std::memory_order_acquire);
    finish(rec, std::move(out));
    return;
  }

  // Retryable jobs snapshot the input before attempt 1 and restore it before
  // every retry: the aborted attempt factored part of `a` in place, and
  // attempt N+1 must see the caller's original matrix, not attempt N's
  // wreckage. Non-retryable jobs skip both copies entirely.
  if (rec->retry.max_attempts > 1) {
    if (prior_attempts == 0) {
      rec->pristine = Matrix::from(ConstMatrixView(rec->a));
    } else {
      const idx rows = rec->a.rows();
      for (idx j = 0; j < rec->a.cols(); ++j) {
        std::copy_n(rec->pristine.data() + j * rec->pristine.ld(), rows,
                    rec->a.data() + j * rec->a.ld());
      }
    }
  }

  // Attempt setup: a fresh token per retry (so last attempt's cancel and
  // heartbeat tag cannot leak into this one), stall flag reset, and the
  // attempt registered with the stall poller.
  rt::CancelToken attempt_token;
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    if (prior_attempts > 0) rec->token = rt::CancelToken{};
    attempt_token = rec->token;
    rec->status = JobStatus::Running;
  }
  rec->stall_fired.store(false, std::memory_order_release);
  rec->attempts.store(prior_attempts + 1, std::memory_order_release);
  if (!rec->dispatched.load(std::memory_order_relaxed)) {
    rec->dispatch_tp = Clock::now();
    rec->dispatched.store(true, std::memory_order_release);
  }
  rec->attempt_live.store(true, std::memory_order_release);
  if (rec->stall_timeout.count() > 0) watchdog_->watch_stall(rec);
  const Clock::time_point attempt_tp = Clock::now();

  // sched counters survive a throwing run via the options' sched_out hook.
  rt::SchedulerStats sched;
  JobOutcome out;
  bool transient = false;
  try {
    if (rec->kind == JobKind::CaluFactor) {
      core::CaluOptions o;
      o.b = rec->b;
      o.tr = rec->tr;
      o.window = rec->window;
      o.pool = pool_;
      o.num_threads = pool_->size();
      o.record_trace = cfg_.record_trace;
      o.monitor = cfg_.monitor;
      o.cancel = attempt_token;
      o.sched_out = &sched;
      o.fault = rec->fault;
      // Attempt 1 runs salt 0 (the unsalted stream: fault-free configs are
      // bitwise PR 7); each retry draws an independent fault stream.
      o.fault_salt = static_cast<std::uint64_t>(prior_attempts);
      o.priority_bias = qos_priority_bias(rec->qos);
      core::CaluAsync async(rec->a, o);
      auto res = std::make_shared<core::CaluResult>(async.collect());
      out.status = JobStatus::Completed;
      out.info = res->info;
      out.health = res->health;
      out.sched = res->sched;
      out.lu = std::move(res);
    } else {
      core::CaqrOptions o;
      o.b = rec->b;
      o.tr = rec->tr;
      o.window = rec->window;
      o.pool = pool_;
      o.num_threads = pool_->size();
      o.record_trace = cfg_.record_trace;
      o.monitor = cfg_.monitor;
      o.cancel = attempt_token;
      o.sched_out = &sched;
      o.fault = rec->fault;
      o.fault_salt = static_cast<std::uint64_t>(prior_attempts);
      o.priority_bias = qos_priority_bias(rec->qos);
      core::CaqrAsync async(rec->a, o);
      auto res = std::make_shared<core::CaqrResult>(async.collect());
      out.status = JobStatus::Completed;
      out.health = res->health;
      out.sched = res->sched;
      out.qr = std::move(res);
    }
  } catch (const rt::InjectedFault& e) {
    out.status = JobStatus::Failed;
    out.error = e.what();
    out.sched = sched;
    transient = true;  // injected/transient by definition
  } catch (const rt::CancelledError&) {
    out.status = JobStatus::Cancelled;
    out.deadline_hit = rec->deadline_fired.load(std::memory_order_acquire);
    out.sched = sched;
    // A stall-watchdog cancel is transient (the retry gets a fresh fault
    // stream); a client or deadline cancel is final.
    transient = rec->stall_fired.load(std::memory_order_acquire) &&
                !out.deadline_hit &&
                !rec->client_cancel.load(std::memory_order_acquire);
  } catch (const std::exception& e) {
    out.status = JobStatus::Failed;
    out.error = e.what();
    out.sched = sched;
  }
  rec->attempt_live.store(false, std::memory_order_release);

  // Attempt bookkeeping (runner-owned fields; see JobRecord).
  rec->attempt_run_ms.push_back(ms_between(attempt_tp, Clock::now()));
  out.attempts = rec->attempts.load(std::memory_order_relaxed);
  out.attempt_run_ms = rec->attempt_run_ms;
  out.backoff_ms = rec->backoff_ms;
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    out.stall = rec->stall_latest;
  }

  // Retry decision: transient failure, attempts left, nobody cancelled it,
  // the deadline (if any) still has road, and the service is not stopping.
  if (transient && out.attempts < rec->retry.max_attempts &&
      !rec->client_cancel.load(std::memory_order_acquire) &&
      !(rec->has_deadline && Clock::now() >= rec->deadline_tp)) {
    const std::chrono::nanoseconds delay =
        backoff_delay(rec->retry, rec->seq, out.attempts);
    bool scheduled = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!stopping_) {
        ++retry_pending_;
        ++stats_.per_class[static_cast<std::size_t>(rec->qos)].retries;
        ++stats_.per_tenant[rec->tenant].retries;
        scheduled = true;
      }
    }
    if (scheduled) {
      {
        std::lock_guard<std::mutex> lk(rec->mu);
        rec->status = JobStatus::Queued;
        rec->pending_outcome = std::move(out);
      }
      rec->backoff_ms +=
          std::chrono::duration<double, std::milli>(delay).count();
      watchdog_->arm_retry(rec, Clock::now() + delay);
      return;  // the runner slot frees; the timer requeues the job
    }
  }
  finish(rec, std::move(out));
}

void Service::check_stall(const std::shared_ptr<JobRecord>& rec) {
  if (rec->terminal.load(std::memory_order_acquire) ||
      !rec->attempt_live.load(std::memory_order_acquire) ||
      rec->stall_fired.load(std::memory_order_acquire)) {
    return;
  }
  rt::CancelToken tok;
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    tok = rec->token;
  }
  const std::uint64_t tag = tok.id();
  const std::int64_t now_ns = pool_->now_ns();
  for (int w = 0; w < pool_->size(); ++w) {
    rt::HeartbeatSnapshot hb;
    if (!pool_->read_heartbeat(w, &hb) || !hb.busy || hb.tag != tag) continue;
    const std::int64_t stuck_ns = now_ns - hb.since_ns;
    if (stuck_ns < rec->stall_timeout.count()) continue;
    // Worker w has been inside one task of this attempt for the whole
    // timeout: declare a stall, record it, cancel the attempt. The hung
    // body keeps its core until it returns (cancellation is cooperative),
    // but every other task skips, the DAG drains, and the runner slot —
    // the scarce resource — comes back.
    {
      std::lock_guard<std::mutex> lk(rec->mu);
      rec->stall_latest.detected = true;
      rec->stall_latest.worker = w;
      rec->stall_latest.task = static_cast<rt::TaskId>(hb.task);
      rec->stall_latest.stuck_ms = static_cast<double>(stuck_ns) / 1e6;
      rec->stall_latest.attempt = rec->attempts.load(std::memory_order_relaxed);
    }
    rec->stalls.fetch_add(1, std::memory_order_relaxed);
    rec->stall_fired.store(true, std::memory_order_release);
    tok.request_cancel();
    return;
  }
}

void Service::retry_due(const std::shared_ptr<JobRecord>& rec) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!(stopping_ && drop_queued_)) {
      --retry_pending_;
      queue_[static_cast<std::size_t>(rec->qos)].push_back(rec);
      ++total_queued_;
      stats_.peak_queue_depth =
          std::max(stats_.peak_queue_depth, total_queued_);
      queue_cv_.notify_one();
      return;
    }
  }
  // shutdown(false): the retry is dropped; finalize with the last attempt's
  // outcome so waiters see how far the job actually got.
  JobOutcome out;
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    out = std::move(rec->pending_outcome);
  }
  finish(rec, std::move(out));
  {
    std::lock_guard<std::mutex> lk(mu_);
    --retry_pending_;
    if (total_queued_ == 0 && inflight_ == 0 && retry_pending_ == 0) {
      drained_cv_.notify_all();
    }
    queue_cv_.notify_all();  // stopping runners re-check their exit gate
  }
}

void Service::finish(const std::shared_ptr<JobRecord>& rec, JobOutcome out) {
  stamp_latency(*rec, &out);
  {
    std::lock_guard<std::mutex> lk(mu_);
    account_locked(*rec, out);
    breaker_note_locked(*rec, out);
  }
  rec->pristine = Matrix();  // drop the retry snapshot as soon as terminal
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    rec->outcome = std::move(out);
    rec->status = rec->outcome.status;
  }
  rec->cv.notify_all();
  rec->terminal.store(true, std::memory_order_release);
  if (rec->has_deadline) watchdog_->on_terminal();
}

void Service::account_locked(const JobRecord& rec, const JobOutcome& out) {
  auto fold = [&](QosStats& s) {
    switch (out.status) {
      case JobStatus::Completed: ++s.completed; break;
      case JobStatus::Failed: ++s.failed; break;
      case JobStatus::Cancelled: ++s.cancelled; break;
      case JobStatus::ShedDeadline: ++s.shed_deadline; break;
      case JobStatus::ShedQueueFull: ++s.shed_queue_full; break;
      case JobStatus::ShedBreaker: ++s.shed_breaker; break;
      case JobStatus::Rejected: ++s.rejected; break;
      case JobStatus::Queued:
      case JobStatus::Running: break;  // not terminal; never reaches here
    }
    const rt::WorkerStats t = out.sched.totals();
    s.tasks_executed += t.tasks_executed;
    s.tasks_skipped += t.tasks_skipped;
    s.fallback_panels += out.health.fallback_panels;
    s.stalls_detected += rec.stalls.load(std::memory_order_relaxed);
    s.queue_ms_sum += out.queue_ms;
    s.run_ms_sum += out.run_ms;
  };
  fold(stats_.per_class[static_cast<std::size_t>(rec.qos)]);
  fold(stats_.per_tenant[rec.tenant]);
}

void Service::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [&] {
    return total_queued_ == 0 && inflight_ == 0 && retry_pending_ == 0;
  });
}

void Service::shutdown(bool run_queued) {
  std::vector<std::pair<std::shared_ptr<JobRecord>, JobOutcome>> dropped;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_ && runners_.empty()) return;  // already shut down
    stopping_ = true;
    if (!run_queued) {
      drop_queued_ = true;
      for (auto& q : queue_) {
        for (auto& rec : q) {
          JobOutcome out;
          out.status = JobStatus::Cancelled;
          out.attempts = rec->attempts.load(std::memory_order_relaxed);
          stamp_latency(*rec, &out);
          account_locked(*rec, out);
          dropped.emplace_back(std::move(rec), std::move(out));
        }
        q.clear();
      }
      total_queued_ = 0;
    }
  }
  for (auto& [rec, out] : dropped) {
    {
      std::lock_guard<std::mutex> rlk(rec->mu);
      rec->outcome = std::move(out);
      rec->status = JobStatus::Cancelled;
    }
    rec->cv.notify_all();
    rec->terminal.store(true, std::memory_order_release);
    if (rec->has_deadline) watchdog_->on_terminal();
  }
  // Jobs parked in retry backoff would otherwise stall the runner join for
  // up to a full backoff cap; fire their timers now. With run_queued they
  // requeue immediately (skipping the remaining backoff); with
  // drop_queued_ they finalize with their last attempt's outcome.
  watchdog_->expedite_retries();
  queue_cv_.notify_all();
  for (auto& t : runners_) {
    if (t.joinable()) t.join();
  }
  runners_.clear();
  // Joined AFTER the runners: the watchdog is what fires the retry timers
  // the runners' exit gate (retry_pending_ == 0) waits on.
  if (watchdog_ != nullptr) {
    watchdog_->join();
  }
  {
    // Late drain() callers must still wake even though no runner remains.
    std::lock_guard<std::mutex> lk(mu_);
  }
  drained_cv_.notify_all();
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s = stats_;
    s.queued = total_queued_;
    s.inflight = inflight_;
    s.retry_pending = retry_pending_;
    for (const auto& [tenant, br] : breakers_) {
      BreakerStat bs;
      bs.state = br.state;
      bs.opens = br.opens;
      bs.probes = br.probes;
      s.breakers[tenant] = bs;
    }
  }
  // The watchdog lock is a leaf (the watchdog never takes mu_), but taking
  // it outside mu_ keeps the ordering trivially acyclic.
  s.watchdog_entries = watchdog_->entries();
  return s;
}

std::size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_queued_;
}

}  // namespace camult::svc
