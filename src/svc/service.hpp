// service.hpp — camult::svc, a multi-tenant factorization job service on
// one persistent rt::WorkerPool.
//
// The runtime substrate (persistent pool, batch submit/collect drivers,
// cancellation, health monitoring) factors matrices; this layer makes it a
// long-running server for *many competing clients*:
//
//  * Admission control + backpressure. The queue is bounded (max_queue);
//    submit() never blocks, it returns an Admission telling the caller
//    whether the job was accepted and how deep the queue is — an open-loop
//    submitter can use the depth as its slow-down signal.
//  * QoS classes. Every job carries a QosClass; the dispatcher always
//    serves the highest class first (FIFO within a class), and each class
//    shifts the job's whole look-ahead priority-band structure by a
//    per-class bias (CaluOptions::priority_bias), so a premium job's tasks
//    also outrank co-scheduled lower-class tasks inside the scheduler.
//  * Graceful degradation. When the queue is full, an arriving job evicts
//    the oldest queued job of the *lowest* class strictly below its own
//    (shed-lowest-first); if no lower class is queued the arrival itself is
//    rejected. Overload therefore starves Batch before Normal before
//    Interactive, never the other way around.
//  * Deadlines via CancelToken. A job may carry a relative deadline; a
//    watchdog fires the job's CancelToken when it expires, so a running
//    job's remaining tasks are skipped (the run drains, the pool is never
//    wedged) and a still-queued job is shed without running at all.
//  * Per-tenant accounting. Every terminal job carries its SchedulerStats
//    and HealthReport in the JobOutcome, and the service folds them into
//    per-class and per-tenant aggregates (ServiceStats) — overload behavior
//    is measured, not anecdotal (bench/service_load.cpp).
//  * Self-healing (docs/runtime.md § Self-healing). A stall watchdog reads
//    the pool's worker heartbeats and cancels any job whose running task
//    made no progress past stall_timeout, reclaiming the runner slot a
//    wedged kernel would otherwise hold forever; transiently failed jobs
//    (injected faults, stall-cancels) are retried with deterministic
//    capped-exponential backoff (RetryPolicy); and per-tenant circuit
//    breakers (BreakerConfig) shed a persistently failing tenant's load at
//    admission so it cannot burn runner slots other tenants need
//    (bench/service_resilience.cpp).
//
// Threading model: submit() and JobHandle methods are thread-safe.
// max_inflight dispatcher ("runner") threads each pop one job, submit its
// DAG to the shared pool (core::CaluAsync / core::CaqrAsync) and block
// collecting it, so at most max_inflight graphs are attached at once. The
// matrix referenced by a JobRequest must stay alive and untouched until the
// job's terminal state is observed.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "matrix/view.hpp"
#include "runtime/cancel.hpp"
#include "runtime/worker_pool.hpp"

namespace camult::svc {

/// Client service classes, lowest to highest. Shedding starts at the
/// bottom; dispatch starts at the top.
enum class QosClass : int {
  Batch = 0,        ///< throughput traffic; first to be shed
  Normal = 1,       ///< default
  Interactive = 2,  ///< latency-sensitive; served first, never shed while
                    ///< lower classes are queued
};
inline constexpr int kQosClasses = 3;
const char* qos_name(QosClass c);

/// Width of one QoS priority band: each class shifts a job's task
/// priorities by class * kQosBandWidth (saturating). Sized so the whole
/// look-ahead band structure of service-scale problems (top_base < 2^24,
/// i.e. panels x column-blocks < ~8.4M tiles) nests inside one class band;
/// bigger jobs still run correctly, their bands just bleed across class
/// boundaries.
inline constexpr int kQosBandWidth = 1 << 24;
int qos_priority_bias(QosClass c);

enum class JobKind {
  CaluFactor,  ///< LU with tournament pivoting (core::calu_factor)
  CaqrFactor,  ///< QR over a reduction tree (core::caqr_factor)
};

enum class JobStatus {
  Queued,        ///< admitted, waiting for a dispatcher (or a retry slot)
  Running,       ///< DAG submitted to the pool
  Completed,     ///< factorization finished (info may still be nonzero)
  Failed,        ///< a task threw; JobOutcome::error has the diagnosis
  Cancelled,     ///< CancelToken fired (client cancel, mid-run deadline,
                 ///< stall-watchdog cancel with retries exhausted, or
                 ///< service shutdown before dispatch)
  ShedDeadline,  ///< deadline expired while still queued; never ran
  ShedQueueFull, ///< evicted from the full queue by a higher-class arrival
  ShedBreaker,   ///< refused: the tenant's circuit breaker is open
                 ///< (JobOutcome::retry_after_ms hints when to come back)
  Rejected,      ///< refused at admission (queue full, nothing lower to
                 ///< shed, or service shutting down)
};
const char* job_status_name(JobStatus s);
bool job_status_terminal(JobStatus s);

/// Retry discipline for transiently failed jobs (injected faults and
/// stall-watchdog cancels — never numerical failures or client cancels).
/// Attempt k's re-enqueue is delayed by a deterministic draw from
/// [d/2, d) where d = min(cap, base * 2^(k-1)); the draw mixes
/// (jitter_seed, job admission sequence, attempt) through splitmix64, so a
/// storm of retries decorrelates without any global RNG — same seed, same
/// schedule, every run.
struct RetryPolicy {
  /// Total attempts a job may consume, first run included. <= 1 disables
  /// retry entirely (the PR 7 behaviour); JobRequest-level 0 means
  /// "inherit ServiceConfig::retry".
  int max_attempts = 1;
  std::chrono::nanoseconds base{std::chrono::milliseconds(10)};
  std::chrono::nanoseconds cap{std::chrono::seconds(1)};
  std::uint64_t jitter_seed = 0;
};

/// Per-tenant circuit breaker: a sliding window of the tenant's last
/// `window` decisive terminal outcomes (Completed = success; Failed or
/// stall-cancel = failure; sheds and client cancels are neutral). When the
/// window holds >= min_samples outcomes and the failure fraction reaches
/// failure_threshold, the breaker opens: the tenant's submissions complete
/// immediately as ShedBreaker (with a retry_after_ms hint) for open_for,
/// after which one probe job is admitted (half-open); the probe's success
/// closes the breaker, its failure re-opens it.
struct BreakerConfig {
  bool enabled = false;
  int window = 16;
  int min_samples = 8;
  double failure_threshold = 0.5;
  std::chrono::nanoseconds open_for{std::chrono::milliseconds(250)};
};

enum class BreakerState { Closed, Open, HalfOpen };
const char* breaker_state_name(BreakerState s);

/// Diagnosis of a stall the watchdog detected and cancelled: which pool
/// worker sat inside which task for how long. `attempt` is the (1-based)
/// attempt that stalled; when a retried job stalls more than once the
/// report describes the last stall.
struct StallReport {
  bool detected = false;
  int worker = -1;
  rt::TaskId task = rt::kNoTask;
  double stuck_ms = 0.0;
  int attempt = 0;
};

struct JobRequest {
  JobKind kind = JobKind::CaluFactor;
  /// Factored in place on completion; the storage must outlive the job.
  MatrixView a;
  QosClass qos = QosClass::Normal;
  /// Accounting key; "" aggregates under the anonymous tenant.
  std::string tenant;
  /// Relative deadline measured from submit(); zero = none. Expiry fires
  /// the job's CancelToken: a queued job is shed (ShedDeadline), a running
  /// job aborts cooperatively (Cancelled, deadline_hit set).
  std::chrono::nanoseconds deadline{0};
  idx b = 32;   ///< panel width (service default favors small problems)
  idx tr = 2;   ///< panel task count
  /// Sliding-window DAG submission for this job (CaluOptions::window /
  /// CaqrOptions::window): bounds the job's task-store + trace footprint at
  /// O(window) iterations, which is what lets a service host paper-scale
  /// tall-skinny factorizations without one tenant's DAG consuming the
  /// machine. 0 = full-DAG submission (the default).
  idx window = 0;
  /// Stall watchdog: if a running task of this job makes no progress for
  /// this long, the watchdog fires the job's CancelToken (reclaiming the
  /// runner slot) and records a StallReport; the job retries per policy.
  /// Zero inherits ServiceConfig::stall_timeout (zero there = disabled).
  std::chrono::nanoseconds stall_timeout{0};
  /// Retry override; max_attempts == 0 inherits ServiceConfig::retry.
  RetryPolicy retry{0};
  /// Fault injector for this job only (chaos drills targeting one tenant);
  /// nullptr inherits ServiceConfig::fault.
  rt::FaultInjector* fault = nullptr;
};

/// Terminal verdict of one job. queue_ms covers submit -> dispatch (or ->
/// terminal for jobs that never ran), run_ms dispatch -> terminal.
struct JobOutcome {
  JobStatus status = JobStatus::Rejected;
  idx info = 0;  ///< CALU zero-pivot index (0 otherwise / non-LU)
  core::HealthReport health;
  rt::SchedulerStats sched;
  bool deadline_hit = false;  ///< the job's deadline fired its token
  std::string error;          ///< Failed: first task error's what()
  double queue_ms = 0.0;
  double run_ms = 0.0;
  double total_ms = 0.0;
  /// Attempts consumed (1 for a job that never retried; 0 for one that
  /// never ran). status/info/health/sched describe the final attempt.
  int attempts = 0;
  std::vector<double> attempt_run_ms;  ///< per-attempt run latency, in order
  double backoff_ms = 0.0;  ///< total time parked between attempts
  StallReport stall;        ///< last stall the watchdog cancelled (if any)
  /// ShedBreaker only: suggested client wait before resubmitting.
  double retry_after_ms = 0.0;
  /// Full factorization results (Completed jobs only; null otherwise).
  std::shared_ptr<core::CaluResult> lu;
  std::shared_ptr<core::CaqrResult> qr;
};

namespace detail {
struct JobRecord;
}

/// Copyable handle to one submitted job. All methods are thread-safe; a
/// default-constructed handle is invalid.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return rec_ != nullptr; }
  JobStatus status() const;
  QosClass qos() const;

  /// Block until the job reaches a terminal state; the reference stays
  /// valid as long as any handle to the job exists.
  const JobOutcome& wait() const;
  /// Like wait(), bounded; returns whether the job turned terminal.
  bool wait_for(std::chrono::nanoseconds timeout) const;

  /// Fire the job's CancelToken. A running job aborts cooperatively; a
  /// queued job completes as Cancelled when a dispatcher reaches it.
  void cancel() const;

 private:
  friend class Service;
  explicit JobHandle(std::shared_ptr<detail::JobRecord> rec)
      : rec_(std::move(rec)) {}
  std::shared_ptr<detail::JobRecord> rec_;
};

struct ServiceConfig {
  /// Run on this pool (must outlive the service); nullptr = the service
  /// owns a pool of num_threads workers.
  rt::WorkerPool* pool = nullptr;
  int num_threads = 0;  ///< owned-pool size; 0 = rt::default_num_threads()
  /// Dispatcher threads == graphs concurrently attached to the pool. Two
  /// keeps the pool busy while one job drains; more trades latency for
  /// overlap.
  int max_inflight = 2;
  std::size_t max_queue = 64;  ///< admission bound across all classes
  bool record_trace = false;   ///< per-job task traces (debugging only)
  bool monitor = true;         ///< numerical health monitoring per job
  /// Deterministic fault injection applied to every job's run (tests /
  /// chaos drills); a task throw turns that job Failed, never the service.
  rt::FaultInjector* fault = nullptr;
  /// Default retry policy for transient failures; max_attempts <= 1 keeps
  /// the PR 7 fail-fast behaviour.
  RetryPolicy retry;
  /// Per-tenant circuit breakers; disabled by default.
  BreakerConfig breaker;
  /// Default stall watchdog timeout (see JobRequest::stall_timeout);
  /// zero = stall detection off.
  std::chrono::nanoseconds stall_timeout{0};
};

/// Per-class / per-tenant terminal-state tallies. Latency sums are over
/// jobs that reached the corresponding terminal state.
struct QosStats {
  std::int64_t submitted = 0;  ///< admitted into the queue
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t shed_deadline = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t shed_breaker = 0;  ///< refused by an open breaker (not in
                                  ///< submitted)
  std::int64_t rejected = 0;   ///< refused at admission (not in submitted)
  std::int64_t retries = 0;    ///< re-enqueues after transient failures
  std::int64_t stalls_detected = 0;  ///< stall-watchdog cancels
  std::int64_t tasks_executed = 0;  ///< folded from each job's sched stats
  std::int64_t tasks_skipped = 0;
  std::int64_t fallback_panels = 0;  ///< folded from each job's health
  double queue_ms_sum = 0.0;
  double run_ms_sum = 0.0;
  std::int64_t shed() const {
    return shed_deadline + shed_queue_full + shed_breaker;
  }
};

/// Snapshot of one tenant's circuit breaker (ServiceStats::breakers).
struct BreakerStat {
  BreakerState state = BreakerState::Closed;
  std::int64_t opens = 0;   ///< Closed/HalfOpen -> Open transitions
  std::int64_t probes = 0;  ///< jobs admitted while half-open
};

struct ServiceStats {
  std::array<QosStats, kQosClasses> per_class;
  std::map<std::string, QosStats> per_tenant;
  std::size_t queued = 0;           ///< jobs waiting right now
  int inflight = 0;                 ///< jobs running right now
  std::size_t peak_queue_depth = 0;
  /// Deadline-watchdog heap entries right now (live + not-yet-pruned
  /// stale). Bounded by compaction: stale entries for terminal jobs are
  /// swept once they dominate the heap, so this gauge stays O(armed live
  /// jobs) under sustained submit/complete churn instead of growing
  /// without bound.
  std::size_t watchdog_entries = 0;
  /// Jobs parked in retry backoff right now (neither queued nor inflight).
  std::size_t retry_pending = 0;
  /// Per-tenant breaker snapshots (tenants that ever had a decisive
  /// outcome while breakers were enabled).
  std::map<std::string, BreakerStat> breakers;
};

class Service {
 public:
  explicit Service(const ServiceConfig& cfg = {});
  /// Stops accepting, runs every queued job, joins all threads.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  struct Admission {
    JobHandle handle;  ///< valid even for rejected jobs (status Rejected)
    bool accepted = false;
    /// Queue depth right after this submit — the backpressure signal: a
    /// submitter seeing depth near max_queue should slow down before its
    /// class starts getting shed or rejected.
    std::size_t queue_depth = 0;
    /// ShedBreaker only: suggested wait before this tenant resubmits.
    double retry_after_ms = 0.0;
  };
  Admission submit(const JobRequest& req);

  /// Block until no job is queued or running. Jobs submitted concurrently
  /// with the drain extend it.
  void drain();

  /// Stop accepting new jobs (submit returns Rejected). run_queued decides
  /// whether already-queued jobs are executed or completed as Cancelled;
  /// running jobs always finish (or hit their deadlines). Idempotent;
  /// blocks until all service threads have exited.
  void shutdown(bool run_queued = true);

  ServiceStats stats() const;
  std::size_t queue_depth() const;
  rt::WorkerPool& pool() { return *pool_; }

 private:
  struct Watchdog;

  /// One tenant's breaker state (guarded by mu_). `window` holds the last
  /// decisive outcomes, newest at the back; `failures` counts the true
  /// entries so the trip test is O(1) per outcome.
  struct Breaker {
    BreakerState state = BreakerState::Closed;
    std::deque<bool> window;  ///< true = failure
    int failures = 0;
    std::chrono::steady_clock::time_point open_until{};
    bool probe_inflight = false;
    std::int64_t opens = 0;
    std::int64_t probes = 0;
  };

  void runner_main();
  std::shared_ptr<detail::JobRecord> pop_next_locked();
  void run_job(const std::shared_ptr<detail::JobRecord>& rec);
  void finish(const std::shared_ptr<detail::JobRecord>& rec, JobOutcome out);
  void account_locked(const detail::JobRecord& rec, const JobOutcome& out);
  /// Breaker admission check for `tenant` (under mu_). Returns true to
  /// admit; false sets *retry_after_ms and the caller sheds ShedBreaker.
  bool breaker_admit_locked(const std::string& tenant, bool* probe,
                            double* retry_after_ms);
  /// Fold a decisive terminal outcome into the tenant's breaker (under mu_).
  void breaker_note_locked(const detail::JobRecord& rec,
                           const JobOutcome& out);
  /// Watchdog callback: a retry-backoff timer expired; requeue the job (or
  /// finalize it with its stashed last-attempt outcome if the service is
  /// dropping queued work).
  void retry_due(const std::shared_ptr<detail::JobRecord>& rec);
  /// Watchdog callback: scan the pool heartbeats for a worker stuck inside
  /// one of this job's tasks past its stall_timeout; on detection record a
  /// StallReport and fire the attempt's CancelToken.
  void check_stall(const std::shared_ptr<detail::JobRecord>& rec);

  ServiceConfig cfg_;
  std::unique_ptr<rt::WorkerPool> owned_pool_;
  rt::WorkerPool* pool_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    ///< runners: work or stop
  std::condition_variable drained_cv_;  ///< drain(): queue+inflight empty
  std::array<std::deque<std::shared_ptr<detail::JobRecord>>, kQosClasses>
      queue_;                       ///< guarded by mu_
  std::size_t total_queued_ = 0;    ///< guarded by mu_
  int inflight_ = 0;                ///< guarded by mu_
  std::size_t retry_pending_ = 0;   ///< guarded by mu_
  bool stopping_ = false;           ///< guarded by mu_
  bool drop_queued_ = false;        ///< guarded by mu_: shutdown(false)
  std::uint64_t next_seq_ = 0;      ///< guarded by mu_: admission order
  ServiceStats stats_;              ///< guarded by mu_ (gauges recomputed)
  std::map<std::string, Breaker> breakers_;  ///< guarded by mu_

  std::unique_ptr<Watchdog> watchdog_;
  std::vector<std::thread> runners_;
};

}  // namespace camult::svc
