#include "core/drivers.hpp"

#include <cassert>
#include <stdexcept>

#include "blas/blas.hpp"
#include "lapack/solve.hpp"

namespace camult::core {

idx calu_gesv(MatrixView a, MatrixView b, const CaluOptions& opts) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("calu_gesv: matrix must be square");
  }
  assert(b.rows() == a.rows());
  CaluResult res = calu_factor(a, opts);
  if (res.info != 0) return res.info;
  lapack::getrs(blas::Trans::NoTrans, a, res.ipiv, b);
  return 0;
}

void caqr_least_squares(MatrixView a, MatrixView b, const CaqrOptions& opts) {
  const idx n = a.cols();
  if (a.rows() < n) {
    throw std::invalid_argument("caqr_least_squares: matrix must be tall");
  }
  assert(b.rows() == a.rows());
  CaqrResult res = caqr_factor(a, opts);
  caqr_apply_q(blas::Trans::Trans, a, res, b);
  blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::NoTrans,
             blas::Diag::NonUnit, 1.0, a.block(0, 0, n, n),
             b.rows_range(0, n));
}

}  // namespace camult::core
