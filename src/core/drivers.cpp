#include "core/drivers.hpp"

#include <cassert>
#include <mutex>
#include <stdexcept>

#include "blas/blas.hpp"
#include "lapack/solve.hpp"

namespace camult::core {

idx calu_gesv(MatrixView a, MatrixView b, const CaluOptions& opts) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("calu_gesv: matrix must be square");
  }
  assert(b.rows() == a.rows());
  CaluResult res = calu_factor(a, opts);
  if (res.info != 0) return res.info;
  lapack::getrs(blas::Trans::NoTrans, a, res.ipiv, b);
  return 0;
}

void caqr_least_squares(MatrixView a, MatrixView b, const CaqrOptions& opts) {
  const idx n = a.cols();
  if (a.rows() < n) {
    throw std::invalid_argument("caqr_least_squares: matrix must be tall");
  }
  assert(b.rows() == a.rows());
  CaqrResult res = caqr_factor(a, opts);
  caqr_apply_q(blas::Trans::Trans, a, res, b);
  blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::NoTrans,
             blas::Diag::NonUnit, 1.0, a.block(0, 0, n, n),
             b.rows_range(0, n));
}

blas::BufferPoolStats pool_buffer_stats(rt::WorkerPool& pool) {
  blas::BufferPoolStats total;
  std::mutex mu;  // workers run the control fn concurrently
  pool.run_on_all_workers([&total, &mu] {
    const blas::BufferPoolStats mine = blas::buffer_pool_stats();
    std::lock_guard<std::mutex> lock(mu);
    total += mine;
  });
  return total;
}

void pool_buffer_trim(rt::WorkerPool& pool) {
  pool.run_on_all_workers([] { blas::buffer_pool_trim(); });
}

}  // namespace camult::core
