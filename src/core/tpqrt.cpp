#include "core/tpqrt.hpp"

#include <cassert>
#include <vector>

#include "blas/blas.hpp"
#include "lapack/householder.hpp"

namespace camult::core {

TriTriFactors tpqrt_tri(MatrixView r1, ConstMatrixView r2) {
  const idx b = r1.rows();
  assert(r1.cols() == b && r2.rows() == b && r2.cols() == b);

  TriTriFactors f;
  f.v2 = Matrix::zeros(b, b);
  for (idx j = 0; j < b; ++j) {
    for (idx i = 0; i <= j; ++i) f.v2(i, j) = r2(i, j);
  }
  f.t = Matrix::zeros(b, b);
  std::vector<double> tau(static_cast<std::size_t>(b), 0.0);

  for (idx j = 0; j < b; ++j) {
    // Reflector annihilating v2(0:j+1, j) against r1(j, j). The vector is
    // [r1(j,j); v2(0:j, j)] of length j + 2; larfg stores the tails back
    // into v2's column.
    double alpha = r1(j, j);
    tau[static_cast<std::size_t>(j)] =
        lapack::larfg(j + 2, alpha, f.v2.view().col_ptr(j), 1);
    r1(j, j) = alpha;
    const double tauj = tau[static_cast<std::size_t>(j)];
    if (tauj == 0.0) continue;

    // Apply to the remaining columns c > j:
    //   w = r1(j, c) + v2(0:j+1, j)^T v2(0:j+1, c)
    //   r1(j, c)      -= tau * w
    //   v2(0:j+1, c)  -= tau * w * v2(0:j+1, j)
    const double* vj = f.v2.view().col_ptr(j);
    for (idx c = j + 1; c < b; ++c) {
      double* vc = f.v2.view().col_ptr(c);
      double w = r1(j, c);
      for (idx i = 0; i <= j; ++i) w += vj[i] * vc[i];
      r1(j, c) -= tauj * w;
      const double s = tauj * w;
      for (idx i = 0; i <= j; ++i) vc[i] -= s * vj[i];
    }
  }

  // T factor over V = [I; V2]: T(k, i) = -tau_i * <V(:,k), V(:,i)> for
  // k < i reduces to -tau_i * <v2(:,k), v2(:,i)> (the identity rows are
  // orthogonal), followed by the usual triangular accumulation.
  for (idx i = 0; i < b; ++i) {
    const double taui = tau[static_cast<std::size_t>(i)];
    if (taui == 0.0) {
      for (idx k = 0; k < i; ++k) f.t(k, i) = 0.0;
    } else {
      const double* vi = f.v2.view().col_ptr(i);
      for (idx k = 0; k < i; ++k) {
        const double* vk = f.v2.view().col_ptr(k);
        double s = 0.0;
        for (idx r = 0; r <= k; ++r) s += vk[r] * vi[r];
        f.t(k, i) = -taui * s;
      }
      blas::trmv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit,
                 f.t.view().block(0, 0, i, i), f.t.view().col_ptr(i), 1);
    }
    f.t(i, i) = taui;
  }
  return f;
}

void tpmqrt_tri(blas::Trans trans, const TriTriFactors& f, MatrixView c1,
                MatrixView c2) {
  const idx b = f.v2.rows();
  assert(c1.rows() == b && c2.rows() == b);
  assert(c1.cols() == c2.cols());
  const idx nc = c1.cols();
  if (nc == 0) return;

  // W = C1 + V2^T C2.
  Matrix w = Matrix::from(c2);
  blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::Trans,
             blas::Diag::NonUnit, 1.0, f.v2.view(), w.view());
  for (idx j = 0; j < nc; ++j) {
    double* wc = w.view().col_ptr(j);
    const double* c1c = c1.col_ptr(j);
    for (idx i = 0; i < b; ++i) wc[i] += c1c[i];
  }
  // W := T W (apply Q) or T^T W (apply Q^T).
  blas::trmm(blas::Side::Left, blas::Uplo::Upper,
             trans == blas::Trans::NoTrans ? blas::Trans::NoTrans
                                           : blas::Trans::Trans,
             blas::Diag::NonUnit, 1.0, f.t.view(), w.view());
  // C1 -= W; C2 -= V2 W.
  for (idx j = 0; j < nc; ++j) {
    double* c1c = c1.col_ptr(j);
    const double* wc = w.view().col_ptr(j);
    for (idx i = 0; i < b; ++i) c1c[i] -= wc[i];
  }
  blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::NoTrans,
             blas::Diag::NonUnit, 1.0, f.v2.view(), w.view());
  for (idx j = 0; j < nc; ++j) {
    double* c2c = c2.col_ptr(j);
    const double* wc = w.view().col_ptr(j);
    for (idx i = 0; i < b; ++i) c2c[i] -= wc[i];
  }
}

}  // namespace camult::core
