#include "core/tsqr.hpp"

#include <cassert>
#include <stdexcept>

#include "lapack/geqrf.hpp"
#include "lapack/orgqr.hpp"

namespace camult::core {

TsqrLeaf tsqr_leaf_kernel(MatrixView block, idx start) {
  TsqrLeaf leaf;
  leaf.start = start;
  leaf.rows = block.rows();
  leaf.t = Matrix::zeros(block.cols(), block.cols());
  lapack::geqr3(block, leaf.tau, leaf.t.view());
  return leaf;
}

TsqrNode tsqr_node_kernel(MatrixView a, const std::vector<idx>& src_start,
                          idx n) {
  assert(src_start.size() >= 2);
  TsqrNode node;
  node.src_start = src_start;
  node.src_rows.assign(src_start.size(), n);

  const idx total = static_cast<idx>(src_start.size()) * n;
  node.vt = Matrix::zeros(total, n);
  // Gather the R factors: each is the upper triangle of the slice's top
  // n x n (below-diagonal entries there are leaf/older V tails — NOT part
  // of R, so gather only the triangle).
  for (std::size_t s = 0; s < src_start.size(); ++s) {
    const idx dst0 = static_cast<idx>(s) * n;
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i <= j; ++i) {
        node.vt(dst0 + i, j) = a(src_start[s] + i, j);
      }
    }
  }
  node.t = Matrix::zeros(n, n);
  std::vector<double> tau;
  lapack::geqr3(node.vt.view(), tau, node.t.view());

  // Scatter the new R into the first slice's upper triangle.
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= j; ++i) {
      a(src_start[0] + i, j) = node.vt(i, j);
    }
  }
  return node;
}

TsqrNode tsqr_node_kernel_tri(MatrixView a, idx src0, idx src1, idx n) {
  TsqrNode node;
  node.src_start = {src0, src1};
  node.src_rows = {n, n};
  node.structured = true;
  node.tri = tpqrt_tri(a.block(src0, 0, n, n), a.block(src1, 0, n, n));
  return node;
}

void tsqr_leaf_apply(blas::Trans trans, ConstMatrixView a,
                     const TsqrLeaf& leaf, MatrixView c) {
  const idx n = leaf.t.rows();
  lapack::larfb_left(trans, a.block(leaf.start, 0, leaf.rows, n),
                     leaf.t.view(), c.rows_range(leaf.start, leaf.rows));
}

void tsqr_node_apply(blas::Trans trans, const TsqrNode& node, MatrixView c) {
  if (node.structured) {
    const idx nb = node.tri.v2.rows();
    tpmqrt_tri(trans, node.tri, c.block(node.src_start[0], 0, nb, c.cols()),
               c.block(node.src_start[1], 0, nb, c.cols()));
    return;
  }
  const idx n = node.t.rows();
  const idx slices = static_cast<idx>(node.src_start.size());
  Matrix stacked(slices * n, c.cols());
  for (idx s = 0; s < slices; ++s) {
    copy_into(c.block(node.src_start[static_cast<std::size_t>(s)], 0, n,
                      c.cols()),
              stacked.view().rows_range(s * n, n));
  }
  lapack::larfb_left(trans, node.vt.view(), node.t.view(), stacked.view());
  for (idx s = 0; s < slices; ++s) {
    copy_into(stacked.view().rows_range(s * n, n),
              c.block(node.src_start[static_cast<std::size_t>(s)], 0, n,
                      c.cols()));
  }
}

lapack::LarfbPackedV tsqr_leaf_pack(ConstMatrixView a, const TsqrLeaf& leaf) {
  const idx n = leaf.t.rows();
  return lapack::larfb_pack_v(a.block(leaf.start, 0, leaf.rows, n));
}

void tsqr_leaf_apply(blas::Trans trans, ConstMatrixView a,
                     const TsqrLeaf& leaf, const lapack::LarfbPackedV& vp,
                     MatrixView c) {
  const idx n = leaf.t.rows();
  lapack::larfb_left(trans, a.block(leaf.start, 0, leaf.rows, n),
                     leaf.t.view(), vp, c.rows_range(leaf.start, leaf.rows));
}

lapack::LarfbPackedV tsqr_node_pack(const TsqrNode& node) {
  if (node.structured) return {};
  return lapack::larfb_pack_v(node.vt.view());
}

void tsqr_node_apply(blas::Trans trans, const TsqrNode& node,
                     const lapack::LarfbPackedV& vp, MatrixView c) {
  if (node.structured) {
    tsqr_node_apply(trans, node, c);
    return;
  }
  const idx n = node.t.rows();
  const idx slices = static_cast<idx>(node.src_start.size());
  Matrix stacked(slices * n, c.cols());
  for (idx s = 0; s < slices; ++s) {
    copy_into(c.block(node.src_start[static_cast<std::size_t>(s)], 0, n,
                      c.cols()),
              stacked.view().rows_range(s * n, n));
  }
  lapack::larfb_left(trans, node.vt.view(), node.t.view(), vp,
                     stacked.view());
  for (idx s = 0; s < slices; ++s) {
    copy_into(stacked.view().rows_range(s * n, n),
              c.block(node.src_start[static_cast<std::size_t>(s)], 0, n,
                      c.cols()));
  }
}

TsqrFactors tsqr_factor(MatrixView a, const TsqrOptions& opts) {
  const idx m = a.rows();
  const idx n = a.cols();
  if (m < n) {
    throw std::invalid_argument("tsqr_factor: matrix must be tall (m >= n)");
  }
  TsqrFactors f;
  f.m = m;
  f.n = n;
  f.tree = opts.tree;
  f.part = partition_panel_rows(m, n, opts.tr, n);

  const idx leaves = f.part.count();
  for (idx i = 0; i < leaves; ++i) {
    const idx start = f.part.start[static_cast<std::size_t>(i)];
    const idx rows = f.part.rows[static_cast<std::size_t>(i)];
    f.leaves.push_back(tsqr_leaf_kernel(a.block(start, 0, rows, n), start));
  }
  for (const ReductionStep& step :
       reduction_schedule(static_cast<int>(leaves), opts.tree)) {
    std::vector<idx> src;
    src.reserve(step.sources.size());
    for (int s : step.sources) {
      src.push_back(f.part.start[static_cast<std::size_t>(s)]);
    }
    if (opts.structured_nodes && src.size() == 2) {
      f.nodes.push_back(tsqr_node_kernel_tri(a, src[0], src[1], n));
    } else {
      f.nodes.push_back(tsqr_node_kernel(a, src, n));
    }
  }
  return f;
}

void tsqr_apply_q(blas::Trans trans, ConstMatrixView a,
                  const TsqrFactors& factors, MatrixView c) {
  assert(c.rows() == factors.m);
  if (trans == blas::Trans::Trans) {
    // Q^T = (node_k^T ... node_1^T) (leaf^T ...): leaves first, then nodes
    // in reduction order — the factorization direction.
    for (const TsqrLeaf& leaf : factors.leaves) {
      tsqr_leaf_apply(blas::Trans::Trans, a, leaf, c);
    }
    for (const TsqrNode& node : factors.nodes) {
      tsqr_node_apply(blas::Trans::Trans, node, c);
    }
  } else {
    for (auto it = factors.nodes.rbegin(); it != factors.nodes.rend(); ++it) {
      tsqr_node_apply(blas::Trans::NoTrans, *it, c);
    }
    for (const TsqrLeaf& leaf : factors.leaves) {
      tsqr_leaf_apply(blas::Trans::NoTrans, a, leaf, c);
    }
  }
}

Matrix tsqr_explicit_q(ConstMatrixView a, const TsqrFactors& factors) {
  Matrix q = Matrix::identity(factors.m, factors.n);
  tsqr_apply_q(blas::Trans::NoTrans, a, factors, q.view());
  return q;
}

Matrix tsqr_extract_r(ConstMatrixView a, const TsqrFactors& factors) {
  Matrix r = Matrix::zeros(factors.n, factors.n);
  for (idx j = 0; j < factors.n; ++j) {
    for (idx i = 0; i <= j; ++i) r(i, j) = a(i, j);
  }
  return r;
}

}  // namespace camult::core
