// drivers.hpp — one-call solver drivers on top of the communication-
// avoiding factorizations.
#pragma once

#include "core/calu.hpp"
#include "core/caqr.hpp"

namespace camult::core {

/// Factor A (n x n, destroyed) with CALU and solve A X = B in place
/// (B is n x nrhs). Returns 0 or the 1-based index of the first zero pivot
/// (B untouched on failure).
idx calu_gesv(MatrixView a, MatrixView b, const CaluOptions& opts = {});

/// Least squares min ||A X - B||_F for tall A (m >= n, destroyed) via
/// CAQR. B is m x nrhs on entry; the n x nrhs solution occupies its first
/// n rows on exit.
void caqr_least_squares(MatrixView a, MatrixView b,
                        const CaqrOptions& opts = {});

}  // namespace camult::core
