// drivers.hpp — one-call solver drivers on top of the communication-
// avoiding factorizations.
#pragma once

#include "core/calu.hpp"
#include "core/caqr.hpp"

namespace camult::core {

/// Factor A (n x n, destroyed) with CALU and solve A X = B in place
/// (B is n x nrhs). Returns 0 or the 1-based index of the first zero pivot
/// (B untouched on failure).
idx calu_gesv(MatrixView a, MatrixView b, const CaluOptions& opts = {});

/// Least squares min ||A X - B||_F for tall A (m >= n, destroyed) via
/// CAQR. B is m x nrhs on entry; the n x nrhs solution occupies its first
/// n rows on exit.
void caqr_least_squares(MatrixView a, MatrixView b,
                        const CaqrOptions& opts = {});

/// Aggregate blas::buffer_pool_stats() over every worker thread of `pool`
/// (the slab pools are thread-local, so the calling thread only ever sees
/// its own counters). The pool must be otherwise idle enough to run a
/// control task on each worker; do not call from a pool worker.
blas::BufferPoolStats pool_buffer_stats(rt::WorkerPool& pool);

/// blas::buffer_pool_trim() on every worker thread of `pool`: releases all
/// cached slabs pool-wide (live ScratchBuffers unaffected). The thread-
/// local trim only drops the calling thread's slabs; this is the hook for
/// reclaiming a persistent pool's steady-state scratch memory.
void pool_buffer_trim(rt::WorkerPool& pool);

}  // namespace camult::core
