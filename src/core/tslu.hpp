// tslu.hpp — TSLU: communication-avoiding LU of a tall-skinny panel
// (sequential driver; the task-parallel version lives inside CALU).
//
// Two phases (paper Section II):
//  1. tournament pivoting over a reduction tree elects b pivot rows;
//  2. the pivots are swapped to the top and the whole panel is factored
//     against the b x b LU of the winners (no further pivoting needed).
//
// With tr == 1 or b == panel columns the result is bitwise the GEPP
// factorization (same pivot choices on distinct-magnitude inputs).
#pragma once

#include "core/options.hpp"
#include "lapack/getrf.hpp"
#include "matrix/permutation.hpp"

namespace camult::core {

struct TsluOptions {
  idx tr = 4;  ///< leaf count of the tournament (paper's T_r)
  ReductionTree tree = ReductionTree::Binary;
  /// GEPP kernel at tournament leaves/nodes. The paper uses recursive LU
  /// ("rgetf2") because it runs at BLAS-3 speed on out-of-cache panels;
  /// BLAS-2 getf2 can win when the panel is cache resident.
  lapack::LuPanelKernel leaf_kernel = lapack::LuPanelKernel::Recursive;
  /// Health monitoring with graceful degradation: screen the panel for
  /// non-finite entries and, when the tournament elects a zero/degenerate
  /// pivot or its growth exceeds growth_limit, discard the tournament and
  /// refactor the (still untouched) panel with full-panel GEPP. Off = the
  /// LAPACK-style complete-with-Inf behaviour.
  bool monitor = true;
  /// Pivot-growth threshold max|U_KK| / max|panel| above which the monitor
  /// falls back to GEPP; <= 0 disables the growth trigger (zero pivots
  /// still trigger). The default passes every GEPP-stable matrix — even
  /// Wilkinson's 2^(n-1) worst case at the panel widths used here — and
  /// catches the pathological tournament outcomes well past it.
  double growth_limit = 1e12;
};

/// Factor an m x b panel in place: on exit the unit lower trapezoid holds L,
/// the upper triangle holds U, and ipiv (resized to b) is the swap sequence
/// (laswp convention, relative to the panel top). Requires m >= b.
/// Returns 0, or the 1-based index of the first zero pivot.
/// `health`, when non-null, receives the panel's screen/growth/fallback
/// verdict (fallback_list uses panel index 0).
idx tslu_factor(MatrixView panel, PivotVector& ipiv,
                const TsluOptions& opts = {}, HealthReport* health = nullptr);

/// X := X * U^{-1} against the upper triangle of `lu` (the TSLU "remaining
/// rows of L" solve), skipping the divide for exactly-zero diagonal entries
/// so an exactly singular U_KK yields finite (if rank-deficient) L instead
/// of a column of Inf — the same convention as getf2's skipped scal. Used
/// on the info != 0 path only: when every pivot is nonzero the callers keep
/// blas::trsm, whose operation order this plain loop does not reproduce
/// bit-for-bit.
void guarded_l_solve(ConstMatrixView lu, MatrixView x);

}  // namespace camult::core
