// tslu.hpp — TSLU: communication-avoiding LU of a tall-skinny panel
// (sequential driver; the task-parallel version lives inside CALU).
//
// Two phases (paper Section II):
//  1. tournament pivoting over a reduction tree elects b pivot rows;
//  2. the pivots are swapped to the top and the whole panel is factored
//     against the b x b LU of the winners (no further pivoting needed).
//
// With tr == 1 or b == panel columns the result is bitwise the GEPP
// factorization (same pivot choices on distinct-magnitude inputs).
#pragma once

#include "core/options.hpp"
#include "lapack/getrf.hpp"
#include "matrix/permutation.hpp"

namespace camult::core {

struct TsluOptions {
  idx tr = 4;  ///< leaf count of the tournament (paper's T_r)
  ReductionTree tree = ReductionTree::Binary;
  /// GEPP kernel at tournament leaves/nodes. The paper uses recursive LU
  /// ("rgetf2") because it runs at BLAS-3 speed on out-of-cache panels;
  /// BLAS-2 getf2 can win when the panel is cache resident.
  lapack::LuPanelKernel leaf_kernel = lapack::LuPanelKernel::Recursive;
};

/// Factor an m x b panel in place: on exit the unit lower trapezoid holds L,
/// the upper triangle holds U, and ipiv (resized to b) is the swap sequence
/// (laswp convention, relative to the panel top). Requires m >= b.
/// Returns 0, or the 1-based index of the first zero pivot.
idx tslu_factor(MatrixView panel, PivotVector& ipiv,
                const TsluOptions& opts = {});

}  // namespace camult::core
