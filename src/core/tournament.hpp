// tournament.hpp — tournament-pivoting kernels (the preprocessing step of
// TSLU, paper Section II).
//
// Each node of the reduction tree plays a "match": Gaussian elimination with
// partial pivoting on the stacked candidate rows elects the b best pivot
// rows, which advance to the next round. Candidates carry the ORIGINAL row
// values (the arrow notation's f(A) returns permuted rows of A, not U) plus
// their global row indices so the final permutation can be reconstructed.
#pragma once

#include <vector>

#include "lapack/getrf.hpp"
#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"

namespace camult::core {

/// A set of <= b candidate pivot rows surviving a tournament round.
struct Candidates {
  Matrix values;               ///< r x b candidate rows (original values)
  std::vector<idx> row_index;  ///< global row index of each candidate row
  /// Packed LU factors (getf2 layout) of the stacked rows this node
  /// eliminated, restricted to its top r x b block. Only consumed at the
  /// root, where it provides L_KK / U_KK for free.
  Matrix lu_top;
};

/// Leaf match: GEPP on a copy of `block` (rows of the panel starting at
/// global row `row_offset`); elects min(b, block.rows()) pivot rows.
Candidates tournament_leaf(
    ConstMatrixView block, idx row_offset, idx b,
    lapack::LuPanelKernel kernel = lapack::LuPanelKernel::Recursive);

/// Internal match: stack the candidate sets and run GEPP on the stack;
/// elects min(b, total rows) pivot rows. `sources` must be non-empty.
Candidates tournament_combine(
    const std::vector<const Candidates*>& sources, idx b,
    lapack::LuPanelKernel kernel = lapack::LuPanelKernel::Recursive);

/// Convert the winners into a LAPACK-style swap sequence over the panel:
/// swap step k brings winner k (global row winners[k]) to row k. The
/// sequence accounts for earlier swaps displacing rows.
PivotVector winners_to_pivots(const std::vector<idx>& winners, idx panel_rows);

/// Input screening for the health monitor: largest finite magnitude in
/// `panel` and whether any entry is non-finite. Runs on the pre-mutation
/// panel (the tournament only reads it), so the verdict describes the
/// actual input.
struct PanelScreen {
  double absmax = 0.0;  ///< max |finite entry|; 0 for an all-zero panel
  bool nonfinite = false;
};
PanelScreen screen_panel(ConstMatrixView panel);

/// Degeneracy check on a packed LU block (getf2 layout — U on and above the
/// diagonal): max |U| over the leading `b` columns and whether any diagonal
/// entry is exactly zero. Applied to the tournament root's lu_top this
/// tells, BEFORE the panel is overwritten, whether installing the
/// tournament's U_KK would divide by zero or exceed the growth limit.
struct RootCheck {
  double umax = 0.0;
  bool zero_pivot = false;
};
RootCheck check_packed_lu(ConstMatrixView lu, idx b);

}  // namespace camult::core
