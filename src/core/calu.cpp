#include "core/calu.hpp"

#include <cassert>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "blas/blas.hpp"
#include "core/lookahead.hpp"
#include "core/partition.hpp"
#include "core/tournament.hpp"
#include "core/tslu.hpp"
#include "lapack/getf2.hpp"
#include "lapack/laswp.hpp"
#include "runtime/dep_tracker.hpp"

namespace camult::core {
// Named (not anonymous) so CaluAsync::Impl — whose type is declared in the
// public header — can hold a CaluJob without giving an external-linkage
// class an internal-linkage member.
namespace calu_impl {

using rt::AccessMode;
using rt::BlockAccess;
using rt::TaskId;
using rt::TaskKind;

// Key spaces for the dependency tracker: matrix tiles, tournament candidate
// slots, and the per-iteration pivot decision. The candidate-slot stride is
// derived from the real per-iteration slot bound (see calu_submit) — a fixed
// stride would silently alias iteration k's keys with iteration k+1's once a
// panel produced more slots than the stride, corrupting the DAG. The
// iteration index `k` here is a KeyRing slot in windowed mode (the dep-key
// spaces wrap modulo window + 2 — see lookahead.hpp) and the global index
// otherwise; checked_key_offset throws instead of wrapping past the 2^59
// per-space envelope, which keeps (1<<60) | (1<<61) | (1<<62) disjoint.
rt::BlockKey tile_key(idx i, idx j) { return rt::block_key(i, j); }
rt::BlockKey cand_key(idx k, idx slot, idx stride) {
  return (idx{1} << 60) + checked_key_offset(k, stride, slot);
}
rt::BlockKey piv_key(idx k) {
  return (idx{1} << 61) + checked_key_offset(k, 1, 0);
}
// One key per (iteration, leaf) packed L block; same stride bound as the
// candidate slots, so the spaces stay disjoint across iterations.
rt::BlockKey pack_key(idx k, idx slot, idx stride) {
  return (idx{1} << 62) + checked_key_offset(k, stride, slot);
}

// Per-iteration shared state, kept alive until the graph drains.
struct IterState {
  RowPartition part;             // panel row partition (panel-relative)
  std::vector<Candidates> slot;  // tournament slots
  PivotVector piv;               // panel-local swap sequence
  // Packed L block per leaf, built by the iteration's pack tasks and read
  // (concurrently) by its S tasks; an end-of-iteration task returns the
  // slabs to the buffer pool so iteration k+1's packs reuse them.
  std::vector<blas::PackedPanel> lpack;
  idx jb = 0;
  // The health monitor refactored this panel with full GEPP inside the
  // pivot task; the L tasks (whose work GEPP already did) become no-ops.
  // Plain bool: written by the pivot task, read by tasks ordered after it
  // through the panel-tile dependency edges.
  bool fell_back = false;
};

// Per-panel health verdict, single-writer (panel k's pivot task), read at
// collect after the graph drained.
struct PanelHealthSlot {
  double growth = 0.0;
  bool nonfinite = false;
  bool fell_back = false;
};

void add_tile_range(std::vector<BlockAccess>& acc, idx i0, idx i1, idx j,
                    AccessMode mode) {
  for (idx i = i0; i < i1; ++i) acc.push_back({tile_key(i, j), mode});
}

// Submission-side state for the sliding-window pump: everything the
// per-iteration submit loop needs to resume where it left off. Lives on the
// job (heap, stable address) because calu_collect keeps pumping after the
// constructor returned. With window == 0 the pump degenerates to the old
// submit-everything-up-front loop run to completion inside calu_submit.
struct CaluSubmitCtx {
  MatrixView a;
  CaluOptions opts;
  idx m = 0, n = 0, k_total = 0, b = 0;
  idx n_panels = 0, n_blocks = 0, m_blocks = 0;
  idx cand_stride = 0;
  idx window = 0;   // 0 = full-DAG mode
  KeyRing ring;     // dep-key reuse across retired iterations
  rt::DepTracker tracker;
  LookaheadPriorities prio;
  // Task ids are assigned densely in submission order, so the id can be
  // known before submit() and used to register the block accesses.
  TaskId next_id = 0;
  idx next_k = 0;           // first not-yet-submitted iteration
  bool swaps_done = false;  // deferred left swaps submitted
};

// Everything a submitted-but-not-yet-collected factorization keeps alive.
// Task lambdas hold raw pointers into these members (result.ipiv,
// panel_info slots, IterStates), so a CaluJob must not move between
// submit and collect — the batch driver heap-allocates each job.
struct CaluJob {
  CaluResult result;
  std::vector<idx> panel_info;
  std::vector<PanelHealthSlot> panel_health;
  std::vector<std::unique_ptr<IterState>> iters;
  std::unique_ptr<rt::TaskGraph> graph;
  std::unique_ptr<CaluSubmitCtx> ctx;
};

TaskId calu_add_task(CaluJob& job, const std::vector<BlockAccess>& acc,
                     rt::TaskOptions topts, std::function<void()> fn) {
  CaluSubmitCtx& C = *job.ctx;
  topts.priority = biased_priority(topts.priority, C.opts.priority_bias);
  const std::vector<TaskId> deps = C.tracker.depends(C.next_id, acc);
  const TaskId id = job.graph->submit(deps, std::move(topts), std::move(fn));
  assert(id == C.next_id);
  ++C.next_id;
  return id;
}

// Submit every task of panel iteration k (tournament, pivot, L, pack, U, S,
// pack release). Identical task bodies, priorities, and dependency structure
// whether the pump runs it eagerly (full-DAG) or throttled (windowed) — only
// the dep-key indices wrap through the KeyRing in windowed mode, which
// resolves to the same edges because the previous slot owner has retired.
void calu_submit_iteration(CaluJob& job, idx k) {
  CaluSubmitCtx& C = *job.ctx;
  MatrixView a = C.a;
  const CaluOptions& opts = C.opts;
  const idx m = C.m;
  const idx n = C.n;
  const idx k_total = C.k_total;
  const idx b = C.b;
  const idx n_blocks = C.n_blocks;
  const idx m_blocks = C.m_blocks;
  const idx cand_stride = C.cand_stride;
  const idx kr = C.ring.slot(k);  // dep-key iteration index
  const LookaheadPriorities& prio = C.prio;
  std::vector<std::unique_ptr<IterState>>& iters = job.iters;
  auto add_task = [&job](const std::vector<BlockAccess>& acc,
                         rt::TaskOptions topts,
                         std::function<void()> fn) -> TaskId {
    return calu_add_task(job, acc, std::move(topts), std::move(fn));
  };

  {
    const idx row0 = k * b;                        // panel top row
    const idx jb = std::min(b, k_total - row0);    // panel width
    const idx col0 = row0;                         // panel left column
    const idx panel_rows = m - row0;
    const idx kb = row0 / b;                       // block row/col index

    auto st = std::make_unique<IterState>();
    st->jb = jb;
    st->part = partition_panel_rows(panel_rows, b, opts.tr, jb);
    const idx leaves = st->part.count();
    st->slot.resize(static_cast<std::size_t>(leaves));
    if (opts.pack_trailing) st->lpack.resize(static_cast<std::size_t>(leaves));
    IterState* S = st.get();
    iters.push_back(std::move(st));

    MatrixView panel = a.block(row0, col0, panel_rows, jb);

    // --- Task P (leaves): tournament round 1.
    for (idx i = 0; i < leaves; ++i) {
      const idx lstart = S->part.start[static_cast<std::size_t>(i)];
      const idx lrows = S->part.rows[static_cast<std::size_t>(i)];
      std::vector<BlockAccess> acc;
      add_tile_range(acc, kb + lstart / b, kb + (lstart + lrows + b - 1) / b,
                     kb, AccessMode::Read);
      acc.push_back({cand_key(kr, i, cand_stride), AccessMode::Write});
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = prio.panel(k);
      topts.label = "leaf" + std::to_string(i);
      const lapack::LuPanelKernel kern = opts.leaf_kernel;
      add_task(acc, std::move(topts), [S, panel, lstart, lrows, i, b, kern]() {
        S->slot[static_cast<std::size_t>(i)] = tournament_leaf(
            panel.block(lstart, 0, lrows, panel.cols()), lstart, b, kern);
      });
    }

    // --- Task P (tree nodes).
    for (const ReductionStep& step :
         reduction_schedule(static_cast<int>(leaves), opts.tree)) {
      std::vector<BlockAccess> acc;
      acc.push_back({cand_key(kr, step.sources.front(), cand_stride),
                     AccessMode::ReadWrite});
      for (std::size_t s = 1; s < step.sources.size(); ++s) {
        acc.push_back(
            {cand_key(kr, step.sources[s], cand_stride), AccessMode::Read});
      }
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = prio.panel(k);
      topts.label = "node l" + std::to_string(step.level);
      std::vector<int> sources = step.sources;
      const lapack::LuPanelKernel kern = opts.leaf_kernel;
      add_task(acc, std::move(topts), [S, sources, b, kern]() {
        std::vector<const Candidates*> srcs;
        srcs.reserve(sources.size());
        for (int s : sources) {
          srcs.push_back(&S->slot[static_cast<std::size_t>(s)]);
        }
        Candidates combined = tournament_combine(srcs, b, kern);
        S->slot[static_cast<std::size_t>(sources.front())] =
            std::move(combined);
      });
    }

    // --- Task P (pivot placement): build the swap sequence, swap the panel
    // rows, install the root's packed LU as the top jb x jb block.
    {
      std::vector<BlockAccess> acc;
      acc.push_back({cand_key(kr, 0, cand_stride), AccessMode::Read});
      acc.push_back({piv_key(kr), AccessMode::Write});
      add_tile_range(acc, kb, m_blocks, kb, AccessMode::ReadWrite);
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = prio.panel(k);
      topts.label = "pivot";
      PivotVector* global_ipiv = &job.result.ipiv;
      idx* info_slot = &job.panel_info[static_cast<std::size_t>(k)];
      PanelHealthSlot* hslot = &job.panel_health[static_cast<std::size_t>(k)];
      const bool monitor = opts.monitor;
      const double growth_limit = opts.growth_limit;
      const lapack::LuPanelKernel kern = opts.leaf_kernel;
      add_task(acc, std::move(topts), [S, panel, row0, jb, global_ipiv,
                                       info_slot, hslot, monitor,
                                       growth_limit, kern]() {
        const Candidates& root = S->slot[0];
        // Health decision point: the tournament only READ the panel, and
        // the root's packed LU is exactly the U_KK about to be installed —
        // so a degenerate outcome (zero pivot / growth past the limit) is
        // known while a full-panel GEPP retry is still possible. A
        // non-finite panel is flagged but never "rescued" (GEPP on NaN is
        // equally lost).
        PanelScreen scr;
        if (monitor) scr = screen_panel(panel);
        RootCheck rc = check_packed_lu(root.lu_top.view(), jb);
        const bool fall_back =
            monitor && !scr.nonfinite &&
            (rc.zero_pivot || (growth_limit > 0.0 && scr.absmax > 0.0 &&
                               rc.umax > growth_limit * scr.absmax));
        if (fall_back) {
          S->fell_back = true;
          const idx inf = kern == lapack::LuPanelKernel::Recursive
                              ? lapack::rgetf2(panel, S->piv)
                              : lapack::getf2(panel, S->piv);
          if (inf != 0) *info_slot = row0 + inf;
          // GEPP factored the whole panel (the L tasks become no-ops);
          // re-measure growth from the factors it actually produced.
          rc = check_packed_lu(panel, jb);
        } else {
          S->piv = winners_to_pivots(root.row_index, panel.rows());
          lapack::laswp(panel, 0, jb, S->piv);
          copy_into(root.lu_top.view().block(0, 0, jb, jb),
                    panel.rows_range(0, jb));
          for (idx j = 0; j < jb; ++j) {
            if (panel(j, j) == 0.0 && *info_slot == 0) {
              *info_slot = row0 + j + 1;
            }
          }
        }
        for (idx j = 0; j < jb; ++j) {
          (*global_ipiv)[static_cast<std::size_t>(row0 + j)] =
              row0 + S->piv[static_cast<std::size_t>(j)];
        }
        if (monitor) {
          hslot->nonfinite = scr.nonfinite;
          hslot->fell_back = fall_back;
          hslot->growth = scr.absmax > 0.0 ? rc.umax / scr.absmax : 0.0;
        }
      });
    }

    // --- Task L: remaining rows of the panel's L factor, one task per leaf.
    for (idx i = 0; i < leaves; ++i) {
      idx lstart = S->part.start[static_cast<std::size_t>(i)];
      idx lrows = S->part.rows[static_cast<std::size_t>(i)];
      if (i == 0) {  // top jb rows already hold L_KK/U_KK
        lstart += jb;
        lrows -= jb;
      }
      if (lrows <= 0) continue;
      std::vector<BlockAccess> acc;
      acc.push_back({tile_key(kb, kb), AccessMode::Read});  // U_KK
      add_tile_range(acc, kb + lstart / b, kb + (lstart + lrows + b - 1) / b,
                     kb, AccessMode::ReadWrite);
      rt::TaskOptions topts;
      topts.kind = TaskKind::LFactor;
      topts.iteration = static_cast<int>(k);
      topts.priority = prio.lfactor(k);
      topts.label = "L" + std::to_string(i);
      idx* info_slot = &job.panel_info[static_cast<std::size_t>(k)];
      add_task(acc, std::move(topts), [S, panel, lstart, lrows, jb,
                                       info_slot]() {
        // Ordered after the pivot task through the panel-tile edges, so
        // both flags are stable here. A fallback panel was fully factored
        // by GEPP already; a singular U_KK (monitor off / non-finite input)
        // takes the guarded solve so the factors stay finite.
        if (S->fell_back) return;
        if (*info_slot == 0) {
          blas::trsm(blas::Side::Right, blas::Uplo::Upper,
                     blas::Trans::NoTrans, blas::Diag::NonUnit, 1.0,
                     panel.rows_range(0, jb), panel.rows_range(lstart, lrows));
        } else {
          guarded_l_solve(panel.rows_range(0, jb),
                          panel.rows_range(lstart, lrows));
        }
      });
    }

    // Trailing column segments: when the (last) panel is narrower than its
    // column block, the leftover columns of block kb still need this
    // iteration's U treatment; then the full blocks to the right, grouped
    // into super-blocks of update_cols_per_task panels (the Section V
    // "B > b" extension; 1 recovers the base algorithm).
    struct ColSegment {
      idx col0, cols, jblk0, jblk1;  // [jblk0, jblk1) tile columns
    };
    std::vector<ColSegment> segments;
    if (col0 + jb < std::min(n, (kb + 1) * b)) {
      segments.push_back(
          {col0 + jb, std::min(n, (kb + 1) * b) - (col0 + jb), kb, kb + 1});
    }
    const idx group = std::max<idx>(1, opts.update_cols_per_task);
    for (idx jblk = kb + 1; jblk < n_blocks; jblk += group) {
      const idx jend = std::min(n_blocks, jblk + group);
      const idx jcol0 = jblk * b;
      segments.push_back(
          {jcol0, std::min(n, jend * b) - jcol0, jblk, jend});
    }

    // --- Pack tasks: copy each leaf's L block into microkernel panel
    // layout ONCE; every S task of this iteration then consumes the shared
    // read-only pack instead of repacking L per column segment. The pack
    // reads the L tiles (ordering it after the L tasks and before the
    // deferred left swaps, which see the tiles' post-update values) and
    // publishes the pack_key the S tasks read.
    const bool pack_here = opts.pack_trailing && !segments.empty();
    if (pack_here) {
      for (idx i = 0; i < leaves; ++i) {
        idx lstart = S->part.start[static_cast<std::size_t>(i)];
        idx lrows = S->part.rows[static_cast<std::size_t>(i)];
        if (i == 0) {
          lstart += jb;
          lrows -= jb;
        }
        if (lrows <= 0) continue;
        std::vector<BlockAccess> acc;
        add_tile_range(acc, kb + lstart / b, kb + (lstart + lrows + b - 1) / b,
                       kb, AccessMode::Read);
        acc.push_back({pack_key(kr, i, cand_stride), AccessMode::Write});
        rt::TaskOptions topts;
        topts.kind = TaskKind::Generic;
        topts.iteration = static_cast<int>(k);
        topts.priority = prio.lfactor(k);  // critical path ahead of the S's
        topts.label = "pack i" + std::to_string(i);
        MatrixView lblk = a.block(row0 + lstart, col0, lrows, jb);
        add_task(acc, std::move(topts), [S, lblk, i]() {
          S->lpack[static_cast<std::size_t>(i)] =
              blas::pack_a(lblk, blas::Trans::NoTrans);
        });
      }
    }

    // --- Task U per trailing column segment: permute, then triangular
    // solve.
    for (const ColSegment& seg : segments) {
      const idx jblk = seg.jblk0;
      const idx jcol0 = seg.col0;
      const idx jcols = seg.cols;
      std::vector<BlockAccess> acc;
      acc.push_back({piv_key(kr), AccessMode::Read});
      acc.push_back({tile_key(kb, kb), AccessMode::Read});  // L_KK
      for (idx j2 = seg.jblk0; j2 < seg.jblk1; ++j2) {
        add_tile_range(acc, kb, m_blocks, j2, AccessMode::ReadWrite);
      }
      rt::TaskOptions topts;
      topts.kind = TaskKind::UFactor;
      topts.iteration = static_cast<int>(k);
      topts.priority = prio.ufactor(k, jblk);
      topts.label = "U j" + std::to_string(jblk);
      MatrixView col = a.block(row0, jcol0, panel_rows, jcols);
      MatrixView lkk = a.block(row0, col0, jb, jb);
      add_task(acc, std::move(topts), [S, col, lkk, jb]() {
        lapack::laswp(col, 0, jb, S->piv);
        blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::NoTrans,
                   blas::Diag::Unit, 1.0, lkk, col.rows_range(0, jb));
      });
    }

    // --- Task S per (leaf, trailing column segment): gemm update.
    for (const ColSegment& seg : segments) {
      const idx jblk = seg.jblk0;
      const idx jcol0 = seg.col0;
      const idx jcols = seg.cols;
      for (idx i = 0; i < leaves; ++i) {
        idx lstart = S->part.start[static_cast<std::size_t>(i)];
        idx lrows = S->part.rows[static_cast<std::size_t>(i)];
        if (i == 0) {
          lstart += jb;
          lrows -= jb;
        }
        if (lrows <= 0) continue;
        std::vector<BlockAccess> acc;
        if (pack_here) {
          // The packed copy replaces the L tiles as the data source; the
          // Read on pack_key inherits the ordering the pack task set up.
          acc.push_back({pack_key(kr, i, cand_stride), AccessMode::Read});
        } else {
          add_tile_range(acc, kb + lstart / b,
                         kb + (lstart + lrows + b - 1) / b, kb,
                         AccessMode::Read);                  // L blocks
        }
        for (idx j2 = seg.jblk0; j2 < seg.jblk1; ++j2) {
          acc.push_back({tile_key(kb, j2), AccessMode::Read});  // U row
          add_tile_range(acc, kb + lstart / b,
                         kb + (lstart + lrows + b - 1) / b, j2,
                         AccessMode::ReadWrite);
        }
        rt::TaskOptions topts;
        topts.kind = TaskKind::Update;
        topts.iteration = static_cast<int>(k);
        topts.priority = prio.update(k, jblk);
        topts.label = "S i" + std::to_string(i) + " j" + std::to_string(jblk);
        MatrixView lblk = a.block(row0 + lstart, col0, lrows, jb);
        MatrixView ublk = a.block(row0, jcol0, jb, jcols);
        MatrixView cblk = a.block(row0 + lstart, jcol0, lrows, jcols);
        if (pack_here) {
          add_task(acc, std::move(topts), [S, ublk, cblk, i]() {
            blas::gemm_packed(-1.0, S->lpack[static_cast<std::size_t>(i)],
                              blas::Trans::NoTrans, ublk, 1.0, cblk);
          });
        } else {
          add_task(acc, std::move(topts), [lblk, ublk, cblk]() {
            blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0, lblk,
                       ublk, 1.0, cblk);
          });
        }
      }
    }

    // --- Pack release: once every S task of this iteration has consumed
    // the packs (Write-after-Read on the pack keys), return the slabs to
    // the buffer pool so the next iteration's pack tasks recycle them
    // instead of growing resident memory by half the matrix.
    if (pack_here) {
      std::vector<BlockAccess> acc;
      for (idx i = 0; i < leaves; ++i) {
        acc.push_back({pack_key(kr, i, cand_stride), AccessMode::Write});
      }
      rt::TaskOptions topts;
      topts.kind = TaskKind::Generic;
      topts.iteration = static_cast<int>(k);
      topts.priority = 0;
      topts.label = "packfree";
      add_task(acc, std::move(topts), [S]() {
        for (auto& p : S->lpack) p = blas::PackedPanel();
      });
    }
  }
}

// --- Deferred left swaps (Algorithm 1, line 41), one task per column
// block: apply the pivots of every later iteration, in order. Submitted
// after the last panel iteration; in windowed mode they ride in iteration
// n_panels - 1 (nondecreasing tags) and their bodies read the retained
// per-iteration piv vectors — which is exactly why the retire hook frees
// tournament slots and pack slabs but never piv.
void calu_submit_left_swaps(CaluJob& job) {
  CaluSubmitCtx& C = *job.ctx;
  MatrixView a = C.a;
  const idx m = C.m;
  const idx n = C.n;
  const idx k_total = C.k_total;
  const idx b = C.b;
  const idx n_panels = C.n_panels;
  const idx n_blocks = C.n_blocks;
  const idx m_blocks = C.m_blocks;
  std::vector<std::unique_ptr<IterState>>& iters = job.iters;
  // In windowed mode only iterations >= n_panels - 1 - window can still be
  // in flight here (the pump waited for everything older to retire before
  // submitting the last panel), and those occupy distinct KeyRing slots
  // whose latest tracker writer IS their pivot task — so depending on that
  // suffix alone yields the same effective edges as the full-DAG loop over
  // every later iteration, without touching O(n_panels) stale keys.
  const idx dep_floor =
      C.window > 0 ? std::max<idx>(0, n_panels - 1 - C.window) : 0;
  for (idx jblk = 0; jblk < n_blocks && jblk * b < k_total; ++jblk) {
    const idx jcol0 = jblk * b;
    const idx jcols = std::min(b, n - jcol0);
    if (jblk + 1 >= n_panels) continue;  // no later pivots to apply
    std::vector<BlockAccess> acc;
    for (idx kk = std::max(jblk + 1, dep_floor); kk < n_panels; ++kk) {
      acc.push_back({piv_key(C.ring.slot(kk)), AccessMode::Read});
    }
    add_tile_range(acc, jblk + 1, m_blocks, jblk, AccessMode::ReadWrite);
    rt::TaskOptions topts;
    topts.kind = TaskKind::Generic;
    topts.iteration = static_cast<int>(n_panels - 1);
    topts.priority = 0;
    topts.label = "lswap j" + std::to_string(jblk);
    std::vector<IterState*> later;
    for (idx kk = jblk + 1; kk < n_panels; ++kk) {
      later.push_back(iters[static_cast<std::size_t>(kk)].get());
    }
    MatrixView colv = a.block(0, jcol0, m, jcols);
    const idx jb_here = jblk;
    calu_add_task(job, acc, std::move(topts), [later, colv, jb_here, b]() {
      idx kk = jb_here + 1;
      for (IterState* it : later) {
        MatrixView below = colv.trailing(kk * b, 0);
        lapack::laswp(below, 0, it->jb, it->piv);
        ++kk;
      }
    });
  }
}

// Advance the submission pump until iteration `stop` (exclusive) has been
// submitted; once every panel iteration is in, submit the deferred left
// swaps. Windowed mode throttles: iteration k is only submitted after
// iteration k - window fully retired (its slabs recycled, its IterState
// buffers freed by the retire hook), and each iteration is sealed as soon
// as its last task is in so completions can retire it. On cancellation the
// pump stops submitting — skipped tasks still complete, so the retired
// prefix stays consistent and wait() reports the CancelledError.
void calu_pump(CaluJob& job, idx stop) {
  CaluSubmitCtx& C = *job.ctx;
  rt::TaskGraph& graph = *job.graph;
  const idx lim = std::min(stop, C.n_panels);
  while (C.next_k < lim) {
    if (C.window > 0) {
      if (graph.aborted()) return;
      if (C.next_k > C.window) {
        graph.wait_retired_iterations(C.next_k - C.window);
      }
    }
    calu_submit_iteration(job, C.next_k);
    // The last iteration stays open for the left-swap tasks below.
    if (C.window > 0 && C.next_k < C.n_panels - 1) {
      graph.seal_iterations(C.next_k);
    }
    ++C.next_k;
  }
  if (C.next_k >= C.n_panels && !C.swaps_done) {
    if (!(C.window > 0 && graph.aborted())) {
      calu_submit_left_swaps(job);
    }
    if (C.window > 0) graph.seal_iterations(C.n_panels - 1);
    C.swaps_done = true;
  }
}

// Set up one factorization's graph + submission context and start the pump:
// everything with window == 0 (the full DAG, completing here in inline
// mode), the first `window` iterations otherwise — calu_collect pumps the
// rest. Returns immediately in real-thread/attached mode.
void calu_submit(MatrixView a, const CaluOptions& opts, CaluJob& job) {
  auto ctx = std::make_unique<CaluSubmitCtx>();
  CaluSubmitCtx& C = *ctx;
  C.a = a;
  C.opts = opts;
  C.m = a.rows();
  C.n = a.cols();
  C.k_total = std::min(C.m, C.n);
  C.b = std::max<idx>(1, std::min(opts.b, C.k_total));
  C.n_panels = (C.k_total + C.b - 1) / C.b;
  C.n_blocks = (C.n + C.b - 1) / C.b;  // column blocks
  C.m_blocks = (C.m + C.b - 1) / C.b;  // row blocks (tracker granularity)
  // Candidate-slot key stride: partition_panel_rows returns at most
  // min(tr, m_blocks) leaves (leaf boundaries are multiples of b), so this
  // bound keeps every iteration's slot keys disjoint for any user-supplied
  // tr — unbounded tr used to overflow a fixed stride of 8192.
  C.cand_stride = std::max<idx>(1, std::min(opts.tr, C.m_blocks)) + 1;
  C.window = (opts.window > 0 && C.n_panels > 0) ? opts.window : 0;
  C.ring.ring = C.window > 0 ? C.window + 2 : 0;
  // Look-ahead priority bands (see lookahead.hpp): panel path on top, then
  // the U/S tasks of column k+1 that unblock panel k+1, then ordinary
  // trailing updates — so the next panel races ahead as soon as its column
  // is up to date.
  C.prio = LookaheadPriorities{C.n_panels, C.n_blocks, opts.lookahead};

  job.result.ipiv.assign(static_cast<std::size_t>(C.k_total), 0);
  job.panel_info.assign(static_cast<std::size_t>(C.n_panels), 0);
  job.panel_health.assign(static_cast<std::size_t>(C.n_panels),
                          PanelHealthSlot{});
  job.iters.reserve(static_cast<std::size_t>(C.n_panels));

  rt::TaskGraph::Config graph_cfg;
  graph_cfg.num_threads = opts.num_threads;
  graph_cfg.record_trace = opts.record_trace;
  graph_cfg.policy = opts.scheduler;
  graph_cfg.pool = opts.pool;
  graph_cfg.cancel = opts.cancel;
  graph_cfg.fault = opts.fault;
  graph_cfg.fault_salt = opts.fault_salt;
  job.graph = std::make_unique<rt::TaskGraph>(graph_cfg);
  job.ctx = std::move(ctx);

  if (C.window > 0) {
    job.graph->track_iterations(C.n_panels);
    // Retirement frees the per-iteration working set the trailing tasks no
    // longer need — tournament candidate blocks and pack slabs (the packfree
    // task already emptied the slabs; shrink releases the vectors too). The
    // piv vector, jb, and fell_back stay: the deferred left swaps and the
    // collect-time folds read them after the iteration is long gone. Runs
    // on the submission thread (advance_retired), so pushing new IterStates
    // concurrently is safe — same thread.
    std::vector<std::unique_ptr<IterState>>* iters_p = &job.iters;
    job.graph->set_retire_hook([iters_p](idx k) {
      IterState& st = *(*iters_p)[static_cast<std::size_t>(k)];
      st.slot.clear();
      st.slot.shrink_to_fit();
      st.lpack.clear();
      st.lpack.shrink_to_fit();
    });
    calu_pump(job, C.window);
  } else {
    calu_pump(job, C.n_panels);
  }
}

// Drain the job's graph, fold panel infos + health, harvest trace/stats.
// The graph itself is destroyed with the job (its destructor detaches from
// the pool). `sched_out`, when set, receives the scheduler counters even on
// the throwing path — the only window into how much of the DAG a
// fast-abort skipped, since the exception discards the result.
CaluResult calu_collect(CaluJob& job, bool record_trace,
                        rt::SchedulerStats* sched_out) {
  try {
    calu_pump(job, job.ctx->n_panels);
    job.graph->wait();
  } catch (...) {
    if (sched_out != nullptr) *sched_out = job.graph->stats();
    throw;
  }
  for (idx inf : job.panel_info) {
    if (inf != 0) {
      job.result.info = inf;
      break;
    }
  }
  HealthReport& health = job.result.health;
  for (std::size_t k = 0; k < job.panel_health.size(); ++k) {
    const PanelHealthSlot& slot = job.panel_health[k];
    if (slot.nonfinite) health.nan_detected = true;
    if (slot.fell_back) {
      ++health.fallback_panels;
      health.fallback_list.push_back(static_cast<idx>(k));
    }
    if (slot.growth > health.max_growth) health.max_growth = slot.growth;
  }
  if (record_trace) {
    job.result.trace = job.graph->trace();
    job.result.edges = job.graph->edges();
  }
  job.result.sched = job.graph->stats();
  job.result.mem = job.graph->memory();
  if (sched_out != nullptr) *sched_out = job.result.sched;
  return std::move(job.result);
}

}  // namespace calu_impl

using calu_impl::CaluJob;

struct CaluAsync::Impl {
  CaluJob job;
  bool record_trace = true;
  rt::SchedulerStats* sched_out = nullptr;
};

CaluAsync::CaluAsync(MatrixView a, const CaluOptions& opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->record_trace = opts.record_trace;
  impl_->sched_out = opts.sched_out;
  calu_impl::calu_submit(a, opts, impl_->job);
}

// CaluJob's graph member drains and detaches in its destructor, so dropping
// an uncollected handle cannot wedge an attached pool.
CaluAsync::~CaluAsync() = default;
CaluAsync::CaluAsync(CaluAsync&&) noexcept = default;
CaluAsync& CaluAsync::operator=(CaluAsync&&) noexcept = default;

CaluResult CaluAsync::collect() {
  if (impl_ == nullptr) {
    throw std::logic_error("CaluAsync::collect called twice");
  }
  const std::unique_ptr<Impl> impl = std::move(impl_);
  return calu_impl::calu_collect(impl->job, impl->record_trace,
                                 impl->sched_out);
}

CaluResult calu_factor(MatrixView a, const CaluOptions& opts) {
  CaluJob job;
  calu_impl::calu_submit(a, opts, job);
  return calu_impl::calu_collect(job, opts.record_trace, opts.sched_out);
}

std::vector<CaluResult> calu_factor_batch(const std::vector<MatrixView>& as,
                                          const CaluOptions& opts) {
  std::vector<CaluResult> out;
  out.reserve(as.size());
  // Each job gets its own sched slot so even a cancelled result carries its
  // run's real skip accounting (the svc layer bills tenants from it). A
  // caller-supplied sched_out keeps the single-problem semantics: it ends
  // up holding the last job's counters.
  std::vector<rt::SchedulerStats> scheds(as.size());
  // Inline mode executes tasks at submit time on this thread; batching
  // would just interleave serial work. Keep it one problem at a time. A
  // fired cancel token yields per-job cancelled results (completed prefix
  // intact) instead of throwing the whole batch away; task errors still
  // propagate.
  if (opts.num_threads == 0 || as.size() <= 1) {
    for (std::size_t i = 0; i < as.size(); ++i) {
      CaluOptions jopts = opts;
      jopts.sched_out = &scheds[i];
      try {
        out.push_back(calu_factor(as[i], jopts));
      } catch (const rt::CancelledError&) {
        CaluResult r;
        r.cancelled = true;
        r.sched = scheds[i];
        out.push_back(std::move(r));
      }
      if (opts.sched_out != nullptr) *opts.sched_out = scheds[i];
    }
    return out;
  }
  rt::WorkerPool* pool = opts.pool;
  std::unique_ptr<rt::WorkerPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<rt::WorkerPool>(
        rt::WorkerPoolConfig{opts.num_threads, false});
    pool = owned.get();
  }
  // Submit every DAG before collecting any: the pool's workers rotate
  // between the attached graphs, so the whole batch runs concurrently.
  std::vector<CaluAsync> jobs;
  jobs.reserve(as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    CaluOptions jopts = opts;
    jopts.pool = pool;
    jopts.sched_out = &scheds[i];
    jobs.emplace_back(as[i], jopts);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    try {
      out.push_back(jobs[i].collect());
    } catch (const rt::CancelledError&) {
      CaluResult r;
      r.cancelled = true;
      r.sched = scheds[i];
      out.push_back(std::move(r));
    }
    if (opts.sched_out != nullptr) *opts.sched_out = scheds[i];
  }
  return out;
}

}  // namespace camult::core
