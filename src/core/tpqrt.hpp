// tpqrt.hpp — structured QR of two stacked upper triangles (LAPACK
// dtpqrt-style, fully-triangular pentagonal case).
//
// A binary-tree TSQR node factors [R1; R2] with BOTH operands b x b upper
// triangular. The Householder vector of column j then only touches row j of
// the R1 part and rows 0..j of the R2 part, so V = [I; V2] with V2 upper
// triangular. Exploiting this halves the node flops versus the dense
// stacked kernel and turns the block application into triangular
// multiplies:
//
//   Q^T [C1; C2]:  W = C1 + V2^T C2;  W := T^T W (or T W for Q);
//                  C1 -= W;  C2 -= V2 W.
#pragma once

#include "blas/types.hpp"
#include "matrix/matrix.hpp"

namespace camult::core {

/// Factors of one structured node: V2 (upper triangular, the reflector
/// tails) and the T factor of the compact WY form over [I; V2].
struct TriTriFactors {
  Matrix v2;  ///< b x b upper triangular reflector tails
  Matrix t;   ///< b x b upper triangular T
};

/// Factor [r1; r2] where both are b x b upper triangular: r1 is updated in
/// place with the new R; r2 is consumed (read only). Strictly-lower entries
/// of both operands are ignored.
TriTriFactors tpqrt_tri(MatrixView r1, ConstMatrixView r2);

/// Apply the node's Q (NoTrans) or Q^T (Trans) to the stacked pair
/// [c1; c2], each with b rows.
void tpmqrt_tri(blas::Trans trans, const TriTriFactors& f, MatrixView c1,
                MatrixView c2);

}  // namespace camult::core
