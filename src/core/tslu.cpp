#include "core/tslu.hpp"

#include <cassert>
#include <stdexcept>

#include "blas/blas.hpp"
#include "core/partition.hpp"
#include "core/tournament.hpp"
#include "lapack/getf2.hpp"
#include "lapack/getrf.hpp"
#include "lapack/laswp.hpp"

namespace camult::core {

idx tslu_factor(MatrixView panel, PivotVector& ipiv, const TsluOptions& opts) {
  const idx m = panel.rows();
  const idx b = panel.cols();
  if (m < b) {
    throw std::invalid_argument("tslu_factor: panel must be tall (m >= b)");
  }

  const RowPartition part = partition_panel_rows(m, b, opts.tr, b);
  const idx leaves = part.count();
  if (leaves == 1) {
    // Degenerate tournament: plain GEPP with the configured kernel.
    return opts.leaf_kernel == lapack::LuPanelKernel::Recursive
               ? lapack::rgetf2(panel, ipiv)
               : lapack::getf2(panel, ipiv);
  }

  // Phase 1: the tournament.
  std::vector<Candidates> slot(static_cast<std::size_t>(leaves));
  for (idx i = 0; i < leaves; ++i) {
    slot[static_cast<std::size_t>(i)] = tournament_leaf(
        panel.block(part.start[static_cast<std::size_t>(i)], 0,
                    part.rows[static_cast<std::size_t>(i)], b),
        part.start[static_cast<std::size_t>(i)], b, opts.leaf_kernel);
  }
  for (const ReductionStep& step :
       reduction_schedule(static_cast<int>(leaves), opts.tree)) {
    std::vector<const Candidates*> srcs;
    srcs.reserve(step.sources.size());
    for (int s : step.sources) {
      srcs.push_back(&slot[static_cast<std::size_t>(s)]);
    }
    Candidates combined = tournament_combine(srcs, b, opts.leaf_kernel);
    slot[static_cast<std::size_t>(step.sources.front())] =
        std::move(combined);
  }
  const Candidates& root = slot[0];
  assert(root.values.rows() == b);

  // Phase 2: move the winners to the top and factor.
  ipiv = winners_to_pivots(root.row_index, m);
  lapack::laswp(panel, 0, b, ipiv);

  // The root already factored the winning rows: reuse its packed LU as the
  // top b x b block (L_KK strictly below the diagonal, U_KK on and above).
  copy_into(root.lu_top.view(), panel.rows_range(0, b));

  idx info = 0;
  for (idx j = 0; j < b; ++j) {
    if (panel(j, j) == 0.0 && info == 0) info = j + 1;
  }

  // Remaining rows of L: solve L(b:m, :) * U_KK = A(b:m, :). As in LAPACK,
  // an exactly singular panel still completes (divisions by zero produce
  // infinities and info reports the first zero pivot).
  if (m > b) {
    blas::trsm(blas::Side::Right, blas::Uplo::Upper, blas::Trans::NoTrans,
               blas::Diag::NonUnit, 1.0, panel.rows_range(0, b),
               panel.rows_range(b, m - b));
  }
  return info;
}

}  // namespace camult::core
