#include "core/tslu.hpp"

#include <cassert>
#include <stdexcept>

#include "blas/blas.hpp"
#include "core/partition.hpp"
#include "core/tournament.hpp"
#include "lapack/getf2.hpp"
#include "lapack/getrf.hpp"
#include "lapack/laswp.hpp"

namespace camult::core {

namespace {

idx gepp(MatrixView a, PivotVector& ipiv, lapack::LuPanelKernel kernel) {
  return kernel == lapack::LuPanelKernel::Recursive
             ? lapack::rgetf2(a, ipiv)
             : lapack::getf2(a, ipiv);
}

}  // namespace

void guarded_l_solve(ConstMatrixView lu, MatrixView x) {
  const idx b = std::min(lu.rows(), lu.cols());
  const idx m = x.rows();
  for (idx j = 0; j < b; ++j) {
    double* xj = x.col_ptr(j);
    for (idx i = 0; i < j; ++i) {
      const double uij = lu(i, j);
      if (uij == 0.0) continue;
      const double* xi = x.col_ptr(i);
      for (idx r = 0; r < m; ++r) xj[r] -= xi[r] * uij;
    }
    const double ujj = lu(j, j);
    if (ujj != 0.0) {
      const double inv = 1.0 / ujj;
      for (idx r = 0; r < m; ++r) xj[r] *= inv;
    }
  }
}

idx tslu_factor(MatrixView panel, PivotVector& ipiv, const TsluOptions& opts,
                HealthReport* health) {
  const idx m = panel.rows();
  const idx b = panel.cols();
  if (m < b) {
    throw std::invalid_argument("tslu_factor: panel must be tall (m >= b)");
  }

  // Screen BEFORE anything mutates the panel (phase 1 only reads it), so
  // absmax describes the input and a NaN verdict cannot be an artifact of
  // the factorization itself.
  const bool monitoring = opts.monitor || health != nullptr;
  PanelScreen scr;
  if (monitoring) scr = screen_panel(panel);
  auto record = [&](double umax, bool fell_back) {
    if (health == nullptr) return;
    health->nan_detected = scr.nonfinite;
    health->max_growth = scr.absmax > 0.0 ? umax / scr.absmax : 0.0;
    if (fell_back) {
      health->fallback_panels = 1;
      health->fallback_list.assign(1, 0);
    }
  };

  const RowPartition part = partition_panel_rows(m, b, opts.tr, b);
  const idx leaves = part.count();
  if (leaves == 1) {
    // Degenerate tournament: plain GEPP with the configured kernel.
    const idx info = gepp(panel, ipiv, opts.leaf_kernel);
    record(check_packed_lu(panel, b).umax, /*fell_back=*/false);
    return info;
  }

  // Phase 1: the tournament.
  std::vector<Candidates> slot(static_cast<std::size_t>(leaves));
  for (idx i = 0; i < leaves; ++i) {
    slot[static_cast<std::size_t>(i)] = tournament_leaf(
        panel.block(part.start[static_cast<std::size_t>(i)], 0,
                    part.rows[static_cast<std::size_t>(i)], b),
        part.start[static_cast<std::size_t>(i)], b, opts.leaf_kernel);
  }
  for (const ReductionStep& step :
       reduction_schedule(static_cast<int>(leaves), opts.tree)) {
    std::vector<const Candidates*> srcs;
    srcs.reserve(step.sources.size());
    for (int s : step.sources) {
      srcs.push_back(&slot[static_cast<std::size_t>(s)]);
    }
    Candidates combined = tournament_combine(srcs, b, opts.leaf_kernel);
    slot[static_cast<std::size_t>(step.sources.front())] =
        std::move(combined);
  }
  const Candidates& root = slot[0];
  assert(root.values.rows() == b);

  // Graceful degradation: the root's packed LU holds exactly the U_KK phase
  // 2 would install, so a degenerate outcome (zero pivot, or growth past
  // the limit) is known while the panel is still pristine — discard the
  // tournament and GEPP the whole panel instead of dividing by zero below.
  // A non-finite panel is never "rescued": GEPP on NaN is equally lost, so
  // it only gets flagged.
  if (monitoring) {
    const RootCheck rc = check_packed_lu(root.lu_top.view(), b);
    const bool fall_back =
        opts.monitor && !scr.nonfinite &&
        (rc.zero_pivot || (opts.growth_limit > 0.0 && scr.absmax > 0.0 &&
                           rc.umax > opts.growth_limit * scr.absmax));
    if (fall_back) {
      const idx info = gepp(panel, ipiv, opts.leaf_kernel);
      record(check_packed_lu(panel, b).umax, /*fell_back=*/true);
      return info;
    }
    record(rc.umax, /*fell_back=*/false);
  }

  // Phase 2: move the winners to the top and factor.
  ipiv = winners_to_pivots(root.row_index, m);
  lapack::laswp(panel, 0, b, ipiv);

  // The root already factored the winning rows: reuse its packed LU as the
  // top b x b block (L_KK strictly below the diagonal, U_KK on and above).
  copy_into(root.lu_top.view(), panel.rows_range(0, b));

  idx info = 0;
  for (idx j = 0; j < b; ++j) {
    if (panel(j, j) == 0.0 && info == 0) info = j + 1;
  }

  // Remaining rows of L: solve L(b:m, :) * U_KK = A(b:m, :). With every
  // pivot nonzero this is a plain trsm; on the info != 0 path (monitor off,
  // or a non-finite panel the monitor refused to rescue) the guarded solve
  // skips the zero divides so the factors stay finite — info still reports
  // the first zero pivot, as in getf2.
  if (m > b) {
    if (info == 0) {
      blas::trsm(blas::Side::Right, blas::Uplo::Upper, blas::Trans::NoTrans,
                 blas::Diag::NonUnit, 1.0, panel.rows_range(0, b),
                 panel.rows_range(b, m - b));
    } else {
      guarded_l_solve(panel.rows_range(0, b), panel.rows_range(b, m - b));
    }
  }
  return info;
}

}  // namespace camult::core
