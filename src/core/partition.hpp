// partition.hpp — panel row partitioning and reduction-tree enumeration.
//
// At every iteration the active rows are split into Tr leaf blocks (the
// paper's I1/I2 formula, in units of the block size b so that leaf
// boundaries coincide with tile boundaries). The reduction tree is described
// as an ordered list of combine steps over leaf indices, which both TSLU and
// TSQR execute with their own node kernels.
#pragma once

#include <vector>

#include "core/options.hpp"

namespace camult::core {

/// Row ranges (relative to the top of the panel) of the Tr leaf blocks.
struct RowPartition {
  std::vector<idx> start;  ///< first row of each leaf
  std::vector<idx> rows;   ///< row count of each leaf (all >= min_leaf_rows)
  idx count() const { return static_cast<idx>(start.size()); }
};

/// Partition `panel_rows` rows into at most `tr` leaves whose boundaries are
/// multiples of `b` (except the ragged end) and which each have at least
/// `min_leaf_rows` rows. The leaf count is reduced below `tr` when the panel
/// is too short; at least one leaf is always returned (panel_rows >= 1).
RowPartition partition_panel_rows(idx panel_rows, idx b, idx tr,
                                  idx min_leaf_rows);

/// One reduction step: `sources` (>= 2 leaf slots, first is the target slot)
/// are combined and the result replaces the target slot's contribution.
struct ReductionStep {
  int level;                ///< 1-based tree level (flat tree: always 1)
  std::vector<int> sources; ///< leaf slots, sources[0] is the target
};

/// Enumerate the combine steps for `leaves` leaf slots. Binary: pairwise
/// levels as in the paper's figures. Flat: a single step combining all
/// leaves. Hybrid: flat groups of `hybrid_group` leaves, then binary over
/// the group roots. No steps when leaves == 1.
std::vector<ReductionStep> reduction_schedule(int leaves, ReductionTree tree,
                                              int hybrid_group = 4);

}  // namespace camult::core
