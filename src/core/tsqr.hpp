// tsqr.hpp — TSQR: communication-avoiding QR of a tall-skinny matrix
// (sequential driver; CAQR runs the same kernels as parallel tasks).
//
// Leaf QR factorizations (recursive dgeqr3) run on Tr row blocks; a
// reduction tree then QR-factors stacked R factors until one R remains. The
// Q factor is implicit: leaf reflectors stay in the matrix (LAPACK layout),
// tree-node reflectors live in per-node buffers. apply_q/apply_qt replay
// them, which is exactly how CAQR updates its trailing matrix.
#pragma once

#include <vector>

#include "blas/types.hpp"
#include "core/options.hpp"
#include "core/partition.hpp"
#include "core/tpqrt.hpp"
#include "lapack/geqrf.hpp"
#include "matrix/matrix.hpp"

namespace camult::core {

struct TsqrOptions {
  idx tr = 4;  ///< leaf count (paper's T_r)
  ReductionTree tree = ReductionTree::Binary;
  /// Use the structured triangle-triangle kernel (tpqrt) for binary-tree
  /// nodes instead of the dense stacked kernel: ~2x fewer node flops and
  /// no gather/scatter in the updates. Identical results up to rounding.
  bool structured_nodes = false;
};

/// Compact-WY factors of one leaf; the V tails live in the factored matrix.
struct TsqrLeaf {
  idx start = 0;  ///< first row of the leaf (relative to the matrix top)
  idx rows = 0;
  Matrix t;  ///< n x n T factor
  std::vector<double> tau;
};

/// Factors of one reduction-tree node: QR of the stacked R factors of its
/// sources. The slices (src_start[i], src_rows[i]) say which rows of the
/// matrix the node's reflectors act on.
struct TsqrNode {
  std::vector<idx> src_start;
  std::vector<idx> src_rows;
  Matrix vt;  ///< dense kernel: factored stacked buffer (R on top, V below)
  Matrix t;   ///< T factor (dense kernel only; structured keeps its own)
  bool structured = false;  ///< true: `tri` holds the factors instead
  TriTriFactors tri;
};

struct TsqrFactors {
  idx m = 0;
  idx n = 0;
  ReductionTree tree = ReductionTree::Binary;
  RowPartition part;
  std::vector<TsqrLeaf> leaves;
  std::vector<TsqrNode> nodes;  ///< in reduction order
};

/// Factor a (m x n, m >= n) in place: on exit the top n x n upper triangle
/// is R, the rest of the matrix holds leaf reflector tails. The returned
/// factors plus the matrix give the implicit Q.
TsqrFactors tsqr_factor(MatrixView a, const TsqrOptions& opts = {});

/// Kernels shared with task-parallel CAQR ------------------------------

/// Leaf QR: factor `block` in place (recursive QR), producing (T, tau).
TsqrLeaf tsqr_leaf_kernel(MatrixView block, idx start);

/// Tree-node QR: gather the top n x n R slices of `a` at `src_start`, stack
/// them, QR the stack, write the new R back into the first slice (upper
/// triangle only — reflector tails stored there are preserved).
TsqrNode tsqr_node_kernel(MatrixView a, const std::vector<idx>& src_start,
                          idx n);

/// Structured two-source node (binary tree): in-place tpqrt of the two R
/// triangles at src0/src1; no stacked buffer.
TsqrNode tsqr_node_kernel_tri(MatrixView a, idx src0, idx src1, idx n);

/// Apply a leaf's block reflector to the matching rows of C.
/// trans == Trans applies Q_leaf^T (the factorization direction).
void tsqr_leaf_apply(blas::Trans trans, ConstMatrixView a,
                     const TsqrLeaf& leaf, MatrixView c);

/// Apply a node's block reflector to the stacked slices of C (gather,
/// larfb, scatter).
void tsqr_node_apply(blas::Trans trans, const TsqrNode& node, MatrixView c);

/// Pack-once variants -------------------------------------------------
///
/// CAQR applies the same leaf/node reflectors to every trailing column
/// segment. These pack the gemm-shaped V2 of the block reflector once (a
/// scheduler pack task) and let all S tasks of the iteration share the
/// read-only pack.

/// Pack a leaf's V2 (rows n..leaf.rows of its reflector block).
lapack::LarfbPackedV tsqr_leaf_pack(ConstMatrixView a, const TsqrLeaf& leaf);

/// Leaf apply consuming the shared pack (vp from tsqr_leaf_pack).
void tsqr_leaf_apply(blas::Trans trans, ConstMatrixView a,
                     const TsqrLeaf& leaf, const lapack::LarfbPackedV& vp,
                     MatrixView c);

/// Pack a dense node's V2. Structured (tpqrt) nodes have no larfb-shaped
/// V2 — the result is empty and the packed apply falls back to tpmqrt.
lapack::LarfbPackedV tsqr_node_pack(const TsqrNode& node);

/// Node apply consuming the shared pack (vp from tsqr_node_pack).
void tsqr_node_apply(blas::Trans trans, const TsqrNode& node,
                     const lapack::LarfbPackedV& vp, MatrixView c);

/// Whole-Q application: C := Q^T C (Trans) or Q C (NoTrans). C has m rows.
/// `a` is the factored matrix (holds the leaf V tails).
void tsqr_apply_q(blas::Trans trans, ConstMatrixView a,
                  const TsqrFactors& factors, MatrixView c);

/// Explicit m x n Q (thin factor).
Matrix tsqr_explicit_q(ConstMatrixView a, const TsqrFactors& factors);

/// The n x n R factor (upper triangle of the factored matrix top).
Matrix tsqr_extract_r(ConstMatrixView a, const TsqrFactors& factors);

}  // namespace camult::core
