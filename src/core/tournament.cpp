#include "core/tournament.hpp"

#include <cassert>
#include <cmath>
#include <unordered_map>

#include "lapack/getf2.hpp"
#include "lapack/getrf.hpp"

namespace camult::core {
namespace {

// Elect pivots from a stack of candidate rows: GEPP on a scratch copy, then
// gather the winning rows (original values) and their indices.
Candidates elect(const Matrix& stacked_values,
                 const std::vector<idx>& stacked_index, idx b,
                 lapack::LuPanelKernel kernel) {
  const idx rows = stacked_values.rows();
  const idx cols = stacked_values.cols();
  const idx k = std::min(b, rows);

  Matrix scratch = stacked_values;
  PivotVector ipiv;
  // Zero pivots tolerated: the row order is still the GEPP order.
  if (kernel == lapack::LuPanelKernel::Recursive) {
    lapack::rgetf2(scratch.view(), ipiv);
  } else {
    lapack::getf2(scratch.view(), ipiv);
  }

  // Positions after applying the swap sequence: permuted[r] = original slot.
  Permutation perm = ipiv_to_permutation(ipiv, rows);

  Candidates out;
  out.values = Matrix(k, cols);
  out.row_index.resize(static_cast<std::size_t>(k));
  for (idx r = 0; r < k; ++r) {
    const idx src = perm[static_cast<std::size_t>(r)];
    for (idx j = 0; j < cols; ++j) out.values(r, j) = stacked_values(src, j);
    out.row_index[static_cast<std::size_t>(r)] =
        stacked_index[static_cast<std::size_t>(src)];
  }
  // Keep the LU factors of the winners (top k x cols of the factored stack).
  out.lu_top = Matrix(k, cols);
  copy_into(scratch.view().rows_range(0, k), out.lu_top.view());
  return out;
}

}  // namespace

Candidates tournament_leaf(ConstMatrixView block, idx row_offset, idx b,
                           lapack::LuPanelKernel kernel) {
  assert(!block.empty());
  Matrix values = Matrix::from(block);
  std::vector<idx> index(static_cast<std::size_t>(block.rows()));
  for (idx i = 0; i < block.rows(); ++i) {
    index[static_cast<std::size_t>(i)] = row_offset + i;
  }
  return elect(values, index, b, kernel);
}

Candidates tournament_combine(const std::vector<const Candidates*>& sources,
                              idx b, lapack::LuPanelKernel kernel) {
  assert(!sources.empty());
  const idx cols = sources.front()->values.cols();
  idx total = 0;
  for (const Candidates* c : sources) total += c->values.rows();

  Matrix stacked(total, cols);
  std::vector<idx> index;
  index.reserve(static_cast<std::size_t>(total));
  idx row = 0;
  for (const Candidates* c : sources) {
    copy_into(c->values.view(),
              stacked.view().rows_range(row, c->values.rows()));
    index.insert(index.end(), c->row_index.begin(), c->row_index.end());
    row += c->values.rows();
  }
  return elect(stacked, index, b, kernel);
}

PanelScreen screen_panel(ConstMatrixView panel) {
  PanelScreen s;
  for (idx j = 0; j < panel.cols(); ++j) {
    const double* col = panel.col_ptr(j);
    for (idx i = 0; i < panel.rows(); ++i) {
      const double v = col[i];
      if (!std::isfinite(v)) {
        s.nonfinite = true;
      } else if (std::abs(v) > s.absmax) {
        s.absmax = std::abs(v);
      }
    }
  }
  return s;
}

RootCheck check_packed_lu(ConstMatrixView lu, idx b) {
  RootCheck c;
  const idx jmax = std::min(b, lu.cols());
  for (idx j = 0; j < jmax; ++j) {
    const idx imax = std::min(j + 1, lu.rows());
    for (idx i = 0; i < imax; ++i) {
      const double v = std::abs(lu(i, j));
      if (v > c.umax || std::isnan(v)) c.umax = v;
    }
    if (j < lu.rows() && lu(j, j) == 0.0) c.zero_pivot = true;
  }
  return c;
}

PivotVector winners_to_pivots(const std::vector<idx>& winners,
                              idx panel_rows) {
  // position_of[r] = current row of the panel row that started at r.
  // Only rows that move are tracked.
  std::unordered_map<idx, idx> position_of;
  auto pos = [&](idx original) {
    auto it = position_of.find(original);
    return it == position_of.end() ? original : it->second;
  };
  std::unordered_map<idx, idx> original_at;  // current row -> original row
  auto orig = [&](idx current) {
    auto it = original_at.find(current);
    return it == original_at.end() ? current : it->second;
  };

  PivotVector ipiv(winners.size());
  for (std::size_t k = 0; k < winners.size(); ++k) {
    const idx dst = static_cast<idx>(k);
    const idx src = pos(winners[k]);
    assert(src >= dst && src < panel_rows);
    (void)panel_rows;
    ipiv[k] = src;
    if (src != dst) {
      const idx orig_dst = orig(dst);
      const idx orig_src = orig(src);
      position_of[orig_dst] = src;
      position_of[orig_src] = dst;
      original_at[src] = orig_dst;
      original_at[dst] = orig_src;
    }
  }
  return ipiv;
}

}  // namespace camult::core
