// core.hpp — umbrella header for the communication-avoiding algorithms
// (the paper's contribution).
#pragma once

#include "core/calu.hpp"       // IWYU pragma: export
#include "core/caqr.hpp"       // IWYU pragma: export
#include "core/drivers.hpp"    // IWYU pragma: export
#include "core/options.hpp"    // IWYU pragma: export
#include "core/partition.hpp"  // IWYU pragma: export
#include "core/tournament.hpp" // IWYU pragma: export
#include "core/tslu.hpp"       // IWYU pragma: export
#include "core/tsqr.hpp"       // IWYU pragma: export
