// options.hpp — shared configuration types for the communication-avoiding
// algorithms.
#pragma once

#include <vector>

#include "matrix/view.hpp"

namespace camult::core {

/// Shape of the panel reduction tree (paper, Section II): a binary tree
/// minimizes parallel communication; a height-1 ("flat") tree does one
/// all-at-once reduction and is an efficient alternative on shared memory.
enum class ReductionTree {
  Binary,
  Flat,
  /// Flat reductions over small groups of leaves, then a binary tree over
  /// the group roots — the shape the paper's conclusion attributes to
  /// Hadri et al. (LAWN 222) for tall-skinny QR on multicore.
  Hybrid,
};

const char* reduction_tree_name(ReductionTree t);

/// Numerical health of one factorization run. Tournament pivoting is only
/// "stable in practice": it can elect a zero/degenerate pivot or admit more
/// growth than GEPP (Grigori/Demmel/Xiang), and a poisoned input (NaN/Inf)
/// silently propagates through every BLAS-3 update. The monitor screens
/// each panel BEFORE it is mutated, tracks the per-panel pivot-growth
/// factor, and — when the tournament outcome is degenerate — refactors the
/// still-pristine panel with full-panel GEPP, recording the intervention
/// here instead of emitting Inf-laden factors.
struct HealthReport {
  /// A non-finite entry was seen in a panel (or the input) before
  /// factoring. No fallback is attempted (GEPP on NaN is equally lost);
  /// the flag is the diagnosis.
  bool nan_detected = false;
  idx fallback_panels = 0;         ///< panels refactored with full GEPP
  std::vector<idx> fallback_list;  ///< indices of those panels
  /// Largest per-panel pivot growth max|U_kk| / max|panel| observed.
  double max_growth = 0.0;
  /// The run needed intervention or carries non-finite data; callers (the
  /// CLI) should surface this even when info == 0.
  bool degraded() const { return nan_detected || fallback_panels > 0; }
};

}  // namespace camult::core
