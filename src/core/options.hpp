// options.hpp — shared configuration types for the communication-avoiding
// algorithms.
#pragma once

#include "matrix/view.hpp"

namespace camult::core {

/// Shape of the panel reduction tree (paper, Section II): a binary tree
/// minimizes parallel communication; a height-1 ("flat") tree does one
/// all-at-once reduction and is an efficient alternative on shared memory.
enum class ReductionTree {
  Binary,
  Flat,
  /// Flat reductions over small groups of leaves, then a binary tree over
  /// the group roots — the shape the paper's conclusion attributes to
  /// Hadri et al. (LAWN 222) for tall-skinny QR on multicore.
  Hybrid,
};

const char* reduction_tree_name(ReductionTree t);

}  // namespace camult::core
