// lookahead.hpp — priority bands implementing the look-ahead-of-1 policy
// (paper Section III), shared by CALU and CAQR.
//
// Three disjoint bands, top to bottom:
//   top:  the panel path (P tasks, then L tasks) of iteration k, decreasing
//         in k — the critical path always outranks everything else;
//   mid:  the U/S tasks of column k+1 during iteration k (they unblock
//         panel k+1: the paper's "look-ahead of 1"), decreasing in k;
//   low:  all other trailing updates, ordered by (iteration, column), with
//         each column's U task just above its S tasks.
//
// Slots are derived from (n_panels, n_blocks) so the bands stay disjoint
// and strictly ordered for ANY problem size. The previous fixed scheme,
// `1000000 - (k*1000 + (j-k))`, went negative and scrambled band order once
// k*1000 + (j-k) exceeded 1e6 (reached by e.g. m = 1e6, b = 100 -> 1e4
// panels, well within the paper's tall-skinny regime), and collided between
// different (k, j) pairs once j - k >= 1000.
//
// With `lookahead = false` every task gets priority 0 and the scheduler
// degenerates to dependency + FIFO order (fork-join-like), which is what
// the ablation benches compare against.
#pragma once

#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

#include "matrix/view.hpp"

namespace camult::core {

/// Saturating priority shift. The svc job service layers a whole job's
/// look-ahead bands into its QoS class band by adding a per-class constant
/// to every task priority (CaluOptions/CaqrOptions::priority_bias); the sum
/// clamps at the int range instead of wrapping, so a pathological bias can
/// reorder but never scramble band arithmetic.
inline int biased_priority(int priority, int bias) {
  const long long v =
      static_cast<long long>(priority) + static_cast<long long>(bias);
  if (v > std::numeric_limits<int>::max()) {
    return std::numeric_limits<int>::max();
  }
  if (v < std::numeric_limits<int>::min()) {
    return std::numeric_limits<int>::min();
  }
  return static_cast<int>(v);
}

/// Saturating product of nonnegative band dimensions: a band-slot
/// computation must degrade to "every slot clamps at the ceiling" on
/// overflow, never wrap to a negative (which would scramble band order —
/// the bug class the priority scheme exists to prevent).
inline long long sat_band_mul(long long a, long long b) {
  assert(a >= 0 && b >= 0);
  if (a == 0 || b == 0) return 0;
  constexpr long long kMax = std::numeric_limits<long long>::max();
  if (a > kMax / b) return kMax;
  return a * b;
}

inline long long sat_band_add(long long a, long long b) {
  assert(a >= 0 && b >= 0);
  constexpr long long kMax = std::numeric_limits<long long>::max();
  if (a > kMax - b) return kMax;
  return a + b;
}

/// Checked offset into the per-iteration dependency-key spaces CALU and
/// CAQR carve out at (1 << 60), (1 << 61) and (1 << 62): the offset is
/// k * stride + slot with slot < stride, and the spaces stay disjoint (and
/// below 2^63, including CAQR's 2*offset+1 even/odd packing) as long as the
/// offset stays under 2^59. Paper-scale runs sit ~13 orders of magnitude
/// below the bound (m = 1e6, b = 4 gives k ~ 2.5e5 and stride ~ tr+1), so a
/// throw always means arithmetic went wrong — the old silent wraparound
/// aliased keys across iterations and corrupted the DAG instead.
inline std::int64_t checked_key_offset(idx k, idx stride, idx slot) {
  constexpr std::int64_t kLimit = std::int64_t{1} << 59;
  if (k < 0 || stride <= 0 || slot < 0 || slot >= stride ||
      k > (kLimit - 1 - slot) / stride) {
    throw std::overflow_error(
        "dep-key space overflow: iteration " + std::to_string(k) +
        ", stride " + std::to_string(stride) + ", slot " +
        std::to_string(slot) + " leaves the 2^59 per-space envelope");
  }
  return k * stride + slot;
}

/// Iteration-index reuse for windowed submission: with a sliding window of
/// w live iterations, the per-iteration dep-key spaces wrap k modulo
/// ring = w + 2. Safe because iteration k only submits once iteration
/// k - w retired, so the previous owner of slot k % ring — iteration
/// k - w - 2 — is fully retired: its tracker entries resolve to finished
/// tasks (dropped or no-op edges), and no two live iterations ever share a
/// slot (the live span is at most w + 1 < ring). Bounds the tracker's
/// per-iteration key population at O(ring * stride) instead of O(n_panels).
struct KeyRing {
  idx ring = 0;  ///< 0 = no reuse (full-DAG mode keeps global indices)
  idx slot(idx k) const { return ring > 0 ? k % ring : k; }
};

struct LookaheadPriorities {
  idx n_panels = 0;
  idx n_blocks = 0;  ///< column blocks: j ranges over [0, n_blocks)
  bool lookahead = true;

  // Band layout, bottom-up. Every slot is >= 1 and the bands tile
  // [1, top_base() + 2*n_panels] without overlap:
  //   low : (k, j) cell k*n_blocks + j gets {U, S} = {2*(cells - cell),
  //         2*(cells - cell) - 1} in (0, 2*cells]
  //   mid : iteration k gets {U, S} = {mid_base() + 2*(n_panels - k), -1}
  //   top : iteration k gets {P, L} = {top_base() + 2*(n_panels - k), -1}
  long long mid_base() const {
    return sat_band_mul(2, sat_band_mul(static_cast<long long>(n_panels),
                                        static_cast<long long>(n_blocks)));
  }
  long long top_base() const {
    return sat_band_add(mid_base(),
                        sat_band_mul(2, static_cast<long long>(n_panels)));
  }

  int panel(idx k) const {
    if (!lookahead) return 0;
    return clamp_to_int(
        sat_band_add(top_base(), 2 * static_cast<long long>(n_panels - k)));
  }
  int lfactor(idx k) const {
    if (!lookahead) return 0;
    return clamp_to_int(sat_band_add(
                            top_base(),
                            2 * static_cast<long long>(n_panels - k)) -
                        1);
  }
  int ufactor(idx k, idx j) const {
    if (!lookahead) return 0;
    if (j == k + 1) {
      return clamp_to_int(sat_band_add(
          mid_base(), 2 * static_cast<long long>(n_panels - k)));
    }
    return clamp_to_int(2 * (mid_base() / 2 - low_cell(k, j)));
  }
  int update(idx k, idx j) const {
    if (!lookahead) return 0;
    if (j == k + 1) {
      return clamp_to_int(sat_band_add(
                              mid_base(),
                              2 * static_cast<long long>(n_panels - k)) -
                          1);
    }
    return clamp_to_int(2 * (mid_base() / 2 - low_cell(k, j)) - 1);
  }

 private:
  long long low_cell(idx k, idx j) const {
    assert(k >= 0 && k < n_panels);
    assert(j >= 0 && j < n_blocks);
    return static_cast<long long>(k) * static_cast<long long>(n_blocks) +
           static_cast<long long>(j);
  }
  static int clamp_to_int(long long v) {
    // The full band range fits in int for any matrix that fits in memory
    // (overflow needs n_panels * n_blocks > ~5e8 tiles, i.e. exabyte-scale
    // at the paper's b). Past the envelope, SATURATE instead of wrapping:
    // top bands bleed together (degraded look-ahead, like an oversized
    // svc priority_bias — see kQosBandWidth) but stay positive and
    // monotone-ordered; the old assert-only guard wrapped to negative in
    // release builds and scrambled the whole band structure.
    if (v > std::numeric_limits<int>::max()) {
      return std::numeric_limits<int>::max();
    }
    if (v < 1) return 1;
    return static_cast<int>(v);
  }
};

}  // namespace camult::core
