// lookahead.hpp — priority bands implementing the look-ahead-of-1 policy
// (paper Section III), shared by CALU and CAQR.
//
// Three disjoint bands, top to bottom:
//   top:  the panel path (P tasks, then L tasks) of iteration k, decreasing
//         in k — the critical path always outranks everything else;
//   mid:  the U/S tasks of column k+1 during iteration k (they unblock
//         panel k+1: the paper's "look-ahead of 1"), decreasing in k;
//   low:  all other trailing updates, ordered by (iteration, column), with
//         each column's U task just above its S tasks.
//
// Slots are derived from (n_panels, n_blocks) so the bands stay disjoint
// and strictly ordered for ANY problem size. The previous fixed scheme,
// `1000000 - (k*1000 + (j-k))`, went negative and scrambled band order once
// k*1000 + (j-k) exceeded 1e6 (reached by e.g. m = 1e6, b = 100 -> 1e4
// panels, well within the paper's tall-skinny regime), and collided between
// different (k, j) pairs once j - k >= 1000.
//
// With `lookahead = false` every task gets priority 0 and the scheduler
// degenerates to dependency + FIFO order (fork-join-like), which is what
// the ablation benches compare against.
#pragma once

#include <cassert>
#include <limits>

#include "matrix/view.hpp"

namespace camult::core {

/// Saturating priority shift. The svc job service layers a whole job's
/// look-ahead bands into its QoS class band by adding a per-class constant
/// to every task priority (CaluOptions/CaqrOptions::priority_bias); the sum
/// clamps at the int range instead of wrapping, so a pathological bias can
/// reorder but never scramble band arithmetic.
inline int biased_priority(int priority, int bias) {
  const long long v =
      static_cast<long long>(priority) + static_cast<long long>(bias);
  if (v > std::numeric_limits<int>::max()) {
    return std::numeric_limits<int>::max();
  }
  if (v < std::numeric_limits<int>::min()) {
    return std::numeric_limits<int>::min();
  }
  return static_cast<int>(v);
}

struct LookaheadPriorities {
  idx n_panels = 0;
  idx n_blocks = 0;  ///< column blocks: j ranges over [0, n_blocks)
  bool lookahead = true;

  // Band layout, bottom-up. Every slot is >= 1 and the bands tile
  // [1, top_base() + 2*n_panels] without overlap:
  //   low : (k, j) cell k*n_blocks + j gets {U, S} = {2*(cells - cell),
  //         2*(cells - cell) - 1} in (0, 2*cells]
  //   mid : iteration k gets {U, S} = {mid_base() + 2*(n_panels - k), -1}
  //   top : iteration k gets {P, L} = {top_base() + 2*(n_panels - k), -1}
  long long mid_base() const {
    return 2 * static_cast<long long>(n_panels) *
           static_cast<long long>(n_blocks);
  }
  long long top_base() const {
    return mid_base() + 2 * static_cast<long long>(n_panels);
  }

  int panel(idx k) const {
    if (!lookahead) return 0;
    return clamp_to_int(top_base() + 2 * static_cast<long long>(n_panels - k));
  }
  int lfactor(idx k) const {
    if (!lookahead) return 0;
    return clamp_to_int(top_base() + 2 * static_cast<long long>(n_panels - k) -
                        1);
  }
  int ufactor(idx k, idx j) const {
    if (!lookahead) return 0;
    if (j == k + 1) {
      return clamp_to_int(mid_base() +
                          2 * static_cast<long long>(n_panels - k));
    }
    return clamp_to_int(2 * (mid_base() / 2 - low_cell(k, j)));
  }
  int update(idx k, idx j) const {
    if (!lookahead) return 0;
    if (j == k + 1) {
      return clamp_to_int(mid_base() +
                          2 * static_cast<long long>(n_panels - k) - 1);
    }
    return clamp_to_int(2 * (mid_base() / 2 - low_cell(k, j)) - 1);
  }

 private:
  long long low_cell(idx k, idx j) const {
    assert(k >= 0 && k < n_panels);
    assert(j >= 0 && j < n_blocks);
    return static_cast<long long>(k) * static_cast<long long>(n_blocks) +
           static_cast<long long>(j);
  }
  static int clamp_to_int(long long v) {
    // The full band range fits in int for any matrix that fits in memory
    // (overflow needs n_panels * n_blocks > ~5e8 tiles, i.e. exabyte-scale
    // at the paper's b); the assert documents the envelope.
    assert(v > 0 && v <= std::numeric_limits<int>::max());
    return static_cast<int>(v);
  }
};

}  // namespace camult::core
