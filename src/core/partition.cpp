#include "core/partition.hpp"

#include <cassert>
#include <stdexcept>

namespace camult::core {

const char* reduction_tree_name(ReductionTree t) {
  switch (t) {
    case ReductionTree::Binary: return "binary";
    case ReductionTree::Flat: return "flat";
    case ReductionTree::Hybrid: return "hybrid";
  }
  return "?";
}

RowPartition partition_panel_rows(idx panel_rows, idx b, idx tr,
                                  idx min_leaf_rows) {
  if (panel_rows <= 0 || b <= 0 || tr <= 0) {
    throw std::invalid_argument("partition_panel_rows: bad arguments");
  }
  assert(min_leaf_rows <= panel_rows);
  const idx blocks = (panel_rows + b - 1) / b;  // number of b-row tiles

  // Find the largest feasible leaf count <= tr: with chunk = ceil(blocks/t)
  // tiles per leaf, every leaf must have at least min_leaf_rows rows. Only
  // the last leaf can be short, so it suffices to check it.
  for (idx t = std::min(tr, blocks); t >= 1; --t) {
    const idx chunk = (blocks + t - 1) / t;
    // Number of leaves actually produced with this chunk.
    const idx produced = (blocks + chunk - 1) / chunk;
    const idx last_start_block = (produced - 1) * chunk;
    const idx last_rows = panel_rows - last_start_block * b;
    if (last_rows < min_leaf_rows && produced > 1) continue;

    RowPartition part;
    for (idx i = 0; i < produced; ++i) {
      const idx start = i * chunk * b;
      const idx end = std::min(panel_rows, (i + 1) * chunk * b);
      part.start.push_back(start);
      part.rows.push_back(end - start);
    }
    return part;
  }
  // Fall back to a single leaf spanning the panel.
  RowPartition part;
  part.start.push_back(0);
  part.rows.push_back(panel_rows);
  return part;
}

std::vector<ReductionStep> reduction_schedule(int leaves, ReductionTree tree,
                                              int hybrid_group) {
  std::vector<ReductionStep> steps;
  if (leaves <= 1) return steps;
  if (tree == ReductionTree::Flat) {
    ReductionStep s;
    s.level = 1;
    for (int i = 0; i < leaves; ++i) s.sources.push_back(i);
    steps.push_back(std::move(s));
    return steps;
  }
  if (tree == ReductionTree::Hybrid) {
    const int g = std::max(hybrid_group, 2);
    // Flat combine within each group of g consecutive leaves...
    std::vector<int> roots;
    for (int i = 0; i < leaves; i += g) {
      const int end = std::min(leaves, i + g);
      roots.push_back(i);
      if (end - i >= 2) {
        ReductionStep s;
        s.level = 1;
        for (int v = i; v < end; ++v) s.sources.push_back(v);
        steps.push_back(std::move(s));
      }
    }
    // ...then a binary tree over the group roots.
    int level = 2;
    for (std::size_t stride = 1; stride < roots.size(); stride *= 2) {
      for (std::size_t i = 0; i + stride < roots.size(); i += 2 * stride) {
        ReductionStep s;
        s.level = level;
        s.sources = {roots[i], roots[i + stride]};
        steps.push_back(std::move(s));
      }
      ++level;
    }
    return steps;
  }
  // Binary tree: at level l, slot i (i % 2^l == 0) absorbs slot i+2^(l-1).
  for (int stride = 1; stride < leaves; stride *= 2) {
    for (int i = 0; i + stride < leaves; i += 2 * stride) {
      ReductionStep s;
      s.level = 0;
      for (int v = stride; v > 0; v /= 2) ++s.level;  // log2(stride)+1
      s.sources = {i, i + stride};
      steps.push_back(std::move(s));
    }
  }
  return steps;
}

}  // namespace camult::core
