// calu.hpp — multithreaded CALU (paper Algorithm 1).
//
// Right-looking LU over block columns. Each panel is factored by
// task-parallel TSLU (tournament pivoting over a reduction tree); the
// trailing matrix is updated by independent U (triangular solve) and S
// (gemm) tasks. All tasks run on the dynamic runtime with dependencies
// inferred from block accesses, and the look-ahead-of-1 priority policy
// keeps the panel factorization's critical path hot.
//
// Row interchanges to the right of the panel are applied inside the U tasks;
// interchanges to the left are deferred and applied by per-column cleanup
// tasks at the end, exactly as in the paper (Algorithm 1, line 41).
#pragma once

#include <memory>
#include <vector>

#include "core/options.hpp"
#include "lapack/getrf.hpp"
#include "matrix/permutation.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"

namespace camult::core {

struct CaluOptions {
  idx b = 100;         ///< panel width (block size)
  idx tr = 4;          ///< panel task count T_r
  /// Constant added to every task priority (saturating). The service layer
  /// (svc::Service) uses it to layer a job's whole look-ahead band structure
  /// into the QoS band of its client class; 0 keeps the plain lookahead.hpp
  /// bands. See LookaheadPriorities::biased.
  int priority_bias = 0;
  ReductionTree tree = ReductionTree::Binary;
  /// GEPP kernel inside the tournament (see TsluOptions::leaf_kernel).
  lapack::LuPanelKernel leaf_kernel = lapack::LuPanelKernel::Recursive;
  /// Worker threads; 0 = inline serial (record mode). Defaults to the
  /// hardware concurrency clamped to [1, 32] — see rt::default_num_threads.
  int num_threads = rt::default_num_threads();
  /// Execute on this persistent WorkerPool instead of spawning threads for
  /// the call (pool->size() workers; num_threads only distinguishes the
  /// 0 = inline case). The pool must outlive the call. nullptr = spawn
  /// num_threads owned threads, today's behaviour.
  rt::WorkerPool* pool = nullptr;
  bool lookahead = true;  ///< look-ahead-of-1 priorities (paper Section III)
  bool record_trace = true;
  /// Scheduler policy for real-thread mode (see rt::TaskGraph::Policy).
  rt::TaskGraph::Policy scheduler = rt::TaskGraph::Policy::CentralPriority;
  /// The paper's Section V future-work extension: perform the trailing
  /// update on column super-blocks of `update_cols_per_task` panels (B =
  /// this * b), reducing the task count and improving BLAS-3 granularity at
  /// the cost of available parallelism. 1 = the paper's base algorithm.
  idx update_cols_per_task = 1;
  /// Pack each leaf's L block once per iteration (a dedicated pack task
  /// ordered before the S tasks) and share the read-only PackedPanel across
  /// every trailing column segment, instead of letting each S gemm repack
  /// the same L block. false = pre-pack behaviour (the ablation baseline).
  bool pack_trailing = true;
  /// Numerical health monitoring with graceful degradation (see
  /// HealthReport): screen each panel before mutating it, track per-panel
  /// pivot growth, and refactor a panel with full-panel GEPP when the
  /// tournament elects a zero pivot or exceeds growth_limit. Healthy inputs
  /// are bit-identical with the monitor on or off (screening only reads).
  bool monitor = true;
  /// Growth threshold for the fallback; <= 0 disables the growth trigger
  /// (zero pivots still fall back). See TsluOptions::growth_limit.
  double growth_limit = 1e12;
  /// Cooperative cancellation: request_cancel() on a copy of this token
  /// makes the run skip all remaining tasks and calu_factor throw
  /// rt::CancelledError (see runtime/cancel.hpp).
  rt::CancelToken cancel{};
  /// Deterministic fault-injection hook forwarded to the TaskGraph (tests;
  /// see runtime/fault_inject.hpp). nullptr = the CAMULT_FAULT_SEED global.
  rt::FaultInjector* fault = nullptr;
  /// Salt folded into every fault decision (see rt::FaultInjector::decide):
  /// 0 reproduces the unsalted stream; the svc layer passes the retry
  /// attempt index so retried jobs draw independent fault streams.
  std::uint64_t fault_salt = 0;
  /// When non-null, receives the run's scheduler counters even if a task
  /// threw (calu_factor then propagates the exception and the result — and
  /// its `sched` member — is lost; this is the only way to observe how much
  /// of the DAG a fast-abort actually skipped).
  rt::SchedulerStats* sched_out = nullptr;
  /// Sliding-window submission (ROADMAP item 4): keep at most `window`
  /// panel iterations in flight, submitting iteration k only once iteration
  /// k - window has fully retired, and recycling the retired prefix's
  /// task-store slabs, dep keys, and tournament/pack buffers. Peak runtime
  /// memory becomes O(window) instead of O(n_panels) while the executed
  /// schedule — and the factorization, bitwise — is unchanged. 0 (the
  /// default) keeps today's build-the-whole-DAG-then-wait behaviour. See
  /// docs/runtime.md § Windowed submission.
  idx window = 0;
};

struct CaluResult {
  /// Global LAPACK-convention swap sequence (length min(m, n)).
  PivotVector ipiv;
  /// 0, or 1-based index of the first exactly-zero pivot.
  idx info = 0;
  /// The run was cancelled (CaluOptions::cancel fired) before it finished.
  /// Only ever set on results returned by calu_factor_batch — the single-
  /// problem calu_factor keeps throwing rt::CancelledError. A cancelled
  /// result carries valid sched counters but no usable factorization.
  bool cancelled = false;
  /// Executed task trace and DAG edges (for Gantt rendering and the
  /// simulated-multicore replayer). Empty if record_trace is false.
  std::vector<rt::TaskRecord> trace;
  std::vector<rt::TaskGraph::Edge> edges;
  /// Scheduler counters for the run (always filled).
  rt::SchedulerStats sched;
  /// Numerical health verdict (screening, per-panel growth, GEPP
  /// fallbacks). Only populated when CaluOptions::monitor is set.
  HealthReport health;
  /// Task-store / trace memory telemetry (always filled): peak task-store
  /// bytes, slabs allocated vs recycled, trace records harvested from
  /// retired slabs. Windowed runs keep peak_task_store_bytes O(window).
  rt::TaskGraph::MemoryStats mem;
};

/// Factor A = P L U in place (same storage convention as getrf).
CaluResult calu_factor(MatrixView a, const CaluOptions& opts = {});

/// An in-flight CALU factorization: the constructor builds and submits the
/// task DAG (all of it with window == 0; just the first `window` iterations
/// otherwise — collect() pumps the rest as earlier iterations retire) and
/// returns immediately in pool/real-thread mode; inline mode runs the
/// submitted prefix in the constructor. collect() blocks for the result.
/// This is the submit/collect split the batch driver and the svc job service
/// are built on — submit many, overlap their execution on one WorkerPool,
/// collect in any order.
///
/// The matrix storage must stay alive and untouched until collect() (or
/// destruction); destruction without collect() drains the graph and discards
/// the result. Not thread-safe; movable, not copyable. collect() may throw
/// exactly like calu_factor (task error, rt::CancelledError) and must be
/// called at most once.
class CaluAsync {
 public:
  CaluAsync(MatrixView a, const CaluOptions& opts);
  ~CaluAsync();
  CaluAsync(CaluAsync&&) noexcept;
  CaluAsync& operator=(CaluAsync&&) noexcept;

  CaluResult collect();
  bool collected() const { return impl_ == nullptr; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Factor every matrix in `as` (each in place, independent problems). All
/// DAGs are submitted up front to ONE WorkerPool — opts.pool if set, else a
/// pool of opts.num_threads workers created for the batch — so small
/// factorizations share workers instead of serializing thread spawn/join
/// per call. Results are positional. opts.num_threads == 0 runs the batch
/// inline, one problem at a time.
std::vector<CaluResult> calu_factor_batch(const std::vector<MatrixView>& as,
                                          const CaluOptions& opts = {});

}  // namespace camult::core
