// caqr.hpp — multithreaded CAQR (paper Algorithm 2).
//
// Right-looking QR over block columns. Each panel is factored by
// task-parallel TSQR; unlike CALU the panel is factored only once, and the
// reduction tree also drives the trailing-matrix updates: leaf updates apply
// each leaf's block reflector to its rows, node updates apply each tree
// node's reflector to the stacked b-row slices it combined.
//
// The Q factor is implicit: leaf reflector tails stay in the matrix, tree
// node reflectors live in the returned per-iteration factors; caqr_apply_q
// replays them.
#pragma once

#include <memory>
#include <vector>

#include "core/options.hpp"
#include "core/tsqr.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"

namespace camult::core {

struct CaqrOptions {
  idx b = 100;         ///< panel width (block size)
  idx tr = 4;          ///< panel task count T_r
  /// Constant added to every task priority (saturating); the svc layer maps
  /// QoS classes onto priority bands with it. See CaluOptions::priority_bias.
  int priority_bias = 0;
  ReductionTree tree = ReductionTree::Flat;  ///< paper's preferred CAQR tree
  /// Worker threads; 0 = inline serial (record mode). Defaults to the
  /// hardware concurrency clamped to [1, 32] — see rt::default_num_threads.
  int num_threads = rt::default_num_threads();
  /// Execute on this persistent WorkerPool instead of spawning threads for
  /// the call (see CaluOptions::pool for the exact semantics).
  rt::WorkerPool* pool = nullptr;
  bool lookahead = true;
  bool record_trace = true;
  /// Scheduler policy for real-thread mode (see rt::TaskGraph::Policy).
  rt::TaskGraph::Policy scheduler = rt::TaskGraph::Policy::CentralPriority;
  /// Structured tpqrt kernels for binary-tree nodes (see TsqrOptions).
  bool structured_nodes = false;
  /// Pack each leaf's (and dense node's) reflector V2 once per iteration
  /// (dedicated pack tasks ordered before the S tasks) and share the
  /// read-only pack across every trailing column segment, instead of
  /// letting each larfb gemm repack the same V block. Structured (tpqrt)
  /// nodes have no larfb-shaped V2 and always run unpacked.
  bool pack_trailing = true;
  /// Numerical health monitoring: screen the input for non-finite entries
  /// before any task mutates it and report max|R| / max|A| as the growth
  /// factor. Householder QR is unconditionally stable, so unlike CALU
  /// there is no degradation path — HealthReport::fallback_panels stays 0
  /// — but a poisoned input is flagged instead of silently propagating.
  bool monitor = true;
  /// Cooperative cancellation (see CaluOptions::cancel).
  rt::CancelToken cancel{};
  /// Deterministic fault-injection hook (see CaluOptions::fault).
  rt::FaultInjector* fault = nullptr;
  /// Fault-decision salt (see CaluOptions::fault_salt).
  std::uint64_t fault_salt = 0;
  /// Scheduler counters surviving a throwing run (see
  /// CaluOptions::sched_out).
  rt::SchedulerStats* sched_out = nullptr;
  /// Sliding-window submission: at most `window` panel iterations in
  /// flight, retired iterations' task-store slabs and pack scratch
  /// recycled as the factorization streams (see CaluOptions::window — same
  /// semantics, bitwise-identical results). The per-iteration Q factors in
  /// CaqrResult::iterations are the output and are never recycled. 0 (the
  /// default) keeps the full-DAG behaviour.
  idx window = 0;
};

/// TSQR factors of one panel iteration; row offsets inside `part`, `leaves`
/// and `nodes` are relative to the panel top (row0).
struct CaqrIterationFactors {
  idx row0 = 0;  ///< panel top row (== left column)
  idx jb = 0;    ///< panel width
  RowPartition part;
  std::vector<TsqrLeaf> leaves;
  std::vector<TsqrNode> nodes;
};

struct CaqrResult {
  idx m = 0;
  idx n = 0;
  /// The run was cancelled before it finished. Only ever set on results
  /// returned by caqr_factor_batch (see CaluResult::cancelled); the single-
  /// problem caqr_factor keeps throwing rt::CancelledError.
  bool cancelled = false;
  std::vector<CaqrIterationFactors> iterations;
  std::vector<rt::TaskRecord> trace;
  std::vector<rt::TaskGraph::Edge> edges;
  /// Scheduler counters for the run (always filled).
  rt::SchedulerStats sched;
  /// Numerical health verdict (input screening + R growth; QR never falls
  /// back). Only populated when CaqrOptions::monitor is set.
  HealthReport health;
  /// Task-store / trace memory telemetry (always filled); see
  /// CaluResult::mem.
  rt::TaskGraph::MemoryStats mem;
};

/// Factor A = Q R in place: on exit the upper triangle holds R; the rest
/// holds leaf reflector tails referenced by the returned factors.
CaqrResult caqr_factor(MatrixView a, const CaqrOptions& opts = {});

/// An in-flight CAQR factorization — the submit/collect split the batch
/// driver and the svc job service are built on. Same contract as CaluAsync:
/// the constructor submits the DAG (all of it with window == 0, the first
/// `window` iterations otherwise; inline mode runs the submitted prefix in
/// the constructor), collect() pumps any remaining iterations, blocks for
/// the result, and may throw exactly like caqr_factor; destruction without
/// collect() drains and discards.
class CaqrAsync {
 public:
  CaqrAsync(MatrixView a, const CaqrOptions& opts);
  ~CaqrAsync();
  CaqrAsync(CaqrAsync&&) noexcept;
  CaqrAsync& operator=(CaqrAsync&&) noexcept;

  CaqrResult collect();
  bool collected() const { return impl_ == nullptr; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Factor every matrix in `as` (each in place, independent problems),
/// submitting all DAGs up front to one WorkerPool — opts.pool if set, else
/// a pool of opts.num_threads workers created for the batch. Results are
/// positional. opts.num_threads == 0 runs the batch inline, one problem at
/// a time. See calu_factor_batch.
std::vector<CaqrResult> caqr_factor_batch(const std::vector<MatrixView>& as,
                                          const CaqrOptions& opts = {});

/// C := Q C (NoTrans) or Q^T C (Trans); C has m rows. `a` is the factored
/// matrix.
void caqr_apply_q(blas::Trans trans, ConstMatrixView a,
                  const CaqrResult& factors, MatrixView c);

/// Thin explicit Q (m x min(m, n)).
Matrix caqr_explicit_q(ConstMatrixView a, const CaqrResult& factors);

/// The min(m,n) x n upper-trapezoidal R.
Matrix caqr_extract_r(ConstMatrixView a, const CaqrResult& factors);

/// Scaled residual ||A_orig - Q R||_F / (||A||_F * max(m,n) * eps).
double caqr_residual(ConstMatrixView a_orig, ConstMatrixView a_factored,
                     const CaqrResult& factors);

}  // namespace camult::core
