#include "core/caqr.hpp"

#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/lookahead.hpp"
#include "core/partition.hpp"
#include "core/tournament.hpp"  // screen_panel (the health input screen)
#include "matrix/norms.hpp"
#include "runtime/dep_tracker.hpp"

namespace camult::core {
// Named (not anonymous) so CaqrAsync::Impl — whose type is declared in the
// public header — can hold a CaqrJob without giving an external-linkage
// class an internal-linkage member.
namespace caqr_impl {

using rt::AccessMode;
using rt::BlockAccess;
using rt::TaskId;
using rt::TaskKind;

// The leaf/node key stride is derived from the real per-iteration slot
// bound (see caqr_submit) — a fixed stride would silently alias iteration
// k's keys with iteration k+1's once a panel produced more slots than the
// stride, corrupting the DAG. The iteration index `k` here is a KeyRing
// slot in windowed mode (wrapping modulo window + 2 — see lookahead.hpp)
// and the global index otherwise; checked_key_offset throws instead of
// wrapping past the 2^59 per-space envelope, which keeps the spaces
// disjoint even through the pack keys' 2*offset+1 even/odd doubling.
rt::BlockKey tile_key(idx i, idx j) { return rt::block_key(i, j); }
rt::BlockKey leaf_key(idx k, idx slot, idx stride) {
  return (idx{1} << 60) + checked_key_offset(k, stride, slot);
}
rt::BlockKey node_key(idx k, idx node, idx stride) {
  return (idx{1} << 61) + checked_key_offset(k, stride, node);
}
// Packed-V keys: even slots for leaf packs, odd for node packs, so both
// live in one (1 << 62) space without colliding.
rt::BlockKey pack_leaf_key(idx k, idx slot, idx stride) {
  return (idx{1} << 62) + 2 * checked_key_offset(k, stride, slot);
}
rt::BlockKey pack_node_key(idx k, idx node, idx stride) {
  return (idx{1} << 62) + 2 * checked_key_offset(k, stride, node) + 1;
}

// Shared packed reflectors of one iteration (V2 of each leaf / dense
// node), built by pack tasks, read concurrently by the S tasks, released
// once the iteration's updates drain. Kept out of the public
// CaqrIterationFactors: the packs are scratch, not part of the Q factor.
struct IterPacks {
  std::vector<lapack::LarfbPackedV> leaf;
  std::vector<lapack::LarfbPackedV> node;
};

void add_tile_range(std::vector<BlockAccess>& acc, idx i0, idx i1, idx j,
                    AccessMode mode) {
  for (idx i = i0; i < i1; ++i) acc.push_back({tile_key(i, j), mode});
}

// Submission-side state for the sliding-window pump (see CaluSubmitCtx in
// calu.cpp — same shape): everything the per-iteration submit loop needs to
// resume where it left off. With window == 0 the pump degenerates to the
// old submit-everything-up-front loop run to completion inside caqr_submit.
struct CaqrSubmitCtx {
  MatrixView a;
  CaqrOptions opts;
  idx m = 0, n = 0, k_total = 0, b = 0;
  idx n_panels = 0, n_blocks = 0, m_blocks = 0;
  idx key_stride = 0;
  idx window = 0;   // 0 = full-DAG mode
  KeyRing ring;     // dep-key reuse across retired iterations
  rt::DepTracker tracker;
  LookaheadPriorities prio;
  // Task ids are assigned densely in submission order, so the id can be
  // known before submit() and used to register the block accesses.
  TaskId next_id = 0;
  idx next_k = 0;  // first not-yet-submitted iteration
};

// State a submitted-but-not-yet-collected factorization keeps alive. Task
// lambdas point into result.iterations' heap array and the heap IterPacks,
// both stable under moves of the job, but the batch driver heap-allocates
// jobs anyway for symmetry with CALU.
struct CaqrJob {
  CaqrResult result;
  std::vector<std::unique_ptr<IterPacks>> packs;
  std::unique_ptr<rt::TaskGraph> graph;
  std::unique_ptr<CaqrSubmitCtx> ctx;
  // Health monitor state: the factored matrix (re-scanned for R at
  // collect) and the input screen taken before any task mutated it.
  MatrixView a;
  PanelScreen screen;
  bool monitor = false;
};

TaskId caqr_add_task(CaqrJob& job, const std::vector<BlockAccess>& acc,
                     rt::TaskOptions topts, std::function<void()> fn) {
  CaqrSubmitCtx& C = *job.ctx;
  topts.priority = biased_priority(topts.priority, C.opts.priority_bias);
  const std::vector<TaskId> deps = C.tracker.depends(C.next_id, acc);
  const TaskId id = job.graph->submit(deps, std::move(topts), std::move(fn));
  assert(id == C.next_id);
  ++C.next_id;
  return id;
}

// Submit every task of panel iteration k (leaf QR, packs, leaf updates,
// tree nodes + node updates, pack release). Identical task bodies,
// priorities, and dependency structure whether the pump runs it eagerly
// (full-DAG) or throttled (windowed) — only the dep-key indices wrap
// through the KeyRing, which resolves to the same edges because the
// previous slot owner has retired.
void caqr_submit_iteration(CaqrJob& job, idx k) {
  CaqrSubmitCtx& C = *job.ctx;
  MatrixView a = C.a;
  const CaqrOptions& opts = C.opts;
  const idx m = C.m;
  const idx n = C.n;
  const idx k_total = C.k_total;
  const idx b = C.b;
  const idx n_blocks = C.n_blocks;
  const idx key_stride = C.key_stride;
  const idx kr = C.ring.slot(k);  // dep-key iteration index
  const LookaheadPriorities& prio = C.prio;
  CaqrResult& result = job.result;
  std::vector<std::unique_ptr<IterPacks>>& packs = job.packs;
  auto add_task = [&job](const std::vector<BlockAccess>& acc,
                         rt::TaskOptions topts,
                         std::function<void()> fn) -> TaskId {
    return caqr_add_task(job, acc, std::move(topts), std::move(fn));
  };

  {
    const idx row0 = k * b;
    const idx jb = std::min(b, k_total - row0);
    const idx panel_rows = m - row0;
    const idx kb = row0 / b;

    CaqrIterationFactors& F = result.iterations[static_cast<std::size_t>(k)];
    F.row0 = row0;
    F.jb = jb;
    F.part = partition_panel_rows(panel_rows, b, opts.tr, jb);
    const idx leaves = F.part.count();
    F.leaves.resize(static_cast<std::size_t>(leaves));
    const auto schedule =
        reduction_schedule(static_cast<int>(leaves), opts.tree);
    F.nodes.resize(schedule.size());

    packs.push_back(std::make_unique<IterPacks>());
    IterPacks* P = packs.back().get();
    P->leaf.resize(static_cast<std::size_t>(leaves));
    P->node.resize(schedule.size());

    MatrixView panel = a.block(row0, row0, panel_rows, jb);

    // --- Task P (leaves): QR of each leaf block.
    for (idx i = 0; i < leaves; ++i) {
      const idx lstart = F.part.start[static_cast<std::size_t>(i)];
      const idx lrows = F.part.rows[static_cast<std::size_t>(i)];
      std::vector<BlockAccess> acc;
      add_tile_range(acc, kb + lstart / b, kb + (lstart + lrows + b - 1) / b,
                     kb, AccessMode::ReadWrite);
      acc.push_back({leaf_key(kr, i, key_stride), AccessMode::Write});
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = prio.panel(k);
      topts.label = "leaf" + std::to_string(i);
      CaqrIterationFactors* Fp = &F;
      add_task(acc, std::move(topts), [Fp, panel, lstart, lrows, i]() {
        Fp->leaves[static_cast<std::size_t>(i)] = tsqr_leaf_kernel(
            panel.block(lstart, 0, lrows, panel.cols()), lstart);
      });
    }

    // Trailing column segments: the leftover columns of the panel's own
    // block (when jb < b), then all full blocks to the right.
    struct ColSegment {
      idx col0, cols, jblk;
    };
    std::vector<ColSegment> segments;
    if (row0 + jb < std::min(n, (kb + 1) * b)) {
      segments.push_back(
          {row0 + jb, std::min(n, (kb + 1) * b) - (row0 + jb), kb});
    }
    for (idx jblk = kb + 1; jblk < n_blocks; ++jblk) {
      segments.push_back({jblk * b, std::min(b, n - jblk * b), jblk});
    }

    // --- Leaf pack tasks: pack each leaf's V2 into microkernel layout
    // ONCE; every leaf S of this iteration shares the read-only pack. The
    // V tile reads order the pack after the leaf QR; the S tasks read the
    // pack key (plus the leaf's top tile, whose unit-lower V1 the larfb
    // trmm consumes straight from the panel).
    const bool pack_here = opts.pack_trailing && !segments.empty();
    if (pack_here) {
      for (idx i = 0; i < leaves; ++i) {
        const idx lstart = F.part.start[static_cast<std::size_t>(i)];
        const idx lrows = F.part.rows[static_cast<std::size_t>(i)];
        if (lrows <= jb) continue;  // no V2: nothing gemm-shaped to pack
        std::vector<BlockAccess> acc;
        acc.push_back({leaf_key(kr, i, key_stride), AccessMode::Read});
        add_tile_range(acc, kb + lstart / b,
                       kb + (lstart + lrows + b - 1) / b, kb,
                       AccessMode::Read);
        acc.push_back({pack_leaf_key(kr, i, key_stride), AccessMode::Write});
        rt::TaskOptions topts;
        topts.kind = TaskKind::Generic;
        topts.iteration = static_cast<int>(k);
        topts.priority = prio.lfactor(k);  // critical path ahead of the S's
        topts.label = "pack i" + std::to_string(i);
        CaqrIterationFactors* Fp = &F;
        ConstMatrixView panel_c = panel;
        add_task(acc, std::move(topts), [P, Fp, panel_c, i]() {
          P->leaf[static_cast<std::size_t>(i)] = tsqr_leaf_pack(
              panel_c, Fp->leaves[static_cast<std::size_t>(i)]);
        });
      }
    }

    // --- Task S (leaf updates): apply each leaf's reflector to its rows of
    // every trailing column segment.
    for (const ColSegment& seg : segments) {
      const idx jblk = seg.jblk;
      const idx jcol0 = seg.col0;
      const idx jcols = seg.cols;
      for (idx i = 0; i < leaves; ++i) {
        const idx lstart = F.part.start[static_cast<std::size_t>(i)];
        const idx lrows = F.part.rows[static_cast<std::size_t>(i)];
        const bool packed = pack_here && lrows > jb;
        std::vector<BlockAccess> acc;
        acc.push_back({leaf_key(kr, i, key_stride), AccessMode::Read});
        if (packed) {
          // V2 comes from the shared pack; V1 still reads the top tile.
          acc.push_back({tile_key(kb + lstart / b, kb), AccessMode::Read});
          acc.push_back({pack_leaf_key(kr, i, key_stride), AccessMode::Read});
        } else {
          add_tile_range(acc, kb + lstart / b,
                         kb + (lstart + lrows + b - 1) / b, kb,
                         AccessMode::Read);  // leaf V tiles
        }
        add_tile_range(acc, kb + lstart / b,
                       kb + (lstart + lrows + b - 1) / b, jblk,
                       AccessMode::ReadWrite);
        rt::TaskOptions topts;
        topts.kind = TaskKind::Update;
        topts.iteration = static_cast<int>(k);
        topts.priority = prio.update(k, jblk);
        topts.label = "Sleaf i" + std::to_string(i) + " j" +
                      std::to_string(jblk);
        CaqrIterationFactors* Fp = &F;
        ConstMatrixView panel_c = panel;
        MatrixView cpart = a.block(row0, jcol0, panel_rows, jcols);
        if (packed) {
          add_task(acc, std::move(topts), [P, Fp, panel_c, cpart, i]() {
            tsqr_leaf_apply(blas::Trans::Trans, panel_c,
                            Fp->leaves[static_cast<std::size_t>(i)],
                            P->leaf[static_cast<std::size_t>(i)], cpart);
          });
        } else {
          add_task(acc, std::move(topts), [Fp, panel_c, cpart, i]() {
            tsqr_leaf_apply(blas::Trans::Trans, panel_c,
                            Fp->leaves[static_cast<std::size_t>(i)], cpart);
          });
        }
      }
    }

    // --- Tree: P (node QR) and S (node updates) per reduction step.
    for (std::size_t step_i = 0; step_i < schedule.size(); ++step_i) {
      const ReductionStep& step = schedule[step_i];
      std::vector<idx> src_start;
      src_start.reserve(step.sources.size());
      for (int s : step.sources) {
        src_start.push_back(F.part.start[static_cast<std::size_t>(s)]);
      }

      {
        std::vector<BlockAccess> acc;
        // New R overwrites the target's top tile; other sources' R tiles are
        // read (their below-triangle V tails are untouched).
        acc.push_back(
            {tile_key(kb + src_start[0] / b, kb), AccessMode::ReadWrite});
        for (std::size_t s = 1; s < src_start.size(); ++s) {
          acc.push_back(
              {tile_key(kb + src_start[s] / b, kb), AccessMode::Read});
        }
        acc.push_back({node_key(kr, static_cast<idx>(step_i), key_stride),
                       AccessMode::Write});
        rt::TaskOptions topts;
        topts.kind = TaskKind::Panel;
        topts.iteration = static_cast<int>(k);
        topts.priority = prio.panel(k);
        topts.label = "node l" + std::to_string(step.level);
        CaqrIterationFactors* Fp = &F;
        const std::size_t slot = step_i;
        std::vector<idx> starts = src_start;
        const bool structured =
            opts.structured_nodes && starts.size() == 2;
        add_task(acc, std::move(topts),
                 [Fp, panel, starts, slot, jb, structured]() {
          if (structured) {
            Fp->nodes[slot] =
                tsqr_node_kernel_tri(panel, starts[0], starts[1], jb);
          } else {
            Fp->nodes[slot] = tsqr_node_kernel(panel, starts, jb);
          }
        });
      }

      // Node pack task: dense nodes only (structured tpqrt nodes have no
      // larfb-shaped V2). The node.vt buffer is node-local, so the only
      // ordering needed is after the node QR (via node_key).
      const bool node_packed =
          pack_here && !(opts.structured_nodes && src_start.size() == 2);
      if (node_packed) {
        std::vector<BlockAccess> acc;
        acc.push_back({node_key(kr, static_cast<idx>(step_i), key_stride),
                       AccessMode::Read});
        acc.push_back({pack_node_key(kr, static_cast<idx>(step_i), key_stride),
                       AccessMode::Write});
        rt::TaskOptions topts;
        topts.kind = TaskKind::Generic;
        topts.iteration = static_cast<int>(k);
        topts.priority = prio.lfactor(k);
        topts.label = "pack l" + std::to_string(step.level);
        CaqrIterationFactors* Fp = &F;
        const std::size_t slot = step_i;
        add_task(acc, std::move(topts), [P, Fp, slot]() {
          P->node[slot] = tsqr_node_pack(Fp->nodes[slot]);
        });
      }

      for (const ColSegment& seg : segments) {
        const idx jblk = seg.jblk;
        const idx jcol0 = seg.col0;
        const idx jcols = seg.cols;
        std::vector<BlockAccess> acc;
        acc.push_back({node_key(kr, static_cast<idx>(step_i), key_stride),
                       AccessMode::Read});
        if (node_packed) {
          acc.push_back({pack_node_key(kr, static_cast<idx>(step_i),
                                       key_stride),
                         AccessMode::Read});
        }
        for (idx s : src_start) {
          acc.push_back({tile_key(kb + s / b, jblk), AccessMode::ReadWrite});
        }
        rt::TaskOptions topts;
        topts.kind = TaskKind::Update;
        topts.iteration = static_cast<int>(k);
        topts.priority = prio.update(k, jblk);
        topts.label = "Snode l" + std::to_string(step.level) + " j" +
                      std::to_string(jblk);
        CaqrIterationFactors* Fp = &F;
        const std::size_t slot = step_i;
        MatrixView cpart = a.block(row0, jcol0, panel_rows, jcols);
        if (node_packed) {
          add_task(acc, std::move(topts), [P, Fp, cpart, slot]() {
            tsqr_node_apply(blas::Trans::Trans, Fp->nodes[slot],
                            P->node[slot], cpart);
          });
        } else {
          add_task(acc, std::move(topts), [Fp, cpart, slot]() {
            tsqr_node_apply(blas::Trans::Trans, Fp->nodes[slot], cpart);
          });
        }
      }
    }

    // --- Pack release: after every S task of the iteration has consumed
    // the shared packs (Write-after-Read on the pack keys), hand the slabs
    // back to the buffer pool for the next iteration's packs.
    if (pack_here) {
      std::vector<BlockAccess> acc;
      for (idx i = 0; i < leaves; ++i) {
        acc.push_back({pack_leaf_key(kr, i, key_stride), AccessMode::Write});
      }
      for (std::size_t s = 0; s < schedule.size(); ++s) {
        acc.push_back({pack_node_key(kr, static_cast<idx>(s), key_stride),
                       AccessMode::Write});
      }
      rt::TaskOptions topts;
      topts.kind = TaskKind::Generic;
      topts.iteration = static_cast<int>(k);
      topts.priority = 0;
      topts.label = "packfree";
      add_task(acc, std::move(topts), [P]() {
        for (auto& vp : P->leaf) vp = lapack::LarfbPackedV();
        for (auto& vp : P->node) vp = lapack::LarfbPackedV();
      });
    }
  }
}

// Advance the submission pump until iteration `stop` (exclusive) has been
// submitted. Windowed mode throttles: iteration k is only submitted after
// iteration k - window fully retired, and each iteration is sealed as soon
// as its last task is in (CAQR has no cross-iteration tail like CALU's left
// swaps, so even the final iteration seals immediately). On cancellation
// the pump stops submitting — skipped tasks still complete, so the retired
// prefix stays consistent and wait() reports the CancelledError.
void caqr_pump(CaqrJob& job, idx stop) {
  CaqrSubmitCtx& C = *job.ctx;
  rt::TaskGraph& graph = *job.graph;
  const idx lim = std::min(stop, C.n_panels);
  while (C.next_k < lim) {
    if (C.window > 0) {
      if (graph.aborted()) return;
      if (C.next_k > C.window) {
        graph.wait_retired_iterations(C.next_k - C.window);
      }
    }
    caqr_submit_iteration(job, C.next_k);
    if (C.window > 0) graph.seal_iterations(C.next_k);
    ++C.next_k;
  }
}

// Set up one factorization's graph + submission context and start the pump:
// everything with window == 0 (the full DAG, completing here in inline
// mode), the first `window` iterations otherwise — caqr_collect pumps the
// rest. Returns immediately in real-thread/attached mode.
void caqr_submit(MatrixView a, const CaqrOptions& opts, CaqrJob& job) {
  auto ctx = std::make_unique<CaqrSubmitCtx>();
  CaqrSubmitCtx& C = *ctx;
  C.a = a;
  C.opts = opts;
  C.m = a.rows();
  C.n = a.cols();
  C.k_total = std::min(C.m, C.n);
  C.b = std::max<idx>(1, std::min(opts.b, C.k_total));
  C.n_panels = (C.k_total + C.b - 1) / C.b;
  C.n_blocks = (C.n + C.b - 1) / C.b;
  C.m_blocks = (C.m + C.b - 1) / C.b;
  // Leaf/node key stride: partition_panel_rows returns at most
  // min(tr, m_blocks) leaves (and the reduction schedule has fewer steps
  // than leaves), so this bound keeps every iteration's keys disjoint for
  // any user-supplied tr — unbounded tr used to overflow a fixed 8192.
  C.key_stride = std::max<idx>(1, std::min(opts.tr, C.m_blocks)) + 1;
  C.window = (opts.window > 0 && C.n_panels > 0) ? opts.window : 0;
  C.ring.ring = C.window > 0 ? C.window + 2 : 0;
  // Same banded look-ahead scheme as CALU (see lookahead.hpp): panel path
  // on top, then the next panel's column updates, then ordinary updates.
  C.prio = LookaheadPriorities{C.n_panels, C.n_blocks, opts.lookahead};

  CaqrResult& result = job.result;
  result.m = C.m;
  result.n = C.n;
  result.iterations.resize(static_cast<std::size_t>(C.n_panels));
  job.packs.reserve(static_cast<std::size_t>(C.n_panels));

  // Screen the input on the submission thread, before the first task can
  // mutate it: the verdict describes the caller's matrix, not intermediate
  // update state. (Householder QR never falls back, so unlike CALU no
  // per-panel decision is needed — one whole-matrix scan suffices.)
  job.a = a;
  job.monitor = opts.monitor;
  if (opts.monitor) job.screen = screen_panel(a);

  rt::TaskGraph::Config graph_cfg;
  graph_cfg.num_threads = opts.num_threads;
  graph_cfg.record_trace = opts.record_trace;
  graph_cfg.policy = opts.scheduler;
  graph_cfg.pool = opts.pool;
  graph_cfg.cancel = opts.cancel;
  graph_cfg.fault = opts.fault;
  graph_cfg.fault_salt = opts.fault_salt;
  job.graph = std::make_unique<rt::TaskGraph>(graph_cfg);
  job.ctx = std::move(ctx);

  if (C.window > 0) {
    job.graph->track_iterations(C.n_panels);
    // Retirement releases the iteration's pack scratch (the packfree task
    // already emptied the slabs; shrink releases the vectors too). The
    // public per-iteration factors in result.iterations ARE the Q factor
    // and are never touched. Runs on the submission thread
    // (advance_retired), so pushing new IterPacks concurrently is safe —
    // same thread.
    std::vector<std::unique_ptr<IterPacks>>* packs_p = &job.packs;
    job.graph->set_retire_hook([packs_p](idx k) {
      IterPacks& p = *(*packs_p)[static_cast<std::size_t>(k)];
      p.leaf.clear();
      p.leaf.shrink_to_fit();
      p.node.clear();
      p.node.shrink_to_fit();
    });
    caqr_pump(job, C.window);
  } else {
    caqr_pump(job, C.n_panels);
  }
}

// Drain the job's graph and harvest trace/stats/health. The graph is
// destroyed with the job (its destructor detaches from the pool).
// `sched_out`, when set, receives the scheduler counters even on the
// throwing path (see calu_collect).
CaqrResult caqr_collect(CaqrJob& job, bool record_trace,
                        rt::SchedulerStats* sched_out) {
  try {
    caqr_pump(job, job.ctx->n_panels);
    job.graph->wait();
  } catch (...) {
    if (sched_out != nullptr) *sched_out = job.graph->stats();
    throw;
  }
  if (job.monitor) {
    HealthReport& health = job.result.health;
    health.nan_detected = job.screen.nonfinite;
    // Growth of the triangular factor: max|R| over the upper trapezoid
    // against the input's absmax. For QR this is bounded by sqrt(n)·||A||
    // in exact arithmetic, so a large value means the input was already
    // extreme (badly scaled), not that the factorization misbehaved.
    double rmax = 0.0;
    const idx kmax = std::min(job.result.m, job.result.n);
    for (idx j = 0; j < job.result.n; ++j) {
      const idx imax = std::min(j + 1, kmax);
      for (idx i = 0; i < imax; ++i) {
        const double v = std::abs(job.a(i, j));
        if (v > rmax) rmax = v;
      }
    }
    health.max_growth =
        job.screen.absmax > 0.0 ? rmax / job.screen.absmax : 0.0;
  }
  if (record_trace) {
    job.result.trace = job.graph->trace();
    job.result.edges = job.graph->edges();
  }
  job.result.sched = job.graph->stats();
  job.result.mem = job.graph->memory();
  if (sched_out != nullptr) *sched_out = job.result.sched;
  return std::move(job.result);
}

}  // namespace caqr_impl

using caqr_impl::CaqrJob;

struct CaqrAsync::Impl {
  CaqrJob job;
  bool record_trace = true;
  rt::SchedulerStats* sched_out = nullptr;
};

CaqrAsync::CaqrAsync(MatrixView a, const CaqrOptions& opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->record_trace = opts.record_trace;
  impl_->sched_out = opts.sched_out;
  caqr_impl::caqr_submit(a, opts, impl_->job);
}

// CaqrJob's graph member drains and detaches in its destructor, so dropping
// an uncollected handle cannot wedge an attached pool.
CaqrAsync::~CaqrAsync() = default;
CaqrAsync::CaqrAsync(CaqrAsync&&) noexcept = default;
CaqrAsync& CaqrAsync::operator=(CaqrAsync&&) noexcept = default;

CaqrResult CaqrAsync::collect() {
  if (impl_ == nullptr) {
    throw std::logic_error("CaqrAsync::collect called twice");
  }
  const std::unique_ptr<Impl> impl = std::move(impl_);
  return caqr_impl::caqr_collect(impl->job, impl->record_trace,
                                 impl->sched_out);
}

CaqrResult caqr_factor(MatrixView a, const CaqrOptions& opts) {
  CaqrJob job;
  caqr_impl::caqr_submit(a, opts, job);
  return caqr_impl::caqr_collect(job, opts.record_trace, opts.sched_out);
}

std::vector<CaqrResult> caqr_factor_batch(const std::vector<MatrixView>& as,
                                          const CaqrOptions& opts) {
  std::vector<CaqrResult> out;
  out.reserve(as.size());
  // See calu_factor_batch: cancellation yields per-job cancelled results
  // (completed prefix intact) carrying their run's real skip accounting;
  // task errors still propagate.
  std::vector<rt::SchedulerStats> scheds(as.size());
  if (opts.num_threads == 0 || as.size() <= 1) {
    for (std::size_t i = 0; i < as.size(); ++i) {
      CaqrOptions jopts = opts;
      jopts.sched_out = &scheds[i];
      try {
        out.push_back(caqr_factor(as[i], jopts));
      } catch (const rt::CancelledError&) {
        CaqrResult r;
        r.cancelled = true;
        r.sched = scheds[i];
        out.push_back(std::move(r));
      }
      if (opts.sched_out != nullptr) *opts.sched_out = scheds[i];
    }
    return out;
  }
  rt::WorkerPool* pool = opts.pool;
  std::unique_ptr<rt::WorkerPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<rt::WorkerPool>(
        rt::WorkerPoolConfig{opts.num_threads, false});
    pool = owned.get();
  }
  // Submit every DAG before collecting any: the pool's workers rotate
  // between the attached graphs, so the whole batch runs concurrently.
  std::vector<CaqrAsync> jobs;
  jobs.reserve(as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    CaqrOptions jopts = opts;
    jopts.pool = pool;
    jopts.sched_out = &scheds[i];
    jobs.emplace_back(as[i], jopts);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    try {
      out.push_back(jobs[i].collect());
    } catch (const rt::CancelledError&) {
      CaqrResult r;
      r.cancelled = true;
      r.sched = scheds[i];
      out.push_back(std::move(r));
    }
    if (opts.sched_out != nullptr) *opts.sched_out = scheds[i];
  }
  return out;
}

void caqr_apply_q(blas::Trans trans, ConstMatrixView a,
                  const CaqrResult& factors, MatrixView c) {
  assert(c.rows() == factors.m);
  auto apply_iteration = [&](const CaqrIterationFactors& F,
                             blas::Trans dir) {
    ConstMatrixView panel =
        a.block(F.row0, F.row0, factors.m - F.row0, F.jb);
    MatrixView crows = c.rows_range(F.row0, factors.m - F.row0);
    if (dir == blas::Trans::Trans) {
      for (const TsqrLeaf& leaf : F.leaves) {
        tsqr_leaf_apply(blas::Trans::Trans, panel, leaf, crows);
      }
      for (const TsqrNode& node : F.nodes) {
        tsqr_node_apply(blas::Trans::Trans, node, crows);
      }
    } else {
      for (auto it = F.nodes.rbegin(); it != F.nodes.rend(); ++it) {
        tsqr_node_apply(blas::Trans::NoTrans, *it, crows);
      }
      for (const TsqrLeaf& leaf : F.leaves) {
        tsqr_leaf_apply(blas::Trans::NoTrans, panel, leaf, crows);
      }
    }
  };

  if (trans == blas::Trans::Trans) {
    for (const CaqrIterationFactors& F : factors.iterations) {
      apply_iteration(F, blas::Trans::Trans);
    }
  } else {
    for (auto it = factors.iterations.rbegin();
         it != factors.iterations.rend(); ++it) {
      apply_iteration(*it, blas::Trans::NoTrans);
    }
  }
}

Matrix caqr_explicit_q(ConstMatrixView a, const CaqrResult& factors) {
  const idx k = std::min(factors.m, factors.n);
  Matrix q = Matrix::identity(factors.m, k);
  caqr_apply_q(blas::Trans::NoTrans, a, factors, q.view());
  return q;
}

Matrix caqr_extract_r(ConstMatrixView a, const CaqrResult& factors) {
  const idx k = std::min(factors.m, factors.n);
  Matrix r = Matrix::zeros(k, factors.n);
  for (idx j = 0; j < factors.n; ++j) {
    const idx top = std::min(j + 1, k);
    for (idx i = 0; i < top; ++i) r(i, j) = a(i, j);
  }
  return r;
}

double caqr_residual(ConstMatrixView a_orig, ConstMatrixView a_factored,
                     const CaqrResult& factors) {
  const idx m = factors.m;
  const idx n = factors.n;
  const idx k = std::min(m, n);
  Matrix qr = Matrix::zeros(m, n);
  Matrix r = caqr_extract_r(a_factored, factors);
  copy_into(r.view(), qr.view().rows_range(0, k));
  caqr_apply_q(blas::Trans::NoTrans, a_factored, factors, qr.view());
  double diff2 = 0.0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      const double d = qr(i, j) - a_orig(i, j);
      diff2 += d * d;
    }
  }
  const double na = norm_fro(a_orig);
  if (na == 0.0) return std::sqrt(diff2);
  return std::sqrt(diff2) /
         (na * static_cast<double>(std::max(m, n)) *
          std::numeric_limits<double>::epsilon());
}

}  // namespace camult::core
