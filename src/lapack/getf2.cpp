#include "lapack/getf2.hpp"

#include <cmath>

#include "blas/level1.hpp"
#include "blas/level2.hpp"

namespace camult::lapack {

namespace {

// max |a(i, j)| over the given triangle of the matrix (whole = both).
double absmax_all(ConstMatrixView a) {
  double m = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    const double* col = a.col_ptr(j);
    for (idx i = 0; i < a.rows(); ++i) {
      const double v = std::abs(col[i]);
      if (v > m) m = v;
    }
  }
  return m;
}

double absmax_upper(ConstMatrixView a) {
  double m = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    const idx imax = std::min(j + 1, a.rows());
    for (idx i = 0; i < imax; ++i) {
      const double v = std::abs(a(i, j));
      if (v > m) m = v;
    }
  }
  return m;
}

}  // namespace

idx getf2(MatrixView a, PivotVector& ipiv, double* growth) {
  double amax = 0.0;
  if (growth != nullptr) amax = absmax_all(a);
  const idx info = getf2(a, ipiv);
  if (growth != nullptr) {
    *growth = amax > 0.0 ? absmax_upper(a) / amax : 0.0;
  }
  return info;
}

idx getf2(MatrixView a, PivotVector& ipiv) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  ipiv.assign(static_cast<std::size_t>(k), 0);
  idx info = 0;

  for (idx j = 0; j < k; ++j) {
    // Pivot: largest magnitude in column j at or below the diagonal.
    const idx p = j + blas::iamax(m - j, a.col_ptr(j) + j, 1);
    ipiv[static_cast<std::size_t>(j)] = p;
    if (a(p, j) != 0.0) {
      if (p != j) {
        blas::swap(n, a.data() + j, a.ld(), a.data() + p, a.ld());
      }
      if (j < m - 1) {
        blas::scal(m - j - 1, 1.0 / a(j, j), a.col_ptr(j) + j + 1, 1);
      }
    } else if (info == 0) {
      info = j + 1;
    }
    if (j < k) {
      // Rank-1 update of the trailing submatrix.
      blas::ger(-1.0, a.col_ptr(j) + j + 1, 1, a.data() + j + (j + 1) * a.ld(),
                a.ld(), a.block(j + 1, j + 1, m - j - 1, n - j - 1));
    }
  }
  return info;
}

}  // namespace camult::lapack
