// laswp.hpp — row interchanges (LAPACK dlaswp).
#pragma once

#include "matrix/permutation.hpp"
#include "matrix/view.hpp"

namespace camult::lapack {

/// Apply the interchanges ipiv[k1..k2) to the rows of a: for k = k1..k2-1 in
/// order, swap row k with row ipiv[k]. Pivot indices are 0-based and relative
/// to row 0 of the view.
void laswp(MatrixView a, idx k1, idx k2, const PivotVector& ipiv);

/// Apply the same interchanges in reverse order (undo laswp).
void laswp_inverse(MatrixView a, idx k1, idx k2, const PivotVector& ipiv);

}  // namespace camult::lapack
