#include "lapack/getrf.hpp"

#include "blas/blas.hpp"
#include "lapack/getf2.hpp"
#include "lapack/laswp.hpp"

namespace camult::lapack {
namespace {

// Recursive worker: ipiv must already be sized to min(m,n); entries are
// written at [piv_offset, piv_offset + min(m,n)).
idx rgetf2_rec(MatrixView a, PivotVector& ipiv, std::size_t piv_offset) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  if (k == 0) return 0;

  if (m == 1) {
    ipiv[piv_offset] = 0;
    return (a(0, 0) == 0.0) ? 1 : 0;
  }
  if (n == 1) {
    const idx p = blas::iamax(m, a.col_ptr(0), 1);
    ipiv[piv_offset] = p;
    if (a(p, 0) == 0.0) return 1;
    if (p != 0) std::swap(a(0, 0), a(p, 0));
    blas::scal(m - 1, 1.0 / a(0, 0), a.col_ptr(0) + 1, 1);
    return 0;
  }

  const idx n1 = k / 2;
  const idx n2 = n - n1;

  // Factor the left half [A11; A21].
  MatrixView left = a.cols_range(0, n1);
  idx info = rgetf2_rec(left, ipiv, piv_offset);

  // Apply its interchanges to the right half, then solve/update.
  MatrixView right = a.cols_range(n1, n2);
  for (idx kk = 0; kk < n1; ++kk) {
    const idx p = ipiv[piv_offset + static_cast<std::size_t>(kk)];
    if (p != kk) {
      blas::swap(n2, right.data() + kk, right.ld(), right.data() + p,
                 right.ld());
    }
  }
  blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::NoTrans,
             blas::Diag::Unit, 1.0, a.block(0, 0, n1, n1),
             right.rows_range(0, n1));
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0,
             a.block(n1, 0, m - n1, n1), right.rows_range(0, n1), 1.0,
             right.rows_range(n1, m - n1));

  // Factor the trailing block and pull its interchanges back into the left
  // columns.
  MatrixView a22 = a.block(n1, n1, m - n1, n2);
  const idx info2 =
      rgetf2_rec(a22, ipiv, piv_offset + static_cast<std::size_t>(n1));
  if (info == 0 && info2 != 0) info = info2 + n1;

  MatrixView left_below = a.block(n1, 0, m - n1, n1);
  const idx k2 = std::min(m - n1, n2);
  for (idx kk = 0; kk < k2; ++kk) {
    const std::size_t slot = piv_offset + static_cast<std::size_t>(n1 + kk);
    const idx p = ipiv[slot];
    if (p != kk) {
      blas::swap(n1, left_below.data() + kk, left_below.ld(),
                 left_below.data() + p, left_below.ld());
    }
    // Rebase the pivot index to the top of this (sub)matrix.
    ipiv[slot] = p + n1;
  }
  return info;
}

}  // namespace

idx rgetf2(MatrixView a, PivotVector& ipiv) {
  const idx k = std::min(a.rows(), a.cols());
  ipiv.assign(static_cast<std::size_t>(k), 0);
  return rgetf2_rec(a, ipiv, 0);
}

idx getrf(MatrixView a, PivotVector& ipiv, const GetrfOptions& opts) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  ipiv.assign(static_cast<std::size_t>(k), 0);
  idx info = 0;

  PivotVector panel_piv;
  for (idx j = 0; j < k; j += opts.nb) {
    const idx jb = std::min(opts.nb, k - j);
    MatrixView panel = a.block(j, j, m - j, jb);

    const idx panel_info = (opts.panel == LuPanelKernel::Recursive)
                               ? rgetf2(panel, panel_piv)
                               : getf2(panel, panel_piv);
    if (info == 0 && panel_info != 0) info = panel_info + j;

    // Record global pivots and apply the interchanges to the columns to the
    // left and to the right of the panel (rows j..m).
    for (idx i = 0; i < jb; ++i) {
      ipiv[static_cast<std::size_t>(j + i)] =
          panel_piv[static_cast<std::size_t>(i)] + j;
    }
    if (j > 0) {
      laswp(a.block(j, 0, m - j, j), 0, jb, panel_piv);
    }
    if (j + jb < n) {
      MatrixView right = a.block(j, j + jb, m - j, n - j - jb);
      laswp(right, 0, jb, panel_piv);
      blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::NoTrans,
                 blas::Diag::Unit, 1.0, a.block(j, j, jb, jb),
                 right.rows_range(0, jb));
      if (j + jb < m) {
        blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0,
                   a.block(j + jb, j, m - j - jb, jb), right.rows_range(0, jb),
                   1.0, right.rows_range(jb, m - j - jb));
      }
    }
  }
  return info;
}

}  // namespace camult::lapack
