// getri.hpp — matrix inverse and condition estimation on top of the LU
// factorization.
#pragma once

#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"

namespace camult::lapack {

/// Invert A in place given its LU factorization (lu holds L/U, ipiv the
/// swaps): on exit `lu` holds A^{-1}. Returns 0, or the 1-based index of a
/// zero pivot on U's diagonal (no inverse).
idx getri(MatrixView lu, const PivotVector& ipiv);

/// Estimate the 1-norm condition number kappa_1(A) = ||A||_1 ||A^{-1}||_1
/// from a factorization, using Hager–Higham iteration on A^{-1} (solves
/// only, no explicit inverse). `anorm` is ||A||_1 of the ORIGINAL matrix.
/// Returns an estimate of kappa_1 (a lower bound, usually within a small
/// factor), or +inf for an exactly singular factorization.
double gecon(ConstMatrixView lu, const PivotVector& ipiv, double anorm);

}  // namespace camult::lapack
