#include "lapack/householder.hpp"

#include <cmath>
#include <limits>

#include "blas/level1.hpp"
#include "blas/level2.hpp"

namespace camult::lapack {

double larfg(idx n, double& alpha, double* x, idx incx) {
  if (n <= 1) return 0.0;
  double xnorm = blas::nrm2(n - 1, x, incx);
  if (xnorm == 0.0) return 0.0;

  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);

  // Guard against denormalized beta, as in dlarfg.
  const double safmin =
      std::numeric_limits<double>::min() / std::numeric_limits<double>::epsilon();
  int rescales = 0;
  double alpha_s = alpha;
  while (std::abs(beta) < safmin && rescales < 20) {
    const double inv = 1.0 / safmin;
    blas::scal(n - 1, inv, x, incx);
    beta *= inv;
    alpha_s *= inv;
    xnorm = blas::nrm2(n - 1, x, incx);
    beta = -std::copysign(std::hypot(alpha_s, xnorm), alpha_s);
    ++rescales;
  }

  const double tau = (beta - alpha_s) / beta;
  blas::scal(n - 1, 1.0 / (alpha_s - beta), x, incx);
  for (int r = 0; r < rescales; ++r) beta *= safmin;
  alpha = beta;
  return tau;
}

void apply_reflector_left(double tau, const double* v_tail, MatrixView c,
                          double* work) {
  if (tau == 0.0 || c.cols() == 0) return;
  const idx m = c.rows();
  const idx n = c.cols();
  assert(m >= 1);

  // work = C(0,:)^T + C(1:,:)^T * v_tail
  for (idx j = 0; j < n; ++j) work[j] = c(0, j);
  if (m > 1) {
    blas::gemv(blas::Trans::Trans, 1.0, c.block(1, 0, m - 1, n), v_tail, 1,
               1.0, work, 1);
  }
  // C(0,:) -= tau * work; C(1:,:) -= tau * v_tail * work^T
  for (idx j = 0; j < n; ++j) c(0, j) -= tau * work[j];
  if (m > 1) {
    blas::ger(-tau, v_tail, 1, work, 1, c.block(1, 0, m - 1, n));
  }
}

}  // namespace camult::lapack
