#include "lapack/laswp.hpp"

#include <cassert>

#include "blas/level1.hpp"

namespace camult::lapack {

void laswp(MatrixView a, idx k1, idx k2, const PivotVector& ipiv) {
  assert(k1 >= 0 && k2 <= static_cast<idx>(ipiv.size()));
  for (idx k = k1; k < k2; ++k) {
    const idx p = ipiv[static_cast<std::size_t>(k)];
    assert(p >= 0 && p < a.rows());
    if (p != k) {
      blas::swap(a.cols(), a.data() + k, a.ld(), a.data() + p, a.ld());
    }
  }
}

void laswp_inverse(MatrixView a, idx k1, idx k2, const PivotVector& ipiv) {
  assert(k1 >= 0 && k2 <= static_cast<idx>(ipiv.size()));
  for (idx k = k2 - 1; k >= k1; --k) {
    const idx p = ipiv[static_cast<std::size_t>(k)];
    assert(p >= 0 && p < a.rows());
    if (p != k) {
      blas::swap(a.cols(), a.data() + k, a.ld(), a.data() + p, a.ld());
    }
  }
}

}  // namespace camult::lapack
