#include "lapack/geqrf.hpp"

#include <cassert>

#include "blas/blas.hpp"
#include "lapack/householder.hpp"
#include "matrix/matrix.hpp"

namespace camult::lapack {

void geqr2(MatrixView a, std::vector<double>& tau) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(k), 0.0);
  std::vector<double> work(static_cast<std::size_t>(n));

  for (idx j = 0; j < k; ++j) {
    double& alpha = a(j, j);
    double* v_tail = (j + 1 < m) ? a.col_ptr(j) + j + 1 : nullptr;
    const idx col_len = m - j;
    tau[static_cast<std::size_t>(j)] = larfg(col_len, alpha, v_tail, 1);
    if (j + 1 < n) {
      apply_reflector_left(tau[static_cast<std::size_t>(j)], v_tail,
                           a.block(j, j + 1, m - j, n - j - 1), work.data());
    }
  }
}

void larft(ConstMatrixView v, const double* tau, MatrixView t) {
  const idx m = v.rows();
  const idx k = v.cols();
  (void)m;
  assert(t.rows() >= k && t.cols() >= k);

  for (idx i = 0; i < k; ++i) {
    const double taui = tau[i];
    if (taui == 0.0) {
      for (idx j = 0; j < i; ++j) t(j, i) = 0.0;
    } else {
      // T(0:i, i) = -tau_i * V(i:m, 0:i)^T * V(i:m, i), exploiting the unit
      // diagonal: V(i, j<i) are stored, V(i, i) = 1.
      for (idx j = 0; j < i; ++j) t(j, i) = -taui * v(i, j);
      if (i + 1 < m) {
        blas::gemv(blas::Trans::Trans, -taui, v.block(i + 1, 0, m - i - 1, i),
                   v.col_ptr(i) + i + 1, 1, 1.0, t.col_ptr(i), 1);
      }
      // T(0:i, i) = T(0:i, 0:i) * T(0:i, i)
      blas::trmv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit,
                 t.block(0, 0, i, i), t.col_ptr(i), 1);
    }
    t(i, i) = taui;
  }
}

namespace {

// Shared larfb_left body; vp (when non-null) supplies pre-packed copies of
// V2 for the two gemms, everything else is identical.
void larfb_left_impl(blas::Trans trans, ConstMatrixView v, ConstMatrixView t,
                     const LarfbPackedV* vp, MatrixView c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = v.cols();
  assert(v.rows() == m);
  assert(t.rows() >= k && t.cols() >= k);
  if (m == 0 || n == 0 || k == 0) return;

  ConstMatrixView v1 = v.block(0, 0, k, k);          // unit lower triangular
  MatrixView c1 = c.rows_range(0, k);

  // W = C^T V = C1^T V1 + C2^T V2   (n x k)
  Matrix w(n, k);
  for (idx j = 0; j < k; ++j) {
    for (idx i = 0; i < n; ++i) w(i, j) = c1(j, i);
  }
  blas::trmm(blas::Side::Right, blas::Uplo::Lower, blas::Trans::NoTrans,
             blas::Diag::Unit, 1.0, v1, w.view());
  if (m > k) {
    if (vp != nullptr) {
      blas::gemm_packed(blas::Trans::Trans, 1.0, c.rows_range(k, m - k),
                        vp->v2_b, 1.0, w.view());
    } else {
      blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0,
                 c.rows_range(k, m - k), v.block(k, 0, m - k, k), 1.0,
                 w.view());
    }
  }

  // W := W * T^T (apply Q) or W * T (apply Q^T).
  blas::trmm(blas::Side::Right, blas::Uplo::Upper,
             trans == blas::Trans::NoTrans ? blas::Trans::Trans
                                           : blas::Trans::NoTrans,
             blas::Diag::NonUnit, 1.0, t.block(0, 0, k, k), w.view());

  // C2 -= V2 * W^T
  if (m > k) {
    if (vp != nullptr) {
      blas::gemm_packed(-1.0, vp->v2_a, blas::Trans::Trans, w.view(), 1.0,
                        c.rows_range(k, m - k));
    } else {
      blas::gemm(blas::Trans::NoTrans, blas::Trans::Trans, -1.0,
                 v.block(k, 0, m - k, k), w.view(), 1.0,
                 c.rows_range(k, m - k));
    }
  }
  // W := W * V1^T, then C1 -= W^T.
  blas::trmm(blas::Side::Right, blas::Uplo::Lower, blas::Trans::Trans,
             blas::Diag::Unit, 1.0, v1, w.view());
  for (idx j = 0; j < k; ++j) {
    for (idx i = 0; i < n; ++i) c1(j, i) -= w(i, j);
  }
}

}  // namespace

void larfb_left(blas::Trans trans, ConstMatrixView v, ConstMatrixView t,
                MatrixView c) {
  larfb_left_impl(trans, v, t, nullptr, c);
}

LarfbPackedV larfb_pack_v(ConstMatrixView v) {
  const idx m = v.rows();
  const idx k = v.cols();
  LarfbPackedV vp;
  if (m > k) {
    ConstMatrixView v2 = v.block(k, 0, m - k, k);
    vp.v2_a = blas::pack_a(v2, blas::Trans::NoTrans);
    vp.v2_b = blas::pack_b(v2, blas::Trans::NoTrans);
  }
  return vp;
}

void larfb_left(blas::Trans trans, ConstMatrixView v, ConstMatrixView t,
                const LarfbPackedV& vp, MatrixView c) {
  // A degenerate pack (m == k: no V2) falls back to the plain body.
  larfb_left_impl(trans, v, t, vp.empty() ? nullptr : &vp, c);
}

void geqrf(MatrixView a, std::vector<double>& tau, const GeqrfOptions& opts) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(k), 0.0);

  std::vector<double> panel_tau;
  Matrix t(opts.nb, opts.nb);
  for (idx j = 0; j < k; j += opts.nb) {
    const idx jb = std::min(opts.nb, k - j);
    MatrixView panel = a.block(j, j, m - j, jb);
    MatrixView tb = t.block(0, 0, jb, jb);
    if (opts.recursive_panel) {
      geqr3(panel, panel_tau, tb);
    } else {
      geqr2(panel, panel_tau);
      larft(panel, panel_tau.data(), tb);
    }
    for (idx i = 0; i < jb; ++i) {
      tau[static_cast<std::size_t>(j + i)] =
          panel_tau[static_cast<std::size_t>(i)];
    }
    if (j + jb < n) {
      larfb_left(blas::Trans::Trans, panel, tb,
                 a.block(j, j + jb, m - j, n - j - jb));
    }
  }
}

void geqr3(MatrixView a, std::vector<double>& tau, MatrixView t) {
  const idx m = a.rows();
  const idx n = a.cols();
  (void)m;
  assert(m >= n);
  assert(t.rows() >= n && t.cols() >= n);
  tau.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return;

  struct Rec {
    static void run(MatrixView a_, double* tau_, MatrixView t_) {
      const idx m_ = a_.rows();
      const idx n_ = a_.cols();
      if (n_ <= 8) {
        std::vector<double> local_tau;
        geqr2(a_, local_tau);
        for (idx i = 0; i < n_; ++i) tau_[i] = local_tau[static_cast<std::size_t>(i)];
        larft(a_, tau_, t_);
        return;
      }
      const idx n1 = n_ / 2;
      const idx n2 = n_ - n1;

      MatrixView left = a_.cols_range(0, n1);
      MatrixView t1 = t_.block(0, 0, n1, n1);
      run(left, tau_, t1);

      // Apply Q1^T to the right half.
      MatrixView right = a_.cols_range(n1, n2);
      larfb_left(blas::Trans::Trans, left, t1, right);

      // Factor the lower-right block.
      MatrixView a2 = a_.block(n1, n1, m_ - n1, n2);
      MatrixView t2 = t_.block(n1, n1, n2, n2);
      run(a2, tau_ + n1, t2);

      // T12 = -T1 * (V1^T V2) * T2.
      // V1 rows n1..m are stored in A(n1:m, 0:n1); V2 is the unit
      // lower-trapezoidal A(n1:m, n1:n).
      MatrixView t12 = t_.block(0, n1, n1, n2);
      ConstMatrixView b1 = a_.block(n1, 0, n2, n1);
      for (idx j = 0; j < n2; ++j) {
        for (idx i = 0; i < n1; ++i) t12(i, j) = b1(j, i);
      }
      blas::trmm(blas::Side::Right, blas::Uplo::Lower, blas::Trans::NoTrans,
                 blas::Diag::Unit, 1.0, a_.block(n1, n1, n2, n2), t12);
      if (m_ > n1 + n2) {
        blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0,
                   a_.block(n1 + n2, 0, m_ - n1 - n2, n1),
                   a_.block(n1 + n2, n1, m_ - n1 - n2, n2), 1.0, t12);
      }
      blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::NoTrans,
                 blas::Diag::NonUnit, -1.0, t1, t12);
      blas::trmm(blas::Side::Right, blas::Uplo::Upper, blas::Trans::NoTrans,
                 blas::Diag::NonUnit, 1.0, t2, t12);
    }
  };
  Rec::run(a, tau.data(), t);
}

}  // namespace camult::lapack
