#include "lapack/solve.hpp"

#include <cassert>
#include <limits>

#include "blas/blas.hpp"
#include "lapack/getrf.hpp"
#include "lapack/laswp.hpp"
#include "lapack/orgqr.hpp"
#include "matrix/norms.hpp"

namespace camult::lapack {

void getrs(blas::Trans trans, ConstMatrixView lu, const PivotVector& ipiv,
           MatrixView b) {
  assert(lu.rows() == lu.cols());
  assert(b.rows() == lu.rows());
  if (trans == blas::Trans::NoTrans) {
    // A = P^T L U: X = U^{-1} L^{-1} P B.
    laswp(b, 0, static_cast<idx>(ipiv.size()), ipiv);
    blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::NoTrans,
               blas::Diag::Unit, 1.0, lu, b);
    blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::NoTrans,
               blas::Diag::NonUnit, 1.0, lu, b);
  } else {
    // A^T = U^T L^T P: X = P^T L^{-T} U^{-T} B.
    blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::Trans,
               blas::Diag::NonUnit, 1.0, lu, b);
    blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::Trans,
               blas::Diag::Unit, 1.0, lu, b);
    laswp_inverse(b, 0, static_cast<idx>(ipiv.size()), ipiv);
  }
}

idx gesv(MatrixView a, PivotVector& ipiv, MatrixView b) {
  const idx info = getrf(a, ipiv);
  if (info != 0) return info;
  getrs(blas::Trans::NoTrans, a, ipiv, b);
  return 0;
}

void qr_solve(ConstMatrixView qr, const std::vector<double>& tau,
              MatrixView b) {
  const idx n = qr.cols();
  assert(qr.rows() >= n);
  assert(b.rows() == qr.rows());
  ormqr_left(blas::Trans::Trans, qr, tau, b);
  blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::NoTrans,
             blas::Diag::NonUnit, 1.0, qr.block(0, 0, n, n),
             b.rows_range(0, n));
}

int refine_solution(ConstMatrixView a, ConstMatrixView lu,
                    const PivotVector& ipiv, ConstMatrixView b, MatrixView x,
                    int max_iters) {
  const idx n = a.rows();
  assert(a.cols() == n && x.rows() == n && b.rows() == n);
  assert(x.cols() == b.cols());

  double prev = std::numeric_limits<double>::infinity();
  int sweeps = 0;
  Matrix r(n, x.cols());
  for (int it = 0; it < max_iters; ++it) {
    // r = B - A X.
    copy_into(b, r.view());
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0, a, x, 1.0,
               r.view());
    const double rn = norm_fro(r.view());
    if (!(rn < prev) || rn == 0.0) break;  // no further progress
    prev = rn;
    // Solve A d = r, then X += d.
    getrs(blas::Trans::NoTrans, lu, ipiv, r.view());
    for (idx j = 0; j < x.cols(); ++j) {
      blas::axpy(n, 1.0, r.view().col_ptr(j), 1, x.col_ptr(j), 1);
    }
    ++sweeps;
  }
  return sweeps;
}

double solve_residual(ConstMatrixView a, ConstMatrixView x,
                      ConstMatrixView b) {
  Matrix r = Matrix::from(b);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, x, -1.0,
             r.view());
  const double denom = norm_fro(a) * norm_fro(x) + norm_fro(b);
  if (denom == 0.0) return norm_fro(r.view());
  return norm_fro(r.view()) /
         (denom * static_cast<double>(a.cols()) *
          std::numeric_limits<double>::epsilon());
}

}  // namespace camult::lapack
