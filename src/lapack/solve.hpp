// solve.hpp — solver drivers on top of the factorizations (LAPACK
// getrs/gesv/gels analogues). These are what downstream users actually
// call; the benches and examples use them too.
#pragma once

#include <vector>

#include "blas/types.hpp"
#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"

namespace camult::lapack {

/// Solve op(A) X = B given a getrf/calu factorization (lu, ipiv).
/// B (n x nrhs) is overwritten with X.
void getrs(blas::Trans trans, ConstMatrixView lu, const PivotVector& ipiv,
           MatrixView b);

/// Factor A (destroyed) and solve A X = B in one call. Returns getrf's
/// info (0, or 1-based first zero pivot; B is untouched when info != 0).
idx gesv(MatrixView a, PivotVector& ipiv, MatrixView b);

/// Least squares min ||A X - B||_F for tall A (m >= n) from a geqrf
/// factorization (qr, tau): X = R^{-1} (Q^T B)(1:n, :). B is m x nrhs on
/// entry; the solution occupies its first n rows on exit.
void qr_solve(ConstMatrixView qr, const std::vector<double>& tau,
              MatrixView b);

/// Residual of a solve: ||A X - B||_F / (||A||_F ||X||_F + ||B||_F) /
/// (n * eps) — small means backward stable.
double solve_residual(ConstMatrixView a, ConstMatrixView x,
                      ConstMatrixView b);

/// Iterative refinement (dgerfs-style, working precision): given the
/// original A, its LU factorization, the right-hand sides B and the current
/// solution X (n x nrhs, refined in place), perform up to `max_iters`
/// refinement sweeps, stopping early once the residual stops improving.
/// Returns the number of sweeps applied.
int refine_solution(ConstMatrixView a, ConstMatrixView lu,
                    const PivotVector& ipiv, ConstMatrixView b, MatrixView x,
                    int max_iters = 3);

}  // namespace camult::lapack
