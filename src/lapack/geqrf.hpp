// geqrf.hpp — Householder QR factorizations.
//
//  * geqr2: unblocked BLAS-2 QR (LAPACK dgeqr2) — the paper's "MKL_dgeqr2"
//    baseline class.
//  * larft/larfb: compact-WY block reflector formation/application.
//  * geqrf: blocked right-looking QR (LAPACK dgeqrf).
//  * geqr3: recursive QR (Elmroth–Gustavson) returning the full T factor —
//    the fast sequential kernel used inside TSQR.
//
// Factored form: the upper triangle of A holds R; the Householder tails v_j
// are stored below the diagonal (unit diagonal implicit); tau[j] are the
// reflector scalars.
#pragma once

#include <vector>

#include "blas/pack.hpp"
#include "blas/types.hpp"
#include "matrix/view.hpp"

namespace camult::lapack {

/// Unblocked QR. tau is resized to min(m, n).
void geqr2(MatrixView a, std::vector<double>& tau);

/// Form the k x k upper triangular T of the compact-WY representation
/// H_1 ... H_k = I - V T V^T (forward, columnwise storage). v is m x k with
/// implicit unit lower-trapezoidal structure (upper part ignored).
void larft(ConstMatrixView v, const double* tau, MatrixView t);

/// Apply a compact-WY block reflector from the left:
///   C := (I - V T V^T) C        (Trans::NoTrans)
///   C := (I - V T^T V^T) C      (Trans::Trans, i.e. H^T C = Q^T C... )
///
/// Note Q = H_1...H_k = I - V T V^T, so Trans::Trans applies Q^T.
/// V is m x k unit lower-trapezoidal (upper part ignored), C is m x n.
void larfb_left(blas::Trans trans, ConstMatrixView v, ConstMatrixView t,
                MatrixView c);

/// Pre-packed rectangular part of a reflector block for larfb_left. V2
/// (rows k..m of V) enters two gemms — once as the B operand (W += C2^T V2)
/// and once as the A operand (C2 -= V2 W^T) — so both packings are kept.
/// V1 (the unit lower triangle) is consumed by trmm straight from v.
/// Build once per panel, then share read-only across every trailing column
/// segment the reflector is applied to.
struct LarfbPackedV {
  blas::PackedPanel v2_a;  ///< pack_a(V2, NoTrans)
  blas::PackedPanel v2_b;  ///< pack_b(V2, NoTrans)
  bool empty() const { return v2_a.empty(); }
};

/// Pack V2 of an m x k reflector block for packed larfb_left application.
LarfbPackedV larfb_pack_v(ConstMatrixView v);

/// larfb_left consuming the pre-packed V2 (vp must come from larfb_pack_v
/// on the same v). Safe to call concurrently with shared v/t/vp as long as
/// the c blocks are disjoint.
void larfb_left(blas::Trans trans, ConstMatrixView v, ConstMatrixView t,
                const LarfbPackedV& vp, MatrixView c);

struct GeqrfOptions {
  idx nb = 64;  ///< panel width
  bool recursive_panel = true;  ///< use geqr3 for the panel (else geqr2)
};

/// Blocked QR. tau is resized to min(m, n).
void geqrf(MatrixView a, std::vector<double>& tau,
           const GeqrfOptions& opts = {});

/// Recursive QR of an m x n matrix with m >= n. Fills tau (resized to n) and
/// the full n x n upper triangular T such that Q = I - V T V^T.
void geqr3(MatrixView a, std::vector<double>& tau, MatrixView t);

}  // namespace camult::lapack
