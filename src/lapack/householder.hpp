// householder.hpp — elementary reflector kernels (dlarfg / dlarf).
//
// A reflector is H = I - tau * [1; v] * [1; v]^T with the leading 1 implicit:
// only the tail v is stored (below the diagonal of the factored matrix).
#pragma once

#include "matrix/view.hpp"

namespace camult::lapack {

/// Generate a reflector annihilating x: on entry alpha is the pivot element
/// and x the n-1 tail elements; on exit alpha = beta (the resulting diagonal
/// value), x = v (the stored tail), and the return value is tau.
double larfg(idx n, double& alpha, double* x, idx incx);

/// Apply H = I - tau [1; v_tail] [1; v_tail]^T from the left to C
/// (C has 1 + len(v_tail) rows). work must hold C.cols() doubles.
void apply_reflector_left(double tau, const double* v_tail, MatrixView c,
                          double* work);

}  // namespace camult::lapack
