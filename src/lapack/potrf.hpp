// potrf.hpp — Cholesky factorization (lower triangular convention),
// completing the one-sided factorization family alongside LU and QR.
//
//   A = L * L^T, A symmetric positive definite; only the lower triangle of
//   A is referenced and overwritten with L.
#pragma once

#include "matrix/view.hpp"

namespace camult::lapack {

/// Unblocked Cholesky (dpotf2, Lower). Returns 0, or the 1-based index of
/// the first non-positive pivot (A is left partially factored).
idx potf2(MatrixView a);

struct PotrfOptions {
  idx nb = 128;  ///< panel width
};

/// Blocked right-looking Cholesky (dpotrf, Lower). Same contract as potf2.
idx potrf(MatrixView a, const PotrfOptions& opts = {});

/// Solve A X = B given the Cholesky factor (L in the lower triangle of
/// `chol`); B is overwritten with X.
void potrs(ConstMatrixView chol, MatrixView b);

/// ||A - L L^T||_F / (||A||_F * n * eps) over the full symmetric matrix.
double cholesky_residual(ConstMatrixView a_orig, ConstMatrixView chol);

}  // namespace camult::lapack
