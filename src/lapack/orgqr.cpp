#include "lapack/orgqr.hpp"

#include <cassert>

#include "lapack/householder.hpp"

namespace camult::lapack {

void orgqr(ConstMatrixView v, const std::vector<double>& tau, MatrixView q) {
  const idx m = v.rows();
  const idx k = v.cols();
  const idx n = q.cols();
  assert(q.rows() == m);
  assert(k <= n && n <= m);
  assert(static_cast<idx>(tau.size()) >= k);

  // Initialise columns k..n to identity columns.
  for (idx j = k; j < n; ++j) {
    double* col = q.col_ptr(j);
    for (idx i = 0; i < m; ++i) col[i] = 0.0;
    col[j] = 1.0;
  }
  // Copy the reflector tails into the first k columns (contents above the
  // diagonal are irrelevant, they get overwritten below).
  for (idx j = 0; j < k; ++j) {
    double* col = q.col_ptr(j);
    for (idx i = 0; i < m; ++i) col[i] = (i > j) ? v(i, j) : 0.0;
  }

  std::vector<double> work(static_cast<std::size_t>(n));
  for (idx j = k - 1; j >= 0; --j) {
    const double tauj = tau[static_cast<std::size_t>(j)];
    const double* v_tail = (j + 1 < m) ? q.col_ptr(j) + j + 1 : nullptr;
    if (j + 1 < n) {
      apply_reflector_left(tauj, v_tail,
                           q.block(j, j + 1, m - j, n - j - 1), work.data());
    }
    // Column j of Q: H_j e_j = e_j - tau (e_j + v tail rows).
    q(j, j) = 1.0 - tauj;
    if (j + 1 < m) {
      double* col = q.col_ptr(j);
      for (idx i = j + 1; i < m; ++i) col[i] = -tauj * col[i];
    }
    for (idx i = 0; i < j; ++i) q(i, j) = 0.0;
  }
}

Matrix make_q(ConstMatrixView v, const std::vector<double>& tau) {
  Matrix q(v.rows(), v.cols());
  orgqr(v, tau, q.view());
  return q;
}

void ormqr_left(blas::Trans trans, ConstMatrixView v,
                const std::vector<double>& tau, MatrixView c) {
  const idx m = v.rows();
  const idx k = v.cols();
  assert(c.rows() == m);
  assert(static_cast<idx>(tau.size()) >= k);

  std::vector<double> work(static_cast<std::size_t>(c.cols()));
  std::vector<double> v_tail(static_cast<std::size_t>(m));

  auto apply_one = [&](idx j) {
    const idx tail_len = m - j - 1;
    for (idx i = 0; i < tail_len; ++i) {
      v_tail[static_cast<std::size_t>(i)] = v(j + 1 + i, j);
    }
    apply_reflector_left(tau[static_cast<std::size_t>(j)], v_tail.data(),
                         c.block(j, 0, m - j, c.cols()), work.data());
  };

  if (trans == blas::Trans::Trans) {
    // Q^T = H_k ... H_1.
    for (idx j = 0; j < k; ++j) apply_one(j);
  } else {
    // Q = H_1 ... H_k.
    for (idx j = k - 1; j >= 0; --j) apply_one(j);
  }
}

}  // namespace camult::lapack
