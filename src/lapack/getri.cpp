#include "lapack/getri.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "blas/blas.hpp"
#include "lapack/solve.hpp"
#include "matrix/norms.hpp"

namespace camult::lapack {

idx getri(MatrixView lu, const PivotVector& ipiv) {
  assert(lu.rows() == lu.cols());
  const idx n = lu.rows();
  for (idx i = 0; i < n; ++i) {
    if (lu(i, i) == 0.0) return i + 1;
  }
  // X = U^{-1} L^{-1} P applied to the identity, column block at a time
  // (simple and robust; dgetri's in-place scheme saves the workspace but
  // not flops).
  Matrix inv = Matrix::identity(n, n);
  getrs(blas::Trans::NoTrans, lu, ipiv, inv.view());
  copy_into(inv.view(), lu);
  return 0;
}

double gecon(ConstMatrixView lu, const PivotVector& ipiv, double anorm) {
  assert(lu.rows() == lu.cols());
  const idx n = lu.rows();
  if (n == 0) return 1.0;
  for (idx i = 0; i < n; ++i) {
    if (lu(i, i) == 0.0) return std::numeric_limits<double>::infinity();
  }

  // Hager-Higham 1-norm estimator for B = A^{-1}: maximize ||B x||_1 over
  // ||x||_1 = 1 by alternating solves with A and A^T.
  Matrix x(n, 1);
  fill(x.view(), 1.0 / static_cast<double>(n));
  double est = 0.0;
  for (int iter = 0; iter < 5; ++iter) {
    // y = A^{-1} x.
    Matrix y = x;
    getrs(blas::Trans::NoTrans, lu, ipiv, y.view());
    const double ynorm = blas::asum(n, y.data(), 1);
    est = std::max(est, ynorm);

    // z = sign(y); w = A^{-T} z.
    Matrix w(n, 1);
    for (idx i = 0; i < n; ++i) {
      w(i, 0) = (y(i, 0) >= 0.0) ? 1.0 : -1.0;
    }
    getrs(blas::Trans::Trans, lu, ipiv, w.view());

    // Next x: e_j at the maximizing component; stop when no progress.
    idx jmax = 0;
    double wmax = 0.0;
    for (idx i = 0; i < n; ++i) {
      const double v = std::abs(w(i, 0));
      if (v > wmax) {
        wmax = v;
        jmax = i;
      }
    }
    const double xw = blas::dot(n, x.data(), 1, w.data(), 1);
    if (wmax <= std::abs(xw)) break;  // converged (Hager's criterion)
    fill(x.view(), 0.0);
    x(jmax, 0) = 1.0;
  }

  // Also try the alternating-sign probe vector dlacn2 uses; it catches
  // adversarial cases the iteration can miss.
  {
    Matrix v(n, 1);
    for (idx i = 0; i < n; ++i) {
      const double t = 1.0 + static_cast<double>(i) / std::max<idx>(n - 1, 1);
      v(i, 0) = ((i % 2 == 0) ? 1.0 : -1.0) * t;
    }
    getrs(blas::Trans::NoTrans, lu, ipiv, v.view());
    const double alt = 2.0 * blas::asum(n, v.data(), 1) /
                       (3.0 * static_cast<double>(n));
    est = std::max(est, alt);
  }
  return anorm * est;
}

}  // namespace camult::lapack
