// verify.hpp — factorization residual checks shared by tests, benches and
// examples. All residuals are scaled so that "small" means O(machine epsilon
// * a modest function of the problem size).
#pragma once

#include <vector>

#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"

namespace camult::lapack {

/// Unit-lower-trapezoidal L (m x k) from a factored LU matrix.
Matrix extract_unit_lower(ConstMatrixView lu, idx k);

/// Upper-trapezoidal U (k x n) from a factored LU matrix.
Matrix extract_upper(ConstMatrixView lu, idx k);

/// ||P*A - L*U||_F / (||A||_F * max(m,n) * eps) for an LAPACK-convention
/// factorization (ipiv as produced by getf2/getrf).
double lu_residual(ConstMatrixView a_orig, ConstMatrixView lu,
                   const PivotVector& ipiv);

/// Same, but with an explicit row permutation (perm[i] = source row of row i
/// of P*A) instead of a swap sequence. Used by CALU.
double lu_residual_perm(ConstMatrixView a_orig, ConstMatrixView lu,
                        const Permutation& perm);

/// ||A - Q*R||_F / (||A||_F * max(m,n) * eps) for a Householder QR held in
/// (qr, tau).
double qr_residual(ConstMatrixView a_orig, ConstMatrixView qr,
                   const std::vector<double>& tau);

/// ||I - Q^T Q||_F / (cols * eps).
double orthogonality_residual(ConstMatrixView q);

/// Element growth factor max|U| / max|A| of an LU factorization.
double pivot_growth(ConstMatrixView a_orig, ConstMatrixView lu);

}  // namespace camult::lapack
