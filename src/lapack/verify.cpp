#include "lapack/verify.hpp"

#include <limits>

#include "blas/blas.hpp"
#include "lapack/orgqr.hpp"
#include "matrix/norms.hpp"

namespace camult::lapack {
namespace {
constexpr double kEps = std::numeric_limits<double>::epsilon();
}

Matrix extract_unit_lower(ConstMatrixView lu, idx k) {
  const idx m = lu.rows();
  Matrix l = Matrix::zeros(m, k);
  for (idx j = 0; j < k; ++j) {
    l(j, j) = 1.0;
    for (idx i = j + 1; i < m; ++i) l(i, j) = lu(i, j);
  }
  return l;
}

Matrix extract_upper(ConstMatrixView lu, idx k) {
  const idx n = lu.cols();
  Matrix u = Matrix::zeros(k, n);
  for (idx j = 0; j < n; ++j) {
    const idx top = std::min(j + 1, k);
    for (idx i = 0; i < top; ++i) u(i, j) = lu(i, j);
  }
  return u;
}

namespace {

double lu_residual_impl(const Matrix& pa, ConstMatrixView lu,
                        double norm_a) {
  const idx m = lu.rows();
  const idx n = lu.cols();
  const idx k = std::min(m, n);
  Matrix l = extract_unit_lower(lu, k);
  Matrix u = extract_upper(lu, k);
  Matrix resid = pa;
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0, l, u, 1.0,
             resid.view());
  if (norm_a == 0.0) return norm_fro(resid.view());
  return norm_fro(resid.view()) /
         (norm_a * static_cast<double>(std::max(m, n)) * kEps);
}

}  // namespace

double lu_residual(ConstMatrixView a_orig, ConstMatrixView lu,
                   const PivotVector& ipiv) {
  const Permutation perm = ipiv_to_permutation(ipiv, a_orig.rows());
  Matrix pa = permute_rows(perm, a_orig);
  return lu_residual_impl(pa, lu, norm_fro(a_orig));
}

double lu_residual_perm(ConstMatrixView a_orig, ConstMatrixView lu,
                        const Permutation& perm) {
  Matrix pa = permute_rows(perm, a_orig);
  return lu_residual_impl(pa, lu, norm_fro(a_orig));
}

double qr_residual(ConstMatrixView a_orig, ConstMatrixView qr,
                   const std::vector<double>& tau) {
  const idx m = qr.rows();
  const idx n = qr.cols();
  const idx k = std::min(m, n);
  Matrix q(m, k);
  orgqr(qr.cols_range(0, k), tau, q.view());
  Matrix r = extract_upper(qr, k);
  Matrix resid = Matrix::from(a_orig);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0, q, r, 1.0,
             resid.view());
  const double na = norm_fro(a_orig);
  if (na == 0.0) return norm_fro(resid.view());
  return norm_fro(resid.view()) /
         (na * static_cast<double>(std::max(m, n)) * kEps);
}

double orthogonality_residual(ConstMatrixView q) {
  const idx n = q.cols();
  Matrix gram = Matrix::identity(n, n);
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, q, q, -1.0,
             gram.view());
  return norm_fro(gram.view()) / (static_cast<double>(n) * kEps);
}

double pivot_growth(ConstMatrixView a_orig, ConstMatrixView lu) {
  const idx k = std::min(lu.rows(), lu.cols());
  double max_u = 0.0;
  for (idx j = 0; j < lu.cols(); ++j) {
    const idx top = std::min(j + 1, k);
    for (idx i = 0; i < top; ++i) max_u = std::max(max_u, std::abs(lu(i, j)));
  }
  const double max_a = norm_max(a_orig);
  return max_a == 0.0 ? 0.0 : max_u / max_a;
}

}  // namespace camult::lapack
