// getrf.hpp — LU factorization drivers.
//
//  * rgetf2: recursive LU (Toledo / LAPACK dgetrf2). This is the fast
//    sequential panel kernel the paper uses inside TSLU ("rgetf2").
//  * getrf: classic blocked right-looking LU (LAPACK dgetrf). Serves as the
//    sequential vendor-style baseline; the task-parallel version lives in
//    src/baseline.
#pragma once

#include "matrix/permutation.hpp"
#include "matrix/view.hpp"

namespace camult::lapack {

/// Recursive LU with partial pivoting, any m x n. Same in-place contract as
/// getf2. Returns 0 or the 1-based index of the first zero pivot.
idx rgetf2(MatrixView a, PivotVector& ipiv);

/// Which kernel factors each panel of getrf.
enum class LuPanelKernel { Getf2, Recursive };

struct GetrfOptions {
  idx nb = 128;                                    ///< panel width
  LuPanelKernel panel = LuPanelKernel::Recursive;  ///< panel kernel
};

/// Blocked right-looking LU with partial pivoting. In-place; ipiv is global
/// (row interchanges relative to row 0). Returns 0 or 1-based first zero
/// pivot index.
idx getrf(MatrixView a, PivotVector& ipiv, const GetrfOptions& opts = {});

}  // namespace camult::lapack
