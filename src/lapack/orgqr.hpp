// orgqr.hpp — generate/apply the explicit Q factor of a Householder QR.
#pragma once

#include <vector>

#include "blas/types.hpp"
#include "matrix/matrix.hpp"

namespace camult::lapack {

/// Form the leading q.cols() columns of Q = H_1 ... H_k from the factored
/// matrix v (m x k, reflectors below the diagonal) and tau. Requires
/// k <= q.cols() <= m = q.rows().
void orgqr(ConstMatrixView v, const std::vector<double>& tau, MatrixView q);

/// Convenience: explicit m x n Q (n = v.cols()).
Matrix make_q(ConstMatrixView v, const std::vector<double>& tau);

/// Apply Q (Trans::NoTrans) or Q^T (Trans::Trans) from the left to C:
/// C := op(Q) * C, with Q defined by (v, tau) as in orgqr. C has m rows.
void ormqr_left(blas::Trans trans, ConstMatrixView v,
                const std::vector<double>& tau, MatrixView c);

}  // namespace camult::lapack
