// getf2.hpp — unblocked Gaussian elimination with partial pivoting
// (LAPACK dgetf2). This is the BLAS-2 baseline the paper measures as
// "MKL_dgetf2" and also the kernel executed at every node of the TSLU
// tournament.
#pragma once

#include "matrix/permutation.hpp"
#include "matrix/view.hpp"

namespace camult::lapack {

/// Factor A = P * L * U in place. On exit the unit lower triangle of L and
/// the upper triangle of U overwrite A; ipiv (resized to min(m,n)) records
/// the interchanges.
///
/// Returns 0 on success, or the 1-based index of the first exactly-zero
/// pivot (the factorization still completes, as in LAPACK).
idx getf2(MatrixView a, PivotVector& ipiv);

/// Same factorization, additionally reporting the pivot-growth factor
/// max|U| / max|A_in| in *growth (0 for an all-zero input; growth == nullptr
/// is allowed and bit-identical to the two-argument form). This is the
/// per-panel health metric the CALU monitor tracks — GEPP bounds it by
/// 2^(n-1), tournament pivoting does not.
idx getf2(MatrixView a, PivotVector& ipiv, double* growth);

}  // namespace camult::lapack
