// getf2.hpp — unblocked Gaussian elimination with partial pivoting
// (LAPACK dgetf2). This is the BLAS-2 baseline the paper measures as
// "MKL_dgetf2" and also the kernel executed at every node of the TSLU
// tournament.
#pragma once

#include "matrix/permutation.hpp"
#include "matrix/view.hpp"

namespace camult::lapack {

/// Factor A = P * L * U in place. On exit the unit lower triangle of L and
/// the upper triangle of U overwrite A; ipiv (resized to min(m,n)) records
/// the interchanges.
///
/// Returns 0 on success, or the 1-based index of the first exactly-zero
/// pivot (the factorization still completes, as in LAPACK).
idx getf2(MatrixView a, PivotVector& ipiv);

}  // namespace camult::lapack
