#include "lapack/potrf.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "blas/blas.hpp"
#include "matrix/matrix.hpp"
#include "matrix/norms.hpp"

namespace camult::lapack {

idx potf2(MatrixView a) {
  assert(a.rows() == a.cols());
  const idx n = a.rows();
  for (idx k = 0; k < n; ++k) {
    const double d = a(k, k);
    if (!(d > 0.0)) return k + 1;  // catches <= 0 and NaN
    const double l = std::sqrt(d);
    a(k, k) = l;
    if (k + 1 < n) {
      blas::scal(n - k - 1, 1.0 / l, a.col_ptr(k) + k + 1, 1);
      // Trailing update, lower triangle only: column by column.
      for (idx j = k + 1; j < n; ++j) {
        blas::axpy(n - j, -a(j, k), a.col_ptr(k) + j, 1, a.col_ptr(j) + j, 1);
      }
    }
  }
  return 0;
}

idx potrf(MatrixView a, const PotrfOptions& opts) {
  assert(a.rows() == a.cols());
  const idx n = a.rows();
  const idx nb = std::max<idx>(1, opts.nb);

  for (idx k = 0; k < n; k += nb) {
    const idx kb = std::min(nb, n - k);
    MatrixView akk = a.block(k, k, kb, kb);
    const idx info = potf2(akk);
    if (info != 0) return k + info;

    const idx below = n - k - kb;
    if (below == 0) continue;
    MatrixView panel = a.block(k + kb, k, below, kb);
    blas::trsm(blas::Side::Right, blas::Uplo::Lower, blas::Trans::Trans,
               blas::Diag::NonUnit, 1.0, akk, panel);

    // Trailing update A22 -= panel * panel^T, lower triangle only: nb-wide
    // column blocks, small syrk on each diagonal block and gemm below it
    // (keeps the bulk of the flops in gemm).
    for (idx j = 0; j < below; j += nb) {
      const idx jb = std::min(nb, below - j);
      blas::syrk(blas::Uplo::Lower, blas::Trans::NoTrans, -1.0,
                 panel.block(j, 0, jb, kb), 1.0,
                 a.block(k + kb + j, k + kb + j, jb, jb));
      if (j + jb < below) {
        blas::gemm(blas::Trans::NoTrans, blas::Trans::Trans, -1.0,
                   panel.block(j + jb, 0, below - j - jb, kb),
                   panel.block(j, 0, jb, kb), 1.0,
                   a.block(k + kb + j + jb, k + kb + j, below - j - jb, jb));
      }
    }
  }
  return 0;
}

void potrs(ConstMatrixView chol, MatrixView b) {
  assert(chol.rows() == chol.cols());
  assert(b.rows() == chol.rows());
  blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::NoTrans,
             blas::Diag::NonUnit, 1.0, chol, b);
  blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::Trans,
             blas::Diag::NonUnit, 1.0, chol, b);
}

double cholesky_residual(ConstMatrixView a_orig, ConstMatrixView chol) {
  const idx n = chol.rows();
  Matrix l = Matrix::zeros(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = j; i < n; ++i) l(i, j) = chol(i, j);
  }
  Matrix resid = Matrix::from(a_orig);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::Trans, -1.0, l, l, 1.0,
             resid.view());
  const double na = norm_fro(a_orig);
  if (na == 0.0) return norm_fro(resid.view());
  return norm_fro(resid.view()) /
         (na * static_cast<double>(n) * std::numeric_limits<double>::epsilon());
}

}  // namespace camult::lapack
