// lapack.hpp — umbrella header for the LAPACK-subset substrate.
#pragma once

#include "lapack/geqrf.hpp"       // IWYU pragma: export
#include "lapack/getf2.hpp"       // IWYU pragma: export
#include "lapack/getrf.hpp"       // IWYU pragma: export
#include "lapack/getri.hpp"       // IWYU pragma: export
#include "lapack/householder.hpp" // IWYU pragma: export
#include "lapack/laswp.hpp"       // IWYU pragma: export
#include "lapack/orgqr.hpp"       // IWYU pragma: export
#include "lapack/potrf.hpp"       // IWYU pragma: export
#include "lapack/solve.hpp"       // IWYU pragma: export
#include "lapack/verify.hpp"      // IWYU pragma: export
