// blocked.hpp — vendor-library-style blocked factorizations on the task
// runtime (the paper's "MKL_dgetrf" / "MKL_dgeqrf" baseline class).
//
// Classic right-looking blocked algorithms: the panel is ONE serial task on
// the critical path (vendor panel factorizations do not scale), while the
// trailing update is parallelized fork-join style — across column blocks
// (QR) or column blocks x row strips (LU). This models exactly the property
// the paper attributes to vendor libraries: highly optimized BLAS-3 updates
// but a sequential panel, which dominates on tall-skinny matrices.
#pragma once

#include "matrix/permutation.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"

namespace camult::baseline {

struct BlockedOptions {
  idx nb = 100;    ///< panel width
  idx strips = 8;  ///< row strips for the LU gemm update
  /// 0 = inline serial (record mode); defaults to rt::default_num_threads.
  int num_threads = rt::default_num_threads();
  bool record_trace = true;
};

struct BlockedLuResult {
  PivotVector ipiv;
  idx info = 0;
  std::vector<rt::TaskRecord> trace;
  std::vector<rt::TaskGraph::Edge> edges;
  rt::SchedulerStats sched;  ///< scheduler counters (always filled)
};

/// Blocked LU with partial pivoting (getrf layout), serial panel task.
BlockedLuResult blocked_getrf(MatrixView a, const BlockedOptions& opts = {});

struct BlockedQrResult {
  std::vector<double> tau;
  std::vector<rt::TaskRecord> trace;
  std::vector<rt::TaskGraph::Edge> edges;
  rt::SchedulerStats sched;  ///< scheduler counters (always filled)
};

/// Blocked Householder QR (geqrf layout), serial panel task.
BlockedQrResult blocked_geqrf(MatrixView a, const BlockedOptions& opts = {});

}  // namespace camult::baseline
