#include "baseline/blocked.hpp"

#include <cassert>
#include <functional>
#include <memory>
#include <string>

#include "blas/blas.hpp"
#include "lapack/geqrf.hpp"
#include "lapack/getrf.hpp"
#include "lapack/laswp.hpp"
#include "matrix/matrix.hpp"
#include "runtime/dep_tracker.hpp"

namespace camult::baseline {
namespace {

using rt::AccessMode;
using rt::BlockAccess;
using rt::TaskId;
using rt::TaskKind;

rt::BlockKey tile_key(idx i, idx j) { return rt::block_key(i, j); }
rt::BlockKey piv_key(idx k) { return (idx{1} << 61) + k; }

void add_tile_range(std::vector<BlockAccess>& acc, idx i0, idx i1, idx j,
                    AccessMode mode) {
  for (idx i = i0; i < i1; ++i) acc.push_back({tile_key(i, j), mode});
}

struct ColSegment {
  idx col0, cols, jblk;
};

std::vector<ColSegment> trailing_segments(idx col0, idx jb, idx b, idx n,
                                          idx kb) {
  std::vector<ColSegment> segments;
  if (col0 + jb < std::min(n, (kb + 1) * b)) {
    segments.push_back(
        {col0 + jb, std::min(n, (kb + 1) * b) - (col0 + jb), kb});
  }
  const idx n_blocks = (n + b - 1) / b;
  for (idx jblk = kb + 1; jblk < n_blocks; ++jblk) {
    segments.push_back({jblk * b, std::min(b, n - jblk * b), jblk});
  }
  return segments;
}

}  // namespace

BlockedLuResult blocked_getrf(MatrixView a, const BlockedOptions& opts) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k_total = std::min(m, n);
  const idx b = std::max<idx>(1, std::min(opts.nb, k_total));
  const idx n_panels = (k_total + b - 1) / b;
  const idx m_blocks = (m + b - 1) / b;

  BlockedLuResult result;
  result.ipiv.assign(static_cast<std::size_t>(k_total), 0);
  std::vector<idx> infos(static_cast<std::size_t>(n_panels), 0);

  // Panel-local pivot vectors, kept alive for deferred left swaps.
  auto panel_piv = std::make_unique<std::vector<PivotVector>>(
      static_cast<std::size_t>(n_panels));
  std::vector<idx> panel_jb(static_cast<std::size_t>(n_panels), 0);

  rt::TaskGraph graph({opts.num_threads, opts.record_trace});
  rt::DepTracker tracker;
  TaskId next_id = 0;
  auto add_task = [&](const std::vector<BlockAccess>& acc,
                      rt::TaskOptions topts,
                      std::function<void()> fn) -> TaskId {
    const std::vector<TaskId> deps = tracker.depends(next_id, acc);
    const TaskId id = graph.submit(deps, std::move(topts), std::move(fn));
    assert(id == next_id);
    ++next_id;
    return id;
  };
  auto base_prio = [&](idx k) {
    return static_cast<int>((n_panels - k) * 1000);
  };

  for (idx k = 0; k < n_panels; ++k) {
    const idx row0 = k * b;
    const idx jb = std::min(b, k_total - row0);
    panel_jb[static_cast<std::size_t>(k)] = jb;
    const idx panel_rows = m - row0;

    // Serial panel task (the vendor bottleneck).
    {
      std::vector<BlockAccess> acc;
      add_tile_range(acc, k, m_blocks, k, AccessMode::ReadWrite);
      acc.push_back({piv_key(k), AccessMode::Write});
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = base_prio(k) + 900;
      topts.label = "panel";
      MatrixView panel = a.block(row0, row0, panel_rows, jb);
      PivotVector* piv = &(*panel_piv)[static_cast<std::size_t>(k)];
      PivotVector* gipiv = &result.ipiv;
      idx* info_slot = &infos[static_cast<std::size_t>(k)];
      add_task(acc, std::move(topts), [panel, piv, gipiv, info_slot, row0,
                                       jb]() {
        const idx info = lapack::rgetf2(panel, *piv);
        if (info != 0) *info_slot = info;
        for (idx j = 0; j < jb; ++j) {
          (*gipiv)[static_cast<std::size_t>(row0 + j)] =
              row0 + (*piv)[static_cast<std::size_t>(j)];
        }
      });
    }

    // Trailing update: per column segment, a swap+trsm task, then gemm
    // tasks over row strips.
    const auto segments = trailing_segments(row0, jb, b, n, k);
    const idx below_rows = panel_rows - jb;
    const idx strip = [&] {
      if (below_rows <= 0 || opts.strips <= 0) return below_rows;
      const idx blocks = (below_rows + b - 1) / b;
      const idx per = (blocks + opts.strips - 1) / opts.strips;
      return per * b;
    }();

    for (const ColSegment& seg : segments) {
      {
        std::vector<BlockAccess> acc;
        acc.push_back({piv_key(k), AccessMode::Read});
        acc.push_back({tile_key(k, k), AccessMode::Read});
        add_tile_range(acc, k, m_blocks, seg.jblk, AccessMode::ReadWrite);
        rt::TaskOptions topts;
        topts.kind = TaskKind::UFactor;
        topts.iteration = static_cast<int>(k);
        topts.priority = base_prio(k) +
                         static_cast<int>(std::max<idx>(0, 100 - (seg.jblk - k)));
        topts.label = "swap+trsm j" + std::to_string(seg.jblk);
        MatrixView col = a.block(row0, seg.col0, panel_rows, seg.cols);
        MatrixView lkk = a.block(row0, row0, jb, jb);
        PivotVector* piv = &(*panel_piv)[static_cast<std::size_t>(k)];
        add_task(acc, std::move(topts), [col, lkk, piv, jb]() {
          lapack::laswp(col, 0, jb, *piv);
          blas::trsm(blas::Side::Left, blas::Uplo::Lower,
                     blas::Trans::NoTrans, blas::Diag::Unit, 1.0, lkk,
                     col.rows_range(0, jb));
        });
      }
      for (idx s0 = 0; s0 < below_rows; s0 += strip) {
        const idx srows = std::min(strip, below_rows - s0);
        std::vector<BlockAccess> acc;
        const idx tile0 = k + (jb + s0) / b;
        const idx tile1 = k + (jb + s0 + srows + b - 1) / b;
        add_tile_range(acc, tile0, tile1, k, AccessMode::Read);
        acc.push_back({tile_key(k, seg.jblk), AccessMode::Read});
        add_tile_range(acc, tile0, tile1, seg.jblk, AccessMode::ReadWrite);
        rt::TaskOptions topts;
        topts.kind = TaskKind::Update;
        topts.iteration = static_cast<int>(k);
        topts.priority = base_prio(k) +
                         static_cast<int>(std::max<idx>(0, 100 - (seg.jblk - k)));
        topts.label = "gemm j" + std::to_string(seg.jblk);
        MatrixView lblk = a.block(row0 + jb + s0, row0, srows, jb);
        MatrixView ublk = a.block(row0, seg.col0, jb, seg.cols);
        MatrixView cblk = a.block(row0 + jb + s0, seg.col0, srows, seg.cols);
        add_task(acc, std::move(topts), [lblk, ublk, cblk]() {
          blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, -1.0, lblk,
                     ublk, 1.0, cblk);
        });
      }
    }
  }

  // Deferred left swaps, one task per column block.
  const idx n_blocks = (n + b - 1) / b;
  for (idx jblk = 0; jblk < n_blocks && jblk * b < k_total; ++jblk) {
    const idx jcol0 = jblk * b;
    const idx jcols = std::min(b, n - jcol0);
    std::vector<BlockAccess> acc;
    for (idx kk = jblk + 1; kk < n_panels; ++kk) {
      acc.push_back({piv_key(kk), AccessMode::Read});
    }
    if (acc.empty()) continue;
    add_tile_range(acc, jblk + 1, m_blocks, jblk, AccessMode::ReadWrite);
    rt::TaskOptions topts;
    topts.kind = TaskKind::Generic;
    topts.label = "lswap j" + std::to_string(jblk);
    MatrixView colv = a.block(0, jcol0, m, jcols);
    std::vector<PivotVector>* pivs = panel_piv.get();
    std::vector<idx>* jbs = &panel_jb;
    const idx j_here = jblk;
    add_task(acc, std::move(topts), [colv, pivs, jbs, j_here, b, n_panels]() {
      for (idx kk = j_here + 1; kk < n_panels; ++kk) {
        MatrixView below = colv.trailing(kk * b, 0);
        lapack::laswp(below, 0, (*jbs)[static_cast<std::size_t>(kk)],
                      (*pivs)[static_cast<std::size_t>(kk)]);
      }
    });
  }

  graph.wait();
  for (idx k = 0; k < n_panels; ++k) {
    if (infos[static_cast<std::size_t>(k)] != 0) {
      result.info = k * b + infos[static_cast<std::size_t>(k)];
      break;
    }
  }
  if (opts.record_trace) {
    result.trace = graph.trace();
    result.edges = graph.edges();
  }
  result.sched = graph.stats();
  return result;
}

BlockedQrResult blocked_geqrf(MatrixView a, const BlockedOptions& opts) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k_total = std::min(m, n);
  const idx b = std::max<idx>(1, std::min(opts.nb, k_total));
  const idx n_panels = (k_total + b - 1) / b;
  const idx m_blocks = (m + b - 1) / b;

  BlockedQrResult result;
  result.tau.assign(static_cast<std::size_t>(k_total), 0.0);

  // Panel T factors kept alive until the graph drains.
  std::vector<std::unique_ptr<Matrix>> ts(static_cast<std::size_t>(n_panels));

  rt::TaskGraph graph({opts.num_threads, opts.record_trace});
  rt::DepTracker tracker;
  TaskId next_id = 0;
  auto add_task = [&](const std::vector<BlockAccess>& acc,
                      rt::TaskOptions topts,
                      std::function<void()> fn) -> TaskId {
    const std::vector<TaskId> deps = tracker.depends(next_id, acc);
    const TaskId id = graph.submit(deps, std::move(topts), std::move(fn));
    assert(id == next_id);
    ++next_id;
    return id;
  };
  auto base_prio = [&](idx k) {
    return static_cast<int>((n_panels - k) * 1000);
  };

  for (idx k = 0; k < n_panels; ++k) {
    const idx row0 = k * b;
    const idx jb = std::min(b, k_total - row0);
    const idx panel_rows = m - row0;
    ts[static_cast<std::size_t>(k)] =
        std::make_unique<Matrix>(Matrix::zeros(jb, jb));
    Matrix* tmat = ts[static_cast<std::size_t>(k)].get();

    {
      std::vector<BlockAccess> acc;
      add_tile_range(acc, k, m_blocks, k, AccessMode::ReadWrite);
      rt::TaskOptions topts;
      topts.kind = TaskKind::Panel;
      topts.iteration = static_cast<int>(k);
      topts.priority = base_prio(k) + 900;
      topts.label = "panel";
      MatrixView panel = a.block(row0, row0, panel_rows, jb);
      std::vector<double>* gtau = &result.tau;
      add_task(acc, std::move(topts), [panel, tmat, gtau, row0, jb]() {
        std::vector<double> tau;
        lapack::geqr3(panel, tau, tmat->view());
        for (idx j = 0; j < jb; ++j) {
          (*gtau)[static_cast<std::size_t>(row0 + j)] =
              tau[static_cast<std::size_t>(j)];
        }
      });
    }

    for (const ColSegment& seg : trailing_segments(row0, jb, b, n, k)) {
      std::vector<BlockAccess> acc;
      add_tile_range(acc, k, m_blocks, k, AccessMode::Read);
      add_tile_range(acc, k, m_blocks, seg.jblk, AccessMode::ReadWrite);
      rt::TaskOptions topts;
      topts.kind = TaskKind::Update;
      topts.iteration = static_cast<int>(k);
      topts.priority = base_prio(k) +
                       static_cast<int>(std::max<idx>(0, 100 - (seg.jblk - k)));
      topts.label = "larfb j" + std::to_string(seg.jblk);
      ConstMatrixView panel = a.block(row0, row0, panel_rows, jb);
      MatrixView c = a.block(row0, seg.col0, panel_rows, seg.cols);
      add_task(acc, std::move(topts), [panel, tmat, c]() {
        lapack::larfb_left(blas::Trans::Trans, panel, tmat->view(), c);
      });
    }
  }

  graph.wait();
  if (opts.record_trace) {
    result.trace = graph.trace();
    result.edges = graph.edges();
  }
  result.sched = graph.stats();
  return result;
}

}  // namespace camult::baseline
