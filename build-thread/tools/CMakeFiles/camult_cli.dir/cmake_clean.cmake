file(REMOVE_RECURSE
  "CMakeFiles/camult_cli.dir/camult_cli.cpp.o"
  "CMakeFiles/camult_cli.dir/camult_cli.cpp.o.d"
  "camult"
  "camult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
