# Empty dependencies file for camult_cli.
# This may be replaced when dependencies are built.
