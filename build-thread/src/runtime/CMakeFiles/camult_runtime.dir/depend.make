# Empty dependencies file for camult_runtime.
# This may be replaced when dependencies are built.
