
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/dep_tracker.cpp" "src/runtime/CMakeFiles/camult_runtime.dir/dep_tracker.cpp.o" "gcc" "src/runtime/CMakeFiles/camult_runtime.dir/dep_tracker.cpp.o.d"
  "/root/repo/src/runtime/task_graph.cpp" "src/runtime/CMakeFiles/camult_runtime.dir/task_graph.cpp.o" "gcc" "src/runtime/CMakeFiles/camult_runtime.dir/task_graph.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/runtime/CMakeFiles/camult_runtime.dir/trace.cpp.o" "gcc" "src/runtime/CMakeFiles/camult_runtime.dir/trace.cpp.o.d"
  "/root/repo/src/runtime/trace_io.cpp" "src/runtime/CMakeFiles/camult_runtime.dir/trace_io.cpp.o" "gcc" "src/runtime/CMakeFiles/camult_runtime.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/matrix/CMakeFiles/camult_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
