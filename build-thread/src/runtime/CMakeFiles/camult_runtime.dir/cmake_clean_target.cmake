file(REMOVE_RECURSE
  "libcamult_runtime.a"
)
