file(REMOVE_RECURSE
  "CMakeFiles/camult_runtime.dir/dep_tracker.cpp.o"
  "CMakeFiles/camult_runtime.dir/dep_tracker.cpp.o.d"
  "CMakeFiles/camult_runtime.dir/task_graph.cpp.o"
  "CMakeFiles/camult_runtime.dir/task_graph.cpp.o.d"
  "CMakeFiles/camult_runtime.dir/trace.cpp.o"
  "CMakeFiles/camult_runtime.dir/trace.cpp.o.d"
  "CMakeFiles/camult_runtime.dir/trace_io.cpp.o"
  "CMakeFiles/camult_runtime.dir/trace_io.cpp.o.d"
  "libcamult_runtime.a"
  "libcamult_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
