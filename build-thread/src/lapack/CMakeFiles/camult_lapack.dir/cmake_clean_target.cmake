file(REMOVE_RECURSE
  "libcamult_lapack.a"
)
