file(REMOVE_RECURSE
  "CMakeFiles/camult_lapack.dir/geqrf.cpp.o"
  "CMakeFiles/camult_lapack.dir/geqrf.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/getf2.cpp.o"
  "CMakeFiles/camult_lapack.dir/getf2.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/getrf.cpp.o"
  "CMakeFiles/camult_lapack.dir/getrf.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/getri.cpp.o"
  "CMakeFiles/camult_lapack.dir/getri.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/householder.cpp.o"
  "CMakeFiles/camult_lapack.dir/householder.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/laswp.cpp.o"
  "CMakeFiles/camult_lapack.dir/laswp.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/orgqr.cpp.o"
  "CMakeFiles/camult_lapack.dir/orgqr.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/potrf.cpp.o"
  "CMakeFiles/camult_lapack.dir/potrf.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/solve.cpp.o"
  "CMakeFiles/camult_lapack.dir/solve.cpp.o.d"
  "CMakeFiles/camult_lapack.dir/verify.cpp.o"
  "CMakeFiles/camult_lapack.dir/verify.cpp.o.d"
  "libcamult_lapack.a"
  "libcamult_lapack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_lapack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
