
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lapack/geqrf.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/geqrf.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/geqrf.cpp.o.d"
  "/root/repo/src/lapack/getf2.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/getf2.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/getf2.cpp.o.d"
  "/root/repo/src/lapack/getrf.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/getrf.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/getrf.cpp.o.d"
  "/root/repo/src/lapack/getri.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/getri.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/getri.cpp.o.d"
  "/root/repo/src/lapack/householder.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/householder.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/householder.cpp.o.d"
  "/root/repo/src/lapack/laswp.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/laswp.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/laswp.cpp.o.d"
  "/root/repo/src/lapack/orgqr.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/orgqr.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/orgqr.cpp.o.d"
  "/root/repo/src/lapack/potrf.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/potrf.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/potrf.cpp.o.d"
  "/root/repo/src/lapack/solve.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/solve.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/solve.cpp.o.d"
  "/root/repo/src/lapack/verify.cpp" "src/lapack/CMakeFiles/camult_lapack.dir/verify.cpp.o" "gcc" "src/lapack/CMakeFiles/camult_lapack.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/blas/CMakeFiles/camult_blas.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/matrix/CMakeFiles/camult_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
