# Empty dependencies file for camult_lapack.
# This may be replaced when dependencies are built.
