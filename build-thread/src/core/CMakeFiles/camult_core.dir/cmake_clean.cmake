file(REMOVE_RECURSE
  "CMakeFiles/camult_core.dir/calu.cpp.o"
  "CMakeFiles/camult_core.dir/calu.cpp.o.d"
  "CMakeFiles/camult_core.dir/caqr.cpp.o"
  "CMakeFiles/camult_core.dir/caqr.cpp.o.d"
  "CMakeFiles/camult_core.dir/drivers.cpp.o"
  "CMakeFiles/camult_core.dir/drivers.cpp.o.d"
  "CMakeFiles/camult_core.dir/partition.cpp.o"
  "CMakeFiles/camult_core.dir/partition.cpp.o.d"
  "CMakeFiles/camult_core.dir/tournament.cpp.o"
  "CMakeFiles/camult_core.dir/tournament.cpp.o.d"
  "CMakeFiles/camult_core.dir/tpqrt.cpp.o"
  "CMakeFiles/camult_core.dir/tpqrt.cpp.o.d"
  "CMakeFiles/camult_core.dir/tslu.cpp.o"
  "CMakeFiles/camult_core.dir/tslu.cpp.o.d"
  "CMakeFiles/camult_core.dir/tsqr.cpp.o"
  "CMakeFiles/camult_core.dir/tsqr.cpp.o.d"
  "libcamult_core.a"
  "libcamult_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
