# Empty dependencies file for camult_core.
# This may be replaced when dependencies are built.
