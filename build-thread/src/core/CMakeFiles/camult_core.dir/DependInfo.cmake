
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calu.cpp" "src/core/CMakeFiles/camult_core.dir/calu.cpp.o" "gcc" "src/core/CMakeFiles/camult_core.dir/calu.cpp.o.d"
  "/root/repo/src/core/caqr.cpp" "src/core/CMakeFiles/camult_core.dir/caqr.cpp.o" "gcc" "src/core/CMakeFiles/camult_core.dir/caqr.cpp.o.d"
  "/root/repo/src/core/drivers.cpp" "src/core/CMakeFiles/camult_core.dir/drivers.cpp.o" "gcc" "src/core/CMakeFiles/camult_core.dir/drivers.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/camult_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/camult_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/tournament.cpp" "src/core/CMakeFiles/camult_core.dir/tournament.cpp.o" "gcc" "src/core/CMakeFiles/camult_core.dir/tournament.cpp.o.d"
  "/root/repo/src/core/tpqrt.cpp" "src/core/CMakeFiles/camult_core.dir/tpqrt.cpp.o" "gcc" "src/core/CMakeFiles/camult_core.dir/tpqrt.cpp.o.d"
  "/root/repo/src/core/tslu.cpp" "src/core/CMakeFiles/camult_core.dir/tslu.cpp.o" "gcc" "src/core/CMakeFiles/camult_core.dir/tslu.cpp.o.d"
  "/root/repo/src/core/tsqr.cpp" "src/core/CMakeFiles/camult_core.dir/tsqr.cpp.o" "gcc" "src/core/CMakeFiles/camult_core.dir/tsqr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/lapack/CMakeFiles/camult_lapack.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/blas/CMakeFiles/camult_blas.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/matrix/CMakeFiles/camult_matrix.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/runtime/CMakeFiles/camult_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
