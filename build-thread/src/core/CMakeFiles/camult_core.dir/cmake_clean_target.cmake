file(REMOVE_RECURSE
  "libcamult_core.a"
)
