# Empty compiler generated dependencies file for camult_baseline.
# This may be replaced when dependencies are built.
