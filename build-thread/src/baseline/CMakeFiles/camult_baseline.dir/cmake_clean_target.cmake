file(REMOVE_RECURSE
  "libcamult_baseline.a"
)
