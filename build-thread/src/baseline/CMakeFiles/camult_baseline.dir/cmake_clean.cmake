file(REMOVE_RECURSE
  "CMakeFiles/camult_baseline.dir/blocked.cpp.o"
  "CMakeFiles/camult_baseline.dir/blocked.cpp.o.d"
  "libcamult_baseline.a"
  "libcamult_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
