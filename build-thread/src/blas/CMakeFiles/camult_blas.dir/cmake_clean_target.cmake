file(REMOVE_RECURSE
  "libcamult_blas.a"
)
