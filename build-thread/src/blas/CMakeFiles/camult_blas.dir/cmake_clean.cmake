file(REMOVE_RECURSE
  "CMakeFiles/camult_blas.dir/gemm.cpp.o"
  "CMakeFiles/camult_blas.dir/gemm.cpp.o.d"
  "CMakeFiles/camult_blas.dir/level1.cpp.o"
  "CMakeFiles/camult_blas.dir/level1.cpp.o.d"
  "CMakeFiles/camult_blas.dir/level2.cpp.o"
  "CMakeFiles/camult_blas.dir/level2.cpp.o.d"
  "CMakeFiles/camult_blas.dir/syrk.cpp.o"
  "CMakeFiles/camult_blas.dir/syrk.cpp.o.d"
  "CMakeFiles/camult_blas.dir/trmm.cpp.o"
  "CMakeFiles/camult_blas.dir/trmm.cpp.o.d"
  "CMakeFiles/camult_blas.dir/trsm.cpp.o"
  "CMakeFiles/camult_blas.dir/trsm.cpp.o.d"
  "libcamult_blas.a"
  "libcamult_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
