# Empty compiler generated dependencies file for camult_blas.
# This may be replaced when dependencies are built.
