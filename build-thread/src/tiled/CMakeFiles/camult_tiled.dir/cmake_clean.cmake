file(REMOVE_RECURSE
  "CMakeFiles/camult_tiled.dir/tile_cholesky.cpp.o"
  "CMakeFiles/camult_tiled.dir/tile_cholesky.cpp.o.d"
  "CMakeFiles/camult_tiled.dir/tile_kernels.cpp.o"
  "CMakeFiles/camult_tiled.dir/tile_kernels.cpp.o.d"
  "CMakeFiles/camult_tiled.dir/tile_lu.cpp.o"
  "CMakeFiles/camult_tiled.dir/tile_lu.cpp.o.d"
  "CMakeFiles/camult_tiled.dir/tile_qr.cpp.o"
  "CMakeFiles/camult_tiled.dir/tile_qr.cpp.o.d"
  "libcamult_tiled.a"
  "libcamult_tiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_tiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
