
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tiled/tile_cholesky.cpp" "src/tiled/CMakeFiles/camult_tiled.dir/tile_cholesky.cpp.o" "gcc" "src/tiled/CMakeFiles/camult_tiled.dir/tile_cholesky.cpp.o.d"
  "/root/repo/src/tiled/tile_kernels.cpp" "src/tiled/CMakeFiles/camult_tiled.dir/tile_kernels.cpp.o" "gcc" "src/tiled/CMakeFiles/camult_tiled.dir/tile_kernels.cpp.o.d"
  "/root/repo/src/tiled/tile_lu.cpp" "src/tiled/CMakeFiles/camult_tiled.dir/tile_lu.cpp.o" "gcc" "src/tiled/CMakeFiles/camult_tiled.dir/tile_lu.cpp.o.d"
  "/root/repo/src/tiled/tile_qr.cpp" "src/tiled/CMakeFiles/camult_tiled.dir/tile_qr.cpp.o" "gcc" "src/tiled/CMakeFiles/camult_tiled.dir/tile_qr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/core/CMakeFiles/camult_core.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/lapack/CMakeFiles/camult_lapack.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/runtime/CMakeFiles/camult_runtime.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/blas/CMakeFiles/camult_blas.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/matrix/CMakeFiles/camult_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
