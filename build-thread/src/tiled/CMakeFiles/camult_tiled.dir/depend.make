# Empty dependencies file for camult_tiled.
# This may be replaced when dependencies are built.
