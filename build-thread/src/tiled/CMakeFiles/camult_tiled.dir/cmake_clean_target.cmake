file(REMOVE_RECURSE
  "libcamult_tiled.a"
)
