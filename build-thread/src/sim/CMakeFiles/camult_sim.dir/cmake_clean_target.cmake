file(REMOVE_RECURSE
  "libcamult_sim.a"
)
