# Empty compiler generated dependencies file for camult_sim.
# This may be replaced when dependencies are built.
