file(REMOVE_RECURSE
  "CMakeFiles/camult_sim.dir/sim_scheduler.cpp.o"
  "CMakeFiles/camult_sim.dir/sim_scheduler.cpp.o.d"
  "libcamult_sim.a"
  "libcamult_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
