file(REMOVE_RECURSE
  "libcamult_benchsupport.a"
)
