file(REMOVE_RECURSE
  "CMakeFiles/camult_benchsupport.dir/runner.cpp.o"
  "CMakeFiles/camult_benchsupport.dir/runner.cpp.o.d"
  "CMakeFiles/camult_benchsupport.dir/table.cpp.o"
  "CMakeFiles/camult_benchsupport.dir/table.cpp.o.d"
  "libcamult_benchsupport.a"
  "libcamult_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
