# Empty compiler generated dependencies file for camult_benchsupport.
# This may be replaced when dependencies are built.
