
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/io.cpp" "src/matrix/CMakeFiles/camult_matrix.dir/io.cpp.o" "gcc" "src/matrix/CMakeFiles/camult_matrix.dir/io.cpp.o.d"
  "/root/repo/src/matrix/matrix.cpp" "src/matrix/CMakeFiles/camult_matrix.dir/matrix.cpp.o" "gcc" "src/matrix/CMakeFiles/camult_matrix.dir/matrix.cpp.o.d"
  "/root/repo/src/matrix/norms.cpp" "src/matrix/CMakeFiles/camult_matrix.dir/norms.cpp.o" "gcc" "src/matrix/CMakeFiles/camult_matrix.dir/norms.cpp.o.d"
  "/root/repo/src/matrix/permutation.cpp" "src/matrix/CMakeFiles/camult_matrix.dir/permutation.cpp.o" "gcc" "src/matrix/CMakeFiles/camult_matrix.dir/permutation.cpp.o.d"
  "/root/repo/src/matrix/random.cpp" "src/matrix/CMakeFiles/camult_matrix.dir/random.cpp.o" "gcc" "src/matrix/CMakeFiles/camult_matrix.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
