file(REMOVE_RECURSE
  "CMakeFiles/camult_matrix.dir/io.cpp.o"
  "CMakeFiles/camult_matrix.dir/io.cpp.o.d"
  "CMakeFiles/camult_matrix.dir/matrix.cpp.o"
  "CMakeFiles/camult_matrix.dir/matrix.cpp.o.d"
  "CMakeFiles/camult_matrix.dir/norms.cpp.o"
  "CMakeFiles/camult_matrix.dir/norms.cpp.o.d"
  "CMakeFiles/camult_matrix.dir/permutation.cpp.o"
  "CMakeFiles/camult_matrix.dir/permutation.cpp.o.d"
  "CMakeFiles/camult_matrix.dir/random.cpp.o"
  "CMakeFiles/camult_matrix.dir/random.cpp.o.d"
  "libcamult_matrix.a"
  "libcamult_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camult_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
