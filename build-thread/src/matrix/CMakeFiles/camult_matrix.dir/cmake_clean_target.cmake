file(REMOVE_RECURSE
  "libcamult_matrix.a"
)
