# Empty dependencies file for camult_matrix.
# This may be replaced when dependencies are built.
