file(REMOVE_RECURSE
  "CMakeFiles/test_lapack_qr.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_lapack_qr.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_lapack_qr.dir/test_lapack_qr.cpp.o"
  "CMakeFiles/test_lapack_qr.dir/test_lapack_qr.cpp.o.d"
  "test_lapack_qr"
  "test_lapack_qr.pdb"
  "test_lapack_qr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lapack_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
