# Empty compiler generated dependencies file for test_lapack_qr.
# This may be replaced when dependencies are built.
