
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_utils.cpp" "tests/CMakeFiles/test_blas_trsm_trmm.dir/common/test_utils.cpp.o" "gcc" "tests/CMakeFiles/test_blas_trsm_trmm.dir/common/test_utils.cpp.o.d"
  "/root/repo/tests/test_blas_trsm_trmm.cpp" "tests/CMakeFiles/test_blas_trsm_trmm.dir/test_blas_trsm_trmm.cpp.o" "gcc" "tests/CMakeFiles/test_blas_trsm_trmm.dir/test_blas_trsm_trmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/blas/CMakeFiles/camult_blas.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/matrix/CMakeFiles/camult_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
