file(REMOVE_RECURSE
  "CMakeFiles/test_blas_trsm_trmm.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_blas_trsm_trmm.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_blas_trsm_trmm.dir/test_blas_trsm_trmm.cpp.o"
  "CMakeFiles/test_blas_trsm_trmm.dir/test_blas_trsm_trmm.cpp.o.d"
  "test_blas_trsm_trmm"
  "test_blas_trsm_trmm.pdb"
  "test_blas_trsm_trmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_trsm_trmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
