# Empty dependencies file for test_blas_trsm_trmm.
# This may be replaced when dependencies are built.
