file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_stress.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_scheduler_stress.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_scheduler_stress.dir/test_scheduler_stress.cpp.o"
  "CMakeFiles/test_scheduler_stress.dir/test_scheduler_stress.cpp.o.d"
  "test_scheduler_stress"
  "test_scheduler_stress.pdb"
  "test_scheduler_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
