# Empty dependencies file for test_scheduler_stress.
# This may be replaced when dependencies are built.
