# Empty compiler generated dependencies file for test_blas_level2.
# This may be replaced when dependencies are built.
