file(REMOVE_RECURSE
  "CMakeFiles/test_blas_level2.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_blas_level2.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_blas_level2.dir/test_blas_level2.cpp.o"
  "CMakeFiles/test_blas_level2.dir/test_blas_level2.cpp.o.d"
  "test_blas_level2"
  "test_blas_level2.pdb"
  "test_blas_level2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_level2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
