# Empty compiler generated dependencies file for test_core_tsqr.
# This may be replaced when dependencies are built.
