file(REMOVE_RECURSE
  "CMakeFiles/test_core_tsqr.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_core_tsqr.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_core_tsqr.dir/test_core_tsqr.cpp.o"
  "CMakeFiles/test_core_tsqr.dir/test_core_tsqr.cpp.o.d"
  "test_core_tsqr"
  "test_core_tsqr.pdb"
  "test_core_tsqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_tsqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
