file(REMOVE_RECURSE
  "CMakeFiles/test_core_tslu.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_core_tslu.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_core_tslu.dir/test_core_tslu.cpp.o"
  "CMakeFiles/test_core_tslu.dir/test_core_tslu.cpp.o.d"
  "test_core_tslu"
  "test_core_tslu.pdb"
  "test_core_tslu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_tslu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
