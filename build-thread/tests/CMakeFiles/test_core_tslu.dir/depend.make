# Empty dependencies file for test_core_tslu.
# This may be replaced when dependencies are built.
