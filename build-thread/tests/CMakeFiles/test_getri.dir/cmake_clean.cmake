file(REMOVE_RECURSE
  "CMakeFiles/test_getri.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_getri.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_getri.dir/test_getri.cpp.o"
  "CMakeFiles/test_getri.dir/test_getri.cpp.o.d"
  "test_getri"
  "test_getri.pdb"
  "test_getri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_getri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
