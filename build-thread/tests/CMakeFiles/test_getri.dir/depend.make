# Empty dependencies file for test_getri.
# This may be replaced when dependencies are built.
