file(REMOVE_RECURSE
  "CMakeFiles/test_core_caqr.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_core_caqr.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_core_caqr.dir/test_core_caqr.cpp.o"
  "CMakeFiles/test_core_caqr.dir/test_core_caqr.cpp.o.d"
  "test_core_caqr"
  "test_core_caqr.pdb"
  "test_core_caqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_caqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
