# Empty dependencies file for test_core_caqr.
# This may be replaced when dependencies are built.
