# Empty dependencies file for test_lapack_lu.
# This may be replaced when dependencies are built.
