file(REMOVE_RECURSE
  "CMakeFiles/test_lapack_lu.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_lapack_lu.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_lapack_lu.dir/test_lapack_lu.cpp.o"
  "CMakeFiles/test_lapack_lu.dir/test_lapack_lu.cpp.o.d"
  "test_lapack_lu"
  "test_lapack_lu.pdb"
  "test_lapack_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lapack_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
