# Empty dependencies file for test_blas_level1.
# This may be replaced when dependencies are built.
