# Empty dependencies file for test_solve.
# This may be replaced when dependencies are built.
