file(REMOVE_RECURSE
  "CMakeFiles/test_solve.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_solve.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_solve.dir/test_solve.cpp.o"
  "CMakeFiles/test_solve.dir/test_solve.cpp.o.d"
  "test_solve"
  "test_solve.pdb"
  "test_solve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
