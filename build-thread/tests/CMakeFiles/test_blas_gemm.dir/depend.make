# Empty dependencies file for test_blas_gemm.
# This may be replaced when dependencies are built.
