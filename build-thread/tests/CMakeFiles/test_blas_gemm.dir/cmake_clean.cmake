file(REMOVE_RECURSE
  "CMakeFiles/test_blas_gemm.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_blas_gemm.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_blas_gemm.dir/test_blas_gemm.cpp.o"
  "CMakeFiles/test_blas_gemm.dir/test_blas_gemm.cpp.o.d"
  "test_blas_gemm"
  "test_blas_gemm.pdb"
  "test_blas_gemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
