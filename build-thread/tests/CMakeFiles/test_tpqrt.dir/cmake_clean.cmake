file(REMOVE_RECURSE
  "CMakeFiles/test_tpqrt.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_tpqrt.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_tpqrt.dir/test_tpqrt.cpp.o"
  "CMakeFiles/test_tpqrt.dir/test_tpqrt.cpp.o.d"
  "test_tpqrt"
  "test_tpqrt.pdb"
  "test_tpqrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpqrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
