# Empty compiler generated dependencies file for test_tpqrt.
# This may be replaced when dependencies are built.
