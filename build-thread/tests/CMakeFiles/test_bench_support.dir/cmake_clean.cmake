file(REMOVE_RECURSE
  "CMakeFiles/test_bench_support.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_bench_support.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_bench_support.dir/test_bench_support.cpp.o"
  "CMakeFiles/test_bench_support.dir/test_bench_support.cpp.o.d"
  "test_bench_support"
  "test_bench_support.pdb"
  "test_bench_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
