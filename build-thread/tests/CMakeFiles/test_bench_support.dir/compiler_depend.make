# Empty compiler generated dependencies file for test_bench_support.
# This may be replaced when dependencies are built.
