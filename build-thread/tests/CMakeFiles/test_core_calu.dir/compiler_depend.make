# Empty compiler generated dependencies file for test_core_calu.
# This may be replaced when dependencies are built.
