file(REMOVE_RECURSE
  "CMakeFiles/test_core_calu.dir/common/test_utils.cpp.o"
  "CMakeFiles/test_core_calu.dir/common/test_utils.cpp.o.d"
  "CMakeFiles/test_core_calu.dir/test_core_calu.cpp.o"
  "CMakeFiles/test_core_calu.dir/test_core_calu.cpp.o.d"
  "test_core_calu"
  "test_core_calu.pdb"
  "test_core_calu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_calu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
