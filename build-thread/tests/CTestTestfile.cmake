# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-thread/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-thread/tests/test_matrix[1]_include.cmake")
include("/root/repo/build-thread/tests/test_blas_level1[1]_include.cmake")
include("/root/repo/build-thread/tests/test_blas_level2[1]_include.cmake")
include("/root/repo/build-thread/tests/test_blas_gemm[1]_include.cmake")
include("/root/repo/build-thread/tests/test_blas_trsm_trmm[1]_include.cmake")
include("/root/repo/build-thread/tests/test_lapack_lu[1]_include.cmake")
include("/root/repo/build-thread/tests/test_lapack_qr[1]_include.cmake")
include("/root/repo/build-thread/tests/test_runtime[1]_include.cmake")
include("/root/repo/build-thread/tests/test_scheduler_stress[1]_include.cmake")
include("/root/repo/build-thread/tests/test_sim[1]_include.cmake")
include("/root/repo/build-thread/tests/test_core_tslu[1]_include.cmake")
include("/root/repo/build-thread/tests/test_core_tsqr[1]_include.cmake")
include("/root/repo/build-thread/tests/test_core_calu[1]_include.cmake")
include("/root/repo/build-thread/tests/test_core_caqr[1]_include.cmake")
include("/root/repo/build-thread/tests/test_tiled[1]_include.cmake")
include("/root/repo/build-thread/tests/test_baseline[1]_include.cmake")
include("/root/repo/build-thread/tests/test_solve[1]_include.cmake")
include("/root/repo/build-thread/tests/test_tpqrt[1]_include.cmake")
include("/root/repo/build-thread/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build-thread/tests/test_cholesky[1]_include.cmake")
include("/root/repo/build-thread/tests/test_getri[1]_include.cmake")
include("/root/repo/build-thread/tests/test_bench_support[1]_include.cmake")
include("/root/repo/build-thread/tests/test_matrix_io[1]_include.cmake")
