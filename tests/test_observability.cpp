// Observability surface: scheduler counters (SchedulerStats), the chrome
// trace-event exporter, and the machine-readable bench report writer.
//
// The counter tests pin the exact values a deterministic single-worker (or
// inline) run must produce; the work-stealing test uses a rendezvous that
// forces a second worker to steal before any child can finish.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/json.hpp"
#include "bench_support/json_report.hpp"
#include "bench_support/runner.hpp"
#include "runtime/chrome_trace.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/trace.hpp"

namespace camult {
namespace {

using bench::JsonValue;

// --- SchedulerStats --------------------------------------------------------

TEST(SchedulerStats, SingleWorkerCentralExactCounts) {
  constexpr int kTasks = 37;
  rt::TaskGraph g({1, true, rt::TaskGraph::Policy::CentralPriority});
  std::atomic<int> ran{0};
  rt::TaskId prev = rt::kNoTask;
  for (int i = 0; i < kTasks; ++i) {
    std::vector<rt::TaskId> deps;
    if (prev != rt::kNoTask) deps.push_back(prev);
    prev = g.submit(deps, {}, [&] { ++ran; });
  }
  g.wait();
  const rt::SchedulerStats s = g.stats();
  ASSERT_EQ(s.workers.size(), 1u);
  const rt::WorkerStats t = s.totals();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(t.tasks_executed, kTasks);
  // Every executed task was popped locally; a lone worker has no victims.
  EXPECT_EQ(t.local_pops, kTasks);
  EXPECT_EQ(t.steals, 0);
  EXPECT_EQ(t.stolen_tasks, 0);
  EXPECT_GT(t.inbox_drains, 0);
  // record_trace is on, so busy time is accumulated from the trace stamps.
  EXPECT_GT(t.busy_ns, 0);
}

TEST(SchedulerStats, SingleWorkerStealingExactCounts) {
  constexpr int kTasks = 37;
  rt::TaskGraph g({1, true, rt::TaskGraph::Policy::WorkStealing});
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    g.submit({}, {}, [&] { ++ran; });
  }
  g.wait();
  const rt::SchedulerStats s = g.stats();
  ASSERT_EQ(s.workers.size(), 1u);
  const rt::WorkerStats t = s.totals();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(t.tasks_executed, kTasks);
  EXPECT_EQ(t.local_pops, kTasks);
  EXPECT_EQ(t.steals, 0);
  EXPECT_EQ(t.stolen_tasks, 0);
}

TEST(SchedulerStats, InlineModeAccountsToWorkerZero) {
  rt::TaskGraph g({0, true});
  for (int i = 0; i < 5; ++i) g.submit({}, {}, [] {});
  g.wait();
  const rt::SchedulerStats s = g.stats();
  ASSERT_EQ(s.workers.size(), 1u);
  EXPECT_EQ(s.workers[0].tasks_executed, 5);
  EXPECT_EQ(s.workers[0].steals, 0);
  EXPECT_GT(s.workers[0].busy_ns, 0);
  EXPECT_EQ(s.workers[0].idle_ns, 0);  // inline mode never sleeps
}

TEST(SchedulerStats, TotalsSumAcrossWorkersAndFoldSubmitWakeups) {
  rt::SchedulerStats s;
  s.workers.resize(2);
  s.workers[0].tasks_executed = 3;
  s.workers[0].wakeups_sent = 1;
  s.workers[1].tasks_executed = 4;
  s.workers[1].idle_spins = 7;
  s.submit_wakeups = 5;
  const rt::WorkerStats t = s.totals();
  EXPECT_EQ(t.tasks_executed, 7);
  EXPECT_EQ(t.idle_spins, 7);
  EXPECT_EQ(t.wakeups_sent, 6);  // worker relays + submission-side wakeups
}

TEST(SchedulerStats, WorkStealingEventuallySteals) {
  // Deterministic steal-forcing harness. The root task spins until every
  // child is submitted, so all children become ready through the root's
  // COMPLETION and land on the finishing worker's own deque (never the
  // inbox) — the only way a second worker can run a child is to steal it.
  // Each child then parks until children have been entered by two distinct
  // threads, which forces that steal to happen instead of hoping the
  // timing produces one. The deadline and the outer retry are hang guards
  // for pathologically loaded machines, not the mechanism.
  for (int attempt = 0; attempt < 50; ++attempt) {
    rt::TaskGraph g({4, false, rt::TaskGraph::Policy::WorkStealing});
    std::atomic<bool> all_submitted{false};
    const rt::TaskId root = g.submit({}, {}, [&all_submitted] {
      while (!all_submitted.load()) std::this_thread::yield();
    });
    std::mutex mu;
    std::set<std::thread::id> tids;
    std::atomic<bool> met{false};
    std::atomic<bool> give_up{false};
    for (int i = 0; i < 64; ++i) {
      g.submit({root}, {}, [&] {
        {
          std::lock_guard<std::mutex> lock(mu);
          tids.insert(std::this_thread::get_id());
          if (tids.size() >= 2) met.store(true);
        }
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        while (!met.load() && !give_up.load()) {
          if (std::chrono::steady_clock::now() > deadline) give_up.store(true);
          std::this_thread::yield();
        }
      });
    }
    all_submitted.store(true);
    g.wait();
    if (met.load()) {
      EXPECT_GT(g.stats().totals().steals, 0);
      return;
    }
  }
  FAIL() << "two workers never entered child tasks within the deadline";
}

TEST(SchedulerStats, FoldedIntoTraceStats) {
  rt::TaskGraph g({1, true});
  for (int i = 0; i < 3; ++i) g.submit({}, {}, [] {});
  g.wait();
  const rt::TraceStats st = rt::compute_stats(g.trace(), 1, g.stats());
  EXPECT_EQ(st.sched.totals().tasks_executed, 3);
}

// --- chrome trace export ---------------------------------------------------

std::vector<rt::TaskRecord> tiny_trace() {
  std::vector<rt::TaskRecord> recs(3);
  recs[0].id = 0;
  recs[0].kind = rt::TaskKind::Panel;
  recs[0].worker = 0;
  recs[0].start_ns = 0;
  recs[0].end_ns = 1500;
  recs[0].label = "needs \"escaping\"\nand a \\ backslash";
  recs[1].id = 1;
  recs[1].worker = 1;
  recs[1].start_ns = 1000;
  recs[1].end_ns = 2000;
  recs[2].id = 2;
  recs[2].worker = -1;  // simulated / unknown worker maps to tid 0
  recs[2].start_ns = 2000;
  recs[2].end_ns = 2000;  // zero duration must survive
  return recs;
}

TEST(ChromeTrace, OutputIsValidJsonArray) {
  const auto recs = tiny_trace();
  const std::vector<rt::TaskGraph::Edge> edges = {{0, 1}, {1, 2}};
  std::ostringstream os;
  rt::write_chrome_trace(os, recs, edges);
  const JsonValue root = JsonValue::parse(os.str());
  ASSERT_TRUE(root.is_array());
  int x_events = 0, flow_starts = 0, flow_ends = 0, meta = 0, counters = 0;
  for (const JsonValue& ev : root.array) {
    ASSERT_TRUE(ev.is_object());
    const JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    if (ph->string == "X") ++x_events;
    if (ph->string == "s") ++flow_starts;
    if (ph->string == "f") ++flow_ends;
    if (ph->string == "M") ++meta;
    if (ph->string == "C") ++counters;
  }
  EXPECT_EQ(x_events, 3);
  EXPECT_EQ(flow_starts, 2);
  EXPECT_EQ(flow_ends, 2);
  EXPECT_GT(meta, 0);
  EXPECT_GT(counters, 0);
}

TEST(ChromeTrace, EscapesLabelsLosslessly) {
  const auto recs = tiny_trace();
  std::ostringstream os;
  rt::write_chrome_trace(os, recs, {});
  const JsonValue root = JsonValue::parse(os.str());
  bool found = false;
  for (const JsonValue& ev : root.array) {
    const JsonValue* ph = ev.find("ph");
    const JsonValue* name = ev.find("name");
    if (ph != nullptr && ph->string == "X" && name != nullptr &&
        name->string.find("escaping") != std::string::npos) {
      // The parsed name must contain the raw quote/newline/backslash again.
      EXPECT_NE(name->string.find("needs \"escaping\"\nand a \\ backslash"),
                std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTrace, LiveSchedulerRunExports) {
  rt::TaskGraph g({2, true});
  rt::TaskId a = g.submit({}, {.priority = 0, .kind = rt::TaskKind::Panel,
                               .iteration = 0, .label = "root"},
                          [] {});
  g.submit({a}, {.priority = 0, .kind = rt::TaskKind::Update, .iteration = 0,
                 .label = "child"},
           [] {});
  g.wait();
  std::ostringstream os;
  rt::write_chrome_trace(os, g.trace(), g.edges());
  const JsonValue root = JsonValue::parse(os.str());
  ASSERT_TRUE(root.is_array());
  EXPECT_GE(root.array.size(), 2u);
}

TEST(ChromeTrace, FileWriterRejectsBadPath) {
  EXPECT_THROW(
      rt::write_chrome_trace_file("/nonexistent-dir/x/y.json", {}, {}),
      std::runtime_error);
}

// --- JSON bench reports ----------------------------------------------------

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) old_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(JsonReport, PathEmptyWithoutEnv) {
  ::unsetenv("CAMULT_BENCH_JSON");
  EXPECT_TRUE(bench::json_report_path("foo").empty());
}

TEST(JsonReport, WritesSchemaValidFile) {
  const std::string dir = testing::TempDir();
  ScopedEnv env("CAMULT_BENCH_JSON", dir);
  bench::JsonReport rep("obs_test", 8, "sim");
  JsonValue& row = rep.new_row();
  row.set("competitor", JsonValue::make_string("CALU Tr=4"));
  row.set("m", JsonValue::make_number(1000));
  row.set("seconds", JsonValue::make_number(0.25));
  ASSERT_TRUE(rep.write());

  std::ifstream in(dir + "/BENCH_obs_test.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue root = JsonValue::parse(buf.str());
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.find("bench"), nullptr);
  EXPECT_EQ(root.find("bench")->string, "obs_test");
  EXPECT_EQ(root.find("mode")->string, "sim");
  EXPECT_EQ(root.find("cores")->number, 8.0);
  const JsonValue* envv = root.find("env");
  ASSERT_NE(envv, nullptr);
  ASSERT_TRUE(envv->is_object());
  EXPECT_NE(envv->find("git"), nullptr);
  EXPECT_NE(envv->find("compiler"), nullptr);
  EXPECT_NE(envv->find("flags"), nullptr);
  const JsonValue* rows = root.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->array.size(), 1u);
  EXPECT_EQ(rows->array[0].find("competitor")->string, "CALU Tr=4");
  EXPECT_EQ(rows->array[0].find("m")->number, 1000.0);
}

TEST(JsonReport, NoEnvMeansNoWrite) {
  ::unsetenv("CAMULT_BENCH_JSON");
  bench::JsonReport rep("obs_unwritten", 1, "sim");
  rep.new_row().set("m", JsonValue::make_number(1));
  EXPECT_FALSE(rep.write());
}

TEST(JsonReport, FillMeasurementSetsSchedulerFields) {
  bench::Measurement meas;
  meas.seconds = 2.0;
  meas.gflops = 3.5;
  meas.idle_fraction = 0.25;
  meas.sched.workers.resize(1);
  meas.sched.workers[0].tasks_executed = 11;
  meas.sched.workers[0].steals = 4;
  JsonValue row = JsonValue::make_object();
  bench::JsonReport::fill_measurement(row, meas);
  EXPECT_EQ(row.find("seconds")->number, 2.0);
  EXPECT_EQ(row.find("gflops")->number, 3.5);
  EXPECT_EQ(row.find("idle_fraction")->number, 0.25);
  EXPECT_EQ(row.find("tasks")->number, 11.0);
  EXPECT_EQ(row.find("steals")->number, 4.0);
}

}  // namespace
}  // namespace camult
