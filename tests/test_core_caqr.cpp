// Multithreaded CAQR tests: residual/orthogonality across shapes, trees and
// thread counts, R agreement with geqrf, implicit-Q application,
// determinism, trace sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "core/caqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::core {
namespace {

using camult::test::kResidualThreshold;

struct CaqrParam {
  idx m, n, b, tr;
  int threads;
  ReductionTree tree;
};

class CaqrSweep : public ::testing::TestWithParam<CaqrParam> {};

TEST_P(CaqrSweep, ResidualAndOrthogonality) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.n, 201);
  Matrix fact = a;
  CaqrOptions opts;
  opts.b = p.b;
  opts.tr = p.tr;
  opts.tree = p.tree;
  opts.num_threads = p.threads;
  CaqrResult res = caqr_factor(fact.view(), opts);

  EXPECT_LT(caqr_residual(a, fact, res), kResidualThreshold)
      << "m=" << p.m << " n=" << p.n << " b=" << p.b << " tr=" << p.tr;
  Matrix q = caqr_explicit_q(fact.view(), res);
  EXPECT_LT(lapack::orthogonality_residual(q), kResidualThreshold);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CaqrSweep,
    ::testing::Values(
        CaqrParam{64, 64, 16, 2, 0, ReductionTree::Flat},
        CaqrParam{64, 64, 16, 2, 2, ReductionTree::Flat},
        CaqrParam{100, 100, 25, 4, 4, ReductionTree::Flat},
        CaqrParam{100, 100, 25, 4, 4, ReductionTree::Binary},
        CaqrParam{130, 130, 32, 4, 2, ReductionTree::Binary},  // ragged
        CaqrParam{400, 40, 20, 4, 4, ReductionTree::Flat},
        CaqrParam{400, 40, 20, 8, 2, ReductionTree::Binary},
        CaqrParam{1000, 30, 10, 8, 4, ReductionTree::Binary},
        CaqrParam{513, 64, 16, 4, 2, ReductionTree::Flat},
        // Wide: only min(m, n) panel columns are factored.
        CaqrParam{60, 200, 20, 2, 2, ReductionTree::Flat},
        CaqrParam{50, 128, 16, 4, 4, ReductionTree::Binary},
        // Single panel (pure multithreaded TSQR).
        CaqrParam{256, 32, 32, 4, 4, ReductionTree::Binary},
        CaqrParam{256, 32, 64, 4, 4, ReductionTree::Flat},
        CaqrParam{20, 20, 1, 2, 2, ReductionTree::Flat},
        CaqrParam{600, 50, 25, 4, 0, ReductionTree::Flat}));

TEST(Caqr, RMatchesGeqrfUpToSigns) {
  Matrix a = random_matrix(120, 60, 203);
  Matrix f1 = a, f2 = a;
  CaqrOptions o;
  o.b = 20;
  o.tr = 4;
  o.num_threads = 2;
  CaqrResult res = caqr_factor(f1.view(), o);
  Matrix r1 = caqr_extract_r(f1.view(), res);

  std::vector<double> tau;
  lapack::geqrf(f2.view(), tau);
  Matrix r2 = lapack::extract_upper(f2, 60);
  for (idx i = 0; i < 60; ++i) {
    const double s = (r1(i, i) >= 0) == (r2(i, i) >= 0) ? 1.0 : -1.0;
    for (idx j = i; j < 60; ++j) {
      EXPECT_NEAR(r1(i, j), s * r2(i, j),
                  1e-9 * std::max(1.0, std::abs(r2(i, j))))
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Caqr, DeterministicAcrossThreadCounts) {
  Matrix a = random_matrix(200, 80, 207);
  Matrix f0 = a, f2 = a, f4 = a;
  CaqrOptions o;
  o.b = 20;
  o.tr = 4;
  o.num_threads = 0;
  caqr_factor(f0.view(), o);
  o.num_threads = 2;
  caqr_factor(f2.view(), o);
  o.num_threads = 4;
  caqr_factor(f4.view(), o);
  EXPECT_EQ(test::max_diff(f0, f2), 0.0);
  EXPECT_EQ(test::max_diff(f0, f4), 0.0);
}

TEST(Caqr, ApplyQRoundTrip) {
  Matrix a = random_matrix(150, 60, 209);
  Matrix fact = a;
  CaqrOptions o;
  o.b = 15;
  o.tr = 2;
  o.num_threads = 2;
  CaqrResult res = caqr_factor(fact.view(), o);

  Matrix c = random_matrix(150, 7, 211);
  Matrix c0 = c;
  caqr_apply_q(blas::Trans::Trans, fact.view(), res, c.view());
  caqr_apply_q(blas::Trans::NoTrans, fact.view(), res, c.view());
  EXPECT_TRUE(test::matrices_near(c, c0, 1e-10));
}

TEST(Caqr, QtAGivesR) {
  Matrix a = random_matrix(90, 45, 213);
  Matrix fact = a;
  CaqrOptions o;
  o.b = 15;
  o.tr = 2;
  o.num_threads = 2;
  CaqrResult res = caqr_factor(fact.view(), o);

  Matrix qta = a;
  caqr_apply_q(blas::Trans::Trans, fact.view(), res, qta.view());
  Matrix r = caqr_extract_r(fact.view(), res);
  for (idx j = 0; j < 45; ++j) {
    for (idx i = 0; i < 45; ++i) {
      EXPECT_NEAR(qta(i, j), r(i, j), 1e-9);
    }
    for (idx i = 45; i < 90; ++i) EXPECT_NEAR(qta(i, j), 0.0, 1e-9);
  }
}

TEST(Caqr, TraceHasPanelAndUpdateTasks) {
  Matrix a = random_matrix(160, 80, 215);
  CaqrOptions o;
  o.b = 20;
  o.tr = 2;
  o.num_threads = 2;
  CaqrResult r = caqr_factor(a.view(), o);
  std::set<rt::TaskKind> kinds;
  for (const auto& t : r.trace) kinds.insert(t.kind);
  EXPECT_TRUE(kinds.count(rt::TaskKind::Panel));
  EXPECT_TRUE(kinds.count(rt::TaskKind::Update));
  for (const auto& e : r.edges) {
    EXPECT_GE(r.trace[static_cast<std::size_t>(e.to)].start_ns,
              r.trace[static_cast<std::size_t>(e.from)].end_ns);
  }
}

// Regression: like CALU's candidate slots, the TSQR leaf/node keys used a
// fixed per-iteration stride of 8192, aliasing iteration k's keys with
// iteration k+1's once a panel had more tournament slots than the stride and
// producing impossible cross-iteration Panel->Panel dependency edges. The
// stride is now derived from the per-iteration slot bound; this wide-panel
// configuration fails on the fixed-stride code.
TEST(Caqr, WideTournamentKeysDoNotAliasAcrossIterations) {
  const idx m = 8400;
  Matrix a = random_matrix(m, 2, 419);
  Matrix fact = a;
  CaqrOptions o;
  o.b = 1;
  o.tr = m;  // one leaf per row: more slots than the old fixed stride
  o.tree = ReductionTree::Flat;
  o.num_threads = 0;
  CaqrResult r = caqr_factor(fact.view(), o);
  for (const auto& e : r.edges) {
    const auto& from = r.trace[static_cast<std::size_t>(e.from)];
    const auto& to = r.trace[static_cast<std::size_t>(e.to)];
    if (from.kind == rt::TaskKind::Panel && to.kind == rt::TaskKind::Panel) {
      EXPECT_EQ(from.iteration, to.iteration)
          << "spurious cross-iteration Panel edge " << e.from << " ("
          << from.label << ") -> " << e.to << " (" << to.label << ")";
    }
  }
  EXPECT_LT(caqr_residual(a, fact, r), kResidualThreshold);
}

TEST(Caqr, LeastSquaresSolve) {
  // Solve min ||Ax - b|| via CAQR: x = R^{-1} (Q^T b)(1:n).
  const idx m = 200, n = 30;
  Matrix a = random_matrix(m, n, 217);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = 1.0 / (1.0 + static_cast<double>(i));
  }
  Matrix bvec = Matrix::zeros(m, 1);
  blas::gemv(blas::Trans::NoTrans, 1.0, a, x_true.data(), 1, 0.0,
             bvec.data(), 1);

  Matrix fact = a;
  CaqrOptions o;
  o.b = 10;
  o.tr = 4;
  o.num_threads = 2;
  CaqrResult res = caqr_factor(fact.view(), o);
  caqr_apply_q(blas::Trans::Trans, fact.view(), res, bvec.view());
  blas::trsv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit,
             fact.view().block(0, 0, n, n), bvec.data(), 1);
  for (idx i = 0; i < n; ++i) {
    EXPECT_NEAR(bvec(i, 0), x_true[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Caqr, ZeroMatrix) {
  Matrix a = Matrix::zeros(50, 20);
  Matrix fact = a;
  CaqrOptions o;
  o.b = 10;
  o.tr = 2;
  o.num_threads = 1;
  CaqrResult res = caqr_factor(fact.view(), o);
  Matrix r = caqr_extract_r(fact.view(), res);
  EXPECT_EQ(norm_max(r), 0.0);
}

TEST(Caqr, TinyMatrices) {
  for (idx n : {1, 2, 3}) {
    Matrix a = random_matrix(n + 2, n, 219 + n);
    Matrix fact = a;
    CaqrOptions o;
    o.b = 1;
    o.tr = 2;
    o.num_threads = 1;
    CaqrResult res = caqr_factor(fact.view(), o);
    EXPECT_LT(caqr_residual(a, fact, res), kResidualThreshold);
  }
}


TEST(Caqr, HybridTreeEndToEnd) {
  Matrix a = random_matrix(400, 100, 444);
  Matrix fact = a;
  CaqrOptions o;
  o.b = 25;
  o.tr = 8;
  o.tree = ReductionTree::Hybrid;
  o.num_threads = 3;
  CaqrResult res = caqr_factor(fact.view(), o);
  EXPECT_LT(caqr_residual(a, fact, res), kResidualThreshold);
}

}  // namespace
}  // namespace camult::core
