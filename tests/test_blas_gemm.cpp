// gemm correctness: all transpose combinations, strided views, edge shapes,
// blocking boundaries, and alpha/beta handling — against the naive reference.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "common/test_utils.hpp"
#include "matrix/random.hpp"

namespace camult::blas {
namespace {

using camult::test::matrices_near;
using camult::test::reference_gemm;

Matrix make_operand(Trans t, idx rows_op, idx cols_op, std::uint64_t seed) {
  // Storage shape depends on whether the operand is transposed.
  return t == Trans::NoTrans ? random_matrix(rows_op, cols_op, seed)
                             : random_matrix(cols_op, rows_op, seed);
}

void check_gemm(Trans ta, Trans tb, idx m, idx n, idx k, double alpha,
                double beta, std::uint64_t seed) {
  Matrix a = make_operand(ta, m, k, seed);
  Matrix b = make_operand(tb, k, n, seed + 1);
  Matrix c = random_matrix(m, n, seed + 2);
  Matrix c_ref = c;

  gemm(ta, tb, alpha, a, b, beta, c.view());
  reference_gemm(ta, tb, alpha, a, b, beta, c_ref.view());

  const double tol = 1e-12 * static_cast<double>(std::max<idx>(k, 1));
  EXPECT_TRUE(matrices_near(c, c_ref, tol))
      << "m=" << m << " n=" << n << " k=" << k << " ta="
      << (ta == Trans::Trans) << " tb=" << (tb == Trans::Trans);
}

using ShapeParam = std::tuple<idx, idx, idx>;

class GemmShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(GemmShapes, AllTransCombos) {
  auto [m, n, k] = GetParam();
  int s = 0;
  for (Trans ta : {Trans::NoTrans, Trans::Trans}) {
    for (Trans tb : {Trans::NoTrans, Trans::Trans}) {
      check_gemm(ta, tb, m, n, k, 1.0, 0.0, 100 + s);
      check_gemm(ta, tb, m, n, k, -0.5, 2.0, 200 + s);
      ++s;
    }
  }
}

// Shapes chosen to hit microkernel edges (MR=8, NR=6), cache-block edges
// (MC=192, KC=256, NC=768) and degenerate sizes.
INSTANTIATE_TEST_SUITE_P(
    EdgeShapes, GemmShapes,
    ::testing::Values(
        ShapeParam{1, 1, 1}, ShapeParam{2, 3, 4}, ShapeParam{8, 6, 8},
        ShapeParam{7, 5, 9}, ShapeParam{9, 7, 3}, ShapeParam{16, 12, 16},
        ShapeParam{17, 13, 19}, ShapeParam{1, 50, 1}, ShapeParam{50, 1, 7},
        ShapeParam{33, 1, 1}, ShapeParam{64, 64, 64}, ShapeParam{100, 100, 100},
        ShapeParam{193, 10, 257}, ShapeParam{10, 769, 5},
        ShapeParam{200, 60, 300}));

TEST(Gemm, ZeroKScalesCOnly) {
  Matrix a(5, 0);
  Matrix b(0, 4);
  Matrix c = random_matrix(5, 4, 7);
  Matrix c0 = c;
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 2.0, c.view());
  for (idx j = 0; j < 4; ++j) {
    for (idx i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(c(i, j), 2.0 * c0(i, j));
  }
}

TEST(Gemm, AlphaZeroOnlyScales) {
  Matrix a = random_matrix(6, 7, 1);
  Matrix b = random_matrix(7, 5, 2);
  Matrix c = random_matrix(6, 5, 3);
  Matrix c0 = c;
  gemm(Trans::NoTrans, Trans::NoTrans, 0.0, a, b, 0.5, c.view());
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(c(i, j), 0.5 * c0(i, j));
  }
}

TEST(Gemm, BetaZeroOverwritesNaN) {
  Matrix a = random_matrix(4, 4, 1);
  Matrix b = random_matrix(4, 4, 2);
  Matrix c(4, 4);
  fill(c.view(), std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0, c.view());
  for (idx j = 0; j < 4; ++j) {
    for (idx i = 0; i < 4; ++i) EXPECT_FALSE(std::isnan(c(i, j)));
  }
}

TEST(Gemm, WorksOnStridedSubviews) {
  // Operate on interior blocks of larger allocations (ld > rows).
  Matrix big_a = random_matrix(40, 40, 11);
  Matrix big_b = random_matrix(40, 40, 12);
  Matrix big_c = random_matrix(40, 40, 13);
  Matrix big_c_ref = big_c;

  auto a = big_a.view().block(3, 5, 20, 15);
  auto b = big_b.view().block(1, 2, 15, 18);
  auto c = big_c.view().block(7, 9, 20, 18);
  auto c_ref = big_c_ref.view().block(7, 9, 20, 18);

  gemm(Trans::NoTrans, Trans::NoTrans, 1.5, a, b, -1.0, c);
  reference_gemm(Trans::NoTrans, Trans::NoTrans, 1.5, a, b, -1.0, c_ref);
  EXPECT_TRUE(matrices_near(big_c, big_c_ref, 1e-11));
  // Elements outside the C block are untouched: compare the full matrices
  // (the reference only modified the same block).
}

TEST(Gemm, LargeCrossesAllCacheBlocks) {
  // One shape larger than MC/KC/NC in every dimension.
  const idx m = 250, n = 800, k = 300;
  Matrix a = random_matrix(m, k, 21);
  Matrix b = random_matrix(k, n, 22);
  Matrix c = Matrix::zeros(m, n);
  Matrix c_ref = Matrix::zeros(m, n);
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0, c.view());
  reference_gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0,
                 c_ref.view());
  EXPECT_TRUE(matrices_near(c, c_ref, 1e-10));
}

// A quiet NaN in A must reach C even when the matching B element is zero:
// the small-path used to skip bv == 0.0 terms as an "optimization", which
// silently laundered NaN * 0 into 0 and made NaN visibility depend on which
// code path (small vs blocked) the problem size selected. The health
// monitor's poison screening relies on propagation being path-independent.
TEST(Gemm, NanPropagatesThroughZeroBTerms) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Small path: m*n*k well under the blocked cutoff.
  {
    Matrix a = random_matrix(8, 8, 31);
    Matrix b = Matrix::zeros(8, 8);  // every bv is exactly 0.0
    Matrix c = random_matrix(8, 8, 32);
    a(3, 2) = nan;
    gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 1.0, c.view());
    for (idx j = 0; j < 8; ++j) {
      EXPECT_TRUE(std::isnan(c(3, j))) << "col " << j;
      EXPECT_FALSE(std::isnan(c(0, j))) << "col " << j;
    }
  }
  // Blocked path: same poison pattern, size past the small cutoff.
  {
    Matrix a = random_matrix(64, 64, 33);
    Matrix b = Matrix::zeros(64, 64);
    Matrix c = random_matrix(64, 64, 34);
    a(3, 2) = nan;
    gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 1.0, c.view());
    for (idx j = 0; j < 64; ++j) {
      EXPECT_TRUE(std::isnan(c(3, j))) << "col " << j;
      EXPECT_FALSE(std::isnan(c(0, j))) << "col " << j;
    }
  }
}

// Small-vs-blocked parity on the same poisoned values: embed the small
// problem in the corner of a zero-padded blocked-size problem and the
// shared region must agree on WHERE the NaNs are (values may differ in
// rounding order, NaN placement may not).
TEST(Gemm, NanPlacementMatchesSmallVsBlocked) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const idx m = 10, n = 6, k = 9;    // small path: 540 flops
  const idx M = 40, N = 40, K = 40;  // blocked path
  Matrix a = random_matrix(m, k, 41);
  Matrix b = random_matrix(k, n, 42);
  a(1, 4) = nan;
  b(7, 2) = 0.0;  // zero B term against a NaN-free A row
  a(5, 7) = nan;  // NaN against the zero B term: must still poison row 5
  Matrix c_small = Matrix::zeros(m, n);
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0, c_small.view());

  Matrix ap = Matrix::zeros(M, K);
  Matrix bp = Matrix::zeros(K, N);
  for (idx j = 0; j < k; ++j) {
    for (idx i = 0; i < m; ++i) ap(i, j) = a(i, j);
  }
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < k; ++i) bp(i, j) = b(i, j);
  }
  Matrix c_blocked = Matrix::zeros(M, N);
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, ap, bp, 0.0, c_blocked.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      EXPECT_EQ(std::isnan(c_small(i, j)), std::isnan(c_blocked(i, j)))
          << "(" << i << ", " << j << ")";
    }
  }
  // Rows 1 and 5 carry the planted NaNs.
  EXPECT_TRUE(std::isnan(c_small(1, 0)));
  EXPECT_TRUE(std::isnan(c_small(5, 0)));
  EXPECT_FALSE(std::isnan(c_small(0, 0)));
}

TEST(Gemm, BlockingParametersExposed) {
  const GemmBlocking blk = gemm_blocking();
  EXPECT_GT(blk.mr, 0);
  EXPECT_GT(blk.nr, 0);
  EXPECT_GE(blk.mc, blk.mr);
  EXPECT_GE(blk.nc, blk.nr);
}

}  // namespace
}  // namespace camult::blas
