// Tests for the PLASMA-style tiled baselines: kernel-level checks (tsqrt /
// tsmqr / tstrf / ssssm), tile QR residual/orthogonality, tile LU solve
// correctness, DAG structure (chain serialization, update pipelining).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"
#include "tiled/tile_lu.hpp"
#include "tiled/tile_qr.hpp"

namespace camult::tiled {
namespace {

using camult::test::kResidualThreshold;
using camult::test::matrices_near;

TEST(TsqrtKernel, FactorsStackedTriangleAndTile) {
  const idx b = 8;
  // Build an R triangle via a plain QR.
  Matrix base = random_matrix(20, b, 301);
  std::vector<double> tau;
  lapack::geqr2(base.view(), tau);
  Matrix r_tile = Matrix::zeros(b, b);
  for (idx j = 0; j < b; ++j) {
    for (idx i = 0; i <= j; ++i) r_tile(i, j) = base(i, j);
  }
  Matrix full = random_matrix(b, b, 302);

  Matrix r_before = r_tile;
  Matrix full_before = full;
  TsqrtFactors f = tsqrt(r_tile.view(), full.view());

  // R^T R must equal (stack)^T (stack).
  Matrix stack = Matrix::zeros(2 * b, b);
  for (idx j = 0; j < b; ++j) {
    for (idx i = 0; i <= j; ++i) stack(i, j) = r_before(i, j);
    for (idx i = 0; i < b; ++i) stack(b + i, j) = full_before(i, j);
  }
  Matrix sts = Matrix::zeros(b, b);
  Matrix rtr = Matrix::zeros(b, b);
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, stack, stack, 0.0,
             sts.view());
  Matrix r_after = Matrix::zeros(b, b);
  for (idx j = 0; j < b; ++j) {
    for (idx i = 0; i <= j; ++i) r_after(i, j) = r_tile(i, j);
  }
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, r_after, r_after,
             0.0, rtr.view());
  EXPECT_TRUE(matrices_near(rtr, sts, 1e-10 * std::max(1.0, norm_max(sts))));
}

TEST(TsqrtKernel, TsmqrRoundTrip) {
  const idx b = 6;
  Matrix r_tile = random_matrix(b, b, 303);
  for (idx j = 0; j < b; ++j) {
    for (idx i = j + 1; i < b; ++i) r_tile(i, j) = 0.0;
  }
  Matrix full = random_matrix(b, b, 304);
  TsqrtFactors f = tsqrt(r_tile.view(), full.view());

  Matrix top = random_matrix(b, 4, 305);
  Matrix bot = random_matrix(b, 4, 306);
  Matrix top0 = top, bot0 = bot;
  tsmqr(blas::Trans::Trans, f, top.view(), bot.view());
  tsmqr(blas::Trans::NoTrans, f, top.view(), bot.view());
  EXPECT_TRUE(matrices_near(top, top0, 1e-12));
  EXPECT_TRUE(matrices_near(bot, bot0, 1e-12));
}

TEST(TstrfKernel, EliminatesTileAgainstTriangle) {
  const idx b = 8;
  Matrix u_tile = random_matrix(b, b, 307);
  for (idx j = 0; j < b; ++j) {
    u_tile(j, j) += 4.0;
    for (idx i = j + 1; i < b; ++i) u_tile(i, j) = 0.0;
  }
  Matrix full = random_matrix(b, b, 308);
  Matrix u_before = u_tile;
  Matrix full_before = full;

  TstrfFactors f = tstrf(u_tile.view(), full.view());
  EXPECT_EQ(f.info, 0);

  // The factorization satisfies P [U_old; A] = L U_new: verify by
  // reconstruction.
  Matrix stack = Matrix::zeros(2 * b, b);
  for (idx j = 0; j < b; ++j) {
    for (idx i = 0; i <= j; ++i) stack(i, j) = u_before(i, j);
    for (idx i = 0; i < b; ++i) stack(b + i, j) = full_before(i, j);
  }
  Permutation perm = ipiv_to_permutation(f.ipiv, 2 * b);
  Matrix pstack = permute_rows(perm, stack);
  Matrix u_new = Matrix::zeros(b, b);
  for (idx j = 0; j < b; ++j) {
    for (idx i = 0; i <= j; ++i) u_new(i, j) = u_tile(i, j);
  }
  Matrix lu = Matrix::zeros(2 * b, b);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, f.l, u_new, 0.0,
             lu.view());
  EXPECT_TRUE(matrices_near(lu, pstack, 1e-10 * std::max(1.0, norm_max(pstack))));
}

struct TiledShape {
  idx m, n, b;
  int threads;
};

class TileQrSweep : public ::testing::TestWithParam<TiledShape> {};

TEST_P(TileQrSweep, ResidualAndOrthogonality) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.n, 311);
  Matrix fact = a;
  TileQrOptions o;
  o.b = p.b;
  o.num_threads = p.threads;
  TileQrResult res = tile_qr_factor(fact.view(), o);
  EXPECT_LT(tile_qr_residual(a, fact, res), kResidualThreshold)
      << "m=" << p.m << " n=" << p.n << " b=" << p.b;

  // Orthogonality via explicit thin Q.
  const idx k = std::min(p.m, p.n);
  Matrix q = Matrix::identity(p.m, k);
  tile_qr_apply_q(blas::Trans::NoTrans, fact.view(), res, q.view());
  EXPECT_LT(lapack::orthogonality_residual(q), kResidualThreshold);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TileQrSweep,
    ::testing::Values(TiledShape{64, 64, 16, 2}, TiledShape{96, 96, 32, 4},
                      TiledShape{130, 130, 32, 2},  // ragged
                      TiledShape{400, 40, 20, 4},   // tall
                      TiledShape{1000, 10, 100, 2}, // very tall-skinny
                      TiledShape{60, 200, 20, 2},   // wide
                      TiledShape{50, 50, 50, 2},    // single tile
                      TiledShape{64, 64, 16, 0}));  // record mode

class TileLuSweep : public ::testing::TestWithParam<TiledShape> {};

TEST_P(TileLuSweep, SolveResidualSmall) {
  const auto& p = GetParam();
  // Square systems only for the solve check.
  const idx n = p.n;
  Matrix a = random_matrix(n, n, 313);
  Matrix fact = a;
  TileLuOptions o;
  o.b = p.b;
  o.num_threads = p.threads;
  TileLuResult res = tile_lu_factor(fact.view(), o);
  EXPECT_EQ(res.info, 0);

  Matrix x_true = random_matrix(n, 3, 314);
  Matrix rhs = Matrix::zeros(n, 3);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, x_true, 0.0,
             rhs.view());
  tile_lu_solve(res, fact.view(), rhs.view());
  // Incremental pivoting is less stable than partial pivoting; accept a
  // slightly larger (but still tiny) relative error.
  const double scale = std::max(1.0, norm_max(x_true));
  EXPECT_TRUE(matrices_near(rhs, x_true, 1e-7 * scale * static_cast<double>(n)))
      << "n=" << n << " b=" << p.b;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TileLuSweep,
    ::testing::Values(TiledShape{0, 64, 16, 2}, TiledShape{0, 96, 32, 4},
                      TiledShape{0, 130, 32, 2}, TiledShape{0, 50, 50, 2},
                      TiledShape{0, 100, 20, 0}, TiledShape{0, 90, 30, 3}));

TEST(TileLu, TallSkinnyForwardConsistent) {
  // For tall matrices validate via the forward op-log: applying the forward
  // transformations to A itself must leave [U; 0].
  const idx m = 300, n = 30, b = 10;
  Matrix a = random_matrix(m, n, 317);
  Matrix fact = a;
  TileLuOptions o;
  o.b = b;
  o.num_threads = 2;
  TileLuResult res = tile_lu_factor(fact.view(), o);
  ASSERT_EQ(res.info, 0);

  Matrix au = a;
  tile_lu_forward(res, au.view());
  // Top n x n must equal the U stored in fact; below must be ~0.
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= std::min(j, n - 1); ++i) {
      EXPECT_NEAR(au(i, j), fact(i, j), 1e-8 * std::max(1.0, std::abs(fact(i, j))));
    }
    for (idx i = j + 1; i < m; ++i) {
      EXPECT_NEAR(au(i, j), 0.0, 1e-7 * norm_max(a));
    }
  }
}

TEST(TileQr, ChainSerializesPanelColumn) {
  // The TSQRT chain of a column is sequential: each node depends on the
  // previous via the diagonal tile. Verify via trace timestamps.
  Matrix a = random_matrix(500, 20, 319);
  TileQrOptions o;
  o.b = 20;
  o.num_threads = 4;
  TileQrResult res = tile_qr_factor(a.view(), o);
  std::vector<const rt::TaskRecord*> chain;
  for (const auto& t : res.trace) {
    if (t.label.rfind("tsqrt", 0) == 0) chain.push_back(&t);
  }
  ASSERT_GT(chain.size(), 2u);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_GE(chain[i]->start_ns, chain[i - 1]->end_ns);
  }
}

TEST(TileLu, SingularReportsInfo) {
  Matrix a = random_matrix(40, 40, 321);
  for (idx i = 0; i < 40; ++i) a(i, 20) = 0.0;
  TileLuOptions o;
  o.b = 10;
  o.num_threads = 2;
  TileLuResult res = tile_lu_factor(a.view(), o);
  EXPECT_NE(res.info, 0);
}

TEST(TileQr, DeterministicAcrossThreads) {
  Matrix a = random_matrix(120, 60, 323);
  Matrix f1 = a, f2 = a;
  TileQrOptions o;
  o.b = 20;
  o.num_threads = 0;
  tile_qr_factor(f1.view(), o);
  o.num_threads = 4;
  tile_qr_factor(f2.view(), o);
  EXPECT_EQ(test::max_diff(f1, f2), 0.0);
}

}  // namespace
}  // namespace camult::tiled
