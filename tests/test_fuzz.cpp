// Randomized property tests ("fuzz"): many random (shape, blocking, tree,
// thread-count) configurations, each checked against the library's own
// invariants and reference implementations. Seeds are fixed so failures are
// reproducible; the configuration is printed on failure.
#include <gtest/gtest.h>

#include <random>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "core/tslu.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"
#include "runtime/task_graph.hpp"
#include "sim/sim_scheduler.hpp"

namespace camult {
namespace {

using camult::test::kResidualThreshold;

TEST(Fuzz, CaluRandomConfigs) {
  std::mt19937_64 gen(20260704);
  for (int trial = 0; trial < 30; ++trial) {
    const idx m = 8 + static_cast<idx>(gen() % 400);
    const idx n = 1 + static_cast<idx>(gen() % 200);
    const idx b = 1 + static_cast<idx>(gen() % 40);
    const idx tr = 1 + static_cast<idx>(gen() % 8);
    const int threads = static_cast<int>(gen() % 5);  // 0..4
    const auto tree = static_cast<core::ReductionTree>(gen() % 3);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": m=" << m << " n=" << n
                 << " b=" << b << " tr=" << tr << " threads=" << threads
                 << " tree=" << core::reduction_tree_name(tree));

    Matrix a = random_matrix(m, n, 5000 + trial);
    Matrix lu = a;
    core::CaluOptions o;
    o.b = b;
    o.tr = tr;
    o.tree = tree;
    o.num_threads = threads;
    o.record_trace = false;
    o.update_cols_per_task = 1 + static_cast<idx>(gen() % 3);
    core::CaluResult res = core::calu_factor(lu.view(), o);
    EXPECT_EQ(res.info, 0);
    EXPECT_LT(lapack::lu_residual(a, lu, res.ipiv), kResidualThreshold);
  }
}

TEST(Fuzz, CaqrRandomConfigs) {
  std::mt19937_64 gen(42424242);
  for (int trial = 0; trial < 30; ++trial) {
    const idx m = 8 + static_cast<idx>(gen() % 400);
    const idx n = 1 + static_cast<idx>(gen() % 200);
    const idx b = 1 + static_cast<idx>(gen() % 40);
    const idx tr = 1 + static_cast<idx>(gen() % 8);
    const int threads = static_cast<int>(gen() % 5);
    const auto tree = static_cast<core::ReductionTree>(gen() % 3);
    const bool structured = (gen() % 2) == 0;
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": m=" << m << " n=" << n
                 << " b=" << b << " tr=" << tr << " threads=" << threads
                 << " tree=" << core::reduction_tree_name(tree)
                 << " structured=" << structured);

    Matrix a = random_matrix(m, n, 6000 + trial);
    Matrix fact = a;
    core::CaqrOptions o;
    o.b = b;
    o.tr = tr;
    o.tree = tree;
    o.num_threads = threads;
    o.structured_nodes = structured;
    o.record_trace = false;
    core::CaqrResult res = core::caqr_factor(fact.view(), o);
    EXPECT_LT(core::caqr_residual(a, fact, res), kResidualThreshold);
  }
}

TEST(Fuzz, TsluPivotsAlwaysValidPermutation) {
  std::mt19937_64 gen(777);
  for (int trial = 0; trial < 25; ++trial) {
    const idx b = 1 + static_cast<idx>(gen() % 24);
    const idx m = b + static_cast<idx>(gen() % 300);
    const idx tr = 1 + static_cast<idx>(gen() % 10);
    SCOPED_TRACE(::testing::Message() << "m=" << m << " b=" << b
                                      << " tr=" << tr);
    Matrix a = random_matrix(m, b, 7000 + trial);
    PivotVector ipiv;
    core::TsluOptions o;
    o.tr = tr;
    core::tslu_factor(a.view(), ipiv, o);
    ASSERT_EQ(static_cast<idx>(ipiv.size()), b);
    Permutation perm = ipiv_to_permutation(ipiv, m);
    EXPECT_TRUE(is_valid_permutation(perm));
  }
}

TEST(Fuzz, RandomDagsExecuteExactlyOnce) {
  // Random DAGs on the real runtime under both policies: every task runs
  // exactly once and never before its dependencies.
  std::mt19937_64 gen(999);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 50 + static_cast<int>(gen() % 200);
    const auto policy = (gen() % 2) ? rt::TaskGraph::Policy::WorkStealing
                                    : rt::TaskGraph::Policy::CentralPriority;
    std::vector<std::vector<rt::TaskId>> deps(static_cast<std::size_t>(n));
    for (int i = 1; i < n; ++i) {
      const int ndeps = static_cast<int>(gen() % 4);
      for (int d = 0; d < ndeps; ++d) {
        deps[static_cast<std::size_t>(i)].push_back(
            static_cast<rt::TaskId>(gen() % static_cast<std::uint64_t>(i)));
      }
    }
    std::vector<std::atomic<int>> run_count(static_cast<std::size_t>(n));
    for (auto& c : run_count) c = 0;
    std::vector<std::atomic<bool>> done(static_cast<std::size_t>(n));
    for (auto& d : done) d = false;
    std::atomic<bool> violation{false};

    {
      rt::TaskGraph g({3, false, policy});
      for (int i = 0; i < n; ++i) {
        const auto my_deps = deps[static_cast<std::size_t>(i)];
        g.submit(my_deps, {}, [&, i, my_deps] {
          for (rt::TaskId d : my_deps) {
            if (!done[static_cast<std::size_t>(d)]) violation = true;
          }
          ++run_count[static_cast<std::size_t>(i)];
          done[static_cast<std::size_t>(i)] = true;
        });
      }
      g.wait();
    }
    EXPECT_FALSE(violation) << "trial " << trial;
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(run_count[static_cast<std::size_t>(i)], 1) << "task " << i;
    }
  }
}

TEST(Fuzz, SimAgreesWithGrahamBoundsOnRandomDags) {
  std::mt19937_64 gen(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 30 + static_cast<int>(gen() % 300);
    std::vector<rt::TaskRecord> tasks(static_cast<std::size_t>(n));
    std::vector<rt::TaskGraph::Edge> edges;
    for (int i = 0; i < n; ++i) {
      auto& t = tasks[static_cast<std::size_t>(i)];
      t.id = i;
      t.start_ns = 0;
      t.end_ns = 1 + static_cast<std::int64_t>(gen() % 1000);
      t.priority = static_cast<int>(gen() % 10);
      const int ndeps = static_cast<int>(gen() % 3);
      for (int d = 0; d < ndeps && i > 0; ++d) {
        edges.push_back(
            {static_cast<rt::TaskId>(gen() % static_cast<std::uint64_t>(i)),
             i});
      }
    }
    for (int p : {1, 3, 7}) {
      auto r = sim::simulate(tasks, edges, p);
      const double lower =
          std::max<double>(static_cast<double>(r.critical_path_ns),
                           static_cast<double>(r.total_work_ns) / p);
      EXPECT_GE(static_cast<double>(r.makespan_ns) + 1e-9, lower);
      EXPECT_LE(r.makespan_ns, r.critical_path_ns + r.total_work_ns / p + 1);
    }
  }
}

}  // namespace
}  // namespace camult
