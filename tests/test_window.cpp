// test_window.cpp — sliding-window DAG submission (CaluOptions::window /
// CaqrOptions::window) and the overflow-guard sweep that rode along with it:
//
//  * bitwise parity: windowed CALU/CAQR must equal the full-DAG run exactly
//    (both reduction trees, owned threads, a shared WorkerPool, inline
//    record mode, and the adversarial input ensembles);
//  * memory: windowed runs recycle task-store slabs and their peak stays
//    flat as m grows at fixed window, while the full DAG's grows;
//  * trace: retention is opt-in — an untraced windowed run must not
//    reaccumulate retired-task events, a traced one must still harvest the
//    complete trace out of recycled slabs;
//  * failure paths: cancellation and fault injection mid-window drain
//    cleanly and never wedge a shared pool;
//  * dep-key / priority-band overflow guards (core/lookahead.hpp): the
//    regression tests that fail on the old silent wraparound.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/test_utils.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "core/lookahead.hpp"
#include "matrix/matrix.hpp"
#include "matrix/random.hpp"
#include "runtime/cancel.hpp"
#include "runtime/fault_inject.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"
#include "svc/service.hpp"

namespace camult {
namespace {

using core::CaluOptions;
using core::CaqrOptions;

CaluOptions lu_opts(idx window, int threads,
                    core::ReductionTree tree = core::ReductionTree::Binary) {
  CaluOptions o;
  o.b = 16;
  o.tr = 2;
  o.tree = tree;
  o.num_threads = threads;
  o.window = window;
  o.record_trace = false;
  return o;
}

CaqrOptions qr_opts(idx window, int threads,
                    core::ReductionTree tree = core::ReductionTree::Flat) {
  CaqrOptions o;
  o.b = 16;
  o.tr = 2;
  o.tree = tree;
  o.num_threads = threads;
  o.window = window;
  o.record_trace = false;
  return o;
}

// ---- Bitwise parity: windowed == full-DAG --------------------------------

TEST(CaluWindow, BitwiseParityWithFullDag) {
  for (core::ReductionTree tree :
       {core::ReductionTree::Binary, core::ReductionTree::Flat}) {
    Matrix base = random_matrix(160, 80, 900);
    Matrix full = base;
    const core::CaluResult ref =
        core::calu_factor(full.view(), lu_opts(0, 3, tree));
    for (idx window : {idx{1}, idx{3}}) {
      for (int threads : {0, 3}) {
        Matrix w = base;
        const core::CaluResult res =
            core::calu_factor(w.view(), lu_opts(window, threads, tree));
        EXPECT_EQ(res.ipiv, ref.ipiv)
            << "tree " << static_cast<int>(tree) << " window " << window
            << " threads " << threads;
        EXPECT_EQ(res.info, ref.info);
        EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0)
            << "tree " << static_cast<int>(tree) << " window " << window
            << " threads " << threads;
      }
    }
  }
}

TEST(CaqrWindow, BitwiseParityWithFullDag) {
  for (core::ReductionTree tree :
       {core::ReductionTree::Flat, core::ReductionTree::Binary}) {
    Matrix base = random_matrix(160, 64, 901);
    Matrix full = base;
    const core::CaqrResult ref =
        core::caqr_factor(full.view(), qr_opts(0, 3, tree));
    const Matrix ref_q = core::caqr_explicit_q(full.view(), ref);
    for (idx window : {idx{1}, idx{3}}) {
      for (int threads : {0, 3}) {
        Matrix w = base;
        const core::CaqrResult res =
            core::caqr_factor(w.view(), qr_opts(window, threads, tree));
        ASSERT_EQ(res.iterations.size(), ref.iterations.size());
        EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0)
            << "tree " << static_cast<int>(tree) << " window " << window
            << " threads " << threads;
        const Matrix q = core::caqr_explicit_q(w.view(), res);
        EXPECT_EQ(test::max_diff(ref_q.view(), q.view()), 0.0);
      }
    }
  }
}

TEST(CaluWindow, BitwiseParityOnSharedPool) {
  rt::WorkerPool pool({3});
  Matrix base = random_matrix(160, 80, 902);
  Matrix full = base;
  CaluOptions fo = lu_opts(0, 3);
  fo.pool = &pool;
  const core::CaluResult ref = core::calu_factor(full.view(), fo);

  Matrix w = base;
  CaluOptions wo = lu_opts(2, 3);
  wo.pool = &pool;
  const core::CaluResult res = core::calu_factor(w.view(), wo);
  EXPECT_EQ(res.ipiv, ref.ipiv);
  EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0);

  Matrix qbase = random_matrix(160, 64, 903);
  Matrix qfull = qbase;
  CaqrOptions qf = qr_opts(0, 3);
  qf.pool = &pool;
  const core::CaqrResult qref = core::caqr_factor(qfull.view(), qf);
  Matrix qw = qbase;
  CaqrOptions qo = qr_opts(2, 3);
  qo.pool = &pool;
  const core::CaqrResult qres = core::caqr_factor(qw.view(), qo);
  ASSERT_EQ(qres.iterations.size(), qref.iterations.size());
  EXPECT_EQ(test::max_diff(qfull.view(), qw.view()), 0.0);
}

TEST(CaluWindow, BitwiseParityOnAdversarialEnsembles) {
  for (const test::AdversarialCase& c : test::adversarial_cases(96, 48, 77)) {
    Matrix full = c.a;
    const core::CaluResult ref =
        core::calu_factor(full.view(), lu_opts(0, 2));
    Matrix w = c.a;
    const core::CaluResult res =
        core::calu_factor(w.view(), lu_opts(2, 2));
    EXPECT_EQ(res.ipiv, ref.ipiv) << c.name;
    EXPECT_EQ(res.info, ref.info) << c.name;
    EXPECT_EQ(res.health.fallback_panels, ref.health.fallback_panels)
        << c.name;
    EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0) << c.name;
  }
}

TEST(CaqrWindow, BitwiseParityOnAdversarialEnsembles) {
  for (const test::AdversarialCase& c : test::adversarial_cases(96, 48, 78)) {
    Matrix full = c.a;
    const core::CaqrResult ref =
        core::caqr_factor(full.view(), qr_opts(0, 2));
    Matrix w = c.a;
    const core::CaqrResult res =
        core::caqr_factor(w.view(), qr_opts(2, 2));
    ASSERT_EQ(res.iterations.size(), ref.iterations.size()) << c.name;
    EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0) << c.name;
  }
}

TEST(CaluWindow, BatchDriverMatchesFullDagPerProblem) {
  std::vector<Matrix> bases;
  bases.push_back(random_matrix(96, 48, 910));
  bases.push_back(random_matrix(128, 64, 911));
  bases.push_back(random_matrix(160, 80, 912));

  std::vector<Matrix> fulls = bases;
  std::vector<core::CaluResult> refs;
  for (Matrix& f : fulls) {
    refs.push_back(core::calu_factor(f.view(), lu_opts(0, 2)));
  }

  std::vector<Matrix> wins = bases;
  std::vector<MatrixView> views;
  for (Matrix& m : wins) views.push_back(m.view());
  const std::vector<core::CaluResult> batch =
      core::calu_factor_batch(views, lu_opts(2, 2));
  ASSERT_EQ(batch.size(), refs.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_FALSE(batch[i].cancelled);
    EXPECT_EQ(batch[i].ipiv, refs[i].ipiv) << "problem " << i;
    EXPECT_EQ(test::max_diff(fulls[i].view(), wins[i].view()), 0.0)
        << "problem " << i;
  }
}

// ---- Memory: slab recycling and O(window) peak ---------------------------

// b = 8, tr = 8 over n = 384 gives 48 panel iterations and ~10k tasks —
// several 4096-task slabs — while the per-iteration task count is
// independent of m (leaves are capped at tr), which is what makes the
// flat-in-m assertion meaningful.
core::CaluResult run_mem(idx m, idx window, bool trace = false) {
  Matrix a = random_matrix(m, 384, 920);
  CaluOptions o;
  o.b = 8;
  o.tr = 8;
  o.num_threads = 2;
  o.window = window;
  o.record_trace = trace;
  return core::calu_factor(a.view(), o);
}

TEST(CaluWindow, RecyclesSlabsAndPeakStaysFlatInM) {
  const core::CaluResult full = run_mem(768, 0);
  ASSERT_GE(full.mem.blocks_allocated, 3)
      << "problem too small to span multiple task-store slabs; the "
         "recycling assertions below would be vacuous";
  EXPECT_EQ(full.mem.blocks_recycled, 0);

  const core::CaluResult win = run_mem(768, 2);
  EXPECT_GT(win.mem.blocks_recycled, 0);
  EXPECT_LT(win.mem.blocks_allocated, full.mem.blocks_allocated);
  EXPECT_LT(win.mem.peak_task_store_bytes, full.mem.peak_task_store_bytes);

  // Same window, double m: the windowed peak must not grow (task count per
  // iteration does not depend on m), while the full-DAG task count is the
  // same too — the claim that matters is windowed peak is flat, which at
  // paper scale (m = 1e6) is the difference between ~2 slabs and gigabytes.
  const core::CaluResult win2 = run_mem(1536, 2);
  EXPECT_EQ(win2.mem.blocks_allocated, win.mem.blocks_allocated);
  EXPECT_EQ(win2.mem.peak_task_store_bytes, win.mem.peak_task_store_bytes);
}

TEST(CaqrWindow, RecyclesSlabsWithPackScratchFreed) {
  Matrix base = random_matrix(512, 256, 921);
  Matrix full = base;
  CaqrOptions fo;
  fo.b = 8;
  fo.tr = 8;
  fo.num_threads = 2;
  fo.record_trace = false;
  const core::CaqrResult ref = core::caqr_factor(full.view(), fo);
  ASSERT_GE(ref.mem.blocks_allocated, 2);

  Matrix w = base;
  CaqrOptions wo = fo;
  wo.window = 2;
  const core::CaqrResult res = core::caqr_factor(w.view(), wo);
  EXPECT_GT(res.mem.blocks_recycled, 0);
  EXPECT_LE(res.mem.blocks_allocated, ref.mem.blocks_allocated);
  // Recycling must not have touched the output: the Q factors replay.
  EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0);
  ASSERT_EQ(res.iterations.size(), ref.iterations.size());
}

// ---- Trace retention -----------------------------------------------------

TEST(CaluWindow, UntracedWindowedRunKeepsNoRetiredTaskEvents) {
  const core::CaluResult res = run_mem(768, 2, /*trace=*/false);
  EXPECT_GT(res.mem.blocks_recycled, 0);
  EXPECT_TRUE(res.trace.empty());
  EXPECT_TRUE(res.edges.empty());
  EXPECT_EQ(res.mem.trace_records_harvested, 0);
}

TEST(CaluWindow, TracedWindowedRunHarvestsCompleteTrace) {
  const core::CaluResult full = run_mem(768, 0, /*trace=*/true);
  const core::CaluResult win = run_mem(768, 2, /*trace=*/true);
  EXPECT_GT(win.mem.blocks_recycled, 0);
  // Slab recycling harvested the retired records instead of dropping them:
  // the windowed trace is the same size as the full-DAG one. Edge counts
  // may only grow: reusing a ring slot adds write-after-write edges from
  // the slot's retired previous owner (trivially satisfied at runtime, and
  // an honest extra constraint for the sim replayer).
  EXPECT_GT(win.mem.trace_records_harvested, 0);
  EXPECT_EQ(win.trace.size(), full.trace.size());
  EXPECT_GE(win.edges.size(), full.edges.size());
}

// ---- Cancellation and fault injection mid-window -------------------------

TEST(CaluWindow, CancelMidWindowDrainsAndPoolStaysUsable) {
  rt::WorkerPool pool({2});
  Matrix a = random_matrix(512, 256, 930);
  CaluOptions o;
  o.b = 8;
  o.tr = 4;
  o.num_threads = 2;
  o.pool = &pool;
  o.window = 2;
  o.record_trace = false;
  rt::SchedulerStats sched;
  o.sched_out = &sched;
  rt::CancelToken token = o.cancel;

  // The constructor submits the first window of iterations; cancelling
  // before collect() guarantees the abort lands with most of the DAG not
  // yet submitted — the retired-prefix bookkeeping must unwind it anyway.
  core::CaluAsync async(a.view(), o);
  token.request_cancel();
  EXPECT_THROW(async.collect(), rt::CancelledError);

  // The pool is not wedged: a fresh windowed factorization on the same
  // pool still matches the full-DAG reference bitwise.
  Matrix base = random_matrix(160, 80, 931);
  Matrix full = base;
  const core::CaluResult ref = core::calu_factor(full.view(), lu_opts(0, 2));
  Matrix w = base;
  CaluOptions wo = lu_opts(2, 2);
  wo.pool = &pool;
  const core::CaluResult res = core::calu_factor(w.view(), wo);
  EXPECT_EQ(res.ipiv, ref.ipiv);
  EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0);
}

TEST(CaqrWindow, CancelMidWindowDrainsAndPoolStaysUsable) {
  rt::WorkerPool pool({2});
  Matrix a = random_matrix(512, 256, 932);
  CaqrOptions o;
  o.b = 8;
  o.tr = 4;
  o.num_threads = 2;
  o.pool = &pool;
  o.window = 2;
  o.record_trace = false;
  rt::CancelToken token = o.cancel;

  core::CaqrAsync async(a.view(), o);
  token.request_cancel();
  EXPECT_THROW(async.collect(), rt::CancelledError);

  Matrix base = random_matrix(160, 64, 933);
  Matrix full = base;
  const core::CaqrResult ref = core::caqr_factor(full.view(), qr_opts(0, 2));
  Matrix w = base;
  CaqrOptions wo = qr_opts(2, 2);
  wo.pool = &pool;
  const core::CaqrResult res = core::caqr_factor(w.view(), wo);
  ASSERT_EQ(res.iterations.size(), ref.iterations.size());
  EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0);
}

TEST(CaluWindow, InjectedFaultMidWindowDrainsAndPoolStaysUsable) {
  rt::WorkerPool pool({2});
  rt::FaultConfig cfg;
  cfg.throw_on_task = 1000;  // well inside the ~2.5k-task DAG below
  rt::FaultInjector fault(cfg);

  Matrix a = random_matrix(512, 256, 934);
  CaluOptions o;
  o.b = 8;
  o.tr = 4;
  o.num_threads = 2;
  o.pool = &pool;
  o.window = 2;
  o.record_trace = false;
  o.fault = &fault;
  EXPECT_THROW(core::calu_factor(a.view(), o), rt::InjectedFault);
  EXPECT_EQ(fault.injected_throws(), 1);

  Matrix base = random_matrix(160, 80, 935);
  Matrix full = base;
  const core::CaluResult ref = core::calu_factor(full.view(), lu_opts(0, 2));
  Matrix w = base;
  CaluOptions wo = lu_opts(2, 2);
  wo.pool = &pool;
  const core::CaluResult res = core::calu_factor(w.view(), wo);
  EXPECT_EQ(res.ipiv, ref.ipiv);
  EXPECT_EQ(test::max_diff(full.view(), w.view()), 0.0);
}

// ---- svc integration -----------------------------------------------------

TEST(SvcWindow, WindowedJobMatchesFullDagResult) {
  Matrix base = random_matrix(96, 96, 940);
  Matrix full = base;
  const core::CaluResult ref = core::calu_factor(full.view(), lu_opts(0, 4));

  Matrix via_svc = base;
  svc::ServiceConfig cfg;
  cfg.num_threads = 4;
  svc::Service service(cfg);
  svc::JobRequest req;
  req.kind = svc::JobKind::CaluFactor;
  req.a = via_svc.view();
  req.b = 16;
  req.tr = 2;
  req.window = 2;
  const auto adm = service.submit(req);
  ASSERT_TRUE(adm.accepted);
  const svc::JobOutcome& out = adm.handle.wait();
  ASSERT_EQ(out.status, svc::JobStatus::Completed);
  ASSERT_NE(out.lu, nullptr);
  EXPECT_EQ(out.lu->ipiv, ref.ipiv);
  EXPECT_EQ(test::max_diff(full.view(), via_svc.view()), 0.0);
}

// ---- Overflow / aliasing guards (core/lookahead.hpp) ---------------------

TEST(OverflowGuards, CheckedKeyOffsetRejectsEnvelopeEscape) {
  // Paper scale sits far inside the envelope.
  const idx paper_iters = 250000;  // m = 1e6, b = 4
  EXPECT_EQ(core::checked_key_offset(paper_iters, 9, 3),
            paper_iters * 9 + 3);

  constexpr std::int64_t kLimit = std::int64_t{1} << 59;
  const idx stride = 9, slot = 3;
  const idx k_max = (kLimit - 1 - slot) / stride;
  EXPECT_EQ(core::checked_key_offset(k_max, stride, slot),
            k_max * stride + slot);
  EXPECT_THROW(core::checked_key_offset(k_max + 1, stride, slot),
               std::overflow_error);
  // The old arithmetic wrapped std::int64_t here and aliased iteration 0's
  // keys; now it must refuse.
  EXPECT_THROW(core::checked_key_offset(std::numeric_limits<idx>::max() / 2,
                                        1000, 0),
               std::overflow_error);
  EXPECT_THROW(core::checked_key_offset(-1, 9, 3), std::overflow_error);
  EXPECT_THROW(core::checked_key_offset(0, 9, 9), std::overflow_error);
}

TEST(OverflowGuards, BandArithmeticSaturatesInsteadOfWrapping) {
  constexpr long long kMax = std::numeric_limits<long long>::max();
  EXPECT_EQ(core::sat_band_mul(kMax, 2), kMax);
  EXPECT_EQ(core::sat_band_mul(1LL << 40, 1LL << 40), kMax);
  EXPECT_EQ(core::sat_band_mul(3, 4), 12);
  EXPECT_EQ(core::sat_band_add(kMax, 1), kMax);
  EXPECT_EQ(core::sat_band_add(5, 7), 12);
  EXPECT_EQ(core::biased_priority(std::numeric_limits<int>::max(), 1),
            std::numeric_limits<int>::max());
  EXPECT_EQ(core::biased_priority(std::numeric_limits<int>::min(), -1),
            std::numeric_limits<int>::min());
}

TEST(OverflowGuards, PaperScalePriorityBandsStayPositiveAndOrdered) {
  // m = n = 1e6 at b = 4: n_panels = n_blocks = 2.5e5, so the low band
  // alone (2 * panels * blocks = 1.25e11) exceeds int range. The bands must
  // saturate (top bleeds into mid) but never go negative or invert within
  // a band — the old fixed scheme wrapped negative here.
  core::LookaheadPriorities p;
  p.n_panels = 250000;
  p.n_blocks = 250000;
  for (idx k : {idx{0}, idx{1}, idx{100}, idx{249998}}) {
    EXPECT_GE(p.panel(k), 1);
    EXPECT_GE(p.lfactor(k), 1);
    EXPECT_GE(p.ufactor(k, k + 1), 1);
    EXPECT_GE(p.update(k, k + 1), 1);
    EXPECT_GE(p.panel(k), p.lfactor(k));
    EXPECT_GE(p.ufactor(k, k + 1), p.update(k, k + 1));
  }
  // At this scale even the low band saturates, so ordering degrades to
  // "never above" rather than strict — the documented bleed-together.
  EXPECT_LE(p.update(0, 100), p.ufactor(0, 1));

  // Just inside the envelope (1e4 panels, the paper's m = 1e6 at b = 100)
  // the strict band order must hold: low < mid < top, all positive.
  core::LookaheadPriorities q;
  q.n_panels = 10000;
  q.n_blocks = 10000;
  EXPECT_LT(q.update(0, 100), q.ufactor(0, 1));
  EXPECT_LT(q.ufactor(0, 1), q.lfactor(0));
  EXPECT_LT(q.lfactor(0), q.panel(0));
  EXPECT_LT(q.panel(1), q.panel(0));
  EXPECT_GE(q.update(q.n_panels - 1, q.n_blocks - 1), 1);
}

TEST(OverflowGuards, KeyRingReusesSlotsOnlyPastTheLiveSpan) {
  core::KeyRing off;  // full-DAG mode: identity
  EXPECT_EQ(off.slot(0), 0);
  EXPECT_EQ(off.slot(123456), 123456);

  const idx window = 3;
  core::KeyRing ring{window + 2};
  for (idx k = 0; k < 50; ++k) {
    // No two iterations that can be live together (span window + 1) may
    // share a slot.
    for (idx j = k + 1; j <= k + window + 1 && j < 50; ++j) {
      EXPECT_NE(ring.slot(k), ring.slot(j)) << "k=" << k << " j=" << j;
    }
    // The slot k reuses belonged to k - ring, which retired before k could
    // submit.
    if (k >= ring.ring) {
      EXPECT_EQ(ring.slot(k), ring.slot(k - ring.ring));
    }
  }
}

}  // namespace
}  // namespace camult
