// QR factorization tests: larfg, geqr2, larft/larfb, blocked geqrf,
// recursive geqr3, orgqr/ormqr. Invariants: ||A - QR|| small, Q orthogonal,
// recursive and blocked variants agree with the unblocked one, the T factor
// satisfies Q = I - V T V^T.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::lapack {
namespace {

using camult::test::kResidualThreshold;
using camult::test::matrices_near;

TEST(Larfg, AnnihilatesVector) {
  // H [alpha; x] should equal [beta; 0] with |beta| = ||[alpha; x]||.
  std::vector<double> v = {3.0, 4.0, 0.0};
  double alpha = v[0];
  const double full_norm = 5.0;
  const double tau = larfg(3, alpha, v.data() + 1, 1);
  EXPECT_NEAR(std::abs(alpha), full_norm, 1e-14);
  // Reconstruct: H [a; x] = [a;x] - tau ([1;v] ([1;v]^T [a;x])).
  // Verify via the defining property instead: apply H to the original.
  std::vector<double> orig = {3.0, 4.0, 0.0};
  const double vdot = orig[0] + v[1] * orig[1] + v[2] * orig[2];
  std::vector<double> h = {orig[0] - tau * vdot, orig[1] - tau * v[1] * vdot,
                           orig[2] - tau * v[2] * vdot};
  EXPECT_NEAR(h[0], alpha, 1e-14);
  EXPECT_NEAR(h[1], 0.0, 1e-14);
  EXPECT_NEAR(h[2], 0.0, 1e-14);
}

TEST(Larfg, ZeroTailGivesTauZero) {
  std::vector<double> v = {0.0, 0.0};
  double alpha = 2.5;
  const double tau = larfg(3, alpha, v.data(), 1);
  EXPECT_EQ(tau, 0.0);
  EXPECT_EQ(alpha, 2.5);
}

TEST(Larfg, LengthOneIsIdentity) {
  double alpha = -7.0;
  EXPECT_EQ(larfg(1, alpha, nullptr, 1), 0.0);
  EXPECT_EQ(alpha, -7.0);
}

TEST(Larfg, TinyValuesRescaled) {
  std::vector<double> v = {1e-310, 1e-310};
  double alpha = 1e-310;
  const double tau = larfg(3, alpha, v.data(), 1);
  EXPECT_TRUE(std::isfinite(tau));
  EXPECT_TRUE(std::isfinite(alpha));
  EXPECT_GT(std::abs(alpha), 0.0);
}

using QrShape = std::tuple<idx, idx>;

class Geqr2Shapes : public ::testing::TestWithParam<QrShape> {};

TEST_P(Geqr2Shapes, ResidualAndOrthogonality) {
  auto [m, n] = GetParam();
  Matrix a = random_matrix(m, n, 3);
  Matrix qr = a;
  std::vector<double> tau;
  geqr2(qr.view(), tau);
  EXPECT_LT(qr_residual(a, qr, tau), kResidualThreshold);
  const idx k = std::min(m, n);
  Matrix q(m, k);
  orgqr(qr.view().cols_range(0, k), tau, q.view());
  EXPECT_LT(orthogonality_residual(q), kResidualThreshold);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Geqr2Shapes,
                         ::testing::Values(QrShape{1, 1}, QrShape{5, 5},
                                           QrShape{10, 4}, QrShape{4, 10},
                                           QrShape{50, 20}, QrShape{64, 64},
                                           QrShape{33, 19}, QrShape{128, 1}));

TEST(Larft, ReproducesProductOfReflectors) {
  // Q from orgqr (product of H_j) must equal I - V T V^T.
  const idx m = 30, n = 8;
  Matrix a = random_matrix(m, n, 5);
  Matrix qr = a;
  std::vector<double> tau;
  geqr2(qr.view(), tau);

  Matrix t = Matrix::zeros(n, n);
  larft(qr.view(), tau.data(), t.view());

  // Apply I - V T V^T to the identity.
  Matrix c = Matrix::identity(m, m);
  larfb_left(blas::Trans::NoTrans, qr.view(), t.view(), c.view());

  Matrix q_full(m, m);
  // orgqr needs n <= cols <= m; build full Q by applying reflectors to I.
  set_identity(q_full.view());
  ormqr_left(blas::Trans::NoTrans, qr.view(), tau, q_full.view());
  EXPECT_TRUE(matrices_near(c, q_full, 1e-12));
}

TEST(LarfbLeft, TransIsInverseOfNoTrans) {
  const idx m = 40, n = 12, k = 10;
  Matrix a = random_matrix(m, k, 7);
  Matrix qr = a;
  std::vector<double> tau;
  geqr2(qr.view(), tau);
  Matrix t = Matrix::zeros(k, k);
  larft(qr.view(), tau.data(), t.view());

  Matrix c = random_matrix(m, n, 8);
  Matrix c0 = c;
  larfb_left(blas::Trans::NoTrans, qr.view(), t.view(), c.view());
  larfb_left(blas::Trans::Trans, qr.view(), t.view(), c.view());
  EXPECT_TRUE(matrices_near(c, c0, 1e-11));
}

TEST(LarfbLeft, MatchesReflectorLoop) {
  const idx m = 25, n = 9, k = 6;
  Matrix a = random_matrix(m, k, 9);
  Matrix qr = a;
  std::vector<double> tau;
  geqr2(qr.view(), tau);
  Matrix t = Matrix::zeros(k, k);
  larft(qr.view(), tau.data(), t.view());

  Matrix c1 = random_matrix(m, n, 10);
  Matrix c2 = c1;
  // Block application of Q^T...
  larfb_left(blas::Trans::Trans, qr.view(), t.view(), c1.view());
  // ...equals the reflector-by-reflector application.
  ormqr_left(blas::Trans::Trans, qr.view(), tau, c2.view());
  EXPECT_TRUE(matrices_near(c1, c2, 1e-12));
}

struct GeqrfParam {
  idx m, n, nb;
  bool recursive;
};

class GeqrfSweep : public ::testing::TestWithParam<GeqrfParam> {};

TEST_P(GeqrfSweep, ResidualAndOrthogonality) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.n, 11);
  Matrix qr = a;
  std::vector<double> tau;
  GeqrfOptions opts;
  opts.nb = p.nb;
  opts.recursive_panel = p.recursive;
  geqrf(qr.view(), tau, opts);
  EXPECT_LT(qr_residual(a, qr, tau), kResidualThreshold);
  const idx k = std::min(p.m, p.n);
  Matrix q(p.m, k);
  orgqr(qr.view().cols_range(0, k), tau, q.view());
  EXPECT_LT(orthogonality_residual(q), kResidualThreshold);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeqrfSweep,
    ::testing::Values(GeqrfParam{64, 64, 16, false},
                      GeqrfParam{64, 64, 16, true},
                      GeqrfParam{100, 100, 32, true},
                      GeqrfParam{127, 127, 32, true},
                      GeqrfParam{128, 40, 64, true},   // single-ish panel
                      GeqrfParam{128, 40, 100, true},  // nb > n
                      GeqrfParam{60, 200, 24, true},   // wide
                      GeqrfParam{97, 53, 13, false},
                      GeqrfParam{300, 150, 64, true}));

TEST(Geqrf, RMatchesUnblockedUpToSigns) {
  // R is unique up to row signs; with the same Householder convention the
  // blocked and unblocked factorizations agree exactly on distinct inputs.
  Matrix a = random_matrix(80, 40, 13);
  Matrix qr1 = a, qr2 = a, qr3 = a;
  std::vector<double> tau1, tau2, tau3;
  geqr2(qr1.view(), tau1);
  GeqrfOptions blocked;
  blocked.nb = 16;
  blocked.recursive_panel = false;
  geqrf(qr2.view(), tau2, blocked);
  GeqrfOptions recur;
  recur.nb = 16;
  recur.recursive_panel = true;
  geqrf(qr3.view(), tau3, recur);
  // Compare the R factors (upper triangles).
  Matrix r1 = extract_upper(qr1, 40);
  Matrix r2 = extract_upper(qr2, 40);
  Matrix r3 = extract_upper(qr3, 40);
  EXPECT_TRUE(matrices_near(r1, r2, 1e-10));
  EXPECT_TRUE(matrices_near(r1, r3, 1e-10));
}

class Geqr3Shapes : public ::testing::TestWithParam<QrShape> {};

TEST_P(Geqr3Shapes, ResidualAndTFactor) {
  auto [m, n] = GetParam();
  Matrix a = random_matrix(m, n, 15);
  Matrix qr = a;
  std::vector<double> tau;
  Matrix t = Matrix::zeros(n, n);
  geqr3(qr.view(), tau, t.view());
  EXPECT_LT(qr_residual(a, qr, tau), kResidualThreshold);

  // The returned T must satisfy: applying I - V T^T V^T ... i.e. the
  // block reflector from (V, T) equals the product of the reflectors.
  Matrix c1 = random_matrix(m, 7, 16);
  Matrix c2 = c1;
  larfb_left(blas::Trans::Trans, qr.view(), t.view(), c1.view());
  ormqr_left(blas::Trans::Trans, qr.view(), tau, c2.view());
  EXPECT_TRUE(matrices_near(c1, c2, 1e-11));
}

INSTANTIATE_TEST_SUITE_P(Shapes, Geqr3Shapes,
                         ::testing::Values(QrShape{1, 1}, QrShape{8, 8},
                                           QrShape{9, 9}, QrShape{16, 16},
                                           QrShape{40, 17}, QrShape{100, 64},
                                           QrShape{200, 100},
                                           QrShape{65, 33}));

TEST(Geqr3, MatchesGeqr2Factors) {
  Matrix a = random_matrix(60, 24, 19);
  Matrix qr1 = a, qr2 = a;
  std::vector<double> tau1, tau2;
  geqr2(qr1.view(), tau1);
  Matrix t = Matrix::zeros(24, 24);
  geqr3(qr2.view(), tau2, t.view());
  EXPECT_TRUE(matrices_near(qr1, qr2, 1e-10));
  for (std::size_t i = 0; i < tau1.size(); ++i) {
    EXPECT_NEAR(tau1[i], tau2[i], 1e-12);
  }
}

TEST(Orgqr, ColumnsAreOrthonormal) {
  Matrix a = random_matrix(50, 20, 21);
  Matrix qr = a;
  std::vector<double> tau;
  geqr2(qr.view(), tau);
  Matrix q = make_q(qr.view(), tau);
  EXPECT_LT(orthogonality_residual(q), kResidualThreshold);
}

TEST(OrmqrLeft, QtQIsIdentityAction) {
  const idx m = 30, k = 12;
  Matrix a = random_matrix(m, k, 23);
  Matrix qr = a;
  std::vector<double> tau;
  geqr2(qr.view(), tau);
  Matrix c = random_matrix(m, 5, 24);
  Matrix c0 = c;
  ormqr_left(blas::Trans::Trans, qr.view(), tau, c.view());
  ormqr_left(blas::Trans::NoTrans, qr.view(), tau, c.view());
  EXPECT_TRUE(matrices_near(c, c0, 1e-12));
}

TEST(OrmqrLeft, ReproducesRFromA) {
  // Q^T A = [R; 0].
  const idx m = 40, n = 15;
  Matrix a = random_matrix(m, n, 25);
  Matrix qr = a;
  std::vector<double> tau;
  geqr2(qr.view(), tau);
  Matrix qta = a;
  ormqr_left(blas::Trans::Trans, qr.view(), tau, qta.view());
  Matrix r = extract_upper(qr, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      EXPECT_NEAR(qta(i, j), r(i, j), 1e-11) << i << "," << j;
    }
    for (idx i = n; i < m; ++i) {
      EXPECT_NEAR(qta(i, j), 0.0, 1e-11);
    }
  }
}

TEST(Geqrf, RankDeficientStillOrthogonal) {
  Matrix a = random_rank_deficient_matrix(60, 30, 10, 27);
  Matrix qr = a;
  std::vector<double> tau;
  geqrf(qr.view(), tau);
  EXPECT_LT(qr_residual(a, qr, tau), kResidualThreshold);
  Matrix q(60, 30);
  orgqr(qr.view(), tau, q.view());
  EXPECT_LT(orthogonality_residual(q), kResidualThreshold);
}

TEST(Geqrf, ZeroMatrix) {
  Matrix a = Matrix::zeros(20, 10);
  Matrix qr = a;
  std::vector<double> tau;
  geqrf(qr.view(), tau);
  for (double t : tau) EXPECT_EQ(t, 0.0);
  EXPECT_EQ(norm_max(qr), 0.0);
}


TEST(Orgqr, MoreColumnsThanReflectors) {
  // Generate a 20-column orthonormal basis from 8 reflectors: the extra
  // columns are the reflected identity columns.
  const idx m = 40, k = 8, nq = 20;
  Matrix a = random_matrix(m, k, 301);
  Matrix qr = a;
  std::vector<double> tau;
  geqr2(qr.view(), tau);
  Matrix q(m, nq);
  orgqr(qr.view(), tau, q.view());
  EXPECT_LT(orthogonality_residual(q), kResidualThreshold);
  // First k columns reproduce A's column space: A = Q(:,1:k) R.
  Matrix r = extract_upper(qr, k);
  Matrix recon = Matrix::zeros(m, k);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0,
             q.view().cols_range(0, k), r, 0.0, recon.view());
  EXPECT_TRUE(test::matrices_near(recon, a, 1e-10 * 40));
}

TEST(Geqrf, ZeroColumnsIsNoop) {
  Matrix a(15, 0);
  std::vector<double> tau;
  geqrf(a.view(), tau);
  EXPECT_TRUE(tau.empty());
}

TEST(LarfbLeft, EmptyCIsNoop) {
  Matrix v = random_matrix(10, 4, 303);
  std::vector<double> tau;
  geqr2(v.view(), tau);
  Matrix t = Matrix::zeros(4, 4);
  larft(v.view(), tau.data(), t.view());
  Matrix c(10, 0);
  larfb_left(blas::Trans::Trans, v.view(), t.view(), c.view());
  SUCCEED();
}

}  // namespace
}  // namespace camult::lapack
