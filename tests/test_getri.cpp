// Matrix inverse and condition-number estimation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::lapack {
namespace {

TEST(Getri, InverseTimesASmallResidual) {
  for (idx n : {1, 2, 10, 64, 127}) {
    Matrix a = random_diagonally_dominant_matrix(n, 100 + n);
    Matrix lu = a;
    PivotVector ipiv;
    ASSERT_EQ(getrf(lu.view(), ipiv), 0);
    ASSERT_EQ(getri(lu.view(), ipiv), 0);

    // A * A^{-1} == I.
    Matrix prod = Matrix::identity(n, n);
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, lu, -1.0,
               prod.view());
    EXPECT_LT(norm_max(prod.view()), 1e-11 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(Getri, SingularReturnsInfo) {
  Matrix a = Matrix::zeros(6, 6);
  PivotVector ipiv;
  getrf(a.view(), ipiv);  // produces zero pivots
  EXPECT_GT(getri(a.view(), ipiv), 0);
}

TEST(Gecon, IdentityHasConditionOne) {
  const idx n = 30;
  Matrix a = Matrix::identity(n, n);
  const double anorm = norm_one(a);
  Matrix lu = a;
  PivotVector ipiv;
  ASSERT_EQ(getrf(lu.view(), ipiv), 0);
  const double kappa = gecon(lu, ipiv, anorm);
  EXPECT_NEAR(kappa, 1.0, 1e-10);
}

TEST(Gecon, DiagonalMatrixExact) {
  // diag(1, ..., 1, 1e-6): kappa_1 = 1e6.
  const idx n = 20;
  Matrix a = Matrix::identity(n, n);
  a(n - 1, n - 1) = 1e-6;
  const double anorm = norm_one(a);
  Matrix lu = a;
  PivotVector ipiv;
  ASSERT_EQ(getrf(lu.view(), ipiv), 0);
  const double kappa = gecon(lu, ipiv, anorm);
  EXPECT_GT(kappa, 1e5);  // estimator is a lower bound; must reach ~1e6
  EXPECT_LT(kappa, 2e6);
}

TEST(Gecon, TracksTrueConditionWithinSmallFactor) {
  // Compare against the exact kappa_1 computed from the explicit inverse.
  for (idx n : {15, 40, 90}) {
    Matrix a = random_matrix(n, n, 200 + n);
    const double anorm = norm_one(a);
    Matrix lu = a;
    PivotVector ipiv;
    ASSERT_EQ(getrf(lu.view(), ipiv), 0);
    const double est = gecon(lu, ipiv, anorm);

    Matrix inv = a;
    PivotVector ipiv2;
    ASSERT_EQ(getrf(inv.view(), ipiv2), 0);
    ASSERT_EQ(getri(inv.view(), ipiv2), 0);
    const double exact = anorm * norm_one(inv.view());

    EXPECT_LE(est, exact * 1.001) << "n=" << n;   // never exceeds the truth
    EXPECT_GE(est, exact * 0.1) << "n=" << n;     // within 10x below
  }
}

TEST(Gecon, SingularGivesInfinity) {
  Matrix a = Matrix::zeros(5, 5);
  PivotVector ipiv;
  getrf(a.view(), ipiv);
  EXPECT_TRUE(std::isinf(gecon(a.view(), ipiv, 0.0)));
}

}  // namespace
}  // namespace camult::lapack
