// Cholesky tests: unblocked/blocked/tiled factorization residuals, solve
// correctness, non-SPD detection, tile/blocked agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "lapack/potrf.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"
#include "tiled/tile_cholesky.hpp"

namespace camult {
namespace {

constexpr double kTol = 100.0;

// SPD matrix: B B^T + n I.
Matrix make_spd(idx n, std::uint64_t seed) {
  Matrix b = random_matrix(n, n, seed);
  Matrix a = Matrix::identity(n, n);
  for (idx i = 0; i < n; ++i) a(i, i) = static_cast<double>(n);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::Trans, 1.0, b, b, 1.0,
             a.view());
  return a;
}

class Potf2Shapes : public ::testing::TestWithParam<idx> {};

TEST_P(Potf2Shapes, ResidualSmall) {
  const idx n = GetParam();
  Matrix a = make_spd(n, 51);
  Matrix chol = a;
  ASSERT_EQ(lapack::potf2(chol.view()), 0);
  EXPECT_LT(lapack::cholesky_residual(a, chol), kTol);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Potf2Shapes,
                         ::testing::Values(1, 2, 5, 16, 33, 64));

struct PotrfParam {
  idx n, nb;
};

class PotrfSweep : public ::testing::TestWithParam<PotrfParam> {};

TEST_P(PotrfSweep, ResidualSmall) {
  const auto& p = GetParam();
  Matrix a = make_spd(p.n, 53);
  Matrix chol = a;
  lapack::PotrfOptions o;
  o.nb = p.nb;
  ASSERT_EQ(lapack::potrf(chol.view(), o), 0);
  EXPECT_LT(lapack::cholesky_residual(a, chol), kTol)
      << "n=" << p.n << " nb=" << p.nb;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PotrfSweep,
                         ::testing::Values(PotrfParam{64, 16},
                                           PotrfParam{100, 32},
                                           PotrfParam{127, 32},
                                           PotrfParam{128, 128},
                                           PotrfParam{200, 64},
                                           PotrfParam{97, 13}));

TEST(Potrf, SolveRecoversSolution) {
  const idx n = 120;
  Matrix a = make_spd(n, 55);
  Matrix x_true = random_matrix(n, 3, 56);
  Matrix b = Matrix::zeros(n, 3);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, x_true, 0.0,
             b.view());
  Matrix chol = a;
  ASSERT_EQ(lapack::potrf(chol.view()), 0);
  lapack::potrs(chol, b.view());
  EXPECT_LT(test::max_diff(b, x_true),
            1e-9 * std::max(1.0, norm_max(x_true)) * n);
}

TEST(Potrf, NonSpdDetected) {
  Matrix a = make_spd(20, 57);
  a(10, 10) = -5.0;  // break positive definiteness
  Matrix chol = a;
  const idx info = lapack::potrf(chol.view());
  EXPECT_GT(info, 0);
  EXPECT_LE(info, 11);
}

TEST(Potf2, IndefiniteMatrixInfoPosition) {
  Matrix a = Matrix::identity(5, 5);
  a(2, 2) = 0.0;
  EXPECT_EQ(lapack::potf2(a.view()), 3);
}

TEST(Potrf, UpperTriangleNotReferenced) {
  const idx n = 48;
  Matrix a = make_spd(n, 59);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < j; ++i) {
      a(i, j) = std::numeric_limits<double>::quiet_NaN();
    }
  }
  Matrix chol = a;
  ASSERT_EQ(lapack::potrf(chol.view()), 0);
  for (idx j = 0; j < n; ++j) {
    for (idx i = j; i < n; ++i) EXPECT_FALSE(std::isnan(chol(i, j)));
  }
}

struct TileCholParam {
  idx n, b;
  int threads;
};

class TileCholSweep : public ::testing::TestWithParam<TileCholParam> {};

TEST_P(TileCholSweep, ResidualSmall) {
  const auto& p = GetParam();
  Matrix a = make_spd(p.n, 61);
  Matrix chol = a;
  tiled::TileCholeskyOptions o;
  o.b = p.b;
  o.num_threads = p.threads;
  tiled::TileCholeskyResult r = tiled::tile_cholesky_factor(chol.view(), o);
  ASSERT_EQ(r.info, 0);
  EXPECT_LT(lapack::cholesky_residual(a, chol), kTol)
      << "n=" << p.n << " b=" << p.b;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TileCholSweep,
                         ::testing::Values(TileCholParam{64, 16, 2},
                                           TileCholParam{100, 32, 4},
                                           TileCholParam{130, 32, 2},
                                           TileCholParam{50, 50, 2},
                                           TileCholParam{96, 24, 0},
                                           TileCholParam{200, 64, 3}));

TEST(TileCholesky, MatchesBlockedExactly) {
  // Same arithmetic graph per tile column: results agree to rounding.
  const idx n = 120, b = 30;
  Matrix a = make_spd(n, 63);
  Matrix c1 = a, c2 = a;
  lapack::PotrfOptions po;
  po.nb = b;
  ASSERT_EQ(lapack::potrf(c1.view(), po), 0);
  tiled::TileCholeskyOptions to;
  to.b = b;
  to.num_threads = 2;
  ASSERT_EQ(tiled::tile_cholesky_factor(c2.view(), to).info, 0);
  for (idx j = 0; j < n; ++j) {
    for (idx i = j; i < n; ++i) {
      EXPECT_NEAR(c1(i, j), c2(i, j), 1e-9 * std::max(1.0, std::abs(c1(i, j))))
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST(TileCholesky, NonSpdReportsGlobalIndex) {
  Matrix a = make_spd(60, 65);
  a(45, 45) = -1.0;
  tiled::TileCholeskyOptions o;
  o.b = 20;
  o.num_threads = 2;
  tiled::TileCholeskyResult r = tiled::tile_cholesky_factor(a.view(), o);
  EXPECT_GT(r.info, 40);
  EXPECT_LE(r.info, 46);
}

TEST(TileCholesky, DeterministicAcrossThreads) {
  Matrix a = make_spd(150, 67);
  Matrix c0 = a, c4 = a;
  tiled::TileCholeskyOptions o;
  o.b = 25;
  o.num_threads = 0;
  tiled::tile_cholesky_factor(c0.view(), o);
  o.num_threads = 4;
  tiled::tile_cholesky_factor(c4.view(), o);
  // Compare lower triangles (upper is untouched input).
  for (idx j = 0; j < 150; ++j) {
    for (idx i = j; i < 150; ++i) EXPECT_EQ(c0(i, j), c4(i, j));
  }
}

}  // namespace
}  // namespace camult
