// Concurrency regression for the shared-PackedPanel protocol: one pack task
// per iteration publishes an immutable packed panel, many S tasks on other
// workers consume it concurrently (read-only) while the NEXT iteration's
// pack task runs in parallel, then a release task drops the panel so its
// slab recycles through a (different) thread's pool. This is exactly the
// CALU/CAQR trailing-update wiring, reduced to its synchronization skeleton.
//
// Run under ThreadSanitizer via tools/run_tsan.sh: the only happens-before
// between the pack and its consumers is the scheduler's dependency edge, so
// any missing ordering in TaskGraph or a hidden write in the "read-only"
// gemm_packed path surfaces here as a race.
#include <gtest/gtest.h>

#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "matrix/random.hpp"
#include "runtime/task_graph.hpp"

namespace camult {
namespace {

using blas::Trans;

struct Problem {
  idx m = 256, k = 32, segw = 24;
  idx segs = 12, iters = 8;
};

// C[iter] := A[iter] * B, one gemm_packed per column segment, packs shared.
std::vector<Matrix> run_pipeline(const Problem& pb, int threads) {
  std::vector<Matrix> as, cs;
  Matrix b = random_matrix(pb.k, pb.segw * pb.segs, 7);
  for (idx it = 0; it < pb.iters; ++it) {
    as.push_back(random_matrix(pb.m, pb.k, 100 + static_cast<unsigned>(it)));
    cs.push_back(Matrix::zeros(pb.m, pb.segw * pb.segs));
  }

  std::vector<blas::PackedPanel> packs(static_cast<std::size_t>(pb.iters));
  rt::TaskGraph graph({threads, false});
  for (idx it = 0; it < pb.iters; ++it) {
    const std::size_t slot = static_cast<std::size_t>(it);
    // Pack tasks have no cross-iteration deps: iteration it+1 packs while
    // iteration it's S tasks are still consuming their shared panel.
    rt::TaskOptions po;
    po.label = "pack";
    ConstMatrixView av = as[slot].view();
    const rt::TaskId pack_id = graph.submit({}, std::move(po), [&packs, slot, av]() {
      packs[slot] = blas::pack_a(av, Trans::NoTrans);
    });

    std::vector<rt::TaskId> s_ids;
    for (idx s = 0; s < pb.segs; ++s) {
      rt::TaskOptions so;
      so.label = "S";
      ConstMatrixView bv = b.view().block(0, s * pb.segw, pb.k, pb.segw);
      MatrixView cv = cs[slot].view().block(0, s * pb.segw, pb.m, pb.segw);
      s_ids.push_back(graph.submit({pack_id}, std::move(so),
                                   [&packs, slot, bv, cv]() {
                                     blas::gemm_packed(1.0, packs[slot],
                                                       Trans::NoTrans, bv,
                                                       0.0, cv);
                                   }));
    }

    // Release on whichever worker gets here: the slab migrates to that
    // thread's pool, exercising the cross-thread release path.
    rt::TaskOptions fo;
    fo.label = "packfree";
    graph.submit(s_ids, std::move(fo),
                 [&packs, slot]() { packs[slot] = blas::PackedPanel(); });
  }
  graph.wait();
  return cs;
}

TEST(PackConcurrency, SharedPanelManyConsumers) {
  const Problem pb;
  const std::vector<Matrix> got = run_pipeline(pb, 8);

  // Serial reference through the same packed path: results must be
  // bit-identical regardless of scheduling.
  const std::vector<Matrix> want = run_pipeline(pb, 0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(camult::test::max_diff(got[i].view(), want[i].view()), 0.0)
        << "iteration " << i;
  }
}

TEST(PackConcurrency, DeterministicAcrossRuns) {
  const Problem pb;
  const std::vector<Matrix> r1 = run_pipeline(pb, 4);
  const std::vector<Matrix> r2 = run_pipeline(pb, 6);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(camult::test::max_diff(r1[i].view(), r2[i].view()), 0.0)
        << "iteration " << i;
  }
}

// Pool behaviour under the pipeline: after a warmup run, a second identical
// run should be served (on this thread's share of the work) largely from
// pooled slabs — the pipeline must not allocate per S task.
TEST(PackConcurrency, SerialPipelineHitsPool) {
  const Problem pb;
  blas::buffer_pool_trim();
  run_pipeline(pb, 0);  // warmup: populates this thread's pool
  const auto warm = blas::buffer_pool_stats();
  run_pipeline(pb, 0);
  const auto after = blas::buffer_pool_stats();
  EXPECT_EQ(after.allocs, warm.allocs)
      << "steady-state pipeline must not touch operator new";
  EXPECT_GT(after.pool_hits, warm.pool_hits);
}

}  // namespace
}  // namespace camult
