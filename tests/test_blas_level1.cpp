// Tests for BLAS level-1 kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/level1.hpp"
#include "matrix/random.hpp"

namespace camult::blas {
namespace {

TEST(Iamax, FindsLargestMagnitude) {
  std::vector<double> x = {1.0, -5.0, 3.0, 4.0};
  EXPECT_EQ(iamax(4, x.data(), 1), 1);
}

TEST(Iamax, FirstOnTies) {
  std::vector<double> x = {2.0, -2.0, 2.0};
  EXPECT_EQ(iamax(3, x.data(), 1), 0);
}

TEST(Iamax, EmptyReturnsMinusOne) {
  EXPECT_EQ(iamax(0, nullptr, 1), -1);
}

TEST(Iamax, Strided) {
  std::vector<double> x = {1.0, 99.0, 2.0, 99.0, -7.0, 99.0};
  EXPECT_EQ(iamax(3, x.data(), 2), 2);
}

TEST(Swap, ExchangesStridedVectors) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {5, 6, 7, 8};
  swap(2, x.data(), 2, y.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{5, 2, 6, 4}));
  EXPECT_EQ(y, (std::vector<double>{1, 3, 7, 8}));
}

TEST(Scal, ScalesInPlace) {
  std::vector<double> x = {1, 2, 3};
  scal(3, -2.0, x.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{-2, -4, -6}));
}

TEST(Axpy, Accumulates) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  axpy(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Axpy, AlphaZeroIsNoop) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  axpy(3, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{10, 20, 30}));
}

TEST(Dot, Computes) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(3, x.data(), 1, y.data(), 1), 32.0);
}

TEST(Nrm2, PythagoreanTriple) {
  std::vector<double> x = {3, 4};
  EXPECT_DOUBLE_EQ(nrm2(2, x.data(), 1), 5.0);
}

TEST(Nrm2, AvoidsOverflow) {
  std::vector<double> x = {1e300, 1e300};
  EXPECT_TRUE(std::isfinite(nrm2(2, x.data(), 1)));
  EXPECT_NEAR(nrm2(2, x.data(), 1) / 1e300, std::sqrt(2.0), 1e-12);
}

TEST(Nrm2, AvoidsUnderflow) {
  std::vector<double> x = {1e-300, 1e-300};
  EXPECT_GT(nrm2(2, x.data(), 1), 0.0);
  EXPECT_NEAR(nrm2(2, x.data(), 1) / 1e-300, std::sqrt(2.0), 1e-12);
}

TEST(Nrm2, ZeroVector) {
  std::vector<double> x = {0.0, 0.0, 0.0};
  EXPECT_EQ(nrm2(3, x.data(), 1), 0.0);
}

TEST(Copy, CopiesStrided) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y(2, 0.0);
  copy(2, x.data(), 2, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{1, 3}));
}

TEST(Asum, SumsMagnitudes) {
  std::vector<double> x = {1, -2, 3};
  EXPECT_DOUBLE_EQ(asum(3, x.data(), 1), 6.0);
}

}  // namespace
}  // namespace camult::blas
