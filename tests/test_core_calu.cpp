// Multithreaded CALU tests: residual across shapes / Tr / trees / thread
// counts, agreement with getrf pivots for Tr=1, trace/DAG sanity, look-ahead
// policy, failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/test_utils.hpp"
#include "blas/blas.hpp"
#include "core/calu.hpp"
#include "core/lookahead.hpp"
#include "core/tslu.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"
#include "runtime/trace.hpp"

namespace camult::core {
namespace {

using camult::test::kResidualThreshold;

struct CaluParam {
  idx m, n, b, tr;
  int threads;
  ReductionTree tree;
};

class CaluSweep : public ::testing::TestWithParam<CaluParam> {};

TEST_P(CaluSweep, ResidualSmall) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.n, 71);
  Matrix lu = a;
  CaluOptions opts;
  opts.b = p.b;
  opts.tr = p.tr;
  opts.tree = p.tree;
  opts.num_threads = p.threads;
  CaluResult res = calu_factor(lu.view(), opts);
  EXPECT_EQ(res.info, 0);
  EXPECT_LT(lapack::lu_residual(a, lu, res.ipiv), kResidualThreshold)
      << "m=" << p.m << " n=" << p.n << " b=" << p.b << " tr=" << p.tr
      << " threads=" << p.threads;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CaluSweep,
    ::testing::Values(
        // Square, varying b/tr/threads.
        CaluParam{64, 64, 16, 2, 0, ReductionTree::Binary},
        CaluParam{64, 64, 16, 2, 2, ReductionTree::Binary},
        CaluParam{100, 100, 25, 4, 4, ReductionTree::Binary},
        CaluParam{100, 100, 25, 4, 4, ReductionTree::Flat},
        CaluParam{128, 128, 32, 4, 3, ReductionTree::Binary},
        CaluParam{130, 130, 32, 4, 2, ReductionTree::Binary},  // ragged
        // Tall and skinny (the paper's focus).
        CaluParam{400, 40, 20, 4, 4, ReductionTree::Binary},
        CaluParam{400, 40, 20, 8, 2, ReductionTree::Flat},
        CaluParam{1000, 30, 10, 8, 4, ReductionTree::Binary},
        CaluParam{513, 64, 16, 4, 2, ReductionTree::Binary},
        // Wide.
        CaluParam{60, 200, 20, 2, 2, ReductionTree::Binary},
        CaluParam{50, 128, 16, 4, 4, ReductionTree::Flat},
        // Single panel / b >= n.
        CaluParam{150, 20, 20, 4, 2, ReductionTree::Binary},
        CaluParam{150, 20, 64, 4, 2, ReductionTree::Binary},
        // b = 1 edge (every column a panel).
        CaluParam{20, 20, 1, 2, 2, ReductionTree::Binary},
        // Inline serial record mode on a tall case.
        CaluParam{600, 50, 25, 4, 0, ReductionTree::Binary}));

TEST(Calu, Tr1MatchesGetrfPivots) {
  // With a single panel task CALU is plain GEPP-based blocked LU: identical
  // pivot choices on distinct-magnitude inputs.
  Matrix a = random_distinct_magnitude_matrix(96, 96, 73);
  Matrix lu1 = a, lu2 = a;
  CaluOptions opts;
  opts.b = 16;
  opts.tr = 1;
  opts.num_threads = 2;
  CaluResult res = calu_factor(lu1.view(), opts);

  PivotVector ipiv2;
  lapack::GetrfOptions gopts;
  gopts.nb = 16;
  lapack::getrf(lu2.view(), ipiv2, gopts);
  EXPECT_EQ(res.ipiv, ipiv2);
  // Distinct-magnitude inputs have large entries; compare relative to the
  // factor magnitude.
  EXPECT_TRUE(
      test::matrices_near(lu1, lu2, 1e-13 * std::max(1.0, norm_max(lu2))));
}

TEST(Calu, DeterministicAcrossThreadCounts) {
  // The factorization output must not depend on the worker count (tasks are
  // the same; only the schedule differs).
  Matrix a = random_matrix(200, 80, 79);
  Matrix lu1 = a, lu2 = a, lu4 = a;
  CaluOptions o;
  o.b = 20;
  o.tr = 4;
  o.num_threads = 0;
  CaluResult r1 = calu_factor(lu1.view(), o);
  o.num_threads = 2;
  CaluResult r2 = calu_factor(lu2.view(), o);
  o.num_threads = 4;
  CaluResult r4 = calu_factor(lu4.view(), o);
  EXPECT_EQ(r1.ipiv, r2.ipiv);
  EXPECT_EQ(r1.ipiv, r4.ipiv);
  EXPECT_EQ(test::max_diff(lu1, lu2), 0.0);
  EXPECT_EQ(test::max_diff(lu1, lu4), 0.0);
}

TEST(Calu, TraceContainsAllTaskKinds) {
  Matrix a = random_matrix(160, 80, 83);
  CaluOptions o;
  o.b = 20;
  o.tr = 2;
  o.num_threads = 2;
  CaluResult r = calu_factor(a.view(), o);
  std::set<rt::TaskKind> kinds;
  for (const auto& t : r.trace) kinds.insert(t.kind);
  EXPECT_TRUE(kinds.count(rt::TaskKind::Panel));
  EXPECT_TRUE(kinds.count(rt::TaskKind::LFactor));
  EXPECT_TRUE(kinds.count(rt::TaskKind::UFactor));
  EXPECT_TRUE(kinds.count(rt::TaskKind::Update));
  EXPECT_FALSE(r.edges.empty());
}

// Regression: the candidate-slot dependency keys were once computed with a
// fixed per-iteration stride of 8192 slots, so a panel with more than 8192
// tournament leaves aliased iteration k's keys with iteration k+1's. The
// aliasing shows up as impossible Panel->Panel dependency edges that cross
// iterations (a tournament task only ever touches its own iteration's
// candidate slots, and no other key class is shared between Panel tasks of
// different iterations). This configuration (one-row blocks, Tr above the
// old stride) fails on the fixed-stride code.
TEST(Calu, WideTournamentKeysDoNotAliasAcrossIterations) {
  const idx m = 8400;
  Matrix a = random_matrix(m, 2, 417);
  Matrix lu = a;
  CaluOptions o;
  o.b = 1;
  o.tr = m;  // one leaf per row: more slots than the old fixed stride
  o.tree = ReductionTree::Flat;
  o.num_threads = 0;
  CaluResult r = calu_factor(lu.view(), o);
  ASSERT_EQ(r.info, 0);
  for (const auto& e : r.edges) {
    const auto& from = r.trace[static_cast<std::size_t>(e.from)];
    const auto& to = r.trace[static_cast<std::size_t>(e.to)];
    if (from.kind == rt::TaskKind::Panel && to.kind == rt::TaskKind::Panel) {
      EXPECT_EQ(from.iteration, to.iteration)
          << "spurious cross-iteration Panel edge " << e.from << " ("
          << from.label << ") -> " << e.to << " (" << to.label << ")";
    }
  }
  EXPECT_LT(lapack::lu_residual(a, lu, r.ipiv), kResidualThreshold);
}

TEST(Calu, TraceTimesRespectDependencies) {
  Matrix a = random_matrix(200, 100, 89);
  CaluOptions o;
  o.b = 25;
  o.tr = 2;
  o.num_threads = 3;
  CaluResult r = calu_factor(a.view(), o);
  // Every edge (u, v): v starts after u ends.
  for (const auto& e : r.edges) {
    const auto& from = r.trace[static_cast<std::size_t>(e.from)];
    const auto& to = r.trace[static_cast<std::size_t>(e.to)];
    EXPECT_GE(to.start_ns, from.end_ns)
        << "edge " << e.from << "->" << e.to << " violated";
  }
}

TEST(Calu, SingularMatrixReportsInfo) {
  Matrix a = random_matrix(60, 60, 91);
  for (idx i = 0; i < 60; ++i) a(i, 30) = 0.0;
  CaluOptions o;
  o.b = 15;
  o.tr = 2;
  o.num_threads = 2;
  CaluResult r = calu_factor(a.view(), o);
  EXPECT_EQ(r.info, 31);
}

TEST(Calu, GrowthModestOnRandom) {
  Matrix a = random_matrix(300, 300, 97);
  Matrix lu = a;
  CaluOptions o;
  o.b = 50;
  o.tr = 4;
  o.num_threads = 4;
  calu_factor(lu.view(), o);
  EXPECT_LT(lapack::pivot_growth(a, lu), 100.0);
}

TEST(Calu, SolvesLinearSystem) {
  const idx n = 120;
  Matrix a = random_matrix(n, n, 101);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = std::cos(static_cast<double>(i));
  }
  std::vector<double> bvec(static_cast<std::size_t>(n), 0.0);
  blas::gemv(blas::Trans::NoTrans, 1.0, a, x_true.data(), 1, 0.0, bvec.data(),
             1);

  Matrix lu = a;
  CaluOptions o;
  o.b = 30;
  o.tr = 4;
  o.num_threads = 2;
  CaluResult r = calu_factor(lu.view(), o);
  ASSERT_EQ(r.info, 0);

  MatrixView bv(bvec.data(), n, 1, n);
  lapack::laswp(bv, 0, n, r.ipiv);
  blas::trsv(blas::Uplo::Lower, blas::Trans::NoTrans, blas::Diag::Unit, lu,
             bvec.data(), 1);
  blas::trsv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit, lu,
             bvec.data(), 1);
  for (idx i = 0; i < n; ++i) {
    EXPECT_NEAR(bvec[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(Calu, LookaheadPrioritizesNextPanelPath) {
  Matrix a = random_matrix(160, 160, 103);
  CaluOptions o;
  o.b = 20;
  o.tr = 2;
  o.num_threads = 0;  // record mode: deterministic ids
  o.lookahead = true;
  CaluResult r = calu_factor(a.view(), o);
  // Find the U task of column k+1 at iteration k and check its priority
  // exceeds every other-U-column priority of the same iteration.
  int prio_next = -1, prio_other = -1;
  for (const auto& t : r.trace) {
    if (t.kind == rt::TaskKind::UFactor && t.iteration == 0) {
      if (t.label.find("j1") != std::string::npos && prio_next < 0) {
        prio_next = t.priority;
      }
      if (t.label.find("j3") != std::string::npos) prio_other = t.priority;
    }
  }
  ASSERT_GE(prio_next, 0);
  ASSERT_GE(prio_other, 0);
  EXPECT_GT(prio_next, prio_other);
}

TEST(Calu, LookaheadPriorityBandsDisjointAndOrderedAtScale) {
  // Regression for the fixed-constant scheme `1000000 - (k*1000 + (j-k))`,
  // which went negative (scrambling band order) once k*1000 + (j-k)
  // exceeded 1e6 — reachable within the paper's tall-skinny regime (e.g.
  // m = 1e6, b = 100 gives 1e4 panels) — and collided between different
  // (k, j) pairs once j - k >= 1000. The rescaled bands must stay positive,
  // disjoint, and correctly ordered for ANY problem size.
  for (const auto& [n_panels, n_blocks] : {std::pair<idx, idx>{4, 8},
                                           {100, 100},
                                           {20000, 4},   // old overflow regime
                                           {3, 4000}}) {  // old collision regime
    const LookaheadPriorities prio{n_panels, n_blocks, true};
    const idx k_probe[] = {0, n_panels / 2, n_panels - 1};
    for (idx k : k_probe) {
      // Top band: the panel path outranks everything, P above L, and both
      // decrease with k (earlier iterations are more urgent).
      EXPECT_GT(prio.panel(k), 0);
      EXPECT_EQ(prio.lfactor(k), prio.panel(k) - 1);
      if (k > 0) {
        EXPECT_LT(prio.panel(k), prio.panel(k - 1));
      }
      EXPECT_GT(prio.lfactor(k), prio.ufactor(k, k + 1));

      // Mid band: the look-ahead column k+1 outranks every trailing column
      // of the same iteration.
      if (k + 2 < n_blocks) {
        EXPECT_GT(prio.update(k, k + 1), prio.ufactor(k, k + 2));
        EXPECT_EQ(prio.update(k, k + 2), prio.ufactor(k, k + 2) - 1);
      }

      // Low band: strictly positive, each column's U above its S, ordered
      // by column within the iteration.
      const idx j0 = k + 2;
      if (j0 < n_blocks) {
        EXPECT_GT(prio.update(k, n_blocks - 1), 0);
        EXPECT_GT(prio.ufactor(k, j0), prio.update(k, j0));
        if (j0 + 1 < n_blocks) {
          EXPECT_GT(prio.update(k, j0), prio.ufactor(k, j0 + 1));
        }
      }
    }
    // No collision between distinct iterations' trailing cells (the old
    // scheme collided once j - k >= 1000).
    if (n_panels >= 2 && n_blocks >= 4) {
      EXPECT_NE(prio.ufactor(0, 3), prio.ufactor(1, 3));
      EXPECT_GT(prio.ufactor(0, 3), prio.ufactor(1, 3) - 1);
    }
  }

  // lookahead = false degenerates every priority to 0 (FIFO scheduling).
  const LookaheadPriorities flat{16, 16, false};
  EXPECT_EQ(flat.panel(3), 0);
  EXPECT_EQ(flat.lfactor(3), 0);
  EXPECT_EQ(flat.ufactor(3, 5), 0);
  EXPECT_EQ(flat.update(3, 5), 0);
}

TEST(Calu, MatchesSequentialTsluFactorsOnOnePanel) {
  // A single-panel CALU is exactly sequential TSLU.
  Matrix a = random_matrix(256, 32, 107);
  Matrix lu1 = a, lu2 = a;
  CaluOptions o;
  o.b = 32;
  o.tr = 4;
  o.num_threads = 2;
  o.tree = ReductionTree::Binary;
  CaluResult r = calu_factor(lu1.view(), o);

  PivotVector ipiv2;
  TsluOptions topts;
  topts.tr = 4;
  topts.tree = ReductionTree::Binary;
  tslu_factor(lu2.view(), ipiv2, topts);
  EXPECT_EQ(r.ipiv, ipiv2);
  EXPECT_EQ(test::max_diff(lu1, lu2), 0.0);
}

TEST(Calu, UpdateColumnBlockingMatchesBase) {
  // The Section V "B > b" extension changes task granularity, not results.
  Matrix a = random_matrix(160, 160, 111);
  Matrix lu1 = a, lu2 = a, lu3 = a;
  CaluOptions o;
  o.b = 20;
  o.tr = 2;
  o.num_threads = 2;
  o.update_cols_per_task = 1;
  CaluResult r1 = calu_factor(lu1.view(), o);
  o.update_cols_per_task = 3;
  CaluResult r2 = calu_factor(lu2.view(), o);
  o.update_cols_per_task = 100;  // all columns in one task
  CaluResult r3 = calu_factor(lu3.view(), o);
  EXPECT_EQ(r1.ipiv, r2.ipiv);
  EXPECT_EQ(r1.ipiv, r3.ipiv);
  EXPECT_EQ(test::max_diff(lu1, lu2), 0.0);
  EXPECT_EQ(test::max_diff(lu1, lu3), 0.0);
  // Fewer update tasks with larger B.
  EXPECT_LT(r2.trace.size(), r1.trace.size());
  EXPECT_LT(r3.trace.size(), r2.trace.size());
}


TEST(Calu, WorkStealingSchedulerSameResult) {
  Matrix a = random_matrix(180, 90, 113);
  Matrix lu1 = a, lu2 = a;
  CaluOptions o;
  o.b = 20;
  o.tr = 4;
  o.num_threads = 4;
  o.scheduler = rt::TaskGraph::Policy::CentralPriority;
  CaluResult r1 = calu_factor(lu1.view(), o);
  o.scheduler = rt::TaskGraph::Policy::WorkStealing;
  CaluResult r2 = calu_factor(lu2.view(), o);
  EXPECT_EQ(r1.ipiv, r2.ipiv);
  EXPECT_EQ(test::max_diff(lu1, lu2), 0.0);
}

TEST(Calu, EmptyishSmallestCases) {
  for (idx n : {1, 2, 3}) {
    Matrix a = random_matrix(n, n, 109 + n);
    Matrix lu = a;
    CaluOptions o;
    o.b = 1;
    o.tr = 2;
    o.num_threads = 1;
    CaluResult r = calu_factor(lu.view(), o);
    EXPECT_EQ(r.info, 0);
    EXPECT_LT(lapack::lu_residual(a, lu, r.ipiv), kResidualThreshold);
  }
}

}  // namespace
}  // namespace camult::core
