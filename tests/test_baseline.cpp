// Tests for the vendor-style blocked baselines: correctness (residuals,
// agreement with the sequential LAPACK drivers), DAG shape (serial panel on
// the critical path).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baseline/blocked.hpp"
#include "common/test_utils.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::baseline {
namespace {

using camult::test::kResidualThreshold;

struct Shape {
  idx m, n, nb;
  int threads;
};

class BlockedLuSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(BlockedLuSweep, ResidualSmall) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.n, 401);
  Matrix lu = a;
  BlockedOptions o;
  o.nb = p.nb;
  o.num_threads = p.threads;
  o.strips = 4;
  BlockedLuResult r = blocked_getrf(lu.view(), o);
  EXPECT_EQ(r.info, 0);
  EXPECT_LT(lapack::lu_residual(a, lu, r.ipiv), kResidualThreshold)
      << "m=" << p.m << " n=" << p.n << " nb=" << p.nb;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockedLuSweep,
    ::testing::Values(Shape{64, 64, 16, 2}, Shape{100, 100, 32, 4},
                      Shape{130, 130, 32, 2}, Shape{400, 40, 20, 4},
                      Shape{60, 200, 20, 2}, Shape{300, 300, 100, 3},
                      Shape{128, 128, 16, 0}));

TEST(BlockedLu, MatchesSequentialGetrf) {
  Matrix a = random_distinct_magnitude_matrix(120, 120, 403);
  Matrix lu1 = a, lu2 = a;
  BlockedOptions o;
  o.nb = 30;
  o.num_threads = 4;
  BlockedLuResult r = blocked_getrf(lu1.view(), o);

  PivotVector ipiv2;
  lapack::GetrfOptions g;
  g.nb = 30;
  lapack::getrf(lu2.view(), ipiv2, g);
  EXPECT_EQ(r.ipiv, ipiv2);
  EXPECT_TRUE(test::matrices_near(
      lu1, lu2, 1e-12 * std::max(1.0, norm_max(lu2))));
}

TEST(BlockedLu, PanelTasksAreSerialized) {
  Matrix a = random_matrix(200, 200, 405);
  BlockedOptions o;
  o.nb = 25;
  o.num_threads = 4;
  BlockedLuResult r = blocked_getrf(a.view(), o);
  std::vector<const rt::TaskRecord*> panels;
  for (const auto& t : r.trace) {
    if (t.kind == rt::TaskKind::Panel) panels.push_back(&t);
  }
  ASSERT_GT(panels.size(), 2u);
  for (std::size_t i = 1; i < panels.size(); ++i) {
    EXPECT_GE(panels[i]->start_ns, panels[i - 1]->end_ns)
        << "panel " << i << " overlapped its predecessor";
  }
}

class BlockedQrSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(BlockedQrSweep, ResidualAndOrthogonality) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.n, 407);
  Matrix qr = a;
  BlockedOptions o;
  o.nb = p.nb;
  o.num_threads = p.threads;
  BlockedQrResult r = blocked_geqrf(qr.view(), o);
  EXPECT_LT(lapack::qr_residual(a, qr, r.tau), kResidualThreshold);
  const idx k = std::min(p.m, p.n);
  Matrix q(p.m, k);
  lapack::orgqr(qr.view().cols_range(0, k), r.tau, q.view());
  EXPECT_LT(lapack::orthogonality_residual(q), kResidualThreshold);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockedQrSweep,
    ::testing::Values(Shape{64, 64, 16, 2}, Shape{100, 100, 32, 4},
                      Shape{130, 130, 32, 2}, Shape{400, 40, 20, 4},
                      Shape{60, 200, 20, 2}, Shape{256, 128, 64, 3},
                      Shape{128, 128, 16, 0}));

TEST(BlockedQr, MatchesSequentialGeqrf) {
  Matrix a = random_matrix(150, 90, 409);
  Matrix q1 = a, q2 = a;
  BlockedOptions o;
  o.nb = 30;
  o.num_threads = 2;
  BlockedQrResult r = blocked_geqrf(q1.view(), o);

  std::vector<double> tau2;
  lapack::GeqrfOptions g;
  g.nb = 30;
  g.recursive_panel = true;
  lapack::geqrf(q2.view(), tau2, g);
  EXPECT_TRUE(test::matrices_near(
      q1, q2, 1e-12 * std::max(1.0, norm_max(q2))));
  for (std::size_t i = 0; i < tau2.size(); ++i) {
    EXPECT_NEAR(r.tau[i], tau2[i], 1e-13);
  }
}

TEST(BlockedLu, SingularReportsGlobalInfo) {
  Matrix a = random_matrix(60, 60, 411);
  for (idx i = 0; i < 60; ++i) a(i, 45) = 0.0;
  BlockedOptions o;
  o.nb = 20;
  o.num_threads = 2;
  BlockedLuResult r = blocked_getrf(a.view(), o);
  EXPECT_EQ(r.info, 46);
}

TEST(BlockedLu, DeterministicAcrossThreads) {
  Matrix a = random_matrix(150, 150, 413);
  Matrix l0 = a, l4 = a;
  BlockedOptions o;
  o.nb = 25;
  o.num_threads = 0;
  BlockedLuResult r0 = blocked_getrf(l0.view(), o);
  o.num_threads = 4;
  BlockedLuResult r4 = blocked_getrf(l4.view(), o);
  EXPECT_EQ(r0.ipiv, r4.ipiv);
  EXPECT_EQ(test::max_diff(l0, l4), 0.0);
}

}  // namespace
}  // namespace camult::baseline
