// Adversarial numerics sweep: CALU and CAQR over hostile input ensembles
// (Wilkinson growth, near-singular, duplicate rows, rank-deficient, badly
// scaled), both reduction trees, asserting the backward-error bounds
// ||PA - LU|| / ||A|| resp. ||A - QR|| / ||A|| stay at the partial-pivoting
// / Householder level. These inputs stress the tournament-pivot and
// reflector paths that random well-conditioned matrices never do: pivot
// ties, zero pivots, 2^(n-1) growth and 2^40 dynamic range.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/test_utils.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/random.hpp"

namespace camult {
namespace {

using camult::test::AdversarialCase;
using camult::test::adversarial_cases;
using camult::test::kResidualThreshold;

struct AdvParam {
  idx m, n, b, tr;
  core::ReductionTree tree;
};

std::string tree_name(core::ReductionTree t) {
  return t == core::ReductionTree::Binary ? "binary" : "flat";
}

class AdversarialSweep : public ::testing::TestWithParam<AdvParam> {};

TEST_P(AdversarialSweep, CaluBackwardError) {
  const AdvParam& p = GetParam();
  for (const AdversarialCase& c : adversarial_cases(p.m, p.n, 911)) {
    const std::string what =
        c.name + " " + std::to_string(c.a.rows()) + "x" +
        std::to_string(c.a.cols()) + " tree=" + tree_name(p.tree);
    Matrix lu = c.a;
    core::CaluOptions opts;
    opts.b = p.b;
    opts.tr = p.tr;
    opts.tree = p.tree;
    opts.num_threads = 4;
    core::CaluResult res = core::calu_factor(lu.view(), opts);
    if (!c.singular) {
      EXPECT_EQ(res.info, 0) << what;
    }
    EXPECT_LT(lapack::lu_residual(c.a.view(), lu.view(), res.ipiv),
              kResidualThreshold)
        << what;
  }
}

TEST_P(AdversarialSweep, CaqrBackwardError) {
  const AdvParam& p = GetParam();
  for (const AdversarialCase& c : adversarial_cases(p.m, p.n, 913)) {
    const std::string what =
        c.name + " " + std::to_string(c.a.rows()) + "x" +
        std::to_string(c.a.cols()) + " tree=" + tree_name(p.tree);
    Matrix fact = c.a;
    core::CaqrOptions opts;
    opts.b = p.b;
    opts.tr = p.tr;
    opts.tree = p.tree;
    opts.num_threads = 4;
    core::CaqrResult res = core::caqr_factor(fact.view(), opts);
    EXPECT_LT(core::caqr_residual(c.a.view(), fact.view(), res),
              kResidualThreshold)
        << what;
    const Matrix q = core::caqr_explicit_q(fact.view(), res);
    EXPECT_LT(lapack::orthogonality_residual(q.view()), kResidualThreshold)
        << what;
  }
}

// The pack-once trailing update must be a pure replumbing: factoring with
// and without pack_trailing has to produce identical pivots and bits. The
// adversarial inputs make this a strong check — any divergence in the
// tournament or update path shows up as a pivot or bit difference.
TEST(AdversarialPackParity, CaluPackedMatchesUnpacked) {
  for (const AdversarialCase& c : adversarial_cases(180, 60, 917)) {
    Matrix packed = c.a;
    Matrix plain = c.a;
    core::CaluOptions opts;
    opts.b = 20;
    opts.tr = 4;
    opts.num_threads = 4;
    opts.pack_trailing = true;
    core::CaluResult rp = core::calu_factor(packed.view(), opts);
    opts.pack_trailing = false;
    core::CaluResult ru = core::calu_factor(plain.view(), opts);
    ASSERT_EQ(rp.ipiv.size(), ru.ipiv.size()) << c.name;
    for (std::size_t i = 0; i < rp.ipiv.size(); ++i) {
      EXPECT_EQ(rp.ipiv[i], ru.ipiv[i]) << c.name << " pivot " << i;
    }
    EXPECT_EQ(camult::test::max_diff(packed.view(), plain.view()), 0.0)
        << c.name;
  }
}

TEST(AdversarialPackParity, CaqrPackedMatchesUnpacked) {
  for (const AdversarialCase& c : adversarial_cases(180, 60, 919)) {
    Matrix packed = c.a;
    Matrix plain = c.a;
    core::CaqrOptions opts;
    opts.b = 20;
    opts.tr = 4;
    opts.num_threads = 4;
    opts.pack_trailing = true;
    core::caqr_factor(packed.view(), opts);
    opts.pack_trailing = false;
    core::caqr_factor(plain.view(), opts);
    EXPECT_EQ(camult::test::max_diff(packed.view(), plain.view()), 0.0)
        << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdversarialSweep,
    ::testing::Values(
        AdvParam{120, 120, 30, 4, core::ReductionTree::Binary},
        AdvParam{120, 120, 30, 4, core::ReductionTree::Flat},
        AdvParam{240, 60, 20, 4, core::ReductionTree::Binary},
        AdvParam{240, 60, 20, 4, core::ReductionTree::Flat}));

// ---- Health monitoring on poisoned / degenerate ensembles ---------------
//
// The monitor's contract: NaN/Inf inputs are FLAGGED but never trigger the
// GEPP fallback (GEPP on poison is equally lost); an exactly singular panel
// triggers the fallback and produces finite factors whose backward error
// matches plain GEPP; healthy inputs are bit-identical monitored or not.

bool all_finite(ConstMatrixView a) {
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      if (!std::isfinite(a(i, j))) return false;
    }
  }
  return true;
}

TEST(AdversarialHealth, CaluFlagsNanInputWithoutFallback) {
  Matrix a = camult::test::nan_seeded_matrix(96, 96, 1001);
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  core::CaluResult res = core::calu_factor(a.view(), opts);
  EXPECT_TRUE(res.health.nan_detected);
  EXPECT_EQ(res.health.fallback_panels, 0);
  EXPECT_TRUE(res.health.degraded());
}

TEST(AdversarialHealth, CaluFlagsInfInputWithoutFallback) {
  Matrix a = camult::test::inf_seeded_matrix(96, 96, 1003);
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  core::CaluResult res = core::calu_factor(a.view(), opts);
  EXPECT_TRUE(res.health.nan_detected);
  EXPECT_EQ(res.health.fallback_panels, 0);
}

TEST(AdversarialHealth, CaqrFlagsPoisonedInput) {
  for (const bool use_nan : {true, false}) {
    Matrix a = use_nan ? camult::test::nan_seeded_matrix(96, 64, 1005)
                       : camult::test::inf_seeded_matrix(96, 64, 1007);
    core::CaqrOptions opts;
    opts.b = 16;
    opts.tr = 2;
    opts.num_threads = 4;
    core::CaqrResult res = core::caqr_factor(a.view(), opts);
    EXPECT_TRUE(res.health.nan_detected) << (use_nan ? "nan" : "inf");
    EXPECT_EQ(res.health.fallback_panels, 0);
  }
}

TEST(AdversarialHealth, SingularPanelFallsBackAndStaysFinite) {
  // Column 3 is exactly zero: the tournament elects a zero pivot for panel
  // 0 and the monitor must refactor it with full-panel GEPP instead of
  // emitting a column of Inf.
  Matrix a = camult::test::zero_column_matrix(96, 96, 3, 1009);
  Matrix lu = a;
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  core::CaluResult res = core::calu_factor(lu.view(), opts);
  EXPECT_GE(res.health.fallback_panels, 1);
  ASSERT_FALSE(res.health.fallback_list.empty());
  EXPECT_EQ(res.health.fallback_list[0], 0);
  EXPECT_EQ(res.info, 4);  // 1-based first zero pivot
  EXPECT_TRUE(all_finite(lu.view()));

  // Backward error within 10x of a plain GEPP factorization of the same
  // matrix (the fallback IS GEPP on that panel, so this is loose).
  Matrix ref = a;
  PivotVector ref_ipiv;
  lapack::getf2(ref.view(), ref_ipiv);
  const double gepp_res = lapack::lu_residual(a.view(), ref.view(), ref_ipiv);
  const double calu_res = lapack::lu_residual(a.view(), lu.view(), res.ipiv);
  EXPECT_LT(calu_res, 10.0 * std::max(gepp_res, 1.0));
}

TEST(AdversarialHealth, SinglePanelFallbackIsBitwiseGepp) {
  // n == b: the whole factorization is one panel, and the fallback must
  // reproduce the recursive-GEPP kernel exactly — same pivots, same bits.
  Matrix a = camult::test::zero_column_matrix(64, 16, 2, 1011);
  Matrix lu = a;
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 4;
  opts.num_threads = 4;
  core::CaluResult res = core::calu_factor(lu.view(), opts);
  EXPECT_EQ(res.health.fallback_panels, 1);

  Matrix ref = a;
  PivotVector ref_ipiv;
  const idx ref_info = lapack::rgetf2(ref.view(), ref_ipiv);
  EXPECT_EQ(res.info, ref_info);
  ASSERT_EQ(res.ipiv.size(), ref_ipiv.size());
  for (std::size_t i = 0; i < ref_ipiv.size(); ++i) {
    EXPECT_EQ(res.ipiv[i], ref_ipiv[i]) << "pivot " << i;
  }
  EXPECT_EQ(camult::test::max_diff(lu.view(), ref.view()), 0.0);
}

TEST(AdversarialHealth, WilkinsonGrowthIsTrackedWithoutFallback) {
  // The GEPP worst-case growth matrix: large per-panel growth must be
  // REPORTED but stay under the default limit (Wilkinson is GEPP-stable in
  // the backward-error sense, so no intervention is warranted).
  Matrix a = gepp_growth_matrix(40);
  Matrix lu = a;
  core::CaluOptions opts;
  opts.b = 20;
  opts.tr = 2;
  opts.num_threads = 4;
  core::CaluResult res = core::calu_factor(lu.view(), opts);
  EXPECT_EQ(res.info, 0);
  EXPECT_EQ(res.health.fallback_panels, 0);
  EXPECT_GT(res.health.max_growth, 1e4);  // ~2^19 on the second panel
  EXPECT_FALSE(res.health.nan_detected);
}

TEST(AdversarialHealth, GrowthLimitTriggersFallback) {
  Matrix a = gepp_growth_matrix(40);
  Matrix lu = a;
  core::CaluOptions opts;
  opts.b = 20;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.growth_limit = 100.0;  // far below the ~2^19 panel growth
  core::CaluResult res = core::calu_factor(lu.view(), opts);
  EXPECT_EQ(res.info, 0);
  EXPECT_GE(res.health.fallback_panels, 1);
  EXPECT_LT(lapack::lu_residual(a.view(), lu.view(), res.ipiv),
            kResidualThreshold);
}

TEST(AdversarialHealth, MonitorOnOffIsBitIdenticalOnHealthyInput) {
  Matrix a = random_matrix(96, 96, 1013);
  Matrix monitored = a;
  Matrix plain = a;
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.monitor = true;
  core::CaluResult rm = core::calu_factor(monitored.view(), opts);
  opts.monitor = false;
  core::CaluResult rp = core::calu_factor(plain.view(), opts);
  EXPECT_EQ(rm.ipiv, rp.ipiv);
  EXPECT_EQ(camult::test::max_diff(monitored.view(), plain.view()), 0.0);
  EXPECT_GT(rm.health.max_growth, 0.0);
  EXPECT_EQ(rm.health.fallback_panels, 0);
  EXPECT_FALSE(rp.health.degraded());
}

TEST(AdversarialHealth, CaqrReportsGrowthOnHealthyInput) {
  Matrix a = random_matrix(96, 64, 1015);
  core::CaqrOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  core::CaqrResult res = core::caqr_factor(a.view(), opts);
  EXPECT_FALSE(res.health.nan_detected);
  EXPECT_EQ(res.health.fallback_panels, 0);
  EXPECT_GT(res.health.max_growth, 0.0);
}

}  // namespace
}  // namespace camult
