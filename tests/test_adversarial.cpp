// Adversarial numerics sweep: CALU and CAQR over hostile input ensembles
// (Wilkinson growth, near-singular, duplicate rows, rank-deficient, badly
// scaled), both reduction trees, asserting the backward-error bounds
// ||PA - LU|| / ||A|| resp. ||A - QR|| / ||A|| stay at the partial-pivoting
// / Householder level. These inputs stress the tournament-pivot and
// reflector paths that random well-conditioned matrices never do: pivot
// ties, zero pivots, 2^(n-1) growth and 2^40 dynamic range.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/test_utils.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/random.hpp"

namespace camult {
namespace {

using camult::test::AdversarialCase;
using camult::test::adversarial_cases;
using camult::test::kResidualThreshold;

struct AdvParam {
  idx m, n, b, tr;
  core::ReductionTree tree;
};

std::string tree_name(core::ReductionTree t) {
  return t == core::ReductionTree::Binary ? "binary" : "flat";
}

class AdversarialSweep : public ::testing::TestWithParam<AdvParam> {};

TEST_P(AdversarialSweep, CaluBackwardError) {
  const AdvParam& p = GetParam();
  for (const AdversarialCase& c : adversarial_cases(p.m, p.n, 911)) {
    const std::string what =
        c.name + " " + std::to_string(c.a.rows()) + "x" +
        std::to_string(c.a.cols()) + " tree=" + tree_name(p.tree);
    Matrix lu = c.a;
    core::CaluOptions opts;
    opts.b = p.b;
    opts.tr = p.tr;
    opts.tree = p.tree;
    opts.num_threads = 4;
    core::CaluResult res = core::calu_factor(lu.view(), opts);
    if (!c.singular) {
      EXPECT_EQ(res.info, 0) << what;
    }
    EXPECT_LT(lapack::lu_residual(c.a.view(), lu.view(), res.ipiv),
              kResidualThreshold)
        << what;
  }
}

TEST_P(AdversarialSweep, CaqrBackwardError) {
  const AdvParam& p = GetParam();
  for (const AdversarialCase& c : adversarial_cases(p.m, p.n, 913)) {
    const std::string what =
        c.name + " " + std::to_string(c.a.rows()) + "x" +
        std::to_string(c.a.cols()) + " tree=" + tree_name(p.tree);
    Matrix fact = c.a;
    core::CaqrOptions opts;
    opts.b = p.b;
    opts.tr = p.tr;
    opts.tree = p.tree;
    opts.num_threads = 4;
    core::CaqrResult res = core::caqr_factor(fact.view(), opts);
    EXPECT_LT(core::caqr_residual(c.a.view(), fact.view(), res),
              kResidualThreshold)
        << what;
    const Matrix q = core::caqr_explicit_q(fact.view(), res);
    EXPECT_LT(lapack::orthogonality_residual(q.view()), kResidualThreshold)
        << what;
  }
}

// The pack-once trailing update must be a pure replumbing: factoring with
// and without pack_trailing has to produce identical pivots and bits. The
// adversarial inputs make this a strong check — any divergence in the
// tournament or update path shows up as a pivot or bit difference.
TEST(AdversarialPackParity, CaluPackedMatchesUnpacked) {
  for (const AdversarialCase& c : adversarial_cases(180, 60, 917)) {
    Matrix packed = c.a;
    Matrix plain = c.a;
    core::CaluOptions opts;
    opts.b = 20;
    opts.tr = 4;
    opts.num_threads = 4;
    opts.pack_trailing = true;
    core::CaluResult rp = core::calu_factor(packed.view(), opts);
    opts.pack_trailing = false;
    core::CaluResult ru = core::calu_factor(plain.view(), opts);
    ASSERT_EQ(rp.ipiv.size(), ru.ipiv.size()) << c.name;
    for (std::size_t i = 0; i < rp.ipiv.size(); ++i) {
      EXPECT_EQ(rp.ipiv[i], ru.ipiv[i]) << c.name << " pivot " << i;
    }
    EXPECT_EQ(camult::test::max_diff(packed.view(), plain.view()), 0.0)
        << c.name;
  }
}

TEST(AdversarialPackParity, CaqrPackedMatchesUnpacked) {
  for (const AdversarialCase& c : adversarial_cases(180, 60, 919)) {
    Matrix packed = c.a;
    Matrix plain = c.a;
    core::CaqrOptions opts;
    opts.b = 20;
    opts.tr = 4;
    opts.num_threads = 4;
    opts.pack_trailing = true;
    core::caqr_factor(packed.view(), opts);
    opts.pack_trailing = false;
    core::caqr_factor(plain.view(), opts);
    EXPECT_EQ(camult::test::max_diff(packed.view(), plain.view()), 0.0)
        << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdversarialSweep,
    ::testing::Values(
        AdvParam{120, 120, 30, 4, core::ReductionTree::Binary},
        AdvParam{120, 120, 30, 4, core::ReductionTree::Flat},
        AdvParam{240, 60, 20, 4, core::ReductionTree::Binary},
        AdvParam{240, 60, 20, 4, core::ReductionTree::Flat}));

}  // namespace
}  // namespace camult
