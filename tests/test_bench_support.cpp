// Tests for the benchmark support library: flop formulas, env parsing,
// the measurement protocol, and the table printer's CSV mirror.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_support/flops.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "runtime/task_graph.hpp"

namespace camult::bench {
namespace {

TEST(Flops, SquareLuIsTwoThirdsCubed) {
  EXPECT_NEAR(lu_flops(300, 300), 2.0 / 3.0 * 300.0 * 300.0 * 300.0, 1.0);
}

TEST(Flops, TallLuMatchesFormula) {
  // m >> n (k = n): reduces to m n^2 - n^3/3 ~ 1e8 here.
  const double f = lu_flops(10000, 100);
  EXPECT_NEAR(f, 10000.0 * 100.0 * 100.0 - 1e6 / 3.0, 1e3);
}

TEST(Flops, QrTallAndWideSymmetry) {
  EXPECT_NEAR(qr_flops(100, 100), qr_flops(100, 100), 0.0);
  EXPECT_NEAR(qr_flops(500, 100), 2.0 * 100.0 * 100.0 * (500.0 - 100.0 / 3.0),
              1.0);
  // Wide uses the transposed formula.
  EXPECT_NEAR(qr_flops(100, 500), qr_flops(500, 100), 1e-6);
}

TEST(Flops, GflopsGuardsZeroTime) {
  EXPECT_EQ(gflops(1e9, 0.0), 0.0);
  EXPECT_NEAR(gflops(2e9, 1.0), 2.0, 1e-12);
}

TEST(EnvParsing, DefaultsWhenUnset) {
  unsetenv("CAMULT_TEST_ENV_X");
  EXPECT_EQ(env_idx("CAMULT_TEST_ENV_X", 42), 42);
  const auto v = env_idx_list("CAMULT_TEST_ENV_X", {1, 2});
  EXPECT_EQ(v, (std::vector<idx>{1, 2}));
}

TEST(EnvParsing, ParsesValues) {
  setenv("CAMULT_TEST_ENV_X", "123", 1);
  EXPECT_EQ(env_idx("CAMULT_TEST_ENV_X", 42), 123);
  setenv("CAMULT_TEST_ENV_X", "10,20,30", 1);
  const auto v = env_idx_list("CAMULT_TEST_ENV_X", {1});
  EXPECT_EQ(v, (std::vector<idx>{10, 20, 30}));
  unsetenv("CAMULT_TEST_ENV_X");
}

TEST(Measure, SimulatedModeUsesRecordedDurations) {
  unsetenv("CAMULT_BENCH_REAL");
  // A competitor that produces 4 equal independent tasks.
  auto run = [](int threads) {
    rt::TaskGraph g({threads, true});
    for (int i = 0; i < 4; ++i) {
      g.submit({}, {}, [] {
        double s = 0;
        for (int k = 0; k < 200000; ++k) s += k * 0.5;
        volatile double sink = s;
        (void)sink;
      });
    }
    g.wait();
    return RunArtifacts{g.trace(), g.edges()};
  };
  // 4 independent equal tasks: 4 cores ≈ 4x faster than 1 core (exact in
  // the simulator up to per-run duration noise). The recorded durations are
  // wall-clock, so a loaded machine (ctest runs suites in parallel) can
  // skew a single pair of runs well outside the nominal ratio — retry a few
  // times and accept any in-band measurement.
  Measurement m1, m4;
  double ratio = 0.0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    m1 = measure(run, 1e6, 1);
    m4 = measure(run, 1e6, 4);
    ratio = m1.seconds / m4.seconds;
    if (ratio > 2.0 && ratio < 6.0) break;
  }
  EXPECT_GT(m1.seconds, 0.0);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 6.0);
  EXPECT_GT(m4.gflops, m1.gflops);
  // Bounds reported.
  EXPECT_GT(m1.total_work_s, 0.0);
  EXPECT_GE(m1.seconds + 1e-12, m1.critical_path_s);
}

TEST(Table, CsvMirrorMatchesCells) {
  Table t({"a", "b"});
  t.row().cell("x").cell(1.5, 1);
  t.row().cell(static_cast<long long>(7)).cell("y");
  const std::string path = "/tmp/camult_table_test.csv";
  // print() writes CSV when given a path; stdout output is not captured.
  t.print("", path);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,1.5");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "7,y");
  std::remove(path.c_str());
}

TEST(CsvPath, EmptyWithoutEnv) {
  unsetenv("CAMULT_BENCH_CSV");
  EXPECT_TRUE(csv_path("foo").empty());
  setenv("CAMULT_BENCH_CSV", "/tmp", 1);
  EXPECT_EQ(csv_path("foo"), "/tmp/foo.csv");
  unsetenv("CAMULT_BENCH_CSV");
}

}  // namespace
}  // namespace camult::bench
