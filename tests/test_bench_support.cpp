// Tests for the benchmark support library: flop formulas, env parsing,
// the measurement protocol, and the table printer's CSV mirror.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "bench_support/flops.hpp"
#include "bench_support/json.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/trace.hpp"

namespace camult::bench {
namespace {

TEST(Flops, SquareLuIsTwoThirdsCubed) {
  EXPECT_NEAR(lu_flops(300, 300), 2.0 / 3.0 * 300.0 * 300.0 * 300.0, 1.0);
}

TEST(Flops, TallLuMatchesFormula) {
  // m >> n (k = n): reduces to m n^2 - n^3/3 ~ 1e8 here.
  const double f = lu_flops(10000, 100);
  EXPECT_NEAR(f, 10000.0 * 100.0 * 100.0 - 1e6 / 3.0, 1e3);
}

TEST(Flops, QrTallAndWideSymmetry) {
  EXPECT_NEAR(qr_flops(100, 100), qr_flops(100, 100), 0.0);
  EXPECT_NEAR(qr_flops(500, 100), 2.0 * 100.0 * 100.0 * (500.0 - 100.0 / 3.0),
              1.0);
  // Wide uses the transposed formula.
  EXPECT_NEAR(qr_flops(100, 500), qr_flops(500, 100), 1e-6);
}

TEST(Flops, GflopsGuardsZeroTime) {
  EXPECT_EQ(gflops(1e9, 0.0), 0.0);
  EXPECT_NEAR(gflops(2e9, 1.0), 2.0, 1e-12);
}

TEST(EnvParsing, DefaultsWhenUnset) {
  unsetenv("CAMULT_TEST_ENV_X");
  EXPECT_EQ(env_idx("CAMULT_TEST_ENV_X", 42), 42);
  const auto v = env_idx_list("CAMULT_TEST_ENV_X", {1, 2});
  EXPECT_EQ(v, (std::vector<idx>{1, 2}));
}

TEST(EnvParsing, ParsesValues) {
  setenv("CAMULT_TEST_ENV_X", "123", 1);
  EXPECT_EQ(env_idx("CAMULT_TEST_ENV_X", 42), 123);
  setenv("CAMULT_TEST_ENV_X", "10,20,30", 1);
  const auto v = env_idx_list("CAMULT_TEST_ENV_X", {1});
  EXPECT_EQ(v, (std::vector<idx>{10, 20, 30}));
  unsetenv("CAMULT_TEST_ENV_X");
}

TEST(EnvParsing, MalformedScalarFallsBackToDefault) {
  // Trailing garbage used to be silently truncated by strtoll ("8x" -> 8);
  // the strict parser must warn and keep the default instead.
  setenv("CAMULT_TEST_ENV_X", "8x", 1);
  EXPECT_EQ(env_idx("CAMULT_TEST_ENV_X", 42), 42);
  setenv("CAMULT_TEST_ENV_X", "abc", 1);
  EXPECT_EQ(env_idx("CAMULT_TEST_ENV_X", 42), 42);
  setenv("CAMULT_TEST_ENV_X", "", 1);
  EXPECT_EQ(env_idx("CAMULT_TEST_ENV_X", 42), 42);
  // Out of long long range -> ERANGE -> default, not a saturated value.
  setenv("CAMULT_TEST_ENV_X", "999999999999999999999999999", 1);
  EXPECT_EQ(env_idx("CAMULT_TEST_ENV_X", 42), 42);
  unsetenv("CAMULT_TEST_ENV_X");
}

TEST(EnvParsing, MalformedListTokenFallsBackWholeList) {
  // One bad token invalidates the whole list: a partially-applied sweep
  // (e.g. {10, 30} from "10,2x,30") would silently bench the wrong shapes.
  setenv("CAMULT_TEST_ENV_X", "10,2x,30", 1);
  EXPECT_EQ(env_idx_list("CAMULT_TEST_ENV_X", {7}), (std::vector<idx>{7}));
  setenv("CAMULT_TEST_ENV_X", "10,abc", 1);
  EXPECT_EQ(env_idx_list("CAMULT_TEST_ENV_X", {7}), (std::vector<idx>{7}));
  // Empty tokens (stray/trailing commas) are skipped, not errors.
  setenv("CAMULT_TEST_ENV_X", "10,,30,", 1);
  EXPECT_EQ(env_idx_list("CAMULT_TEST_ENV_X", {7}),
            (std::vector<idx>{10, 30}));
  unsetenv("CAMULT_TEST_ENV_X");
}

TEST(TraceStatsClamp, IdleFractionStaysInUnitInterval) {
  std::vector<rt::TaskRecord> records(2);
  records[0].id = 0;
  records[0].worker = 0;
  records[0].start_ns = 0;
  records[0].end_ns = 100;
  records[1].id = 1;
  records[1].worker = 1;
  records[1].start_ns = 0;
  records[1].end_ns = 100;

  // Two workers genuinely busy the whole time: zero idle.
  const rt::TraceStats both = rt::compute_stats(records, 2);
  EXPECT_GE(both.idle_fraction, 0.0);
  EXPECT_LE(both.idle_fraction, 1.0);

  // Caller understates the worker count (overlapping records, 1 "worker"):
  // busy > makespan * workers used to drive idle_fraction negative.
  const rt::TraceStats under = rt::compute_stats(records, 1);
  EXPECT_GE(under.idle_fraction, 0.0);
  EXPECT_LE(under.idle_fraction, 1.0);

  // Zero-width trace: makespan 0 must not divide; idle stays 0.
  std::vector<rt::TaskRecord> flat(1);
  flat[0].id = 0;
  flat[0].worker = 0;
  flat[0].start_ns = 50;
  flat[0].end_ns = 50;
  const rt::TraceStats zero = rt::compute_stats(flat, 4);
  EXPECT_EQ(zero.idle_fraction, 0.0);
}

TEST(Measure, SimulatedModeUsesRecordedDurations) {
  unsetenv("CAMULT_BENCH_REAL");
  // A competitor that produces 4 equal independent tasks.
  auto run = [](int threads) {
    rt::TaskGraph g({threads, true});
    for (int i = 0; i < 4; ++i) {
      g.submit({}, {}, [] {
        double s = 0;
        for (int k = 0; k < 200000; ++k) s += k * 0.5;
        volatile double sink = s;
        (void)sink;
      });
    }
    g.wait();
    return RunArtifacts{g.trace(), g.edges(), g.stats()};
  };
  // 4 independent equal tasks: 4 cores ≈ 4x faster than 1 core (exact in
  // the simulator up to per-run duration noise). The recorded durations are
  // wall-clock, so a loaded machine (ctest runs suites in parallel) can
  // skew a single pair of runs well outside the nominal ratio — retry a few
  // times and accept any in-band measurement.
  Measurement m1, m4;
  double ratio = 0.0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    m1 = measure(run, 1e6, 1);
    m4 = measure(run, 1e6, 4);
    ratio = m1.seconds / m4.seconds;
    if (ratio > 2.0 && ratio < 6.0) break;
  }
  EXPECT_GT(m1.seconds, 0.0);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 6.0);
  EXPECT_GT(m4.gflops, m1.gflops);
  // Bounds reported.
  EXPECT_GT(m1.total_work_s, 0.0);
  EXPECT_GE(m1.seconds + 1e-12, m1.critical_path_s);
}

TEST(Table, CsvMirrorMatchesCells) {
  Table t({"a", "b"});
  t.row().cell("x").cell(1.5, 1);
  t.row().cell(static_cast<long long>(7)).cell("y");
  const std::string path = "/tmp/camult_table_test.csv";
  // print() writes CSV when given a path; stdout output is not captured.
  t.print("", path);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,1.5");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "7,y");
  std::remove(path.c_str());
}

TEST(CsvPath, EmptyWithoutEnv) {
  unsetenv("CAMULT_BENCH_CSV");
  EXPECT_TRUE(csv_path("foo").empty());
  setenv("CAMULT_BENCH_CSV", "/tmp", 1);
  EXPECT_EQ(csv_path("foo"), "/tmp/foo.csv");
  unsetenv("CAMULT_BENCH_CSV");
}

// --- minimal JSON library --------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").boolean);
  EXPECT_FALSE(JsonValue::parse("false").boolean);
  EXPECT_EQ(JsonValue::parse("42").number, 42.0);
  EXPECT_EQ(JsonValue::parse("-1.5e2").number, -150.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").string, "hi");
}

TEST(Json, ParsesNestedContainers) {
  const JsonValue v =
      JsonValue::parse("{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.0);
  EXPECT_TRUE(a->array[2].find("b")->is_null());
  EXPECT_EQ(v.find("c")->string, "x");
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(JsonValue::parse("\"a\\\"b\\\\c\\nd\\t\"").string,
            "a\"b\\c\nd\t");
  EXPECT_EQ(JsonValue::parse("\"\\u0041\\u00e9\"").string, "A\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(JsonValue::parse("\"\\ud83d\\ude00\"").string,
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);  // trailing
  EXPECT_THROW(JsonValue::parse("\"\\ud83d\""), std::runtime_error);
}

TEST(Json, DumpRoundTripsThroughParse) {
  JsonValue obj = JsonValue::make_object();
  obj.set("name", JsonValue::make_string("quote \" slash \\ nl \n"));
  obj.set("count", JsonValue::make_number(12345));
  obj.set("ratio", JsonValue::make_number(0.5));
  JsonValue arr = JsonValue::make_array();
  arr.array.push_back(JsonValue::make_bool(true));
  arr.array.push_back(JsonValue::make_null());
  obj.set("flags", std::move(arr));

  const JsonValue back = JsonValue::parse(obj.dump());
  EXPECT_EQ(back.find("name")->string, "quote \" slash \\ nl \n");
  EXPECT_EQ(back.find("count")->number, 12345.0);
  EXPECT_EQ(back.find("ratio")->number, 0.5);
  EXPECT_TRUE(back.find("flags")->array[0].boolean);
  EXPECT_TRUE(back.find("flags")->array[1].is_null());
}

TEST(Json, IntegralNumbersPrintWithoutDecimalNoise) {
  EXPECT_EQ(JsonValue::make_number(7).dump(), "7");
  EXPECT_EQ(JsonValue::make_number(-3.0).dump(), "-3");
  // Non-integral values keep full precision through a round-trip.
  const double pi = 3.141592653589793;
  EXPECT_EQ(JsonValue::parse(JsonValue::make_number(pi).dump()).number, pi);
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_TRUE(JsonValue::make_number(std::nan("")).is_null());
  EXPECT_TRUE(
      JsonValue::make_number(std::numeric_limits<double>::infinity())
          .is_null());
}

TEST(Json, SetReplacesExistingKeyAndPreservesOrder) {
  JsonValue obj = JsonValue::make_object();
  obj.set("first", JsonValue::make_number(1));
  obj.set("second", JsonValue::make_number(2));
  obj.set("first", JsonValue::make_number(10));
  ASSERT_EQ(obj.object.size(), 2u);
  EXPECT_EQ(obj.object[0].first, "first");
  EXPECT_EQ(obj.object[0].second.number, 10.0);
  EXPECT_EQ(obj.object[1].first, "second");
}

}  // namespace
}  // namespace camult::bench
