// TSQR tests: leaf/node kernels, residual, orthogonality, R uniqueness
// across tree shapes and against geqrf, implicit-Q application.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "core/tsqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::core {
namespace {

using camult::test::kResidualThreshold;
using camult::test::matrices_near;

// ||A - QR|| via the implicit Q.
double tsqr_residual(ConstMatrixView a_orig, ConstMatrixView a_fact,
                     const TsqrFactors& f) {
  Matrix qr = Matrix::zeros(f.m, f.n);
  Matrix r = tsqr_extract_r(a_fact, f);
  copy_into(r.view(), qr.view().rows_range(0, f.n));
  tsqr_apply_q(blas::Trans::NoTrans, a_fact, f, qr.view());
  double num = 0;
  for (idx j = 0; j < f.n; ++j) {
    for (idx i = 0; i < f.m; ++i) {
      const double d = qr(i, j) - a_orig(i, j);
      num += d * d;
    }
  }
  return std::sqrt(num) /
         (norm_fro(a_orig) * static_cast<double>(f.m) *
          std::numeric_limits<double>::epsilon());
}

struct TsqrParam {
  idx m, n, tr;
  ReductionTree tree;
};

class TsqrSweep : public ::testing::TestWithParam<TsqrParam> {};

TEST_P(TsqrSweep, ResidualAndOrthogonality) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.n, 31);
  Matrix fact = a;
  TsqrOptions opts;
  opts.tr = p.tr;
  opts.tree = p.tree;
  TsqrFactors f = tsqr_factor(fact.view(), opts);

  EXPECT_LT(tsqr_residual(a, fact, f), kResidualThreshold);
  Matrix q = tsqr_explicit_q(fact.view(), f);
  EXPECT_LT(lapack::orthogonality_residual(q), kResidualThreshold);

  // R must be upper triangular with the same column norms as A (up to sign):
  // verify via R^T R == A^T A within tolerance.
  Matrix r = tsqr_extract_r(fact.view(), f);
  Matrix rtr = Matrix::zeros(p.n, p.n);
  Matrix ata = Matrix::zeros(p.n, p.n);
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, r, r, 0.0,
             rtr.view());
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, a, a, 0.0,
             ata.view());
  EXPECT_TRUE(matrices_near(rtr, ata,
                            1e-11 * std::max(1.0, norm_max(ata)) *
                                static_cast<double>(p.m)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TsqrSweep,
    ::testing::Values(TsqrParam{64, 8, 1, ReductionTree::Binary},
                      TsqrParam{64, 8, 2, ReductionTree::Binary},
                      TsqrParam{64, 8, 4, ReductionTree::Binary},
                      TsqrParam{64, 8, 4, ReductionTree::Flat},
                      TsqrParam{128, 16, 8, ReductionTree::Binary},
                      TsqrParam{128, 16, 8, ReductionTree::Flat},
                      TsqrParam{200, 25, 3, ReductionTree::Binary},
                      TsqrParam{333, 32, 5, ReductionTree::Flat},
                      TsqrParam{1000, 50, 8, ReductionTree::Binary},
                      TsqrParam{97, 13, 7, ReductionTree::Flat},
                      TsqrParam{16, 16, 4, ReductionTree::Binary},
                      TsqrParam{40, 40, 2, ReductionTree::Binary}));

TEST(Tsqr, RMatchesGeqrfUpToSigns) {
  // R is unique up to the sign of each row.
  Matrix a = random_matrix(150, 20, 37);
  Matrix f1 = a, f2 = a;
  TsqrOptions opts;
  opts.tr = 4;
  TsqrFactors fac = tsqr_factor(f1.view(), opts);
  Matrix r_tsqr = tsqr_extract_r(f1.view(), fac);

  std::vector<double> tau;
  lapack::geqrf(f2.view(), tau);
  Matrix r_ref = lapack::extract_upper(f2, 20);

  for (idx i = 0; i < 20; ++i) {
    // Align row signs on the diagonal.
    const double s = (r_tsqr(i, i) >= 0) == (r_ref(i, i) >= 0) ? 1.0 : -1.0;
    for (idx j = i; j < 20; ++j) {
      EXPECT_NEAR(r_tsqr(i, j), s * r_ref(i, j), 1e-9)
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Tsqr, Tr1EqualsGeqr3Exactly) {
  Matrix a = random_matrix(90, 12, 41);
  Matrix f1 = a, f2 = a;
  TsqrOptions opts;
  opts.tr = 1;
  TsqrFactors fac = tsqr_factor(f1.view(), opts);
  ASSERT_EQ(fac.leaves.size(), 1u);
  ASSERT_TRUE(fac.nodes.empty());

  std::vector<double> tau;
  Matrix t = Matrix::zeros(12, 12);
  lapack::geqr3(f2.view(), tau, t.view());
  EXPECT_EQ(test::max_diff(f1, f2), 0.0);
}

TEST(Tsqr, ApplyQTransThenNoTransIsIdentity) {
  Matrix a = random_matrix(120, 10, 43);
  Matrix fact = a;
  TsqrOptions opts;
  opts.tr = 4;
  TsqrFactors f = tsqr_factor(fact.view(), opts);

  Matrix c = random_matrix(120, 6, 44);
  Matrix c0 = c;
  tsqr_apply_q(blas::Trans::Trans, fact.view(), f, c.view());
  tsqr_apply_q(blas::Trans::NoTrans, fact.view(), f, c.view());
  EXPECT_TRUE(matrices_near(c, c0, 1e-11));
}

TEST(Tsqr, QtAEqualsREmbedded) {
  // Q^T A = [R; 0].
  Matrix a = random_matrix(100, 12, 47);
  Matrix fact = a;
  TsqrOptions opts;
  opts.tr = 4;
  opts.tree = ReductionTree::Flat;
  TsqrFactors f = tsqr_factor(fact.view(), opts);

  Matrix qta = a;
  tsqr_apply_q(blas::Trans::Trans, fact.view(), f, qta.view());
  Matrix r = tsqr_extract_r(fact.view(), f);
  for (idx j = 0; j < 12; ++j) {
    for (idx i = 0; i < 12; ++i) {
      EXPECT_NEAR(qta(i, j), r(i, j), 1e-10);
    }
    for (idx i = 12; i < 100; ++i) {
      EXPECT_NEAR(qta(i, j), 0.0, 1e-10);
    }
  }
}

TEST(Tsqr, NodeKernelPreservesLeafTails) {
  // The node writes only the upper triangle of the target's top rows.
  Matrix a = random_matrix(64, 8, 53);
  Matrix fact = a;
  TsqrOptions opts;
  opts.tr = 2;
  // After leaf factorization, snapshot the strictly-lower part of the
  // target leaf's top 8 rows, factor, and compare.
  // (The public API doesn't expose intermediate state, so replicate the
  // driver's steps with the kernels.)
  auto part = partition_panel_rows(64, 8, 2, 8);
  ASSERT_EQ(part.count(), 2);
  TsqrLeaf l0 = tsqr_leaf_kernel(
      fact.view().block(part.start[0], 0, part.rows[0], 8), part.start[0]);
  TsqrLeaf l1 = tsqr_leaf_kernel(
      fact.view().block(part.start[1], 0, part.rows[1], 8), part.start[1]);
  Matrix before = fact;
  TsqrNode node =
      tsqr_node_kernel(fact.view(), {part.start[0], part.start[1]}, 8);
  for (idx j = 0; j < 8; ++j) {
    for (idx i = j + 1; i < 8; ++i) {
      EXPECT_EQ(fact(part.start[0] + i, j), before(part.start[0] + i, j))
          << "leaf tail clobbered at (" << i << "," << j << ")";
    }
  }
  // Source slice (leaf 1 top rows) must be untouched in A.
  for (idx j = 0; j < 8; ++j) {
    for (idx i = 0; i < 8; ++i) {
      EXPECT_EQ(fact(part.start[1] + i, j), before(part.start[1] + i, j));
    }
  }
}

TEST(Tsqr, WideMatrixThrows) {
  Matrix a = random_matrix(5, 9, 59);
  EXPECT_THROW(tsqr_factor(a.view()), std::invalid_argument);
}

TEST(Tsqr, RankDeficientInputStillOrthogonal) {
  Matrix a = random_rank_deficient_matrix(120, 16, 5, 61);
  Matrix fact = a;
  TsqrOptions opts;
  opts.tr = 4;
  TsqrFactors f = tsqr_factor(fact.view(), opts);
  Matrix q = tsqr_explicit_q(fact.view(), f);
  EXPECT_LT(lapack::orthogonality_residual(q), kResidualThreshold);
  EXPECT_LT(tsqr_residual(a, fact, f), kResidualThreshold);
}

TEST(Tsqr, RedundantFlopsBinaryVsFlat) {
  // Both trees produce valid factorizations of the same matrix; count of
  // nodes differs (binary: leaves-1 pairwise nodes; flat: 1 big node).
  Matrix a = random_matrix(256, 16, 67);
  Matrix f1 = a, f2 = a;
  TsqrOptions ob;
  ob.tr = 8;
  ob.tree = ReductionTree::Binary;
  TsqrOptions of;
  of.tr = 8;
  of.tree = ReductionTree::Flat;
  TsqrFactors fb = tsqr_factor(f1.view(), ob);
  TsqrFactors ff = tsqr_factor(f2.view(), of);
  EXPECT_EQ(fb.nodes.size(), 7u);
  EXPECT_EQ(ff.nodes.size(), 1u);
  EXPECT_LT(tsqr_residual(a, f1, fb), kResidualThreshold);
  EXPECT_LT(tsqr_residual(a, f2, ff), kResidualThreshold);
}


TEST(Tsqr, HybridTreeResidualAndOrthogonality) {
  Matrix a = random_matrix(512, 24, 333);
  Matrix fact = a;
  TsqrOptions opts;
  opts.tr = 8;
  opts.tree = ReductionTree::Hybrid;
  TsqrFactors f = tsqr_factor(fact.view(), opts);
  EXPECT_LT(tsqr_residual(a, fact, f), kResidualThreshold);
  Matrix q = tsqr_explicit_q(fact.view(), f);
  EXPECT_LT(lapack::orthogonality_residual(q), kResidualThreshold);
  // 8 leaves, group 4: 2 flat nodes + 1 binary node.
  EXPECT_EQ(f.nodes.size(), 3u);
}

}  // namespace
}  // namespace camult::core
