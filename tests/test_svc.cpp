// test_svc.cpp — the multi-tenant factorization job service (svc::Service):
// submit/wait correctness against the direct drivers, QoS-ordered dispatch,
// admission control with shed-lowest-class-first eviction, deadline
// enforcement through CancelToken, per-tenant accounting, failure isolation,
// and the drain/shutdown contract (the queue always empties; the pool is
// never wedged). The self-healing layer rides the same binary: stall
// watchdog recovery from cancel-oblivious hangs, retry with pristine-input
// restore and deterministic backoff, and per-tenant circuit breakers
// (Open -> ShedBreaker + retry_after -> half-open probe -> Closed).
//
// Determinism strategy: the service runs on an EXTERNAL pool the test also
// attaches a "stall" graph to — pool.size() tasks that block on a
// condition variable. While stalled, no job can make progress, so queue
// composition at each submit() is exact, not timing-dependent. Every test
// releases the stall before asserting terminal states.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/test_utils.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "core/lookahead.hpp"
#include "matrix/matrix.hpp"
#include "matrix/random.hpp"
#include "runtime/fault_inject.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"
#include "svc/service.hpp"

namespace camult {
namespace {

using namespace std::chrono_literals;

// Occupies every worker of `pool` until release() — the clock-stopper the
// header comment describes. Must be released before destruction (the
// destructor releases defensively, then drains).
class PoolStall {
 public:
  explicit PoolStall(rt::WorkerPool& pool) {
    rt::TaskGraph::Config cfg;
    cfg.num_threads = pool.size();
    cfg.record_trace = false;
    cfg.pool = &pool;
    graph_ = std::make_unique<rt::TaskGraph>(cfg);
    for (int i = 0; i < pool.size(); ++i) {
      graph_->submit({}, {}, [this] {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return released_; });
      });
    }
  }

  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  ~PoolStall() {
    release();
    graph_->wait();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  std::unique_ptr<rt::TaskGraph> graph_;
};

svc::JobRequest lu_request(MatrixView a, svc::QosClass qos,
                           const std::string& tenant = "t0") {
  svc::JobRequest req;
  req.kind = svc::JobKind::CaluFactor;
  req.a = a;
  req.qos = qos;
  req.tenant = tenant;
  req.b = 16;
  req.tr = 2;
  return req;
}

// ---- Correctness: service results match the direct drivers ---------------

TEST(SvcService, LuJobMatchesDirectFactorization) {
  Matrix direct = random_matrix(96, 96, 100);
  Matrix via_svc = direct;

  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  const core::CaluResult ref = core::calu_factor(direct.view(), opts);

  svc::ServiceConfig cfg;
  cfg.num_threads = 4;
  svc::Service service(cfg);
  const auto adm =
      service.submit(lu_request(via_svc.view(), svc::QosClass::Normal));
  ASSERT_TRUE(adm.accepted);
  const svc::JobOutcome& out = adm.handle.wait();
  ASSERT_EQ(out.status, svc::JobStatus::Completed);
  ASSERT_NE(out.lu, nullptr);
  // CALU is deterministic across schedules (pinned elsewhere by the
  // bit-exactness-under-injection test), so the service result must be
  // bit-identical to the direct call.
  EXPECT_EQ(out.lu->ipiv, ref.ipiv);
  EXPECT_EQ(out.info, ref.info);
  EXPECT_EQ(test::max_diff(direct.view(), via_svc.view()), 0.0);
  EXPECT_GT(out.sched.totals().tasks_executed, 0);
  EXPECT_GT(out.total_ms, 0.0);
}

TEST(SvcService, QrJobMatchesDirectFactorization) {
  Matrix direct = random_matrix(128, 48, 101);
  Matrix via_svc = direct;

  core::CaqrOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  const core::CaqrResult ref = core::caqr_factor(direct.view(), opts);

  svc::ServiceConfig cfg;
  cfg.num_threads = 4;
  svc::Service service(cfg);
  svc::JobRequest req;
  req.kind = svc::JobKind::CaqrFactor;
  req.a = via_svc.view();
  req.b = 16;
  req.tr = 2;
  const auto adm = service.submit(req);
  ASSERT_TRUE(adm.accepted);
  const svc::JobOutcome& out = adm.handle.wait();
  ASSERT_EQ(out.status, svc::JobStatus::Completed);
  ASSERT_NE(out.qr, nullptr);
  EXPECT_EQ(out.qr->iterations.size(), ref.iterations.size());
  EXPECT_EQ(test::max_diff(direct.view(), via_svc.view()), 0.0);
  EXPECT_FALSE(out.health.nan_detected);
}

// ---- Accounting ----------------------------------------------------------

TEST(SvcService, DrainsAndAccountsPerClassAndTenant) {
  svc::ServiceConfig cfg;
  cfg.num_threads = 4;
  cfg.max_inflight = 2;
  svc::Service service(cfg);

  const int n_jobs = 12;
  std::vector<Matrix> ms;
  ms.reserve(n_jobs);
  std::vector<svc::JobHandle> handles;
  for (int i = 0; i < n_jobs; ++i) {
    ms.push_back(random_matrix(64, 64, 200 + i));
    const auto qos = static_cast<svc::QosClass>(i % svc::kQosClasses);
    const std::string tenant = i % 2 == 0 ? "alice" : "bob";
    const auto adm = service.submit(lu_request(ms.back().view(), qos, tenant));
    ASSERT_TRUE(adm.accepted);
    EXPECT_GE(adm.queue_depth, 1u);
    handles.push_back(adm.handle);
  }
  service.drain();

  for (const auto& h : handles) {
    EXPECT_EQ(h.wait().status, svc::JobStatus::Completed);
  }
  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.queued, 0u);
  EXPECT_EQ(st.inflight, 0);
  EXPECT_GE(st.peak_queue_depth, 1u);
  long long completed = 0;
  for (const svc::QosStats& c : st.per_class) {
    EXPECT_EQ(c.completed, c.submitted);
    completed += c.completed;
  }
  EXPECT_EQ(completed, n_jobs);
  ASSERT_EQ(st.per_tenant.size(), 2u);
  EXPECT_EQ(st.per_tenant.at("alice").completed, n_jobs / 2);
  EXPECT_EQ(st.per_tenant.at("bob").completed, n_jobs / 2);
  EXPECT_GT(st.per_tenant.at("alice").tasks_executed, 0);
  EXPECT_GT(st.per_tenant.at("alice").run_ms_sum, 0.0);
}

// ---- Admission control / backpressure / shedding -------------------------

TEST(SvcService, RejectsWhenFullAndNothingLowerToShed) {
  rt::WorkerPool pool({2});
  PoolStall stall(pool);
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  cfg.max_queue = 2;
  svc::Service service(cfg);

  std::vector<Matrix> ms;
  std::vector<svc::JobHandle> accepted;
  // 1 dispatched (stuck Running on the stalled pool) + 2 queued = full.
  for (int i = 0; i < 3; ++i) {
    ms.push_back(random_matrix(48, 48, 300 + i));
    const auto adm =
        service.submit(lu_request(ms.back().view(), svc::QosClass::Normal));
    ASSERT_TRUE(adm.accepted) << "job " << i;
    accepted.push_back(adm.handle);
    if (i == 0) {
      // Let the dispatcher pick up job 0 (stuck Running on the stalled
      // pool) so the next two submits fill the queue exactly.
      while (service.queue_depth() > 0) std::this_thread::sleep_for(1ms);
    }
  }

  // Same class: nothing strictly below Normal is queued -> backpressure.
  Matrix extra = random_matrix(48, 48, 310);
  const auto rejected =
      service.submit(lu_request(extra.view(), svc::QosClass::Normal));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.handle.status(), svc::JobStatus::Rejected);
  EXPECT_EQ(rejected.handle.wait().status, svc::JobStatus::Rejected);

  // Lower class: also rejected (it would be the first victim itself).
  Matrix batch = random_matrix(48, 48, 311);
  const auto rejected2 =
      service.submit(lu_request(batch.view(), svc::QosClass::Batch));
  EXPECT_FALSE(rejected2.accepted);

  stall.release();
  service.drain();
  for (const auto& h : accepted) {
    EXPECT_EQ(h.wait().status, svc::JobStatus::Completed);
  }
  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.per_class[1].rejected, 1);
  EXPECT_EQ(st.per_class[0].rejected, 1);
  EXPECT_EQ(st.per_class[1].completed, 3);
}

TEST(SvcService, ShedsLowestClassFirstOnOverload) {
  rt::WorkerPool pool({2});
  PoolStall stall(pool);
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  cfg.max_queue = 3;
  svc::Service service(cfg);

  std::vector<Matrix> ms;
  auto submit = [&](svc::QosClass qos) {
    ms.push_back(random_matrix(48, 48, 400 + static_cast<int>(ms.size())));
    return service.submit(lu_request(ms.back().view(), qos));
  };

  // Occupy the single dispatcher, then queue [batch, batch, normal] = full.
  const auto running = submit(svc::QosClass::Normal);
  while (service.queue_depth() > 0) std::this_thread::sleep_for(1ms);
  const auto batch0 = submit(svc::QosClass::Batch);
  const auto batch1 = submit(svc::QosClass::Batch);
  const auto normal0 = submit(svc::QosClass::Normal);
  ASSERT_EQ(service.queue_depth(), 3u);

  // Interactive arrivals evict oldest-lowest first: batch0, then batch1,
  // then (no batch left) normal0.
  const auto inter0 = submit(svc::QosClass::Interactive);
  EXPECT_TRUE(inter0.accepted);
  EXPECT_EQ(batch0.handle.wait().status, svc::JobStatus::ShedQueueFull);
  EXPECT_EQ(batch1.handle.status(), svc::JobStatus::Queued);

  const auto inter1 = submit(svc::QosClass::Interactive);
  EXPECT_TRUE(inter1.accepted);
  EXPECT_EQ(batch1.handle.wait().status, svc::JobStatus::ShedQueueFull);
  EXPECT_EQ(normal0.handle.status(), svc::JobStatus::Queued);

  const auto inter2 = submit(svc::QosClass::Interactive);
  EXPECT_TRUE(inter2.accepted);
  EXPECT_EQ(normal0.handle.wait().status, svc::JobStatus::ShedQueueFull);

  // A shed job never ran: its latency is pure queue time.
  EXPECT_EQ(batch0.handle.wait().run_ms, 0.0);
  EXPECT_GT(batch0.handle.wait().queue_ms, 0.0);

  stall.release();
  service.drain();
  EXPECT_EQ(running.handle.wait().status, svc::JobStatus::Completed);
  EXPECT_EQ(inter0.handle.wait().status, svc::JobStatus::Completed);
  EXPECT_EQ(inter1.handle.wait().status, svc::JobStatus::Completed);
  EXPECT_EQ(inter2.handle.wait().status, svc::JobStatus::Completed);
  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.per_class[0].shed_queue_full, 2);
  EXPECT_EQ(st.per_class[1].shed_queue_full, 1);
  EXPECT_EQ(st.per_class[2].shed_queue_full, 0);
  EXPECT_EQ(st.per_class[2].completed, 3);
  EXPECT_EQ(st.queued, 0u);
}

TEST(SvcService, DispatchServesHigherClassesFirst) {
  rt::WorkerPool pool({2});
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  svc::Service service(cfg);

  std::vector<Matrix> ms;
  std::vector<std::pair<svc::JobHandle, svc::QosClass>> jobs;
  {
    PoolStall stall(pool);
    // Head job occupies the dispatcher; the rest queue up in mixed order.
    ms.push_back(random_matrix(48, 48, 500));
    const auto head =
        service.submit(lu_request(ms.back().view(), svc::QosClass::Normal));
    while (service.queue_depth() > 0) std::this_thread::sleep_for(1ms);
    const svc::QosClass order[] = {
        svc::QosClass::Batch, svc::QosClass::Interactive,
        svc::QosClass::Normal, svc::QosClass::Batch,
        svc::QosClass::Interactive};
    for (const svc::QosClass qos : order) {
      ms.push_back(random_matrix(48, 48, 501 + static_cast<int>(ms.size())));
      jobs.emplace_back(service.submit(lu_request(ms.back().view(), qos))
                            .handle,
                        qos);
    }
    stall.release();
    (void)head.handle.wait();
  }
  service.drain();
  // Dispatch order is priority order; with one dispatcher, completion
  // times are strictly ordered, so every Interactive job must finish
  // before every Batch job (dispatch happened class-by-class).
  double last_interactive_done = 0.0;
  double first_batch_done = 1e300;
  for (const auto& [handle, qos] : jobs) {
    const svc::JobOutcome& out = handle.wait();
    ASSERT_EQ(out.status, svc::JobStatus::Completed);
    // queue_ms is submit->dispatch; all five were submitted within the
    // stall window, so dispatch order shows up in queue_ms order.
    if (qos == svc::QosClass::Interactive) {
      last_interactive_done = std::max(last_interactive_done, out.queue_ms);
    }
    if (qos == svc::QosClass::Batch) {
      first_batch_done = std::min(first_batch_done, out.queue_ms);
    }
  }
  EXPECT_LT(last_interactive_done, first_batch_done);
}

// ---- Deadlines -----------------------------------------------------------

TEST(SvcService, ExpiredDeadlineShedsQueuedJobWithoutRunning) {
  rt::WorkerPool pool({2});
  PoolStall stall(pool);
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  svc::Service service(cfg);

  Matrix head_m = random_matrix(48, 48, 600);
  const auto head =
      service.submit(lu_request(head_m.view(), svc::QosClass::Normal));
  while (service.queue_depth() > 0) std::this_thread::sleep_for(1ms);

  Matrix dl_m = random_matrix(48, 48, 601);
  svc::JobRequest req = lu_request(dl_m.view(), svc::QosClass::Normal);
  req.deadline = 20ms;
  const auto dl = service.submit(req);
  ASSERT_TRUE(dl.accepted);

  // Let the deadline expire while the job is still queued (the head job
  // holds the only dispatcher on a stalled pool).
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(dl.handle.status(), svc::JobStatus::Queued);
  stall.release();
  const svc::JobOutcome& out = dl.handle.wait();
  EXPECT_EQ(out.status, svc::JobStatus::ShedDeadline);
  EXPECT_TRUE(out.deadline_hit);
  EXPECT_EQ(out.run_ms, 0.0);
  EXPECT_EQ(out.sched.totals().tasks_executed, 0);
  EXPECT_EQ(head.handle.wait().status, svc::JobStatus::Completed);
  service.drain();
  EXPECT_EQ(service.stats().per_class[1].shed_deadline, 1);
}

TEST(SvcService, DeadlineCancelsRunningJobThroughItsToken) {
  rt::WorkerPool pool({2});
  PoolStall stall(pool);
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  svc::Service service(cfg);

  Matrix m = random_matrix(96, 96, 602);
  svc::JobRequest req = lu_request(m.view(), svc::QosClass::Interactive);
  req.deadline = 30ms;
  const auto adm = service.submit(req);
  ASSERT_TRUE(adm.accepted);
  // The job dispatches immediately (empty queue) onto the stalled pool, so
  // it is Running when its deadline fires.
  while (service.queue_depth() > 0) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(80ms);
  stall.release();

  const svc::JobOutcome& out = adm.handle.wait();
  EXPECT_EQ(out.status, svc::JobStatus::Cancelled);
  EXPECT_TRUE(out.deadline_hit);
  EXPECT_GT(out.sched.totals().tasks_skipped, 0);
  service.drain();
  EXPECT_EQ(service.stats().queued, 0u);
  EXPECT_EQ(service.stats().per_class[2].cancelled, 1);
}

TEST(SvcService, ClientCancelAbortsQueuedJob) {
  rt::WorkerPool pool({2});
  PoolStall stall(pool);
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  svc::Service service(cfg);

  Matrix head_m = random_matrix(48, 48, 610);
  const auto head =
      service.submit(lu_request(head_m.view(), svc::QosClass::Normal));
  while (service.queue_depth() > 0) std::this_thread::sleep_for(1ms);
  Matrix m = random_matrix(48, 48, 611);
  const auto adm = service.submit(lu_request(m.view(), svc::QosClass::Normal));
  adm.handle.cancel();
  stall.release();
  const svc::JobOutcome& out = adm.handle.wait();
  EXPECT_EQ(out.status, svc::JobStatus::Cancelled);
  EXPECT_FALSE(out.deadline_hit);
  EXPECT_EQ(out.sched.totals().tasks_executed, 0);
  EXPECT_EQ(head.handle.wait().status, svc::JobStatus::Completed);
  service.drain();
}

// ---- Failure isolation ---------------------------------------------------

TEST(SvcService, InjectedTaskFailureFailsTheJobNotTheService) {
  rt::FaultConfig fc;
  fc.throw_on_task = 0;  // first task of every job's graph
  rt::FaultInjector inj(fc);
  svc::ServiceConfig cfg;
  cfg.num_threads = 4;
  cfg.fault = &inj;
  svc::Service service(cfg);

  Matrix bad = random_matrix(64, 64, 700);
  const auto failed =
      service.submit(lu_request(bad.view(), svc::QosClass::Normal, "chaos"));
  const svc::JobOutcome& out = failed.handle.wait();
  EXPECT_EQ(out.status, svc::JobStatus::Failed);
  EXPECT_NE(out.error.find("fault"), std::string::npos) << out.error;
  EXPECT_GT(out.sched.totals().tasks_skipped, 0);
  service.drain();
  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.per_tenant.at("chaos").failed, 1);
  EXPECT_EQ(st.queued, 0u);
  EXPECT_EQ(st.inflight, 0);
}

// ---- Shutdown / drain contract -------------------------------------------

TEST(SvcService, ShutdownWithoutRunningQueuedJobsCancelsThem) {
  rt::WorkerPool pool({2});
  PoolStall stall(pool);
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  svc::Service service(cfg);

  std::vector<Matrix> ms;
  std::vector<svc::JobHandle> handles;
  for (int i = 0; i < 3; ++i) {
    ms.push_back(random_matrix(48, 48, 800 + i));
    handles.push_back(
        service.submit(lu_request(ms.back().view(), svc::QosClass::Normal))
            .handle);
  }
  while (service.queue_depth() > 2) std::this_thread::sleep_for(1ms);

  // shutdown(false) drops the two queued jobs immediately, then blocks on
  // the running one — which needs the stall released to finish.
  std::thread stopper([&] { service.shutdown(false); });
  EXPECT_EQ(handles[1].wait().status, svc::JobStatus::Cancelled);
  EXPECT_EQ(handles[2].wait().status, svc::JobStatus::Cancelled);
  stall.release();
  stopper.join();
  EXPECT_EQ(handles[0].wait().status, svc::JobStatus::Completed);

  // Stopped service refuses new work as Rejected (clean backpressure).
  Matrix late = random_matrix(48, 48, 810);
  const auto adm =
      service.submit(lu_request(late.view(), svc::QosClass::Interactive));
  EXPECT_FALSE(adm.accepted);
  EXPECT_EQ(adm.handle.status(), svc::JobStatus::Rejected);
  EXPECT_EQ(service.stats().queued, 0u);
}

TEST(SvcService, DestructorRunsQueuedJobsAndPoolSurvives) {
  rt::WorkerPool pool({4});
  std::vector<Matrix> ms;
  std::vector<svc::JobHandle> handles;
  {
    svc::ServiceConfig cfg;
    cfg.pool = &pool;
    cfg.max_inflight = 2;
    svc::Service service(cfg);
    for (int i = 0; i < 6; ++i) {
      ms.push_back(random_matrix(64, 64, 900 + i));
      handles.push_back(
          service
              .submit(lu_request(ms.back().view(), svc::QosClass::Batch))
              .handle);
    }
    // Destructor: stop accepting, run everything queued, join threads.
  }
  for (const auto& h : handles) {
    EXPECT_EQ(h.wait().status, svc::JobStatus::Completed);
  }
  // The external pool is untouched by service teardown.
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.pool = &pool;
  opts.num_threads = pool.size();
  opts.record_trace = false;
  Matrix again = random_matrix(64, 64, 950);
  EXPECT_EQ(core::calu_factor(again.view(), opts).info, 0);
}

// ---- Deadline watchdog heap bound ----------------------------------------

TEST(SvcService, WatchdogHeapStaysBoundedUnderChurn) {
  // Hammer the submit/complete cycle with deadline-armed jobs whose
  // deadlines never fire (1 hour out). Lazy deletion alone would leave one
  // stale heap entry per finished job — 300 here, unbounded for a
  // long-running service; compaction must sweep terminal entries once they
  // dominate, keeping the gauge O(live armed jobs).
  svc::ServiceConfig cfg;
  cfg.num_threads = 2;
  svc::Service service(cfg);
  const int n_jobs = 300;
  Matrix a = random_matrix(32, 32, 960);
  for (int i = 0; i < n_jobs; ++i) {
    Matrix work = a;
    svc::JobRequest req = lu_request(work.view(), svc::QosClass::Normal);
    req.deadline = 1h;
    const auto adm = service.submit(req);
    ASSERT_TRUE(adm.accepted) << "job " << i;
    const svc::JobOutcome& out = adm.handle.wait();
    ASSERT_EQ(out.status, svc::JobStatus::Completed) << "job " << i;
    EXPECT_FALSE(out.deadline_hit);
  }
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.per_class[1].completed, n_jobs);
  EXPECT_LT(stats.watchdog_entries, 128u)
      << "stale deadline entries are accumulating; compaction regressed";
}

// ---- QoS priority bands --------------------------------------------------

TEST(SvcService, QosBiasSaturatesInsteadOfWrapping) {
  EXPECT_EQ(svc::qos_priority_bias(svc::QosClass::Batch), 0);
  EXPECT_EQ(svc::qos_priority_bias(svc::QosClass::Normal),
            svc::kQosBandWidth);
  EXPECT_EQ(svc::qos_priority_bias(svc::QosClass::Interactive),
            2 * svc::kQosBandWidth);
  constexpr int kMax = std::numeric_limits<int>::max();
  EXPECT_EQ(core::biased_priority(kMax - 1, 10), kMax);
  EXPECT_EQ(core::biased_priority(5, svc::kQosBandWidth),
            5 + svc::kQosBandWidth);
  EXPECT_EQ(core::biased_priority(std::numeric_limits<int>::min(), -10),
            std::numeric_limits<int>::min());
}

// ---- JobHandle::wait_for -------------------------------------------------

TEST(SvcWaitFor, TimesOutWhileRunningAndReturnsImmediatelyOnceTerminal) {
  rt::WorkerPool pool({2});
  PoolStall stall(pool);
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  svc::Service service(cfg);

  Matrix a = random_matrix(64, 64, 7100);
  const auto adm =
      service.submit(lu_request(a.view(), svc::QosClass::Normal));
  ASSERT_TRUE(adm.accepted);
  // The pool is fully stalled, so the job cannot reach a terminal state:
  // a bounded wait must report false instead of blocking forever.
  EXPECT_FALSE(adm.handle.wait_for(50ms));
  EXPECT_NE(adm.handle.status(), svc::JobStatus::Completed);

  stall.release();
  EXPECT_TRUE(adm.handle.wait_for(30s));
  EXPECT_EQ(adm.handle.status(), svc::JobStatus::Completed);
  // Already terminal: even a zero timeout succeeds immediately.
  EXPECT_TRUE(adm.handle.wait_for(0ns));

  EXPECT_THROW(svc::JobHandle().wait_for(1ms), std::logic_error);
}

// ---- Self-healing: stall watchdog + retry --------------------------------

// End-to-end hang recovery. A sniper hang (hang_on_task = 0, and snipers
// ignore the retry salt) wedges one pool worker cancel-obliviously on every
// attempt. The stall watchdog must notice the stuck heartbeat, fire the
// attempt's token (reclaiming the runner slot long before the hang ends),
// and the retry machinery must re-run the job until attempts are exhausted.
// Throughout, a healthy tenant's jobs keep completing and the service ends
// the test alive and drained — one wedged tenant never takes the pool down.
TEST(SvcSelfHealing, HangIsStallCancelledRetriedAndIsolated) {
  svc::ServiceConfig cfg;
  cfg.num_threads = 2;
  cfg.max_inflight = 2;
  cfg.retry.max_attempts = 2;
  cfg.retry.base = 1ms;
  cfg.retry.cap = 4ms;
  cfg.retry.jitter_seed = 7;
  svc::Service service(cfg);

  rt::FaultConfig fc;
  fc.hang_on_task = 0;
  fc.hang_ms = 60;
  rt::FaultInjector inj(fc);

  Matrix noisy = random_matrix(48, 48, 7200);
  svc::JobRequest req = lu_request(noisy.view(), svc::QosClass::Batch,
                                   "chaos");
  req.fault = &inj;
  req.stall_timeout = 5ms;
  const auto adm = service.submit(req);
  ASSERT_TRUE(adm.accepted);

  // While the noisy job hangs, the healthy tenant still gets service.
  Matrix healthy = random_matrix(64, 64, 7201);
  const auto good = service.submit(
      lu_request(healthy.view(), svc::QosClass::Interactive, "calm"));
  ASSERT_TRUE(good.accepted);
  EXPECT_EQ(good.handle.wait().status, svc::JobStatus::Completed);

  const svc::JobOutcome& out = adm.handle.wait();
  EXPECT_EQ(out.status, svc::JobStatus::Cancelled);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_EQ(out.attempt_run_ms.size(), 2u);
  EXPECT_GT(out.backoff_ms, 0.0);
  ASSERT_TRUE(out.stall.detected);
  EXPECT_EQ(out.stall.task, 0);
  EXPECT_GE(out.stall.worker, 0);
  EXPECT_LT(out.stall.worker, 2);
  EXPECT_GE(out.stall.stuck_ms, 4.0);
  EXPECT_EQ(out.stall.attempt, 2);
  EXPECT_EQ(inj.injected_hangs(), 2);

  service.drain();
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.per_tenant.at("chaos").cancelled, 1);
  EXPECT_EQ(stats.per_tenant.at("chaos").retries, 1);
  EXPECT_EQ(stats.per_tenant.at("chaos").stalls_detected, 2);
  EXPECT_EQ(stats.per_tenant.at("calm").completed, 1);
  EXPECT_EQ(stats.retry_pending, 0u);

  // The runner slot was reclaimed: fresh work still completes.
  Matrix again = random_matrix(64, 64, 7202);
  const auto fresh = service.submit(
      lu_request(again.view(), svc::QosClass::Normal, "calm"));
  ASSERT_TRUE(fresh.accepted);
  EXPECT_EQ(fresh.handle.wait().status, svc::JobStatus::Completed);
}

// A retried attempt must factor the CALLER'S matrix, not the wreckage the
// aborted attempt left behind: the service snapshots the input before
// attempt 1 and restores it before each retry. Find a fault seed whose
// salt-0 stream (attempt 1) throws somewhere in the DAG while the salt-1
// stream (attempt 2) is completely clean — decide() is a pure hash, so the
// search is exact — then demand the retried job's factorization be
// bit-identical to a direct clean run on the same input.
TEST(SvcSelfHealing, RetryRestoresPristineInputAndMatchesDirectRun) {
  Matrix ref = random_matrix(96, 96, 7300);
  Matrix via_svc = ref;

  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 2;
  opts.record_trace = false;
  rt::SchedulerStats sched;
  opts.sched_out = &sched;
  const core::CaluResult direct = core::calu_factor(ref.view(), opts);
  const rt::TaskId n_tasks =
      static_cast<rt::TaskId>(sched.totals().tasks_executed);
  ASSERT_GT(n_tasks, 0);

  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 20000 && seed == 0; ++s) {
    rt::FaultConfig fc;
    fc.seed = s;
    fc.throw_rate = 0.02;
    rt::FaultInjector probe(fc);
    bool first_throws = false, second_clean = true;
    for (rt::TaskId id = 0; id < n_tasks && second_clean; ++id) {
      first_throws |=
          probe.decide(id, 0) == rt::FaultInjector::Action::Throw;
      second_clean = probe.decide(id, 1) == rt::FaultInjector::Action::None;
    }
    if (first_throws && second_clean) seed = s;
  }
  ASSERT_NE(seed, 0u) << "no suitable fault seed below 20000";

  rt::FaultConfig fc;
  fc.seed = seed;
  fc.throw_rate = 0.02;
  rt::FaultInjector inj(fc);

  svc::ServiceConfig cfg;
  cfg.num_threads = 2;
  cfg.retry.max_attempts = 3;
  cfg.retry.base = 1ms;
  cfg.retry.cap = 4ms;
  svc::Service service(cfg);
  svc::JobRequest req = lu_request(via_svc.view(), svc::QosClass::Normal);
  req.b = 16;
  req.fault = &inj;
  const auto adm = service.submit(req);
  ASSERT_TRUE(adm.accepted);
  const svc::JobOutcome& out = adm.handle.wait();
  ASSERT_EQ(out.status, svc::JobStatus::Completed);
  EXPECT_EQ(out.attempts, 2);  // attempt 1 faulted, attempt 2 clean
  EXPECT_EQ(inj.injected_throws(), 1);
  ASSERT_NE(out.lu, nullptr);
  EXPECT_EQ(out.lu->ipiv, direct.ipiv);
  EXPECT_EQ(out.info, direct.info);
  EXPECT_EQ(test::max_diff(ref.view(), via_svc.view()), 0.0)
      << "retry factored the half-mutated matrix instead of the snapshot";
}

// Permanent single-point failures exhaust the retry budget deterministically:
// a sniper throw ignores the retry salt, so every attempt dies the same way
// and the job lands Failed with exactly max_attempts attempts on the books.
TEST(SvcSelfHealing, RetryBudgetExhaustsDeterministically) {
  rt::FaultConfig fc;
  fc.throw_on_task = 0;
  rt::FaultInjector inj(fc);

  svc::ServiceConfig cfg;
  cfg.num_threads = 2;
  cfg.retry.max_attempts = 3;
  cfg.retry.base = 1ms;
  cfg.retry.cap = 4ms;
  cfg.retry.jitter_seed = 11;
  svc::Service service(cfg);
  Matrix a = random_matrix(64, 64, 7400);
  svc::JobRequest req = lu_request(a.view(), svc::QosClass::Normal);
  req.fault = &inj;
  const auto adm = service.submit(req);
  ASSERT_TRUE(adm.accepted);
  const svc::JobOutcome& out = adm.handle.wait();
  EXPECT_EQ(out.status, svc::JobStatus::Failed);
  EXPECT_EQ(out.attempts, 3);
  ASSERT_EQ(out.attempt_run_ms.size(), 3u);
  EXPECT_GT(out.backoff_ms, 0.0);
  EXPECT_FALSE(out.stall.detected);
  EXPECT_EQ(inj.injected_throws(), 3);
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.per_tenant.at("t0").retries, 2);
  EXPECT_EQ(stats.per_tenant.at("t0").failed, 1);
}

// Backoff is a pure function of (jitter_seed, admission seq, attempt): two
// identical services fed the same job must retry on the same schedule and
// report bit-equal backoff totals. This is the reproducibility contract the
// chaos drills rely on.
TEST(SvcSelfHealing, RetryBackoffIsBitReproducibleAcrossServices) {
  auto run_once = [](double* backoff_ms, int* attempts) {
    rt::FaultConfig fc;
    fc.throw_on_task = 0;
    rt::FaultInjector inj(fc);
    svc::ServiceConfig cfg;
    cfg.num_threads = 2;
    cfg.retry.max_attempts = 4;
    cfg.retry.base = 1ms;
    cfg.retry.cap = 3ms;
    cfg.retry.jitter_seed = 12345;
    svc::Service service(cfg);
    Matrix a = random_matrix(48, 48, 7500);
    svc::JobRequest req;
    req.kind = svc::JobKind::CaluFactor;
    req.a = a.view();
    req.b = 16;
    req.tr = 2;
    req.fault = &inj;
    const auto adm = service.submit(req);
    ASSERT_TRUE(adm.accepted);
    const svc::JobOutcome& out = adm.handle.wait();
    EXPECT_EQ(out.status, svc::JobStatus::Failed);
    *backoff_ms = out.backoff_ms;
    *attempts = out.attempts;
  };
  double backoff_a = -1.0, backoff_b = -2.0;
  int attempts_a = 0, attempts_b = 0;
  run_once(&backoff_a, &attempts_a);
  run_once(&backoff_b, &attempts_b);
  EXPECT_EQ(attempts_a, 4);
  EXPECT_EQ(attempts_a, attempts_b);
  EXPECT_GT(backoff_a, 0.0);
  EXPECT_EQ(backoff_a, backoff_b);  // bit-equal, not approximately
}

// With retry and the breaker left at their defaults (off) a fault-free job
// must behave exactly like PR 7: one attempt, no snapshot, no backoff, and
// a factorization bit-identical to the direct driver.
TEST(SvcSelfHealing, ZeroRetryZeroBreakerConfigMatchesPr7Bitwise) {
  Matrix ref = random_matrix(96, 96, 7600);
  Matrix via_svc = ref;
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 2;
  opts.record_trace = false;
  const core::CaluResult direct = core::calu_factor(ref.view(), opts);

  svc::ServiceConfig cfg;
  cfg.num_threads = 2;
  svc::Service service(cfg);
  const auto adm =
      service.submit(lu_request(via_svc.view(), svc::QosClass::Normal));
  ASSERT_TRUE(adm.accepted);
  const svc::JobOutcome& out = adm.handle.wait();
  ASSERT_EQ(out.status, svc::JobStatus::Completed);
  EXPECT_EQ(out.attempts, 1);
  ASSERT_EQ(out.attempt_run_ms.size(), 1u);
  EXPECT_EQ(out.backoff_ms, 0.0);
  EXPECT_FALSE(out.stall.detected);
  EXPECT_EQ(out.retry_after_ms, 0.0);
  EXPECT_EQ(out.lu->ipiv, direct.ipiv);
  EXPECT_EQ(test::max_diff(ref.view(), via_svc.view()), 0.0);
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.per_class[1].retries, 0);
  EXPECT_TRUE(stats.breakers.empty());
}

// ---- Self-healing: per-tenant circuit breaker ----------------------------

// The full breaker life cycle on one service: two decisive failures trip
// the "noisy" tenant's breaker (window 4 / min_samples 2 / threshold 0.5);
// while open, that tenant's submissions come back ShedBreaker with a
// retry_after hint and never touch the queue; other tenants are untouched.
// After open_for, exactly one probe is admitted (half-open) — a second
// submission while the probe is pending is still shed — and the probe's
// success closes the breaker for everyone.
TEST(SvcBreaker, OpensShedsHalfOpensAndClosesPerTenant) {
  rt::WorkerPool pool({2});
  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = 1;
  cfg.breaker.enabled = true;
  cfg.breaker.window = 4;
  cfg.breaker.min_samples = 2;
  cfg.breaker.failure_threshold = 0.5;
  cfg.breaker.open_for = 100ms;
  svc::Service service(cfg);

  rt::FaultConfig fc;
  fc.throw_on_task = 0;
  rt::FaultInjector inj(fc);

  // Two decisive failures -> Open.
  std::vector<Matrix> mats;
  for (int i = 0; i < 2; ++i) {
    mats.push_back(random_matrix(48, 48, 7700 + i));
    svc::JobRequest req =
        lu_request(mats.back().view(), svc::QosClass::Normal, "noisy");
    req.fault = &inj;
    const auto adm = service.submit(req);
    ASSERT_TRUE(adm.accepted) << "job " << i;
    EXPECT_EQ(adm.handle.wait().status, svc::JobStatus::Failed);
  }
  {
    const svc::ServiceStats stats = service.stats();
    ASSERT_EQ(stats.breakers.count("noisy"), 1u);
    EXPECT_EQ(stats.breakers.at("noisy").state, svc::BreakerState::Open);
    EXPECT_EQ(stats.breakers.at("noisy").opens, 1);
  }

  // Open: the tenant is shed instantly with a retry_after hint.
  Matrix shed_mat = random_matrix(48, 48, 7710);
  const auto shed = service.submit(
      lu_request(shed_mat.view(), svc::QosClass::Normal, "noisy"));
  EXPECT_FALSE(shed.accepted);
  EXPECT_GT(shed.retry_after_ms, 0.0);
  EXPECT_EQ(shed.handle.wait().status, svc::JobStatus::ShedBreaker);
  EXPECT_GT(shed.handle.wait().retry_after_ms, 0.0);

  // Another tenant sails through the whole time.
  Matrix calm_mat = random_matrix(64, 64, 7711);
  const auto calm = service.submit(
      lu_request(calm_mat.view(), svc::QosClass::Normal, "calm"));
  ASSERT_TRUE(calm.accepted);
  EXPECT_EQ(calm.handle.wait().status, svc::JobStatus::Completed);

  // Half-open: exactly one probe goes in; a second submission is shed
  // while the probe is still pending (the pool stall keeps it Running).
  std::this_thread::sleep_for(120ms);
  Matrix probe_mat = random_matrix(48, 48, 7712);
  Matrix rival_mat = random_matrix(48, 48, 7713);
  {
    PoolStall stall(pool);
    const auto probe = service.submit(
        lu_request(probe_mat.view(), svc::QosClass::Normal, "noisy"));
    ASSERT_TRUE(probe.accepted);
    const auto rival = service.submit(
        lu_request(rival_mat.view(), svc::QosClass::Normal, "noisy"));
    EXPECT_FALSE(rival.accepted);
    EXPECT_EQ(rival.handle.wait().status, svc::JobStatus::ShedBreaker);
    stall.release();
    EXPECT_EQ(probe.handle.wait().status, svc::JobStatus::Completed);
  }
  {
    const svc::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.breakers.at("noisy").state, svc::BreakerState::Closed);
    EXPECT_EQ(stats.breakers.at("noisy").probes, 1);
    EXPECT_GE(stats.per_tenant.at("noisy").shed_breaker, 2);
  }

  // Closed again: the tenant is back to normal admission.
  Matrix back_mat = random_matrix(48, 48, 7714);
  const auto back = service.submit(
      lu_request(back_mat.view(), svc::QosClass::Normal, "noisy"));
  ASSERT_TRUE(back.accepted);
  EXPECT_EQ(back.handle.wait().status, svc::JobStatus::Completed);
}

}  // namespace
}  // namespace camult
