// Matrix Market I/O tests: round trips, coordinate/pattern/symmetric
// variants, malformed input rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/test_utils.hpp"
#include "matrix/io.hpp"
#include "matrix/random.hpp"

namespace camult {
namespace {

TEST(MatrixMarket, DenseRoundTrip) {
  Matrix a = random_matrix(7, 5, 1);
  std::stringstream ss;
  write_matrix_market(ss, a);
  Matrix b = read_matrix_market(ss);
  ASSERT_EQ(b.rows(), 7);
  ASSERT_EQ(b.cols(), 5);
  EXPECT_EQ(test::max_diff(a, b), 0.0);  // 17 digits: exact round trip
}

TEST(MatrixMarket, CoordinateGeneral) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment line\n"
      "3 4 3\n"
      "1 1 2.5\n"
      "3 2 -1.0\n"
      "2 4 7\n");
  Matrix a = read_matrix_market(ss);
  ASSERT_EQ(a.rows(), 3);
  ASSERT_EQ(a.cols(), 4);
  EXPECT_EQ(a(0, 0), 2.5);
  EXPECT_EQ(a(2, 1), -1.0);
  EXPECT_EQ(a(1, 3), 7.0);
  EXPECT_EQ(a(1, 1), 0.0);
}

TEST(MatrixMarket, CoordinateSymmetricMirrors) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 4.0\n"
      "3 3 1.0\n");
  Matrix a = read_matrix_market(ss);
  EXPECT_EQ(a(1, 0), 4.0);
  EXPECT_EQ(a(0, 1), 4.0);
  EXPECT_EQ(a(2, 2), 1.0);
}

TEST(MatrixMarket, PatternEntriesBecomeOnes) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  Matrix a = read_matrix_market(ss);
  EXPECT_EQ(a(0, 1), 1.0);
  EXPECT_EQ(a(1, 0), 1.0);
  EXPECT_EQ(a(0, 0), 0.0);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream ss("not a matrix market file\n1 1\n0\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, RejectsComplex) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeCoordinates) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedData) {
  std::stringstream ss(
      "%%MatrixMarket matrix array real general\n3 3\n1.0 2.0\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, FileRoundTrip) {
  Matrix a = random_matrix(4, 4, 9);
  const std::string path = "/tmp/camult_io_test.mtx";
  write_matrix_market_file(path, a);
  Matrix b = read_matrix_market_file(path);
  EXPECT_EQ(test::max_diff(a, b), 0.0);
  std::remove(path.c_str());
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace camult
