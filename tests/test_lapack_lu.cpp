// LU factorization tests: getf2, rgetf2, blocked getrf, laswp. Invariants:
// small scaled residual ||PA - LU||, exact agreement of pivot choices between
// the variants on distinct-magnitude matrices, correct handling of singular
// and rank-deficient inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::lapack {
namespace {

using camult::test::kResidualThreshold;
using camult::test::matrices_near;

TEST(Laswp, AppliesSwapSequence) {
  Matrix a = random_matrix(5, 3, 1);
  Matrix orig = a;
  PivotVector ipiv = {3, 2, 4};
  laswp(a.view(), 0, 3, ipiv);
  Permutation perm = ipiv_to_permutation(ipiv, 5);
  Matrix expect = permute_rows(perm, orig);
  EXPECT_EQ(test::max_diff(a, expect), 0.0);
}

TEST(Laswp, InverseUndoes) {
  Matrix a = random_matrix(7, 4, 2);
  Matrix orig = a;
  PivotVector ipiv = {6, 5, 2, 3};
  laswp(a.view(), 0, 4, ipiv);
  laswp_inverse(a.view(), 0, 4, ipiv);
  EXPECT_EQ(test::max_diff(a, orig), 0.0);
}

TEST(Laswp, PartialRange) {
  Matrix a = random_matrix(6, 2, 3);
  Matrix b = a;
  PivotVector ipiv = {5, 4, 3};
  laswp(a.view(), 1, 3, ipiv);
  // Same as applying only swaps 1 and 2 by hand.
  blas::swap(2, b.data() + 1, b.ld(), b.data() + 4, b.ld());
  blas::swap(2, b.data() + 2, b.ld(), b.data() + 3, b.ld());
  EXPECT_EQ(test::max_diff(a, b), 0.0);
}

using LuShape = std::tuple<idx, idx>;

class Getf2Shapes : public ::testing::TestWithParam<LuShape> {};

TEST_P(Getf2Shapes, ResidualSmall) {
  auto [m, n] = GetParam();
  Matrix a = random_matrix(m, n, 7);
  Matrix lu = a;
  PivotVector ipiv;
  const idx info = getf2(lu.view(), ipiv);
  EXPECT_EQ(info, 0);
  EXPECT_LT(lu_residual(a, lu, ipiv), kResidualThreshold);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Getf2Shapes,
                         ::testing::Values(LuShape{1, 1}, LuShape{4, 4},
                                           LuShape{10, 10}, LuShape{13, 7},
                                           LuShape{7, 13}, LuShape{100, 20},
                                           LuShape{64, 64}, LuShape{33, 50}));

class Rgetf2Shapes : public ::testing::TestWithParam<LuShape> {};

TEST_P(Rgetf2Shapes, ResidualSmall) {
  auto [m, n] = GetParam();
  Matrix a = random_matrix(m, n, 8);
  Matrix lu = a;
  PivotVector ipiv;
  const idx info = rgetf2(lu.view(), ipiv);
  EXPECT_EQ(info, 0);
  EXPECT_LT(lu_residual(a, lu, ipiv), kResidualThreshold);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Rgetf2Shapes,
                         ::testing::Values(LuShape{1, 1}, LuShape{2, 2},
                                           LuShape{5, 5}, LuShape{16, 16},
                                           LuShape{100, 30}, LuShape{31, 17},
                                           LuShape{17, 31}, LuShape{257, 64},
                                           LuShape{1000, 100}));

TEST(Rgetf2, MatchesGetf2Exactly) {
  // Partial pivoting is deterministic on distinct-magnitude inputs, and
  // recursive LU performs the same pivot choices. The factors can differ in
  // rounding (different operation order), so compare pivots exactly and
  // factors loosely.
  for (auto [m, n] : {LuShape{40, 40}, LuShape{60, 24}, LuShape{128, 32}}) {
    Matrix a = random_distinct_magnitude_matrix(m, n, 17);
    Matrix lu1 = a, lu2 = a;
    PivotVector p1, p2;
    EXPECT_EQ(getf2(lu1.view(), p1), 0);
    EXPECT_EQ(rgetf2(lu2.view(), p2), 0);
    EXPECT_EQ(p1, p2) << "pivot sequences differ at m=" << m << " n=" << n;
    EXPECT_TRUE(matrices_near(lu1, lu2, 1e-8));
  }
}

struct GetrfParam {
  idx m, n, nb;
  LuPanelKernel panel;
};

class GetrfSweep : public ::testing::TestWithParam<GetrfParam> {};

TEST_P(GetrfSweep, ResidualSmall) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.n, 9);
  Matrix lu = a;
  PivotVector ipiv;
  GetrfOptions opts;
  opts.nb = p.nb;
  opts.panel = p.panel;
  const idx info = getrf(lu.view(), ipiv, opts);
  EXPECT_EQ(info, 0);
  EXPECT_LT(lu_residual(a, lu, ipiv), kResidualThreshold);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GetrfSweep,
    ::testing::Values(
        GetrfParam{64, 64, 16, LuPanelKernel::Getf2},
        GetrfParam{64, 64, 16, LuPanelKernel::Recursive},
        GetrfParam{100, 100, 32, LuPanelKernel::Recursive},
        GetrfParam{127, 127, 32, LuPanelKernel::Recursive},
        GetrfParam{128, 128, 128, LuPanelKernel::Recursive},  // single panel
        GetrfParam{128, 128, 200, LuPanelKernel::Recursive},  // nb > n
        GetrfParam{200, 120, 32, LuPanelKernel::Recursive},   // tall
        GetrfParam{120, 200, 32, LuPanelKernel::Recursive},   // wide
        GetrfParam{97, 61, 13, LuPanelKernel::Getf2},         // odd everything
        GetrfParam{300, 300, 64, LuPanelKernel::Recursive}));

TEST(Getrf, MatchesUnblockedPivots) {
  Matrix a = random_distinct_magnitude_matrix(90, 90, 23);
  Matrix lu1 = a, lu2 = a;
  PivotVector p1, p2;
  EXPECT_EQ(getf2(lu1.view(), p1), 0);
  GetrfOptions opts;
  opts.nb = 24;
  EXPECT_EQ(getrf(lu2.view(), p2, opts), 0);
  EXPECT_EQ(p1, p2);
  EXPECT_TRUE(matrices_near(lu1, lu2, 1e-8));
}

TEST(Getf2, SingularMatrixReportsInfo) {
  // An exactly-zero third column gives an exact zero pivot at step 2; the
  // factorization must still complete and report the 1-based column index.
  Matrix a = random_matrix(4, 4, 5);
  for (idx i = 0; i < 4; ++i) a(i, 2) = 0.0;
  PivotVector ipiv;
  const idx info = getf2(a.view(), ipiv);
  EXPECT_EQ(info, 3);  // 1-based index of the zero pivot column
  EXPECT_EQ(ipiv.size(), 4u);
}

TEST(Getf2, ZeroMatrixInfoIsFirstColumn) {
  Matrix a = Matrix::zeros(5, 5);
  PivotVector ipiv;
  EXPECT_EQ(getf2(a.view(), ipiv), 1);
}

TEST(Getf2, PivotsAreLargestInColumn) {
  Matrix a = random_matrix(30, 10, 33);
  Matrix lu = a;
  PivotVector ipiv;
  getf2(lu.view(), ipiv);
  // After the factorization, |L| <= 1 everywhere (the partial pivoting
  // invariant).
  for (idx j = 0; j < 10; ++j) {
    for (idx i = j + 1; i < 30; ++i) {
      EXPECT_LE(std::abs(lu(i, j)), 1.0 + 1e-15);
    }
  }
}

TEST(Rgetf2, PartialPivotingInvariantHolds) {
  Matrix a = random_matrix(200, 64, 35);
  Matrix lu = a;
  PivotVector ipiv;
  rgetf2(lu.view(), ipiv);
  for (idx j = 0; j < 64; ++j) {
    for (idx i = j + 1; i < 200; ++i) {
      EXPECT_LE(std::abs(lu(i, j)), 1.0 + 1e-15);
    }
  }
}

TEST(Getrf, GrowthMatrixExhibitsExpectedGrowth) {
  // The classic worst case: growth factor 2^(n-1) under partial pivoting.
  const idx n = 20;
  Matrix a = gepp_growth_matrix(n);
  Matrix lu = a;
  PivotVector ipiv;
  EXPECT_EQ(getrf(lu.view(), ipiv), 0);
  const double growth = pivot_growth(a, lu);
  EXPECT_NEAR(growth, std::pow(2.0, static_cast<double>(n - 1)), 1e-3);
  // Residual is still fine in exact-ish arithmetic at this size.
  EXPECT_LT(lu_residual(a, lu, ipiv), 1e6);
}

TEST(Getrf, DiagonallyDominantNoSwaps) {
  Matrix a = random_diagonally_dominant_matrix(50, 77);
  Matrix lu = a;
  PivotVector ipiv;
  EXPECT_EQ(getrf(lu.view(), ipiv), 0);
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    EXPECT_EQ(ipiv[k], static_cast<idx>(k));  // diagonal always wins
  }
}

TEST(Getrf, SolveRecoversKnownSolution) {
  // End-to-end: factor, then solve A x = b via the factors.
  const idx n = 80;
  Matrix a = random_matrix(n, n, 55);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));
  }
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  blas::gemv(blas::Trans::NoTrans, 1.0, a, x_true.data(), 1, 0.0, b.data(), 1);

  Matrix lu = a;
  PivotVector ipiv;
  ASSERT_EQ(getrf(lu.view(), ipiv), 0);
  // Apply P to b, then L y = Pb, U x = y.
  MatrixView bv(b.data(), n, 1, n);
  laswp(bv, 0, n, ipiv);
  blas::trsv(blas::Uplo::Lower, blas::Trans::NoTrans, blas::Diag::Unit, lu,
             b.data(), 1);
  blas::trsv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit, lu,
             b.data(), 1);
  for (idx i = 0; i < n; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Getrf, RankDeficientReportsSingular) {
  Matrix a = random_rank_deficient_matrix(30, 30, 10, 66);
  Matrix lu = a;
  PivotVector ipiv;
  const idx info = getrf(lu.view(), ipiv);
  // Exact zero pivots may be perturbed by rounding; either info > 10 or the
  // trailing diagonal of U is tiny.
  if (info == 0) {
    double min_diag = 1e300;
    for (idx i = 10; i < 30; ++i) {
      min_diag = std::min(min_diag, std::abs(lu(i, i)));
    }
    EXPECT_LT(min_diag, 1e-10 * norm_max(a));
  } else {
    EXPECT_GT(info, 10);
  }
}

}  // namespace
}  // namespace camult::lapack
