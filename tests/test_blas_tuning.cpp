// Tuning-file loader hardening (satellite of the runtime-dispatch PR): the
// autotune cache is advice read from a user-writable path, so the loader
// must reject malformed, truncated, out-of-range, or stale content without
// crashing and without partially applying it — any defect means built-in
// defaults. Also covers path resolution, last-wins lookup, stale-arch
// filtering, the save/load round trip, and reload_tuning() picking up
// CAMULT_TUNE_FILE changes end-to-end through active_blocking().
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "matrix/random.hpp"

namespace camult {
namespace {

using blas::GemmBlocking;
using blas::TuningEntry;
using blas::TuningTable;
using blas::parse_tuning;

std::string valid_doc() {
  return R"({"version": 1, "entries": [
    {"arch": "x86-avx2", "kernel": "avx2", "shape": "panel",
     "mc": 192, "kc": 256, "nc": 768}
  ]})";
}

TEST(TuningParse, AcceptsValidDocument) {
  const TuningTable t = parse_tuning(valid_doc());
  EXPECT_TRUE(t.loaded) << t.error;
  EXPECT_TRUE(t.error.empty());
  ASSERT_EQ(t.entries.size(), 1u);
  EXPECT_EQ(t.entries[0].arch, "x86-avx2");
  EXPECT_EQ(t.entries[0].kernel, "avx2");
  EXPECT_EQ(t.entries[0].shape, "panel");
  EXPECT_EQ(t.entries[0].mc, 192);
  EXPECT_EQ(t.entries[0].kc, 256);
  EXPECT_EQ(t.entries[0].nc, 768);
}

TEST(TuningParse, AcceptsEmptyEntries) {
  const TuningTable t = parse_tuning(R"({"version": 1, "entries": []})");
  EXPECT_TRUE(t.loaded) << t.error;
  EXPECT_TRUE(t.entries.empty());
}

// Every defect must reject the WHOLE file with a diagnostic: no partial
// application, no crash, no exception escaping.
TEST(TuningParse, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                                         // empty
      "not json at all",                          // garbage
      "[1, 2, 3]",                                // root not an object
      "{\"version\": 1}",                         // missing entries
      "{\"entries\": []}",                        // missing version
      "{\"version\": 2, \"entries\": []}",        // unsupported version
      "{\"version\": \"1\", \"entries\": []}",    // version wrong type
      "{\"version\": 1, \"entries\": {}}",        // entries wrong type
      "{\"version\": 1, \"entries\": [],}",       // trailing comma
      "{\"version\": 1, \"entries\": []} x",      // trailing garbage
      "{\"version\": 1, \"entries\": [",          // truncated mid-array
      "{\"version\": 1, \"entries\": [{\"arch\"", // truncated mid-entry
      "{\"version\": 1e",                         // bad number token
  };
  for (const char* doc : bad) {
    const TuningTable t = parse_tuning(doc);
    EXPECT_FALSE(t.loaded) << "accepted: " << doc;
    EXPECT_TRUE(t.entries.empty()) << "partial entries from: " << doc;
    EXPECT_FALSE(t.error.empty()) << "no diagnostic for: " << doc;
  }
}

// Truncating a valid document at ANY byte must never be accepted (the file
// can be half-written by a crashed autotune run).
TEST(TuningParse, RejectsEveryTruncationOfAValidDocument) {
  const std::string doc = valid_doc();
  for (std::size_t len = 0; len + 1 < doc.size(); ++len) {
    const TuningTable t = parse_tuning(doc.substr(0, len));
    EXPECT_FALSE(t.loaded) << "accepted prefix of length " << len;
  }
}

TEST(TuningParse, RejectsBadEntryFields) {
  auto entry_doc = [](const std::string& entry) {
    return "{\"version\": 1, \"entries\": [" + entry + "]}";
  };
  const char* bad_entries[] = {
      // missing fields
      R"({"kernel": "avx2", "shape": "panel", "mc": 192, "kc": 256, "nc": 768})",
      R"({"arch": "a", "shape": "panel", "mc": 192, "kc": 256, "nc": 768})",
      R"({"arch": "a", "kernel": "avx2", "mc": 192, "kc": 256, "nc": 768})",
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "kc": 256, "nc": 768})",
      // wrong types
      R"({"arch": 7, "kernel": "avx2", "shape": "panel", "mc": 192, "kc": 256, "nc": 768})",
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "mc": "192", "kc": 256, "nc": 768})",
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "mc": 192.5, "kc": 256, "nc": 768})",
      // unknown kernel / shape names (typo-safety)
      R"({"arch": "a", "kernel": "avx1024", "shape": "panel", "mc": 192, "kc": 256, "nc": 768})",
      R"({"arch": "a", "kernel": "avx2", "shape": "pannel", "mc": 192, "kc": 256, "nc": 768})",
      // out of range
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "mc": 0, "kc": 256, "nc": 768})",
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "mc": -192, "kc": 256, "nc": 768})",
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "mc": 99999999, "kc": 256, "nc": 768})",
      // mc*kc / kc*nc beyond the slab bound (2^22 doubles)
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "mc": 9999992, "kc": 9999872, "nc": 768})",
      // not a multiple of the named kernel's MR (avx2: 8) / NR (6)
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "mc": 100, "kc": 256, "nc": 768})",
      R"({"arch": "a", "kernel": "avx2", "shape": "panel", "mc": 192, "kc": 256, "nc": 100})",
      // not an object
      R"(42)",
  };
  for (const char* entry : bad_entries) {
    const TuningTable t = parse_tuning(entry_doc(entry));
    EXPECT_FALSE(t.loaded) << "accepted entry: " << entry;
    EXPECT_FALSE(t.error.empty()) << "no diagnostic for entry: " << entry;
  }
}

TEST(TuningParse, OneBadEntryRejectsTheWholeFile) {
  const std::string doc = R"({"version": 1, "entries": [
    {"arch": "a", "kernel": "avx2", "shape": "panel",
     "mc": 192, "kc": 256, "nc": 768},
    {"arch": "a", "kernel": "avx2", "shape": "panel",
     "mc": 100, "kc": 256, "nc": 768}
  ]})";
  const TuningTable t = parse_tuning(doc);
  EXPECT_FALSE(t.loaded);
  EXPECT_TRUE(t.entries.empty());
}

TEST(TuningParse, RejectsOversizedInputs) {
  // > 1 MiB of anything.
  EXPECT_FALSE(parse_tuning(std::string(2 << 20, ' ')).loaded);
  // Too many entries.
  std::string many = "{\"version\": 1, \"entries\": [";
  for (int i = 0; i < 257; ++i) {
    if (i > 0) many += ",";
    many += R"({"arch": "a", "kernel": "scalar", "shape": "tiny",
                "mc": 192, "kc": 256, "nc": 768})";
  }
  many += "]}";
  EXPECT_FALSE(parse_tuning(many).loaded);
  // Over-long string field.
  const std::string long_arch(100, 'x');
  EXPECT_FALSE(parse_tuning("{\"version\": 1, \"entries\": [{\"arch\": \"" +
                            long_arch +
                            "\", \"kernel\": \"scalar\", \"shape\": "
                            "\"tiny\", \"mc\": 192, \"kc\": 256, "
                            "\"nc\": 768}]}")
                   .loaded);
  // Excessive nesting.
  std::string deep = "{\"version\": 1, \"entries\": ";
  for (int i = 0; i < 20; ++i) deep += "[";
  EXPECT_FALSE(parse_tuning(deep).loaded);
}

TEST(TuningFind, LastEntryWinsAndArchFilters) {
  TuningTable t = parse_tuning(R"({"version": 1, "entries": [
    {"arch": "a", "kernel": "scalar", "shape": "square",
     "mc": 96, "kc": 128, "nc": 384},
    {"arch": "a", "kernel": "scalar", "shape": "square",
     "mc": 192, "kc": 256, "nc": 768},
    {"arch": "other-machine", "kernel": "scalar", "shape": "square",
     "mc": 384, "kc": 384, "nc": 1536}
  ]})");
  ASSERT_TRUE(t.loaded) << t.error;
  const TuningEntry* e = t.find("a", "scalar", "square");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->mc, 192);  // appended re-tune dominates
  // Stale arch: valid entries for other machines are ignored at lookup.
  EXPECT_EQ(t.find("b", "scalar", "square"), nullptr);
  EXPECT_EQ(t.find("a", "scalar", "tall"), nullptr);
  EXPECT_EQ(t.find("a", "avx2", "square"), nullptr);
}

TEST(TuningShapeClass, PartitionsProblems) {
  EXPECT_EQ(blas::shape_class(64, 64, 64), "tiny");
  EXPECT_EQ(blas::shape_class(65, 64, 64), "panel");  // k small, m not tiny
  EXPECT_EQ(blas::shape_class(2048, 512, 48), "panel");
  EXPECT_EQ(blas::shape_class(2048, 256, 256), "tall");
  EXPECT_EQ(blas::shape_class(768, 768, 768), "square");
  // Unknown dimensions (pack_a / pack_b) can never be "tiny" or "tall".
  EXPECT_EQ(blas::shape_class(-1, 512, 48), "panel");
  EXPECT_EQ(blas::shape_class(2048, -1, 256), "square");
}

TEST(TuningFile, MissingFileIsSilentDefaults) {
  const TuningTable t =
      blas::load_tuning_file("/nonexistent/dir/never/tuning.json");
  EXPECT_FALSE(t.loaded);
  EXPECT_TRUE(t.error.empty());  // missing is not an error
  EXPECT_TRUE(t.entries.empty());
}

TEST(TuningFile, SaveLoadRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "camult_tuning_roundtrip.json";
  std::vector<TuningEntry> entries = {
      {"x86-avx2", "avx2", "panel", 96, 128, 384},
      {"other", "scalar", "square", 384, 384, 1536},
  };
  ASSERT_TRUE(blas::save_tuning_file(path, entries));
  const TuningTable t = blas::load_tuning_file(path);
  ASSERT_TRUE(t.loaded) << t.error;
  ASSERT_EQ(t.entries.size(), 2u);
  EXPECT_EQ(t.entries[0].kernel, "avx2");
  EXPECT_EQ(t.entries[0].mc, 96);
  EXPECT_EQ(t.entries[1].arch, "other");
  EXPECT_EQ(t.entries[1].nc, 1536);
  std::remove(path.c_str());
}

TEST(TuningFile, RejectedFileNeverChangesActiveBlocking) {
  const std::string path = ::testing::TempDir() + "camult_tuning_bad.json";
  {
    std::ofstream out(path);
    out << "{\"version\": 1, \"entries\": [{\"arch\": \"";
  }  // truncated mid-write, like a crashed autotune
  const GemmBlocking before = blas::active_blocking(768, 768, 768);
  ::setenv("CAMULT_TUNE_FILE", path.c_str(), 1);
  blas::reload_tuning();
  EXPECT_FALSE(blas::tuning_table().loaded);
  EXPECT_FALSE(blas::tuning_table().error.empty());
  const GemmBlocking after = blas::active_blocking(768, 768, 768);
  EXPECT_EQ(after.mc, before.mc);
  EXPECT_EQ(after.kc, before.kc);
  EXPECT_EQ(after.nc, before.nc);
  ::unsetenv("CAMULT_TUNE_FILE");
  blas::reload_tuning();
  std::remove(path.c_str());
}

TEST(TuningFile, ReloadPicksUpTuneFileEndToEnd) {
  // Write an entry for the ACTIVE kernel on THIS arch and check that
  // active_blocking serves it — the full env -> loader -> dispatch path.
  const blas::KernelInfo& kern = blas::active_kernel();
  const std::string path = ::testing::TempDir() + "camult_tuning_e2e.json";
  const GemmBlocking tuned{10 * kern.blocking.mr, 192, 20 * kern.blocking.nr,
                           kern.blocking.mr, kern.blocking.nr};
  ASSERT_TRUE(blas::save_tuning_file(
      path, {{std::string(blas::arch_id()), kern.name, "square", tuned.mc,
              tuned.kc, tuned.nc}}));
  ::setenv("CAMULT_TUNE_FILE", path.c_str(), 1);
  blas::reload_tuning();
  ASSERT_TRUE(blas::tuning_table().loaded) << blas::tuning_table().error;

  const GemmBlocking blk = blas::active_blocking(768, 768, 768);
  EXPECT_EQ(blk.mc, tuned.mc);
  EXPECT_EQ(blk.kc, tuned.kc);
  EXPECT_EQ(blk.nc, tuned.nc);
  EXPECT_EQ(blk.mr, kern.blocking.mr);
  EXPECT_EQ(blk.nr, kern.blocking.nr);
  // Other shape classes fall back to the kernel default.
  const GemmBlocking panel = blas::active_blocking(2048, 512, 48);
  EXPECT_EQ(panel.mc, kern.blocking.mc);

  // A tuned blocking must change performance knobs only, never results:
  // same bits as the default blocking on a real multiply.
  const Matrix a = random_matrix(200, 96, 3001);
  const Matrix b = random_matrix(96, 150, 3003);
  const Matrix c0 = random_matrix(200, 150, 3005);
  Matrix c_tuned = c0;
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a.view(),
             b.view(), 1.0, c_tuned.view());

  ::unsetenv("CAMULT_TUNE_FILE");
  blas::reload_tuning();
  Matrix c_default = c0;
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a.view(),
             b.view(), 1.0, c_default.view());
  // kc differs (192 vs default), so the k-split points differ and bitwise
  // equality is NOT guaranteed; results must still agree to rounding.
  EXPECT_TRUE(test::matrices_near(c_tuned.view(), c_default.view(), 1e-13));
  std::remove(path.c_str());
}

TEST(TuningOverride, SetBlockingOverrideValidatesAndPins) {
  const blas::KernelInfo& kern = blas::active_kernel();
  const GemmBlocking good{4 * kern.blocking.mr, 64, 4 * kern.blocking.nr,
                          kern.blocking.mr, kern.blocking.nr};
  ASSERT_TRUE(blas::set_blocking_override(good));
  const GemmBlocking blk = blas::active_blocking(768, 768, 768);
  EXPECT_EQ(blk.mc, good.mc);
  EXPECT_EQ(blk.kc, good.kc);
  EXPECT_EQ(blk.nc, good.nc);
  blas::clear_blocking_override();
  const GemmBlocking after = blas::active_blocking(768, 768, 768);
  EXPECT_EQ(after.mc, kern.blocking.mc);

  // Invalid or tile-mismatched overrides are refused outright.
  EXPECT_FALSE(blas::set_blocking_override(
      {kern.blocking.mr + 1, 64, 4 * kern.blocking.nr, kern.blocking.mr,
       kern.blocking.nr}));
  EXPECT_FALSE(blas::set_blocking_override(
      {4 * kern.blocking.mr, 0, 4 * kern.blocking.nr, kern.blocking.mr,
       kern.blocking.nr}));
  EXPECT_FALSE(blas::set_blocking_override(
      {4 * (kern.blocking.mr + 1), 64, 4 * kern.blocking.nr,
       kern.blocking.mr + 1, kern.blocking.nr}));
}

}  // namespace
}  // namespace camult
